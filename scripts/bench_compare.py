#!/usr/bin/env python3
"""Compares two bench-report snapshots and gates on regressions.

Usage:
    python3 scripts/bench_compare.py BASELINE_DIR CURRENT_DIR \
        [--threshold 0.15] [--skip-timing]
    python3 scripts/bench_compare.py --self-test

Each directory holds BENCH_<name>.json files written by the bench suite
(scripts/run_benches.sh). Measurements are matched by bench name, metric
name, and labels; the relative diff is checked against the per-metric
regression direction ("better": lower/higher; "none" is informational).

Exit codes: 0 = no regression past the threshold, 1 = regression(s),
2 = usage/IO error. --skip-timing ignores wall-clock metrics (any unit
ending in "seconds" or "ns") — the right setting when the two snapshots
come from different machines, e.g. CI gating against a committed baseline.
"""

import argparse
import json
import os
import sys
import tempfile


def load_reports(directory):
    """Returns {bench_name: report_dict} for every BENCH_*.json in dir."""
    reports = {}
    try:
        names = sorted(os.listdir(directory))
    except OSError as err:
        sys.exit(f"error: cannot list {directory}: {err}")
    for name in names:
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path) as handle:
                report = json.load(handle)
        except (OSError, json.JSONDecodeError) as err:
            sys.exit(f"error: cannot read {path}: {err}")
        if report.get("schema") != "deepdirect-bench-report":
            sys.exit(f"error: {path}: not a deepdirect-bench-report")
        reports[report["bench"]] = report
    return reports


def measurement_key(measurement):
    labels = tuple(sorted(measurement.get("labels", {}).items()))
    return (measurement["name"], labels)


def is_timing(measurement):
    unit = measurement.get("unit", "")
    return unit.endswith("seconds") or unit.endswith("ns")


def compare(baseline_reports, current_reports, threshold, skip_timing):
    """Returns (regressions, improvements, skipped) lists of row strings."""
    regressions, improvements, skipped = [], [], []
    for bench, base_report in sorted(baseline_reports.items()):
        current_report = current_reports.get(bench)
        if current_report is None:
            skipped.append(f"{bench}: missing from current snapshot")
            continue
        current_by_key = {
            measurement_key(m): m
            for m in current_report.get("measurements", [])
        }
        for base in base_report.get("measurements", []):
            key = measurement_key(base)
            label = f"{bench}/{base['name']}" + (
                f" {dict(key[1])}" if key[1] else ""
            )
            current = current_by_key.get(key)
            if current is None:
                skipped.append(f"{label}: missing from current snapshot")
                continue
            better = base.get("better", "none")
            if better == "none":
                continue
            if skip_timing and is_timing(base):
                skipped.append(f"{label}: timing metric (--skip-timing)")
                continue
            base_value, cur_value = base["value"], current["value"]
            if base_value == 0:
                continue
            # Positive delta = got worse, in the metric's own direction.
            if better == "lower":
                delta = (cur_value - base_value) / abs(base_value)
            else:
                delta = (base_value - cur_value) / abs(base_value)
            row = (f"{label}: {base_value:.6g} -> {cur_value:.6g} "
                   f"({delta * 100.0:+.1f}% worse)")
            if delta > threshold:
                regressions.append(row)
            elif delta < -threshold:
                improvements.append(row.replace("worse", "better"))
    return regressions, improvements, skipped


def run(baseline_dir, current_dir, threshold, skip_timing, verbose=True):
    baseline = load_reports(baseline_dir)
    current = load_reports(current_dir)
    if not baseline:
        sys.exit(f"error: no BENCH_*.json reports in {baseline_dir}")
    regressions, improvements, skipped = compare(
        baseline, current, threshold, skip_timing)
    if verbose:
        for row in improvements:
            print(f"IMPROVED  {row}")
        for row in skipped:
            print(f"SKIPPED   {row}")
        for row in regressions:
            print(f"REGRESSED {row}")
        print(f"\n{len(regressions)} regression(s), "
              f"{len(improvements)} improvement(s), "
              f"{len(skipped)} skipped "
              f"(threshold {threshold * 100.0:.0f}%)")
    return 1 if regressions else 0


def make_report(bench, measurements):
    return {
        "schema": "deepdirect-bench-report",
        "schema_version": 1,
        "bench": bench,
        "environment": {"git_sha": "selftest"},
        "measurements": measurements,
    }


def self_test():
    """Builds synthetic snapshots and verifies detection / non-detection."""
    def measurement(name, unit, better, value, labels=None):
        return {"name": name, "unit": unit, "better": better,
                "value": value, "labels": labels or {}}

    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "base")
        good_dir = os.path.join(tmp, "good")
        bad_dir = os.path.join(tmp, "bad")
        for d in (base_dir, good_dir, bad_dir):
            os.makedirs(d)

        base = make_report("demo", [
            measurement("wall", "seconds", "lower", 10.0),
            measurement("accuracy", "fraction", "higher", 0.80,
                        {"dataset": "twitter"}),
            measurement("bytes", "bytes", "none", 1000.0),
        ])
        good = make_report("demo", [
            measurement("wall", "seconds", "lower", 10.9),   # +9%: under
            measurement("accuracy", "fraction", "higher", 0.79,
                        {"dataset": "twitter"}),             # -1.2%: under
            measurement("bytes", "bytes", "none", 9000.0),   # none: ignored
        ])
        bad = make_report("demo", [
            measurement("wall", "seconds", "lower", 12.5),   # +25%: trips
            measurement("accuracy", "fraction", "higher", 0.60,
                        {"dataset": "twitter"}),             # -25%: trips
            measurement("bytes", "bytes", "none", 9000.0),
        ])
        for d, report in ((base_dir, base), (good_dir, good), (bad_dir, bad)):
            with open(os.path.join(d, "BENCH_demo.json"), "w") as handle:
                json.dump(report, handle)

        checks = [
            ("clean pass", run(base_dir, good_dir, 0.15, False, False), 0),
            ("injected regression", run(base_dir, bad_dir, 0.15, False,
                                        False), 1),
            ("skip-timing hides wall", None, None),
        ]
        # --skip-timing must hide the wall regression but keep accuracy's.
        timing_only_bad = make_report("demo", [
            measurement("wall", "seconds", "lower", 12.5),
            measurement("accuracy", "fraction", "higher", 0.80,
                        {"dataset": "twitter"}),
        ])
        with open(os.path.join(bad_dir, "BENCH_demo.json"), "w") as handle:
            json.dump(timing_only_bad, handle)
        checks[2] = ("skip-timing hides wall",
                     run(base_dir, bad_dir, 0.15, True, False), 0)

        failures = [name for name, got, want in checks if got != want]
        for name, got, want in checks:
            status = "ok" if got == want else f"FAIL (exit {got} != {want})"
            print(f"self-test: {name}: {status}")
        if failures:
            sys.exit(1)
        print("self-test: all checks passed")


def main():
    parser = argparse.ArgumentParser(
        description="Compare two bench-report snapshots.")
    parser.add_argument("baseline", nargs="?", help="baseline report dir")
    parser.add_argument("current", nargs="?", help="current report dir")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative regression threshold (default 0.15)")
    parser.add_argument("--skip-timing", action="store_true",
                        help="ignore wall-clock metrics (cross-machine)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in detection self-test")
    args = parser.parse_args()

    if args.self_test:
        self_test()
        return
    if not args.baseline or not args.current:
        parser.error("baseline and current directories are required")
    sys.exit(run(args.baseline, args.current, args.threshold,
                 args.skip_timing))


if __name__ == "__main__":
    main()
