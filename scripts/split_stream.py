#!/usr/bin/env python3
"""Split an edge-list network into a streaming-update scenario.

Reads a network in tdl_cli's edge-list format (`# nodes N` header plus
`u v d|b|u` lines) and writes, into --outdir:

  truth.tsv      hidden ground truth: `u v` lines, true direction u -> v
  full.edges     the full network with the hidden ties made undirected
  base.edges     full.edges minus the tail ties (the pre-update network)
  batch-K.edges  the tail ties, split into --batches delta files

The scenario mirrors graph::HideDirections offline: a --hide-fraction of
the directed ties is re-typed undirected and recorded in truth.tsv, so a
model trained on full.edges (full retrain) and one trained on base.edges
plus `tdl_cli update` over the batches are scored against the SAME ground
truth via `--truth truth.tsv` — accuracies are directly comparable across
processes, which a per-process random --hide split would not allow.

Every output carries the full `# nodes N` header so the merged update
network and the full network agree on the node count even when the tail
contains the highest-id node. Non-directed ties are emitted as u < v,
matching WriteEdgeList, so `sort base.edges batch-*.edges` equals
`sort full.edges` line-for-line (the merged-network parity check in CI).
"""

import argparse
import random
import sys


def parse_edge_list(path):
    nodes = 0
    ties = []
    with open(path) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line.split()
                if len(parts) == 3 and parts[1] == "nodes":
                    nodes = int(parts[2])
                continue
            parts = line.split()
            if len(parts) != 3 or parts[2] not in ("d", "b", "u"):
                sys.exit(f"{path}:{line_no}: malformed line: {line!r}")
            u, v = int(parts[0]), int(parts[1])
            ties.append((u, v, parts[2]))
    if not ties:
        sys.exit(f"{path}: no ties")
    max_node = max(max(u, v) for u, v, _ in ties)
    return max(nodes, max_node + 1), ties


def write_edges(path, nodes, ties):
    with open(path, "w") as f:
        f.write(f"# nodes {nodes}\n")
        for u, v, t in ties:
            if t != "d" and u > v:
                u, v = v, u
            f.write(f"{u} {v} {t}\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--input", required=True)
    ap.add_argument("--outdir", required=True)
    ap.add_argument("--hide-fraction", type=float, default=0.3,
                    help="fraction of directed ties hidden as ground truth")
    ap.add_argument("--batches", type=int, default=3)
    ap.add_argument("--batch-fraction", type=float, default=0.1,
                    help="fraction of all ties streamed as the tail")
    ap.add_argument("--seed", type=int, default=7)
    args = ap.parse_args()

    rng = random.Random(args.seed)
    nodes, ties = parse_edge_list(args.input)

    # Hide: re-type a sample of directed ties as undirected; their original
    # orientation is the ground truth.
    directed = [i for i, t in enumerate(ties) if t[2] == "d"]
    num_hidden = int(len(directed) * args.hide_fraction)
    if num_hidden == 0 or num_hidden >= len(directed):
        sys.exit(f"--hide-fraction {args.hide_fraction} hides {num_hidden} "
                 f"of {len(directed)} directed ties; need 0 < hidden < all")
    hidden = set(rng.sample(directed, num_hidden))
    truth = [(ties[i][0], ties[i][1]) for i in sorted(hidden)]
    full = [(u, v, "u") if i in hidden else (u, v, t)
            for i, (u, v, t) in enumerate(ties)]

    # Tail: a sample of the (post-hide) ties streams in as update batches.
    # The base must keep at least one directed tie — it is trained alone.
    num_tail = int(len(full) * args.batch_fraction)
    if num_tail < args.batches:
        sys.exit(f"--batch-fraction {args.batch_fraction} yields {num_tail} "
                 f"tail ties for {args.batches} batches")
    tail = set(rng.sample(range(len(full)), num_tail))
    base = [full[i] for i in range(len(full)) if i not in tail]
    if not any(t == "d" for _, _, t in base):
        sys.exit("the base network kept no directed ties; lower "
                 "--batch-fraction or reseed")

    import os
    os.makedirs(args.outdir, exist_ok=True)
    with open(os.path.join(args.outdir, "truth.tsv"), "w") as f:
        for u, v in truth:
            f.write(f"{u} {v}\n")
    write_edges(os.path.join(args.outdir, "full.edges"), nodes, full)
    write_edges(os.path.join(args.outdir, "base.edges"), nodes, base)
    tail_list = [full[i] for i in sorted(tail)]
    per = (len(tail_list) + args.batches - 1) // args.batches
    for k in range(args.batches):
        chunk = tail_list[k * per:(k + 1) * per]
        write_edges(os.path.join(args.outdir, f"batch-{k}.edges"),
                    nodes, chunk)
    print(f"{len(full)} ties -> base {len(base)}, "
          f"{args.batches} batches of <= {per}, "
          f"{len(truth)} hidden-truth ties, {nodes} nodes")


if __name__ == "__main__":
    main()
