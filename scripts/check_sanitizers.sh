#!/usr/bin/env bash
# Builds the library with a sanitizer and runs the training-engine tests.
#
# Usage:  scripts/check_sanitizers.sh [thread|address]   (default: thread)
#
# The thread run is the important one: it drives every Hogwild trainer with
# multiple workers under TSan, proving the relaxed-atomic access policy
# keeps the lock-free updates data-race-free under the C++ memory model.
set -euo pipefail

SANITIZER="${1:-thread}"
case "$SANITIZER" in
  thread|address) ;;
  *)
    echo "usage: $0 [thread|address]" >&2
    exit 2
    ;;
esac

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build-$SANITIZER"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDEEPDIRECT_SANITIZE="$SANITIZER" \
  -DDEEPDIRECT_BUILD_BENCHMARKS=OFF \
  -DDEEPDIRECT_BUILD_EXAMPLES=OFF

# The trainer-facing test binaries: the train/ engine itself, the
# checkpoint/resume layer with its fault-injection sweeps, every migrated
# trainer (DeepDirect E/D-step, skip-gram, LINE, logistic regression), the
# metrics registry the trainers record into, and the parallel deterministic
# preprocessing stages (pattern precompute, centrality sweeps, two-pass
# graph build) at num_threads=4, the SIMD kernel layer (dispatch,
# scalar-vs-SIMD tolerance sweeps, policy interplay) that all trainers now
# route their inner loops through, the serving layer (concurrent readers
# over one mmap'd model through the sharded hot-tie cache), and the
# streaming-update layer (Hogwild incremental E-step over the affected
# arc set, warm-start state load/save).
TARGETS=(train_test checkpoint_test deepdirect_test embedding_test
         walks_test ml_test obs_test trace_test centrality_test graph_test
         kernels_test serve_test incremental_test)
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TARGETS[@]}"

# Multi-worker + determinism tests exercise the Hogwild path and the serial
# path; halt on the first sanitizer report.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"

FILTER='*MultiThreaded*:*Deterministic*:*Concurrent*:*Resume*:CheckpointTest.*:SgdDriverTest.*:ThreadPoolTest.*:ProgressReporterTest.*:ObsCounterTest.*:ObsHistogramTest.*:ObsTraceTest.*:ObsEndToEndTest.*:ObsTimelineTest.*:TraceBufferTest.*:TraceSpanTest.*:TraceEndToEndTest.*:KernelsTest.*'
for target in "${TARGETS[@]}"; do
  echo "=== $target ($SANITIZER) ==="
  "$BUILD_DIR/tests/$target" --gtest_filter="$FILTER"
done

echo "OK: $SANITIZER-sanitized trainer tests passed."
