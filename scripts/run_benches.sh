#!/usr/bin/env bash
# Runs the full bench suite in fast (smoke) mode and checks that every
# bench emits its structured BENCH_<name>.json report.
#
# Usage:
#   scripts/run_benches.sh [build_dir] [outdir]
#
# Environment (forwarded to the benches):
#   DD_BENCH_SCALE   — dataset scale (default 0.1 here: smoke size)
#   DD_BENCH_THREADS — SGD workers (default 1: deterministic serial path)
# DD_BENCH_FAST=1 and DD_BENCH_OUTDIR=<outdir> are always set.
#
# Exits nonzero when any bench fails or any report is missing, so CI can
# gate on it directly.

set -u

BUILD_DIR="${1:-build}"
OUTDIR="${2:-bench_results}"
export DD_BENCH_FAST=1
export DD_BENCH_OUTDIR="$OUTDIR"
export DD_BENCH_SCALE="${DD_BENCH_SCALE:-0.1}"
export DD_BENCH_THREADS="${DD_BENCH_THREADS:-1}"

# Auto-discover benches from the checked-in sources: every bench/bench_*.cc
# is one bench binary whose report is BENCH_<name>.json with the bench_
# prefix stripped (bench_report.cc is the report-writer library, not a
# bench). Discovering from sources rather than built binaries means a bench
# that failed to build still counts as a failure instead of silently
# vanishing from the suite.
REPO_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BENCHES=()
for src in "$REPO_DIR"/bench/bench_*.cc; do
  binary="$(basename "$src" .cc)"
  [[ "$binary" == "bench_report" ]] && continue
  BENCHES+=("$binary")
done
if [[ ${#BENCHES[@]} -eq 0 ]]; then
  echo "no bench sources found under $REPO_DIR/bench/"
  exit 1
fi

mkdir -p "$OUTDIR"
failures=0
for binary in "${BENCHES[@]}"; do
  report="${binary#bench_}"
  exe="$BUILD_DIR/bench/$binary"
  if [[ ! -x "$exe" ]]; then
    echo "MISSING BINARY: $exe (build with -DDEEPDIRECT_BUILD_BENCHMARKS=ON)"
    failures=$((failures + 1))
    continue
  fi
  echo "=== $binary ==="
  if ! "$exe" >"$OUTDIR/$binary.log" 2>&1; then
    echo "FAILED: $binary (log: $OUTDIR/$binary.log)"
    tail -5 "$OUTDIR/$binary.log"
    failures=$((failures + 1))
    continue
  fi
  json="$OUTDIR/BENCH_$report.json"
  if [[ ! -s "$json" ]]; then
    echo "MISSING REPORT: $json"
    failures=$((failures + 1))
    continue
  fi
  echo "ok: $json"
done

if [[ "$failures" -ne 0 ]]; then
  echo "bench suite: $failures failure(s)"
  exit 1
fi
echo "bench suite: all ${#BENCHES[@]} benches passed; reports in $OUTDIR/"
