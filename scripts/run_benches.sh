#!/usr/bin/env bash
# Runs the full bench suite in fast (smoke) mode and checks that every
# bench emits its structured BENCH_<name>.json report.
#
# Usage:
#   scripts/run_benches.sh [build_dir] [outdir]
#
# Environment (forwarded to the benches):
#   DD_BENCH_SCALE   — dataset scale (default 0.1 here: smoke size)
#   DD_BENCH_THREADS — SGD workers (default 1: deterministic serial path)
# DD_BENCH_FAST=1 and DD_BENCH_OUTDIR=<outdir> are always set.
#
# Exits nonzero when any bench fails or any report is missing, so CI can
# gate on it directly.

set -u

BUILD_DIR="${1:-build}"
OUTDIR="${2:-bench_results}"
export DD_BENCH_FAST=1
export DD_BENCH_OUTDIR="$OUTDIR"
export DD_BENCH_SCALE="${DD_BENCH_SCALE:-0.1}"
export DD_BENCH_THREADS="${DD_BENCH_THREADS:-1}"

# name pairs: binary -> report name (BENCH_<name>.json)
BENCHES=(
  "bench_table2_datasets table2_datasets"
  "bench_fig3_direction_discovery fig3_direction_discovery"
  "bench_fig4_label_effect fig4_label_effect"
  "bench_fig5_pattern_effect fig5_pattern_effect"
  "bench_fig6_param_sensitivity fig6_param_sensitivity"
  "bench_fig7_visualization fig7_visualization"
  "bench_fig8_link_prediction fig8_link_prediction"
  "bench_fig9_scalability fig9_scalability"
  "bench_ablations ablations"
  "bench_extended_baselines extended_baselines"
  "bench_grid_search grid_search"
  "bench_trace_overhead trace_overhead"
  "bench_micro micro"
)

mkdir -p "$OUTDIR"
failures=0
for entry in "${BENCHES[@]}"; do
  read -r binary report <<<"$entry"
  exe="$BUILD_DIR/bench/$binary"
  if [[ ! -x "$exe" ]]; then
    echo "MISSING BINARY: $exe (build with -DDEEPDIRECT_BUILD_BENCHMARKS=ON)"
    failures=$((failures + 1))
    continue
  fi
  echo "=== $binary ==="
  if ! "$exe" >"$OUTDIR/$binary.log" 2>&1; then
    echo "FAILED: $binary (log: $OUTDIR/$binary.log)"
    tail -5 "$OUTDIR/$binary.log"
    failures=$((failures + 1))
    continue
  fi
  json="$OUTDIR/BENCH_$report.json"
  if [[ ! -s "$json" ]]; then
    echo "MISSING REPORT: $json"
    failures=$((failures + 1))
    continue
  fi
  echo "ok: $json"
done

if [[ "$failures" -ne 0 ]]; then
  echo "bench suite: $failures failure(s)"
  exit 1
fi
echo "bench suite: all ${#BENCHES[@]} benches passed; reports in $OUTDIR/"
