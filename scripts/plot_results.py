#!/usr/bin/env python3
"""Plots the CSVs and BENCH_*.json reports written by the bench harnesses.

Usage:
    python3 scripts/plot_results.py [bench_results_dir] [output_dir]

Produces one PNG per reproduced figure plus a wall-time overview built
from the structured BENCH_<name>.json snapshots (requires matplotlib;
every plot is skipped gracefully when its input is absent).
"""

import csv
import json
import os
import sys
from collections import defaultdict

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("matplotlib is required: pip install matplotlib")


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))


def save(fig, output_dir, name):
    path = os.path.join(output_dir, name)
    fig.savefig(path, dpi=150, bbox_inches="tight")
    plt.close(fig)
    print(f"wrote {path}")


def plot_fig3(results_dir, output_dir):
    path = os.path.join(results_dir, "fig3_direction_discovery.csv")
    if not os.path.exists(path):
        return
    rows = read_csv(path)
    datasets = sorted({r["dataset"] for r in rows})
    fig, axes = plt.subplots(1, len(datasets), figsize=(4 * len(datasets), 3.2),
                             sharey=True)
    if len(datasets) == 1:
        axes = [axes]
    for ax, dataset in zip(axes, datasets):
        series = defaultdict(list)
        for r in rows:
            if r["dataset"] != dataset:
                continue
            series[r["method"]].append(
                (float(r["directed_fraction"]), float(r["accuracy"])))
        for method, points in sorted(series.items()):
            points.sort()
            ax.plot([p[0] for p in points], [p[1] for p in points],
                    marker="o", label=method)
        ax.set_title(dataset)
        ax.set_xlabel("fraction directed")
    axes[0].set_ylabel("accuracy")
    axes[-1].legend(fontsize=7)
    fig.suptitle("Fig. 3: direction discovery accuracy")
    save(fig, output_dir, "fig3.png")


def plot_alpha_beta(results_dir, output_dir, filename, key, title, out_name):
    path = os.path.join(results_dir, filename)
    if not os.path.exists(path):
        return
    rows = read_csv(path)
    datasets = sorted({r["dataset"] for r in rows})
    fig, axes = plt.subplots(1, len(datasets), figsize=(4 * len(datasets), 3.2),
                             sharey=True)
    if len(datasets) == 1:
        axes = [axes]
    for ax, dataset in zip(axes, datasets):
        series = defaultdict(list)
        for r in rows:
            if r["dataset"] != dataset:
                continue
            label = key(r)
            series[label].append(
                (float(r["directed_fraction"]), float(r["accuracy"])))
        for label, points in sorted(series.items()):
            points.sort()
            ax.plot([p[0] for p in points], [p[1] for p in points],
                    marker="o", label=label)
        ax.set_title(dataset)
        ax.set_xlabel("fraction directed")
    axes[0].set_ylabel("accuracy")
    axes[-1].legend(fontsize=7)
    fig.suptitle(title)
    save(fig, output_dir, out_name)


def plot_fig8(results_dir, output_dir):
    path = os.path.join(results_dir, "fig8_link_prediction.csv")
    if not os.path.exists(path):
        return
    rows = read_csv(path)
    datasets = sorted({r["dataset"] for r in rows})
    methods = []
    for r in rows:
        if r["adjacency"] not in methods:
            methods.append(r["adjacency"])
    fig, ax = plt.subplots(figsize=(7, 3.2))
    width = 0.8 / len(methods)
    for index, method in enumerate(methods):
        values = []
        for dataset in datasets:
            match = [r for r in rows
                     if r["dataset"] == dataset and r["adjacency"] == method]
            values.append(float(match[0]["auc"]) if match else 0.0)
        positions = [d + index * width for d in range(len(datasets))]
        ax.bar(positions, values, width=width, label=method)
    ax.set_xticks([d + 0.4 for d in range(len(datasets))])
    ax.set_xticklabels(datasets)
    ax.set_ylabel("AUC")
    ax.set_ylim(0.5, None)
    ax.legend(fontsize=7)
    ax.set_title("Fig. 8: link prediction AUC by adjacency variant")
    save(fig, output_dir, "fig8.png")


def plot_fig9(results_dir, output_dir):
    path = os.path.join(results_dir, "fig9_scalability.csv")
    if not os.path.exists(path):
        return
    rows = read_csv(path)
    ties = [int(r["ties"]) for r in rows]
    seconds = [float(r["seconds"]) for r in rows]
    fig, ax = plt.subplots(figsize=(4.5, 3.2))
    ax.plot(ties, seconds, marker="o")
    ax.set_xlabel("number of ties")
    ax.set_ylabel("training seconds")
    ax.set_title("Fig. 9: DeepDirect scalability")
    save(fig, output_dir, "fig9.png")


def plot_fig7(results_dir, output_dir):
    fig, axes = plt.subplots(1, 2, figsize=(9, 4))
    found = False
    for ax, (name, title) in zip(
            axes, [("fig7_deepdirect_points.csv", "DeepDirect"),
                   ("fig7_line_points.csv", "LINE")]):
        path = os.path.join(results_dir, name)
        if not os.path.exists(path):
            continue
        found = True
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))[1:]
        for label, color in (("1", "tab:red"), ("0", "tab:blue")):
            xs = [float(r[1]) for r in rows if r[0] == label]
            ys = [float(r[2]) for r in rows if r[0] == label]
            ax.scatter(xs, ys, s=6, c=color, label=f"direction {label}")
        ax.set_title(title)
        ax.legend(fontsize=7)
    if found:
        fig.suptitle("Fig. 7: t-SNE of tie embeddings (color = true direction)")
        save(fig, output_dir, "fig7.png")
    else:
        plt.close(fig)


def read_bench_reports(results_dir):
    """Returns {bench: report} for every BENCH_*.json snapshot present."""
    reports = {}
    if not os.path.isdir(results_dir):
        return reports
    for name in sorted(os.listdir(results_dir)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        try:
            with open(os.path.join(results_dir, name)) as handle:
                report = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if report.get("schema") == "deepdirect-bench-report":
            reports[report["bench"]] = report
    return reports


def plot_bench_walltimes(results_dir, output_dir):
    """Wall-time-per-bench overview from the structured JSON snapshots."""
    reports = read_bench_reports(results_dir)
    rows = []
    for bench, report in sorted(reports.items()):
        for m in report.get("measurements", []):
            if m["name"] == "total_wall_seconds":
                rows.append((bench, float(m["value"])))
                break
    if not rows:
        return
    fig, ax = plt.subplots(figsize=(7, 0.35 * len(rows) + 1.4))
    ax.barh([r[0] for r in rows], [r[1] for r in rows])
    ax.set_xlabel("total wall seconds")
    sha = next(iter(reports.values())).get("environment", {}).get(
        "git_sha", "?")
    ax.set_title(f"Bench wall time per harness (git {sha})")
    ax.invert_yaxis()
    save(fig, output_dir, "bench_walltimes.png")


def main():
    results_dir = sys.argv[1] if len(sys.argv) > 1 else "bench_results"
    output_dir = sys.argv[2] if len(sys.argv) > 2 else "bench_results"
    os.makedirs(output_dir, exist_ok=True)
    plot_fig3(results_dir, output_dir)
    plot_alpha_beta(results_dir, output_dir, "fig4_label_effect.csv",
                    lambda r: f"alpha={r['alpha']}",
                    "Fig. 4: effect of the label loss", "fig4.png")
    plot_alpha_beta(results_dir, output_dir, "fig5_pattern_effect.csv",
                    lambda r: f"a={r['alpha']},b={r['beta']}",
                    "Fig. 5: effect of the pattern loss", "fig5.png")
    plot_fig7(results_dir, output_dir)
    plot_fig8(results_dir, output_dir)
    plot_fig9(results_dir, output_dir)
    plot_bench_walltimes(results_dir, output_dir)


if __name__ == "__main__":
    main()
