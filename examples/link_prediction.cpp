// Direction quantification on bidirectional ties (Sec. 5.2 / Sec. 6.3).
//
// On a network rich in bidirectional ties (like the paper's LiveJournal,
// Epinions and Slashdot), quantifying both directions of each bidirectional
// tie with the learned directionality function — the *directionality
// adjacency matrix* — improves Jaccard-coefficient link prediction over the
// plain binary adjacency matrix.
//
// Build & run:  ./build/examples/link_prediction

#include <cstdio>

#include "core/applications.h"
#include "core/deepdirect.h"
#include "data/generators.h"
#include "graph/algorithms.h"
#include "util/random.h"
#include "util/table_printer.h"

int main() {
  using namespace deepdirect;

  data::GeneratorConfig generator;
  generator.num_nodes = 1000;
  generator.ties_per_node = 6.0;
  generator.bidirectional_fraction = 0.55;  // bidirectional-heavy
  generator.direction_noise = 0.08;
  generator.seed = 201;
  const graph::MixedSocialNetwork network =
      data::GenerateStatusNetwork(generator);
  std::printf("network: %zu nodes, %zu ties (%.0f%% bidirectional)\n",
              network.num_nodes(), network.num_ties(),
              100.0 * static_cast<double>(network.num_bidirectional_ties()) /
                  static_cast<double>(network.num_ties()));

  // Sec. 6.3 protocol: keep 80% of ties as the training network G'.
  core::LinkPredictionConfig link_config;
  link_config.holdout_fraction = 0.2;
  link_config.seed = 207;
  util::Rng rng(link_config.seed);
  const graph::TieHoldout holdout =
      graph::HoldOutTies(network, link_config.holdout_fraction, rng);

  // Baseline: original binary adjacency matrix.
  const core::LinkPredictionResult baseline =
      core::RunLinkPrediction(network, holdout, nullptr, link_config);

  // Quantified: train DeepDirect on G' and replace bidirectional cells with
  // directionality values.
  core::DeepDirectConfig dd_config;
  dd_config.dimensions = 64;
  dd_config.epochs = 5.0;
  dd_config.seed = 211;
  const auto model = core::DeepDirectModel::Train(holdout.network, dd_config);
  const core::LinkPredictionResult quantified =
      core::RunLinkPrediction(network, holdout, model.get(), link_config);

  util::TablePrinter table({"adjacency", "AUC", "candidates", "positives"});
  table.AddRow({"original (binary)",
                util::TablePrinter::FormatDouble(baseline.auc, 4),
                std::to_string(baseline.num_candidates),
                std::to_string(baseline.num_positives)});
  table.AddRow({"directionality (DeepDirect)",
                util::TablePrinter::FormatDouble(quantified.auc, 4),
                std::to_string(quantified.num_candidates),
                std::to_string(quantified.num_positives)});
  std::printf("\nJaccard link prediction over 2-hop pairs:\n");
  table.Print();
  return 0;
}
