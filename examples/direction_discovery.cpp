// Direction discovery on a merged multi-platform network (the motivating
// scenario of the paper's introduction, requirement 2).
//
// Imagine merging relationships crawled from several platforms: follows
// from a Twitter-like service arrive *directed*, while friendships from a
// Facebook-like service arrive *undirected* — even though a real proposer
// exists for each. This example builds such a network, trains every TDL
// method on the directed portion, and compares how well each recovers the
// proposers of the undirected portion.
//
// Build & run:  ./build/examples/direction_discovery

#include <cstdio>

#include "core/applications.h"
#include "core/models.h"
#include "data/generators.h"
#include "graph/algorithms.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace deepdirect;

  // One underlying social reality: a status-model network where every tie
  // has a true proposer.
  data::GeneratorConfig generator;
  generator.num_nodes = 1000;
  generator.ties_per_node = 7.0;
  generator.bidirectional_fraction = 0.2;
  generator.direction_noise = 0.12;
  generator.status_noise = 0.28;
  generator.num_communities = 20;
  generator.cross_community_fraction = 0.15;
  generator.seed = 101;
  const graph::MixedSocialNetwork reality =
      data::GenerateStatusNetwork(generator);

  // The "Facebook side" lost its directions: hide 75% of directed ties.
  util::Rng rng(103);
  const graph::HiddenDirectionSplit merged =
      graph::HideDirections(reality, /*directed_fraction=*/0.25, rng);
  std::printf(
      "merged network: %zu nodes, %zu ties — %zu directed (platform A), "
      "%zu undirected (platform B), %zu bidirectional\n",
      merged.network.num_nodes(), merged.network.num_ties(),
      merged.network.num_directed_ties(), merged.network.num_undirected_ties(),
      merged.network.num_bidirectional_ties());

  const core::MethodConfigs configs = core::MethodConfigs::FastDefaults();
  util::TablePrinter table({"method", "accuracy", "train_seconds"});
  for (core::Method method : core::AllMethods()) {
    util::Timer timer;
    const auto model = core::TrainMethod(merged.network, method, configs);
    const double seconds = timer.ElapsedSeconds();
    const double accuracy = core::DirectionDiscoveryAccuracy(merged, *model);
    table.AddRow({core::MethodName(method),
                  util::TablePrinter::FormatDouble(accuracy, 4),
                  util::TablePrinter::FormatDouble(seconds, 2)});
  }
  std::printf("\ndirection discovery on the undirected (platform B) ties:\n");
  table.Print();
  return 0;
}
