// Quickstart: the complete DeepDirect pipeline in ~60 lines.
//
//  1. Generate a synthetic directed social network.
//  2. Hide the directions of 70% of its directed ties (they become
//     undirected ties whose directions we want to recover).
//  3. Train DeepDirect on the resulting mixed network.
//  4. Discover directions for the undirected ties and measure accuracy
//     against the hidden ground truth.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/applications.h"
#include "core/deepdirect.h"
#include "data/generators.h"
#include "graph/algorithms.h"
#include "util/random.h"

int main() {
  using namespace deepdirect;

  // 1. A 800-node status-model social network (see src/data/generators.h).
  data::GeneratorConfig generator;
  generator.num_nodes = 800;
  generator.ties_per_node = 5.0;
  generator.bidirectional_fraction = 0.25;
  generator.direction_noise = 0.08;
  generator.seed = 7;
  const graph::MixedSocialNetwork network =
      data::GenerateStatusNetwork(generator);
  std::printf("network: %zu nodes, %zu ties (%zu directed, %zu bidirectional)\n",
              network.num_nodes(), network.num_ties(),
              network.num_directed_ties(), network.num_bidirectional_ties());

  // 2. Keep 30%% of directed ties labeled; hide the rest.
  util::Rng rng(13);
  const graph::HiddenDirectionSplit split =
      graph::HideDirections(network, /*directed_fraction=*/0.3, rng);
  std::printf("mixed network: %zu labeled directed ties, %zu undirected ties\n",
              split.network.num_directed_ties(),
              split.network.num_undirected_ties());

  // 3. Train DeepDirect (E-Step edge embedding + D-Step logistic head).
  core::DeepDirectConfig config;
  config.dimensions = 64;
  config.epochs = 5.0;
  config.seed = 17;
  const auto model = core::DeepDirectModel::Train(split.network, config);

  // 4. Recover hidden directions and evaluate.
  const double accuracy = core::DirectionDiscoveryAccuracy(split, *model);
  std::printf("direction discovery accuracy on hidden ties: %.4f\n", accuracy);

  // Peek at a few individual predictions.
  const auto predictions = core::DiscoverDirections(split.network, *model);
  std::printf("sample predictions (proposer -> responder, confidence):\n");
  for (size_t i = 0; i < predictions.size() && i < 5; ++i) {
    std::printf("  %u -> %u  (%.3f)\n", predictions[i].source,
                predictions[i].target, predictions[i].confidence);
  }
  return 0;
}
