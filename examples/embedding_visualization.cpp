// Embedding visualization (the Fig. 7 protocol as a reusable example).
//
// Extracts the top-degree subnetwork of a dataset, hides 90% of directed
// ties, embeds the network with DeepDirect and with LINE, projects the
// hidden ties' embeddings to 2D with t-SNE, writes both point clouds to
// CSV (color = true direction), and prints quantitative separability
// scores. DeepDirect's cloud separates by direction; LINE's does not.
//
// Build & run:  ./build/examples/embedding_visualization
// Output:       embedding_deepdirect.csv, embedding_line.csv

#include <cstdio>
#include <vector>

#include "core/deepdirect.h"
#include "core/line_model.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "ml/separability.h"
#include "ml/tsne.h"
#include "util/csv_writer.h"
#include "util/random.h"

namespace {

using namespace deepdirect;

// Collects the embedding rows of the hidden ties (true-direction arcs) into
// a matrix plus direction labels, projects with t-SNE, writes CSV, and
// returns (knn agreement, centroid accuracy).
struct VizScores {
  double knn;
  double centroid;
};

VizScores ProjectAndWrite(const ml::Matrix& tie_vectors,
                          const std::vector<int>& labels,
                          const std::string& csv_path) {
  ml::TsneConfig tsne;
  tsne.perplexity = 30.0;
  tsne.iterations = 400;
  tsne.seed = 5;
  const auto points = ml::TsneEmbed2D(tie_vectors, tsne);

  util::CsvWriter csv(csv_path);
  csv.WriteRow({"x", "y", "true_direction"});
  for (size_t i = 0; i < points.size(); ++i) {
    csv.WriteNumericRow(std::to_string(labels[i]),
                        {points[i][0], points[i][1]});
  }
  csv.Close();

  return {ml::KnnLabelAgreement(points, labels, 10),
          ml::NearestCentroidAccuracy(points, labels)};
}

}  // namespace

int main() {
  using namespace deepdirect;

  // Top-1%-degree subnetwork of (synthetic) Slashdot, per Sec. 6.2.5 —
  // our synthetic stand-in is smaller, so take the top 20% to get a
  // few-hundred-node core.
  const graph::MixedSocialNetwork slashdot =
      data::MakeDataset(data::DatasetId::kSlashdot);
  const graph::MixedSocialNetwork core_net =
      graph::TopDegreeSubnetwork(slashdot, 0.2);
  util::Rng rng(301);
  const graph::HiddenDirectionSplit split =
      graph::HideDirections(core_net, /*directed_fraction=*/0.1, rng);
  std::printf("visualization subnetwork: %zu nodes, %zu ties, %zu hidden\n",
              split.network.num_nodes(), split.network.num_ties(),
              split.hidden_true_arcs.size());

  // Cap the visualized ties so the O(n^2) t-SNE stays fast.
  std::vector<graph::ArcId> sample = split.hidden_true_arcs;
  if (sample.size() > 600) {
    rng.Shuffle(sample);
    sample.resize(600);
  }

  // --- DeepDirect tie embeddings.
  core::DeepDirectConfig dd_config;
  dd_config.dimensions = 64;
  dd_config.epochs = 5.0;
  dd_config.seed = 307;
  const auto deep = core::DeepDirectModel::Train(split.network, dd_config);

  // For each hidden tie, embed its canonical (smaller-endpoint) arc and
  // label it by whether that arc is the true direction — exactly the
  // red/blue coloring of Fig. 7.
  ml::Matrix deep_vectors(sample.size(), dd_config.dimensions);
  std::vector<int> labels(sample.size());
  for (size_t i = 0; i < sample.size(); ++i) {
    const graph::Arc& a = split.network.arc(sample[i]);
    const graph::NodeId lo = std::min(a.src, a.dst);
    const graph::NodeId hi = std::max(a.src, a.dst);
    labels[i] = (a.src == lo) ? 1 : 0;  // true direction is lo->hi?
    const auto row = deep->TieEmbedding(lo, hi);
    for (size_t k = 0; k < row.size(); ++k) deep_vectors.At(i, k) = row[k];
  }
  const VizScores deep_scores =
      ProjectAndWrite(deep_vectors, labels, "embedding_deepdirect.csv");

  // --- LINE tie embeddings (concatenated endpoints).
  core::LineModelConfig line_config;
  line_config.line.dimensions = 32;
  line_config.line.seed = 311;
  const auto line = core::LineModel::Train(split.network, line_config);
  ml::Matrix line_vectors(sample.size(), line->tie_feature_dims());
  std::vector<double> features(line->tie_feature_dims());
  for (size_t i = 0; i < sample.size(); ++i) {
    const graph::Arc& a = split.network.arc(sample[i]);
    const graph::NodeId lo = std::min(a.src, a.dst);
    const graph::NodeId hi = std::max(a.src, a.dst);
    line->TieFeatures(lo, hi, features);
    for (size_t k = 0; k < features.size(); ++k) {
      line_vectors.At(i, k) = static_cast<float>(features[k]);
    }
  }
  const VizScores line_scores =
      ProjectAndWrite(line_vectors, labels, "embedding_line.csv");

  std::printf("\nseparability of the 2D projections (higher = cleaner split):\n");
  std::printf("  %-12s knn=%.4f  centroid=%.4f\n", "DeepDirect",
              deep_scores.knn, deep_scores.centroid);
  std::printf("  %-12s knn=%.4f  centroid=%.4f\n", "LINE", line_scores.knn,
              line_scores.centroid);
  std::printf("\nwrote embedding_deepdirect.csv and embedding_line.csv\n");
  return 0;
}
