// tdl_cli: a command-line front end to the library for file-based use.
//
//   tdl_cli generate --dataset twitter [--scale 1.0] --output net.edges
//       Writes a synthetic mixed social network in edge-list format.
//
//   tdl_cli discover --input net.edges [--method deepdirect] \
//                    [--output predictions.csv] [--hide 0.5] [--seed 42]
//       Trains the chosen method on the network's directed ties and
//       predicts the direction of every undirected tie. With --hide F, the
//       input's directed ties are first split (F remain directed) and the
//       prediction accuracy on the hidden part is reported.
//
//   tdl_cli quantify --input net.edges [--method deepdirect] \
//                    [--output directionality.csv]
//       Emits the directionality values d(u,v), d(v,u) for every
//       bidirectional tie (the directionality adjacency matrix entries).
//
//   tdl_cli embed --input net.edges --output embeddings.csv [--dims 64]
//       Trains DeepDirect and exports the tie embedding matrix M
//       (one row per closure arc: u, v, m_uv...).
//
//   tdl_cli update --input net.edges --batch new1.edges[,new2.edges...] \
//                  --checkpoint-dir ckpt [--epochs-per-batch E]
//       Absorbs batches of newly-arrived ties into a trained DeepDirect
//       model: warm-starts M/N/(w', b') from the newest E-step checkpoint
//       in --checkpoint-dir, splices each batch into the network, and
//       retrains only the affected closure arcs. Saves the chained state
//       back so further updates pick it up.
//
//   tdl_cli serve --model model.dds [--cache N] [--ways N]
//       Answers d(u, v) queries over stdin/stdout against a servable model
//       exported with --save-model (accepted by discover, quantify, and
//       embed when the method is deepdirect). See serve/server.h for the
//       line protocol.
//
// Methods: deepdirect (default), hf, line, redirect-n, redirect-t.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/applications.h"
#include "core/deepdirect.h"
#include "core/incremental.h"
#include "core/models.h"
#include "core/sharded_trainer.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "graph/graph_io.h"
#include "kernels/dispatch.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace_buffer.h"
#include "serve/servable_model.h"
#include "serve/server.h"
#include "train/checkpoint.h"
#include "util/csv_writer.h"
#include "util/random.h"

namespace {

using namespace deepdirect;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tdl_cli generate --dataset <name> [--scale S] [--stream]"
               " --output F\n"
               "  tdl_cli discover --input F [--method M] [--output F]"
               " [--hide F] [--seed N] [--threads N] [--epochs E]\n"
               "                   [--shards N --shard-dir D"
               " [--shard-ram-mb M]]\n"
               "  tdl_cli quantify --input F [--method M] [--output F]"
               " [--threads N]\n"
               "  tdl_cli embed    --input F --output F [--dims N]"
               " [--threads N]\n"
               "  tdl_cli update   --input F --batch F[,F...]"
               " --checkpoint-dir D\n"
               "                   [--epochs-per-batch E] [--threads N]"
               " [--output F]\n"
               "                   [--merged-output F] [--truth F]"
               " [--save-model F]\n"
               "  tdl_cli serve    --model F [--cache N] [--ways N]\n"
               "methods: deepdirect hf line redirect-n redirect-t\n"
               "datasets: twitter livejournal epinions slashdot tencent\n"
               "--threads: workers for graph loading, preprocessing, and"
               " SGD\n  (default 1; 0 = all cores; preprocessing stays"
               " bit-identical at any\n  count, multi-worker SGD is"
               " Hogwild)\n"
               "--metrics-out: write a training-telemetry snapshot (phase"
               " timings,\n  losses, sampler counters) to the given path"
               " (.csv = CSV, else JSON);\n  accepted by every command\n"
               "--checkpoint-dir: write crash-safe training checkpoints"
               " into this\n  directory (discover/quantify/embed);"
               " --checkpoint-every N sets the\n  epoch cadence (default 1),"
               " --checkpoint-keep K the retention (default\n  3, 0 = keep"
               " all), and --resume restarts from the newest valid\n"
               "  checkpoint after an interruption\n"
               "--metrics-interval-sec S: with --metrics-out, also append a"
               " registry\n  snapshot every S seconds to"
               " <metrics-out>.timeline.jsonl (one JSON\n  object per line)\n"
               "--trace-out: record phase/epoch/checkpoint spans and write a"
               " Chrome\n  trace_event JSON timeline to the given path (open"
               " in Perfetto or\n  chrome://tracing); accepted by every"
               " command\n"
               "--save-model: after training (discover/quantify/embed with"
               " the\n  deepdirect method), export the model in the"
               " mmap-friendly servable\n  format `tdl_cli serve` consumes\n"
               "serve: one request per stdin line — `u v [u v ...]` answers"
               " one\n  d(u,v) per pair (NA for unknown ties), `stats` prints"
               " cache counters,\n  `quit` exits; --cache sets the hot-tie"
               " cache capacity in slots\n  (default 4096, 0 = off),"
               " --ways its set associativity (default 8)\n"
               "--stream: generate straight to disk without building the"
               " network in\n  RAM (the path for 10M+-tie graphs feeding"
               " out-of-core training)\n"
               "--shards/--shard-dir/--shard-ram-mb: train DeepDirect"
               " out-of-core —\n  the embedding matrices live in mmap-backed"
               " shard files under\n  --shard-dir with at most --shard-ram-mb"
               " MB (default 256) of parameter\n  pages resident;"
               " single-threaded sharded runs are bit-identical to\n"
               "  in-RAM training\n"
               "--epochs: override the E-step epoch count τ"
               " (discover/quantify)\n"
               "update: --batch is a comma-separated list of delta files in"
               " edge-list\n  format, applied in order; each warm-starts"
               " from the previous state\n  and retrains only arcs touched"
               " by the batch (--epochs-per-batch\n  passes over the"
               " affected pair mass, default 2). The final E-step\n"
               "  state of a run with --checkpoint-dir is always written,"
               " so any such\n  run can seed updates\n"
               "--truth: score direction discovery against a file of 'u v'"
               " lines\n  (true direction u -> v) via d(u,v) >= d(v,u)"
               " (discover/update)\n"
               "--merged-output: write the post-update network in edge-list"
               " format\n"
               "--kernels: inner-loop dispatch — auto (default: SIMD when"
               " the CPU\n  supports it), scalar (bit-identical to the"
               " historical serial\n  trainers), or simd (force the"
               " vectorized path); the DD_KERNELS\n  env var sets the"
               " default\n");
  return 2;
}

std::optional<core::Method> ParseMethod(const std::string& name) {
  if (name == "deepdirect") return core::Method::kDeepDirect;
  if (name == "hf") return core::Method::kHf;
  if (name == "line") return core::Method::kLine;
  if (name == "redirect-n") return core::Method::kRedirectNsm;
  if (name == "redirect-t") return core::Method::kRedirectTsm;
  return std::nullopt;
}

// Strict parse for --threads: the whole string must be a base-10 number.
// (strtoull alone would turn a typo like "abc" into 0 = all cores.)
std::optional<size_t> ParseThreads(const std::string& text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return std::nullopt;
  return static_cast<size_t>(value);
}

std::optional<data::DatasetId> ParseDataset(const std::string& name) {
  if (name == "twitter") return data::DatasetId::kTwitter;
  if (name == "livejournal") return data::DatasetId::kLiveJournal;
  if (name == "epinions") return data::DatasetId::kEpinions;
  if (name == "slashdot") return data::DatasetId::kSlashdot;
  if (name == "tencent") return data::DatasetId::kTencent;
  return std::nullopt;
}

// Flat --key [value] parsing; a flag followed by another flag (or the end
// of the argument list) is valueless and maps to the empty string, so bare
// switches like --resume parse alongside --key value pairs.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    const std::string key = argv[i] + 2;
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[key] = argv[i + 1];
      ++i;
    } else {
      flags[key] = "";
    }
  }
  return flags;
}

int RunGenerate(const std::map<std::string, std::string>& flags) {
  const auto dataset_it = flags.find("dataset");
  const auto output_it = flags.find("output");
  if (dataset_it == flags.end() || output_it == flags.end()) return Usage();
  const auto dataset = ParseDataset(dataset_it->second);
  if (!dataset.has_value()) return Usage();
  const double scale =
      flags.contains("scale") ? std::atof(flags.at("scale").c_str()) : 1.0;

  if (flags.contains("stream")) {
    // Stream the tie sequence straight to disk — same process, same RNG
    // stream, so the file matches what SaveEdgeList would have written,
    // without ever holding the network in RAM.
    const auto config = data::DatasetConfig(*dataset, scale);
    const auto status =
        data::WriteStatusNetworkEdgeList(config, output_it->second);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("streamed %zu-node network to %s\n", config.num_nodes,
                output_it->second.c_str());
    return 0;
  }

  const auto net = data::MakeDataset(*dataset, scale);
  const auto status = graph::SaveEdgeList(net, output_it->second);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu nodes / %zu ties to %s\n", net.num_nodes(),
              net.num_ties(), output_it->second.c_str());
  return 0;
}

// The --checkpoint-dir / --checkpoint-every / --checkpoint-keep / --resume
// flag family.
struct CheckpointFlags {
  std::string dir;  ///< empty = checkpointing off
  train::CheckpointPolicy policy;
  bool resume = false;
};

// Parses the checkpoint flags; nullopt after printing an error when a value
// is malformed or --resume is given without --checkpoint-dir.
std::optional<CheckpointFlags> ParseCheckpointFlags(
    const std::map<std::string, std::string>& flags) {
  CheckpointFlags out;
  if (flags.contains("checkpoint-dir")) out.dir = flags.at("checkpoint-dir");
  out.resume = flags.contains("resume");
  if (out.resume && out.dir.empty()) {
    std::fprintf(stderr, "error: --resume requires --checkpoint-dir\n");
    return std::nullopt;
  }
  const auto number_flag = [&](const char* name,
                               uint64_t* value) -> bool {
    if (!flags.contains(name)) return true;
    const auto parsed = ParseThreads(flags.at(name));
    if (!parsed.has_value()) {
      std::fprintf(stderr, "error: --%s expects a number, got '%s'\n", name,
                   flags.at(name).c_str());
      return false;
    }
    *value = *parsed;
    return true;
  };
  uint64_t keep = out.policy.keep_last;
  if (!number_flag("checkpoint-every", &out.policy.every_n_epochs) ||
      !number_flag("checkpoint-keep", &keep)) {
    return std::nullopt;
  }
  out.policy.keep_last = static_cast<size_t>(keep);
  // CLI runs always persist the final E-step state: `tdl_cli update`
  // warm-starts from it, and an ordinary resume snapshot is one epoch
  // short of the model the run actually produced.
  out.policy.write_final = true;
  return out;
}

// Parses the optional --threads flag; nullopt after printing an error when
// the value is malformed, 1 (deterministic serial default) when absent.
std::optional<size_t> ThreadsFlag(
    const std::map<std::string, std::string>& flags) {
  if (!flags.contains("threads")) return 1;
  const auto threads = ParseThreads(flags.at("threads"));
  if (!threads.has_value()) {
    std::fprintf(stderr, "error: --threads expects a number, got '%s'\n",
                 flags.at("threads").c_str());
  }
  return threads;
}

// Handles --save-model: exports `model` (which must be a DeepDirect model)
// in the servable DDS1 format. Returns 0, or 1 after printing an error.
int MaybeSaveModel(const std::map<std::string, std::string>& flags,
                   const core::DirectionalityModel& model) {
  if (!flags.contains("save-model")) return 0;
  const std::string& path = flags.at("save-model");
  if (path.empty()) {
    std::fprintf(stderr, "error: --save-model expects a path\n");
    return 1;
  }
  const auto* deepdirect =
      dynamic_cast<const core::DeepDirectModel*>(&model);
  if (deepdirect == nullptr) {
    std::fprintf(stderr,
                 "error: --save-model requires --method deepdirect (other "
                 "methods have no servable form)\n");
    return 1;
  }
  const auto status = deepdirect->ExportServable(path);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote servable model to %s\n", path.c_str());
  return 0;
}

// Evaluates direction-discovery accuracy against a ground-truth file of
// `u v` lines (true direction u -> v; blank lines and `#` comments are
// skipped) via the paper's d(u,v) >= d(v,u) rule. A pair the model cannot
// evaluate is an error — the truth file must describe ties of the network
// the model was trained on. Returns 0 after printing the accuracy.
int ReportTruthAccuracy(const std::string& path,
                        const core::DirectionalityModel& model) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "error: cannot open truth file %s\n", path.c_str());
    return 1;
  }
  size_t correct = 0;
  size_t total = 0;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    unsigned long long u = 0;
    unsigned long long v = 0;
    char trailing = '\0';
    if (std::sscanf(line.c_str(), "%llu %llu %c", &u, &v, &trailing) != 2) {
      std::fprintf(stderr, "error: %s line %zu: expected 'u v', got '%s'\n",
                   path.c_str(), line_no, line.c_str());
      return 1;
    }
    const auto d_uv = model.TryDirectionality(static_cast<graph::NodeId>(u),
                                              static_cast<graph::NodeId>(v));
    const auto d_vu = model.TryDirectionality(static_cast<graph::NodeId>(v),
                                              static_cast<graph::NodeId>(u));
    if (!d_uv.ok() || !d_vu.ok()) {
      std::fprintf(stderr,
                   "error: %s line %zu: tie %llu %llu is not evaluable by "
                   "this model (%s)\n",
                   path.c_str(), line_no, u, v,
                   (d_uv.ok() ? d_vu : d_uv).status().ToString().c_str());
      return 1;
    }
    if (d_uv.value() >= d_vu.value()) ++correct;
    ++total;
  }
  if (total == 0) {
    std::fprintf(stderr, "error: truth file %s has no ties\n", path.c_str());
    return 1;
  }
  std::printf("accuracy on truth file: %.4f (%zu/%zu)\n",
              static_cast<double>(correct) / static_cast<double>(total),
              correct, total);
  return 0;
}

int RunDiscoverOrQuantify(const std::string& command,
                          const std::map<std::string, std::string>& flags) {
  const auto input_it = flags.find("input");
  if (input_it == flags.end()) return Usage();
  const auto threads = ThreadsFlag(flags);
  if (!threads.has_value()) return 1;
  auto loaded = graph::LoadEdgeList(input_it->second, *threads);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const auto method =
      ParseMethod(flags.contains("method") ? flags.at("method")
                                           : "deepdirect");
  if (!method.has_value()) return Usage();
  const uint64_t seed =
      flags.contains("seed") ? std::strtoull(flags.at("seed").c_str(),
                                             nullptr, 10)
                             : 42;

  graph::MixedSocialNetwork network = std::move(loaded).value();
  std::optional<graph::HiddenDirectionSplit> split;
  if (command == "discover" && flags.contains("hide")) {
    const double hide = std::atof(flags.at("hide").c_str());
    util::Rng rng(seed);
    split = graph::HideDirections(network, 1.0 - hide, rng);
  }
  const graph::MixedSocialNetwork& train_net =
      split.has_value() ? split->network : network;

  if (train_net.num_directed_ties() == 0) {
    std::fprintf(stderr,
                 "error: the network has no directed ties; the TDL problem "
                 "needs labeled data\n");
    return 1;
  }

  auto configs = core::MethodConfigs::FastDefaults();
  configs.SetNumThreads(*threads);
  const auto ckpt = ParseCheckpointFlags(flags);
  if (!ckpt.has_value()) return 1;
  if (!ckpt->dir.empty()) {
    configs.SetCheckpointing(ckpt->dir, ckpt->policy, ckpt->resume);
  }
  if (flags.contains("epochs")) {
    configs.deepdirect.epochs = std::atof(flags.at("epochs").c_str());
  }

  // The --shards family routes DeepDirect training out-of-core.
  size_t shards = 0;
  size_t shard_ram_mb = 256;
  const auto size_flag = [&](const char* name, size_t* value) -> bool {
    if (!flags.contains(name)) return true;
    const auto parsed = ParseThreads(flags.at(name));
    if (!parsed.has_value()) {
      std::fprintf(stderr, "error: --%s expects a number, got '%s'\n", name,
                   flags.at(name).c_str());
      return false;
    }
    *value = *parsed;
    return true;
  };
  if (!size_flag("shards", &shards) ||
      !size_flag("shard-ram-mb", &shard_ram_mb)) {
    return 1;
  }

  std::printf("training %s on %zu nodes / %zu ties (%zu directed)...\n",
              core::MethodName(*method), train_net.num_nodes(),
              train_net.num_ties(), train_net.num_directed_ties());
  std::unique_ptr<core::DirectionalityModel> model;
  if (shards > 0) {
    if (*method != core::Method::kDeepDirect) {
      std::fprintf(stderr,
                   "error: --shards requires --method deepdirect\n");
      return 1;
    }
    if (!flags.contains("shard-dir") || flags.at("shard-dir").empty()) {
      std::fprintf(stderr, "error: --shards requires --shard-dir\n");
      return 1;
    }
    core::DeepDirectConfig config = configs.deepdirect;
    config.sharding.num_shards = shards;
    config.sharding.dir = flags.at("shard-dir");
    config.sharding.ram_budget_mb = shard_ram_mb;
    auto trained = core::ShardedDeepDirectModel::Train(train_net, config);
    if (!trained.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   trained.status().ToString().c_str());
      return 1;
    }
    model = std::move(trained).value();
  } else {
    model = core::TrainMethod(train_net, *method, configs);
  }

  const std::string output =
      flags.contains("output") ? flags.at("output") : "";
  util::CsvWriter csv(output.empty() ? "/dev/null" : output);

  if (command == "discover") {
    csv.WriteRow({"proposer", "responder", "confidence"});
    const auto predictions = core::DiscoverDirections(train_net, *model);
    for (const auto& p : predictions) {
      csv.WriteRow({std::to_string(p.source), std::to_string(p.target),
                    std::to_string(p.confidence)});
    }
    std::printf("predicted directions for %zu undirected ties\n",
                predictions.size());
    if (split.has_value()) {
      std::printf("accuracy on hidden ground truth: %.4f\n",
                  core::DirectionDiscoveryAccuracy(*split, *model));
    }
    if (flags.contains("truth")) {
      const int rc = ReportTruthAccuracy(flags.at("truth"), *model);
      if (rc != 0) return rc;
    }
  } else {  // quantify
    csv.WriteRow({"u", "v", "d_uv", "d_vu"});
    size_t count = 0;
    for (graph::ArcId id : train_net.bidirectional_arcs()) {
      const auto& arc = train_net.arc(id);
      if (arc.src > arc.dst) continue;
      csv.WriteRow({std::to_string(arc.src), std::to_string(arc.dst),
                    std::to_string(model->Directionality(arc.src, arc.dst)),
                    std::to_string(model->Directionality(arc.dst, arc.src))});
      ++count;
    }
    std::printf("quantified %zu bidirectional ties\n", count);
  }
  if (!output.empty()) std::printf("wrote %s\n", output.c_str());
  return MaybeSaveModel(flags, *model);
}

int RunEmbed(const std::map<std::string, std::string>& flags) {
  const auto input_it = flags.find("input");
  const auto output_it = flags.find("output");
  if (input_it == flags.end() || output_it == flags.end()) return Usage();
  const auto threads = ThreadsFlag(flags);
  if (!threads.has_value()) return 1;
  auto loaded = graph::LoadEdgeList(input_it->second, *threads);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const auto& network = loaded.value();
  if (network.num_directed_ties() == 0) {
    std::fprintf(stderr, "error: the network has no directed ties\n");
    return 1;
  }
  core::DeepDirectConfig config =
      core::MethodConfigs::FastDefaults().deepdirect;
  if (flags.contains("dims")) {
    config.dimensions = std::strtoull(flags.at("dims").c_str(), nullptr, 10);
  }
  config.num_threads = *threads;
  config.d_step.num_threads = *threads;
  const auto ckpt = ParseCheckpointFlags(flags);
  if (!ckpt.has_value()) return 1;
  if (!ckpt->dir.empty()) {
    config.checkpoint = {ckpt->dir, "deepdirect.estep", ckpt->policy,
                         ckpt->resume};
    config.d_step.checkpoint = {ckpt->dir, "deepdirect.dstep", ckpt->policy,
                                ckpt->resume};
  }
  std::printf("embedding %zu ties at l=%zu...\n", network.num_ties(),
              config.dimensions);
  const auto model = core::DeepDirectModel::Train(network, config);

  util::CsvWriter csv(output_it->second);
  std::vector<std::string> header{"u", "v"};
  for (size_t k = 0; k < config.dimensions; ++k) {
    header.push_back("m" + std::to_string(k));
  }
  csv.WriteRow(header);
  std::vector<std::string> fields;
  for (size_t e = 0; e < model->index().num_arcs(); ++e) {
    const auto [u, v] = model->index().ArcAt(e);
    const auto row = model->embeddings().Row(e);
    fields.clear();
    fields.push_back(std::to_string(u));
    fields.push_back(std::to_string(v));
    for (float value : row) fields.push_back(std::to_string(value));
    csv.WriteRow(fields);
  }
  std::printf("wrote %zu tie-arc embeddings to %s\n",
              model->index().num_arcs(), output_it->second.c_str());
  return MaybeSaveModel(flags, *model);
}

// Streaming tie-batch update: warm-start from the newest E-step checkpoint
// and absorb one or more delta files without a full retrain. Batches are
// applied in the order given; each chains the state (and merged network)
// into the next. After all batches succeed the updated state is saved back
// into the checkpoint directory so further updates chain across processes.
int RunUpdate(const std::map<std::string, std::string>& flags) {
  const auto input_it = flags.find("input");
  const auto batch_it = flags.find("batch");
  const auto dir_it = flags.find("checkpoint-dir");
  if (input_it == flags.end() || batch_it == flags.end() ||
      dir_it == flags.end() || batch_it->second.empty() ||
      dir_it->second.empty()) {
    return Usage();
  }
  const auto threads = ThreadsFlag(flags);
  if (!threads.has_value()) return 1;

  core::IncrementalOptions options;
  if (flags.contains("epochs-per-batch")) {
    options.epochs_per_batch = std::atof(flags.at("epochs-per-batch").c_str());
  }

  auto state_result = train::LoadEStepState(dir_it->second);
  if (!state_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 state_result.status().ToString().c_str());
    return 1;
  }
  train::EStepState state = std::move(state_result).value();

  auto loaded = graph::LoadEdgeList(input_it->second, *threads);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  graph::MixedSocialNetwork network = std::move(loaded).value();

  // The hyperparameters mirror the training CLI's defaults; the embedding
  // width is dictated by the checkpointed state, not a flag.
  core::DeepDirectConfig config =
      core::MethodConfigs::FastDefaults().deepdirect;
  config.dimensions = state.dimensions;
  config.num_threads = *threads;
  config.d_step.num_threads = *threads;
  if (flags.contains("seed")) {
    config.seed = std::strtoull(flags.at("seed").c_str(), nullptr, 10);
  }

  std::printf("warm-starting from %s (epoch %llu, %zu arcs, l=%zu)\n",
              dir_it->second.c_str(),
              static_cast<unsigned long long>(state.epochs_done),
              state.num_arcs, state.dimensions);

  // --batch takes a comma-separated list; each file is one batch, applied
  // in order.
  std::vector<std::string> batch_paths;
  {
    std::string remaining = batch_it->second;
    size_t pos = 0;
    while ((pos = remaining.find(',')) != std::string::npos) {
      batch_paths.push_back(remaining.substr(0, pos));
      remaining.erase(0, pos + 1);
    }
    batch_paths.push_back(remaining);
  }

  std::unique_ptr<core::DeepDirectModel> model;
  for (const std::string& path : batch_paths) {
    auto batch = train::LoadTieBatch(path);
    if (!batch.ok()) {
      std::fprintf(stderr, "error: %s\n", batch.status().ToString().c_str());
      return 1;
    }
    auto updated = core::DeepDirectModel::ApplyTieBatch(
        network, batch.value(), state, config, options);
    if (!updated.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                   updated.status().ToString().c_str());
      return 1;
    }
    core::IncrementalUpdate update = std::move(updated).value();
    std::printf(
        "applied %s: +%zu ties (+%zu nodes), %zu affected arcs, "
        "%llu E-step steps\n",
        path.c_str(), update.stats.new_ties, update.stats.new_nodes,
        update.stats.affected_arcs,
        static_cast<unsigned long long>(update.stats.estep_steps));
    network = std::move(update.network);
    state = std::move(update.state);
    model = std::move(update.model);
  }

  const auto saved =
      train::SaveEStepState(dir_it->second, "deepdirect.estep", state);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("saved updated E-step state (epoch %llu)\n",
              static_cast<unsigned long long>(state.epochs_done));

  if (flags.contains("merged-output")) {
    const auto status =
        graph::SaveEdgeList(network, flags.at("merged-output"));
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote merged network to %s\n",
                flags.at("merged-output").c_str());
  }

  if (model == nullptr) {
    // Zero batch files cannot reach here (--batch is required and yields
    // at least one path), but guard the dereferences below anyway.
    std::fprintf(stderr, "error: no batches applied\n");
    return 1;
  }

  if (flags.contains("output")) {
    util::CsvWriter csv(flags.at("output"));
    csv.WriteRow({"proposer", "responder", "confidence"});
    const auto predictions = core::DiscoverDirections(network, *model);
    for (const auto& p : predictions) {
      csv.WriteRow({std::to_string(p.source), std::to_string(p.target),
                    std::to_string(p.confidence)});
    }
    std::printf("predicted directions for %zu undirected ties\n",
                predictions.size());
    std::printf("wrote %s\n", flags.at("output").c_str());
  }
  if (flags.contains("truth")) {
    const int rc = ReportTruthAccuracy(flags.at("truth"), *model);
    if (rc != 0) return rc;
  }
  return MaybeSaveModel(flags, *model);
}

// Opens a servable model and answers queries over stdin/stdout until EOF
// or "quit". Banners and the final summary go to stderr so stdout carries
// nothing but protocol responses (scripted clients diff it directly).
int RunServe(const std::map<std::string, std::string>& flags) {
  const auto model_it = flags.find("model");
  if (model_it == flags.end() || model_it->second.empty()) return Usage();
  serve::ServeOptions options;
  options.cache_capacity = 4096;
  const auto size_flag = [&](const char* name, size_t* value) -> bool {
    if (!flags.contains(name)) return true;
    const auto parsed = ParseThreads(flags.at(name));
    if (!parsed.has_value()) {
      std::fprintf(stderr, "error: --%s expects a number, got '%s'\n", name,
                   flags.at(name).c_str());
      return false;
    }
    *value = *parsed;
    return true;
  };
  if (!size_flag("cache", &options.cache_capacity) ||
      !size_flag("ways", &options.cache_ways)) {
    return 1;
  }
  auto opened = serve::ServableModel::Open(model_it->second, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  const serve::ServableModel model = std::move(opened).value();
  std::fprintf(stderr,
               "serving %llu tie arcs over %llu nodes (l=%llu, cache %zu)\n",
               static_cast<unsigned long long>(model.num_arcs()),
               static_cast<unsigned long long>(model.num_nodes()),
               static_cast<unsigned long long>(model.dimensions()),
               options.cache_capacity);
  const auto stats = serve::RunServeLoop(model, std::cin, std::cout);
  std::fprintf(stderr,
               "served %llu queries over %llu requests (%llu malformed)\n",
               static_cast<unsigned long long>(stats.queries),
               static_cast<unsigned long long>(stats.lines),
               static_cast<unsigned long long>(stats.errors));
  return 0;
}

// Writes the metrics snapshot accumulated during this invocation.
// Extension picks the format: .csv = long-form CSV, anything else = JSON.
int WriteMetricsSnapshot(const std::string& path) {
  const auto snapshot = obs::Registry::Default().Snapshot();
  const bool csv = path.size() >= 4 &&
                   path.compare(path.size() - 4, 4, ".csv") == 0;
  const auto status =
      csv ? snapshot.WriteCsv(path) : snapshot.WriteJson(path);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote metrics snapshot to %s\n", path.c_str());
  return 0;
}

int Dispatch(const std::string& command,
             const std::map<std::string, std::string>& flags) {
  if (command == "generate") return RunGenerate(flags);
  if (command == "discover" || command == "quantify") {
    return RunDiscoverOrQuantify(command, flags);
  }
  if (command == "embed") return RunEmbed(flags);
  if (command == "update") return RunUpdate(flags);
  if (command == "serve") return RunServe(flags);
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  // Kernel dispatch must be pinned before any trainer touches the SIMD
  // layer; the flag overrides the DD_KERNELS environment default.
  if (flags.contains("kernels") &&
      !kernels::SetMode(flags.at("kernels"))) {
    std::fprintf(stderr,
                 "error: --kernels expects auto|scalar|simd, got '%s'\n",
                 flags.at("kernels").c_str());
    return 2;
  }
  // Telemetry must be switched on before any work runs so graph loading
  // and every trainer record into the snapshot / trace timeline.
  const bool want_metrics = flags.contains("metrics-out");
  if (want_metrics) obs::Registry::Default().set_enabled(true);
  const bool want_trace = flags.contains("trace-out");
  if (want_trace) obs::TraceBuffer::Default().set_enabled(true);

  std::optional<obs::TimelineWriter> timeline;
  if (flags.contains("metrics-interval-sec")) {
    if (!want_metrics) {
      std::fprintf(stderr,
                   "error: --metrics-interval-sec requires --metrics-out\n");
      return 2;
    }
    const double interval = std::atof(flags.at("metrics-interval-sec").c_str());
    if (interval <= 0.0) {
      std::fprintf(stderr,
                   "error: --metrics-interval-sec expects a positive number,"
                   " got '%s'\n",
                   flags.at("metrics-interval-sec").c_str());
      return 2;
    }
    timeline.emplace(flags.at("metrics-out") + ".timeline.jsonl", interval);
    const auto status = timeline->Start();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  const int rc = Dispatch(command, flags);
  if (timeline.has_value()) timeline->Stop();
  if (want_trace && rc == 0) {
    const auto status =
        obs::TraceBuffer::Default().WriteChromeTrace(flags.at("trace-out"));
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote trace timeline to %s\n",
                flags.at("trace-out").c_str());
  }
  if (want_metrics && rc == 0) {
    return WriteMetricsSnapshot(flags.at("metrics-out"));
  }
  return rc;
}
