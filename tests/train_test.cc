// Tests for the unified SGD training engine (src/train/): learning-rate
// schedules, sharded RNG streams, the thread pool, the progress reporter,
// the SgdDriver's serial-determinism and multi-worker coverage guarantees,
// and the interrupt/resume goldens for all four production trainers.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <vector>

#include "core/applications.h"
#include "core/deepdirect.h"
#include "data/generators.h"
#include "embedding/line.h"
#include "embedding/random_walks.h"
#include "embedding/skipgram.h"
#include "graph/algorithms.h"
#include "ml/dataset.h"
#include "ml/logistic_regression.h"
#include "train/checkpoint.h"
#include "train/hogwild.h"
#include "train/lr_schedule.h"
#include "train/progress_reporter.h"
#include "train/sgd_driver.h"
#include "train/sharded_rng.h"
#include "train/thread_pool.h"
#include "util/random.h"

namespace deepdirect::train {
namespace {

TEST(LrScheduleTest, ClampedLinearMatchesWord2vecDecay) {
  const LrSchedule lr{0.05, 0.01, LrSchedule::Decay::kClampedLinear};
  EXPECT_DOUBLE_EQ(lr.At(0, 100), 0.05);
  EXPECT_DOUBLE_EQ(lr.At(50, 100), 0.05 * 0.5);
  // Past the floor the rate clamps at initial · min_fraction.
  EXPECT_DOUBLE_EQ(lr.At(99, 100), 0.05 * 0.01);
  EXPECT_DOUBLE_EQ(lr.At(100, 100), 0.05 * 0.01);
}

TEST(LrScheduleTest, InterpolatedLinearEndsExactlyAtFloor) {
  const LrSchedule lr{0.1, 0.1, LrSchedule::Decay::kInterpolatedLinear};
  EXPECT_DOUBLE_EQ(lr.At(0, 200), 0.1);
  EXPECT_DOUBLE_EQ(lr.At(100, 200), 0.1 * (1.0 - 0.9 * 0.5));
  EXPECT_DOUBLE_EQ(lr.At(200, 200), 0.1 * 0.1);
}

TEST(LrScheduleTest, ZeroTotalReturnsInitial) {
  const LrSchedule lr{0.05, 0.01, LrSchedule::Decay::kClampedLinear};
  EXPECT_DOUBLE_EQ(lr.At(0, 0), 0.05);
}

TEST(LrScheduleTest, RateIsNeverNegativeOrNanThroughTheFinalStep) {
  // Both decay forms, including a zero floor, must stay finite and
  // non-negative across the whole budget and land exactly on
  // initial · min_fraction at t = T (the step the Hogwild stride
  // partition can actually reach).
  for (const auto decay : {LrSchedule::Decay::kClampedLinear,
                           LrSchedule::Decay::kInterpolatedLinear}) {
    for (const double min_fraction : {0.0, 0.01, 0.5, 1.0}) {
      const LrSchedule lr{0.05, min_fraction, decay};
      for (const uint64_t total : {uint64_t{1}, uint64_t{7},
                                   uint64_t{1'000'000}}) {
        for (const uint64_t step : {uint64_t{0}, total / 2, total - 1,
                                    total}) {
          const double rate = lr.At(step, total);
          EXPECT_TRUE(std::isfinite(rate))
              << "decay " << static_cast<int>(decay) << " step " << step
              << "/" << total;
          EXPECT_GE(rate, 0.0);
          EXPECT_LE(rate, 0.05);
        }
        EXPECT_DOUBLE_EQ(lr.At(total, total), 0.05 * min_fraction);
      }
    }
  }
}

TEST(ShardedRngTest, ShardsAreReproducible) {
  const ShardedRng shards(77);
  util::Rng a = shards.MakeShard(3);
  util::Rng b = shards.MakeShard(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(ShardedRngTest, ManyShardStreamsArePairwiseIndependent) {
  // Every pair of worker streams must be decorrelated, not just shard 0
  // and 1: a weak mixing constant could collapse two distant shards onto
  // the same Weyl point while the adjacent-shard test still passes.
  constexpr size_t kShards = 8;
  constexpr size_t kDraws = 64;
  const ShardedRng shards(123);
  std::vector<std::vector<uint64_t>> streams(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    util::Rng rng = shards.MakeShard(s);
    for (size_t i = 0; i < kDraws; ++i) streams[s].push_back(rng.Next());
  }
  for (size_t a = 0; a < kShards; ++a) {
    for (size_t b = a + 1; b < kShards; ++b) {
      size_t matches = 0;
      for (size_t i = 0; i < kDraws; ++i) {
        matches += streams[a][i] == streams[b][i];
      }
      EXPECT_LT(matches, 2u) << "shard " << a << " vs shard " << b;
    }
  }
}

TEST(ShardedRngTest, ShardsDifferFromEachOtherAndTheBaseStream) {
  const ShardedRng shards(77);
  util::Rng base(77);
  util::Rng s0 = shards.MakeShard(0);
  util::Rng s1 = shards.MakeShard(1);
  // Compare a prefix of each stream; identical streams would match on all.
  int s0_vs_s1 = 0, s0_vs_base = 0;
  for (int i = 0; i < 64; ++i) {
    const uint64_t v0 = s0.Next(), v1 = s1.Next(), vb = base.Next();
    s0_vs_s1 += (v0 == v1);
    s0_vs_base += (v0 == vb);
  }
  EXPECT_LT(s0_vs_s1, 2);
  EXPECT_LT(s0_vs_base, 2);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitMakesTaskWritesVisible) {
  ThreadPool pool(2);
  int value = 0;
  pool.Submit([&] { value = 42; });
  pool.Wait();
  EXPECT_EQ(value, 42);
}

TEST(ThreadPoolTest, ZeroTasksReturnsWithoutRunningAnything) {
  ThreadPool pool(3);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  pool.Wait();  // nothing in flight: must not hang
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, MoreWorkersThanTasksRunsEachExactlyOnce) {
  // Idle workers must neither steal a task twice nor deadlock the drain.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::HardwareConcurrency());
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

TEST(ProgressReporterTest, FiresOnCadenceAndAtBudgetEnd) {
  std::vector<uint64_t> steps;
  std::vector<double> means;
  ProgressReporter reporter(
      [&](uint64_t step, uint64_t total, double mean) {
        EXPECT_EQ(total, 10u);
        steps.push_back(step);
        means.push_back(mean);
      },
      /*report_every=*/4, /*total=*/10);
  for (int i = 0; i < 10; ++i) reporter.Record(1, 2.0);
  // Windows close at steps 4, 8 and at the end of the budget (step 10).
  ASSERT_EQ(steps, (std::vector<uint64_t>{4, 8, 10}));
  for (double m : means) EXPECT_DOUBLE_EQ(m, 2.0);
  EXPECT_EQ(reporter.processed(), 10u);
}

TEST(ProgressReporterTest, NullCallbackStillCountsSteps) {
  ProgressReporter reporter(nullptr, 4, 10);
  reporter.Record(7, 1.0);
  EXPECT_EQ(reporter.processed(), 7u);
}

TEST(SgdDriverTest, SerialPathMatchesInlineLoopBitForBit) {
  // The driver's one-worker path must consume the caller's Rng exactly like
  // a hand-written loop: same draws, same lr sequence, same final params.
  const uint64_t kSteps = 1000;
  const LrSchedule lr{0.05, 0.01, LrSchedule::Decay::kClampedLinear};

  std::vector<float> params_a(64, 0.0f);
  util::Rng rng_a(5);
  for (uint64_t step = 0; step < kSteps; ++step) {
    const double rate = lr.At(step, kSteps);
    const size_t i = rng_a.NextIndex(params_a.size());
    params_a[i] += static_cast<float>(rate * (rng_a.NextDouble() - 0.5));
  }

  std::vector<float> params_b(64, 0.0f);
  util::Rng rng_b(5);
  SgdOptions options;
  options.steps = kSteps;
  options.num_threads = 1;
  options.lr = lr;
  SgdDriver driver(options);
  EXPECT_EQ(driver.num_workers(), 1u);
  driver.Run(rng_b, [&](auto access, const SgdStep& ctx) -> double {
    using A = decltype(access);
    const size_t i = ctx.rng.NextIndex(params_b.size());
    A::Store(params_b[i],
             A::Load(params_b[i]) +
                 static_cast<float>(ctx.lr * (ctx.rng.NextDouble() - 0.5)));
    return 0.0;
  });

  for (size_t i = 0; i < params_a.size(); ++i) {
    EXPECT_EQ(params_a[i], params_b[i]) << "param " << i;
  }
  // Both consumed the same number of draws from the same stream.
  EXPECT_EQ(rng_a.Next(), rng_b.Next());
}

TEST(SgdDriverTest, SerialRunSumsLosses) {
  SgdOptions options;
  options.steps = 10;
  SgdDriver driver(options);
  util::Rng rng(1);
  const double total = driver.Run(
      rng, [](auto, const SgdStep& ctx) { return static_cast<double>(ctx.step); });
  EXPECT_DOUBLE_EQ(total, 45.0);  // 0 + 1 + … + 9
}

TEST(SgdDriverTest, MultiWorkerCoversEveryStepExactlyOnce) {
  const uint64_t kSteps = 10'000;
  SgdOptions options;
  options.steps = kSteps;
  options.num_threads = 4;
  options.shard_seed = 9;
  SgdDriver driver(options);
  EXPECT_EQ(driver.num_workers(), 4u);

  std::vector<std::atomic<int>> hits(kSteps);
  util::Rng rng(1);
  const double total =
      driver.Run(rng, [&](auto, const SgdStep& ctx) -> double {
        hits[ctx.step].fetch_add(1, std::memory_order_relaxed);
        return 1.0;
      });
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kSteps));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SgdDriverTest, MultiWorkerStridesSweepTheFullDecay) {
  // Every worker must see both early (high-lr) and late (low-lr) steps.
  SgdOptions options;
  options.steps = 1000;
  options.num_threads = 4;
  options.lr = {1.0, 0.0, LrSchedule::Decay::kInterpolatedLinear};
  SgdDriver driver(options);

  std::vector<std::atomic<int>> early(4), late(4);
  util::Rng rng(1);
  driver.Run(rng, [&](auto, const SgdStep& ctx) -> double {
    if (ctx.lr > 0.9) early[ctx.worker].fetch_add(1);
    if (ctx.lr < 0.1) late[ctx.worker].fetch_add(1);
    return 0.0;
  });
  for (size_t w = 0; w < 4; ++w) {
    EXPECT_GT(early[w].load(), 0) << "worker " << w;
    EXPECT_GT(late[w].load(), 0) << "worker " << w;
  }
}

TEST(SgdDriverTest, WorkerCountNeverExceedsSteps) {
  SgdOptions options;
  options.steps = 3;
  options.num_threads = 16;
  EXPECT_EQ(SgdDriver(options).num_workers(), 3u);
  options.steps = 0;
  EXPECT_EQ(SgdDriver(options).num_workers(), 1u);
}

TEST(SgdDriverTest, HogwildUpdatesLandFromAllWorkers) {
  // Concurrent relaxed-atomic increments on one shared accumulator: every
  // step's update must land (no lost wakeups from the pool, no skipped
  // strides). Single-float Hogwild increments would lose updates by design;
  // per-worker slots make the check exact.
  const uint64_t kSteps = 8'000;
  SgdOptions options;
  options.steps = kSteps;
  options.num_threads = 4;
  SgdDriver driver(options);

  std::vector<double> per_worker(driver.num_workers(), 0.0);
  util::Rng rng(3);
  driver.Run(rng, [&](auto access, const SgdStep& ctx) -> double {
    using A = decltype(access);
    A::Store(per_worker[ctx.worker], A::Load(per_worker[ctx.worker]) + 1.0);
    return 0.0;
  });
  double landed = 0.0;
  for (double v : per_worker) landed += v;
  EXPECT_DOUBLE_EQ(landed, static_cast<double>(kSteps));
}

TEST(SgdDriverTest, StepOffsetShiftsTheGlobalSchedule) {
  SgdOptions options;
  options.steps = 10;
  options.step_offset = 90;
  options.total_steps = 100;
  options.lr = {1.0, 0.0, LrSchedule::Decay::kInterpolatedLinear};
  SgdDriver driver(options);
  util::Rng rng(1);
  std::vector<double> rates;
  driver.Run(rng, [&](auto, const SgdStep& ctx) -> double {
    rates.push_back(ctx.lr);
    return 0.0;
  });
  ASSERT_EQ(rates.size(), 10u);
  EXPECT_DOUBLE_EQ(rates.front(), 1.0 - 0.9);  // step 90 of 100
  EXPECT_DOUBLE_EQ(rates.back(), 1.0 - 0.99);  // step 99 of 100
}

TEST(SgdDriverTest, ProgressReportingThreadsThroughTheDriver) {
  SgdOptions options;
  options.steps = 100;
  options.report_every = 40;
  std::vector<uint64_t> reported;
  options.progress = [&](uint64_t step, uint64_t total, double mean) {
    EXPECT_EQ(total, 100u);
    EXPECT_DOUBLE_EQ(mean, 0.5);
    reported.push_back(step);
  };
  SgdDriver driver(options);
  util::Rng rng(1);
  driver.Run(rng, [](auto, const SgdStep&) { return 0.5; });
  EXPECT_EQ(reported, (std::vector<uint64_t>{40, 80, 100}));
}

TEST(HogwildAccessTest, PoliciesAgreeOnRowHelpers) {
  std::vector<float> a{0.5f, -1.25f, 2.0f};
  std::vector<float> b{1.0f, 0.25f, -0.5f};
  const double serial = DotRows<SerialAccess>(a, b);
  const double hogwild = DotRows<HogwildAccess>(a, b);
  EXPECT_EQ(serial, hogwild);

  std::vector<float> y1 = a, y2 = a;
  AxpyRows<SerialAccess>(y1, 0.3, b);
  AxpyRows<HogwildAccess>(y2, 0.3, b);
  for (size_t i = 0; i < y1.size(); ++i) EXPECT_EQ(y1[i], y2[i]);
}

// ------------------------------------------ Resume determinism goldens
//
// The checkpoint/resume contract, proven on every production trainer: an
// interrupted run (simulated preemption after k epochs) that is then
// resumed in a fresh process must finish bit-identical to the
// uninterrupted run at num_threads = 1, and must recover the same learned
// structure at num_threads = 4 (Hogwild interleavings are not
// bit-reproducible, so the multi-threaded contract is over eval metrics).

// Scratch checkpoint directory, wiped before and after each use.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

data::GeneratorConfig SmallNetConfig() {
  data::GeneratorConfig config;
  config.num_nodes = 80;
  config.ties_per_node = 3.0;
  config.seed = 11;
  return config;
}

TEST(ResumeGoldenTest, SkipGramResumeIsBitIdentical) {
  const auto net = data::GenerateStatusNetwork(SmallNetConfig());
  embedding::WalkConfig walk_config;
  walk_config.walks_per_node = 5;
  walk_config.walk_length = 10;
  const auto corpus = embedding::GenerateWalks(net, walk_config);

  embedding::SkipGramConfig config;
  config.dimensions = 8;
  config.epochs = 10;
  const auto straight =
      embedding::TrainSkipGram(corpus, net.num_nodes(), config);

  ScratchDir dir("resume_golden_skipgram");
  config.checkpoint.dir = dir.path();
  config.checkpoint.stop_after_epochs = 4;
  embedding::TrainSkipGram(corpus, net.num_nodes(), config);  // interrupted

  config.checkpoint.stop_after_epochs = 0;
  config.checkpoint.resume = true;
  const auto resumed =
      embedding::TrainSkipGram(corpus, net.num_nodes(), config);
  EXPECT_EQ(resumed.data(), straight.data());
}

TEST(ResumeGoldenTest, LineResumeIsBitIdentical) {
  const auto net = data::GenerateStatusNetwork(SmallNetConfig());
  embedding::LineConfig config;
  config.dimensions = 8;
  config.samples_per_arc = 10;  // 10 epochs of num_arcs steps
  const auto straight = embedding::LineEmbedding::Train(net, config);

  ScratchDir dir("resume_golden_line");
  config.checkpoint.dir = dir.path();
  config.checkpoint.stop_after_epochs = 4;
  embedding::LineEmbedding::Train(net, config);  // interrupted

  config.checkpoint.stop_after_epochs = 0;
  config.checkpoint.resume = true;
  const auto resumed = embedding::LineEmbedding::Train(net, config);
  for (graph::NodeId u = 0; u < net.num_nodes(); ++u) {
    const auto sf = straight.FirstOrder(u);
    const auto rf = resumed.FirstOrder(u);
    const auto ss = straight.SecondOrder(u);
    const auto rs = resumed.SecondOrder(u);
    for (size_t k = 0; k < sf.size(); ++k) {
      ASSERT_EQ(rf[k], sf[k]) << "node " << u << " first[" << k << "]";
      ASSERT_EQ(rs[k], ss[k]) << "node " << u << " second[" << k << "]";
    }
  }
}

ml::Dataset SeparableDataset() {
  ml::Dataset data(2);
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const double x0 = rng.NextDoubleIn(-1, 1);
    const double x1 = rng.NextDoubleIn(-1, 1);
    data.Add(std::vector<double>{x0, x1}, x0 > x1 ? 1.0 : 0.0);
  }
  return data;
}

TEST(ResumeGoldenTest, LogisticRegressionResumeIsBitIdentical) {
  // The D-Step trainer. The epoch shuffle permutes the visit order
  // cumulatively, so this golden also proves the order is checkpointed.
  const auto data = SeparableDataset();
  ml::LogisticRegressionConfig config;
  config.epochs = 10;
  ml::LogisticRegression straight(2);
  const double straight_loss = straight.Train(data, config);

  ScratchDir dir("resume_golden_logreg");
  config.checkpoint.dir = dir.path();
  config.checkpoint.stop_after_epochs = 4;
  ml::LogisticRegression interrupted(2);
  interrupted.Train(data, config);

  config.checkpoint.stop_after_epochs = 0;
  config.checkpoint.resume = true;
  ml::LogisticRegression resumed(2);
  const double resumed_loss = resumed.Train(data, config);
  EXPECT_EQ(resumed.weights(), straight.weights());
  EXPECT_EQ(resumed.bias(), straight.bias());
  EXPECT_EQ(resumed_loss, straight_loss);
}

graph::HiddenDirectionSplit SmallSplit() {
  const auto net = data::GenerateStatusNetwork(SmallNetConfig());
  util::Rng rng(12);
  return graph::HideDirections(net, 0.4, rng);
}

core::DeepDirectConfig SmallDeepDirectConfig() {
  core::DeepDirectConfig config;
  config.dimensions = 8;
  config.epochs = 4.0;
  config.d_step.epochs = 10;
  return config;
}

void ExpectModelsBitIdentical(const core::DeepDirectModel& a,
                              const core::DeepDirectModel& b) {
  EXPECT_EQ(a.embeddings().data(), b.embeddings().data());
  EXPECT_EQ(a.e_step_weights(), b.e_step_weights());
  EXPECT_EQ(a.e_step_bias(), b.e_step_bias());
  EXPECT_EQ(a.d_step_regression().weights(), b.d_step_regression().weights());
  EXPECT_EQ(a.d_step_regression().bias(), b.d_step_regression().bias());
}

TEST(ResumeGoldenTest, DeepDirectEStepResumeIsBitIdentical) {
  // Preemption mid-E-Step: the partial model must skip the D-Step (the
  // interrupted process never reached it), and the resumed run must finish
  // bit-identical to the uninterrupted one, D-Step included.
  const auto split = SmallSplit();
  const auto straight =
      core::DeepDirectModel::Train(split.network, SmallDeepDirectConfig());

  ScratchDir dir("resume_golden_estep");
  auto config = SmallDeepDirectConfig();
  config.checkpoint.dir = dir.path();
  config.checkpoint.stop_after_epochs = 2;
  const auto partial = core::DeepDirectModel::Train(split.network, config);
  // The D-Step never ran: its weights are still the zero init.
  for (double w : partial->d_step_regression().weights()) {
    EXPECT_EQ(w, 0.0);
  }

  config.checkpoint.stop_after_epochs = 0;
  config.checkpoint.resume = true;
  const auto resumed = core::DeepDirectModel::Train(split.network, config);
  ExpectModelsBitIdentical(*resumed, *straight);
}

TEST(ResumeGoldenTest, DeepDirectDStepResumeIsBitIdentical) {
  // Preemption mid-D-Step: the resume process replays the E-Step tail from
  // its newest checkpoint (boundaries after the last write re-run on the
  // restored RNG stream), then resumes the D-Step from its own checkpoint.
  const auto split = SmallSplit();
  const auto straight =
      core::DeepDirectModel::Train(split.network, SmallDeepDirectConfig());

  ScratchDir dir("resume_golden_dstep");
  auto config = SmallDeepDirectConfig();
  config.checkpoint.dir = dir.path();
  config.d_step.checkpoint.dir = dir.path();
  config.d_step.checkpoint.stop_after_epochs = 4;
  core::DeepDirectModel::Train(split.network, config);  // interrupted

  config.d_step.checkpoint.stop_after_epochs = 0;
  config.checkpoint.resume = true;
  config.d_step.checkpoint.resume = true;
  const auto resumed = core::DeepDirectModel::Train(split.network, config);
  ExpectModelsBitIdentical(*resumed, *straight);
}

TEST(ResumeGoldenTest, LogisticRegressionResumeMultiThreadedLearns) {
  // Hogwild resume is not bit-reproducible; the contract is that the
  // resumed run trains to the same quality as an uninterrupted one.
  const auto data = SeparableDataset();
  ml::LogisticRegressionConfig config;
  config.epochs = 50;
  config.num_threads = 4;

  ScratchDir dir("resume_golden_logreg_mt");
  config.checkpoint.dir = dir.path();
  config.checkpoint.stop_after_epochs = 20;
  ml::LogisticRegression interrupted(2);
  interrupted.Train(data, config);

  config.checkpoint.stop_after_epochs = 0;
  config.checkpoint.resume = true;
  ml::LogisticRegression resumed(2);
  resumed.Train(data, config);

  int correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    const double p = resumed.Predict(data.Row(i));
    correct += (p >= 0.5) == (data.Label(i) == 1.0);
  }
  EXPECT_GT(correct, static_cast<int>(data.size()) * 9 / 10);
  EXPECT_GT(resumed.weights()[0], 0.0);
  EXPECT_LT(resumed.weights()[1], 0.0);
}

TEST(ResumeGoldenTest, DeepDirectResumeMultiThreadedStaysAccurate) {
  const auto split = SmallSplit();
  auto config = SmallDeepDirectConfig();
  config.epochs = 6.0;
  config.num_threads = 4;
  config.d_step.num_threads = 4;

  ScratchDir dir("resume_golden_deepdirect_mt");
  config.checkpoint.dir = dir.path();
  config.checkpoint.stop_after_epochs = 3;
  core::DeepDirectModel::Train(split.network, config);  // interrupted

  config.checkpoint.stop_after_epochs = 0;
  config.checkpoint.resume = true;
  const auto resumed = core::DeepDirectModel::Train(split.network, config);
  for (float v : resumed->embeddings().data()) {
    ASSERT_TRUE(std::isfinite(v));
  }
  EXPECT_GT(core::DirectionDiscoveryAccuracy(split, *resumed), 0.55);
}

}  // namespace
}  // namespace deepdirect::train
