// Golden-value tests for the evaluation metrics the paper's experiments
// report: AUC (Sec. 6.3) against hand-computed rank statistics including
// tied scores and degenerate one-class inputs, threshold accuracy, and
// direction-discovery accuracy (Sec. 6.2) driven by fixed-prediction fake
// models over a HideDirections split with known ground truth.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "core/applications.h"
#include "core/directionality.h"
#include "graph/algorithms.h"
#include "graph/mixed_graph.h"
#include "ml/metrics.h"
#include "util/random.h"

namespace deepdirect {
namespace {

using graph::TieType;

// ------------------------------------------------------------------- AUC

TEST(AucGoldenTest, HandComputedSixPointRanking) {
  // Positives score {0.9, 0.7, 0.3}, negatives {0.8, 0.4, 0.2}.
  // Of the 9 positive/negative pairs, the positive wins 6:
  //   0.9 beats all three; 0.7 beats 0.4, 0.2; 0.3 beats 0.2.
  const std::vector<double> scores{0.9, 0.8, 0.7, 0.4, 0.3, 0.2};
  const std::vector<int> labels{1, 0, 1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(ml::AreaUnderRoc(scores, labels), 6.0 / 9.0);
}

TEST(AucGoldenTest, TiedScoresEarnHalfCredit) {
  // Positives {0.6, 0.4} vs negatives {0.6, 0.4}: each cross-class pair
  // with equal scores counts 0.5, the rest split 1/0 symmetrically:
  //   (0.6, 0.6) = 0.5, (0.6, 0.4) = 1, (0.4, 0.6) = 0, (0.4, 0.4) = 0.5.
  EXPECT_DOUBLE_EQ(ml::AreaUnderRoc({0.6, 0.4, 0.6, 0.4}, {1, 1, 0, 0}),
                   0.5);
  // All scores identical: every pair ties, AUC is exactly chance.
  EXPECT_DOUBLE_EQ(
      ml::AreaUnderRoc({0.3, 0.3, 0.3, 0.3, 0.3}, {1, 0, 1, 0, 0}), 0.5);
}

TEST(AucGoldenTest, PartialTieBlockGolden) {
  // Positives {0.8, 0.5}, negatives {0.5, 0.5, 0.1}: pairs are
  //   0.8 vs {0.5, 0.5, 0.1} = 3; 0.5 vs {0.5, 0.5, 0.1} = 0.5 + 0.5 + 1.
  // AUC = 5 / 6.
  EXPECT_DOUBLE_EQ(
      ml::AreaUnderRoc({0.8, 0.5, 0.5, 0.5, 0.1}, {1, 1, 0, 0, 0}),
      5.0 / 6.0);
}

TEST(AucGoldenTest, OneClassAndEmptyInputsReturnChance) {
  // With either class absent the rank statistic is undefined; the
  // implementation pins it to 0.5 so sweeps over degenerate holdouts
  // (e.g. a split that removed only directed ties) stay plottable.
  EXPECT_DOUBLE_EQ(ml::AreaUnderRoc({0.2, 0.6, 0.9}, {1, 1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(ml::AreaUnderRoc({0.2, 0.6, 0.9}, {0, 0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(ml::AreaUnderRoc({}, {}), 0.5);
}

TEST(AucGoldenTest, PerfectAndInvertedRankings) {
  const std::vector<int> labels{0, 1, 0, 1, 1};
  EXPECT_DOUBLE_EQ(ml::AreaUnderRoc({0.1, 0.7, 0.3, 0.8, 0.9}, labels), 1.0);
  EXPECT_DOUBLE_EQ(ml::AreaUnderRoc({0.9, 0.3, 0.7, 0.2, 0.1}, labels), 0.0);
}

// -------------------------------------------------------------- Accuracy

TEST(AccuracyGoldenTest, ThresholdsAtHalfWithBoundaryPositive) {
  // A score of exactly 0.5 predicts the positive class (>= threshold).
  EXPECT_DOUBLE_EQ(ml::Accuracy({0.5}, {1}), 1.0);
  EXPECT_DOUBLE_EQ(ml::Accuracy({0.5}, {0}), 0.0);
  EXPECT_DOUBLE_EQ(ml::Accuracy({0.9, 0.1, 0.6, 0.2}, {1, 0, 0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(ml::Accuracy({}, {}), 0.0);
}

// --------------------------------------- direction-discovery accuracy

// A fake directionality function with a fixed global preference:
// d(u, v) = forward when u < v, 1 - forward otherwise. With forward > 0.5
// it always predicts the low-id endpoint as proposer; with forward = 0.5
// every tie scores d(u,v) == d(v,u).
class FixedDirectionModel : public core::DirectionalityModel {
 public:
  explicit FixedDirectionModel(double forward) : forward_(forward) {}

  double Directionality(graph::NodeId u, graph::NodeId v) const override {
    if (u == v) return 0.5;
    return u < v ? forward_ : 1.0 - forward_;
  }

  std::string name() const override { return "fixed"; }

 private:
  double forward_;
};

// A 6-node network whose directed ties all point low id -> high id, so a
// golden accuracy holds no matter which ties HideDirections samples.
graph::MixedSocialNetwork ChainNetwork() {
  graph::GraphBuilder builder(6);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(1, 2, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(2, 3, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(3, 4, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(4, 5, TieType::kBidirectional).ok());
  return std::move(builder).Build();
}

// Like ChainNetwork but with one contrarian tie (4 -> 3).
graph::MixedSocialNetwork MixedNetwork() {
  graph::GraphBuilder builder(6);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(1, 2, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(2, 3, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(4, 3, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(4, 5, TieType::kBidirectional).ok());
  return std::move(builder).Build();
}

// Hides as many directed ties as the protocol allows (it always keeps one
// so the TDL problem stays well-posed): 3 of the 4 become ground truth.
graph::HiddenDirectionSplit MostlyHiddenSplit(
    const graph::MixedSocialNetwork& net) {
  util::Rng rng(3);
  auto split = graph::HideDirections(net, 0.0, rng);
  EXPECT_EQ(split.hidden_true_arcs.size(), 3u);
  EXPECT_EQ(split.network.num_directed_ties(), 1u);
  return split;
}

TEST(DirectionDiscoveryGoldenTest, LowToHighModelIsPerfectOnChain) {
  // Every hidden tie points low -> high, so the low -> high model is
  // exactly right on each one regardless of which tie stayed directed.
  const auto split = MostlyHiddenSplit(ChainNetwork());
  const FixedDirectionModel model(0.9);
  EXPECT_DOUBLE_EQ(core::DirectionDiscoveryAccuracy(split, model), 1.0);
}

TEST(DirectionDiscoveryGoldenTest, InvertedModelScoresZeroOnChain) {
  const auto split = MostlyHiddenSplit(ChainNetwork());
  const FixedDirectionModel model(0.1);
  EXPECT_DOUBLE_EQ(core::DirectionDiscoveryAccuracy(split, model), 0.0);
}

TEST(DirectionDiscoveryGoldenTest, ContrarianTiesScoreAgainstTruth) {
  // With one tie pointing high -> low, the low -> high model's score is
  // exactly the fraction of *hidden* ties that follow the id order.
  const auto split = MostlyHiddenSplit(MixedNetwork());
  size_t low_to_high = 0;
  for (graph::ArcId arc : split.hidden_true_arcs) {
    low_to_high += split.network.arc(arc).src < split.network.arc(arc).dst;
  }
  const FixedDirectionModel model(0.9);
  EXPECT_DOUBLE_EQ(core::DirectionDiscoveryAccuracy(split, model),
                   static_cast<double>(low_to_high) / 3.0);
}

TEST(DirectionDiscoveryGoldenTest, TieScoresEarnExactlyHalfCredit) {
  // d(u, v) == d(v, u) on every tie must score chance, not perfect: the
  // evaluator half-credits exact ties so a symmetric model cannot win by
  // Eq. 28's ">=" merely because the true orientation is queried first.
  const auto split = MostlyHiddenSplit(ChainNetwork());
  const FixedDirectionModel model(0.5);
  EXPECT_DOUBLE_EQ(core::DirectionDiscoveryAccuracy(split, model), 0.5);
}

TEST(DirectionDiscoveryGoldenTest, NoHiddenTiesScoresZero) {
  // An all-one-class edge case: nothing was hidden, so there is no
  // ground truth to score against and the accuracy is defined as 0.
  const auto net = ChainNetwork();
  util::Rng rng(3);
  const auto split = graph::HideDirections(net, 1.0, rng);
  EXPECT_TRUE(split.hidden_true_arcs.empty());
  const FixedDirectionModel model(0.9);
  EXPECT_DOUBLE_EQ(core::DirectionDiscoveryAccuracy(split, model), 0.0);
}

TEST(DirectionDiscoveryGoldenTest, PartialHidingScoresOnlyHiddenTies) {
  // Hide half of the directed ties; the model is perfect on low -> high
  // ties, so the score is the fraction of hidden ties that point that way.
  const auto net = MixedNetwork();
  util::Rng rng(17);
  const auto split = graph::HideDirections(net, 0.5, rng);
  ASSERT_FALSE(split.hidden_true_arcs.empty());
  size_t low_to_high = 0;
  for (graph::ArcId arc : split.hidden_true_arcs) {
    low_to_high += split.network.arc(arc).src < split.network.arc(arc).dst;
  }
  const FixedDirectionModel model(0.9);
  EXPECT_DOUBLE_EQ(
      core::DirectionDiscoveryAccuracy(split, model),
      static_cast<double>(low_to_high) /
          static_cast<double>(split.hidden_true_arcs.size()));
}

}  // namespace
}  // namespace deepdirect
