// End-to-end integration tests: full experimental pipelines across modules,
// including the paper's headline qualitative claims at test-scale.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/applications.h"
#include "core/deepdirect.h"
#include "core/models.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "graph/graph_io.h"
#include "ml/dataset.h"
#include "ml/mlp.h"
#include "util/timer.h"

namespace deepdirect {
namespace {

using core::Method;

TEST(IntegrationTest, FullPipelineOnMiniDataset) {
  // Generate -> hide -> train all five methods -> evaluate. Everything must
  // beat chance and DeepDirect must be competitive with the best baseline.
  const auto net = data::MakeDataset(data::DatasetId::kTwitter, /*scale=*/0.4);
  util::Rng rng(55);
  const auto split = graph::HideDirections(net, 0.3, rng);

  auto configs = core::MethodConfigs::FastDefaults();
  configs.deepdirect.dimensions = 32;
  configs.deepdirect.epochs = 3.0;
  configs.line.line.samples_per_arc = 15;

  std::map<Method, double> accuracy;
  for (Method method : core::AllMethods()) {
    const auto model = core::TrainMethod(split.network, method, configs);
    accuracy[method] = core::DirectionDiscoveryAccuracy(split, *model);
    EXPECT_GT(accuracy[method], 0.52) << core::MethodName(method);
  }
  double best_baseline = 0.0;
  for (const auto& [method, acc] : accuracy) {
    if (method != Method::kDeepDirect) {
      best_baseline = std::max(best_baseline, acc);
    }
  }
  EXPECT_GT(accuracy[Method::kDeepDirect], best_baseline - 0.05);
}

TEST(IntegrationTest, QuantificationImprovesLinkPrediction) {
  // Sec. 6.3 headline: the directionality adjacency matrix should not hurt
  // (and typically helps) Jaccard link prediction on a bidirectional-heavy
  // network.
  const auto net =
      data::MakeDataset(data::DatasetId::kSlashdot, /*scale=*/0.5);
  core::LinkPredictionConfig link_config;
  link_config.holdout_fraction = 0.2;
  link_config.seed = 97;
  util::Rng rng(link_config.seed);
  const auto holdout = graph::HoldOutTies(net, 0.2, rng);

  const auto baseline =
      core::RunLinkPrediction(net, holdout, nullptr, link_config);

  core::DeepDirectConfig dd;
  dd.dimensions = 32;
  dd.epochs = 3.0;
  const auto model = core::DeepDirectModel::Train(holdout.network, dd);
  const auto quantified =
      core::RunLinkPrediction(net, holdout, model.get(), link_config);

  EXPECT_GT(baseline.auc, 0.55);
  EXPECT_GT(quantified.auc, baseline.auc - 0.03);
}

TEST(IntegrationTest, SaveLoadTrainRoundTrip) {
  // Serialization composes with training: identical accuracy either way.
  const auto net = data::MakeDataset(data::DatasetId::kEpinions, 0.3);
  util::Rng rng(7);
  const auto split = graph::HideDirections(net, 0.4, rng);

  const std::string path = "/tmp/deepdirect_integration.edges";
  ASSERT_TRUE(graph::SaveEdgeList(split.network, path).ok());
  auto loaded = graph::LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  core::DeepDirectConfig config;
  config.dimensions = 32;
  config.epochs = 2.0;
  const auto a = core::DeepDirectModel::Train(split.network, config);
  const auto b = core::DeepDirectModel::Train(loaded.value(), config);
  EXPECT_DOUBLE_EQ(core::DirectionDiscoveryAccuracy(split, *a),
                   core::DirectionDiscoveryAccuracy(split, *b));
}

TEST(IntegrationTest, MlpDStepExtension) {
  // Future-work extension (Sec. 8): a nonlinear MLP head on the DeepDirect
  // embedding must at least roughly match the linear head.
  const auto net = data::MakeDataset(data::DatasetId::kTencent, 0.4);
  util::Rng rng(31);
  const auto split = graph::HideDirections(net, 0.3, rng);

  core::DeepDirectConfig config;
  config.dimensions = 32;
  config.epochs = 3.0;
  const auto model = core::DeepDirectModel::Train(split.network, config);
  const double linear_accuracy =
      core::DirectionDiscoveryAccuracy(split, *model);

  // Train an MLP head on the same labeled embedding rows.
  const auto& index = model->index();
  ml::Dataset data(config.dimensions);
  std::vector<double> features(config.dimensions);
  for (size_t e = 0; e < index.num_arcs(); ++e) {
    if (!index.IsLabeled(e)) continue;
    const auto row = model->embeddings().Row(e);
    for (size_t k = 0; k < row.size(); ++k) features[k] = row[k];
    data.Add(features, index.Label(e));
  }
  ml::MlpClassifier mlp(config.dimensions, 16, 3);
  ml::MlpConfig mlp_config;
  mlp_config.epochs = 30;
  mlp.Train(data, mlp_config);

  size_t correct = 0;
  for (graph::ArcId id : split.hidden_true_arcs) {
    const auto& arc = split.network.arc(id);
    auto embed = [&](graph::NodeId x, graph::NodeId y) {
      const auto row = model->TieEmbedding(x, y);
      std::vector<double> f(row.size());
      for (size_t k = 0; k < row.size(); ++k) f[k] = row[k];
      return mlp.Predict(f);
    };
    correct += embed(arc.src, arc.dst) >= embed(arc.dst, arc.src);
  }
  const double mlp_accuracy =
      static_cast<double>(correct) / split.hidden_true_arcs.size();
  EXPECT_GT(mlp_accuracy, linear_accuracy - 0.08);
  EXPECT_GT(mlp_accuracy, 0.55);
}

TEST(IntegrationTest, VisualizationPipelineShape) {
  // The Fig. 7 protocol end-to-end at tiny scale: extract core, hide,
  // embed, check embedding rows exist for every hidden tie.
  const auto net = data::MakeDataset(data::DatasetId::kSlashdot, 0.4);
  const auto core_net = graph::TopDegreeSubnetwork(net, 0.3);
  util::Rng rng(301);
  const auto split = graph::HideDirections(core_net, 0.1, rng);
  ASSERT_GT(split.hidden_true_arcs.size(), 10u);

  core::DeepDirectConfig config;
  config.dimensions = 16;
  config.epochs = 2.0;
  const auto model = core::DeepDirectModel::Train(split.network, config);
  for (graph::ArcId id : split.hidden_true_arcs) {
    const auto& arc = split.network.arc(id);
    const auto row = model->TieEmbedding(arc.src, arc.dst);
    EXPECT_EQ(row.size(), 16u);
  }
}

TEST(IntegrationTest, ScalabilityIsRoughlyLinear) {
  // Fig. 9 at test scale: doubling |E| should not quadruple training time.
  // Generous bound to stay robust on loaded CI machines.
  util::Timer timer;
  core::DeepDirectConfig config;
  config.dimensions = 16;
  config.epochs = 2.0;

  const auto small = data::MakeDataset(data::DatasetId::kTencent, 0.3);
  timer.Reset();
  core::DeepDirectModel::Train(small, config);
  const double t_small = timer.ElapsedSeconds();

  const auto large = data::MakeDataset(data::DatasetId::kTencent, 0.6);
  timer.Reset();
  core::DeepDirectModel::Train(large, config);
  const double t_large = timer.ElapsedSeconds();

  const double size_ratio = static_cast<double>(large.num_ties()) /
                            static_cast<double>(small.num_ties());
  EXPECT_LT(t_large, t_small * size_ratio * 3.0 + 0.5);
}

}  // namespace
}  // namespace deepdirect
