// Tests for the crash-safe checkpoint layer (src/train/checkpoint.{h,cc}):
// container format round trips, the fault-injection sweeps (every
// truncation point, single-byte corruption over the whole file), the
// write/retention policy, resume candidate selection, and the driver-level
// resume determinism contract on a toy trainer.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "train/checkpoint.h"
#include "train/sgd_driver.h"
#include "util/random.h"
#include "util/status.h"

namespace deepdirect::train {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test; removed on teardown.
class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("ckpt_test_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (fs::path(dir_) / name).string();
  }

  std::string dir_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// A writer with a representative section mix: metadata-sized POD, an empty
// payload, and a float blob.
CheckpointWriter SampleWriter() {
  CheckpointWriter writer;
  const uint64_t counter = 41;
  writer.AddPod("counter", counter);
  writer.AddSection("empty", nullptr, 0);
  std::vector<float> blob(37);
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<float>(i) * 0.5f;
  }
  writer.AddVector("blob", blob);
  return writer;
}

TEST_F(CheckpointTest, Crc32MatchesKnownAnswer) {
  // The IEEE CRC32 check value ("123456789" -> 0xCBF43926).
  const char data[] = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(data, 0), 0u);
  // Incremental feeding matches the one-shot result.
  uint32_t crc = Crc32Update(0, data, 4);
  crc = Crc32Update(crc, data + 4, 5);
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST_F(CheckpointTest, ContainerRoundTripsAllSectionKinds) {
  const std::string bytes = SampleWriter().Serialize();
  auto parsed = CheckpointData::Parse(bytes, "test");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const CheckpointData& data = parsed.value();

  EXPECT_TRUE(data.Has("counter"));
  EXPECT_TRUE(data.Has("empty"));
  EXPECT_TRUE(data.Has("blob"));
  EXPECT_FALSE(data.Has("missing"));

  uint64_t counter = 0;
  ASSERT_TRUE(data.ReadPod("counter", &counter).ok());
  EXPECT_EQ(counter, 41u);
  EXPECT_EQ(data.Section("empty").value().size(), 0u);
  std::vector<float> blob;
  ASSERT_TRUE(data.ReadVector("blob", &blob, 37).ok());
  EXPECT_EQ(blob[36], 18.0f);

  EXPECT_EQ(data.Section("missing").status().code(),
            util::StatusCode::kNotFound);
}

TEST_F(CheckpointTest, TypedReadsRejectSizeMismatches) {
  const std::string bytes = SampleWriter().Serialize();
  auto parsed = CheckpointData::Parse(bytes, "test");
  ASSERT_TRUE(parsed.ok());

  uint32_t narrow = 0;  // section holds 8 bytes
  EXPECT_EQ(parsed.value().ReadPod("counter", &narrow).code(),
            util::StatusCode::kInvalidArgument);
  std::vector<float> blob;
  EXPECT_EQ(parsed.value().ReadVector("blob", &blob, 5).code(),
            util::StatusCode::kInvalidArgument);
  std::vector<double> wrong_width;  // 37 floats are not a whole double count
  EXPECT_EQ(parsed.value().ReadVector("blob", &wrong_width).code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, WriteAtomicLeavesNoTempFile) {
  const std::string path = Path("atomic.ckpt");
  ASSERT_TRUE(SampleWriter().WriteAtomic(path).ok());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  auto read = CheckpointData::Read(path);
  EXPECT_TRUE(read.ok()) << read.status().ToString();
}

TEST_F(CheckpointTest, ReadOfMissingFileIsIOError) {
  auto read = CheckpointData::Read(Path("nope.ckpt"));
  EXPECT_EQ(read.status().code(), util::StatusCode::kIOError);
}

// The crash-fault sweep: a write interrupted after byte k leaves a strict
// prefix. Every prefix (including the empty file) must parse as a clean
// error — never crash, never succeed.
TEST_F(CheckpointTest, EveryTruncationPointIsRejected) {
  const std::string bytes = SampleWriter().Serialize();
  for (size_t k = 0; k < bytes.size(); ++k) {
    auto parsed = CheckpointData::Parse(bytes.substr(0, k), "trunc");
    EXPECT_FALSE(parsed.ok()) << "prefix of " << k << " bytes parsed";
    EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument)
        << "prefix of " << k << " bytes: " << parsed.status().ToString();
  }
}

// The bit-rot sweep: flipping any single byte anywhere — header, section
// name, size fields, payload, CRCs, footer — must be detected.
TEST_F(CheckpointTest, EverySingleByteCorruptionIsRejected) {
  const std::string bytes = SampleWriter().Serialize();
  for (size_t k = 0; k < bytes.size(); ++k) {
    std::string corrupted = bytes;
    corrupted[k] = static_cast<char>(corrupted[k] ^ 0x5A);
    auto parsed = CheckpointData::Parse(corrupted, "flip");
    EXPECT_FALSE(parsed.ok()) << "flip at byte " << k << " parsed";
  }
  // Extra appended garbage is also rejected (a torn double-write).
  auto trailing = CheckpointData::Parse(bytes + "x", "trailing");
  EXPECT_FALSE(trailing.ok());
}

// --- Checkpointer policy / retention / resume --------------------------

constexpr uint64_t kToyEpochs = 10;
constexpr uint64_t kToySteps = 100;  // 10 steps per epoch

RunShape ToyShape() {
  return RunShape{kToySteps, kToySteps / kToyEpochs, 7,
                  LrSchedule{0.1, 0.01, LrSchedule::Decay::kClampedLinear}};
}

CheckpointOptions ToyOptions(const std::string& dir) {
  CheckpointOptions options;
  options.dir = dir;
  options.trainer = "toy";
  return options;
}

// A Checkpointer over one uint64 counter; `state` must outlive it.
Checkpointer ToyCheckpointer(const CheckpointOptions& options,
                             uint64_t* state) {
  return Checkpointer(
      options, ToyShape(),
      [state](CheckpointWriter& writer) { writer.AddPod("state", *state); },
      [state](const CheckpointData& data) {
        return data.ReadPod("state", state);
      });
}

// Drives `epochs` boundaries as the SgdDriver would.
void DriveEpochs(Checkpointer& ckpt, uint64_t* state, util::Rng& rng,
                 uint64_t first_epoch, uint64_t epochs) {
  const uint64_t spe = kToySteps / kToyEpochs;
  for (uint64_t e = first_epoch; e < first_epoch + epochs; ++e) {
    *state += e + 1;
    const EpochEnd end{e, (e + 1) * spe, 0.0, (e + 1) * spe >= kToySteps};
    if (ckpt.AtEpochBoundary(end, rng)) break;
  }
}

TEST_F(CheckpointTest, KeepLastPrunesOldestCheckpoints) {
  CheckpointOptions options = ToyOptions(dir_);
  options.policy.keep_last = 3;
  uint64_t state = 0;
  util::Rng rng(1);
  Checkpointer ckpt(ToyCheckpointer(options, &state));
  DriveEpochs(ckpt, &state, rng, 0, kToyEpochs);

  // Boundaries 1..9 wrote (the final boundary does not); 3 newest survive.
  const auto paths = ckpt.ListCheckpoints();
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], ckpt.PathFor(9));
  EXPECT_EQ(paths[1], ckpt.PathFor(8));
  EXPECT_EQ(paths[2], ckpt.PathFor(7));
  EXPECT_FALSE(fs::exists(ckpt.PathFor(6)));
}

TEST_F(CheckpointTest, ZeroEpochCadenceDisablesWrites) {
  CheckpointOptions options = ToyOptions(dir_);
  options.policy.every_n_epochs = 0;
  options.policy.every_seconds = 0.0;
  uint64_t state = 0;
  util::Rng rng(1);
  Checkpointer ckpt(ToyCheckpointer(options, &state));
  EXPECT_FALSE(ckpt.enabled());
  DriveEpochs(ckpt, &state, rng, 0, kToyEpochs);
  EXPECT_TRUE(ckpt.ListCheckpoints().empty());
  EXPECT_FALSE(ckpt.stopped());
}

TEST_F(CheckpointTest, TimePolicyTriggersBetweenEpochCadences) {
  CheckpointOptions options = ToyOptions(dir_);
  options.policy.every_n_epochs = 0;       // epoch trigger off
  options.policy.every_seconds = 0.001;    // fires at nearly every boundary
  uint64_t state = 0;
  util::Rng rng(1);
  Checkpointer ckpt(ToyCheckpointer(options, &state));
  EXPECT_TRUE(ckpt.enabled());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  DriveEpochs(ckpt, &state, rng, 0, 1);
  EXPECT_EQ(ckpt.ListCheckpoints().size(), 1u);
}

TEST_F(CheckpointTest, ResumeRestoresNewestCheckpoint) {
  CheckpointOptions options = ToyOptions(dir_);
  uint64_t state = 0;
  util::Rng rng(1);
  Checkpointer writer(ToyCheckpointer(options, &state));
  DriveEpochs(writer, &state, rng, 0, 4);
  const uint64_t state_at_4 = state;

  options.resume = true;
  uint64_t restored = 0;
  util::Rng fresh_rng(99);
  Checkpointer reader(ToyCheckpointer(options, &restored));
  EXPECT_EQ(reader.Resume(fresh_rng), 4u);
  EXPECT_EQ(restored, state_at_4);
  // The RNG stream continues exactly where the writer's stood.
  EXPECT_EQ(fresh_rng.Next(), rng.Next());
}

TEST_F(CheckpointTest, ResumeSkipsCorruptNewestCheckpoint) {
  CheckpointOptions options = ToyOptions(dir_);
  uint64_t state = 0;
  util::Rng rng(1);
  Checkpointer writer(ToyCheckpointer(options, &state));
  DriveEpochs(writer, &state, rng, 0, 2);
  const uint64_t state_at_1 = 1;  // after boundary 0 only

  // Corrupt the newest checkpoint (epoch 2): flip one payload byte.
  std::string bytes = ReadFile(writer.PathFor(2));
  bytes[bytes.size() / 2] ^= 0x10;
  WriteFile(writer.PathFor(2), bytes);

  options.resume = true;
  uint64_t restored = 0;
  util::Rng fresh_rng(99);
  Checkpointer reader(ToyCheckpointer(options, &restored));
  EXPECT_EQ(reader.Resume(fresh_rng), 1u);
  EXPECT_EQ(restored, state_at_1);
}

TEST_F(CheckpointTest, ResumeIgnoresOtherTrainersAndShapes) {
  CheckpointOptions options = ToyOptions(dir_);
  uint64_t state = 0;
  util::Rng rng(1);
  Checkpointer writer(ToyCheckpointer(options, &state));
  DriveEpochs(writer, &state, rng, 0, 3);

  // A different trainer tag sees nothing, even in the same directory.
  CheckpointOptions other_trainer = options;
  other_trainer.trainer = "other";
  other_trainer.resume = true;
  uint64_t restored = 0;
  util::Rng r1(2);
  Checkpointer other(ToyCheckpointer(other_trainer, &restored));
  EXPECT_EQ(other.Resume(r1), 0u);

  // A changed run shape (different budget) rejects every candidate.
  CheckpointOptions resumed = options;
  resumed.resume = true;
  RunShape other_shape = ToyShape();
  other_shape.total_steps *= 2;
  Checkpointer mismatched(
      resumed, other_shape,
      [&](CheckpointWriter& w) { w.AddPod("state", restored); },
      [&](const CheckpointData& d) { return d.ReadPod("state", &restored); });
  util::Rng r2(2);
  EXPECT_EQ(mismatched.Resume(r2), 0u);
  EXPECT_EQ(restored, 0u);
}

TEST_F(CheckpointTest, FailedTrainerLoadLeavesRngUntouched) {
  CheckpointOptions options = ToyOptions(dir_);
  uint64_t state = 0;
  util::Rng rng(1);
  Checkpointer writer(ToyCheckpointer(options, &state));
  DriveEpochs(writer, &state, rng, 0, 2);

  // A load callback that rejects every candidate: the caller's RNG must
  // keep its pre-resume stream (no partial restore).
  options.resume = true;
  Checkpointer rejecting(
      options, ToyShape(), [](CheckpointWriter&) {},
      [](const CheckpointData&) {
        return util::Status::InvalidArgument("wrong state layout");
      });
  util::Rng probe(99);
  util::Rng untouched(99);
  EXPECT_EQ(rejecting.Resume(probe), 0u);
  EXPECT_EQ(probe.Next(), untouched.Next());
}

TEST_F(CheckpointTest, StopAfterEpochsSimulatesPreemption) {
  CheckpointOptions options = ToyOptions(dir_);
  options.stop_after_epochs = 4;
  uint64_t state = 0;
  util::Rng rng(1);
  Checkpointer ckpt(ToyCheckpointer(options, &state));
  DriveEpochs(ckpt, &state, rng, 0, kToyEpochs);
  EXPECT_TRUE(ckpt.stopped());
  // Stopped after 4 boundaries: epochs 5.. never ran.
  EXPECT_EQ(state, 1u + 2u + 3u + 4u);
  EXPECT_EQ(ckpt.ListCheckpoints().front(), ckpt.PathFor(4));
}

// --- Driver-level resume determinism on a toy trainer ------------------

// A minimal RNG-consuming trainer on the real SgdDriver: params[i] nudged
// by draws from the step RNG. Returns the final parameters.
std::vector<float> RunToyTrainer(const std::string& ckpt_dir, bool resume,
                                 uint64_t stop_after_epochs,
                                 size_t num_threads = 1) {
  constexpr size_t kParams = 32;
  std::vector<float> params(kParams, 0.0f);
  util::Rng rng(42);
  // Deterministic init consumes the stream before training, as the real
  // trainers' FillUniform does.
  for (float& p : params) {
    p = static_cast<float>(rng.NextDouble()) * 0.01f;
  }

  SgdOptions options;
  options.steps = kToySteps;
  options.steps_per_epoch = kToySteps / kToyEpochs;
  options.total_steps = kToySteps;
  options.num_threads = num_threads;
  options.lr = LrSchedule{0.1, 0.01, LrSchedule::Decay::kClampedLinear};
  options.shard_seed = 7;

  CheckpointOptions ckpt_options;
  ckpt_options.dir = ckpt_dir;
  ckpt_options.trainer = "toy_driver";
  ckpt_options.resume = resume;
  ckpt_options.stop_after_epochs = stop_after_epochs;
  Checkpointer checkpointer(
      ckpt_options,
      RunShape{options.steps, options.steps_per_epoch, options.shard_seed,
               options.lr},
      [&](CheckpointWriter& writer) { writer.AddVector("params", params); },
      [&](const CheckpointData& data) {
        return data.ReadVector("params", &params, kParams);
      });
  options.start_epoch = checkpointer.Resume(rng);
  options.checkpointer = &checkpointer;

  SgdDriver driver(options);
  driver.Run(rng, [&](auto access, const SgdStep& ctx) -> double {
    using A = decltype(access);
    const size_t i = ctx.rng.NextIndex(kParams);
    const float delta =
        static_cast<float>(ctx.lr * (ctx.rng.NextDouble() - 0.5));
    A::Store(params[i], A::Load(params[i]) + delta);
    return static_cast<double>(delta);
  });
  return params;
}

TEST_F(CheckpointTest, SerialResumeIsBitIdenticalFromEveryBoundary) {
  const std::vector<float> straight = RunToyTrainer("", false, 0);
  for (uint64_t stop = 1; stop < kToyEpochs; ++stop) {
    const std::string dir = Path("stop_" + std::to_string(stop));
    fs::create_directories(dir);
    RunToyTrainer(dir, false, stop);       // interrupted run
    const std::vector<float> resumed = RunToyTrainer(dir, true, 0);
    EXPECT_EQ(resumed, straight) << "interrupted after epoch " << stop;
  }
}

TEST_F(CheckpointTest, MultiThreadedResumeCompletesCleanly) {
  const std::string dir = Path("mt");
  fs::create_directories(dir);
  RunToyTrainer(dir, false, 3, 4);
  const std::vector<float> resumed = RunToyTrainer(dir, true, 0, 4);
  // Hogwild resume restarts from the boundary and must finish with sane,
  // bounded parameters (the exact interleaving is not reproducible).
  for (float p : resumed) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_LT(std::abs(p), 1.0f);
  }
}

}  // namespace
}  // namespace deepdirect::train
