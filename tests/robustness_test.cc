// Robustness / failure-injection tests: malformed inputs, adversarial
// generator settings, and randomized parser fuzzing. Everything here must
// fail *gracefully* (Status errors) rather than crash.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/applications.h"
#include "core/deepdirect.h"
#include "core/models.h"
#include "data/generators.h"
#include "graph/algorithms.h"
#include "graph/graph_io.h"
#include "util/random.h"

namespace deepdirect {
namespace {

TEST(ParserFuzzTest, RandomGarbageNeverCrashes) {
  util::Rng rng(1234);
  const std::string alphabet = "0123456789 abdu-#\n\t.";
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    const size_t length = rng.NextIndex(200);
    for (size_t i = 0; i < length; ++i) {
      input += alphabet[rng.NextIndex(alphabet.size())];
    }
    std::stringstream stream(input);
    const auto result = graph::ReadEdgeList(stream);
    // Either parses or errors — both fine, crashing is not.
    if (result.ok()) {
      EXPECT_GE(result.value().num_nodes(), 0u);
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(ParserFuzzTest, ValidLinesWithGarbageSuffixStillRejectedOrParsed) {
  // Trailing tokens after the type letter mean the line is not what the
  // parser read — it must fail loudly instead of training on misparsed
  // data.
  std::stringstream stream("0 1 d trailing junk\n");
  const auto result = graph::ReadEdgeList(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("line 1"), std::string::npos);
}

TEST(RobustnessTest, MinimalNetworks) {
  // The smallest legal TDL instance: two nodes, one directed tie.
  graph::GraphBuilder builder(2);
  ASSERT_TRUE(builder.AddTie(0, 1, graph::TieType::kDirected).ok());
  const auto net = std::move(builder).Build();

  core::DeepDirectConfig config;
  config.dimensions = 4;
  config.epochs = 2.0;
  const auto model = core::DeepDirectModel::Train(net, config);
  const double d = model->Directionality(0, 1);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(RobustnessTest, StarNetworkAllMethods) {
  // A star has no triangles, no connected-tie pairs from leaves, and
  // extreme degree skew — a degenerate shape every method must survive.
  graph::GraphBuilder builder(12);
  for (graph::NodeId leaf = 1; leaf < 12; ++leaf) {
    ASSERT_TRUE(builder.AddTie(static_cast<graph::NodeId>(leaf), 0,
                               graph::TieType::kDirected)
                    .ok());
  }
  const auto net = std::move(builder).Build();
  util::Rng rng(5);
  const auto split = graph::HideDirections(net, 0.5, rng);

  auto configs = core::MethodConfigs::FastDefaults();
  configs.deepdirect.dimensions = 8;
  configs.deepdirect.epochs = 2.0;
  configs.line.line.dimensions = 8;
  configs.line.line.samples_per_arc = 5;
  for (core::Method method : core::AllMethods()) {
    const auto model = core::TrainMethod(split.network, method, configs);
    const double accuracy = core::DirectionDiscoveryAccuracy(split, *model);
    EXPECT_GE(accuracy, 0.0) << core::MethodName(method);
    EXPECT_LE(accuracy, 1.0) << core::MethodName(method);
  }
}

TEST(RobustnessTest, DisconnectedComponentsSurviveTraining) {
  // Two disjoint communities with zero cross ties (possible with custom
  // generator configs) must not break sampling or centralities.
  graph::GraphBuilder builder(8);
  for (graph::NodeId u = 0; u < 4; ++u) {
    for (graph::NodeId v = u + 1; v < 4; ++v) {
      ASSERT_TRUE(builder.AddTie(u, v, graph::TieType::kDirected).ok());
    }
  }
  for (graph::NodeId u = 4; u < 8; ++u) {
    for (graph::NodeId v = u + 1; v < 8; ++v) {
      ASSERT_TRUE(builder.AddTie(u, v, graph::TieType::kBidirectional).ok());
    }
  }
  const auto net = std::move(builder).Build();
  auto configs = core::MethodConfigs::FastDefaults();
  configs.deepdirect.dimensions = 8;
  configs.deepdirect.epochs = 2.0;
  configs.hf.features.exact_centrality = true;
  for (core::Method method : core::AllMethods()) {
    const auto model = core::TrainMethod(net, method, configs);
    EXPECT_NE(model, nullptr);
  }
}

TEST(RobustnessTest, ExtremeGeneratorSettings) {
  // All-bidirectional except the mandatory directed remainder; full noise.
  data::GeneratorConfig config;
  config.num_nodes = 60;
  config.ties_per_node = 2.0;
  config.bidirectional_fraction = 0.95;
  config.direction_noise = 0.5;  // direction = coin flip
  config.status_noise = 1.0;
  config.seed = 3;
  const auto net = data::GenerateStatusNetwork(config);
  EXPECT_EQ(net.num_nodes(), 60u);
  EXPECT_GT(net.num_ties(), 0u);
}

TEST(RobustnessTest, HugeHideFractionStillTrains) {
  data::GeneratorConfig gen;
  gen.num_nodes = 150;
  gen.ties_per_node = 3.0;
  gen.bidirectional_fraction = 0.0;
  gen.seed = 7;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng(9);
  // Keep fraction so small that the floor of one directed tie kicks in.
  const auto split = graph::HideDirections(net, 1e-9, rng);
  EXPECT_EQ(split.network.num_directed_ties(), 1u);
  core::DeepDirectConfig config;
  config.dimensions = 8;
  config.epochs = 1.0;
  const auto model = core::DeepDirectModel::Train(split.network, config);
  EXPECT_NE(model, nullptr);
}

}  // namespace
}  // namespace deepdirect
