// Unit tests for MixedSocialNetwork / GraphBuilder, anchored on the paper's
// Fig. 1 example network.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/mixed_graph.h"
#include "util/random.h"

namespace deepdirect::graph {
namespace {

// The mixed social network of Fig. 1 with a..j mapped to 0..9:
//   E_d = {(d,a),(c,f),(e,d),(f,e),(h,f),(i,f),(f,j)}
//   E_b = {(b,f),(d,f),(e,g),(e,h)}
//   E_u = {(b,d),(c,j),(h,i)}
constexpr NodeId a = 0, b = 1, c = 2, d = 3, e = 4, f = 5, g = 6, h = 7,
                 i = 8, j = 9;

MixedSocialNetwork Fig1Network() {
  GraphBuilder builder(10);
  for (auto [u, v] : {std::pair<NodeId, NodeId>{d, a}, {c, f}, {e, d},
                      {f, e}, {h, f}, {i, f}, {f, j}}) {
    EXPECT_TRUE(builder.AddTie(u, v, TieType::kDirected).ok());
  }
  for (auto [u, v] :
       {std::pair<NodeId, NodeId>{b, f}, {d, f}, {e, g}, {e, h}}) {
    EXPECT_TRUE(builder.AddTie(u, v, TieType::kBidirectional).ok());
  }
  for (auto [u, v] : {std::pair<NodeId, NodeId>{b, d}, {c, j}, {h, i}}) {
    EXPECT_TRUE(builder.AddTie(u, v, TieType::kUndirected).ok());
  }
  return std::move(builder).Build();
}

TEST(GraphBuilderTest, RejectsOutOfRangeNodes) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.AddTie(0, 3, TieType::kDirected).ok());
  EXPECT_FALSE(builder.AddTie(5, 1, TieType::kUndirected).ok());
}

TEST(GraphBuilderTest, RejectsSelfLoops) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.AddTie(1, 1, TieType::kDirected).ok());
}

TEST(GraphBuilderTest, RejectsDuplicatePairsAcrossTypes) {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  // Same pair in any orientation or type is a conflict (Definition 1:
  // for (u,v) in E_d, (v,u) must not be in E).
  EXPECT_FALSE(builder.AddTie(0, 1, TieType::kDirected).ok());
  EXPECT_FALSE(builder.AddTie(1, 0, TieType::kDirected).ok());
  EXPECT_FALSE(builder.AddTie(1, 0, TieType::kBidirectional).ok());
  EXPECT_FALSE(builder.AddTie(0, 1, TieType::kUndirected).ok());
}

TEST(GraphBuilderTest, EmptyNetworkIsValid) {
  GraphBuilder builder(5);
  const MixedSocialNetwork net = std::move(builder).Build();
  EXPECT_EQ(net.num_nodes(), 5u);
  EXPECT_EQ(net.num_arcs(), 0u);
  EXPECT_EQ(net.num_ties(), 0u);
}

TEST(Fig1Test, TieAndArcCounts) {
  const auto net = Fig1Network();
  EXPECT_EQ(net.num_nodes(), 10u);
  EXPECT_EQ(net.num_ties(), 14u);
  EXPECT_EQ(net.num_directed_ties(), 7u);
  EXPECT_EQ(net.num_bidirectional_ties(), 4u);
  EXPECT_EQ(net.num_undirected_ties(), 3u);
  // Arcs: 7 directed + 2*(4+3) twins = 21.
  EXPECT_EQ(net.num_arcs(), 21u);
  EXPECT_EQ(net.directed_arcs().size(), 7u);
  EXPECT_EQ(net.bidirectional_arcs().size(), 8u);
  EXPECT_EQ(net.undirected_arcs().size(), 6u);
}

TEST(Fig1Test, FindArcAndTwins) {
  const auto net = Fig1Network();
  // Directed tie d->a exists only forward.
  const ArcId da = net.FindArc(d, a);
  ASSERT_NE(da, kInvalidArc);
  EXPECT_EQ(net.FindArc(a, d), kInvalidArc);
  EXPECT_EQ(net.twin(da), kInvalidArc);

  // Bidirectional tie b-f has both arcs, twinned.
  const ArcId bf = net.FindArc(b, f);
  const ArcId fb = net.FindArc(f, b);
  ASSERT_NE(bf, kInvalidArc);
  ASSERT_NE(fb, kInvalidArc);
  EXPECT_EQ(net.twin(bf), fb);
  EXPECT_EQ(net.twin(fb), bf);
  EXPECT_EQ(net.arc(bf).type, TieType::kBidirectional);

  // Undirected tie h-i has both arcs too.
  const ArcId hi = net.FindArc(h, i);
  const ArcId ih = net.FindArc(i, h);
  ASSERT_NE(hi, kInvalidArc);
  EXPECT_EQ(net.twin(hi), ih);
  EXPECT_EQ(net.arc(hi).type, TieType::kUndirected);

  // Nonexistent pair.
  EXPECT_EQ(net.FindArc(a, j), kInvalidArc);
  EXPECT_FALSE(net.HasArc(a, j));
}

TEST(Fig1Test, OutArcsSortedByDestination) {
  const auto net = Fig1Network();
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    const auto arcs = net.OutArcs(u);
    for (size_t k = 1; k < arcs.size(); ++k) {
      EXPECT_LT(net.arc(arcs[k - 1]).dst, net.arc(arcs[k]).dst);
      EXPECT_EQ(net.arc(arcs[k]).src, u);
    }
  }
}

TEST(Fig1Test, InArcsTargetCorrectNode) {
  const auto net = Fig1Network();
  size_t total = 0;
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    for (ArcId id : net.InArcs(u)) {
      EXPECT_EQ(net.arc(id).dst, u);
    }
    total += net.InArcCount(u);
  }
  EXPECT_EQ(total, net.num_arcs());
}

TEST(Fig1Test, DegreeSemanticsOfEq1And2) {
  const auto net = Fig1Network();
  // Node f: out = 2 directed (f->e, f->j) + 2 bidirectional (f-b, f-d) = 4;
  // in = 3 directed (c->f, h->f, i->f) + 2 bidirectional = 5.
  EXPECT_DOUBLE_EQ(net.DegOut(f), 4.0);
  EXPECT_DOUBLE_EQ(net.DegIn(f), 5.0);
  EXPECT_DOUBLE_EQ(net.Deg(f), 9.0);
  // Node b: 1 bidirectional + 1 undirected -> out 1.5, in 1.5.
  EXPECT_DOUBLE_EQ(net.DegOut(b), 1.5);
  EXPECT_DOUBLE_EQ(net.DegIn(b), 1.5);
  // Node a: only receives d->a.
  EXPECT_DOUBLE_EQ(net.DegOut(a), 0.0);
  EXPECT_DOUBLE_EQ(net.DegIn(a), 1.0);
  // Node g: one bidirectional tie with e.
  EXPECT_DOUBLE_EQ(net.DegOut(g), 1.0);
  EXPECT_DOUBLE_EQ(net.DegIn(g), 1.0);
}

TEST(Fig1Test, TieDegreeAndConnectedTies) {
  const auto net = Fig1Network();
  // Arc (d, a): a has no outgoing arcs, so no connected ties.
  EXPECT_EQ(net.TieDegree(net.FindArc(d, a)), 0u);
  EXPECT_TRUE(net.ConnectedTies(net.FindArc(d, a)).empty());

  // Arc (c, f): f's out arcs are (f,b),(f,d),(f,e),(f,j); none returns to c.
  const ArcId cf = net.FindArc(c, f);
  EXPECT_EQ(net.TieDegree(cf), 4u);
  const auto connected = net.ConnectedTies(cf);
  std::set<NodeId> heads;
  for (ArcId id : connected) {
    EXPECT_EQ(net.arc(id).src, f);
    heads.insert(net.arc(id).dst);
  }
  EXPECT_EQ(heads, (std::set<NodeId>{b, d, e, j}));

  // Arc (b, f): the return arc (f, b) must be excluded (Definition 4
  // requires u1 != v2).
  const ArcId bf = net.FindArc(b, f);
  EXPECT_EQ(net.TieDegree(bf), 3u);
  for (ArcId id : net.ConnectedTies(bf)) {
    EXPECT_NE(net.arc(id).dst, b);
  }
}

TEST(Fig1Test, ConnectedTiePairCountMatchesSum) {
  const auto net = Fig1Network();
  uint64_t total = 0;
  for (ArcId id = 0; id < net.num_arcs(); ++id) total += net.TieDegree(id);
  EXPECT_EQ(net.NumConnectedTiePairs(), total);
}

TEST(Fig1Test, SampleConnectedTieOnlyReturnsConnected) {
  const auto net = Fig1Network();
  util::Rng rng(5);
  const ArcId cf = net.FindArc(c, f);
  const auto valid = net.ConnectedTies(cf);
  std::set<ArcId> valid_set(valid.begin(), valid.end());
  std::set<ArcId> sampled;
  for (int trial = 0; trial < 200; ++trial) {
    const ArcId s = net.SampleConnectedTie(cf, rng);
    ASSERT_TRUE(valid_set.contains(s));
    sampled.insert(s);
  }
  // All four connected ties should be hit within 200 draws.
  EXPECT_EQ(sampled.size(), valid_set.size());
}

TEST(Fig1Test, SampleConnectedTieEmptyCase) {
  const auto net = Fig1Network();
  util::Rng rng(7);
  EXPECT_EQ(net.SampleConnectedTie(net.FindArc(d, a), rng), kInvalidArc);
}

TEST(Fig1Test, UndirectedNeighborsSortedDistinct) {
  const auto net = Fig1Network();
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    const auto neighbors = net.UndirectedNeighbors(u);
    for (size_t k = 1; k < neighbors.size(); ++k) {
      EXPECT_LT(neighbors[k - 1], neighbors[k]);
    }
  }
  const auto nf = net.UndirectedNeighbors(f);
  EXPECT_EQ(std::set<NodeId>(nf.begin(), nf.end()),
            (std::set<NodeId>{b, c, d, e, h, i, j}));
  EXPECT_EQ(net.UndirectedDegree(f), 7u);
}

TEST(Fig1Test, CommonNeighbors) {
  const auto net = Fig1Network();
  // h and i share exactly f.
  EXPECT_EQ(net.CommonNeighbors(h, i), std::vector<NodeId>{f});
  // b and d share f (via bidirectional ties).
  EXPECT_EQ(net.CommonNeighbors(b, d), std::vector<NodeId>{f});
  // a and g share nothing.
  EXPECT_TRUE(net.CommonNeighbors(a, g).empty());
}

TEST(Fig1Test, ArcToStringAndTieTypeNames) {
  EXPECT_STREQ(TieTypeToString(TieType::kDirected), "directed");
  EXPECT_STREQ(TieTypeToString(TieType::kBidirectional), "bidirectional");
  EXPECT_STREQ(TieTypeToString(TieType::kUndirected), "undirected");
  Arc arc{3, 0, TieType::kDirected};
  EXPECT_EQ(ArcToString(arc), "3->0[directed]");
}

TEST(GraphInvariantTest, TwinsAreInvolutions) {
  const auto net = Fig1Network();
  for (ArcId id = 0; id < net.num_arcs(); ++id) {
    const ArcId t = net.twin(id);
    if (t == kInvalidArc) {
      EXPECT_EQ(net.arc(id).type, TieType::kDirected);
    } else {
      EXPECT_EQ(net.twin(t), id);
      EXPECT_EQ(net.arc(t).src, net.arc(id).dst);
      EXPECT_EQ(net.arc(t).dst, net.arc(id).src);
      EXPECT_EQ(net.arc(t).type, net.arc(id).type);
    }
  }
}

TEST(GraphInvariantTest, OutArcCountsSumToArcs) {
  const auto net = Fig1Network();
  size_t total = 0;
  for (NodeId u = 0; u < net.num_nodes(); ++u) total += net.OutArcCount(u);
  EXPECT_EQ(total, net.num_arcs());
}

TEST(GraphInvariantTest, DegreeSumsConsistent) {
  // Σ deg_out = Σ deg_in = |E_d| + 2|E_b| + |E_u| in tie counts (undirected
  // ties contribute 1/2 to each side at both endpoints -> 1 total per side).
  const auto net = Fig1Network();
  double out_sum = 0.0, in_sum = 0.0;
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    out_sum += net.DegOut(u);
    in_sum += net.DegIn(u);
  }
  const double expected = 7 + 2.0 * 4 + 3;
  EXPECT_DOUBLE_EQ(out_sum, expected);
  EXPECT_DOUBLE_EQ(in_sum, expected);
}

TEST(GraphInvariantTest, BuildMultiThreadedDeterministic) {
  // The two-pass parallel Build must produce exactly the network the
  // serial build does: same arcs, same sorted undirected adjacency, same
  // connected-tie-pair count.
  const auto make = [](size_t num_threads) {
    util::Rng rng(101);
    GraphBuilder builder(200);
    for (int tie = 0; tie < 600; ++tie) {
      const NodeId u = static_cast<NodeId>(rng.NextIndex(200));
      const NodeId v = static_cast<NodeId>(rng.NextIndex(200));
      if (u == v) continue;
      const auto type = static_cast<TieType>(rng.NextIndex(3));
      // Duplicate pairs are rejected; that is fine here.
      (void)builder.AddTie(u, v, type);
    }
    builder.SetNumThreads(num_threads);
    return std::move(builder).Build();
  };
  const auto serial = make(1);
  const auto parallel = make(4);

  ASSERT_EQ(serial.num_arcs(), parallel.num_arcs());
  for (ArcId id = 0; id < serial.num_arcs(); ++id) {
    EXPECT_EQ(serial.arc(id), parallel.arc(id));
    EXPECT_EQ(serial.twin(id), parallel.twin(id));
  }
  EXPECT_EQ(serial.NumConnectedTiePairs(), parallel.NumConnectedTiePairs());
  for (NodeId u = 0; u < serial.num_nodes(); ++u) {
    const auto sn = serial.UndirectedNeighbors(u);
    const auto pn = parallel.UndirectedNeighbors(u);
    ASSERT_EQ(sn.size(), pn.size()) << "node " << u;
    EXPECT_TRUE(std::equal(sn.begin(), sn.end(), pn.begin()))
        << "node " << u;
  }
}

}  // namespace
}  // namespace deepdirect::graph
