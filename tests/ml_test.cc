// Unit tests for the ML substrate: matrix ops, logistic regression, MLP,
// metrics, scaler.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ml/dataset.h"
#include "ml/logistic_regression.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/scaler.h"

namespace deepdirect::ml {
namespace {

// ---------------------------------------------------------------- Matrix

TEST(MatrixTest, ShapeAndAccess) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  m.At(1, 2) = 7.5f;
  EXPECT_FLOAT_EQ(m.At(1, 2), 7.5f);
  EXPECT_FLOAT_EQ(m.Row(1)[2], 7.5f);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.0f);
}

TEST(MatrixTest, FillUniformRange) {
  Matrix m(10, 10);
  util::Rng rng(3);
  m.FillUniform(rng, -0.5f, 0.5f);
  bool any_nonzero = false;
  for (float v : m.data()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
    any_nonzero |= (v != 0.0f);
  }
  EXPECT_TRUE(any_nonzero);
  m.FillZero();
  for (float v : m.data()) EXPECT_EQ(v, 0.0f);
}

TEST(VectorOpsTest, DotAndAxpyAndNorm) {
  std::vector<float> a{1.0f, 2.0f, 3.0f};
  std::vector<float> b{4.0f, -5.0f, 6.0f};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
  Axpy(2.0, a, b);
  EXPECT_FLOAT_EQ(b[0], 6.0f);
  EXPECT_FLOAT_EQ(b[1], -1.0f);
  EXPECT_FLOAT_EQ(b[2], 12.0f);
  EXPECT_DOUBLE_EQ(Norm2(a), std::sqrt(14.0));
}

TEST(SigmoidTest, ValuesAndStability) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  EXPECT_NEAR(Sigmoid(-2.0), 1.0 - Sigmoid(2.0), 1e-12);
}

TEST(SigmoidTest, ClampsExtremeArgumentsToSigmoidOfSix) {
  // Arguments beyond ±6 (the word2vec clamp range, shared with the SIMD
  // sigmoid LUT) saturate to σ(±6) — including infinities.
  const double at_clamp = 1.0 / (1.0 + std::exp(-6.0));
  EXPECT_DOUBLE_EQ(Sigmoid(6.0), at_clamp);
  EXPECT_DOUBLE_EQ(Sigmoid(7.0), at_clamp);
  EXPECT_DOUBLE_EQ(Sigmoid(1000.0), at_clamp);
  EXPECT_DOUBLE_EQ(Sigmoid(std::numeric_limits<double>::infinity()),
                   at_clamp);
  EXPECT_NEAR(Sigmoid(-6.0), 1.0 - at_clamp, 1e-15);
  EXPECT_DOUBLE_EQ(Sigmoid(-1000.0), Sigmoid(-6.0));
  EXPECT_DOUBLE_EQ(Sigmoid(-std::numeric_limits<double>::infinity()),
                   Sigmoid(-6.0));
  // Inside the clamp range nothing changes.
  EXPECT_LT(Sigmoid(5.999), Sigmoid(6.0));
  // NaN propagates rather than silently mapping to the bound.
  EXPECT_TRUE(std::isnan(Sigmoid(std::nan(""))));
}

TEST(LogSigmoidTest, MatchesLogOfSigmoid) {
  for (double x : {-5.0, -1.0, 0.0, 1.0, 5.0}) {
    EXPECT_NEAR(LogSigmoid(x), std::log(Sigmoid(x)), 1e-12);
  }
}

TEST(LogSigmoidTest, ClampsConsistentlyWithSigmoid) {
  // Same ±6 clamp as Sigmoid: extreme and infinite arguments give the
  // finite value at the bound, and log∘σ stays consistent there.
  EXPECT_NEAR(LogSigmoid(-1000.0), std::log(Sigmoid(-1000.0)), 1e-12);
  EXPECT_DOUBLE_EQ(LogSigmoid(-1000.0), LogSigmoid(-6.0));
  EXPECT_DOUBLE_EQ(LogSigmoid(1000.0), LogSigmoid(6.0));
  EXPECT_DOUBLE_EQ(LogSigmoid(-std::numeric_limits<double>::infinity()),
                   LogSigmoid(-6.0));
  EXPECT_DOUBLE_EQ(LogSigmoid(std::numeric_limits<double>::infinity()),
                   LogSigmoid(6.0));
  EXPECT_TRUE(std::isfinite(LogSigmoid(-1.0e308)));
}

// --------------------------------------------------------------- Dataset

TEST(DatasetTest, AddAndAccess) {
  Dataset data(2);
  data.Add(std::vector<double>{1.0, 2.0}, 1.0, 0.5);
  data.Add(std::vector<double>{3.0, 4.0}, 0.0);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.num_features(), 2u);
  EXPECT_DOUBLE_EQ(data.Row(0)[1], 2.0);
  EXPECT_DOUBLE_EQ(data.Label(0), 1.0);
  EXPECT_DOUBLE_EQ(data.Weight(0), 0.5);
  EXPECT_DOUBLE_EQ(data.Weight(1), 1.0);
}

TEST(DatasetTest, SoftLabelsAllowed) {
  Dataset data(1);
  data.Add(std::vector<double>{0.0}, 0.37);
  EXPECT_DOUBLE_EQ(data.Label(0), 0.37);
}

// ---------------------------------------------------- LogisticRegression

TEST(LogisticRegressionTest, LearnsLinearlySeparableData) {
  // Labels follow sign(x0 - x1).
  Dataset data(2);
  util::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double x0 = rng.NextDoubleIn(-1, 1);
    const double x1 = rng.NextDoubleIn(-1, 1);
    data.Add(std::vector<double>{x0, x1}, x0 > x1 ? 1.0 : 0.0);
  }
  LogisticRegression lr(2);
  LogisticRegressionConfig config;
  config.epochs = 50;
  lr.Train(data, config);

  int correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    const double p = lr.Predict(data.Row(i));
    correct += (p >= 0.5) == (data.Label(i) == 1.0);
  }
  EXPECT_GT(correct, 480);
  // The learned weights must reflect the generating rule w0 > 0 > w1.
  EXPECT_GT(lr.weights()[0], 0.0);
  EXPECT_LT(lr.weights()[1], 0.0);
}

TEST(LogisticRegressionTest, MultiThreadedTrainingLearnsSeparableData) {
  // Hogwild workers race on the weight vector; the decision rule must
  // still be recovered.
  Dataset data(2);
  util::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double x0 = rng.NextDoubleIn(-1, 1);
    const double x1 = rng.NextDoubleIn(-1, 1);
    data.Add(std::vector<double>{x0, x1}, x0 > x1 ? 1.0 : 0.0);
  }
  LogisticRegression lr(2);
  LogisticRegressionConfig config;
  config.epochs = 50;
  config.num_threads = 4;
  lr.Train(data, config);

  int correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    const double p = lr.Predict(data.Row(i));
    correct += (p >= 0.5) == (data.Label(i) == 1.0);
  }
  EXPECT_GT(correct, 470);
  EXPECT_GT(lr.weights()[0], 0.0);
  EXPECT_LT(lr.weights()[1], 0.0);
}

TEST(LogisticRegressionTest, WarmStartConstructor) {
  LogisticRegression lr({1.0, -1.0}, 0.5);
  EXPECT_DOUBLE_EQ(lr.bias(), 0.5);
  EXPECT_DOUBLE_EQ(lr.Score(std::vector<double>{2.0, 1.0}), 1.5);
  EXPECT_NEAR(lr.Predict(std::vector<double>{2.0, 1.0}), Sigmoid(1.5), 1e-12);
}

TEST(LogisticRegressionTest, SampleWeightsShiftDecision) {
  // Conflicting labels at the same point: the heavier class wins.
  Dataset data(1);
  data.Add(std::vector<double>{1.0}, 1.0, 10.0);
  data.Add(std::vector<double>{1.0}, 0.0, 1.0);
  LogisticRegression lr(1);
  LogisticRegressionConfig config;
  config.epochs = 200;
  config.l2 = 0.0;
  lr.Train(data, config);
  EXPECT_GT(lr.Predict(std::vector<double>{1.0}), 0.5);
}

TEST(LogisticRegressionTest, L2ShrinksWeights) {
  Dataset data(1);
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextDoubleIn(-1, 1);
    data.Add(std::vector<double>{x}, x > 0 ? 1.0 : 0.0);
  }
  LogisticRegressionConfig weak, strong;
  weak.epochs = strong.epochs = 50;
  weak.l2 = 0.0;
  strong.l2 = 1.0;
  LogisticRegression lr_weak(1), lr_strong(1);
  lr_weak.Train(data, weak);
  lr_strong.Train(data, strong);
  EXPECT_LT(std::abs(lr_strong.weights()[0]),
            std::abs(lr_weak.weights()[0]));
}

TEST(LogisticRegressionTest, EmptyDatasetIsNoop) {
  Dataset data(3);
  LogisticRegression lr(3);
  EXPECT_DOUBLE_EQ(lr.Train(data, {}), 0.0);
  for (double w : lr.weights()) EXPECT_DOUBLE_EQ(w, 0.0);
}

TEST(LogisticRegressionTest, TrainingLossDecreases) {
  Dataset data(2);
  util::Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    const double x0 = rng.NextGaussian();
    const double x1 = rng.NextGaussian();
    data.Add(std::vector<double>{x0, x1}, x0 + 0.5 * x1 > 0 ? 1.0 : 0.0);
  }
  LogisticRegression lr(2);
  LogisticRegressionConfig one_epoch;
  one_epoch.epochs = 1;
  const double early = lr.Train(data, one_epoch);
  LogisticRegressionConfig more;
  more.epochs = 30;
  const double late = lr.Train(data, more);
  EXPECT_LT(late, early);
}

// ------------------------------------------------------------------ MLP

TEST(MlpTest, LearnsXor) {
  Dataset data(2);
  for (int rep = 0; rep < 50; ++rep) {
    data.Add(std::vector<double>{0.0, 0.0}, 0.0);
    data.Add(std::vector<double>{0.0, 1.0}, 1.0);
    data.Add(std::vector<double>{1.0, 0.0}, 1.0);
    data.Add(std::vector<double>{1.0, 1.0}, 0.0);
  }
  MlpClassifier mlp(2, 16, /*seed=*/3);
  MlpConfig config;
  config.epochs = 200;
  config.learning_rate = 0.1;
  config.l2 = 0.0;
  mlp.Train(data, config);
  EXPECT_LT(mlp.Predict(std::vector<double>{0.0, 0.0}), 0.5);
  EXPECT_GT(mlp.Predict(std::vector<double>{0.0, 1.0}), 0.5);
  EXPECT_GT(mlp.Predict(std::vector<double>{1.0, 0.0}), 0.5);
  EXPECT_LT(mlp.Predict(std::vector<double>{1.0, 1.0}), 0.5);
}

TEST(MlpTest, OutputIsProbability) {
  MlpClassifier mlp(3, 8, 5);
  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> x{rng.NextGaussian(), rng.NextGaussian(),
                          rng.NextGaussian()};
    const double p = mlp.Predict(x);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

// -------------------------------------------------------------- Metrics

TEST(MetricsTest, AccuracyThresholdsAtHalf) {
  EXPECT_DOUBLE_EQ(Accuracy({0.9, 0.4, 0.5, 0.1}, {1, 0, 1, 1}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(MetricsTest, AucPerfectAndInverted) {
  const std::vector<int> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.1, 0.2, 0.8, 0.9}, labels), 1.0);
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.9, 0.8, 0.2, 0.1}, labels), 0.0);
}

TEST(MetricsTest, AucRandomIsHalf) {
  // All scores identical: AUC must be exactly 0.5 via midranks.
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5);
}

TEST(MetricsTest, AucHandComputedWithTies) {
  // scores: pos {0.8, 0.5}, neg {0.5, 0.2}. Pairs: (0.8 vs 0.5)=1,
  // (0.8 vs 0.2)=1, (0.5 vs 0.5)=0.5, (0.5 vs 0.2)=1 -> AUC = 3.5/4.
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.8, 0.5, 0.5, 0.2}, {1, 1, 0, 0}), 0.875);
}

TEST(MetricsTest, AucDegenerateSingleClass) {
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.1, 0.9}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.1, 0.9}, {0, 0}), 0.5);
}

TEST(MetricsTest, LogLossKnownValue) {
  // -mean(log(0.8), log(1-0.2)) = -log(0.8).
  EXPECT_NEAR(LogLoss({0.8, 0.2}, {1, 0}), -std::log(0.8), 1e-12);
}

TEST(MetricsTest, ConfusionAndDerived) {
  const auto c = ConfusionAtHalf({0.9, 0.8, 0.3, 0.6, 0.2}, {1, 0, 0, 1, 1});
  EXPECT_EQ(c.true_positive, 2u);
  EXPECT_EQ(c.false_positive, 1u);
  EXPECT_EQ(c.true_negative, 1u);
  EXPECT_EQ(c.false_negative, 1u);
  EXPECT_DOUBLE_EQ(c.Precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.F1(), 2.0 / 3.0);
}

TEST(MetricsTest, BrierScoreValues) {
  // Perfect predictions -> 0; constant 0.5 -> 0.25.
  EXPECT_DOUBLE_EQ(BrierScore({1.0, 0.0}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(BrierScore({0.5, 0.5}, {1, 0}), 0.25);
  EXPECT_NEAR(BrierScore({0.8, 0.3}, {1, 0}), (0.04 + 0.09) / 2.0, 1e-12);
}

TEST(MetricsTest, EceZeroForCalibratedBins) {
  // Within one bin, confidence 0.7 with 70% positives -> ECE 0.
  std::vector<double> scores(10, 0.7);
  std::vector<int> labels{1, 1, 1, 1, 1, 1, 1, 0, 0, 0};
  EXPECT_NEAR(ExpectedCalibrationError(scores, labels, 10), 0.0, 1e-12);
}

TEST(MetricsTest, EceDetectsOverconfidence) {
  // Confidence 0.95 with only half correct -> ECE ~ 0.45.
  std::vector<double> scores(10, 0.95);
  std::vector<int> labels{1, 0, 1, 0, 1, 0, 1, 0, 1, 0};
  EXPECT_NEAR(ExpectedCalibrationError(scores, labels, 10), 0.45, 1e-12);
}

TEST(MetricsTest, EceHandlesBoundaryScores) {
  // p = 1.0 must fall into the last bin without crashing.
  EXPECT_NEAR(ExpectedCalibrationError({1.0, 0.0}, {1, 0}, 10), 0.0, 1e-12);
}

// --------------------------------------------------------------- Scaler

TEST(ScalerTest, StandardizesColumns) {
  Dataset data(2);
  data.Add(std::vector<double>{1.0, 10.0}, 0.0);
  data.Add(std::vector<double>{3.0, 10.0}, 1.0);
  data.Add(std::vector<double>{5.0, 10.0}, 0.0);
  StandardScaler scaler;
  scaler.Fit(data);
  EXPECT_DOUBLE_EQ(scaler.means()[0], 3.0);
  EXPECT_DOUBLE_EQ(scaler.means()[1], 10.0);
  scaler.Transform(data);
  // Column 0 standardized; column 1 constant -> centered only.
  EXPECT_NEAR(data.Row(0)[0], -std::sqrt(1.5), 1e-12);
  EXPECT_NEAR(data.Row(1)[0], 0.0, 1e-12);
  EXPECT_NEAR(data.Row(0)[1], 0.0, 1e-12);
  // Mean 0 / variance 1 after transform.
  double mean = 0.0, var = 0.0;
  for (size_t i = 0; i < data.size(); ++i) mean += data.Row(i)[0];
  mean /= 3.0;
  for (size_t i = 0; i < data.size(); ++i) {
    var += (data.Row(i)[0] - mean) * (data.Row(i)[0] - mean);
  }
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var / 3.0, 1.0, 1e-12);
}

TEST(ScalerTest, TransformRowMatchesTransform) {
  Dataset data(1);
  data.Add(std::vector<double>{2.0}, 0.0);
  data.Add(std::vector<double>{4.0}, 1.0);
  StandardScaler scaler;
  scaler.Fit(data);
  std::vector<double> row{2.0};
  scaler.TransformRow(row);
  EXPECT_NEAR(row[0], -1.0, 1e-12);
}

}  // namespace
}  // namespace deepdirect::ml
