// Tests for the full four-pattern ReDirect framework and the neighborhood
// Jaccard helper.

#include <gtest/gtest.h>

#include "core/applications.h"
#include "core/redirect.h"
#include "core/redirect_patterns.h"
#include "data/generators.h"
#include "graph/algorithms.h"

namespace deepdirect::core {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TieType;

graph::HiddenDirectionSplit EasySplit(uint64_t seed = 5) {
  data::GeneratorConfig gen;
  gen.num_nodes = 400;
  gen.ties_per_node = 4.0;
  gen.direction_noise = 0.05;
  gen.status_noise = 0.1;
  gen.seed = seed;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng(seed + 100);
  return graph::HideDirections(net, 0.3, rng);
}

TEST(NeighborhoodJaccardTest, HandComputed) {
  GraphBuilder builder(5);
  // N(0) = {1,2}, N(3) = {1,2,4} -> J = 2/3; N(0) vs N(4) = {3} -> 0.
  ASSERT_TRUE(builder.AddTie(0, 1, TieType::kUndirected).ok());
  ASSERT_TRUE(builder.AddTie(0, 2, TieType::kUndirected).ok());
  ASSERT_TRUE(builder.AddTie(3, 1, TieType::kUndirected).ok());
  ASSERT_TRUE(builder.AddTie(3, 2, TieType::kUndirected).ok());
  ASSERT_TRUE(builder.AddTie(3, 4, TieType::kUndirected).ok());
  const auto net = std::move(builder).Build();
  EXPECT_NEAR(NeighborhoodJaccard(net, 0, 3), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(NeighborhoodJaccard(net, 0, 4), 0.0);
}

TEST(RedirectFullTest, SemiSupervisedClampsAndBeatsChance) {
  const auto split = EasySplit();
  RedirectFullConfig config;
  const auto model = RedirectFullModel::Train(split.network, config);
  EXPECT_EQ(model->name(), "ReDirect-full/sm");
  for (graph::ArcId id : split.network.directed_arcs()) {
    const auto& arc = split.network.arc(id);
    EXPECT_DOUBLE_EQ(model->Directionality(arc.src, arc.dst), 1.0);
  }
  EXPECT_GT(DirectionDiscoveryAccuracy(split, *model), 0.65);
}

TEST(RedirectFullTest, UnsupervisedSolvesTdi) {
  // The original ReDirect setting: no labels at all. The patterns alone
  // must still recover directions above chance on a pattern-consistent
  // network.
  const auto split = EasySplit();
  RedirectFullConfig config;
  config.use_labels = false;
  const auto model = RedirectFullModel::Train(split.network, config);
  EXPECT_EQ(model->name(), "ReDirect-full");
  EXPECT_GT(DirectionDiscoveryAccuracy(split, *model), 0.6);
}

TEST(RedirectFullTest, PairConstraintHolds) {
  const auto split = EasySplit();
  const auto model =
      RedirectFullModel::Train(split.network, RedirectFullConfig{});
  for (graph::ArcId id : split.network.undirected_arcs()) {
    const auto& arc = split.network.arc(id);
    if (arc.src > arc.dst) continue;
    EXPECT_NEAR(model->Directionality(arc.src, arc.dst) +
                    model->Directionality(arc.dst, arc.src),
                1.0, 1e-6);
  }
}

TEST(RedirectFullTest, ZeroingPatternsDegradesGracefully) {
  // Degree-only configuration must still work (it degenerates toward the
  // degree prior).
  const auto split = EasySplit();
  RedirectFullConfig config;
  config.triad_weight = 0.0;
  config.similarity_weight = 0.0;
  config.collaborative_weight = 0.0;
  const auto model = RedirectFullModel::Train(split.network, config);
  EXPECT_GT(DirectionDiscoveryAccuracy(split, *model), 0.6);
}

TEST(RedirectFullTest, ComparableToTwoPatternVariant) {
  // The four-pattern equal-weight mix should land in the same quality
  // region as the paper-benchmarked two-pattern ReDirect-T/sm (the paper's
  // criticism is precisely that extra equal-weight patterns don't add).
  const auto split = EasySplit();
  const auto full =
      RedirectFullModel::Train(split.network, RedirectFullConfig{});
  const auto two = RedirectTModel::Train(split.network, RedirectTConfig{});
  const double full_acc = DirectionDiscoveryAccuracy(split, *full);
  const double two_acc = DirectionDiscoveryAccuracy(split, *two);
  EXPECT_NEAR(full_acc, two_acc, 0.08);
}

}  // namespace
}  // namespace deepdirect::core
