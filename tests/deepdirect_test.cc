// Tests for the DeepDirect model (Sec. 4): training mechanics, accuracy,
// determinism, and configuration behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "core/applications.h"
#include "core/deepdirect.h"
#include "data/generators.h"
#include "graph/algorithms.h"
#include "obs/metrics.h"

namespace deepdirect::core {
namespace {

using graph::MixedSocialNetwork;

// A small, easy network and split shared by several tests.
graph::HiddenDirectionSplit EasySplit(uint64_t seed = 5,
                                      double directed_fraction = 0.3) {
  data::GeneratorConfig gen;
  gen.num_nodes = 400;
  gen.ties_per_node = 4.0;
  gen.direction_noise = 0.05;
  gen.status_noise = 0.1;
  gen.bidirectional_fraction = 0.2;
  gen.seed = seed;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng(seed + 100);
  return graph::HideDirections(net, directed_fraction, rng);
}

DeepDirectConfig FastConfig() {
  DeepDirectConfig config;
  config.dimensions = 32;
  config.epochs = 3.0;
  config.seed = 21;
  return config;
}

TEST(DeepDirectTest, TrainsAndPredictsProbabilities) {
  const auto split = EasySplit();
  const auto model = DeepDirectModel::Train(split.network, FastConfig());
  EXPECT_EQ(model->name(), "DeepDirect");
  EXPECT_EQ(model->embeddings().rows(), model->index().num_arcs());
  EXPECT_EQ(model->embeddings().cols(), 32u);
  for (size_t e = 0; e < model->index().num_arcs(); e += 7) {
    const auto [u, v] = model->index().ArcAt(e);
    const double d = model->Directionality(u, v);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(DeepDirectTest, EmbeddingsAreFinite) {
  const auto split = EasySplit();
  const auto model = DeepDirectModel::Train(split.network, FastConfig());
  for (float v : model->embeddings().data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  for (double w : model->e_step_weights()) EXPECT_TRUE(std::isfinite(w));
  EXPECT_TRUE(std::isfinite(model->e_step_bias()));
}

TEST(DeepDirectTest, RecoversHiddenDirectionsWellAboveChance) {
  const auto split = EasySplit();
  DeepDirectConfig config = FastConfig();
  config.dimensions = 64;
  config.epochs = 5.0;
  const auto model = DeepDirectModel::Train(split.network, config);
  const double accuracy = DirectionDiscoveryAccuracy(split, *model);
  EXPECT_GT(accuracy, 0.65);
}

TEST(DeepDirectTest, FitsTrainingLabels) {
  const auto split = EasySplit();
  DeepDirectConfig config = FastConfig();
  config.epochs = 5.0;
  const auto model = DeepDirectModel::Train(split.network, config);
  // On labeled (directed) training ties the model should mostly agree with
  // the labels it trained on.
  const auto& index = model->index();
  size_t correct = 0, total = 0;
  for (size_t e = 0; e < index.num_arcs(); ++e) {
    if (!index.IsLabeled(e)) continue;
    const auto [u, v] = index.ArcAt(e);
    const double prediction = model->Directionality(u, v);
    correct += (prediction >= 0.5) == (index.Label(e) == 1.0);
    ++total;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(correct) / total, 0.7);
}

TEST(DeepDirectTest, DeterministicForSeed) {
  const auto split = EasySplit();
  const auto a = DeepDirectModel::Train(split.network, FastConfig());
  const auto b = DeepDirectModel::Train(split.network, FastConfig());
  const auto& da = a->embeddings().data();
  const auto& db = b->embeddings().data();
  ASSERT_EQ(da.size(), db.size());
  for (size_t i = 0; i < da.size(); ++i) EXPECT_EQ(da[i], db[i]);
  EXPECT_EQ(DirectionDiscoveryAccuracy(split, *a),
            DirectionDiscoveryAccuracy(split, *b));
}

TEST(DeepDirectTest, MultiThreadedTrainingStaysAccurate) {
  // Hogwild workers race on the shared matrices, so the result is not
  // bit-reproducible — but the model quality must hold up.
  const auto split = EasySplit();
  DeepDirectConfig config = FastConfig();
  config.dimensions = 64;
  config.epochs = 5.0;
  config.num_threads = 4;
  config.d_step.num_threads = 4;
  const auto model = DeepDirectModel::Train(split.network, config);
  for (float v : model->embeddings().data()) ASSERT_TRUE(std::isfinite(v));
  EXPECT_GT(DirectionDiscoveryAccuracy(split, *model), 0.65);
}

TEST(DeepDirectTest, SeedChangesEmbedding) {
  const auto split = EasySplit();
  auto config = FastConfig();
  const auto a = DeepDirectModel::Train(split.network, config);
  config.seed = 99;
  const auto b = DeepDirectModel::Train(split.network, config);
  bool any_diff = false;
  const auto& da = a->embeddings().data();
  const auto& db = b->embeddings().data();
  for (size_t i = 0; i < da.size() && !any_diff; ++i) {
    any_diff = (da[i] != db[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(DeepDirectTest, PairedPredictionsAreComparable) {
  // For most hidden ties, d(u,v) and d(v,u) should disagree enough to make
  // a decision (no degenerate constant output).
  const auto split = EasySplit();
  const auto model = DeepDirectModel::Train(split.network, FastConfig());
  size_t decisive = 0;
  for (graph::ArcId id : split.hidden_true_arcs) {
    const auto& arc = split.network.arc(id);
    const double fwd = model->Directionality(arc.src, arc.dst);
    const double bwd = model->Directionality(arc.dst, arc.src);
    decisive += std::abs(fwd - bwd) > 1e-6;
  }
  EXPECT_GT(static_cast<double>(decisive) / split.hidden_true_arcs.size(),
            0.9);
}

TEST(DeepDirectTest, ZeroEpochsStillYieldsValidModel) {
  const auto split = EasySplit();
  auto config = FastConfig();
  config.epochs = 0.0;
  const auto model = DeepDirectModel::Train(split.network, config);
  const auto [u, v] = model->index().ArcAt(0);
  const double d = model->Directionality(u, v);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(DeepDirectTest, AlphaBetaZeroIsPureTopology) {
  const auto split = EasySplit();
  auto config = FastConfig();
  config.alpha = 0.0;
  config.beta = 0.0;
  config.dimensions = 64;
  config.epochs = 5.0;
  const auto model = DeepDirectModel::Train(split.network, config);
  // With no classifier losses the E-Step classifier must stay at zero.
  for (double w : model->e_step_weights()) EXPECT_DOUBLE_EQ(w, 0.0);
  EXPECT_DOUBLE_EQ(model->e_step_bias(), 0.0);
  // The D-Step still learns from labels, so accuracy beats chance.
  EXPECT_GT(DirectionDiscoveryAccuracy(split, *model), 0.55);
}

TEST(DeepDirectTest, ClassifierLossesMoveEStepParameters) {
  const auto split = EasySplit();
  auto config = FastConfig();
  config.alpha = 5.0;
  config.beta = 1.0;
  const auto model = DeepDirectModel::Train(split.network, config);
  double norm = 0.0;
  for (double w : model->e_step_weights()) norm += w * w;
  EXPECT_GT(norm, 0.0);
}

TEST(DeepDirectTest, PatternLossAloneProducesSignal) {
  // β > 0, α = 0: pseudo-labels alone should beat chance clearly on a
  // pattern-consistent network.
  const auto split = EasySplit();
  auto config = FastConfig();
  config.alpha = 0.0;
  config.beta = 1.0;
  config.epochs = 5.0;
  const auto model = DeepDirectModel::Train(split.network, config);
  EXPECT_GT(DirectionDiscoveryAccuracy(split, *model), 0.6);
}

TEST(DeepDirectTest, TieDegreeWeightingAblationRuns) {
  const auto split = EasySplit();
  auto config = FastConfig();
  config.epochs = 5.0;
  config.weight_by_tie_degree = false;
  const auto model = DeepDirectModel::Train(split.network, config);
  EXPECT_GT(DirectionDiscoveryAccuracy(split, *model), 0.55);
}

TEST(DeepDirectTest, UniformNegativeSamplingAblationRuns) {
  const auto split = EasySplit();
  auto config = FastConfig();
  config.uniform_negative_sampling = true;
  const auto model = DeepDirectModel::Train(split.network, config);
  EXPECT_GT(DirectionDiscoveryAccuracy(split, *model), 0.55);
}

TEST(DeepDirectTest, WorksWithoutUndirectedTies) {
  // Fully labeled network: pattern loss has no arcs to touch.
  data::GeneratorConfig gen;
  gen.num_nodes = 200;
  gen.ties_per_node = 3.0;
  gen.seed = 31;
  const auto net = data::GenerateStatusNetwork(gen);
  const auto model = DeepDirectModel::Train(net, FastConfig());
  const auto [u, v] = model->index().ArcAt(0);
  EXPECT_GE(model->Directionality(u, v), 0.0);
}

#if DEEPDIRECT_OBS
TEST(DeepDirectTest, NegativeCollisionsAreRedrawnNotSkipped) {
  // On a tiny network the noise table frequently draws the positive
  // context. Collisions must be redrawn — every E-Step iteration still
  // trains on exactly λ negatives — instead of silently dropping the draw.
  obs::Registry::Default().Reset();
  obs::Registry::Default().set_enabled(true);

  data::GeneratorConfig gen;
  gen.num_nodes = 12;
  gen.ties_per_node = 2.0;
  gen.bidirectional_fraction = 0.2;
  gen.seed = 41;
  const auto net = data::GenerateStatusNetwork(gen);
  DeepDirectConfig config;
  config.dimensions = 8;
  config.epochs = 5.0;
  config.seed = 21;
  DeepDirectModel::Train(net, config);

  obs::Registry& registry = obs::Registry::Default();
  const uint64_t steps =
      registry.GetCounter("train.deepdirect.estep.steps")->Value();
  const uint64_t negatives =
      registry.GetCounter("deepdirect.estep.sampler.negatives_trained")
          ->Value();
  const uint64_t collisions =
      registry.GetCounter("deepdirect.estep.sampler.negative_collisions")
          ->Value();
  obs::Registry::Default().set_enabled(false);
  obs::Registry::Default().Reset();

  ASSERT_GT(steps, 0u);
  // This graph is small enough that collisions certainly occur...
  EXPECT_GT(collisions, 0u);
  // ...yet every step still trained the full λ negatives.
  EXPECT_EQ(negatives, steps * config.negative_samples);
}
#endif  // DEEPDIRECT_OBS

TEST(DeepDirectTest, PrecomputePatternsMultiThreadedDeterministic) {
  // The pattern precompute shards undirected arcs over fixed-size blocks
  // with a per-arc counter-based RNG, so every output array must be
  // bit-identical regardless of worker count.
  const auto split = EasySplit();
  const TieIndex index(split.network);
  auto config = FastConfig();
  config.num_threads = 1;
  const auto serial = PrecomputePatterns(split.network, index, config);
  config.num_threads = 4;
  const auto parallel = PrecomputePatterns(split.network, index, config);

  EXPECT_GT(serial.num_pattern_arcs(), 0u);
  EXPECT_EQ(serial.slot, parallel.slot);
  EXPECT_EQ(serial.degree_pseudo_label, parallel.degree_pseudo_label);
  EXPECT_EQ(serial.degree_active, parallel.degree_active);
  EXPECT_EQ(serial.triad_offsets, parallel.triad_offsets);
  EXPECT_EQ(serial.triad_pairs, parallel.triad_pairs);
}

TEST(DeepDirectTest, PrecomputePatternsTriadArenaIsConsistent) {
  const auto split = EasySplit();
  const TieIndex index(split.network);
  const auto patterns =
      PrecomputePatterns(split.network, index, FastConfig());
  const size_t slots = patterns.num_pattern_arcs();
  ASSERT_EQ(patterns.triad_offsets.size(), slots + 1);
  EXPECT_EQ(patterns.triad_offsets.front(), 0u);
  EXPECT_EQ(patterns.triad_offsets.back(), patterns.triad_pairs.size());
  for (size_t s = 0; s + 1 <= slots; ++s) {
    EXPECT_LE(patterns.triad_offsets[s], patterns.triad_offsets[s + 1]);
  }
  // Every referenced pair names valid arcs of the closure.
  for (const auto& [a, b] : patterns.triad_pairs) {
    EXPECT_LT(a, index.num_arcs());
    EXPECT_LT(b, index.num_arcs());
  }
}

TEST(DeepDirectTest, TieEmbeddingAccessors) {
  const auto split = EasySplit();
  const auto model = DeepDirectModel::Train(split.network, FastConfig());
  const auto [u, v] = model->index().ArcAt(3);
  const auto row = model->TieEmbedding(u, v);
  EXPECT_EQ(row.size(), 32u);
  const auto direct = model->embeddings().Row(model->index().IndexOf(u, v));
  EXPECT_EQ(row.data(), direct.data());
}

TEST(DeepDirectTest, ProgressCallbackReportsDecreasingTopoLoss) {
  const auto split = EasySplit();
  auto config = FastConfig();
  config.epochs = 4.0;
  config.report_every = 20000;
  std::vector<double> losses;
  std::vector<uint64_t> steps;
  config.progress = [&](uint64_t step, uint64_t total, double mean_loss) {
    EXPECT_LE(step, total);
    steps.push_back(step);
    losses.push_back(mean_loss);
  };
  DeepDirectModel::Train(split.network, config);
  ASSERT_GT(losses.size(), 3u);
  // Steps are strictly increasing; the final window's loss is below the
  // first window's (skip-gram loss decreases from its cold start).
  for (size_t i = 1; i < steps.size(); ++i) EXPECT_GT(steps[i], steps[i - 1]);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(DeepDirectTest, MlpDStepHeadExtension) {
  // Sec. 8 future work: the nonlinear D-Step head must produce a valid,
  // above-chance directionality function.
  const auto split = EasySplit();
  auto config = FastConfig();
  config.epochs = 5.0;
  config.d_step_head = DStepHead::kMlp;
  const auto model = DeepDirectModel::Train(split.network, config);
  for (size_t e = 0; e < model->index().num_arcs(); e += 13) {
    const auto [u, v] = model->index().ArcAt(e);
    const double d = model->Directionality(u, v);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
  EXPECT_GT(DirectionDiscoveryAccuracy(split, *model), 0.6);
}

TEST(DeepDirectTest, DStepWarmStartMatchesEStepShape) {
  const auto split = EasySplit();
  const auto model = DeepDirectModel::Train(split.network, FastConfig());
  EXPECT_EQ(model->d_step_regression().num_features(), 32u);
  EXPECT_EQ(model->e_step_weights().size(), 32u);
}

}  // namespace
}  // namespace deepdirect::core
