// Tests for the trace-timeline subsystem (src/obs/trace_buffer.h, trace.h):
// the bounded thread-sharded span buffer, the TraceSpan RAII gate semantics
// (including mid-span disable), nesting-depth bookkeeping, the Chrome
// trace_event JSON export (validated with an independent JSON parser), and
// an end-to-end check that a traced DeepDirect training run emits the
// E-Step / D-Step / epoch / checkpoint spans the --trace-out contract
// promises.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/deepdirect.h"
#include "core/models.h"
#include "data/generators.h"
#include "json_lint.h"
#include "obs/trace.h"
#include "obs/trace_buffer.h"
#include "train/checkpoint.h"
#include "util/random.h"

namespace deepdirect {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

#if DEEPDIRECT_OBS

// Resets + enables the default trace buffer for a test and restores the
// disabled default (and default capacity) afterwards. The buffer is a
// process-wide singleton, so tests sharing one binary must clean up.
struct ScopedDefaultTraceBuffer {
  ScopedDefaultTraceBuffer() {
    obs::TraceBuffer::Default().Reset();
    obs::TraceBuffer::Default().set_enabled(true);
  }
  ~ScopedDefaultTraceBuffer() {
    obs::TraceBuffer::Default().set_enabled(false);
    obs::TraceBuffer::Default().set_shard_capacity(
        obs::TraceBuffer::kDefaultShardCapacity);
    obs::TraceBuffer::Default().Reset();
  }
};

obs::TraceEvent MakeEvent(const std::string& name, uint64_t start_ns,
                          uint64_t end_ns, uint32_t depth = 0) {
  obs::TraceEvent event;
  event.name = name;
  event.tid = obs::internal::TraceThreadId();
  event.start_ns = start_ns;
  event.end_ns = end_ns;
  event.depth = depth;
  return event;
}

// ------------------------------------------------------------ buffer gate

TEST(TraceBufferTest, StartsDisabledAndDropsWhenDisabled) {
  obs::TraceBuffer buffer;
  EXPECT_FALSE(buffer.enabled());
  buffer.Record(MakeEvent("dark", 1, 2));
  EXPECT_TRUE(buffer.Events().empty());
  EXPECT_EQ(buffer.dropped(), 1u);

  buffer.set_enabled(true);
  buffer.Record(MakeEvent("lit", 3, 4));
  ASSERT_EQ(buffer.Events().size(), 1u);
  EXPECT_EQ(buffer.Events()[0].name, "lit");
}

TEST(TraceBufferTest, ResetClearsEventsAndDropCounter) {
  obs::TraceBuffer buffer;
  buffer.Record(MakeEvent("dropped", 1, 2));  // disabled: counts a drop
  buffer.set_enabled(true);
  buffer.Record(MakeEvent("kept", 3, 4));
  EXPECT_EQ(buffer.Events().size(), 1u);
  EXPECT_EQ(buffer.dropped(), 1u);

  buffer.Reset();
  EXPECT_TRUE(buffer.Events().empty());
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(TraceBufferTest, EventsAreSortedByStartTime) {
  obs::TraceBuffer buffer;
  buffer.set_enabled(true);
  buffer.Record(MakeEvent("c", 30, 40));
  buffer.Record(MakeEvent("a", 10, 15));
  buffer.Record(MakeEvent("b", 20, 25));
  const auto events = buffer.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[2].name, "c");
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);
  }
}

TEST(TraceBufferTest, ShardCapacityBoundsMemoryAndCountsDrops) {
  obs::TraceBuffer buffer;
  buffer.set_enabled(true);
  buffer.set_shard_capacity(4);
  // Single thread → a single shard → at most 4 events land.
  for (uint64_t i = 0; i < 10; ++i) {
    buffer.Record(MakeEvent("span", i, i + 1));
  }
  EXPECT_EQ(buffer.Events().size(), 4u);
  EXPECT_EQ(buffer.dropped(), 6u);
}

TEST(TraceBufferTest, ConcurrentRecordsAllLand) {
  obs::TraceBuffer buffer;
  buffer.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr uint64_t kSpansPerThread = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&buffer] {
      for (uint64_t i = 0; i < kSpansPerThread; ++i) {
        buffer.Record(MakeEvent("worker", i, i + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(buffer.Events().size(), kThreads * kSpansPerThread);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(TraceBufferTest, NowNsIsMonotonic) {
  const uint64_t a = obs::TraceBuffer::NowNs();
  const uint64_t b = obs::TraceBuffer::NowNs();
  EXPECT_GE(b, a);
}

// ------------------------------------------------------------- TraceSpan

TEST(TraceSpanTest, RecordsNamedEventWithOrderedTimestamps) {
  ScopedDefaultTraceBuffer guard;
  {
    obs::TraceSpan span("trace_test.unit");
  }
  const auto events = obs::TraceBuffer::Default().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "trace_test.unit");
  EXPECT_GE(events[0].end_ns, events[0].start_ns);
  EXPECT_EQ(events[0].depth, 0u);
}

TEST(TraceSpanTest, DisabledBufferRecordsNothingAndCountsNoDrop) {
  obs::TraceBuffer& buffer = obs::TraceBuffer::Default();
  buffer.Reset();
  buffer.set_enabled(false);
  {
    obs::TraceSpan span("trace_test.dark");
  }
  // An inactive span never even reaches Record(): no event, no drop.
  EXPECT_TRUE(buffer.Events().empty());
  EXPECT_EQ(buffer.dropped(), 0u);
  buffer.Reset();
}

TEST(TraceSpanTest, MidSpanDisableDropsTheEventAndCountsIt) {
  ScopedDefaultTraceBuffer guard;
  {
    obs::TraceSpan span("trace_test.cut_off");
    obs::TraceBuffer::Default().set_enabled(false);
  }
  // The span started while recording but must not land after the owner
  // switched the buffer off; the drop is visible in the counter.
  EXPECT_TRUE(obs::TraceBuffer::Default().Events().empty());
  EXPECT_EQ(obs::TraceBuffer::Default().dropped(), 1u);
}

TEST(TraceSpanTest, NestedSpansRecordEntryDepths) {
  ScopedDefaultTraceBuffer guard;
  {
    obs::TraceSpan outer("trace_test.outer");
    {
      obs::TraceSpan middle("trace_test.middle");
      {
        obs::TraceSpan inner("trace_test.inner");
      }
    }
  }
  const auto events = obs::TraceBuffer::Default().Events();
  ASSERT_EQ(events.size(), 3u);
  // Inner spans close (and record) first but start later.
  EXPECT_EQ(events[0].name, "trace_test.outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].name, "trace_test.middle");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].name, "trace_test.inner");
  EXPECT_EQ(events[2].depth, 2u);
  // Containment: each child runs inside its parent's window.
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[1].start_ns, events[2].start_ns);
  EXPECT_LE(events[2].end_ns, events[1].end_ns);
  EXPECT_LE(events[1].end_ns, events[0].end_ns);
}

TEST(TraceSpanTest, DepthIsPerThread) {
  ScopedDefaultTraceBuffer guard;
  // A nested span on a worker thread starts at depth 0 there even while
  // this thread is inside a span of its own.
  obs::TraceSpan outer("trace_test.main_outer");
  std::thread worker([] {
    obs::TraceSpan span("trace_test.worker_top");
  });
  worker.join();
  const auto events = obs::TraceBuffer::Default().Events();
  ASSERT_EQ(events.size(), 1u);  // outer is still open
  EXPECT_EQ(events[0].name, "trace_test.worker_top");
  EXPECT_EQ(events[0].depth, 0u);
}

TEST(TraceSpanTest, ConcurrentSpansGetDistinctThreadIds) {
  ScopedDefaultTraceBuffer guard;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::TraceSpan span("trace_test.mt");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto events = obs::TraceBuffer::Default().Events();
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  std::set<uint32_t> tids;
  for (const auto& event : events) tids.insert(event.tid);
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

// ------------------------------------------------------ Chrome trace JSON

// Pulls every numeric value of `field` ("ts"/"dur") out of the trace JSON
// in document order, without a DOM.
std::vector<double> ExtractNumbers(const std::string& json,
                                   const std::string& field) {
  std::vector<double> values;
  const std::string needle = "\"" + field + "\": ";
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    values.push_back(std::stod(json.substr(pos)));
  }
  return values;
}

TEST(ChromeTraceTest, EmptyBufferYieldsValidSkeleton) {
  obs::TraceBuffer buffer;
  const std::string json = buffer.ToChromeTraceJson();
  EXPECT_TRUE(testing::JsonLinter::Valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 0"), std::string::npos);
}

TEST(ChromeTraceTest, ExportIsValidJsonWithMonotonicTimestamps) {
  obs::TraceBuffer buffer;
  buffer.set_enabled(true);
  buffer.Record(MakeEvent("load \"graph\"\n", 2'000, 5'000, 0));  // escaping
  buffer.Record(MakeEvent("estep", 1'000, 9'000, 0));
  buffer.Record(MakeEvent("epoch 0", 3'000, 4'000, 1));
  const std::string json = buffer.ToChromeTraceJson();

  ASSERT_TRUE(testing::JsonLinter::Valid(json)) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"deepdirect\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 1"), std::string::npos);
  // The raw name with a quote and newline must arrive escaped (control
  // characters as \u00xx), not verbatim.
  EXPECT_NE(json.find("load \\\"graph\\\"\\u000a"), std::string::npos);

  const auto ts = ExtractNumbers(json, "ts");
  ASSERT_EQ(ts.size(), 3u);
  for (size_t i = 1; i < ts.size(); ++i) {
    EXPECT_GE(ts[i], ts[i - 1]) << "ts out of order at event " << i;
  }
  EXPECT_DOUBLE_EQ(ts[0], 1.0);  // ns → µs
  for (double dur : ExtractNumbers(json, "dur")) {
    EXPECT_GE(dur, 0.0);
  }
}

TEST(ChromeTraceTest, DroppedEventsAreReported) {
  obs::TraceBuffer buffer;
  buffer.set_enabled(true);
  buffer.set_shard_capacity(1);
  buffer.Record(MakeEvent("kept", 1, 2));
  buffer.Record(MakeEvent("dropped", 3, 4));
  const std::string json = buffer.ToChromeTraceJson();
  EXPECT_TRUE(testing::JsonLinter::Valid(json)) << json;
  EXPECT_NE(json.find("\"dropped_events\": 1"), std::string::npos);
}

TEST(ChromeTraceTest, WriteChromeTraceRoundTripsAndReportsIoErrors) {
  obs::TraceBuffer buffer;
  buffer.set_enabled(true);
  buffer.Record(MakeEvent("span", 1, 2));

  const std::string path = TempPath("trace_test_chrome.json");
  ASSERT_TRUE(buffer.WriteChromeTrace(path).ok());
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), buffer.ToChromeTraceJson());
  std::remove(path.c_str());

  const auto bad = buffer.WriteChromeTrace("/nonexistent-dir/trace.json");
  EXPECT_FALSE(bad.ok());
}

// ------------------------------------------------------------- end-to-end

// A traced serial DeepDirect training run must emit the spans the
// --trace-out contract promises: the preprocess/E-Step/D-Step phases, the
// per-epoch spans, and (with checkpointing on) checkpoint writes — and the
// export of the whole thing must be valid JSON.
TEST(TraceEndToEndTest, TrainingEmitsPhaseEpochAndCheckpointSpans) {
  ScopedDefaultTraceBuffer guard;

  data::GeneratorConfig gen;
  gen.num_nodes = 120;
  gen.ties_per_node = 4.0;
  gen.bidirectional_fraction = 0.2;
  gen.seed = 17;
  const auto net = data::GenerateStatusNetwork(gen);

  core::DeepDirectConfig config = core::MethodConfigs::FastDefaults().deepdirect;
  config.num_threads = 1;
  config.d_step.num_threads = 1;
  core::DeepDirectModel::Train(net, config);

  // One checkpoint write through the real Checkpointer path.
  train::CheckpointOptions options;
  options.dir = TempPath("trace_test_ckpt");
  options.trainer = "trace_test";
  options.policy.every_n_epochs = 1;
  train::RunShape shape;
  shape.total_steps = 10;
  shape.steps_per_epoch = 10;
  train::Checkpointer checkpointer(
      options, shape,
      [](train::CheckpointWriter& writer) {
        const uint64_t token = 42;
        writer.AddPod("token", token);
      },
      [](const train::CheckpointData&) { return util::Status::OK(); });
  util::Rng rng(3);
  // last=false: the policy only writes at non-final epoch boundaries.
  checkpointer.AtEpochBoundary({0, 10, 0.0, false}, rng);

  bool saw_estep = false, saw_dstep = false, saw_preprocess = false;
  bool saw_epoch = false, saw_checkpoint = false;
  const auto events = obs::TraceBuffer::Default().Events();
  EXPECT_FALSE(events.empty());
  for (const auto& event : events) {
    saw_estep |= event.name == "deepdirect.estep";
    saw_dstep |= event.name == "deepdirect.dstep";
    saw_preprocess |= event.name == "deepdirect.preprocess";
    saw_epoch |= event.name.find(".epoch ") != std::string::npos;
    saw_checkpoint |= event.name == "checkpoint.write";
    EXPECT_GE(event.end_ns, event.start_ns);
  }
  EXPECT_TRUE(saw_estep);
  EXPECT_TRUE(saw_dstep);
  EXPECT_TRUE(saw_preprocess);
  EXPECT_TRUE(saw_epoch);
  EXPECT_TRUE(saw_checkpoint);

  // Epoch spans nest inside their phase span.
  for (const auto& event : events) {
    if (event.name.find(".epoch ") != std::string::npos) {
      EXPECT_GE(event.depth, 1u) << event.name;
    }
  }

  const std::string json = obs::TraceBuffer::Default().ToChromeTraceJson();
  EXPECT_TRUE(testing::JsonLinter::Valid(json));
  EXPECT_NE(json.find("deepdirect.estep"), std::string::npos);

  for (const auto& path : checkpointer.ListCheckpoints()) {
    std::remove(path.c_str());
  }
}

#else  // !DEEPDIRECT_OBS — the compiled-out shells must stay inert.

TEST(TraceCompiledOutTest, ShellsAreInert) {
  EXPECT_FALSE(obs::TraceEnabled());
  obs::TraceBuffer& buffer = obs::TraceBuffer::Default();
  buffer.set_enabled(true);  // must stay off: the layer is compiled out
  EXPECT_FALSE(buffer.enabled());
  {
    obs::TraceSpan span("dark");
  }
  EXPECT_TRUE(buffer.Events().empty());
  EXPECT_EQ(buffer.dropped(), 0u);
  const std::string json = buffer.ToChromeTraceJson();
  EXPECT_TRUE(testing::JsonLinter::Valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  const std::string path = TempPath("trace_test_shell.json");
  EXPECT_TRUE(buffer.WriteChromeTrace(path).ok());
  std::remove(path.c_str());
}

#endif  // DEEPDIRECT_OBS

}  // namespace
}  // namespace deepdirect
