// Tests for DeepDirect model serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/applications.h"
#include "core/deepdirect.h"
#include "data/generators.h"
#include "graph/algorithms.h"

namespace deepdirect::core {
namespace {

graph::HiddenDirectionSplit MakeSplit(uint64_t seed = 5) {
  data::GeneratorConfig gen;
  gen.num_nodes = 250;
  gen.ties_per_node = 3.5;
  gen.seed = seed;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng(seed + 1);
  return graph::HideDirections(net, 0.4, rng);
}

DeepDirectConfig TinyConfig() {
  DeepDirectConfig config;
  config.dimensions = 16;
  config.epochs = 2.0;
  return config;
}

TEST(ModelIoTest, SaveLoadRoundTripPredictionsIdentical) {
  const auto split = MakeSplit();
  const auto model = DeepDirectModel::Train(split.network, TinyConfig());
  const std::string path = "/tmp/deepdirect_model_test.ddm";
  ASSERT_TRUE(model->Save(path).ok());

  auto loaded = DeepDirectModel::Load(path, split.network);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& restored = loaded.value();

  for (size_t e = 0; e < model->index().num_arcs(); e += 5) {
    const auto [u, v] = model->index().ArcAt(e);
    EXPECT_DOUBLE_EQ(model->Directionality(u, v),
                     restored->Directionality(u, v));
  }
  EXPECT_EQ(DirectionDiscoveryAccuracy(split, *model),
            DirectionDiscoveryAccuracy(split, *restored));
  EXPECT_EQ(model->e_step_weights(), restored->e_step_weights());
  EXPECT_DOUBLE_EQ(model->e_step_bias(), restored->e_step_bias());
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsWrongNetwork) {
  const auto split = MakeSplit(5);
  const auto other_split = MakeSplit(99);
  const auto model = DeepDirectModel::Train(split.network, TinyConfig());
  const std::string path = "/tmp/deepdirect_model_wrongnet.ddm";
  ASSERT_TRUE(model->Save(path).ok());
  auto loaded = DeepDirectModel::Load(path, other_split.network);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsGarbageFile) {
  const std::string path = "/tmp/deepdirect_model_garbage.ddm";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a model";
  }
  const auto split = MakeSplit();
  auto loaded = DeepDirectModel::Load(path, split.network);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsTruncatedFile) {
  const auto split = MakeSplit();
  const auto model = DeepDirectModel::Train(split.network, TinyConfig());
  const std::string path = "/tmp/deepdirect_model_trunc.ddm";
  ASSERT_TRUE(model->Save(path).ok());
  // Truncate to half.
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  auto loaded = DeepDirectModel::Load(path, split.network);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, MissingFileReportsIOError) {
  const auto split = MakeSplit();
  auto loaded =
      DeepDirectModel::Load("/nonexistent/model.ddm", split.network);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
}

TEST(ModelIoTest, PartialWriteSweepNeverLoads) {
  // Crash-during-save regression: a save interrupted after any byte count
  // leaves a strict prefix. Every sampled prefix length must be rejected by
  // Load — cleanly, without crashing or accepting a half-written model.
  const auto split = MakeSplit();
  const auto model = DeepDirectModel::Train(split.network, TinyConfig());
  const std::string path = "/tmp/deepdirect_model_partial.ddm";
  ASSERT_TRUE(model->Save(path).ok());
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_GT(contents.size(), 0u);
  // Prime-strided sweep plus the structural boundaries (empty file, lone
  // magic, header, and one-byte-short).
  std::vector<size_t> cuts = {0, 4, 20, contents.size() - 1};
  for (size_t k = 0; k < contents.size(); k += 997) cuts.push_back(k);
  for (size_t cut : cuts) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(contents.data(), static_cast<std::streamsize>(cut));
    }
    auto loaded = DeepDirectModel::Load(path, split.network);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes loaded";
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument)
        << "prefix of " << cut << ": " << loaded.status().ToString();
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, SaveIsAtomicOverAnExistingModel) {
  // Overwriting goes through temp+rename: after the save no .tmp remains,
  // and the destination is the new, fully valid model.
  const auto split = MakeSplit();
  const auto model = DeepDirectModel::Train(split.network, TinyConfig());
  const std::string path = "/tmp/deepdirect_model_atomic.ddm";
  ASSERT_TRUE(model->Save(path).ok());
  ASSERT_TRUE(model->Save(path).ok());  // overwrite the existing file
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "temp file left behind";
  auto loaded = DeepDirectModel::Load(path, split.network);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(model->e_step_weights(), loaded.value()->e_step_weights());
  std::remove(path.c_str());
}

TEST(ModelIoTest, SingleByteCorruptionSweepNeverLoads) {
  // Bit-rot regression: flip one byte at a prime stride across the whole
  // file; every flip must be caught by a section or header CRC.
  const auto split = MakeSplit();
  const auto model = DeepDirectModel::Train(split.network, TinyConfig());
  const std::string path = "/tmp/deepdirect_model_flip.ddm";
  ASSERT_TRUE(model->Save(path).ok());
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  for (size_t k = 0; k < contents.size(); k += 131) {
    std::string corrupted = contents;
    corrupted[k] = static_cast<char>(corrupted[k] ^ 0x5A);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(corrupted.data(),
                static_cast<std::streamsize>(corrupted.size()));
    }
    auto loaded = DeepDirectModel::Load(path, split.network);
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << k << " loaded";
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, MlpHeadIsNotSerializable) {
  const auto split = MakeSplit();
  auto config = TinyConfig();
  config.d_step_head = DStepHead::kMlp;
  const auto model = DeepDirectModel::Train(split.network, config);
  const auto status = model->Save("/tmp/deepdirect_model_mlp.ddm");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace deepdirect::core
