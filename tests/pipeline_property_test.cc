// Parameterized cross-dataset property sweep: the full
// generate → hide → train → evaluate pipeline must satisfy basic
// invariants on every dataset configuration and label fraction.

#include <gtest/gtest.h>

#include <tuple>

#include "core/applications.h"
#include "core/deepdirect.h"
#include "core/models.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "util/random.h"

namespace deepdirect {
namespace {

using Param = std::tuple<data::DatasetId, double>;

class PipelineProperty : public ::testing::TestWithParam<Param> {};

TEST_P(PipelineProperty, DeepDirectPipelineInvariants) {
  const auto [dataset, label_fraction] = GetParam();
  const auto net = data::MakeDataset(dataset, /*scale=*/0.25);
  util::Rng rng(55);
  const auto split = graph::HideDirections(net, label_fraction, rng);

  // Split bookkeeping.
  EXPECT_EQ(split.network.num_ties(), net.num_ties());
  EXPECT_EQ(split.network.num_directed_ties() +
                split.network.num_undirected_ties(),
            net.num_directed_ties());
  EXPECT_EQ(split.hidden_true_arcs.size(),
            split.network.num_undirected_ties());

  core::DeepDirectConfig config;
  config.dimensions = 16;
  config.epochs = 2.0;
  const auto model = core::DeepDirectModel::Train(split.network, config);

  // Predictions are probabilities; accuracy is within [0, 1] and above
  // worst case on pattern-bearing data.
  const double accuracy = core::DirectionDiscoveryAccuracy(split, *model);
  EXPECT_GE(accuracy, 0.4);
  EXPECT_LE(accuracy, 1.0);

  // Each undirected tie receives exactly one prediction, with endpoints
  // that actually host a tie.
  const auto predictions = core::DiscoverDirections(split.network, *model);
  EXPECT_EQ(predictions.size(), split.network.num_undirected_ties());
  for (const auto& p : predictions) {
    EXPECT_TRUE(split.network.HasArc(p.source, p.target));
    EXPECT_GE(p.confidence, 0.0);
    EXPECT_LE(p.confidence, 1.0);
  }

  // The directionality adjacency matrix preserves the arc structure.
  const core::WeightedAdjacency adjacency(split.network, model.get());
  double out_total = 0.0, in_total = 0.0;
  for (graph::NodeId u = 0; u < split.network.num_nodes(); ++u) {
    out_total += adjacency.OutSum(u);
    in_total += adjacency.InSum(u);
  }
  EXPECT_NEAR(out_total, in_total, 1e-6);
  EXPECT_GT(out_total, 0.0);
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  const auto [dataset, fraction] = info.param;
  return std::string(data::DatasetName(dataset)) + "_" +
         std::to_string(static_cast<int>(fraction * 100)) + "pct";
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasetsAndFractions, PipelineProperty,
    ::testing::Combine(::testing::ValuesIn(data::AllDatasets()),
                       ::testing::Values(0.1, 0.5)),
    ParamName);

}  // namespace
}  // namespace deepdirect
