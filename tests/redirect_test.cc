// Tests for the ReDirect-N/sm and ReDirect-T/sm baselines and the LINE
// directionality model.

#include <gtest/gtest.h>

#include <cmath>

#include "core/applications.h"
#include "core/line_model.h"
#include "core/models.h"
#include "core/redirect.h"
#include "data/generators.h"
#include "graph/algorithms.h"

namespace deepdirect::core {
namespace {

graph::HiddenDirectionSplit EasySplit(uint64_t seed = 5) {
  data::GeneratorConfig gen;
  gen.num_nodes = 400;
  gen.ties_per_node = 4.0;
  gen.direction_noise = 0.05;
  gen.status_noise = 0.1;
  gen.bidirectional_fraction = 0.2;
  gen.seed = seed;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng(seed + 100);
  return graph::HideDirections(net, 0.3, rng);
}

TEST(RedirectNTest, TrainsAndBeatsChance) {
  const auto split = EasySplit();
  RedirectNConfig config;
  config.dimensions = 16;
  config.epochs = 30;
  const auto model = RedirectNModel::Train(split.network, config);
  EXPECT_EQ(model->name(), "ReDirect-N/sm");
  EXPECT_GT(DirectionDiscoveryAccuracy(split, *model), 0.58);
}

TEST(RedirectNTest, OutputsAreProbabilities) {
  const auto split = EasySplit();
  const auto model = RedirectNModel::Train(split.network, RedirectNConfig{});
  for (graph::ArcId id = 0; id < split.network.num_arcs(); id += 11) {
    const auto& arc = split.network.arc(id);
    const double d = model->Directionality(arc.src, arc.dst);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
    EXPECT_TRUE(std::isfinite(d));
  }
}

TEST(RedirectNTest, FitsTrainingLabels) {
  const auto split = EasySplit();
  RedirectNConfig config;
  config.epochs = 60;
  const auto model = RedirectNModel::Train(split.network, config);
  size_t correct = 0, total = 0;
  for (graph::ArcId id : split.network.directed_arcs()) {
    const auto& arc = split.network.arc(id);
    correct += model->Directionality(arc.src, arc.dst) >=
               model->Directionality(arc.dst, arc.src);
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.75);
}

TEST(RedirectTTest, ClampsLabeledArcs) {
  const auto split = EasySplit();
  const auto model = RedirectTModel::Train(split.network, RedirectTConfig{});
  for (graph::ArcId id : split.network.directed_arcs()) {
    const auto& arc = split.network.arc(id);
    EXPECT_DOUBLE_EQ(model->Directionality(arc.src, arc.dst), 1.0);
    EXPECT_DOUBLE_EQ(model->Directionality(arc.dst, arc.src), 0.0);
  }
}

TEST(RedirectTTest, PairValuesSumToOneOnUndirectedTies) {
  const auto split = EasySplit();
  const auto model = RedirectTModel::Train(split.network, RedirectTConfig{});
  for (graph::ArcId id : split.network.undirected_arcs()) {
    const auto& arc = split.network.arc(id);
    if (arc.src > arc.dst) continue;
    const double fwd = model->Directionality(arc.src, arc.dst);
    const double bwd = model->Directionality(arc.dst, arc.src);
    EXPECT_NEAR(fwd + bwd, 1.0, 1e-6);
    EXPECT_GE(fwd, 0.0);
    EXPECT_LE(fwd, 1.0);
  }
}

TEST(RedirectTTest, ConvergesWithinIterationBudget) {
  const auto split = EasySplit();
  RedirectTConfig config;
  config.max_iterations = 300;
  config.tolerance = 1e-3;
  const auto model = RedirectTModel::Train(split.network, config);
  EXPECT_LT(model->iterations_run(), 300u);
  EXPECT_GT(model->iterations_run(), 0u);
}

TEST(RedirectTTest, BeatsChanceClearly) {
  const auto split = EasySplit();
  const auto model = RedirectTModel::Train(split.network, RedirectTConfig{});
  EXPECT_EQ(model->name(), "ReDirect-T/sm");
  EXPECT_GT(DirectionDiscoveryAccuracy(split, *model), 0.65);
}

TEST(LineModelTest, TrainsAndBeatsChance) {
  const auto split = EasySplit();
  LineModelConfig config;
  config.line.dimensions = 32;
  config.line.samples_per_arc = 20;
  const auto model = LineModel::Train(split.network, config);
  EXPECT_EQ(model->name(), "LINE");
  EXPECT_EQ(model->tie_feature_dims(), 64u);  // concat doubles
  EXPECT_GT(DirectionDiscoveryAccuracy(split, *model), 0.6);
}

TEST(LineModelTest, AlternativeEdgeOperators) {
  const auto split = EasySplit();
  for (auto op : {embedding::EdgeOperator::kHadamard,
                  embedding::EdgeOperator::kAverage}) {
    LineModelConfig config;
    config.line.dimensions = 16;
    config.line.samples_per_arc = 10;
    config.edge_operator = op;
    const auto model = LineModel::Train(split.network, config);
    EXPECT_EQ(model->tie_feature_dims(), 16u);
    const auto& arc = split.network.arc(0);
    const double d = model->Directionality(arc.src, arc.dst);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(ModelFactoryTest, AllMethodsTrainViaFactory) {
  const auto split = EasySplit();
  MethodConfigs configs = MethodConfigs::FastDefaults();
  configs.deepdirect.dimensions = 32;
  configs.deepdirect.epochs = 2.0;
  configs.line.line.samples_per_arc = 10;
  for (Method method : AllMethods()) {
    const auto model = TrainMethod(split.network, method, configs);
    ASSERT_NE(model, nullptr) << MethodName(method);
    EXPECT_EQ(model->name(), MethodName(method));
    EXPECT_GT(DirectionDiscoveryAccuracy(split, *model), 0.5)
        << MethodName(method);
  }
}

TEST(ModelFactoryTest, MethodNamesMatchPaper) {
  EXPECT_STREQ(MethodName(Method::kLine), "LINE");
  EXPECT_STREQ(MethodName(Method::kHf), "HF");
  EXPECT_STREQ(MethodName(Method::kDeepDirect), "DeepDirect");
  EXPECT_STREQ(MethodName(Method::kRedirectNsm), "ReDirect-N/sm");
  EXPECT_STREQ(MethodName(Method::kRedirectTsm), "ReDirect-T/sm");
  EXPECT_EQ(AllMethods().size(), 5u);
}

}  // namespace
}  // namespace deepdirect::core
