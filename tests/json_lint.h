// Minimal strict JSON syntax checker for tests: the writers in this repo
// emit JSON by hand, so tests validate it with an independent parser
// instead of trusting matching string concatenation on both sides.
// Accepts exactly the RFC 8259 grammar (no comments, no trailing commas);
// returns false on any violation. Values are not retained — this is a
// validity check, not a DOM.

#ifndef DEEPDIRECT_TESTS_JSON_LINT_H_
#define DEEPDIRECT_TESTS_JSON_LINT_H_

#include <cctype>
#include <string>

namespace deepdirect::testing {

class JsonLinter {
 public:
  static bool Valid(const std::string& text) {
    JsonLinter linter(text);
    linter.SkipSpace();
    if (!linter.Value()) return false;
    linter.SkipSpace();
    return linter.pos_ == text.size();
  }

 private:
  explicit JsonLinter(const std::string& text) : text_(text) {}

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c) {
      if (!Eat(*c)) return false;
    }
    return true;
  }

  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char escape = text_[pos_++];
        if (escape == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++]))) {
              return false;
            }
          }
        } else if (escape != '"' && escape != '\\' && escape != '/' &&
                   escape != 'b' && escape != 'f' && escape != 'n' &&
                   escape != 'r' && escape != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool Digits() {
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    return true;
  }

  bool Number() {
    Eat('-');
    if (Eat('0')) {
      // no leading zeros
    } else if (!Digits()) {
      return false;
    }
    if (Eat('.') && !Digits()) return false;
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!Digits()) return false;
    }
    return true;
  }

  bool Object() {
    if (!Eat('{')) return false;
    SkipSpace();
    if (Eat('}')) return true;
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (!Eat(':')) return false;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Eat('}')) return true;
      if (!Eat(',')) return false;
    }
  }

  bool Array() {
    if (!Eat('[')) return false;
    SkipSpace();
    if (Eat(']')) return true;
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Eat(']')) return true;
      if (!Eat(',')) return false;
    }
  }

  bool Value() {
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace deepdirect::testing

#endif  // DEEPDIRECT_TESTS_JSON_LINT_H_
