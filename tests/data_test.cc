// Tests for the synthetic network generators and the five dataset configs,
// including property sweeps verifying the directionality patterns the
// generator is designed to produce.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "data/datasets.h"
#include "data/generators.h"
#include "graph/algorithms.h"
#include "graph/triads.h"

namespace deepdirect::data {
namespace {

using graph::Arc;
using graph::ArcId;
using graph::MixedSocialNetwork;
using graph::NodeId;
using graph::TieType;

TEST(GeneratorTest, RespectsNodeCountAndHasNoUndirectedTies) {
  GeneratorConfig config;
  config.num_nodes = 400;
  config.ties_per_node = 4.0;
  config.seed = 1;
  const auto net = GenerateStatusNetwork(config);
  EXPECT_EQ(net.num_nodes(), 400u);
  EXPECT_EQ(net.num_undirected_ties(), 0u);
  EXPECT_GT(net.num_directed_ties(), 0u);
}

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorConfig config;
  config.num_nodes = 200;
  config.seed = 7;
  const auto a = GenerateStatusNetwork(config);
  const auto b = GenerateStatusNetwork(config);
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  for (ArcId id = 0; id < a.num_arcs(); ++id) {
    EXPECT_EQ(a.arc(id), b.arc(id));
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig config;
  config.num_nodes = 200;
  config.seed = 7;
  const auto a = GenerateStatusNetwork(config);
  config.seed = 8;
  const auto b = GenerateStatusNetwork(config);
  bool different = a.num_arcs() != b.num_arcs();
  if (!different) {
    for (ArcId id = 0; id < a.num_arcs(); ++id) {
      if (!(a.arc(id) == b.arc(id))) {
        different = true;
        break;
      }
    }
  }
  EXPECT_TRUE(different);
}

TEST(GeneratorTest, BidirectionalFractionApproximatelyRespected) {
  GeneratorConfig config;
  config.num_nodes = 1000;
  config.ties_per_node = 5.0;
  config.bidirectional_fraction = 0.4;
  config.seed = 3;
  const auto net = GenerateStatusNetwork(config);
  const double fraction =
      static_cast<double>(net.num_bidirectional_ties()) / net.num_ties();
  EXPECT_NEAR(fraction, 0.4, 0.05);
}

TEST(GeneratorTest, TiesPerNodeApproximatelyRespected) {
  GeneratorConfig config;
  config.num_nodes = 1000;
  config.ties_per_node = 6.0;
  config.seed = 5;
  const auto net = GenerateStatusNetwork(config);
  const double ratio = static_cast<double>(net.num_ties()) / net.num_nodes();
  EXPECT_NEAR(ratio, 6.0, 1.0);
}

TEST(GeneratorTest, NetworkIsConnected) {
  GeneratorConfig config;
  config.num_nodes = 500;
  config.ties_per_node = 4.0;
  config.num_communities = 10;
  config.cross_community_fraction = 0.0;  // ring bridge must still connect
  config.seed = 9;
  const auto net = GenerateStatusNetwork(config);
  size_t components = 0;
  graph::ConnectedComponents(net, &components);
  EXPECT_EQ(components, 1u);
}

TEST(GeneratorTest, DegreeConsistencyPatternPresent) {
  // With low direction noise, directed ties must predominantly point from
  // the lower-degree endpoint to the higher-degree endpoint (Definition 5).
  GeneratorConfig config;
  config.num_nodes = 800;
  config.ties_per_node = 5.0;
  config.direction_noise = 0.05;
  config.status_noise = 0.1;
  config.seed = 11;
  const auto net = GenerateStatusNetwork(config);
  size_t consistent = 0, total = 0;
  for (ArcId id : net.directed_arcs()) {
    const Arc& arc = net.arc(id);
    const double du = net.Deg(arc.src), dv = net.Deg(arc.dst);
    if (du == dv) continue;
    consistent += (du < dv);
    ++total;
  }
  EXPECT_GT(static_cast<double>(consistent) / total, 0.65);
}

TEST(GeneratorTest, TriadStatusConsistencyPatternPresent) {
  // Directed ties should rarely form directed 3-cycles (Definition 6):
  // count cyclic vs acyclic orientations over fully-directed triangles.
  GeneratorConfig config;
  config.num_nodes = 600;
  config.ties_per_node = 5.0;
  config.triangle_closure_prob = 0.4;
  config.bidirectional_fraction = 0.0;
  config.direction_noise = 0.05;
  config.seed = 13;
  const auto net = GenerateStatusNetwork(config);

  size_t cyclic = 0, acyclic = 0;
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    for (NodeId v : net.UndirectedNeighbors(u)) {
      if (v <= u) continue;
      for (NodeId w : net.CommonNeighbors(u, v)) {
        if (w <= v) continue;
        // Orientation of the triangle {u, v, w}: cyclic iff the three
        // directed ties form a rotation.
        auto dir = [&](NodeId x, NodeId y) { return net.HasArc(x, y); };
        const bool uv = dir(u, v), vw = dir(v, w), wu = dir(w, u);
        if ((uv && vw && wu) || (!uv && !vw && !wu)) {
          ++cyclic;
        } else {
          ++acyclic;
        }
      }
    }
  }
  ASSERT_GT(cyclic + acyclic, 50u);
  EXPECT_LT(static_cast<double>(cyclic) / (cyclic + acyclic), 0.15);
}

TEST(GeneratorTest, DirectionNoiseWeakensPattern) {
  GeneratorConfig config;
  config.num_nodes = 600;
  config.ties_per_node = 4.0;
  config.status_noise = 0.1;
  config.seed = 15;

  auto consistency = [](const MixedSocialNetwork& net) {
    size_t consistent = 0, total = 0;
    for (ArcId id : net.directed_arcs()) {
      const Arc& arc = net.arc(id);
      const double du = net.Deg(arc.src), dv = net.Deg(arc.dst);
      if (du == dv) continue;
      consistent += (du < dv);
      ++total;
    }
    return static_cast<double>(consistent) / total;
  };

  config.direction_noise = 0.02;
  const double clean = consistency(GenerateStatusNetwork(config));
  config.direction_noise = 0.4;
  const double noisy = consistency(GenerateStatusNetwork(config));
  EXPECT_GT(clean, noisy + 0.1);
}

TEST(GeneratorTest, CommunitiesReduceCrossTies) {
  GeneratorConfig config;
  config.num_nodes = 600;
  config.ties_per_node = 4.0;
  config.num_communities = 10;
  config.cross_community_fraction = 0.05;
  config.triangle_closure_prob = 0.0;
  config.seed = 17;
  const auto net = GenerateStatusNetwork(config);
  size_t cross = 0, total = 0;
  for (ArcId id = 0; id < net.num_arcs(); ++id) {
    const Arc& arc = net.arc(id);
    if (arc.type != TieType::kDirected && arc.src > arc.dst) continue;
    cross += (arc.src % 10 != arc.dst % 10);
    ++total;
  }
  // Far fewer cross ties than the ~90% a community-blind process gives.
  EXPECT_LT(static_cast<double>(cross) / total, 0.3);
}

TEST(GeneratorTest, StatusesMatchSeededDraws) {
  GeneratorConfig config;
  config.num_nodes = 100;
  config.seed = 19;
  const auto s1 = GeneratorStatuses(config);
  const auto s2 = GeneratorStatuses(config);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), 100u);
}

TEST(GeneratorTest, DirectionsFollowStatusOrder) {
  GeneratorConfig config;
  config.num_nodes = 500;
  config.ties_per_node = 4.0;
  config.direction_noise = 0.0;
  config.seed = 21;
  const auto net = GenerateStatusNetwork(config);
  const auto status = GeneratorStatuses(config);
  for (ArcId id : net.directed_arcs()) {
    const Arc& arc = net.arc(id);
    EXPECT_LE(status[arc.src], status[arc.dst]);
  }
}

TEST(ErdosRenyiTest, TieCountNearExpectation) {
  const auto net = GenerateErdosRenyi(200, 0.05, 0.3, 23);
  const double expected = 0.05 * 200 * 199 / 2;
  EXPECT_NEAR(static_cast<double>(net.num_ties()), expected,
              0.15 * expected);
  EXPECT_EQ(net.num_undirected_ties(), 0u);
}

TEST(ErdosRenyiTest, ZeroProbabilityIsEmpty) {
  const auto net = GenerateErdosRenyi(50, 0.0, 0.5, 29);
  EXPECT_EQ(net.num_ties(), 0u);
}

TEST(DatasetsTest, AllFiveBuildWithExpectedShape) {
  for (DatasetId id : AllDatasets()) {
    const auto config = DatasetConfig(id);
    const auto net = MakeDataset(id);
    EXPECT_EQ(net.num_nodes(), config.num_nodes) << DatasetName(id);
    EXPECT_GT(net.num_directed_ties(), 0u) << DatasetName(id);
    EXPECT_EQ(net.num_undirected_ties(), 0u) << DatasetName(id);
    const double ties_per_node =
        static_cast<double>(net.num_ties()) / net.num_nodes();
    EXPECT_NEAR(ties_per_node, config.ties_per_node,
                0.2 * config.ties_per_node)
        << DatasetName(id);
  }
}

TEST(DatasetsTest, BidirectionalHeavyDatasetsMatchPaper) {
  // Sec. 6.3: over 50% of ties in LiveJournal, Epinions, Slashdot are
  // bidirectional; Twitter and Tencent are predominantly directed.
  for (DatasetId id : {DatasetId::kLiveJournal, DatasetId::kEpinions,
                       DatasetId::kSlashdot}) {
    const auto net = MakeDataset(id);
    EXPECT_GT(static_cast<double>(net.num_bidirectional_ties()) /
                  net.num_ties(),
              0.5)
        << DatasetName(id);
  }
  for (DatasetId id : {DatasetId::kTwitter, DatasetId::kTencent}) {
    const auto net = MakeDataset(id);
    EXPECT_LT(static_cast<double>(net.num_bidirectional_ties()) /
                  net.num_ties(),
              0.5)
        << DatasetName(id);
  }
}

TEST(DatasetsTest, ScaleGrowsNetwork) {
  const auto small = MakeDataset(DatasetId::kTwitter, 0.25);
  const auto large = MakeDataset(DatasetId::kTwitter, 0.5);
  EXPECT_LT(small.num_nodes(), large.num_nodes());
  EXPECT_LT(small.num_ties(), large.num_ties());
}

TEST(DatasetsTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (DatasetId id : AllDatasets()) names.insert(DatasetName(id));
  EXPECT_EQ(names.size(), 5u);
}

// Property sweep: structural invariants hold on every dataset.
class DatasetPropertyTest : public ::testing::TestWithParam<DatasetId> {};

TEST_P(DatasetPropertyTest, StructuralInvariants) {
  const auto net = MakeDataset(GetParam(), /*scale=*/0.3);
  // Twins are involutions; arc counts match tie counts.
  EXPECT_EQ(net.num_arcs(), net.num_directed_ties() +
                                2 * net.num_bidirectional_ties() +
                                2 * net.num_undirected_ties());
  for (ArcId id = 0; id < net.num_arcs(); ++id) {
    const ArcId twin = net.twin(id);
    if (twin != graph::kInvalidArc) {
      EXPECT_EQ(net.twin(twin), id);
    }
  }
  // Clustering is nontrivial (social networks cluster).
  EXPECT_GT(graph::GlobalClusteringCoefficient(net), 0.01);
  // One connected component (BFS-sampled networks are connected).
  size_t components = 0;
  graph::ConnectedComponents(net, &components);
  EXPECT_EQ(components, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetPropertyTest,
                         ::testing::ValuesIn(AllDatasets()),
                         [](const auto& info) {
                           return std::string(DatasetName(info.param));
                         });

}  // namespace
}  // namespace deepdirect::data
