// Tests for the two applications (Sec. 5): direction discovery and
// direction quantification / link prediction.

#include <gtest/gtest.h>

#include <cmath>

#include "core/applications.h"
#include "data/generators.h"
#include "graph/algorithms.h"

namespace deepdirect::core {
namespace {

using graph::Arc;
using graph::ArcId;
using graph::GraphBuilder;
using graph::MixedSocialNetwork;
using graph::NodeId;
using graph::TieType;

// A directionality model driven by a per-node score: d(u, v) =
// sigmoid(score(v) - score(u)). A perfect oracle for status networks.
class ScoreModel : public DirectionalityModel {
 public:
  explicit ScoreModel(std::vector<double> scores)
      : scores_(std::move(scores)) {}
  double Directionality(NodeId u, NodeId v) const override {
    const double z = scores_[v] - scores_[u];
    return 1.0 / (1.0 + std::exp(-z));
  }
  std::string name() const override { return "ScoreModel"; }

 private:
  std::vector<double> scores_;
};

TEST(DiscoverDirectionsTest, OraclePredictsPerfectly) {
  data::GeneratorConfig gen;
  gen.num_nodes = 300;
  gen.ties_per_node = 4.0;
  gen.direction_noise = 0.0;  // directions exactly follow status
  gen.seed = 3;
  const auto net = data::GenerateStatusNetwork(gen);
  const auto statuses = data::GeneratorStatuses(gen);
  util::Rng rng(5);
  const auto split = graph::HideDirections(net, 0.5, rng);

  const ScoreModel oracle(statuses);
  EXPECT_DOUBLE_EQ(DirectionDiscoveryAccuracy(split, oracle), 1.0);

  // The inverted oracle gets ~everything wrong (ties broken toward the
  // forward direction can only help marginally).
  std::vector<double> inverted(statuses.size());
  for (size_t i = 0; i < statuses.size(); ++i) inverted[i] = -statuses[i];
  const ScoreModel anti(inverted);
  EXPECT_LT(DirectionDiscoveryAccuracy(split, anti), 0.05);
}

TEST(DiscoverDirectionsTest, EnumeratesEachUndirectedTieOnce) {
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddTie(0, 1, TieType::kUndirected).ok());
  ASSERT_TRUE(builder.AddTie(2, 3, TieType::kUndirected).ok());
  ASSERT_TRUE(builder.AddTie(1, 2, TieType::kDirected).ok());
  const auto net = std::move(builder).Build();
  const ScoreModel model({0.0, 1.0, 2.0, 3.0});
  const auto predictions = DiscoverDirections(net, model);
  ASSERT_EQ(predictions.size(), 2u);
  // Higher-score node is always the predicted responder.
  EXPECT_EQ(predictions[0].source, 0u);
  EXPECT_EQ(predictions[0].target, 1u);
  EXPECT_EQ(predictions[1].source, 2u);
  EXPECT_EQ(predictions[1].target, 3u);
  for (const auto& p : predictions) EXPECT_GE(p.confidence, 0.5);
}

TEST(WeightedAdjacencyTest, BinaryMatrixSums) {
  // 0->1 directed, 1-2 bidirectional, 2-3 undirected; no model.
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  ASSERT_TRUE(builder.AddTie(1, 2, TieType::kBidirectional).ok());
  ASSERT_TRUE(builder.AddTie(2, 3, TieType::kUndirected).ok());
  const auto net = std::move(builder).Build();
  const WeightedAdjacency adjacency(net, nullptr);

  EXPECT_DOUBLE_EQ(adjacency.OutSum(0), 1.0);   // 0->1
  EXPECT_DOUBLE_EQ(adjacency.InSum(0), 0.0);
  EXPECT_DOUBLE_EQ(adjacency.OutSum(1), 1.0);   // 1->2 (bidir)
  EXPECT_DOUBLE_EQ(adjacency.InSum(1), 2.0);    // 0->1 and 2->1
  EXPECT_DOUBLE_EQ(adjacency.OutSum(2), 1.5);   // 2->1 (1) + 2-3 (0.5)
  EXPECT_DOUBLE_EQ(adjacency.InSum(3), 0.5);
}

TEST(WeightedAdjacencyTest, PathWeightAndJaccard) {
  // 0->1->2 with unit weights: PathWeight(0,2) = 1.
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  ASSERT_TRUE(builder.AddTie(1, 2, TieType::kDirected).ok());
  const auto net = std::move(builder).Build();
  const WeightedAdjacency adjacency(net, nullptr);
  EXPECT_DOUBLE_EQ(adjacency.PathWeight(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(adjacency.PathWeight(2, 0), 0.0);
  // Eq. 29: f(0->2) = 1 / (OutSum(0) + InSum(2)) = 1/2.
  EXPECT_DOUBLE_EQ(adjacency.JaccardScore(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(adjacency.JaccardScore(2, 0), 0.0);
}

TEST(WeightedAdjacencyTest, ModelQuantifiesBidirectionalCells) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddTie(0, 1, TieType::kBidirectional).ok());
  ASSERT_TRUE(builder.AddTie(1, 2, TieType::kBidirectional).ok());
  const auto net = std::move(builder).Build();
  const ScoreModel model({0.0, 1.0, 2.0});
  const WeightedAdjacency adjacency(net, &model);
  // OutSum(0) = d(0,1) = sigmoid(1).
  EXPECT_NEAR(adjacency.OutSum(0), 1.0 / (1.0 + std::exp(-1.0)), 1e-12);
  // PathWeight(0,2) = d(0,1)*d(1,2).
  const double d01 = model.Directionality(0, 1);
  const double d12 = model.Directionality(1, 2);
  EXPECT_NEAR(adjacency.PathWeight(0, 2), d01 * d12, 1e-12);
}

TEST(LinkScoreTest, FamilyOnHandBuiltPath) {
  // 0->1->2 with unit weights.
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  ASSERT_TRUE(builder.AddTie(1, 2, TieType::kDirected).ok());
  const auto net = std::move(builder).Build();
  const WeightedAdjacency adjacency(net, nullptr);

  EXPECT_DOUBLE_EQ(
      LinkScore(adjacency, LinkScoreType::kCommonNeighbors, 0, 2), 1.0);
  EXPECT_DOUBLE_EQ(LinkScore(adjacency, LinkScoreType::kJaccard, 0, 2), 0.5);
  // Middle node 1 has strength 2 (one in + one out).
  EXPECT_NEAR(LinkScore(adjacency, LinkScoreType::kAdamicAdar, 0, 2),
              1.0 / std::log(4.0), 1e-12);
  EXPECT_NEAR(
      LinkScore(adjacency, LinkScoreType::kResourceAllocation, 0, 2),
      1.0 / 3.0, 1e-12);
  // No reverse path.
  for (auto type :
       {LinkScoreType::kJaccard, LinkScoreType::kCommonNeighbors,
        LinkScoreType::kAdamicAdar, LinkScoreType::kResourceAllocation}) {
    EXPECT_DOUBLE_EQ(LinkScore(adjacency, type, 2, 0), 0.0);
  }
}

TEST(LinkScoreTest, NamesAreDistinct) {
  EXPECT_STREQ(LinkScoreTypeToString(LinkScoreType::kJaccard), "jaccard");
  EXPECT_STREQ(LinkScoreTypeToString(LinkScoreType::kAdamicAdar),
               "adamic-adar");
}

TEST(LinkPredictionTest, OrderedProtocolRewardsDirectionality) {
  // With directed closure in the generator, the status oracle's quantified
  // matrix must beat the binary matrix under the ordered protocol.
  data::GeneratorConfig gen;
  gen.num_nodes = 600;
  gen.ties_per_node = 6.0;
  gen.bidirectional_fraction = 0.5;
  gen.triangle_closure_prob = 0.3;
  gen.directed_closure_bias = 0.8;
  gen.direction_noise = 0.05;
  gen.seed = 29;
  const auto net = data::GenerateStatusNetwork(gen);
  const auto statuses = data::GeneratorStatuses(gen);

  LinkPredictionConfig config;
  config.ordered = true;
  config.seed = 31;
  util::Rng rng(config.seed);
  const auto holdout = graph::HoldOutTies(net, 0.2, rng);

  const auto binary = RunLinkPrediction(net, holdout, nullptr, config);
  const ScoreModel oracle(statuses);
  const auto quantified = RunLinkPrediction(net, holdout, &oracle, config);
  EXPECT_GT(quantified.auc, binary.auc);
}

TEST(LinkPredictionTest, OracleQuantificationBeatsRandomScores) {
  data::GeneratorConfig gen;
  gen.num_nodes = 500;
  gen.ties_per_node = 5.0;
  gen.bidirectional_fraction = 0.6;
  gen.triangle_closure_prob = 0.4;
  gen.seed = 7;
  const auto net = data::GenerateStatusNetwork(gen);

  LinkPredictionConfig config;
  config.holdout_fraction = 0.2;
  config.seed = 11;
  util::Rng rng(config.seed);
  const auto holdout = graph::HoldOutTies(net, config.holdout_fraction, rng);

  const auto result = RunLinkPrediction(net, holdout, nullptr, config);
  // Jaccard on a clustered network must beat random ranking clearly.
  EXPECT_GT(result.auc, 0.55);
  EXPECT_GT(result.num_candidates, 100u);
  EXPECT_GT(result.num_positives, 10u);
}

TEST(LinkPredictionTest, DeterministicForFixedConfig) {
  data::GeneratorConfig gen;
  gen.num_nodes = 300;
  gen.ties_per_node = 4.0;
  gen.bidirectional_fraction = 0.5;
  gen.seed = 13;
  const auto net = data::GenerateStatusNetwork(gen);
  LinkPredictionConfig config;
  config.seed = 17;
  util::Rng rng1(config.seed), rng2(config.seed);
  const auto holdout1 = graph::HoldOutTies(net, 0.2, rng1);
  const auto holdout2 = graph::HoldOutTies(net, 0.2, rng2);
  const auto a = RunLinkPrediction(net, holdout1, nullptr, config);
  const auto b = RunLinkPrediction(net, holdout2, nullptr, config);
  EXPECT_EQ(a.auc, b.auc);
  EXPECT_EQ(a.num_candidates, b.num_candidates);
}

TEST(LinkPredictionTest, CandidateCapRetainsPositives) {
  data::GeneratorConfig gen;
  gen.num_nodes = 400;
  gen.ties_per_node = 5.0;
  gen.bidirectional_fraction = 0.5;
  gen.triangle_closure_prob = 0.3;
  gen.seed = 19;
  const auto net = data::GenerateStatusNetwork(gen);
  LinkPredictionConfig config;
  config.max_candidates = 500;  // force subsampling
  config.seed = 23;
  util::Rng rng(config.seed);
  const auto holdout = graph::HoldOutTies(net, 0.2, rng);
  const auto result = RunLinkPrediction(net, holdout, nullptr, config);
  // AUC remains estimable (both classes present).
  EXPECT_GT(result.auc, 0.0);
  EXPECT_LT(result.auc, 1.0);
}

}  // namespace
}  // namespace deepdirect::core
