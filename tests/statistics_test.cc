// Tests for network-level statistics.

#include <gtest/gtest.h>

#include "data/generators.h"
#include "graph/statistics.h"

namespace deepdirect::graph {
namespace {

TEST(ReciprocityTest, HandComputed) {
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  ASSERT_TRUE(builder.AddTie(1, 2, TieType::kBidirectional).ok());
  ASSERT_TRUE(builder.AddTie(2, 3, TieType::kUndirected).ok());
  const auto net = std::move(builder).Build();
  // 1 directed arc + 2 reciprocated arcs -> 2/3.
  EXPECT_NEAR(Reciprocity(net), 2.0 / 3.0, 1e-12);
}

TEST(ReciprocityTest, AllDirectedIsZero) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  ASSERT_TRUE(builder.AddTie(1, 2, TieType::kDirected).ok());
  EXPECT_DOUBLE_EQ(Reciprocity(std::move(builder).Build()), 0.0);
}

TEST(ReciprocityTest, AllBidirectionalIsOne) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddTie(0, 1, TieType::kBidirectional).ok());
  ASSERT_TRUE(builder.AddTie(1, 2, TieType::kBidirectional).ok());
  EXPECT_DOUBLE_EQ(Reciprocity(std::move(builder).Build()), 1.0);
}

TEST(AssortativityTest, StarIsNegative) {
  // A star is maximally disassortative: hubs connect to leaves.
  GraphBuilder builder(6);
  for (NodeId leaf = 1; leaf < 6; ++leaf) {
    ASSERT_TRUE(builder.AddTie(0, leaf, TieType::kUndirected).ok());
  }
  EXPECT_LT(DegreeAssortativity(std::move(builder).Build()), -0.9);
}

TEST(AssortativityTest, RegularGraphIsDegenerate) {
  // Cycle: all degrees equal -> zero variance -> defined as 0.
  GraphBuilder builder(5);
  for (NodeId u = 0; u < 5; ++u) {
    ASSERT_TRUE(
        builder.AddTie(u, (u + 1) % 5, TieType::kUndirected).ok());
  }
  EXPECT_DOUBLE_EQ(DegreeAssortativity(std::move(builder).Build()), 0.0);
}

TEST(AssortativityTest, PreferentialAttachmentIsDisassortative) {
  data::GeneratorConfig gen;
  gen.num_nodes = 500;
  gen.ties_per_node = 4.0;
  gen.seed = 3;
  const auto net = data::GenerateStatusNetwork(gen);
  EXPECT_LT(DegreeAssortativity(net), 0.05);
}

TEST(DegreeSummaryTest, StarValues) {
  GraphBuilder builder(11);
  for (NodeId leaf = 1; leaf < 11; ++leaf) {
    ASSERT_TRUE(builder.AddTie(0, leaf, TieType::kDirected).ok());
  }
  const auto summary = SummarizeDegrees(std::move(builder).Build());
  EXPECT_DOUBLE_EQ(summary.max, 10.0);
  EXPECT_NEAR(summary.mean, 20.0 / 11.0, 1e-12);
  // Top 1% (1 node, the hub) holds 10 of 20 degree endpoints.
  EXPECT_DOUBLE_EQ(summary.top1_percent_share, 0.5);
}

TEST(PathLengthTest, PathGraphExact) {
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddTie(0, 1, TieType::kUndirected).ok());
  ASSERT_TRUE(builder.AddTie(1, 2, TieType::kUndirected).ok());
  ASSERT_TRUE(builder.AddTie(2, 3, TieType::kUndirected).ok());
  const auto net = std::move(builder).Build();
  util::Rng rng(5);
  // Exact (all sources): mean distance of P4 = (2*(1+2+3) + 2*(1+2) + ... )
  // ordered pairs: distances {1:6, 2:4, 3:2} -> (6 + 8 + 6) / 12 = 5/3.
  EXPECT_NEAR(AveragePathLengthSampled(net, 4, rng), 5.0 / 3.0, 1e-12);
}

TEST(PathLengthTest, SmallWorldDatasets) {
  data::GeneratorConfig gen;
  gen.num_nodes = 600;
  gen.ties_per_node = 5.0;
  gen.seed = 7;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng(9);
  const double apl = AveragePathLengthSampled(net, 32, rng);
  EXPECT_GT(apl, 1.5);
  EXPECT_LT(apl, 8.0);  // small world
}

}  // namespace
}  // namespace deepdirect::graph
