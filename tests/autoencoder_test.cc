// Tests for the dense autoencoder and the SAE embedding / model.

#include <gtest/gtest.h>

#include <cmath>

#include "core/applications.h"
#include "core/sae_model.h"
#include "data/generators.h"
#include "embedding/sae.h"
#include "graph/algorithms.h"
#include "ml/autoencoder.h"

namespace deepdirect::ml {
namespace {

TEST(DenseLayerTest, ForwardShapeAndRange) {
  util::Rng rng(3);
  DenseLayer layer(4, 3, rng);
  std::vector<double> in{1.0, -1.0, 0.5, 0.0};
  std::vector<double> out(3);
  layer.Forward(in, out);
  for (double v : out) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(DenseLayerTest, BackwardReducesLoss) {
  // One layer trained to map a fixed input to a fixed target: the squared
  // error must shrink over steps.
  util::Rng rng(5);
  DenseLayer layer(3, 2, rng);
  const std::vector<double> in{0.5, -0.2, 0.8};
  const std::vector<double> target{0.9, 0.1};
  std::vector<double> out(2), delta(2);

  auto loss = [&]() {
    layer.Forward(in, out);
    double total = 0.0;
    for (size_t i = 0; i < 2; ++i) {
      total += (out[i] - target[i]) * (out[i] - target[i]);
    }
    return total;
  };
  const double before = loss();
  for (int step = 0; step < 200; ++step) {
    layer.Forward(in, out);
    for (size_t i = 0; i < 2; ++i) delta[i] = 2.0 * (out[i] - target[i]);
    layer.Backward(in, out, delta, {}, 0.5, 0.0);
  }
  EXPECT_LT(loss(), before * 0.1);
}

TEST(AutoencoderTest, ReconstructsSimplePatterns) {
  // Three one-hot-ish patterns over 8 dims; a 4-dim code suffices.
  AutoencoderConfig config;
  config.encoder_dims = {4};
  config.epochs = 400;
  config.learning_rate = 0.5;
  config.nonzero_weight = 3.0;
  Autoencoder autoencoder(8, config);

  std::vector<std::vector<double>> rows;
  for (int pattern = 0; pattern < 3; ++pattern) {
    std::vector<double> row(8, 0.0);
    row[pattern] = 1.0;
    row[pattern + 4] = 1.0;
    rows.push_back(row);
  }
  const double final_error = autoencoder.Train(rows, config);
  EXPECT_LT(final_error, 0.2);

  std::vector<double> reconstruction(8);
  autoencoder.Reconstruct(rows[0], reconstruction);
  // The active entries must reconstruct above the inactive ones.
  EXPECT_GT(reconstruction[0], reconstruction[1]);
  EXPECT_GT(reconstruction[4], reconstruction[5]);
}

TEST(AutoencoderTest, EncodeShape) {
  AutoencoderConfig config;
  config.encoder_dims = {6, 2};
  config.epochs = 1;
  Autoencoder autoencoder(10, config);
  EXPECT_EQ(autoencoder.code_dims(), 2u);
  std::vector<double> input(10, 0.5), code(2);
  autoencoder.Encode(input, code);
  for (double v : code) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(SaeEmbeddingTest, NeighborsEmbedCloser) {
  data::GeneratorConfig gen;
  gen.num_nodes = 120;
  gen.ties_per_node = 4.0;
  gen.num_communities = 4;
  gen.cross_community_fraction = 0.05;
  gen.seed = 7;
  const auto net = data::GenerateStatusNetwork(gen);

  embedding::SaeConfig config;
  config.autoencoder.encoder_dims = {32, 8};
  config.autoencoder.epochs = 20;
  const auto sae = embedding::SaeEmbedding::Train(net, config);
  EXPECT_EQ(sae.dimensions(), 8u);
  EXPECT_TRUE(std::isfinite(sae.reconstruction_error()));

  // Same-community nodes (similar adjacency rows) should embed closer than
  // cross-community nodes on average.
  auto distance = [&](graph::NodeId a, graph::NodeId b) {
    const auto ra = sae.NodeVector(a);
    const auto rb = sae.NodeVector(b);
    double total = 0.0;
    for (size_t k = 0; k < ra.size(); ++k) {
      const double d = ra[k] - rb[k];
      total += d * d;
    }
    return total;
  };
  double within = 0.0, across = 0.0;
  int within_count = 0, across_count = 0;
  for (graph::NodeId u = 0; u < 40; ++u) {
    for (graph::NodeId v = u + 1; v < 40; ++v) {
      if (u % 4 == v % 4) {
        within += distance(u, v);
        ++within_count;
      } else {
        across += distance(u, v);
        ++across_count;
      }
    }
  }
  EXPECT_LT(within / within_count, across / across_count);
}

TEST(SaeModelTest, BeatsChance) {
  data::GeneratorConfig gen;
  gen.num_nodes = 250;
  gen.ties_per_node = 4.0;
  gen.direction_noise = 0.05;
  gen.status_noise = 0.1;
  gen.seed = 9;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng(11);
  const auto split = graph::HideDirections(net, 0.3, rng);

  core::SaeModelConfig config;
  config.sae.autoencoder.encoder_dims = {64, 16};
  config.sae.autoencoder.epochs = 8;
  const auto model = core::SaeModel::Train(split.network, config);
  EXPECT_EQ(model->name(), "SAE");
  EXPECT_GT(core::DirectionDiscoveryAccuracy(split, *model), 0.55);
}

}  // namespace
}  // namespace deepdirect::ml
