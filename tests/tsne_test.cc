// Unit tests for exact t-SNE and the 2D separability scores.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/separability.h"
#include "ml/tsne.h"

namespace deepdirect::ml {
namespace {

TEST(TsneJointProbabilitiesTest, SymmetricAndNormalized) {
  // Four points on a line: distances^2 hand-built.
  const size_t n = 4;
  std::vector<double> d2(n * n, 0.0);
  const double xs[] = {0.0, 1.0, 2.0, 10.0};
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      d2[i * n + j] = (xs[i] - xs[j]) * (xs[i] - xs[j]);
    }
  }
  const auto p = TsneJointProbabilities(d2, n, 2.0);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(p[i * n + i], 0.0);
    for (size_t j = 0; j < n; ++j) {
      EXPECT_GE(p[i * n + j], 0.0);
      EXPECT_NEAR(p[i * n + j], p[j * n + i], 1e-12);
      total += p[i * n + j];
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
  // The far point (3) is less affine to 0 than the near point (1).
  EXPECT_GT(p[0 * n + 1], p[0 * n + 3]);
}

TEST(TsneTest, TwoClustersSeparateIn2D) {
  // Two well-separated Gaussian blobs in 10 dims must stay separable after
  // projection (this is the quantitative core of the Fig. 7 protocol).
  const size_t per_cluster = 40, dims = 10;
  Matrix points(2 * per_cluster, dims);
  std::vector<int> labels(2 * per_cluster);
  util::Rng rng(5);
  for (size_t i = 0; i < 2 * per_cluster; ++i) {
    const int cluster = i < per_cluster ? 0 : 1;
    labels[i] = cluster;
    for (size_t k = 0; k < dims; ++k) {
      points.At(i, k) = static_cast<float>(cluster * 8.0 +
                                           0.5 * rng.NextGaussian());
    }
  }
  TsneConfig config;
  config.iterations = 300;
  config.perplexity = 15.0;
  config.seed = 7;
  const auto projected = TsneEmbed2D(points, config);
  ASSERT_EQ(projected.size(), 2 * per_cluster);
  for (const auto& pt : projected) {
    EXPECT_TRUE(std::isfinite(pt[0]));
    EXPECT_TRUE(std::isfinite(pt[1]));
  }
  EXPECT_GT(KnnLabelAgreement(projected, labels, 5), 0.95);
  EXPECT_GT(NearestCentroidAccuracy(projected, labels), 0.95);
}

TEST(TsneTest, DegenerateInputs) {
  Matrix empty(0, 3);
  EXPECT_TRUE(TsneEmbed2D(empty, {}).empty());
  Matrix one(1, 3);
  const auto single = TsneEmbed2D(one, {});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0][0], 0.0);
}

TEST(TsneTest, DeterministicForSeed) {
  Matrix points(20, 4);
  util::Rng rng(9);
  points.FillUniform(rng, -1.0f, 1.0f);
  TsneConfig config;
  config.iterations = 50;
  config.seed = 11;
  const auto a = TsneEmbed2D(points, config);
  const auto b = TsneEmbed2D(points, config);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i][0], b[i][0]);
    EXPECT_DOUBLE_EQ(a[i][1], b[i][1]);
  }
}

TEST(SeparabilityTest, PerfectlySeparatedClusters) {
  std::vector<std::array<double, 2>> points;
  std::vector<int> labels;
  for (int i = 0; i < 10; ++i) {
    points.push_back({static_cast<double>(i % 3) * 0.1, 0.0});
    labels.push_back(0);
    points.push_back({10.0 + (i % 3) * 0.1, 0.0});
    labels.push_back(1);
  }
  EXPECT_DOUBLE_EQ(KnnLabelAgreement(points, labels, 3), 1.0);
  EXPECT_DOUBLE_EQ(NearestCentroidAccuracy(points, labels), 1.0);
}

TEST(SeparabilityTest, FullyMixedNearHalf) {
  std::vector<std::array<double, 2>> points;
  std::vector<int> labels;
  util::Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    points.push_back({rng.NextDouble(), rng.NextDouble()});
    labels.push_back(i % 2);
  }
  EXPECT_LT(KnnLabelAgreement(points, labels, 7), 0.65);
  EXPECT_LT(NearestCentroidAccuracy(points, labels), 0.65);
}

TEST(SeparabilityTest, SingleClassIsTriviallySeparable) {
  std::vector<std::array<double, 2>> points{{0, 0}, {1, 1}};
  std::vector<int> labels{1, 1};
  EXPECT_DOUBLE_EQ(NearestCentroidAccuracy(points, labels), 1.0);
}

TEST(SeparabilityTest, HighDimVariantsMatchIntuition) {
  // Two tight 8-D blobs: both high-dim scores near 1; shuffled labels near
  // chance.
  const size_t per_cluster = 30, dims = 8;
  Matrix points(2 * per_cluster, dims);
  std::vector<int> labels(2 * per_cluster);
  util::Rng rng(17);
  for (size_t i = 0; i < 2 * per_cluster; ++i) {
    const int cluster = i < per_cluster ? 0 : 1;
    labels[i] = cluster;
    for (size_t k = 0; k < dims; ++k) {
      points.At(i, k) =
          static_cast<float>(cluster * 5.0 + 0.3 * rng.NextGaussian());
    }
  }
  EXPECT_GT(KnnLabelAgreementHighDim(points, labels, 5), 0.95);
  EXPECT_GT(NearestCentroidAccuracyHighDim(points, labels), 0.95);

  std::vector<int> shuffled = labels;
  rng.Shuffle(shuffled);
  EXPECT_LT(NearestCentroidAccuracyHighDim(points, shuffled), 0.75);
}

TEST(SeparabilityTest, KnnHandlesSmallK) {
  std::vector<std::array<double, 2>> points{{0, 0}, {0.1, 0}, {5, 5}};
  std::vector<int> labels{0, 0, 1};
  // k=1: points 0/1 see each other (label 0 ✓); point 2's nearest is label 0
  // (mismatch).
  EXPECT_NEAR(KnnLabelAgreement(points, labels, 1), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace deepdirect::ml
