// Tests for streaming tie-batch updates (train/incremental.{h,cc} +
// core/incremental.{h,cc}): the differential parity harness (incremental
// accuracy vs full retrain over seeds and batch schedules), the empty-batch
// no-op golden (bit-identical to resuming the completed run), determinism,
// delta-file fault injection (every-length truncation + malformed-line
// sweeps), the duplicate-tie rejection contract, and the E-step state
// container round trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/applications.h"
#include "core/deepdirect.h"
#include "core/incremental.h"
#include "data/generators.h"
#include "graph/algorithms.h"
#include "graph/mixed_graph.h"
#include "train/incremental.h"
#include "util/random.h"
#include "util/status.h"

namespace deepdirect::core {
namespace {

namespace fs = std::filesystem;
using graph::MixedSocialNetwork;

// A small status network with hidden directions, shared across tests.
graph::HiddenDirectionSplit SmallSplit(uint64_t seed) {
  data::GeneratorConfig gen;
  gen.num_nodes = 250;
  gen.ties_per_node = 4.0;
  gen.direction_noise = 0.05;
  gen.status_noise = 0.1;
  gen.bidirectional_fraction = 0.2;
  gen.seed = seed;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng(seed + 100);
  return graph::HideDirections(net, 0.3, rng);
}

DeepDirectConfig TestConfig() {
  DeepDirectConfig config;
  config.dimensions = 16;
  config.epochs = 2.0;
  config.seed = 21;
  return config;
}

// The training network split as "everything but the tail" plus the tail
// cut into batches — the streaming-arrival scenario.
struct TailSplit {
  MixedSocialNetwork base;
  std::vector<train::TieBatch> batches;
};

TailSplit SplitTail(const MixedSocialNetwork& g, size_t num_tail,
                    size_t num_batches, uint64_t seed) {
  std::vector<train::TieDelta> ties = ExtractTies(g);
  std::vector<size_t> order(ties.size());
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng(seed);
  rng.Shuffle(order);

  std::vector<uint8_t> in_tail(ties.size(), 0);
  for (size_t i = 0; i < num_tail; ++i) in_tail[order[i]] = 1;

  graph::GraphBuilder builder(g.num_nodes());
  for (size_t i = 0; i < ties.size(); ++i) {
    if (in_tail[i]) continue;
    EXPECT_TRUE(builder.AddTie(ties[i].u, ties[i].v, ties[i].type).ok());
  }

  TailSplit out{std::move(builder).Build(), {}};
  out.batches.resize(num_batches);
  size_t k = 0;
  for (size_t i = 0; i < num_tail; ++i) {
    train::TieBatch& batch = out.batches[k % num_batches];
    train::TieDelta tie = ties[order[i]];
    tie.line = static_cast<uint32_t>(batch.ties.size() + 1);
    batch.ties.push_back(tie);
    ++k;
  }
  return out;
}

// Trains on `net` writing the final E-step state into `dir`, and returns
// the loaded warm-start state alongside the trained model.
struct TrainedBase {
  std::unique_ptr<DeepDirectModel> model;
  train::EStepState state;
};

TrainedBase TrainBase(const MixedSocialNetwork& net,
                      const DeepDirectConfig& config,
                      const std::string& dir) {
  DeepDirectConfig with_ckpt = config;
  train::CheckpointPolicy policy;
  policy.write_final = true;
  with_ckpt.checkpoint = {dir, "deepdirect.estep", policy, false};
  TrainedBase out;
  out.model = DeepDirectModel::Train(net, with_ckpt);
  auto state = train::LoadEStepState(dir);
  EXPECT_TRUE(state.ok()) << state.status().ToString();
  out.state = std::move(state).value();
  return out;
}

// Applies `batches` in order, chaining network/state, and returns the last
// update. Asserts every application succeeds.
IncrementalUpdate ApplyAll(MixedSocialNetwork base, train::EStepState state,
                           const std::vector<train::TieBatch>& batches,
                           const DeepDirectConfig& config,
                           const IncrementalOptions& options = {}) {
  IncrementalUpdate last{std::move(base), nullptr, std::move(state), {}};
  for (const train::TieBatch& batch : batches) {
    auto updated = DeepDirectModel::ApplyTieBatch(
        last.network, batch, last.state, config, options);
    EXPECT_TRUE(updated.ok()) << updated.status().ToString();
    last = std::move(updated).value();
  }
  return last;
}

class IncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("incremental_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (fs::path(dir_) / name).string();
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Differential parity: incremental training tracks full retraining across
// seeds and batch schedules, at a fraction of the E-step steps.

TEST_F(IncrementalTest, ParityAcrossSeedsAndSchedules) {
  const DeepDirectConfig config = TestConfig();
  struct Schedule {
    size_t num_tail;
    size_t num_batches;
  };
  const Schedule schedules[] = {{24, 1}, {24, 3}};
  for (const uint64_t seed : {5ULL, 11ULL}) {
    const auto split = SmallSplit(seed);
    const auto full = DeepDirectModel::Train(split.network, config);
    const double acc_full = DirectionDiscoveryAccuracy(split, *full);
    const uint64_t full_steps = static_cast<uint64_t>(
        config.epochs *
        static_cast<double>(TieIndex(split.network).NumConnectedTiePairs()));

    for (const Schedule& schedule : schedules) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " batches=" +
                   std::to_string(schedule.num_batches));
      const std::string ckpt =
          Path("s" + std::to_string(seed) + "b" +
               std::to_string(schedule.num_batches));
      TailSplit tail = SplitTail(split.network, schedule.num_tail,
                                 schedule.num_batches, seed + 1);
      ASSERT_GT(tail.base.num_directed_ties(), 0u);
      TrainedBase base = TrainBase(tail.base, config, ckpt);

      uint64_t update_steps = 0;
      IncrementalUpdate last{std::move(tail.base), nullptr,
                             std::move(base.state), {}};
      for (const train::TieBatch& batch : tail.batches) {
        auto updated = DeepDirectModel::ApplyTieBatch(
            last.network, batch, last.state, config, {});
        ASSERT_TRUE(updated.ok()) << updated.status().ToString();
        last = std::move(updated).value();
        update_steps += last.stats.estep_steps;
      }

      // The merged network is the training network again, so the split's
      // hidden ground truth scores the incremental model directly.
      ASSERT_EQ(HashTieIndex(last.model->index()),
                HashTieIndex(full->index()));
      const double acc_inc = DirectionDiscoveryAccuracy(split, *last.model);
      EXPECT_GE(acc_inc, 0.9 * acc_full)
          << "incremental " << acc_inc << " vs full " << acc_full;
      EXPECT_LT(update_steps, full_steps);
    }
  }
}

// ---------------------------------------------------------------------------
// Empty-batch no-op golden: applying an empty batch is bit-identical to
// resuming the completed run from its final checkpoint.

TEST_F(IncrementalTest, EmptyBatchBitIdenticalToResume) {
  const auto split = SmallSplit(7);
  const DeepDirectConfig config = TestConfig();
  TrainedBase base = TrainBase(split.network, config, dir_);

  train::TieBatch empty;
  auto updated = DeepDirectModel::ApplyTieBatch(split.network, empty,
                                                base.state, config, {});
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  const IncrementalUpdate& update = updated.value();
  EXPECT_EQ(update.stats.new_ties, 0u);
  EXPECT_EQ(update.stats.affected_arcs, 0u);
  EXPECT_EQ(update.stats.estep_steps, 0u);

  // Bit-identical to the completed run...
  EXPECT_EQ(update.model->embeddings().data(),
            base.model->embeddings().data());
  EXPECT_EQ(update.model->e_step_weights(), base.model->e_step_weights());
  EXPECT_EQ(update.model->e_step_bias(), base.model->e_step_bias());
  EXPECT_EQ(DirectionDiscoveryAccuracy(split, *update.model),
            DirectionDiscoveryAccuracy(split, *base.model));

  // ...and to an explicit resume of that run (which replays zero E-step
  // epochs from the final checkpoint, then retrains the D-step).
  DeepDirectConfig resume_config = TestConfig();
  train::CheckpointPolicy policy;
  policy.write_final = true;
  resume_config.checkpoint = {dir_, "deepdirect.estep", policy, true};
  const auto resumed = DeepDirectModel::Train(split.network, resume_config);
  EXPECT_EQ(update.model->embeddings().data(), resumed->embeddings().data());
  EXPECT_EQ(DirectionDiscoveryAccuracy(split, *update.model),
            DirectionDiscoveryAccuracy(split, *resumed));

  // The chained state round-trips unchanged (apart from the epoch counter).
  EXPECT_EQ(update.state.m, base.state.m);
  EXPECT_EQ(update.state.n, base.state.n);
  EXPECT_EQ(update.state.w_prime, base.state.w_prime);
  EXPECT_EQ(update.state.tie_hash, base.state.tie_hash);
  EXPECT_EQ(update.state.epochs_done, base.state.epochs_done + 1);
}

// ---------------------------------------------------------------------------
// Determinism.

TEST_F(IncrementalTest, SingleThreadDeterministicAcrossRepeats) {
  const auto split = SmallSplit(9);
  const DeepDirectConfig config = TestConfig();
  TailSplit tail = SplitTail(split.network, 16, 2, 3);
  TrainedBase base = TrainBase(tail.base, config, dir_);

  const IncrementalUpdate a =
      ApplyAll(tail.base, base.state, tail.batches, config);
  const IncrementalUpdate b =
      ApplyAll(tail.base, base.state, tail.batches, config);
  EXPECT_EQ(a.state.m, b.state.m);
  EXPECT_EQ(a.state.n, b.state.n);
  EXPECT_EQ(a.state.w_prime, b.state.w_prime);
  EXPECT_EQ(a.state.b_prime, b.state.b_prime);
  EXPECT_EQ(a.model->embeddings().data(), b.model->embeddings().data());
}

TEST_F(IncrementalTest, MultiThreadedUpdateTrainsAndPredicts) {
  const auto split = SmallSplit(13);
  DeepDirectConfig config = TestConfig();
  TailSplit tail = SplitTail(split.network, 16, 2, 3);
  TrainedBase base = TrainBase(tail.base, config, dir_);

  config.num_threads = 4;
  const IncrementalUpdate update =
      ApplyAll(tail.base, base.state, tail.batches, config);
  const double acc = DirectionDiscoveryAccuracy(split, *update.model);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

// ---------------------------------------------------------------------------
// Batch-file fault injection.

constexpr char kGoodDelta[] =
    "# nodes 12\n"
    "0 5 d\n"
    "1 6 b\n"
    "2 7 u\n"
    "3 8 d\n";

TEST_F(IncrementalTest, ParsesTheDeltaGrammar) {
  std::istringstream in(kGoodDelta);
  auto batch = train::ParseTieBatch(in, "delta");
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch.value().ties.size(), 4u);
  EXPECT_EQ(batch.value().declared_nodes, 12u);
  EXPECT_EQ(batch.value().max_node_id, 8u);
  EXPECT_EQ(batch.value().ties[1].type, graph::TieType::kBidirectional);
  EXPECT_EQ(batch.value().ties[3].line, 5u);  // 1-based, after the header
}

TEST_F(IncrementalTest, EveryLengthTruncationParsesOrRejectsTyped) {
  const std::string good(kGoodDelta);
  for (size_t len = 0; len <= good.size(); ++len) {
    SCOPED_TRACE("truncated to " + std::to_string(len));
    std::istringstream in(good.substr(0, len));
    auto batch = train::ParseTieBatch(in, "trunc");
    if (batch.ok()) {
      // A clean-cut prefix is simply a shorter batch.
      EXPECT_LE(batch.value().ties.size(), 4u);
    } else {
      EXPECT_EQ(batch.status().code(), util::StatusCode::kInvalidArgument)
          << batch.status().ToString();
      EXPECT_NE(batch.status().ToString().find("trunc"), std::string::npos);
    }
  }
}

TEST_F(IncrementalTest, MalformedLinesRejectLineAnchored) {
  const struct {
    const char* line;
    const char* needle;
  } cases[] = {
      {"5", "malformed"},
      {"5 6", "malformed"},
      {"notanumber 6 d", "malformed"},
      {"5 6 x", "unknown tie type"},
      {"5 6 d trailing", "trailing"},
      {"5 5 d", "self-loop"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.line);
    std::istringstream in(std::string("0 1 d\n") + c.line + "\n");
    auto batch = train::ParseTieBatch(in, "bad");
    ASSERT_FALSE(batch.ok()) << c.line;
    EXPECT_EQ(batch.status().code(), util::StatusCode::kInvalidArgument);
    const std::string message = batch.status().ToString();
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
    EXPECT_NE(message.find(c.needle), std::string::npos) << message;
  }
}

TEST_F(IncrementalTest, MissingDeltaFileIsIOError) {
  auto batch = train::LoadTieBatch(Path("does-not-exist.edges"));
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), util::StatusCode::kIOError);
}

TEST_F(IncrementalTest, FailedBatchLeavesModelAndStoreUntouched) {
  const auto split = SmallSplit(17);
  const DeepDirectConfig config = TestConfig();
  TrainedBase base = TrainBase(split.network, config, dir_);
  const train::EStepState before = base.state;
  std::vector<std::string> store_before;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    store_before.push_back(entry.path().string());
  }
  std::sort(store_before.begin(), store_before.end());

  // A batch whose second tie duplicates an existing edge must fail without
  // touching the model, the state, or the checkpoint store.
  const auto [u, v] = base.model->index().ArcAt(0);
  train::TieBatch bad;
  bad.ties.push_back({9999, 10000, graph::TieType::kDirected, 1});
  bad.ties.push_back({v, u, graph::TieType::kUndirected, 2});
  auto updated = DeepDirectModel::ApplyTieBatch(split.network, bad,
                                                base.state, config, {});
  ASSERT_FALSE(updated.ok());
  EXPECT_EQ(updated.status().code(), util::StatusCode::kInvalidArgument);

  // Post-failure golden: the state bytes and the store are unchanged and
  // the base model still answers.
  EXPECT_EQ(base.state.m, before.m);
  EXPECT_EQ(base.state.w_prime, before.w_prime);
  std::vector<std::string> store_after;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    store_after.push_back(entry.path().string());
  }
  std::sort(store_after.begin(), store_after.end());
  EXPECT_EQ(store_after, store_before);
  const double d = base.model->Directionality(u, v);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

// ---------------------------------------------------------------------------
// Duplicate rejection (regression: duplicates must never double-insert
// into the closure CSR).

TEST_F(IncrementalTest, DuplicateOfExistingTieRejectedWithLineNumber) {
  const auto split = SmallSplit(19);
  const DeepDirectConfig config = TestConfig();
  TrainedBase base = TrainBase(split.network, config, dir_);
  const auto [u, v] = base.model->index().ArcAt(0);

  for (const bool reversed : {false, true}) {
    SCOPED_TRACE(reversed ? "reversed orientation" : "same orientation");
    train::TieBatch bad;
    bad.ties.push_back({reversed ? v : u, reversed ? u : v,
                        graph::TieType::kDirected, 7});
    auto updated = DeepDirectModel::ApplyTieBatch(split.network, bad,
                                                  base.state, config, {});
    ASSERT_FALSE(updated.ok());
    EXPECT_EQ(updated.status().code(), util::StatusCode::kInvalidArgument);
    const std::string message = updated.status().ToString();
    EXPECT_NE(message.find("line 7"), std::string::npos) << message;
    EXPECT_NE(message.find("already exists"), std::string::npos) << message;
  }
}

TEST_F(IncrementalTest, InBatchDuplicateNamesBothLines) {
  std::istringstream in("3 4 d\n1 2 b\n4 3 u\n");
  auto batch = train::ParseTieBatch(in, "dup");
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), util::StatusCode::kInvalidArgument);
  const std::string message = batch.status().ToString();
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("first declared at line 1"), std::string::npos)
      << message;
}

// ---------------------------------------------------------------------------
// Growth and state mechanics.

TEST_F(IncrementalTest, NewNodesExtendTheNetwork) {
  const auto split = SmallSplit(23);
  const DeepDirectConfig config = TestConfig();
  TrainedBase base = TrainBase(split.network, config, dir_);
  const graph::NodeId fresh =
      static_cast<graph::NodeId>(split.network.num_nodes());

  train::TieBatch batch;
  batch.ties.push_back({0, fresh, graph::TieType::kDirected, 1});
  batch.ties.push_back({fresh, fresh + 1, graph::TieType::kUndirected, 2});
  auto updated = DeepDirectModel::ApplyTieBatch(split.network, batch,
                                                base.state, config, {});
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  const IncrementalUpdate& update = updated.value();
  EXPECT_EQ(update.stats.new_nodes, 2u);
  EXPECT_EQ(update.network.num_nodes(), split.network.num_nodes() + 2);
  EXPECT_EQ(update.stats.new_arcs, 4u);
  const auto d = update.model->TryDirectionality(fresh, fresh + 1);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_GE(d.value(), 0.0);
  EXPECT_LE(d.value(), 1.0);
}

TEST_F(IncrementalTest, EStepStateRoundTrips) {
  train::EStepState state;
  state.dimensions = 3;
  state.num_arcs = 2;
  state.m = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f};
  state.n = {0.5f, 0.25f, 0.0f, -1.0f, -2.0f, -3.0f};
  state.w_prime = {0.1, 0.2, 0.3};
  state.b_prime = -0.75;
  state.tie_hash = 0xfeedULL;
  state.epochs_done = 9;
  ASSERT_TRUE(train::SaveEStepState(dir_, "deepdirect.estep", state).ok());

  auto loaded = train::LoadEStepState(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().dimensions, state.dimensions);
  EXPECT_EQ(loaded.value().num_arcs, state.num_arcs);
  EXPECT_EQ(loaded.value().m, state.m);
  EXPECT_EQ(loaded.value().n, state.n);
  EXPECT_EQ(loaded.value().w_prime, state.w_prime);
  EXPECT_EQ(loaded.value().b_prime, state.b_prime);
  EXPECT_EQ(loaded.value().tie_hash, state.tie_hash);
  EXPECT_EQ(loaded.value().epochs_done, state.epochs_done);
}

TEST_F(IncrementalTest, LoadSkipsCorruptNewestCheckpoint) {
  train::EStepState state;
  state.dimensions = 2;
  state.num_arcs = 1;
  state.m = {1.0f, 2.0f};
  state.n = {3.0f, 4.0f};
  state.w_prime = {0.5, 0.5};
  state.epochs_done = 3;
  ASSERT_TRUE(train::SaveEStepState(dir_, "deepdirect.estep", state).ok());
  state.epochs_done = 4;
  ASSERT_TRUE(train::SaveEStepState(dir_, "deepdirect.estep", state).ok());

  // Truncate the newest checkpoint; the scan must fall back to epoch 3.
  const std::string newest = Path("deepdirect.estep-00000004.ckpt");
  ASSERT_TRUE(fs::exists(newest));
  fs::resize_file(newest, fs::file_size(newest) / 2);
  auto loaded = train::LoadEStepState(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().epochs_done, 3u);
}

TEST_F(IncrementalTest, MissingStateIsNotFound) {
  auto loaded = train::LoadEStepState(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST_F(IncrementalTest, StateFromDifferentNetworkRejected) {
  const auto split_a = SmallSplit(29);
  const auto split_b = SmallSplit(31);
  const DeepDirectConfig config = TestConfig();
  TrainedBase base = TrainBase(split_a.network, config, dir_);

  train::TieBatch empty;
  auto updated = DeepDirectModel::ApplyTieBatch(split_b.network, empty,
                                                base.state, config, {});
  ASSERT_FALSE(updated.ok());
  EXPECT_EQ(updated.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(IncrementalTest, TrainResumeSkipsUpdateCheckpoints) {
  // A directory holding only an update-written state must not derail a
  // full retrain with --resume: its run shape belongs to no training
  // budget, so the resume scan warns, skips it, and starts fresh.
  const auto split = SmallSplit(37);
  DeepDirectConfig config = TestConfig();
  train::EStepState state;
  state.dimensions = config.dimensions;
  state.num_arcs = TieIndex(split.network).num_arcs();
  state.m.assign(state.num_arcs * state.dimensions, 0.5f);
  state.n.assign(state.num_arcs * state.dimensions, 0.0f);
  state.w_prime.assign(state.dimensions, 0.0);
  state.epochs_done = 2;
  ASSERT_TRUE(train::SaveEStepState(dir_, "deepdirect.estep", state).ok());

  train::CheckpointPolicy policy;
  policy.write_final = true;
  config.checkpoint = {dir_, "deepdirect.estep", policy, true};
  const auto resumed = DeepDirectModel::Train(split.network, config);
  const auto fresh = DeepDirectModel::Train(split.network, TestConfig());
  EXPECT_EQ(resumed->embeddings().data(), fresh->embeddings().data());
}

}  // namespace
}  // namespace deepdirect::core
