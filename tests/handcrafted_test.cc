// Tests for the hand-crafted feature extractor and the HF model (Sec. 3).

#include <gtest/gtest.h>

#include <cmath>

#include "core/hf_model.h"
#include "data/generators.h"
#include "graph/algorithms.h"
#include "graph/triads.h"

namespace deepdirect::core {
namespace {

using graph::GraphBuilder;
using graph::MixedSocialNetwork;
using graph::NodeId;
using graph::TieType;

MixedSocialNetwork TriangleWithTail() {
  // 0 -> 1 directed, 1 - 2 bidirectional, 2 -> 0 directed, 2 - 3 undirected.
  GraphBuilder builder(4);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(1, 2, TieType::kBidirectional).ok());
  EXPECT_TRUE(builder.AddTie(2, 0, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(2, 3, TieType::kUndirected).ok());
  return std::move(builder).Build();
}

TEST(HandcraftedFeaturesTest, FeatureLayout) {
  const auto net = TriangleWithTail();
  HandcraftedFeatureConfig config;
  config.exact_centrality = true;
  const HandcraftedFeatureExtractor extractor(net, config);

  const auto x = extractor.Extract(0, 1);
  ASSERT_EQ(x.size(), kNumHandcraftedFeatures);
  // Degrees (Eqs. 1–2): node 0 has out {0->1} = 1, in {2->0} = 1.
  EXPECT_DOUBLE_EQ(x[0], net.DegOut(0));
  EXPECT_DOUBLE_EQ(x[1], net.DegOut(1));
  EXPECT_DOUBLE_EQ(x[2], net.DegIn(0));
  EXPECT_DOUBLE_EQ(x[3], net.DegIn(1));
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[2], 1.0);
  // Centralities at [4..7].
  const auto cc = extractor.closeness();
  const auto bc = extractor.betweenness();
  EXPECT_DOUBLE_EQ(x[4], cc[0]);
  EXPECT_DOUBLE_EQ(x[5], cc[1]);
  EXPECT_DOUBLE_EQ(x[6], bc[0]);
  EXPECT_DOUBLE_EQ(x[7], bc[1]);
  // Triads at [8..23]: the tie (0,1) has common neighbor 2 with 2->0
  // (backward from 0's side... relation(w=2, u=0) = forward since arc (2,0)
  // exists directed) and 2-1 bidirectional.
  const auto triads = graph::DirectedTriadCounts(net, 0, 1);
  for (size_t i = 0; i < graph::kNumTriadTypes; ++i) {
    EXPECT_DOUBLE_EQ(x[8 + i], static_cast<double>(triads[i]));
  }
  double triad_total = 0;
  for (size_t i = 8; i < 24; ++i) triad_total += x[i];
  EXPECT_DOUBLE_EQ(triad_total, 1.0);
}

TEST(HandcraftedFeaturesTest, DirectionSensitive) {
  const auto net = TriangleWithTail();
  HandcraftedFeatureConfig config;
  config.exact_centrality = true;
  const HandcraftedFeatureExtractor extractor(net, config);
  const auto forward = extractor.Extract(0, 1);
  const auto backward = extractor.Extract(1, 0);
  EXPECT_NE(forward, backward);
  // The per-endpoint features must swap.
  EXPECT_DOUBLE_EQ(forward[0], backward[1]);
  EXPECT_DOUBLE_EQ(forward[2], backward[3]);
  EXPECT_DOUBLE_EQ(forward[4], backward[5]);
}

TEST(HandcraftedFeaturesTest, SampledCentralityConfigRuns) {
  data::GeneratorConfig gen;
  gen.num_nodes = 200;
  gen.ties_per_node = 3.0;
  gen.seed = 3;
  const auto net = data::GenerateStatusNetwork(gen);
  HandcraftedFeatureConfig config;
  config.exact_centrality = false;
  config.centrality_pivots = 32;
  const HandcraftedFeatureExtractor extractor(net, config);
  const auto x = extractor.Extract(0, 1 <= net.num_nodes() ? 1 : 0);
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
}

TEST(HfModelTest, FitsTrainingDirections) {
  // On an easy, low-noise network HF must recover most *training* tie
  // directions (sanity of the LR + scaler pipeline).
  data::GeneratorConfig gen;
  gen.num_nodes = 300;
  gen.ties_per_node = 4.0;
  gen.direction_noise = 0.05;
  gen.status_noise = 0.1;
  gen.seed = 5;
  const auto net = data::GenerateStatusNetwork(gen);
  HfConfig config;
  const auto model = HfModel::Train(net, config);

  size_t correct = 0, total = 0;
  for (graph::ArcId id : net.directed_arcs()) {
    const auto& arc = net.arc(id);
    const double fwd = model->Directionality(arc.src, arc.dst);
    const double bwd = model->Directionality(arc.dst, arc.src);
    correct += (fwd >= bwd);
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.75);
}

TEST(HfModelTest, RecoverssHiddenDirectionsAboveChance) {
  data::GeneratorConfig gen;
  gen.num_nodes = 400;
  gen.ties_per_node = 4.0;
  gen.direction_noise = 0.05;
  gen.status_noise = 0.1;
  gen.seed = 7;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng(9);
  const auto split = graph::HideDirections(net, 0.5, rng);
  const auto model = HfModel::Train(split.network, HfConfig{});

  size_t correct = 0;
  for (graph::ArcId id : split.hidden_true_arcs) {
    const auto& arc = split.network.arc(id);
    if (model->Directionality(arc.src, arc.dst) >=
        model->Directionality(arc.dst, arc.src)) {
      ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / split.hidden_true_arcs.size(),
            0.6);
}

TEST(HfModelTest, OutputsAreProbabilities) {
  data::GeneratorConfig gen;
  gen.num_nodes = 150;
  gen.seed = 11;
  const auto net = data::GenerateStatusNetwork(gen);
  const auto model = HfModel::Train(net, HfConfig{});
  for (graph::ArcId id = 0; id < net.num_arcs() && id < 50; ++id) {
    const auto& arc = net.arc(id);
    const double d = model->Directionality(arc.src, arc.dst);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
  EXPECT_EQ(model->name(), "HF");
}

}  // namespace
}  // namespace deepdirect::core
