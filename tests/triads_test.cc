// Unit tests for the directed triad census, triangle counting, and the line
// graph (the connected-tie oracle).

#include <gtest/gtest.h>

#include <set>

#include "graph/line_graph.h"
#include "graph/triads.h"

namespace deepdirect::graph {
namespace {

TEST(ClassifyRelationTest, AllFourCategories) {
  GraphBuilder builder(5);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(2, 0, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(0, 3, TieType::kBidirectional).ok());
  EXPECT_TRUE(builder.AddTie(0, 4, TieType::kUndirected).ok());
  const auto net = std::move(builder).Build();

  EXPECT_EQ(ClassifyRelation(net, 0, 1), TieRelation::kForward);
  EXPECT_EQ(ClassifyRelation(net, 1, 0), TieRelation::kBackward);
  EXPECT_EQ(ClassifyRelation(net, 0, 2), TieRelation::kBackward);
  EXPECT_EQ(ClassifyRelation(net, 2, 0), TieRelation::kForward);
  EXPECT_EQ(ClassifyRelation(net, 0, 3), TieRelation::kBoth);
  EXPECT_EQ(ClassifyRelation(net, 3, 0), TieRelation::kBoth);
  EXPECT_EQ(ClassifyRelation(net, 0, 4), TieRelation::kUnknown);
  EXPECT_EQ(ClassifyRelation(net, 4, 0), TieRelation::kUnknown);
}

TEST(TriadTypeIndexTest, BijectiveOverSixteenTypes) {
  std::set<size_t> seen;
  for (int wu = 0; wu < 4; ++wu) {
    for (int wv = 0; wv < 4; ++wv) {
      const size_t idx = TriadTypeIndex(static_cast<TieRelation>(wu),
                                        static_cast<TieRelation>(wv));
      EXPECT_LT(idx, kNumTriadTypes);
      seen.insert(idx);
    }
  }
  EXPECT_EQ(seen.size(), kNumTriadTypes);
}

TEST(DirectedTriadCountsTest, SingleTriadClassified) {
  // Triangle u=0, v=1, common neighbor w=2 with w->u directed and w-v
  // bidirectional; tie (u, v) undirected (its own direction is ignored).
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kUndirected).ok());
  EXPECT_TRUE(builder.AddTie(2, 0, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(2, 1, TieType::kBidirectional).ok());
  const auto net = std::move(builder).Build();

  const auto counts = DirectedTriadCounts(net, 0, 1);
  uint32_t total = 0;
  for (uint32_t c : counts) total += c;
  EXPECT_EQ(total, 1u);
  const size_t expected =
      TriadTypeIndex(TieRelation::kForward, TieRelation::kBoth);
  EXPECT_EQ(counts[expected], 1u);

  // Reversing the queried tie transposes the relation pair.
  const auto reversed = DirectedTriadCounts(net, 1, 0);
  const size_t transposed =
      TriadTypeIndex(TieRelation::kBoth, TieRelation::kForward);
  EXPECT_EQ(reversed[transposed], 1u);
}

TEST(DirectedTriadCountsTest, MultipleCommonNeighbors) {
  // u=0, v=1 with common neighbors 2, 3, 4 all connected by directed ties
  // w -> u and w -> v.
  GraphBuilder builder(5);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  for (NodeId w = 2; w <= 4; ++w) {
    EXPECT_TRUE(builder.AddTie(w, 0, TieType::kDirected).ok());
    EXPECT_TRUE(builder.AddTie(w, 1, TieType::kDirected).ok());
  }
  const auto net = std::move(builder).Build();
  const auto counts = DirectedTriadCounts(net, 0, 1);
  const size_t type =
      TriadTypeIndex(TieRelation::kForward, TieRelation::kForward);
  EXPECT_EQ(counts[type], 3u);
  uint32_t total = 0;
  for (uint32_t c : counts) total += c;
  EXPECT_EQ(total, 3u);
}

TEST(DirectedTriadCountsTest, NoCommonNeighborsAllZero) {
  GraphBuilder builder(4);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(1, 2, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(2, 3, TieType::kDirected).ok());
  const auto net = std::move(builder).Build();
  for (uint32_t c : DirectedTriadCounts(net, 0, 1)) EXPECT_EQ(c, 0u);
}

TEST(CountTrianglesTest, CompleteGraphK4) {
  GraphBuilder builder(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) {
      EXPECT_TRUE(builder.AddTie(u, v, TieType::kUndirected).ok());
    }
  }
  EXPECT_EQ(CountTriangles(std::move(builder).Build()), 4u);
}

TEST(CountTrianglesTest, MixedTypesCountOnce) {
  // One triangle built from one tie of each type.
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(1, 2, TieType::kBidirectional).ok());
  EXPECT_TRUE(builder.AddTie(0, 2, TieType::kUndirected).ok());
  EXPECT_EQ(CountTriangles(std::move(builder).Build()), 1u);
}

TEST(CountTrianglesTest, TreeHasNone) {
  GraphBuilder builder(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) {
    EXPECT_TRUE(builder.AddTie(0, leaf, TieType::kUndirected).ok());
  }
  EXPECT_EQ(CountTriangles(std::move(builder).Build()), 0u);
}

TEST(ClusteringTest, TriangleIsOne) {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kUndirected).ok());
  EXPECT_TRUE(builder.AddTie(1, 2, TieType::kUndirected).ok());
  EXPECT_TRUE(builder.AddTie(0, 2, TieType::kUndirected).ok());
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(std::move(builder).Build()),
                   1.0);
}

TEST(ClusteringTest, StarIsZero) {
  GraphBuilder builder(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) {
    EXPECT_TRUE(builder.AddTie(0, leaf, TieType::kDirected).ok());
  }
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(std::move(builder).Build()),
                   0.0);
}

TEST(LineGraphTest, SizeMatchesPrediction) {
  GraphBuilder builder(4);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(1, 2, TieType::kBidirectional).ok());
  EXPECT_TRUE(builder.AddTie(2, 3, TieType::kUndirected).ok());
  const auto net = std::move(builder).Build();
  const auto line = BuildLineGraph(net);
  EXPECT_EQ(line.num_nodes, net.num_arcs());
  EXPECT_EQ(line.edges.size(), PredictLineGraphSize(net));
  EXPECT_EQ(line.edges.size(), net.NumConnectedTiePairs());
}

TEST(LineGraphTest, EdgesAreConnectedTiePairs) {
  GraphBuilder builder(4);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(1, 2, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(2, 0, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(1, 3, TieType::kDirected).ok());
  const auto net = std::move(builder).Build();
  const auto line = BuildLineGraph(net);
  for (const auto& [e1, e2] : line.edges) {
    // Definition of the line digraph: head of e1 is tail of e2, and e2 does
    // not return to e1's tail.
    EXPECT_EQ(net.arc(e1).dst, net.arc(e2).src);
    EXPECT_NE(net.arc(e2).dst, net.arc(e1).src);
  }
  // (0,1)->(1,2), (0,1)->(1,3), (1,2)->(2,0), (2,0)->(0,1): 4 edges.
  EXPECT_EQ(line.edges.size(), 4u);
}

}  // namespace
}  // namespace deepdirect::graph
