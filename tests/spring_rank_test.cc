// Tests for SpringRank status inference and the status-comparison
// directionality baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "core/applications.h"
#include "core/spring_rank_model.h"
#include "data/generators.h"
#include "graph/algorithms.h"
#include "graph/spring_rank.h"

namespace deepdirect::graph {
namespace {

TEST(SpringSystemTest, ChainRecoversOrder) {
  // 0 -> 1 -> 2 -> 3: scores must be strictly increasing with roughly unit
  // gaps (shrunk slightly by the ridge term).
  std::vector<std::pair<NodeId, NodeId>> arcs{{0, 1}, {1, 2}, {2, 3}};
  SpringRankConfig config;
  config.alpha = 0.01;
  const auto s = SolveSpringSystem(4, arcs, config);
  EXPECT_LT(s[0], s[1]);
  EXPECT_LT(s[1], s[2]);
  EXPECT_LT(s[2], s[3]);
  EXPECT_NEAR(s[1] - s[0], 1.0, 0.1);
  EXPECT_NEAR(s[3] - s[2], 1.0, 0.1);
}

TEST(SpringSystemTest, SymmetricPairCancels) {
  // i <-> j springs cancel: both scores stay at ~0.
  std::vector<std::pair<NodeId, NodeId>> arcs{{0, 1}, {1, 0}};
  const auto s = SolveSpringSystem(2, arcs, SpringRankConfig{});
  EXPECT_NEAR(s[0], 0.0, 1e-6);
  EXPECT_NEAR(s[1], 0.0, 1e-6);
}

TEST(SpringSystemTest, ResidualIsSmall) {
  // Verify the CG solution actually satisfies (L + αI)s = b on a small
  // random system.
  util::Rng rng(7);
  std::vector<std::pair<NodeId, NodeId>> arcs;
  const size_t n = 30;
  for (int k = 0; k < 80; ++k) {
    const NodeId a = static_cast<NodeId>(rng.NextIndex(n));
    const NodeId b = static_cast<NodeId>(rng.NextIndex(n));
    if (a != b) arcs.emplace_back(a, b);
  }
  SpringRankConfig config;
  config.alpha = 0.2;
  const auto s = SolveSpringSystem(n, arcs, config);

  std::vector<double> b(n, 0.0), out(n, 0.0);
  for (const auto& [src, dst] : arcs) {
    b[dst] += 1.0;
    b[src] -= 1.0;
  }
  for (size_t i = 0; i < n; ++i) out[i] = config.alpha * s[i];
  for (const auto& [src, dst] : arcs) {
    out[src] += s[src] - s[dst];
    out[dst] += s[dst] - s[src];
  }
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(out[i], b[i], 1e-5);
}

TEST(SpringRankTest, RecoversGeneratorStatusOrder) {
  data::GeneratorConfig gen;
  gen.num_nodes = 400;
  gen.ties_per_node = 4.0;
  gen.bidirectional_fraction = 0.0;
  gen.direction_noise = 0.05;
  gen.status_noise = 0.1;
  gen.seed = 5;
  const auto net = data::GenerateStatusNetwork(gen);
  const auto inferred = SpringRank(net, SpringRankConfig{});
  const auto truth = data::GeneratorStatuses(gen);

  // Spearman-ish check via Pearson correlation of the scores.
  double mean_i = 0, mean_t = 0;
  const size_t n = inferred.size();
  for (size_t i = 0; i < n; ++i) {
    mean_i += inferred[i];
    mean_t += truth[i];
  }
  mean_i /= n;
  mean_t /= n;
  double cov = 0, var_i = 0, var_t = 0;
  for (size_t i = 0; i < n; ++i) {
    cov += (inferred[i] - mean_i) * (truth[i] - mean_t);
    var_i += (inferred[i] - mean_i) * (inferred[i] - mean_i);
    var_t += (truth[i] - mean_t) * (truth[i] - mean_t);
  }
  EXPECT_GT(cov / std::sqrt(var_i * var_t), 0.7);
}

TEST(SpringRankModelTest, BeatsChanceAndCalibrates) {
  data::GeneratorConfig gen;
  gen.num_nodes = 400;
  gen.ties_per_node = 4.0;
  gen.direction_noise = 0.05;
  gen.status_noise = 0.1;
  gen.seed = 9;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng(11);
  const auto split = HideDirections(net, 0.3, rng);

  const auto model =
      core::SpringRankModel::Train(split.network, core::SpringRankModelConfig{});
  EXPECT_EQ(model->name(), "SpringRank");
  EXPECT_GT(core::DirectionDiscoveryAccuracy(split, *model), 0.65);

  // Near-antisymmetry: the calibration data is orientation-symmetric, so
  // the bias ends near zero and d(u,v) + d(v,u) ≈ 1.
  const auto& arc = split.network.arc(0);
  EXPECT_NEAR(model->Directionality(arc.src, arc.dst) +
                  model->Directionality(arc.dst, arc.src),
              1.0, 0.05);
}

}  // namespace
}  // namespace deepdirect::graph
