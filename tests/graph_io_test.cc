// Unit tests for edge-list serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "data/generators.h"
#include "graph/graph_io.h"
#include "obs/metrics.h"

namespace deepdirect::graph {
namespace {

TEST(GraphIoTest, RoundTripThroughStream) {
  GraphBuilder builder(6);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(1, 2, TieType::kBidirectional).ok());
  EXPECT_TRUE(builder.AddTie(3, 4, TieType::kUndirected).ok());
  const auto original = std::move(builder).Build();

  std::stringstream buffer;
  WriteEdgeList(original, buffer);
  auto loaded = ReadEdgeList(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const auto& net = loaded.value();
  EXPECT_EQ(net.num_nodes(), 6u);
  EXPECT_EQ(net.num_ties(), 3u);
  EXPECT_EQ(net.num_directed_ties(), 1u);
  EXPECT_EQ(net.num_bidirectional_ties(), 1u);
  EXPECT_EQ(net.num_undirected_ties(), 1u);
  EXPECT_TRUE(net.HasArc(0, 1));
  EXPECT_FALSE(net.HasArc(1, 0));
  EXPECT_TRUE(net.HasArc(1, 2));
  EXPECT_TRUE(net.HasArc(2, 1));
}

TEST(GraphIoTest, RoundTripThroughFile) {
  data::GeneratorConfig config;
  config.num_nodes = 150;
  config.ties_per_node = 3.0;
  config.seed = 3;
  const auto original = data::GenerateStatusNetwork(config);

  const std::string path = "/tmp/deepdirect_io_test.edges";
  ASSERT_TRUE(SaveEdgeList(original, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  const auto& net = loaded.value();
  EXPECT_EQ(net.num_nodes(), original.num_nodes());
  EXPECT_EQ(net.num_ties(), original.num_ties());
  EXPECT_EQ(net.num_directed_ties(), original.num_directed_ties());
  // Arc-level equality: same canonical arc list.
  ASSERT_EQ(net.num_arcs(), original.num_arcs());
  for (ArcId id = 0; id < net.num_arcs(); ++id) {
    EXPECT_EQ(net.arc(id), original.arc(id));
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "0 1 d\n"
      "# another\n"
      "1 2 u\n");
  auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_ties(), 2u);
  EXPECT_EQ(loaded.value().num_nodes(), 3u);  // inferred from max id
}

TEST(GraphIoTest, DeclaredNodeCountHonored) {
  std::stringstream in("# nodes 10\n0 1 d\n");
  auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), 10u);
}

TEST(GraphIoTest, CrlfLineEndingsParse) {
  // Windows-edited edge lists carry \r\n terminators; the trailing \r must
  // not leak into the type token or the '# nodes' header value.
  std::stringstream in(
      "# nodes 10\r\n"
      "0 1 d\r\n"
      "1 2 u\r\n"
      "2 3 b\r\n");
  auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_nodes(), 10u);
  EXPECT_EQ(loaded.value().num_ties(), 3u);
  EXPECT_TRUE(loaded.value().HasArc(0, 1));
  EXPECT_FALSE(loaded.value().HasArc(1, 0));
}

TEST(GraphIoTest, WhitespaceOnlyLinesIgnored) {
  // Lines that are blank after trimming (spaces, tabs, a lone \r) are
  // separators, not malformed ties.
  std::stringstream in(
      "0 1 d\n"
      "   \t \n"
      "\r\n"
      "1 2 u\n");
  auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_ties(), 2u);
}

TEST(GraphIoTest, RejectsTrailingGarbageWithLineNumber) {
  std::stringstream in(
      "0 1 d\n"
      "1 2 u extra\n");
  auto loaded = ReadEdgeList(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  // The error must pinpoint the offending line and echo the stray token.
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("extra"), std::string::npos);
}

TEST(GraphIoTest, RejectsMergedLinesAsTrailingGarbage) {
  // A missing newline gluing two records together must not silently drop
  // the second tie.
  std::stringstream in("0 1 d 1 2 u\n");
  auto loaded = ReadEdgeList(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, RejectsUnknownTieType) {
  std::stringstream in("0 1 x\n");
  auto loaded = ReadEdgeList(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, RejectsMalformedLine) {
  std::stringstream in("0 d\n");
  EXPECT_FALSE(ReadEdgeList(in).ok());
}

TEST(GraphIoTest, RejectsNegativeNodeIds) {
  std::stringstream in("-1 2 d\n");
  EXPECT_FALSE(ReadEdgeList(in).ok());
}

TEST(GraphIoTest, RejectsNodeBeyondDeclaredCount) {
  std::stringstream in("# nodes 2\n0 5 d\n");
  auto loaded = ReadEdgeList(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, RejectsDuplicateTies) {
  std::stringstream in("0 1 d\n1 0 b\n");
  EXPECT_FALSE(ReadEdgeList(in).ok());
}

TEST(GraphIoTest, MissingFileReportsIOError) {
  auto loaded = LoadEdgeList("/nonexistent/deepdirect.edges");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
}

TEST(GraphIoTest, EmptyInputYieldsEmptyNetwork) {
  std::stringstream in("");
  auto loaded = ReadEdgeList(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), 0u);
  EXPECT_EQ(loaded.value().num_ties(), 0u);
}

TEST(GraphIoTest, FileSizeReserveHintBoundsReallocations) {
  // LoadEdgeList reserves the tie buffer from the file size (hint / 12, a
  // deliberate under-estimate), so the parse must grow the buffer at most
  // once no matter how many ties the file holds. Regression test for the
  // doubling-realloc crawl on multi-GB edge lists.
  data::GeneratorConfig gen;
  gen.num_nodes = 3000;
  gen.ties_per_node = 4.0;
  gen.seed = 21;
  const auto net = data::GenerateStatusNetwork(gen);
  const std::string path = "/tmp/deepdirect_graphio_realloc.edges";
  ASSERT_TRUE(SaveEdgeList(net, path).ok());

  obs::Registry& registry = obs::Registry::Default();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  obs::Counter* reallocs = registry.GetCounter("graph.load.tie_reallocs");
  reallocs->Reset();
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_ties(), net.num_ties());
  EXPECT_LE(reallocs->Value(), 1u)
      << "the file-size reserve hint no longer bounds buffer growth";

  // Contrast: the same bytes parsed with no size hint must double their
  // way up — that growth is what the hint exists to prevent. (Skipped in
  // no-telemetry builds, where counters always read zero.)
  if (obs::Enabled()) {
    std::ifstream in(path);
    reallocs->Reset();
    auto unhinted = ReadEdgeList(in);
    ASSERT_TRUE(unhinted.ok());
    EXPECT_GT(reallocs->Value(), 1u);
  }
  registry.set_enabled(was_enabled);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace deepdirect::graph
