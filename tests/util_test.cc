// Unit tests for the utility substrate: Status/Result, RNG, alias table,
// CSV writer, table printer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "util/alias_table.h"
#include "util/csv_writer.h"
#include "util/random.h"
#include "util/status.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace deepdirect::util {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad tie");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad tie");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad tie");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ------------------------------------------------------------------- RNG

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) differing += (a.Next() != b.Next());
  EXPECT_GT(differing, 15);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextBoundedApproximatelyUniform) {
  Rng rng(19);
  const int buckets = 10, n = 100000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(buckets)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / buckets, 0.05 * n / buckets);
  }
}

TEST(RngTest, NextGaussianMoments) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(29);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.Shuffle(v);
  int moved = 0;
  for (int i = 0; i < 100; ++i) moved += (v[i] != i);
  EXPECT_GT(moved, 80);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    const auto sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (size_t idx : sample) EXPECT_LT(idx, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(43);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleWithoutReplacementUnbiased) {
  // Every index should be sampled roughly equally often across trials.
  Rng rng(47);
  std::vector<int> counts(20, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (size_t idx : rng.SampleWithoutReplacement(20, 3)) ++counts[idx];
  }
  const double expected = trials * 3.0 / 20.0;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 0.08 * expected);
  }
}

// ----------------------------------------------------------- AliasTable

TEST(AliasTableTest, SingleOutcome) {
  AliasTable table({5.0});
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(AliasTableTest, NormalizedProbabilities) {
  AliasTable table({1.0, 3.0});
  EXPECT_NEAR(table.Probability(0), 0.25, 1e-12);
  EXPECT_NEAR(table.Probability(1), 0.75, 1e-12);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table({0.0, 1.0, 0.0, 2.0});
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const size_t s = table.Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTableTest, EmpiricalDistributionMatchesWeights) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0, 10.0};
  AliasTable table(weights);
  Rng rng(5);
  const int n = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < n; ++i) ++counts[table.Sample(rng)];
  double total = 0.0;
  for (double w : weights) total += w;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = n * weights[i] / total;
    EXPECT_NEAR(static_cast<double>(counts[i]), expected, 0.05 * expected)
        << "outcome " << i;
  }
}

TEST(AliasTableTest, UniformWeights) {
  AliasTable table(std::vector<double>(7, 1.0));
  Rng rng(7);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[table.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

// ------------------------------------------------------------ CsvWriter

TEST(CsvWriterTest, WritesAndEscapes) {
  const std::string path = "/tmp/deepdirect_csv_test.csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    csv.WriteRow({"a", "b,c", "d\"e"});
    csv.WriteNumericRow("row", {1.5, 2.25}, 3);
    csv.Close();
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "row,1.5,2.25");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, EnsureDirectoryIdempotent) {
  EXPECT_TRUE(EnsureDirectory("/tmp/deepdirect_dir_test").ok());
  EXPECT_TRUE(EnsureDirectory("/tmp/deepdirect_dir_test").ok());
}

TEST(CsvWriterTest, BadPathReportsNotOk) {
  CsvWriter csv("/nonexistent_dir_xyz/file.csv");
  EXPECT_FALSE(csv.ok());
}

// --------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.23456, 3), "1.235");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 1), "2.0");
}

TEST(TablePrinterTest, AddNumericRow) {
  TablePrinter table({"name", "x", "y"});
  table.AddNumericRow("r", {0.5, 0.25}, 2);
  table.Print();  // smoke: must not crash
}

// ---------------------------------------------------------------- Timer

TEST(TimerTest, ElapsedNonNegativeAndMonotone) {
  Timer t;
  const double first = t.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(sink, 0.0);  // keep the loop observable
  EXPECT_GE(t.ElapsedSeconds(), first);
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace deepdirect::util
