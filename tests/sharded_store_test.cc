// Tests for out-of-core training: the DDSH shard store round-trip,
// every-length truncation and every-byte corruption sweeps over a sealed
// store, the bit-identity goldens (sharded nt=1 vs in-RAM, 1 shard vs 4
// shards, tiny-budget eviction churn), residency accounting, and the
// shard-affine Hogwild path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/applications.h"
#include "core/deepdirect.h"
#include "core/sharded_trainer.h"
#include "core/tie_index.h"
#include "data/generators.h"
#include "graph/algorithms.h"
#include "ml/matrix.h"
#include "train/sharded_store.h"
#include "util/random.h"

namespace deepdirect::core {
namespace {

namespace fs = std::filesystem;

/// A clean store directory under /tmp (leftovers from a previous run are
/// removed so stale shard files can never satisfy an Open).
std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

graph::HiddenDirectionSplit MakeSplit(size_t num_nodes = 250,
                                      uint64_t seed = 5) {
  data::GeneratorConfig gen;
  gen.num_nodes = num_nodes;
  gen.ties_per_node = 3.5;
  gen.seed = seed;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng(seed + 1);
  return graph::HideDirections(net, 0.4, rng);
}

DeepDirectConfig BaseConfig(size_t dimensions = 16, double epochs = 2.0) {
  DeepDirectConfig config;
  config.dimensions = dimensions;
  config.epochs = epochs;
  return config;
}

DeepDirectConfig ShardedConfig(const DeepDirectConfig& base, size_t shards,
                               const std::string& dir,
                               size_t ram_budget_mb = 256) {
  DeepDirectConfig config = base;
  config.sharding.num_shards = shards;
  config.sharding.dir = dir;
  config.sharding.ram_budget_mb = ram_budget_mb;
  return config;
}

/// Asserts two trained models agree bit-for-bit: classifier parameters,
/// D-step predictions on every closure arc, and discovery accuracy.
template <typename ModelA, typename ModelB>
void ExpectBitIdentical(const graph::HiddenDirectionSplit& split,
                        const ModelA& a, const ModelB& b) {
  EXPECT_EQ(a.e_step_weights(), b.e_step_weights());
  EXPECT_EQ(a.e_step_bias(), b.e_step_bias());
  const TieIndex idx(split.network);
  for (size_t e = 0; e < idx.num_arcs(); ++e) {
    const auto [u, v] = idx.ArcAt(e);
    ASSERT_EQ(a.Directionality(u, v), b.Directionality(u, v))
        << "divergence at arc " << e << " = (" << u << ", " << v << ")";
  }
  EXPECT_EQ(DirectionDiscoveryAccuracy(split, a),
            DirectionDiscoveryAccuracy(split, b));
}

TEST(ShardedTrainerTest, SingleThreadMatchesInRamBitIdentical) {
  const auto split = MakeSplit();
  const auto base = BaseConfig();
  const auto in_ram = DeepDirectModel::Train(split.network, base);
  auto sharded = ShardedDeepDirectModel::Train(
      split.network,
      ShardedConfig(base, 4, FreshDir("dd_shard_vs_inram")));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectBitIdentical(split, *in_ram, *sharded.value());
}

TEST(ShardedTrainerTest, ShardCountDoesNotChangeTheModel) {
  const auto split = MakeSplit();
  const auto base = BaseConfig();
  auto one = ShardedDeepDirectModel::Train(
      split.network, ShardedConfig(base, 1, FreshDir("dd_shard_one")));
  auto four = ShardedDeepDirectModel::Train(
      split.network, ShardedConfig(base, 4, FreshDir("dd_shard_four")));
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  ASSERT_TRUE(four.ok()) << four.status().ToString();
  EXPECT_EQ(one.value()->store().num_shards(), 1u);
  EXPECT_EQ(four.value()->store().num_shards(), 4u);
  ExpectBitIdentical(split, *one.value(), *four.value());
}

TEST(ShardedTrainerTest, TinyBudgetEvictsAndStaysBitIdentical) {
  // Big enough that M + N (~2.9 MB at l = 64) overflows a 1 MB budget, so
  // the serial run's global sampling churns shards through the LRU the
  // whole way — and the result must still match the in-RAM trainer.
  const auto split = MakeSplit(800, 7);
  const auto base = BaseConfig(64, 1.0);
  const auto in_ram = DeepDirectModel::Train(split.network, base);
  auto sharded = ShardedDeepDirectModel::Train(
      split.network,
      ShardedConfig(base, 8, FreshDir("dd_shard_tiny_budget"), 1));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectBitIdentical(split, *in_ram, *sharded.value());

  const auto stats = sharded.value()->store().GetStats();
  EXPECT_GT(stats.evictions, 0u) << "budget never forced an eviction";
  EXPECT_GE(stats.admissions, stats.evictions);
  EXPECT_LE(stats.resident_bytes, stats.max_resident_bytes);
  EXPECT_LE(stats.max_resident_bytes, stats.budget_bytes);
}

TEST(ShardedTrainerTest, HogwildShardedTrainsToSaneAccuracy) {
  const auto split = MakeSplit();
  auto base = BaseConfig();
  base.num_threads = 4;
  auto sharded = ShardedDeepDirectModel::Train(
      split.network, ShardedConfig(base, 4, FreshDir("dd_shard_hogwild")));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  for (const double w : sharded.value()->e_step_weights()) {
    ASSERT_TRUE(std::isfinite(w));
  }
  const double accuracy =
      DirectionDiscoveryAccuracy(split, *sharded.value());
  EXPECT_GT(accuracy, 0.5);  // must beat a coin flip
  EXPECT_LE(accuracy, 1.0);
}

TEST(ShardedTrainerTest, RejectsUnsupportedConfigs) {
  const auto split = MakeSplit(60, 11);
  const auto base = BaseConfig(4, 0.5);

  auto no_sharding = ShardedDeepDirectModel::Train(split.network, base);
  EXPECT_FALSE(no_sharding.ok());
  EXPECT_EQ(no_sharding.status().code(),
            util::StatusCode::kInvalidArgument);

  auto with_checkpoint = ShardedConfig(base, 2, FreshDir("dd_shard_ckpt"));
  with_checkpoint.checkpoint.dir = "/tmp/dd_shard_ckpt_dir";
  auto checkpointed =
      ShardedDeepDirectModel::Train(split.network, with_checkpoint);
  EXPECT_FALSE(checkpointed.ok());
  EXPECT_EQ(checkpointed.status().code(),
            util::StatusCode::kInvalidArgument);

  auto with_mlp = ShardedConfig(base, 2, FreshDir("dd_shard_mlp"));
  with_mlp.d_step_head = DStepHead::kMlp;
  auto mlp = ShardedDeepDirectModel::Train(split.network, with_mlp);
  EXPECT_FALSE(mlp.ok());
  EXPECT_EQ(mlp.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ShardedTrainerTest, UnknownTieIsNotFound) {
  const auto split = MakeSplit(60, 11);
  auto sharded = ShardedDeepDirectModel::Train(
      split.network,
      ShardedConfig(BaseConfig(4, 0.5), 2, FreshDir("dd_shard_unknown")));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  const TieIndex idx(split.network);
  for (graph::NodeId u = 0; u < idx.num_nodes(); ++u) {
    for (graph::NodeId v = 0; v < idx.num_nodes(); ++v) {
      if (u == v || idx.TryIndexOf(u, v) != idx.num_arcs()) continue;
      auto result = sharded.value()->TryDirectionality(u, v);
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
      return;  // one unknown pair is enough
    }
  }
  ADD_FAILURE() << "fixture network is a complete digraph";
}

// ----------------------------------------------------------------------
// Store lifecycle and fault injection. The fixture is deliberately tiny
// (60 nodes, l = 4) so the every-byte sweeps stay fast under sanitizers.
// ----------------------------------------------------------------------

/// Trains a tiny sharded model once and shares its sealed store directory
/// with every fault-injection test (each test works on copies).
const std::string& TinySealedStoreDir() {
  static const std::string* dir = [] {
    auto* path = new std::string(FreshDir("dd_shard_tiny_store"));
    const auto split = MakeSplit(60, 11);
    auto sharded = ShardedDeepDirectModel::Train(
        split.network, ShardedConfig(BaseConfig(4, 0.5), 2, *path));
    EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
    return path;
  }();
  return *dir;
}

std::vector<std::string> StoreFiles(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

/// Copies the tiny sealed store into a scratch directory the test may
/// mutilate freely.
std::string CopyStore(const std::string& name) {
  const std::string src = TinySealedStoreDir();
  const std::string dst = FreshDir(name);
  fs::create_directories(dst);
  for (const auto& file : StoreFiles(src)) {
    fs::copy_file(src + "/" + file, dst + "/" + file);
  }
  return dst;
}

TEST(ShardedStoreTest, SealedStoreReopensWithSameGeometryAndRows) {
  const std::string dir = TinySealedStoreDir();
  auto reopened = train::ShardedStore::Open(dir, 256);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  train::ShardedStore& store = *reopened.value();
  EXPECT_EQ(store.num_shards(), 2u);
  EXPECT_EQ(store.dimensions(), 4u);
  EXPECT_GT(store.num_arcs(), 0u);

  auto again = train::ShardedStore::Open(dir, 256);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  for (size_t e = 0; e < store.num_arcs(); ++e) {
    const auto row = store.EmbRow(e);
    const auto other = again.value()->EmbRow(e);
    ASSERT_EQ(0, std::memcmp(row.data(), other.data(),
                             row.size() * sizeof(float)))
        << "emb row " << e << " differs between two opens";
  }
}

TEST(ShardedStoreTest, LayoutIsOneGraphFilePlusOneFilePerShard) {
  const auto files = StoreFiles(TinySealedStoreDir());
  EXPECT_EQ(files,
            (std::vector<std::string>{"graph.dds", "shard-0000.dds",
                                      "shard-0001.dds"}));
}

TEST(ShardedStoreTest, TruncationSweepEveryLengthNeverOpens) {
  const std::string dir = CopyStore("dd_shard_trunc");
  for (const auto& file : StoreFiles(dir)) {
    const std::string path = dir + "/" + file;
    const std::string pristine = ReadFile(path);
    ASSERT_FALSE(pristine.empty());
    for (size_t len = 0; len < pristine.size(); ++len) {
      WriteFile(path, pristine.substr(0, len));
      auto opened = train::ShardedStore::Open(dir, 256);
      ASSERT_FALSE(opened.ok())
          << file << " truncated to " << len << " bytes still opened";
    }
    WriteFile(path, pristine);  // restore for the next file's sweep
  }
}

TEST(ShardedStoreTest, CorruptionSweepEveryByteNeverOpens) {
  const std::string dir = CopyStore("dd_shard_corrupt");
  for (const auto& file : StoreFiles(dir)) {
    const std::string path = dir + "/" + file;
    const std::string pristine = ReadFile(path);
    ASSERT_FALSE(pristine.empty());
    std::string corrupted = pristine;
    for (size_t k = 0; k < pristine.size(); ++k) {
      corrupted[k] = static_cast<char>(corrupted[k] ^ 0x5A);
      WriteFile(path, corrupted);
      auto opened = train::ShardedStore::Open(dir, 256);
      ASSERT_FALSE(opened.ok())
          << file << " byte " << k << " corrupted but the store opened";
      corrupted[k] = pristine[k];
    }
    WriteFile(path, pristine);
  }
}

TEST(ShardedStoreTest, MissingShardFileNeverOpens) {
  const std::string dir = CopyStore("dd_shard_missing");
  fs::remove(dir + "/shard-0001.dds");
  auto opened = train::ShardedStore::Open(dir, 256);
  EXPECT_FALSE(opened.ok());
}

TEST(ShardedStoreTest, UnsealedStoreIsRejected) {
  const auto split = MakeSplit(60, 11);
  const TieIndex idx(split.network);
  DeepDirectConfig config = BaseConfig(4, 0.5);
  const PatternPrecompute patterns =
      PrecomputePatterns(split.network, idx, config);

  train::ShardedStoreInit init;
  init.offsets = idx.Offsets();
  init.adjacency = {
      reinterpret_cast<const uint32_t*>(idx.Adjacency().data()),
      idx.Adjacency().size()};
  init.sources = {reinterpret_cast<const uint32_t*>(idx.Sources().data()),
                  idx.Sources().size()};
  init.classes = {
      reinterpret_cast<const uint8_t*>(idx.RawClasses().data()),
      idx.RawClasses().size()};
  init.num_connected_pairs = idx.NumConnectedTiePairs();
  init.arc_hash = HashTieIndex(idx);
  init.dimensions = config.dimensions;
  init.slot = patterns.slot;
  init.degree_pseudo_label = patterns.degree_pseudo_label;
  init.degree_active = patterns.degree_active;
  init.triad_offsets = patterns.triad_offsets;
  init.triad_pairs = {reinterpret_cast<const graph::shard::TriadPair*>(
                          patterns.triad_pairs.data()),
                      patterns.triad_pairs.size()};

  train::ShardedStoreOptions options;
  options.dir = FreshDir("dd_shard_unsealed");
  options.num_shards = 2;
  util::Rng rng(3);
  {
    auto created =
        train::ShardedStore::Create(options, init, rng, -0.125f, 0.125f);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    // Dropped without Seal(): the shard files stay live/unsealed.
  }
  auto opened = train::ShardedStore::Open(options.dir, 256);
  EXPECT_FALSE(opened.ok())
      << "an unsealed (mid-training) store must not validate";
}

TEST(ShardedStoreTest, CreateFillsEmbeddingsInFillUniformOrder) {
  // The store's init fill must consume the Rng exactly like
  // ml::Matrix::FillUniform — the first leg of the bit-identity contract.
  const auto split = MakeSplit(60, 11);
  const TieIndex idx(split.network);
  DeepDirectConfig config = BaseConfig(4, 0.5);
  const PatternPrecompute patterns =
      PrecomputePatterns(split.network, idx, config);

  train::ShardedStoreInit init;
  init.offsets = idx.Offsets();
  init.adjacency = {
      reinterpret_cast<const uint32_t*>(idx.Adjacency().data()),
      idx.Adjacency().size()};
  init.sources = {reinterpret_cast<const uint32_t*>(idx.Sources().data()),
                  idx.Sources().size()};
  init.classes = {
      reinterpret_cast<const uint8_t*>(idx.RawClasses().data()),
      idx.RawClasses().size()};
  init.num_connected_pairs = idx.NumConnectedTiePairs();
  init.arc_hash = HashTieIndex(idx);
  init.dimensions = config.dimensions;
  init.slot = patterns.slot;
  init.degree_pseudo_label = patterns.degree_pseudo_label;
  init.degree_active = patterns.degree_active;
  init.triad_offsets = patterns.triad_offsets;
  init.triad_pairs = {reinterpret_cast<const graph::shard::TriadPair*>(
                          patterns.triad_pairs.data()),
                      patterns.triad_pairs.size()};

  train::ShardedStoreOptions options;
  options.dir = FreshDir("dd_shard_fill");
  options.num_shards = 3;
  util::Rng store_rng(17);
  auto created = train::ShardedStore::Create(options, init, store_rng,
                                             -0.125f, 0.125f);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  ml::Matrix reference(idx.num_arcs(), config.dimensions);
  util::Rng matrix_rng(17);
  reference.FillUniform(matrix_rng, -0.125f, 0.125f);
  for (size_t e = 0; e < idx.num_arcs(); ++e) {
    const auto row = created.value()->EmbRow(e);
    for (size_t j = 0; j < row.size(); ++j) {
      ASSERT_EQ(row[j], reference.Row(e)[j])
          << "fill order diverges at arc " << e << " dim " << j;
    }
  }
}

}  // namespace
}  // namespace deepdirect::core
