// Kernel-layer tests: dispatch mode switching, the sigmoid LUT error
// bound, bit-identity of the scalar dispatch path against the historical
// per-trainer arithmetic, and scalar-vs-SIMD tolerance sweeps over odd
// lengths, unaligned spans, and denormal inputs.

#include "kernels/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "data/generators.h"
#include "embedding/random_walks.h"
#include "embedding/skipgram.h"
#include "ml/matrix.h"
#include "train/hogwild.h"
#include "util/random.h"

namespace deepdirect::kernels {
namespace {

using train::HogwildAccess;
using train::SerialAccess;

// Restores the dispatch mode after each test so ordering cannot leak.
class KernelsTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = CurrentMode(); }
  void TearDown() override { SetMode(saved_); }

 private:
  Mode saved_;
};

std::vector<float> RandomRow(util::Rng& rng, size_t n) {
  std::vector<float> out(n);
  for (float& v : out) {
    v = static_cast<float>(rng.NextDoubleIn(-1.0, 1.0));
  }
  return out;
}

std::vector<double> RandomRowD(util::Rng& rng, size_t n) {
  std::vector<double> out(n);
  for (double& v : out) v = rng.NextDoubleIn(-1.0, 1.0);
  return out;
}

// Lengths chosen to cover empty, sub-vector tails, exact vector widths
// (4, 8), and everything in between for both SSE2 and AVX2 lane counts.
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64};

// ------------------------------------------------------------- dispatch

TEST_F(KernelsTest, SetModeParsesKnownNamesAndRejectsOthers) {
  EXPECT_TRUE(SetMode("scalar"));
  EXPECT_EQ(CurrentMode(), Mode::kScalar);
  EXPECT_FALSE(SimdEnabled());
  EXPECT_STREQ(ActivePathName(), "scalar");

  EXPECT_TRUE(SetMode("simd"));
  EXPECT_EQ(CurrentMode(), Mode::kSimd);
  EXPECT_TRUE(SimdEnabled());
  EXPECT_STREQ(ActivePathName(), SimdIsaName());

  EXPECT_TRUE(SetMode("auto"));
  EXPECT_EQ(CurrentMode(), Mode::kAuto);

  EXPECT_FALSE(SetMode("avx512"));
  EXPECT_FALSE(SetMode(""));
  EXPECT_EQ(CurrentMode(), Mode::kAuto) << "failed parse must not change mode";
}

TEST_F(KernelsTest, SerialPolicyAlwaysAdmitsVectorization) {
  EXPECT_TRUE(VectorizedPath<SerialAccess>());
#if defined(__SANITIZE_THREAD__)
  EXPECT_FALSE(VectorizedPath<HogwildAccess>());
#else
  EXPECT_TRUE(VectorizedPath<HogwildAccess>());
#endif
}

// ---------------------------------------------------------- sigmoid LUT

TEST_F(KernelsTest, SigmoidLutStaysWithinDocumentedErrorBound) {
  double max_err = 0.0;
  for (double x = -8.0; x <= 8.0; x += 1e-3) {
    max_err = std::max(max_err, std::fabs(SigmoidLut(x) - Sigmoid(x)));
  }
  EXPECT_LE(max_err, kSigmoidLutMaxError);
}

TEST_F(KernelsTest, SigmoidLutMatchesClampAtExtremes) {
  EXPECT_NEAR(SigmoidLut(1000.0), Sigmoid(6.0), kSigmoidLutMaxError);
  EXPECT_NEAR(SigmoidLut(-1000.0), Sigmoid(-6.0), kSigmoidLutMaxError);
  EXPECT_NEAR(SigmoidLut(std::numeric_limits<double>::infinity()),
              Sigmoid(6.0), kSigmoidLutMaxError);
  EXPECT_NEAR(SigmoidLut(-std::numeric_limits<double>::infinity()),
              Sigmoid(-6.0), kSigmoidLutMaxError);
  EXPECT_TRUE(std::isnan(SigmoidLut(std::nan(""))));
}

// ---------------------------- scalar dispatch == historical arithmetic
//
// Each case replays the pre-refactor trainer loop verbatim (policy loads,
// double accumulation, sigmoid, float rounding in the original order) and
// requires the kernel under scalar dispatch to match it bit-for-bit. This
// is the contract that keeps the nt=1 resume goldens valid.

TEST_F(KernelsTest, ScalarNegSamplingUpdateMatchesEStepBitForBit) {
  SetMode(Mode::kScalar);
  util::Rng rng(7);
  for (size_t n : kLengths) {
    for (double label : {1.0, 0.0}) {
      const double lr = 0.025;
      const std::vector<float> src = RandomRow(rng, n);
      std::vector<float> dst = RandomRow(rng, n);
      std::vector<float> dst_ref = dst;
      std::vector<double> grad(n, 0.125);
      std::vector<double> grad_ref = grad;

      // Historical E-step: g = σ(score) − y; grad += g·dst; then
      // AddScaled(dst, −lr·g, src).
      double score_ref = 0.0;
      for (size_t k = 0; k < n; ++k) {
        score_ref += static_cast<double>(src[k]) *
                     static_cast<double>(dst_ref[k]);
      }
      const double g = label == 1.0 ? ml::Sigmoid(score_ref) - 1.0
                                    : ml::Sigmoid(score_ref);
      for (size_t k = 0; k < n; ++k) {
        grad_ref[k] += g * static_cast<double>(dst_ref[k]);
      }
      const double alpha = -lr * g;
      for (size_t k = 0; k < n; ++k) {
        dst_ref[k] +=
            static_cast<float>(alpha * static_cast<double>(src[k]));
      }

      const double score = NegSamplingUpdate<SerialAccess>(
          grad, src, dst, label, /*grad_scale=*/1.0, /*update_scale=*/-lr);
      EXPECT_EQ(score, score_ref);
      for (size_t k = 0; k < n; ++k) {
        EXPECT_EQ(dst[k], dst_ref[k]) << "n=" << n << " k=" << k;
        EXPECT_EQ(grad[k], grad_ref[k]) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST_F(KernelsTest, ScalarNegSamplingUpdateMatchesSkipGramBitForBit) {
  SetMode(Mode::kScalar);
  util::Rng rng(8);
  for (size_t n : kLengths) {
    for (double label : {1.0, 0.0}) {
      const double lr = 0.05;
      const std::vector<float> center = RandomRow(rng, n);
      std::vector<float> ctx = RandomRow(rng, n);
      std::vector<float> ctx_ref = ctx;
      std::vector<double> grad(n, 0.0);
      std::vector<double> grad_ref(n, 0.0);

      // Historical skip-gram: g = (1−σ)·lr for the positive pair and
      // −σ·lr for negatives; grad += g·ctx; ctx += float(g·center).
      double score_ref = 0.0;
      for (size_t k = 0; k < n; ++k) {
        score_ref += static_cast<double>(center[k]) *
                     static_cast<double>(ctx_ref[k]);
      }
      const double g = label == 1.0 ? (1.0 - ml::Sigmoid(score_ref)) * lr
                                    : -ml::Sigmoid(score_ref) * lr;
      for (size_t k = 0; k < n; ++k) {
        grad_ref[k] += g * static_cast<double>(ctx_ref[k]);
        ctx_ref[k] +=
            static_cast<float>(g * static_cast<double>(center[k]));
      }

      NegSamplingUpdate<SerialAccess>(grad, center, ctx, label,
                                      /*grad_scale=*/-lr,
                                      /*update_scale=*/1.0);
      for (size_t k = 0; k < n; ++k) {
        EXPECT_EQ(ctx[k], ctx_ref[k]) << "n=" << n << " k=" << k;
        EXPECT_EQ(grad[k], grad_ref[k]) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST_F(KernelsTest, ScalarNegSamplingUpdateMatchesLineBitForBit) {
  SetMode(Mode::kScalar);
  util::Rng rng(9);
  for (size_t n : kLengths) {
    for (double label : {1.0, 0.0}) {
      const double lr = 0.02;
      const std::vector<float> src = RandomRow(rng, n);
      std::vector<float> tgt = RandomRow(rng, n);
      std::vector<float> tgt_ref = tgt;
      std::vector<double> grad(n, -0.5);
      std::vector<double> grad_ref = grad;

      // Historical LINE: g = (label − σ)·lr.
      double score_ref = 0.0;
      for (size_t k = 0; k < n; ++k) {
        score_ref += static_cast<double>(src[k]) *
                     static_cast<double>(tgt_ref[k]);
      }
      const double g = (label - ml::Sigmoid(score_ref)) * lr;
      for (size_t k = 0; k < n; ++k) {
        grad_ref[k] += g * static_cast<double>(tgt_ref[k]);
        tgt_ref[k] += static_cast<float>(g * static_cast<double>(src[k]));
      }

      NegSamplingUpdate<SerialAccess>(grad, src, tgt, label,
                                      /*grad_scale=*/-lr,
                                      /*update_scale=*/1.0);
      for (size_t k = 0; k < n; ++k) {
        EXPECT_EQ(tgt[k], tgt_ref[k]) << "n=" << n << " k=" << k;
        EXPECT_EQ(grad[k], grad_ref[k]) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST_F(KernelsTest, ScalarClassifierAndApplyKernelsMatchEStepBitForBit) {
  SetMode(Mode::kScalar);
  util::Rng rng(10);
  const double lr = 0.03, l2 = 1e-4, g_b = 0.37;
  for (size_t n : kLengths) {
    const std::vector<float> m_e = RandomRow(rng, n);
    std::vector<double> w = RandomRowD(rng, n);
    std::vector<double> w_ref = w;
    std::vector<double> grad(n, 0.25);
    std::vector<double> grad_ref = grad;

    // Historical coupled classifier update.
    for (size_t k = 0; k < n; ++k) {
      const double wk = w_ref[k];
      grad_ref[k] += g_b * wk;
      w_ref[k] = wk - lr * (g_b * static_cast<double>(m_e[k]) + l2 * wk);
    }
    ClassifierUpdate<SerialAccess>(grad, w, m_e, g_b, lr, l2);
    for (size_t k = 0; k < n; ++k) {
      EXPECT_EQ(w[k], w_ref[k]);
      EXPECT_EQ(grad[k], grad_ref[k]);
    }

    // Historical final apply with row decay.
    std::vector<float> row = RandomRow(rng, n);
    std::vector<float> row_ref = row;
    for (size_t k = 0; k < n; ++k) {
      const float mk = row_ref[k];
      row_ref[k] = mk - static_cast<float>(
                            lr * (grad[k] + l2 * static_cast<double>(mk)));
    }
    ApplyGradDecay<SerialAccess>(row, grad, lr, l2);
    for (size_t k = 0; k < n; ++k) EXPECT_EQ(row[k], row_ref[k]);
  }
}

TEST_F(KernelsTest, ScalarDotAndLogRegKernelsMatchDStepBitForBit) {
  SetMode(Mode::kScalar);
  util::Rng rng(11);
  const double lr = 0.1, l2 = 1e-3, g = -0.42, bias = 0.6;
  for (size_t n : kLengths) {
    const std::vector<double> x = RandomRowD(rng, n);
    std::vector<double> w = RandomRowD(rng, n);
    std::vector<double> w_ref = w;

    double score_ref = bias;
    for (size_t j = 0; j < n; ++j) score_ref += w_ref[j] * x[j];
    EXPECT_EQ(DotWeights<SerialAccess>(bias, w, x), score_ref);

    for (size_t j = 0; j < n; ++j) {
      const double wj = w_ref[j];
      w_ref[j] = wj - lr * (g * x[j] + l2 * wj);
    }
    LogRegUpdate<SerialAccess>(w, x, lr, g, l2);
    for (size_t j = 0; j < n; ++j) EXPECT_EQ(w[j], w_ref[j]);

    // Classifier score kernels against the historical mixed-precision
    // loops.
    const std::vector<float> m1 = RandomRow(rng, n);
    const std::vector<float> m2 = RandomRow(rng, n);
    double s1_ref = bias, s2_ref = bias;
    for (size_t k = 0; k < n; ++k) {
      s1_ref += w[k] * static_cast<double>(m1[k]);
      s2_ref += w[k] * static_cast<double>(m2[k]);
    }
    EXPECT_EQ(DotF64F32<SerialAccess>(bias, w, m1), s1_ref);
    double s1 = 0.0, s2 = 0.0;
    DotPairF64F32<SerialAccess>(bias, w, m1, m2, &s1, &s2);
    EXPECT_EQ(s1, s1_ref);
    EXPECT_EQ(s2, s2_ref);
  }
}

TEST_F(KernelsTest, PoliciesAgreeBitForBitInScalarMode) {
  SetMode(Mode::kScalar);
  util::Rng rng(12);
  const std::vector<float> src = RandomRow(rng, 17);
  std::vector<float> d1 = RandomRow(rng, 17);
  std::vector<float> d2 = d1;
  std::vector<double> g1(17, 0.0), g2(17, 0.0);
  const double s1 = NegSamplingUpdate<SerialAccess>(g1, src, d1, 1.0, 1.0,
                                                    -0.025);
  const double s2 = NegSamplingUpdate<HogwildAccess>(g2, src, d2, 1.0, 1.0,
                                                     -0.025);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(g1, g2);
}

// ------------------------------------------ scalar vs SIMD tolerance
//
// The SIMD path reorders accumulation, uses FMA, and routes sigmoid
// through the LUT, so it is tolerance-equal, never bit-equal. Sweeps run
// over every length (vector widths, tails, empty), on spans deliberately
// misaligned by one float, and over denormal inputs.

// One float past any vector alignment: data() + 1 is 4-byte aligned only.
std::span<float> Unaligned(std::vector<float>& buf) {
  return std::span<float>(buf).subspan(1);
}

TEST_F(KernelsTest, SimdDotRowsMatchesScalarWithinTolerance) {
  util::Rng rng(13);
  for (size_t n : kLengths) {
    std::vector<float> a_buf = RandomRow(rng, n + 1);
    std::vector<float> b_buf = RandomRow(rng, n + 1);
    const auto a = Unaligned(a_buf);
    const auto b = Unaligned(b_buf);
    SetMode(Mode::kScalar);
    const double scalar = DotRows<SerialAccess>(a, b);
    SetMode(Mode::kSimd);
    const double simd = DotRows<SerialAccess>(a, b);
    // float×float widened to double is exact; only the double summation
    // order differs between the paths.
    EXPECT_NEAR(simd, scalar, 1e-12) << "n=" << n;
  }
}

TEST_F(KernelsTest, SimdNegSamplingUpdateMatchesScalarWithinTolerance) {
  util::Rng rng(14);
  for (size_t n : kLengths) {
    for (double label : {1.0, 0.0}) {
      std::vector<float> src_buf = RandomRow(rng, n + 1);
      std::vector<float> dst_buf = RandomRow(rng, n + 1);
      std::vector<float> dst2_buf = dst_buf;
      const auto src = Unaligned(src_buf);
      std::vector<double> g1(n, 0.0), g2(n, 0.0);

      SetMode(Mode::kScalar);
      const double s1 = NegSamplingUpdate<SerialAccess>(
          g1, src, Unaligned(dst_buf), label, 1.0, -0.025);
      SetMode(Mode::kSimd);
      const double s2 = NegSamplingUpdate<SerialAccess>(
          g2, src, Unaligned(dst2_buf), label, 1.0, -0.025);

      EXPECT_NEAR(s2, s1, 1e-12);
      for (size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(dst2_buf[k + 1], dst_buf[k + 1], 1e-5) << "n=" << n;
        EXPECT_NEAR(g2[k], g1[k], 1e-5) << "n=" << n;
      }
    }
  }
}

TEST_F(KernelsTest, SimdRemainingKernelsMatchScalarWithinTolerance) {
  util::Rng rng(15);
  const double lr = 0.03, l2 = 1e-4, g_b = 0.37, bias = -0.2;
  for (size_t n : kLengths) {
    const std::vector<float> x = RandomRow(rng, n);
    const std::vector<double> xd = RandomRowD(rng, n);
    const std::vector<double> grad = RandomRowD(rng, n);
    std::vector<double> w = RandomRowD(rng, n);
    std::vector<float> row = RandomRow(rng, n);
    std::vector<double> w2 = w;
    std::vector<float> row2 = row;
    std::vector<double> cg1(n, 0.1), cg2(n, 0.1);

    SetMode(Mode::kScalar);
    std::vector<float> ax1 = row;
    AxpyRows<SerialAccess>(ax1, 0.7, x);
    const double dw1 = DotWeights<SerialAccess>(bias, w, xd);
    const double df1 = DotF64F32<SerialAccess>(bias, w, x);
    ClassifierUpdate<SerialAccess>(cg1, w, x, g_b, lr, l2);
    ApplyGradDecay<SerialAccess>(row, grad, lr, l2);
    LogRegUpdate<SerialAccess>(w, xd, lr, g_b, l2);

    SetMode(Mode::kSimd);
    std::vector<float> ax2 = row2;
    AxpyRows<SerialAccess>(ax2, 0.7, x);
    const double dw2 = DotWeights<SerialAccess>(bias, w2, xd);
    const double df2 = DotF64F32<SerialAccess>(bias, w2, x);
    ClassifierUpdate<SerialAccess>(cg2, w2, x, g_b, lr, l2);
    ApplyGradDecay<SerialAccess>(row2, grad, lr, l2);
    LogRegUpdate<SerialAccess>(w2, xd, lr, g_b, l2);

    EXPECT_NEAR(dw2, dw1, 1e-12) << "n=" << n;
    EXPECT_NEAR(df2, df1, 1e-12) << "n=" << n;
    for (size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(ax2[k], ax1[k], 1e-6) << "n=" << n;
      EXPECT_NEAR(w2[k], w[k], 1e-12) << "n=" << n;
      EXPECT_NEAR(cg2[k], cg1[k], 1e-12) << "n=" << n;
      EXPECT_NEAR(row2[k], row[k], 1e-6) << "n=" << n;
    }
  }
}

TEST_F(KernelsTest, SimdKernelsHandleDenormalInputs) {
  // Denormal floats (< ~1.2e-38) must flow through the widen/narrow
  // conversions without traps or NaNs on both paths.
  const size_t n = 13;
  std::vector<float> src(n, 1e-41f);
  std::vector<float> d1(n, 1e-40f), d2(n, 1e-40f);
  std::vector<double> g1(n, 0.0), g2(n, 0.0);
  SetMode(Mode::kScalar);
  const double s1 = NegSamplingUpdate<SerialAccess>(g1, src, d1, 1.0, 1.0,
                                                    -0.025);
  SetMode(Mode::kSimd);
  const double s2 = NegSamplingUpdate<SerialAccess>(g2, src, d2, 1.0, 1.0,
                                                    -0.025);
  EXPECT_TRUE(std::isfinite(s1));
  EXPECT_TRUE(std::isfinite(s2));
  for (size_t k = 0; k < n; ++k) {
    EXPECT_TRUE(std::isfinite(d1[k]));
    EXPECT_TRUE(std::isfinite(d2[k]));
    EXPECT_NEAR(d2[k], d1[k], 1e-6);
  }
}

// ------------------------------------- trainer-level determinism at nt=1
//
// Scalar dispatch must make a full trainer run reproducible: two
// identical nt=1 skip-gram runs under DD_KERNELS=scalar give bit-equal
// embeddings (the same property the PR 5 resume goldens pin through the
// checkpoint path, here pinned directly against dispatch).

TEST_F(KernelsTest, ScalarDispatchTrainerRunsAreBitIdentical) {
  const auto RunOnce = [] {
    data::GeneratorConfig net_config;
    net_config.num_nodes = 40;
    net_config.ties_per_node = 3.0;
    net_config.seed = 21;
    const auto net = data::GenerateStatusNetwork(net_config);
    embedding::WalkConfig walk_config;
    walk_config.walks_per_node = 3;
    walk_config.walk_length = 8;
    const auto corpus = embedding::GenerateWalks(net, walk_config);
    embedding::SkipGramConfig config;
    config.dimensions = 8;
    config.epochs = 3;
    return embedding::TrainSkipGram(corpus, net.num_nodes(), config);
  };
  SetMode(Mode::kScalar);
  const auto first = RunOnce();
  const auto second = RunOnce();
  ASSERT_EQ(first.data().size(), second.data().size());
  for (size_t i = 0; i < first.data().size(); ++i) {
    EXPECT_EQ(first.data()[i], second.data()[i]) << "i=" << i;
  }
}

}  // namespace
}  // namespace deepdirect::kernels
