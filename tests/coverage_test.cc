// Cross-cutting coverage: behaviours exercised nowhere else — metric
// invariances, generator bias properties, config-bundle defaults, and
// assorted edge cases.

#include <gtest/gtest.h>

#include <cmath>

#include "core/grid_search.h"
#include "core/models.h"
#include "data/generators.h"
#include "graph/algorithms.h"
#include "graph/spring_rank.h"
#include "ml/autoencoder.h"
#include "ml/metrics.h"
#include "ml/tsne.h"
#include "util/random.h"

namespace deepdirect {
namespace {

using graph::GraphBuilder;
using graph::MixedSocialNetwork;
using graph::NodeId;
using graph::TieType;

TEST(MetricsInvarianceTest, AucInvariantUnderMonotoneTransforms) {
  util::Rng rng(3);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(rng.NextDouble());
    labels.push_back(rng.NextBool(0.4) ? 1 : 0);
  }
  const double base = ml::AreaUnderRoc(scores, labels);
  std::vector<double> squashed(scores.size()), shifted(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    squashed[i] = 1.0 / (1.0 + std::exp(-5.0 * scores[i]));
    shifted[i] = 100.0 * scores[i] - 7.0;
  }
  EXPECT_DOUBLE_EQ(ml::AreaUnderRoc(squashed, labels), base);
  EXPECT_DOUBLE_EQ(ml::AreaUnderRoc(shifted, labels), base);
}

TEST(MetricsInvarianceTest, AucComplementsUnderLabelFlip) {
  const std::vector<double> scores{0.1, 0.7, 0.4, 0.9, 0.2};
  const std::vector<int> labels{0, 1, 0, 1, 1};
  std::vector<int> flipped;
  for (int y : labels) flipped.push_back(1 - y);
  EXPECT_NEAR(ml::AreaUnderRoc(scores, labels) +
                  ml::AreaUnderRoc(scores, flipped),
              1.0, 1e-12);
}

TEST(TsnePerplexityTest, RealizedEntropyMatchesTarget) {
  // The per-point bandwidth search must hit the requested perplexity
  // (entropy = log perplexity) on a generic distance matrix.
  util::Rng rng(5);
  const size_t n = 30;
  ml::Matrix points(n, 4);
  points.FillUniform(rng, -1.0f, 1.0f);
  std::vector<double> d2(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < 4; ++k) {
        const double delta = points.At(i, k) - points.At(j, k);
        acc += delta * delta;
      }
      d2[i * n + j] = acc;
    }
  }
  const double perplexity = 8.0;
  const auto joint = ml::TsneJointProbabilities(d2, n, perplexity);
  // Row entropies of the re-conditioned joint won't be exact, but the
  // effective neighborhood size must be in the right ballpark for most
  // points: 2^H(row) within [perplexity/2, perplexity*2].
  size_t in_range = 0;
  for (size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < n; ++j) row_sum += joint[i * n + j];
    double entropy = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const double p = joint[i * n + j] / row_sum;
      if (p > 1e-15) entropy -= p * std::log2(p);
    }
    const double effective = std::pow(2.0, entropy);
    if (effective > perplexity / 2 && effective < perplexity * 2) {
      ++in_range;
    }
  }
  EXPECT_GT(in_range, n * 3 / 4);
}

TEST(GeneratorBiasTest, DirectedClosureBiasPointsUpStatus) {
  // With high bias, the triadic-closure candidate filter prefers
  // status-increasing hops; the resulting network must show more
  // "low-to-high status" wedges than an unbiased one.
  auto wedge_up_rate = [](double bias) {
    data::GeneratorConfig config;
    config.num_nodes = 500;
    config.ties_per_node = 5.0;
    config.triangle_closure_prob = 0.5;
    config.directed_closure_bias = bias;
    config.direction_noise = 0.0;
    config.seed = 7;
    const auto net = data::GenerateStatusNetwork(config);
    const auto status = data::GeneratorStatuses(config);
    // Over closed triangles, count wedges whose apex has middling status.
    size_t up = 0, total = 0;
    for (NodeId u = 0; u < net.num_nodes(); ++u) {
      for (NodeId v : net.UndirectedNeighbors(u)) {
        if (v <= u) continue;
        for (NodeId w : net.CommonNeighbors(u, v)) {
          if (w <= v) continue;
          // Triangle {u, v, w}: monotone status chains count as "up".
          double lo = std::min({status[u], status[v], status[w]});
          double hi = std::max({status[u], status[v], status[w]});
          up += (hi - lo) > 0.4;
          ++total;
        }
      }
    }
    return total == 0 ? 0.0 : static_cast<double>(up) / total;
  };
  // Higher bias stretches triangles across the status range.
  EXPECT_GT(wedge_up_rate(0.95), wedge_up_rate(0.5) - 0.05);
}

TEST(ModelFactoryTest, PaperDefaultsShapes) {
  const auto configs = core::MethodConfigs::PaperDefaults();
  EXPECT_EQ(configs.deepdirect.dimensions, 128u);
  EXPECT_EQ(configs.deepdirect.negative_samples, 5u);
  EXPECT_DOUBLE_EQ(configs.deepdirect.epochs, 10.0);
  // LINE gets half of DeepDirect's l so the concatenated tie vector
  // matches (Sec. 6.1).
  EXPECT_EQ(configs.line.line.dimensions, 64u);
  EXPECT_EQ(configs.redirect_n.dimensions, 40u);
}

TEST(DegreesTest, BidirectionalNetworkInOutEqual) {
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddTie(0, 1, TieType::kBidirectional).ok());
  ASSERT_TRUE(builder.AddTie(1, 2, TieType::kBidirectional).ok());
  ASSERT_TRUE(builder.AddTie(2, 3, TieType::kBidirectional).ok());
  const auto net = std::move(builder).Build();
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(net.DegOut(u), net.DegIn(u));
    EXPECT_DOUBLE_EQ(net.Deg(u), 2.0 * net.UndirectedDegree(u));
  }
}

TEST(HideDirectionsTest, DeterministicForSeed) {
  data::GeneratorConfig gen;
  gen.num_nodes = 200;
  gen.seed = 11;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng_a(13), rng_b(13);
  const auto a = graph::HideDirections(net, 0.4, rng_a);
  const auto b = graph::HideDirections(net, 0.4, rng_b);
  ASSERT_EQ(a.hidden_true_arcs.size(), b.hidden_true_arcs.size());
  for (size_t i = 0; i < a.hidden_true_arcs.size(); ++i) {
    EXPECT_EQ(a.hidden_true_arcs[i], b.hidden_true_arcs[i]);
  }
}

TEST(SpringRankAlphaTest, LargerRidgeShrinksScores) {
  std::vector<std::pair<NodeId, NodeId>> arcs{{0, 1}, {1, 2}, {2, 3},
                                              {0, 2}, {1, 3}};
  graph::SpringRankConfig weak, strong;
  weak.alpha = 0.01;
  strong.alpha = 10.0;
  const auto s_weak = graph::SolveSpringSystem(4, arcs, weak);
  const auto s_strong = graph::SolveSpringSystem(4, arcs, strong);
  double norm_weak = 0.0, norm_strong = 0.0;
  for (double v : s_weak) norm_weak += v * v;
  for (double v : s_strong) norm_strong += v * v;
  EXPECT_GT(norm_weak, norm_strong * 4.0);
}

TEST(AutoencoderEdgeCaseTest, EmptyTrainingSetIsNoop) {
  ml::AutoencoderConfig config;
  config.encoder_dims = {3};
  ml::Autoencoder autoencoder(5, config);
  EXPECT_DOUBLE_EQ(autoencoder.Train({}, config), 0.0);
}

TEST(GridSearchShapeTest, CellsAreRowMajorOverAlphaBeta) {
  data::GeneratorConfig gen;
  gen.num_nodes = 150;
  gen.seed = 17;
  const auto net = data::GenerateStatusNetwork(gen);
  core::GridSearchConfig config;
  config.alphas = {0.0, 2.0};
  config.betas = {0.5, 1.5};
  config.base.dimensions = 8;
  config.base.epochs = 1.0;
  const auto result = core::GridSearchDeepDirect(net, config);
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_DOUBLE_EQ(result.cells[0].alpha, 0.0);
  EXPECT_DOUBLE_EQ(result.cells[0].beta, 0.5);
  EXPECT_DOUBLE_EQ(result.cells[1].alpha, 0.0);
  EXPECT_DOUBLE_EQ(result.cells[1].beta, 1.5);
  EXPECT_DOUBLE_EQ(result.cells[3].alpha, 2.0);
  EXPECT_DOUBLE_EQ(result.cells[3].beta, 1.5);
}

TEST(BfsSampleTest, DeterministicAndNested) {
  data::GeneratorConfig gen;
  gen.num_nodes = 300;
  gen.seed = 19;
  const auto net = data::GenerateStatusNetwork(gen);
  const auto small = graph::BfsSample(net, 0, 50);
  const auto large = graph::BfsSample(net, 0, 150);
  EXPECT_EQ(small.num_nodes(), 50u);
  EXPECT_EQ(large.num_nodes(), 150u);
  // BFS from the same seed: the smaller sample's tie count cannot exceed
  // the larger's.
  EXPECT_LE(small.num_ties(), large.num_ties());
}

}  // namespace
}  // namespace deepdirect
