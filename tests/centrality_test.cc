// Unit tests for closeness and betweenness centrality (exact and sampled).

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "graph/centrality.h"

namespace deepdirect::graph {
namespace {

// Path 0-1-2-3.
MixedSocialNetwork PathFour() {
  GraphBuilder builder(4);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kUndirected).ok());
  EXPECT_TRUE(builder.AddTie(1, 2, TieType::kUndirected).ok());
  EXPECT_TRUE(builder.AddTie(2, 3, TieType::kUndirected).ok());
  return std::move(builder).Build();
}

// Star with center 0 and 5 leaves.
MixedSocialNetwork Star() {
  GraphBuilder builder(6);
  for (NodeId leaf = 1; leaf <= 5; ++leaf) {
    EXPECT_TRUE(builder.AddTie(0, leaf, TieType::kDirected).ok());
  }
  return std::move(builder).Build();
}

TEST(ClosenessTest, PathGraphExactValues) {
  const auto cc = ClosenessCentralityExact(PathFour());
  EXPECT_NEAR(cc[0], 1.0 / 6.0, 1e-12);  // distances 1+2+3
  EXPECT_NEAR(cc[1], 1.0 / 4.0, 1e-12);  // 1+1+2
  EXPECT_NEAR(cc[2], 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(cc[3], 1.0 / 6.0, 1e-12);
}

TEST(ClosenessTest, StarCenterHighest) {
  const auto cc = ClosenessCentralityExact(Star());
  EXPECT_NEAR(cc[0], 1.0 / 5.0, 1e-12);   // 5 leaves at distance 1
  EXPECT_NEAR(cc[1], 1.0 / 9.0, 1e-12);   // 1 + 4*2
  for (NodeId leaf = 1; leaf <= 5; ++leaf) EXPECT_LT(cc[leaf], cc[0]);
}

TEST(ClosenessTest, IsolatedNodeGetsZero) {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kUndirected).ok());
  const auto net = std::move(builder).Build();
  const auto cc = ClosenessCentralityExact(net);
  EXPECT_DOUBLE_EQ(cc[2], 0.0);
  EXPECT_GT(cc[0], 0.0);
}

TEST(ClosenessTest, SampledWithAllPivotsEqualsExact) {
  const auto net = PathFour();
  util::Rng rng(3);
  const auto exact = ClosenessCentralityExact(net);
  const auto sampled = ClosenessCentralitySampled(net, 4, rng);
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(sampled[i], exact[i], 1e-12);
  }
}

TEST(ClosenessTest, SampledCorrelatesWithExact) {
  data::GeneratorConfig config;
  config.num_nodes = 250;
  config.ties_per_node = 4.0;
  config.seed = 5;
  const auto net = data::GenerateStatusNetwork(config);
  util::Rng rng(7);
  const auto exact = ClosenessCentralityExact(net);
  const auto sampled = ClosenessCentralitySampled(net, 64, rng);

  // Pearson correlation between exact and sampled values.
  double mean_e = 0, mean_s = 0;
  const size_t n = exact.size();
  for (size_t i = 0; i < n; ++i) {
    mean_e += exact[i];
    mean_s += sampled[i];
  }
  mean_e /= n;
  mean_s /= n;
  double cov = 0, var_e = 0, var_s = 0;
  for (size_t i = 0; i < n; ++i) {
    cov += (exact[i] - mean_e) * (sampled[i] - mean_s);
    var_e += (exact[i] - mean_e) * (exact[i] - mean_e);
    var_s += (sampled[i] - mean_s) * (sampled[i] - mean_s);
  }
  const double correlation = cov / std::sqrt(var_e * var_s);
  EXPECT_GT(correlation, 0.9);
}

TEST(BetweennessTest, PathGraphExactValues) {
  const auto bc = BetweennessCentralityExact(PathFour());
  // Ordered-pair convention (Eq. 4 counts (i,j) and (j,i) separately):
  // node 1 lies on the shortest paths of (0,2),(2,0),(0,3),(3,0).
  EXPECT_NEAR(bc[0], 0.0, 1e-12);
  EXPECT_NEAR(bc[1], 4.0, 1e-12);
  EXPECT_NEAR(bc[2], 4.0, 1e-12);
  EXPECT_NEAR(bc[3], 0.0, 1e-12);
}

TEST(BetweennessTest, StarCenter) {
  const auto bc = BetweennessCentralityExact(Star());
  // 5 leaves: 5*4 = 20 ordered leaf pairs all route through the center.
  EXPECT_NEAR(bc[0], 20.0, 1e-12);
  for (NodeId leaf = 1; leaf <= 5; ++leaf) EXPECT_NEAR(bc[leaf], 0.0, 1e-12);
}

TEST(BetweennessTest, TriangleHasNoBetweenness) {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kUndirected).ok());
  EXPECT_TRUE(builder.AddTie(1, 2, TieType::kUndirected).ok());
  EXPECT_TRUE(builder.AddTie(0, 2, TieType::kUndirected).ok());
  const auto bc = BetweennessCentralityExact(std::move(builder).Build());
  for (double v : bc) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(BetweennessTest, ShortestPathMultiplicityWeighting) {
  // Square 0-1-2-3-0: for the pair (0,2) there are two shortest paths (via
  // 1 and via 3), so each middle node gets dependency 1/2 per direction.
  GraphBuilder builder(4);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kUndirected).ok());
  EXPECT_TRUE(builder.AddTie(1, 2, TieType::kUndirected).ok());
  EXPECT_TRUE(builder.AddTie(2, 3, TieType::kUndirected).ok());
  EXPECT_TRUE(builder.AddTie(3, 0, TieType::kUndirected).ok());
  const auto bc = BetweennessCentralityExact(std::move(builder).Build());
  for (double v : bc) EXPECT_NEAR(v, 1.0, 1e-12);  // 2 directions * 1/2
}

TEST(BetweennessTest, SampledWithAllPivotsEqualsExact) {
  const auto net = Star();
  util::Rng rng(11);
  const auto exact = BetweennessCentralityExact(net);
  const auto sampled = BetweennessCentralitySampled(net, 6, rng);
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(sampled[i], exact[i], 1e-9);
  }
}

TEST(BetweennessTest, SampledPreservesRankingOfExtremes) {
  data::GeneratorConfig config;
  config.num_nodes = 250;
  config.ties_per_node = 4.0;
  config.seed = 13;
  const auto net = data::GenerateStatusNetwork(config);
  util::Rng rng(17);
  const auto exact = BetweennessCentralityExact(net);
  const auto sampled = BetweennessCentralitySampled(net, 80, rng);

  // The exact-top node must rank in the sampled top 10%.
  size_t exact_top = 0;
  for (size_t i = 1; i < exact.size(); ++i) {
    if (exact[i] > exact[exact_top]) exact_top = i;
  }
  size_t better = 0;
  for (size_t i = 0; i < sampled.size(); ++i) {
    if (sampled[i] > sampled[exact_top]) ++better;
  }
  EXPECT_LT(better, sampled.size() / 10);
}

// Multi-threaded sweeps must be bit-identical to the serial ones: blocks
// are fixed-size (independent of worker count) and partial accumulators
// reduce in block order, so thread count never changes the arithmetic.
class CentralityDeterminismTest : public ::testing::Test {
 protected:
  static MixedSocialNetwork TestNetwork() {
    data::GeneratorConfig config;
    config.num_nodes = 300;
    config.ties_per_node = 4.0;
    config.bidirectional_fraction = 0.2;
    config.seed = 19;
    return data::GenerateStatusNetwork(config);
  }

  static void ExpectBitIdentical(const std::vector<double>& a,
                                 const std::vector<double>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "node " << i;
    }
  }
};

TEST_F(CentralityDeterminismTest, ClosenessExactMultiThreadedDeterministic) {
  const auto net = TestNetwork();
  ExpectBitIdentical(ClosenessCentralityExact(net, 1),
                     ClosenessCentralityExact(net, 4));
}

TEST_F(CentralityDeterminismTest, ClosenessSampledMultiThreadedDeterministic) {
  const auto net = TestNetwork();
  util::Rng rng_serial(23);
  util::Rng rng_parallel(23);
  ExpectBitIdentical(ClosenessCentralitySampled(net, 48, rng_serial, 1),
                     ClosenessCentralitySampled(net, 48, rng_parallel, 4));
}

TEST_F(CentralityDeterminismTest, BetweennessExactMultiThreadedDeterministic) {
  const auto net = TestNetwork();
  ExpectBitIdentical(BetweennessCentralityExact(net, 1),
                     BetweennessCentralityExact(net, 4));
}

TEST_F(CentralityDeterminismTest,
       BetweennessSampledMultiThreadedDeterministic) {
  const auto net = TestNetwork();
  util::Rng rng_serial(29);
  util::Rng rng_parallel(29);
  ExpectBitIdentical(BetweennessCentralitySampled(net, 48, rng_serial, 1),
                     BetweennessCentralitySampled(net, 48, rng_parallel, 4));
}

TEST_F(CentralityDeterminismTest, ZeroThreadsMeansAllCores) {
  // num_threads = 0 resolves to hardware concurrency and must still match
  // the serial result bit for bit.
  const auto net = TestNetwork();
  ExpectBitIdentical(ClosenessCentralityExact(net, 1),
                     ClosenessCentralityExact(net, 0));
}

}  // namespace
}  // namespace deepdirect::graph
