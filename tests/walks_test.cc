// Tests for random walks, skip-gram, node2vec / DeepWalk embeddings, and
// the node2vec directionality model.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/applications.h"
#include "core/node2vec_model.h"
#include "data/generators.h"
#include "embedding/node2vec.h"
#include "embedding/random_walks.h"
#include "embedding/skipgram.h"
#include "graph/algorithms.h"

namespace deepdirect::embedding {
namespace {

using graph::GraphBuilder;
using graph::MixedSocialNetwork;
using graph::NodeId;
using graph::TieType;

MixedSocialNetwork TwoCliquesWithBridge() {
  GraphBuilder builder(12);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) {
      EXPECT_TRUE(builder.AddTie(u, v, TieType::kBidirectional).ok());
    }
  }
  for (NodeId u = 6; u < 12; ++u) {
    for (NodeId v = u + 1; v < 12; ++v) {
      EXPECT_TRUE(builder.AddTie(u, v, TieType::kBidirectional).ok());
    }
  }
  EXPECT_TRUE(builder.AddTie(0, 6, TieType::kBidirectional).ok());
  return std::move(builder).Build();
}

TEST(RandomWalksTest, CorpusShape) {
  const auto net = TwoCliquesWithBridge();
  WalkConfig config;
  config.walks_per_node = 3;
  config.walk_length = 10;
  const auto corpus = GenerateWalks(net, config);
  EXPECT_EQ(corpus.walks.size(), 3u * net.num_nodes());
  for (const auto& walk : corpus.walks) {
    EXPECT_EQ(walk.size(), 10u);
  }
  EXPECT_EQ(corpus.TotalTokens(), 3u * net.num_nodes() * 10u);
}

TEST(RandomWalksTest, StepsFollowTies) {
  const auto net = TwoCliquesWithBridge();
  WalkConfig config;
  config.walks_per_node = 2;
  config.walk_length = 15;
  const auto corpus = GenerateWalks(net, config);
  for (const auto& walk : corpus.walks) {
    for (size_t i = 1; i < walk.size(); ++i) {
      const auto neighbors = net.UndirectedNeighbors(walk[i - 1]);
      EXPECT_TRUE(std::binary_search(neighbors.begin(), neighbors.end(),
                                     walk[i]))
          << walk[i - 1] << " -> " << walk[i];
    }
  }
}

TEST(RandomWalksTest, IsolatedNodesExcluded) {
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddTie(0, 1, TieType::kUndirected).ok());
  const auto net = std::move(builder).Build();
  const auto corpus = GenerateWalks(net, WalkConfig{});
  for (const auto& walk : corpus.walks) {
    for (NodeId node : walk) EXPECT_LT(node, 2u);
  }
}

TEST(RandomWalksTest, DeterministicForSeed) {
  const auto net = TwoCliquesWithBridge();
  WalkConfig config;
  config.walks_per_node = 2;
  config.seed = 5;
  const auto a = GenerateWalks(net, config);
  const auto b = GenerateWalks(net, config);
  ASSERT_EQ(a.walks.size(), b.walks.size());
  for (size_t i = 0; i < a.walks.size(); ++i) {
    EXPECT_EQ(a.walks[i], b.walks[i]);
  }
}

TEST(RandomWalksTest, ReturnParamControlsBacktracking) {
  // Tiny p => strong return bias => many immediate backtracks; huge p =>
  // few. Compare backtrack rates.
  const auto net = TwoCliquesWithBridge();
  auto backtrack_rate = [&](double p) {
    WalkConfig config;
    config.walks_per_node = 10;
    config.walk_length = 20;
    config.return_param = p;
    config.inout_param = 1.0;
    config.seed = 9;
    const auto corpus = GenerateWalks(net, config);
    size_t backtracks = 0, steps = 0;
    for (const auto& walk : corpus.walks) {
      for (size_t i = 2; i < walk.size(); ++i) {
        backtracks += (walk[i] == walk[i - 2]);
        ++steps;
      }
    }
    return static_cast<double>(backtracks) / steps;
  };
  EXPECT_GT(backtrack_rate(0.05), backtrack_rate(20.0) + 0.1);
}

TEST(SkipGramTest, SeparatesCommunities) {
  const auto net = TwoCliquesWithBridge();
  WalkConfig walk_config;
  walk_config.walks_per_node = 20;
  walk_config.walk_length = 20;
  const auto corpus = GenerateWalks(net, walk_config);
  SkipGramConfig config;
  config.dimensions = 16;
  config.epochs = 3;
  const auto vectors = TrainSkipGram(corpus, net.num_nodes(), config);

  // Cosine similarity within cliques should exceed across-clique.
  auto cosine = [&](NodeId a, NodeId b) {
    const auto ra = vectors.Row(a);
    const auto rb = vectors.Row(b);
    return ml::Dot(ra, rb) / (ml::Norm2(ra) * ml::Norm2(rb) + 1e-12);
  };
  double within = 0.0, across = 0.0;
  int within_count = 0, across_count = 0;
  for (NodeId u = 1; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) {
      within += cosine(u, v);
      ++within_count;
    }
    for (NodeId v = 7; v < 12; ++v) {
      across += cosine(u, v);
      ++across_count;
    }
  }
  EXPECT_GT(within / within_count, across / across_count + 0.2);
}

TEST(SkipGramTest, DeterministicForSeed) {
  // Single-worker training is guaranteed bit-identical across runs.
  const auto net = TwoCliquesWithBridge();
  WalkConfig walk_config;
  walk_config.walks_per_node = 10;
  walk_config.walk_length = 15;
  const auto corpus = GenerateWalks(net, walk_config);
  SkipGramConfig config;
  config.dimensions = 16;
  config.epochs = 2;
  const auto a = TrainSkipGram(corpus, net.num_nodes(), config);
  const auto b = TrainSkipGram(corpus, net.num_nodes(), config);
  const auto& da = a.data();
  const auto& db = b.data();
  ASSERT_EQ(da.size(), db.size());
  for (size_t i = 0; i < da.size(); ++i) EXPECT_EQ(da[i], db[i]);
}

TEST(SkipGramTest, MultiThreadedSeparatesCommunities) {
  // Hogwild training is not bit-reproducible, but the learned structure
  // must match the serial trainer's.
  const auto net = TwoCliquesWithBridge();
  WalkConfig walk_config;
  walk_config.walks_per_node = 20;
  walk_config.walk_length = 20;
  const auto corpus = GenerateWalks(net, walk_config);
  SkipGramConfig config;
  config.dimensions = 16;
  config.epochs = 3;
  config.num_threads = 4;
  const auto vectors = TrainSkipGram(corpus, net.num_nodes(), config);

  auto cosine = [&](NodeId a, NodeId b) {
    const auto ra = vectors.Row(a);
    const auto rb = vectors.Row(b);
    return ml::Dot(ra, rb) / (ml::Norm2(ra) * ml::Norm2(rb) + 1e-12);
  };
  double within = 0.0, across = 0.0;
  int within_count = 0, across_count = 0;
  for (NodeId u = 1; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) {
      within += cosine(u, v);
      ++within_count;
    }
    for (NodeId v = 7; v < 12; ++v) {
      across += cosine(u, v);
      ++across_count;
    }
  }
  EXPECT_GT(within / within_count, across / across_count + 0.2);
}

TEST(Node2vecTest, TrainsWithFiniteVectors) {
  data::GeneratorConfig gen;
  gen.num_nodes = 150;
  gen.ties_per_node = 3.0;
  gen.seed = 3;
  const auto net = data::GenerateStatusNetwork(gen);
  Node2vecConfig config;
  config.walks.walks_per_node = 3;
  config.walks.walk_length = 15;
  config.skipgram.dimensions = 16;
  config.skipgram.epochs = 1;
  const auto embedding = Node2vecEmbedding::Train(net, config);
  EXPECT_EQ(embedding.dimensions(), 16u);
  std::vector<double> vec(16);
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    embedding.NodeVectorAsDouble(u, vec);
    for (double v : vec) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Node2vecTest, DeepWalkPresetIsUniform) {
  const auto config = Node2vecConfig::DeepWalk();
  EXPECT_DOUBLE_EQ(config.walks.return_param, 1.0);
  EXPECT_DOUBLE_EQ(config.walks.inout_param, 1.0);
}

TEST(Node2vecModelTest, BeatsChanceOnEasyNetwork) {
  data::GeneratorConfig gen;
  gen.num_nodes = 400;
  gen.ties_per_node = 4.0;
  gen.direction_noise = 0.05;
  gen.status_noise = 0.1;
  gen.seed = 5;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng(7);
  const auto split = graph::HideDirections(net, 0.3, rng);

  core::Node2vecModelConfig config;
  config.node2vec.walks.walks_per_node = 5;
  config.node2vec.walks.walk_length = 20;
  config.node2vec.skipgram.dimensions = 32;
  config.node2vec.skipgram.epochs = 2;
  const auto model = core::Node2vecModel::Train(split.network, config);
  EXPECT_EQ(model->name(), "node2vec");
  EXPECT_GT(core::DirectionDiscoveryAccuracy(split, *model), 0.58);
}

}  // namespace
}  // namespace deepdirect::embedding
