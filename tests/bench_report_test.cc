// Tests for the structured bench-report writer (bench/bench_report.h):
// schema shape, escaping, measurement ordering, environment capture, and
// the WriteJson IO contract. The JSON is validated with an independent
// parser (json_lint.h) so the hand-rolled writer can't certify itself.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "bench_report.h"
#include "json_lint.h"

namespace deepdirect {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(BenchReportTest, EmptyReportIsValidJsonWithSchemaAndEnvironment) {
  const bench::BenchReport report("empty");
  const std::string json = report.ToJson();
  ASSERT_TRUE(testing::JsonLinter::Valid(json)) << json;
  EXPECT_NE(json.find("\"schema\": \"deepdirect-bench-report\""),
            std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"empty\""), std::string::npos);
  for (const char* key :
       {"\"git_sha\"", "\"build_type\"", "\"compiler\"",
        "\"hardware_threads\"", "\"bench_scale\"", "\"bench_fast\"",
        "\"bench_threads\"", "\"measurements\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(BenchReportTest, MeasurementsKeepInsertionOrderAndLabels) {
  bench::BenchReport report("demo");
  report.Add("train_seconds", "seconds", "lower", 12.5,
             {{"dataset", "twitter"}, {"threads", "4"}});
  report.Add("accuracy", "fraction", "higher", 0.875);
  report.Add(bench::Measurement{"bytes", "bytes", "none", 4096.0, {}});

  EXPECT_EQ(report.bench_name(), "demo");
  ASSERT_EQ(report.measurements().size(), 3u);
  EXPECT_EQ(report.measurements()[0].name, "train_seconds");
  EXPECT_EQ(report.measurements()[2].name, "bytes");

  const std::string json = report.ToJson();
  ASSERT_TRUE(testing::JsonLinter::Valid(json)) << json;
  const size_t first = json.find("\"train_seconds\"");
  const size_t second = json.find("\"accuracy\"");
  const size_t third = json.find("\"bytes\"");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  ASSERT_NE(third, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_LT(second, third);
  EXPECT_NE(json.find("\"better\": \"lower\""), std::string::npos);
  EXPECT_NE(json.find("\"dataset\": \"twitter\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": \"4\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 0.875"), std::string::npos);
}

TEST(BenchReportTest, SpecialCharactersAndNonFiniteValuesStayValidJson) {
  bench::BenchReport report("quo\"te\\bench\n");
  report.Add("nan_metric", "seconds", "lower",
             std::nan(""), {{"la\"bel", "v\\al"}});
  report.Add("inf_metric", "seconds", "lower",
             std::numeric_limits<double>::infinity());
  const std::string json = report.ToJson();
  ASSERT_TRUE(testing::JsonLinter::Valid(json)) << json;
  // Non-finite values are clamped to 0 rather than emitting bare nan/inf.
  EXPECT_EQ(json.find("nan,"), std::string::npos);
  EXPECT_EQ(json.find("inf,"), std::string::npos);
}

TEST(BenchReportTest, EnvironmentReflectsBenchEnvVars) {
  // setenv/getenv in a single-threaded test process is safe.
  setenv("DD_BENCH_SCALE", "0.25", 1);
  setenv("DD_BENCH_FAST", "1", 1);
  setenv("DD_BENCH_THREADS", "3", 1);
  const bench::BenchEnvironment env = bench::BenchEnvironment::Collect();
  unsetenv("DD_BENCH_SCALE");
  unsetenv("DD_BENCH_FAST");
  unsetenv("DD_BENCH_THREADS");

  EXPECT_DOUBLE_EQ(env.bench_scale, 0.25);
  EXPECT_TRUE(env.bench_fast);
  EXPECT_EQ(env.bench_threads, 3u);
  EXPECT_FALSE(env.git_sha.empty());
  EXPECT_FALSE(env.compiler.empty());

  const bench::BenchEnvironment defaults = bench::BenchEnvironment::Collect();
  EXPECT_DOUBLE_EQ(defaults.bench_scale, 1.0);
  EXPECT_FALSE(defaults.bench_fast);
  EXPECT_EQ(defaults.bench_threads, 1u);
}

TEST(BenchReportTest, WriteJsonRoundTripsAndReportsIoErrors) {
  bench::BenchReport report("io");
  report.Add("wall", "seconds", "lower", 1.5);

  const std::string path = TempPath("bench_report_test.json");
  ASSERT_TRUE(report.WriteJson(path).ok());
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), report.ToJson());
  EXPECT_TRUE(testing::JsonLinter::Valid(contents.str()));
  std::remove(path.c_str());

  const auto bad = report.WriteJson("/nonexistent-dir/report.json");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.ToString().find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace deepdirect
