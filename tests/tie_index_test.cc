// Tests for the symmetric-closure TieIndex that underlies DeepDirect's
// embedding rows.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/tie_index.h"
#include "data/generators.h"
#include "graph/line_graph.h"

namespace deepdirect::core {
namespace {

using graph::GraphBuilder;
using graph::MixedSocialNetwork;
using graph::NodeId;
using graph::TieType;

MixedSocialNetwork SmallMixed() {
  // 0 -> 1 directed, 1 - 2 bidirectional, 2 - 3 undirected.
  GraphBuilder builder(4);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(1, 2, TieType::kBidirectional).ok());
  EXPECT_TRUE(builder.AddTie(2, 3, TieType::kUndirected).ok());
  return std::move(builder).Build();
}

TEST(TieIndexTest, ClosureHasTwoArcsPerTie) {
  const auto net = SmallMixed();
  const TieIndex index(net);
  EXPECT_EQ(index.num_arcs(), 2 * net.num_ties());
  EXPECT_EQ(index.num_nodes(), net.num_nodes());
}

TEST(TieIndexTest, ArcClasses) {
  const auto net = SmallMixed();
  const TieIndex index(net);
  EXPECT_EQ(index.Class(index.IndexOf(0, 1)), ArcClass::kLabeledPositive);
  EXPECT_EQ(index.Class(index.IndexOf(1, 0)), ArcClass::kLabeledNegative);
  EXPECT_EQ(index.Class(index.IndexOf(1, 2)), ArcClass::kBidirectional);
  EXPECT_EQ(index.Class(index.IndexOf(2, 1)), ArcClass::kBidirectional);
  EXPECT_EQ(index.Class(index.IndexOf(2, 3)), ArcClass::kUndirected);
  EXPECT_EQ(index.Class(index.IndexOf(3, 2)), ArcClass::kUndirected);
}

TEST(TieIndexTest, LabelsMatchPreprocessing) {
  // Algorithm 1, lines 2–5: (u,v) in E_d gets label 1, the added (v,u)
  // gets label 0.
  const auto net = SmallMixed();
  const TieIndex index(net);
  EXPECT_TRUE(index.IsLabeled(index.IndexOf(0, 1)));
  EXPECT_DOUBLE_EQ(index.Label(index.IndexOf(0, 1)), 1.0);
  EXPECT_DOUBLE_EQ(index.Label(index.IndexOf(1, 0)), 0.0);
  EXPECT_FALSE(index.IsLabeled(index.IndexOf(1, 2)));
  EXPECT_FALSE(index.IsLabeled(index.IndexOf(2, 3)));
}

TEST(TieIndexTest, IndexAndReverseRoundTrip) {
  const auto net = SmallMixed();
  const TieIndex index(net);
  for (size_t e = 0; e < index.num_arcs(); ++e) {
    const auto [u, v] = index.ArcAt(e);
    EXPECT_EQ(index.IndexOf(u, v), e);
    const size_t r = index.ReverseOf(e);
    EXPECT_EQ(index.ArcAt(r), (std::pair<NodeId, NodeId>{v, u}));
    EXPECT_EQ(index.ReverseOf(r), e);
  }
}

TEST(TieIndexTest, TryIndexOfMissingPair) {
  const auto net = SmallMixed();
  const TieIndex index(net);
  EXPECT_EQ(index.TryIndexOf(0, 3), index.num_arcs());
  EXPECT_EQ(index.TryIndexOf(0, 2), index.num_arcs());
}

TEST(TieIndexTest, TieDegreeOverClosure) {
  const auto net = SmallMixed();
  const TieIndex index(net);
  // Arc (0,1): node 1's closure neighbors are {0, 2}; excluding the return
  // arc leaves 1 connected tie.
  EXPECT_EQ(index.TieDegree(index.IndexOf(0, 1)), 1u);
  // Arc (1,2): node 2's neighbors {1, 3}; one connected tie.
  EXPECT_EQ(index.TieDegree(index.IndexOf(1, 2)), 1u);
  // Arc (2,3): node 3's only neighbor is 2; zero connected ties.
  EXPECT_EQ(index.TieDegree(index.IndexOf(2, 3)), 0u);
}

TEST(TieIndexTest, ConnectedPairCountMatchesDegreeSum) {
  data::GeneratorConfig config;
  config.num_nodes = 300;
  config.ties_per_node = 4.0;
  config.seed = 3;
  const auto net = data::GenerateStatusNetwork(config);
  const TieIndex index(net);
  uint64_t total = 0;
  for (size_t e = 0; e < index.num_arcs(); ++e) total += index.TieDegree(e);
  EXPECT_EQ(index.NumConnectedTiePairs(), total);
  EXPECT_GT(total, 0u);
}

TEST(TieIndexTest, SampleConnectedTieValidAndCovering) {
  const auto net = SmallMixed();
  const TieIndex index(net);
  util::Rng rng(5);

  // Leaf destination: no connected tie.
  EXPECT_EQ(index.SampleConnectedTie(index.IndexOf(2, 3), rng),
            index.num_arcs());

  // Arc (3,2): node 2's neighbors {1, 3}; skipping the return to 3 leaves
  // exactly the arc (2,1).
  const size_t sampled = index.SampleConnectedTie(index.IndexOf(3, 2), rng);
  EXPECT_EQ(index.ArcAt(sampled), (std::pair<NodeId, NodeId>{2, 1}));
}

TEST(TieIndexTest, SampleConnectedTieUniformOverCandidates) {
  // Star closure: arc (leaf, center) has center_degree-1 connected ties;
  // sampling must cover all of them roughly uniformly.
  GraphBuilder builder(6);
  for (NodeId leaf = 1; leaf <= 5; ++leaf) {
    ASSERT_TRUE(builder.AddTie(0, leaf, TieType::kDirected).ok());
  }
  const auto net = std::move(builder).Build();
  const TieIndex index(net);
  const size_t arc = index.IndexOf(1, 0);
  util::Rng rng(7);
  std::map<size_t, int> counts;
  const int trials = 8000;
  for (int t = 0; t < trials; ++t) {
    const size_t s = index.SampleConnectedTie(arc, rng);
    ASSERT_LT(s, index.num_arcs());
    const auto [u, v] = index.ArcAt(s);
    EXPECT_EQ(u, 0u);
    EXPECT_NE(v, 1u);
    ++counts[s];
  }
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [s, c] : counts) EXPECT_NEAR(c, trials / 4, trials / 20);
}

TEST(TieIndexTest, ClosureMatchesLineGraphOfSymmetrizedNetwork) {
  // Oracle: symmetrize a generated network (every tie bidirectional), whose
  // MixedSocialNetwork line graph must agree with the TieIndex counts.
  data::GeneratorConfig config;
  config.num_nodes = 120;
  config.ties_per_node = 3.0;
  config.seed = 9;
  const auto net = data::GenerateStatusNetwork(config);

  GraphBuilder sym_builder(net.num_nodes());
  for (graph::ArcId id = 0; id < net.num_arcs(); ++id) {
    const auto& arc = net.arc(id);
    if (arc.type != TieType::kDirected && arc.src > arc.dst) continue;
    ASSERT_TRUE(
        sym_builder.AddTie(arc.src, arc.dst, TieType::kBidirectional).ok());
  }
  const auto sym = std::move(sym_builder).Build();

  const TieIndex index(net);
  EXPECT_EQ(index.num_arcs(), sym.num_arcs());
  EXPECT_EQ(index.NumConnectedTiePairs(), graph::PredictLineGraphSize(sym));
}

}  // namespace
}  // namespace deepdirect::core
