// Tests for the cross-validated (α, β) grid search (Sec. 6.1 protocol) and
// the line-graph embedding model.

#include <gtest/gtest.h>

#include "core/applications.h"
#include "core/grid_search.h"
#include "core/line_graph_model.h"
#include "data/generators.h"
#include "graph/algorithms.h"

namespace deepdirect::core {
namespace {

graph::MixedSocialNetwork EasyNetwork(uint64_t seed = 5) {
  data::GeneratorConfig gen;
  gen.num_nodes = 300;
  gen.ties_per_node = 4.0;
  gen.direction_noise = 0.05;
  gen.status_noise = 0.1;
  gen.seed = seed;
  return data::GenerateStatusNetwork(gen);
}

GridSearchConfig SmallGrid() {
  GridSearchConfig config;
  config.alphas = {0.0, 5.0};
  config.betas = {0.0, 1.0};
  config.base.dimensions = 16;
  config.base.epochs = 2.0;
  return config;
}

TEST(GridSearchTest, EvaluatesEveryCell) {
  const auto net = EasyNetwork();
  const auto result = GridSearchDeepDirect(net, SmallGrid());
  EXPECT_EQ(result.cells.size(), 4u);
  for (const auto& cell : result.cells) {
    EXPECT_GE(cell.validation_accuracy, 0.0);
    EXPECT_LE(cell.validation_accuracy, 1.0);
  }
}

TEST(GridSearchTest, BestIsArgmaxOfCells) {
  const auto net = EasyNetwork();
  const auto result = GridSearchDeepDirect(net, SmallGrid());
  double best = -1.0;
  for (const auto& cell : result.cells) {
    best = std::max(best, cell.validation_accuracy);
  }
  EXPECT_DOUBLE_EQ(result.best.validation_accuracy, best);
  bool found = false;
  for (const auto& cell : result.cells) {
    found |= cell.alpha == result.best.alpha &&
             cell.beta == result.best.beta &&
             cell.validation_accuracy == result.best.validation_accuracy;
  }
  EXPECT_TRUE(found);
}

TEST(GridSearchTest, DeterministicForConfig) {
  const auto net = EasyNetwork();
  const auto a = GridSearchDeepDirect(net, SmallGrid());
  const auto b = GridSearchDeepDirect(net, SmallGrid());
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].validation_accuracy, b.cells[i].validation_accuracy);
  }
}

TEST(GridSearchTest, MultipleFoldsAverage) {
  const auto net = EasyNetwork();
  auto config = SmallGrid();
  config.alphas = {5.0};
  config.betas = {1.0};
  config.folds = 2;
  const auto result = GridSearchDeepDirect(net, config);
  EXPECT_EQ(result.cells.size(), 1u);
  EXPECT_GT(result.best.validation_accuracy, 0.5);
}

TEST(GridSearchTest, SelectedCellGeneralizesAboveChance) {
  const auto net = EasyNetwork();
  const auto search = GridSearchDeepDirect(net, SmallGrid());
  // Retrain at the selected cell on a fresh test split.
  util::Rng rng(909);
  const auto split = graph::HideDirections(net, 0.5, rng);
  auto config = SmallGrid().base;
  config.alpha = search.best.alpha;
  config.beta = search.best.beta;
  const auto model = DeepDirectModel::Train(split.network, config);
  EXPECT_GT(DirectionDiscoveryAccuracy(split, *model), 0.55);
}

TEST(LineGraphModelTest, TrainsAndReportsBlowup) {
  const auto net = EasyNetwork();
  util::Rng rng(11);
  const auto split = graph::HideDirections(net, 0.3, rng);
  LineGraphModelConfig config;
  config.embedding.dimensions = 16;
  config.embedding.samples_per_edge = 10;
  const auto model = LineGraphModel::Train(split.network, config);
  EXPECT_EQ(model->name(), "LINE-linegraph");
  // The line digraph is strictly larger than the original network on both
  // axes (the paper's Sec. 4 argument).
  EXPECT_EQ(model->line_graph_nodes(), 2 * split.network.num_ties());
  EXPECT_GT(model->line_graph_edges(), model->line_graph_nodes());
  EXPECT_GT(DirectionDiscoveryAccuracy(split, *model), 0.5);
}

}  // namespace
}  // namespace deepdirect::core
