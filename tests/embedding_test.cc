// Tests for LINE node embeddings and the node→edge feature operators.

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "embedding/edge_features.h"
#include "embedding/line.h"

namespace deepdirect::embedding {
namespace {

using graph::GraphBuilder;
using graph::MixedSocialNetwork;
using graph::NodeId;
using graph::TieType;

TEST(EdgeFeaturesTest, DimsPerOperator) {
  EXPECT_EQ(EdgeFeatureDims(EdgeOperator::kConcatenate, 8), 16u);
  for (auto op : {EdgeOperator::kAverage, EdgeOperator::kHadamard,
                  EdgeOperator::kL1, EdgeOperator::kL2}) {
    EXPECT_EQ(EdgeFeatureDims(op, 8), 8u);
  }
}

TEST(EdgeFeaturesTest, OperatorValues) {
  const std::vector<double> src{1.0, -2.0};
  const std::vector<double> dst{3.0, 4.0};
  std::vector<double> out(4);

  ComposeEdgeFeatures(EdgeOperator::kConcatenate, src, dst, out);
  EXPECT_EQ(out, (std::vector<double>{1.0, -2.0, 3.0, 4.0}));

  out.resize(2);
  ComposeEdgeFeatures(EdgeOperator::kAverage, src, dst, out);
  EXPECT_EQ(out, (std::vector<double>{2.0, 1.0}));

  ComposeEdgeFeatures(EdgeOperator::kHadamard, src, dst, out);
  EXPECT_EQ(out, (std::vector<double>{3.0, -8.0}));

  ComposeEdgeFeatures(EdgeOperator::kL1, src, dst, out);
  EXPECT_EQ(out, (std::vector<double>{2.0, 6.0}));

  ComposeEdgeFeatures(EdgeOperator::kL2, src, dst, out);
  EXPECT_EQ(out, (std::vector<double>{4.0, 36.0}));
}

TEST(EdgeFeaturesTest, ConcatenationIsOrderSensitive) {
  const std::vector<double> src{1.0};
  const std::vector<double> dst{2.0};
  std::vector<double> forward(2), backward(2);
  ComposeEdgeFeatures(EdgeOperator::kConcatenate, src, dst, forward);
  ComposeEdgeFeatures(EdgeOperator::kConcatenate, dst, src, backward);
  EXPECT_NE(forward, backward);
}

TEST(EdgeFeaturesTest, SymmetricOperatorsAreOrderInsensitive) {
  const std::vector<double> src{1.0, -2.0};
  const std::vector<double> dst{3.0, 4.0};
  for (auto op : {EdgeOperator::kAverage, EdgeOperator::kHadamard,
                  EdgeOperator::kL1, EdgeOperator::kL2}) {
    std::vector<double> forward(2), backward(2);
    ComposeEdgeFeatures(op, src, dst, forward);
    ComposeEdgeFeatures(op, dst, src, backward);
    EXPECT_EQ(forward, backward) << EdgeOperatorToString(op);
  }
}

TEST(EdgeFeaturesTest, OperatorNames) {
  EXPECT_STREQ(EdgeOperatorToString(EdgeOperator::kConcatenate),
               "concatenate");
  EXPECT_STREQ(EdgeOperatorToString(EdgeOperator::kHadamard), "hadamard");
}

TEST(LineEmbeddingTest, DimensionsAndFiniteness) {
  data::GeneratorConfig config;
  config.num_nodes = 200;
  config.ties_per_node = 4.0;
  config.seed = 3;
  const auto net = data::GenerateStatusNetwork(config);

  LineConfig line_config;
  line_config.dimensions = 16;
  line_config.samples_per_arc = 10;
  const auto line = LineEmbedding::Train(net, line_config);
  EXPECT_EQ(line.dimensions(), 16u);
  EXPECT_EQ(line.FirstOrder(0).size(), 8u);
  EXPECT_EQ(line.SecondOrder(0).size(), 8u);

  std::vector<double> vec(16);
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    line.NodeVector(u, vec);
    for (double v : vec) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(LineEmbeddingTest, NodeVectorConcatenatesHalves) {
  data::GeneratorConfig config;
  config.num_nodes = 100;
  config.seed = 5;
  const auto net = data::GenerateStatusNetwork(config);
  LineConfig line_config;
  line_config.dimensions = 8;
  line_config.samples_per_arc = 5;
  const auto line = LineEmbedding::Train(net, line_config);
  std::vector<double> vec(8);
  line.NodeVector(3, vec);
  const auto first = line.FirstOrder(3);
  const auto second = line.SecondOrder(3);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(vec[k], first[k]);
    EXPECT_DOUBLE_EQ(vec[4 + k], second[k]);
  }
}

TEST(LineEmbeddingTest, FirstOrderProximityLearned) {
  // Two cliques joined by one bridge: within-clique first-order affinity
  // should exceed cross-clique affinity on average.
  GraphBuilder builder(12);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) {
      ASSERT_TRUE(builder.AddTie(u, v, TieType::kBidirectional).ok());
    }
  }
  for (NodeId u = 6; u < 12; ++u) {
    for (NodeId v = u + 1; v < 12; ++v) {
      ASSERT_TRUE(builder.AddTie(u, v, TieType::kBidirectional).ok());
    }
  }
  ASSERT_TRUE(builder.AddTie(0, 6, TieType::kBidirectional).ok());
  const auto net = std::move(builder).Build();

  LineConfig config;
  config.dimensions = 16;
  config.samples_per_arc = 400;
  config.seed = 7;
  const auto line = LineEmbedding::Train(net, config);

  auto affinity = [&](NodeId x, NodeId y) {
    return ml::Dot(line.FirstOrder(x), line.FirstOrder(y));
  };
  double within = 0.0, across = 0.0;
  int within_count = 0, across_count = 0;
  for (NodeId u = 1; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) {
      within += affinity(u, v);
      ++within_count;
    }
    for (NodeId v = 7; v < 12; ++v) {
      across += affinity(u, v);
      ++across_count;
    }
  }
  EXPECT_GT(within / within_count, across / across_count);
}

TEST(LineEmbeddingTest, MultiThreadedTrainingLearnsProximity) {
  // Same two-clique check as FirstOrderProximityLearned, but trained with
  // Hogwild workers: racing updates must not destroy the learned structure.
  GraphBuilder builder(12);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) {
      ASSERT_TRUE(builder.AddTie(u, v, TieType::kBidirectional).ok());
    }
  }
  for (NodeId u = 6; u < 12; ++u) {
    for (NodeId v = u + 1; v < 12; ++v) {
      ASSERT_TRUE(builder.AddTie(u, v, TieType::kBidirectional).ok());
    }
  }
  ASSERT_TRUE(builder.AddTie(0, 6, TieType::kBidirectional).ok());
  const auto net = std::move(builder).Build();

  LineConfig config;
  config.dimensions = 16;
  config.samples_per_arc = 400;
  config.seed = 7;
  config.num_threads = 4;
  const auto line = LineEmbedding::Train(net, config);

  auto affinity = [&](NodeId x, NodeId y) {
    return ml::Dot(line.FirstOrder(x), line.FirstOrder(y));
  };
  double within = 0.0, across = 0.0;
  int within_count = 0, across_count = 0;
  for (NodeId u = 1; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) {
      within += affinity(u, v);
      ++within_count;
    }
    for (NodeId v = 7; v < 12; ++v) {
      across += affinity(u, v);
      ++across_count;
    }
  }
  EXPECT_GT(within / within_count, across / across_count);
}

TEST(LineEmbeddingTest, DeterministicForSeed) {
  data::GeneratorConfig config;
  config.num_nodes = 100;
  config.seed = 9;
  const auto net = data::GenerateStatusNetwork(config);
  LineConfig line_config;
  line_config.dimensions = 8;
  line_config.samples_per_arc = 5;
  line_config.seed = 11;
  const auto a = LineEmbedding::Train(net, line_config);
  const auto b = LineEmbedding::Train(net, line_config);
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    const auto ra = a.FirstOrder(u);
    const auto rb = b.FirstOrder(u);
    for (size_t k = 0; k < ra.size(); ++k) EXPECT_EQ(ra[k], rb[k]);
  }
}

}  // namespace
}  // namespace deepdirect::embedding
