// Tests for the serving layer: DDS1 export/open, golden parity against the
// in-memory model, the hot-tie cache, fault injection over the servable
// file, the unknown-tie contract, the serve-loop protocol, and concurrent
// readers (the *Concurrent* test runs under TSan via
// scripts/check_sanitizers.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/deepdirect.h"
#include "core/servable_format.h"
#include "data/generators.h"
#include "graph/algorithms.h"
#include "serve/mmap_file.h"
#include "serve/servable_model.h"
#include "serve/server.h"
#include "serve/tie_cache.h"
#include "util/random.h"

namespace deepdirect::serve {
namespace {

namespace fmt = core::servable;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A trained model, its exported servable file, and the file's raw bytes.
struct Exported {
  std::unique_ptr<core::DeepDirectModel> model;
  std::string path;
  std::string bytes;
};

Exported Train(size_t num_nodes, size_t dimensions, double epochs,
               const std::string& path, uint64_t seed = 5) {
  data::GeneratorConfig gen;
  gen.num_nodes = num_nodes;
  gen.ties_per_node = 3.5;
  gen.seed = seed;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng(seed + 1);
  const auto split = graph::HideDirections(net, 0.4, rng);
  core::DeepDirectConfig config;
  config.dimensions = dimensions;
  config.epochs = epochs;
  Exported out;
  out.model = core::DeepDirectModel::Train(split.network, config);
  out.path = path;
  EXPECT_TRUE(out.model->ExportServable(path).ok());
  out.bytes = ReadFile(path);
  return out;
}

/// The parity fixture: trained once per process, shared by every test that
/// only reads it.
const Exported& Parity() {
  static const Exported* cached =
      new Exported(Train(120, 8, 2.0, "/tmp/deepdirect_serve_parity.dds"));
  return *cached;
}

/// A deliberately tiny second model so the every-byte fault-injection
/// sweeps stay fast even under sanitizers.
const Exported& Tiny() {
  static const Exported* cached =
      new Exported(Train(60, 4, 1.0, "/tmp/deepdirect_serve_tiny.dds", 11));
  return *cached;
}

std::vector<TiePair> AllTies(const core::DeepDirectModel& model) {
  std::vector<TiePair> ties;
  ties.reserve(model.index().num_arcs());
  for (size_t e = 0; e < model.index().num_arcs(); ++e) {
    const auto [u, v] = model.index().ArcAt(e);
    ties.push_back({u, v});
  }
  return ties;
}

/// A pair of in-range nodes with no closure arc between them.
TiePair UnknownTie(const core::DeepDirectModel& model) {
  const auto& index = model.index();
  for (graph::NodeId u = 0; u < index.num_nodes(); ++u) {
    for (graph::NodeId v = 0; v < index.num_nodes(); ++v) {
      if (u != v && index.TryIndexOf(u, v) == index.num_arcs()) {
        return {u, v};
      }
    }
  }
  ADD_FAILURE() << "fixture network is a complete digraph";
  return {0, 0};
}

TEST(ServableModelTest, OpenReadsBackTheModelShape) {
  const Exported& fixture = Parity();
  auto opened = ServableModel::Open(fixture.path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ServableModel& servable = opened.value();
  EXPECT_EQ(servable.num_nodes(), fixture.model->index().num_nodes());
  EXPECT_EQ(servable.num_arcs(), fixture.model->index().num_arcs());
  EXPECT_EQ(servable.dimensions(), fixture.model->embeddings().cols());
  // No temp file left behind by the atomic export.
  std::ifstream tmp(fixture.path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "temp file left behind";
}

TEST(ServableModelTest, RawLayoutIsCanonical) {
  // Pin the on-disk invariants the mmap reader relies on: magic, exact
  // file size in the header, and 64-byte alignment of every payload.
  const std::string& bytes = Parity().bytes;
  ASSERT_GE(bytes.size(), sizeof(fmt::Header));
  fmt::Header header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  EXPECT_EQ(std::memcmp(header.magic, fmt::kMagic.data(), 4), 0);
  EXPECT_EQ(header.version, fmt::kVersion);
  EXPECT_EQ(header.section_count, fmt::kSectionCount);
  EXPECT_EQ(header.file_size, bytes.size());
  for (uint64_t s = 0; s < fmt::kSectionCount; ++s) {
    fmt::SectionEntry entry;
    std::memcpy(&entry, bytes.data() + sizeof(fmt::Header) +
                            s * sizeof(fmt::SectionEntry),
                sizeof(entry));
    EXPECT_STREQ(entry.name, fmt::kSectionOrder[s]);
    EXPECT_EQ(entry.offset % fmt::kAlignment, 0u)
        << "section " << entry.name << " is misaligned";
  }
}

TEST(ServableModelTest, GoldenParityScalarEveryTie) {
  const Exported& fixture = Parity();
  auto opened = ServableModel::Open(fixture.path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ServableModel& servable = opened.value();
  for (const TiePair& tie : AllTies(*fixture.model)) {
    const auto got = servable.Query(tie.u, tie.v);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // Exact: the servable scorer replicates the in-memory accumulation
    // bit for bit, not approximately.
    EXPECT_EQ(got.value(), fixture.model->Directionality(tie.u, tie.v))
        << "tie (" << tie.u << ", " << tie.v << ")";
  }
}

TEST(ServableModelTest, GoldenParityBatchColdWarmAndEvicting) {
  const Exported& fixture = Parity();
  const std::vector<TiePair> ties = AllTies(*fixture.model);
  std::vector<double> expected;
  expected.reserve(ties.size());
  for (const TiePair& tie : ties) {
    expected.push_back(fixture.model->Directionality(tie.u, tie.v));
  }

  // Three cache regimes: disabled, all-hits after warmup, and constantly
  // evicting. The answers must be identical in all of them.
  for (const size_t capacity : {size_t{0}, ties.size(), size_t{8}}) {
    ServeOptions options;
    options.cache_capacity = capacity;
    auto opened = ServableModel::Open(fixture.path, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    const ServableModel& servable = opened.value();
    std::vector<double> got(ties.size(), 0.0);
    for (int pass = 0; pass < 2; ++pass) {
      ASSERT_TRUE(servable.QueryBatch(ties, got).ok());
      for (size_t i = 0; i < ties.size(); ++i) {
        EXPECT_EQ(got[i], expected[i])
            << "capacity " << capacity << " pass " << pass << " tie ("
            << ties[i].u << ", " << ties[i].v << ")";
      }
    }
  }
}

TEST(ServableModelTest, CacheCountersTrackColdWarmEvicting) {
  const Exported& fixture = Parity();
  const std::vector<TiePair> ties = AllTies(*fixture.model);
  std::vector<double> out(ties.size(), 0.0);

  // Roomy cache (8 slots per tie, so set-conflict evictions are
  // vanishingly unlikely): the first pass is all misses, the second all
  // hits.
  ServeOptions roomy;
  roomy.cache_capacity = 8 * ties.size();
  auto opened = ServableModel::Open(fixture.path, roomy);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened.value().QueryBatch(ties, out).ok());
  TieCacheStats stats = opened.value().CacheStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, ties.size());
  EXPECT_EQ(stats.evictions, 0u);
  ASSERT_TRUE(opened.value().QueryBatch(ties, out).ok());
  stats = opened.value().CacheStats();
  EXPECT_EQ(stats.hits, ties.size());
  EXPECT_EQ(stats.misses, ties.size());
  EXPECT_EQ(stats.evictions, 0u);

  // Tiny cache: a sweep larger than capacity must evict.
  ServeOptions tiny;
  tiny.cache_capacity = 8;
  auto evicting = ServableModel::Open(fixture.path, tiny);
  ASSERT_TRUE(evicting.ok());
  ASSERT_TRUE(evicting.value().QueryBatch(ties, out).ok());
  ASSERT_TRUE(evicting.value().QueryBatch(ties, out).ok());
  stats = evicting.value().CacheStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GE(stats.capacity, 8u);

  // Disabled cache: nothing is counted at all.
  ServeOptions off;
  off.cache_capacity = 0;
  auto disabled = ServableModel::Open(fixture.path, off);
  ASSERT_TRUE(disabled.ok());
  ASSERT_TRUE(disabled.value().QueryBatch(ties, out).ok());
  stats = disabled.value().CacheStats();
  EXPECT_EQ(stats.hits + stats.misses + stats.evictions, 0u);
  EXPECT_EQ(stats.capacity, 0u);
}

TEST(ServableModelTest, LruEvictsColdKeysKeepsHotKeys) {
  // Direct cache-policy check on one full 4-way set: a key that was hit
  // since insertion is spared by the second-chance clock, and the first
  // never-referenced key is the one evicted.
  ShardedTieCache cache(/*capacity=*/4, /*ways=*/4);
  cache.Insert(1, 0.1);
  cache.Insert(2, 0.2);
  cache.Insert(3, 0.3);
  cache.Insert(4, 0.4);
  double value = 0.0;
  ASSERT_TRUE(cache.Lookup(1, &value));  // marks key 1 recently used
  cache.Insert(5, 0.5);  // spares 1 (referenced), evicts 2 (cold)
  EXPECT_TRUE(cache.Lookup(1, &value));
  EXPECT_EQ(value, 0.1);
  EXPECT_FALSE(cache.Lookup(2, &value));
  EXPECT_TRUE(cache.Lookup(3, &value));
  EXPECT_TRUE(cache.Lookup(4, &value));
  EXPECT_TRUE(cache.Lookup(5, &value));
  EXPECT_EQ(value, 0.5);
  EXPECT_EQ(cache.Stats().evictions, 1u);
}

TEST(ServableModelTest, UnknownTieContract) {
  const Exported& fixture = Parity();
  auto opened = ServableModel::Open(fixture.path);
  ASSERT_TRUE(opened.ok());
  const ServableModel& servable = opened.value();
  const TiePair unknown = UnknownTie(*fixture.model);

  // Scalar: a typed not-found, in range or out of range.
  EXPECT_EQ(servable.Query(unknown.u, unknown.v).status().code(),
            util::StatusCode::kNotFound);
  const auto out_of_range =
      servable.Query(static_cast<graph::NodeId>(servable.num_nodes()) + 7, 0);
  EXPECT_EQ(out_of_range.status().code(), util::StatusCode::kNotFound);

  // Batch under kError: the batch fails, naming the offending item.
  const TiePair known = AllTies(*fixture.model).front();
  const std::vector<TiePair> ties = {known, unknown, known};
  std::vector<double> out(ties.size(), 0.0);
  const auto failed = servable.QueryBatch(ties, out, MissingPolicy::kError);
  EXPECT_EQ(failed.code(), util::StatusCode::kNotFound);

  // Batch under kNan: the unknown slot is NaN, the known slots exact.
  ASSERT_TRUE(servable.QueryBatch(ties, out, MissingPolicy::kNan).ok());
  const double expected = fixture.model->Directionality(known.u, known.v);
  EXPECT_EQ(out[0], expected);
  EXPECT_TRUE(std::isnan(out[1]));
  EXPECT_EQ(out[2], expected);

  // Mismatched spans are a typed error, not a crash.
  std::vector<double> short_out(1, 0.0);
  EXPECT_EQ(servable.QueryBatch(ties, short_out).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(ServableModelTest, TryDirectionalityMatchesTheServingContract) {
  // The in-memory model exposes the same typed unknown-tie contract the
  // serving path has, instead of undefined behavior on a bad pair.
  const Exported& fixture = Parity();
  const core::DeepDirectModel& model = *fixture.model;
  const TiePair known = AllTies(model).front();
  const auto ok = model.TryDirectionality(known.u, known.v);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), model.Directionality(known.u, known.v));

  const TiePair unknown = UnknownTie(model);
  EXPECT_EQ(model.TryDirectionality(unknown.u, unknown.v).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(model
                .TryDirectionality(
                    static_cast<graph::NodeId>(model.index().num_nodes()), 0)
                .status()
                .code(),
            util::StatusCode::kNotFound);
}

TEST(ServableModelTest, MissingFileReportsIOError) {
  auto opened = ServableModel::Open("/nonexistent/model.dds");
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), util::StatusCode::kIOError);
}

TEST(ServableModelTest, MlpHeadIsNotServable) {
  data::GeneratorConfig gen;
  gen.num_nodes = 60;
  gen.ties_per_node = 3.5;
  gen.seed = 3;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng(4);
  const auto split = graph::HideDirections(net, 0.4, rng);
  core::DeepDirectConfig config;
  config.dimensions = 4;
  config.epochs = 1.0;
  config.d_step_head = core::DStepHead::kMlp;
  const auto model = core::DeepDirectModel::Train(split.network, config);
  const auto status = model->ExportServable("/tmp/deepdirect_serve_mlp.dds");
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
}

TEST(ServableModelTest, TruncationSweepEveryLengthNeverOpens) {
  // A servable file cut after ANY byte count must be rejected cleanly.
  const Exported& fixture = Tiny();
  const std::string path = "/tmp/deepdirect_serve_trunc.dds";
  ASSERT_GT(fixture.bytes.size(), 0u);
  for (size_t cut = 0; cut < fixture.bytes.size(); ++cut) {
    WriteFile(path, fixture.bytes.substr(0, cut));
    auto opened = ServableModel::Open(path);
    ASSERT_FALSE(opened.ok()) << "prefix of " << cut << " bytes opened";
    ASSERT_EQ(opened.status().code(), util::StatusCode::kInvalidArgument)
        << "prefix of " << cut << ": " << opened.status().ToString();
  }
  std::remove(path.c_str());
}

TEST(ServableModelTest, CorruptionSweepEveryByteNeverOpens) {
  // Flip every single byte of the file in turn: each flip must be caught
  // by the meta CRC (header/table), a section CRC (payloads), or the
  // zero-padding check (alignment gaps) — no byte is uncovered.
  const Exported& fixture = Tiny();
  const std::string path = "/tmp/deepdirect_serve_flip.dds";
  for (size_t k = 0; k < fixture.bytes.size(); ++k) {
    std::string corrupted = fixture.bytes;
    corrupted[k] = static_cast<char>(corrupted[k] ^ 0x5A);
    WriteFile(path, corrupted);
    auto opened = ServableModel::Open(path);
    ASSERT_FALSE(opened.ok()) << "flip at byte " << k << " opened";
    ASSERT_EQ(opened.status().code(), util::StatusCode::kInvalidArgument)
        << "flip at byte " << k << ": " << opened.status().ToString();
  }
  std::remove(path.c_str());
}

TEST(ServeLoopTest, ProtocolAnswersMatchesAndSurvivesGarbage) {
  const Exported& fixture = Parity();
  auto opened = ServableModel::Open(fixture.path);
  ASSERT_TRUE(opened.ok());
  const ServableModel& servable = opened.value();
  const TiePair known = AllTies(*fixture.model).front();
  const TiePair unknown = UnknownTie(*fixture.model);

  std::ostringstream request;
  request << known.u << ' ' << known.v << '\n'                       // scalar
          << known.u << ' ' << known.v << ' ' << unknown.u << ' '
          << unknown.v << '\n'                                       // batch
          << "stats\n"
          << "not-a-number 3\n"                                      // ERR
          << "1 2 3\n"                                               // ERR
          << "\n"                                                    // blank
          << "quit\n"
          << "9 9\n";  // after quit: must not be processed
  std::istringstream in(request.str());
  std::ostringstream out;
  const ServeLoopStats stats = RunServeLoop(servable, in, out);
  EXPECT_EQ(stats.lines, 6u);  // blank line and post-quit line don't count
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.errors, 2u);

  char expected[32];
  std::snprintf(expected, sizeof(expected), "%.6f",
                fixture.model->Directionality(known.u, known.v));
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, expected);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, std::string(expected) + " NA");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("stats hits=", 0), 0u) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("ERR parse", 0), 0u) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("ERR parse", 0), 0u) << line;
  EXPECT_FALSE(std::getline(lines, line)) << "output after quit: " << line;
}

TEST(ServeConcurrencyTest, ConcurrentReadersStayBitIdentical) {
  // Many threads hammer one ServableModel through an eviction-heavy cache.
  // Cache races may change WHEN a value is recomputed, never WHAT a query
  // answers: every thread must see exactly the single-threaded values.
  // Runs under TSan via scripts/check_sanitizers.sh.
  const Exported& fixture = Parity();
  const std::vector<TiePair> ties = AllTies(*fixture.model);
  std::vector<double> expected;
  expected.reserve(ties.size());
  for (const TiePair& tie : ties) {
    expected.push_back(fixture.model->Directionality(tie.u, tie.v));
  }
  ServeOptions options;
  options.cache_capacity = ties.size() / 4;  // forces constant eviction
  options.cache_ways = 4;
  auto opened = ServableModel::Open(fixture.path, options);
  ASSERT_TRUE(opened.ok());
  const ServableModel& servable = opened.value();

  constexpr size_t kThreads = 8;
  constexpr size_t kPasses = 3;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<double> got(ties.size(), 0.0);
      for (size_t pass = 0; pass < kPasses; ++pass) {
        if (t % 2 == 0) {
          // Batch readers, each starting the sweep at a different arc.
          if (!servable.QueryBatch(ties, got).ok()) {
            mismatches.fetch_add(ties.size());
            continue;
          }
          for (size_t i = 0; i < ties.size(); ++i) {
            if (got[i] != expected[i]) mismatches.fetch_add(1);
          }
        } else {
          // Scalar readers in a thread-dependent order.
          for (size_t i = 0; i < ties.size(); ++i) {
            const size_t e = (i * 31 + t * 17) % ties.size();
            const auto value = servable.Query(ties[e].u, ties[e].v);
            if (!value.ok() || value.value() != expected[e]) {
              mismatches.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  // The cache did real work concurrently (hits and evictions both landed).
  const TieCacheStats stats = servable.CacheStats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(TieCacheStatsTest, HitsPlusMissesEqualsLookupsUnderHammer) {
  // Every Lookup counts exactly one hit or one miss, and the merged
  // counters never move backwards — pinned under an 8-thread hammer with
  // a key range big enough to keep evicting.
  ShardedTieCache cache(/*capacity=*/256, /*ways=*/8);
  constexpr size_t kThreads = 8;
  constexpr uint64_t kLookupsPerThread = 20000;
  constexpr uint64_t kKeyRange = 4096;

  std::atomic<uint64_t> monotonicity_violations{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &monotonicity_violations, t] {
      uint64_t last_hits = 0, last_misses = 0, last_evictions = 0;
      for (uint64_t i = 0; i < kLookupsPerThread; ++i) {
        // Alternate a small hot set (guaranteed hits once warm) with a
        // sweep over a range far beyond capacity (guaranteed evictions).
        const uint64_t key =
            (i & 1) ? 1 + i % 64
                    : 65 + (i * 2654435761u + t * 40503u) % kKeyRange;
        double value = 0.0;
        if (!cache.Lookup(key, &value)) {
          cache.Insert(key, static_cast<double>(key) * 0.5);
        }
        if (i % 1024 == 0) {
          // Merged counters are monotone even while 7 peers are racing.
          const TieCacheStats snap = cache.Stats();
          if (snap.hits < last_hits || snap.misses < last_misses ||
              snap.evictions < last_evictions) {
            monotonicity_violations.fetch_add(1);
          }
          last_hits = snap.hits;
          last_misses = snap.misses;
          last_evictions = snap.evictions;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const TieCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kLookupsPerThread)
      << "a Lookup was dropped or double-counted";
  EXPECT_EQ(monotonicity_violations.load(), 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);  // key range >> capacity forces churn
}

TEST(MmapRwFileTest, CreateWriteSyncReopenRoundTrip) {
  const std::string path = "/tmp/deepdirect_mmap_rw_test.bin";
  std::remove(path.c_str());
  constexpr uint64_t kSize = 1 << 20;
  {
    auto created = MmapRwFile::Create(path, kSize);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    MmapRwFile& file = created.value();
    ASSERT_TRUE(file.valid());
    ASSERT_EQ(file.size(), kSize);
    auto* bytes = static_cast<unsigned char*>(file.data());
    // A sparse file reads zero before any store.
    EXPECT_EQ(bytes[0], 0u);
    EXPECT_EQ(bytes[kSize - 1], 0u);
    for (uint64_t i = 0; i < kSize; i += 4096) {
      bytes[i] = static_cast<unsigned char>(i >> 12);
    }
    ASSERT_TRUE(file.Sync().ok());
    // Dropping residency must not lose synced (or even just-cached) data.
    file.DropResident(0, kSize);
    for (uint64_t i = 0; i < kSize; i += 4096) {
      ASSERT_EQ(bytes[i], static_cast<unsigned char>(i >> 12))
          << "DropResident lost data at offset " << i;
    }
  }
  for (const MmapAdvice advice :
       {MmapAdvice::kNone, MmapAdvice::kRandom, MmapAdvice::kSequential}) {
    auto reopened = MmapRwFile::Open(path, advice);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    const auto* bytes =
        static_cast<const unsigned char*>(reopened.value().data());
    for (uint64_t i = 0; i < kSize; i += 4096) {
      ASSERT_EQ(bytes[i], static_cast<unsigned char>(i >> 12));
    }
  }
  // The read-only class accepts the same advice hints.
  for (const MmapAdvice advice :
       {MmapAdvice::kRandom, MmapAdvice::kSequential}) {
    auto readonly = MmapFile::Open(path, advice);
    ASSERT_TRUE(readonly.ok()) << readonly.status().ToString();
    EXPECT_EQ(readonly.value().size(), kSize);
  }
  std::remove(path.c_str());
}

TEST(MmapRwFileTest, MissingFileReportsIOErrorNotResourceExhausted) {
  auto opened = MmapRwFile::Open("/tmp/deepdirect_mmap_rw_nonexistent");
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), util::StatusCode::kIOError);
}

}  // namespace
}  // namespace deepdirect::serve
