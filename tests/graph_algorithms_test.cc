// Unit tests for BFS, connected components, and the experimental transforms
// (HideDirections, BfsSample, TopDegreeSubnetwork, HoldOutTies).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "data/generators.h"
#include "graph/algorithms.h"

namespace deepdirect::graph {
namespace {

// Path 0-1-2-3 (undirected) plus isolated node 4.
MixedSocialNetwork PathNetwork() {
  GraphBuilder builder(5);
  EXPECT_TRUE(builder.AddTie(0, 1, TieType::kUndirected).ok());
  EXPECT_TRUE(builder.AddTie(1, 2, TieType::kDirected).ok());
  EXPECT_TRUE(builder.AddTie(2, 3, TieType::kBidirectional).ok());
  return std::move(builder).Build();
}

TEST(BfsTest, DistancesOnPath) {
  const auto net = PathNetwork();
  const auto dist = BfsDistances(net, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(BfsTest, DirectionIgnoredForDistance) {
  // The directed tie 1->2 must be traversable both ways (paper Sec. 3.1:
  // undirected view for shortest paths).
  const auto net = PathNetwork();
  const auto dist = BfsDistances(net, 3);
  EXPECT_EQ(dist[0], 3u);
}

TEST(ConnectedComponentsTest, CountsAndLabels) {
  const auto net = PathNetwork();
  size_t count = 0;
  const auto labels = ConnectedComponents(net, &count);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(labels[0], labels[3]);
  EXPECT_NE(labels[0], labels[4]);
}

TEST(HideDirectionsTest, KeepsRequestedFraction) {
  data::GeneratorConfig config;
  config.num_nodes = 300;
  config.ties_per_node = 4.0;
  config.bidirectional_fraction = 0.3;
  config.seed = 9;
  const auto net = data::GenerateStatusNetwork(config);
  const size_t directed_before = net.num_directed_ties();

  util::Rng rng(11);
  const auto split = HideDirections(net, 0.25, rng);
  const size_t expected_kept = static_cast<size_t>(0.25 * directed_before);
  EXPECT_EQ(split.network.num_directed_ties(), expected_kept);
  EXPECT_EQ(split.network.num_undirected_ties(),
            directed_before - expected_kept);
  EXPECT_EQ(split.hidden_true_arcs.size(), directed_before - expected_kept);
  // Bidirectional ties untouched.
  EXPECT_EQ(split.network.num_bidirectional_ties(),
            net.num_bidirectional_ties());
  // Total ties preserved.
  EXPECT_EQ(split.network.num_ties(), net.num_ties());
}

TEST(HideDirectionsTest, TrueLabelsConsistent) {
  data::GeneratorConfig config;
  config.num_nodes = 200;
  config.ties_per_node = 3.0;
  config.seed = 13;
  const auto net = data::GenerateStatusNetwork(config);
  util::Rng rng(17);
  const auto split = HideDirections(net, 0.5, rng);

  for (ArcId true_arc : split.hidden_true_arcs) {
    const Arc& arc = split.network.arc(true_arc);
    EXPECT_EQ(arc.type, TieType::kUndirected);
    EXPECT_DOUBLE_EQ(split.true_label[true_arc], 1.0);
    const ArcId reverse = split.network.FindArc(arc.dst, arc.src);
    ASSERT_NE(reverse, kInvalidArc);
    EXPECT_DOUBLE_EQ(split.true_label[reverse], 0.0);
    // The original network contains this exact directed arc.
    const ArcId original = net.FindArc(arc.src, arc.dst);
    ASSERT_NE(original, kInvalidArc);
    EXPECT_EQ(net.arc(original).type, TieType::kDirected);
  }
}

TEST(HideDirectionsTest, ExtremeFractions) {
  data::GeneratorConfig config;
  config.num_nodes = 100;
  config.ties_per_node = 3.0;
  config.seed = 19;
  const auto net = data::GenerateStatusNetwork(config);
  util::Rng rng(23);

  // Fraction 1.0: nothing hidden.
  const auto all = HideDirections(net, 1.0, rng);
  EXPECT_EQ(all.network.num_directed_ties(), net.num_directed_ties());
  EXPECT_TRUE(all.hidden_true_arcs.empty());

  // Fraction 0.0: the TDL problem requires |E_d| > 0, so one tie stays.
  const auto none = HideDirections(net, 0.0, rng);
  EXPECT_EQ(none.network.num_directed_ties(), 1u);
}

TEST(BfsSampleTest, RespectsTargetSize) {
  data::GeneratorConfig config;
  config.num_nodes = 500;
  config.ties_per_node = 4.0;
  config.seed = 29;
  const auto net = data::GenerateStatusNetwork(config);
  const auto sample = BfsSample(net, 0, 120);
  EXPECT_EQ(sample.num_nodes(), 120u);
  EXPECT_GT(sample.num_ties(), 0u);
}

TEST(BfsSampleTest, LargerTargetThanGraphKeepsComponent) {
  const auto net = PathNetwork();
  const auto sample = BfsSample(net, 0, 100);
  // Node 4 is unreachable from 0; only the 4-node component is kept.
  EXPECT_EQ(sample.num_nodes(), 4u);
  EXPECT_EQ(sample.num_ties(), 3u);
}

TEST(BfsSampleTest, PreservesTieTypes) {
  const auto net = PathNetwork();
  const auto sample = BfsSample(net, 0, 100);
  EXPECT_EQ(sample.num_directed_ties(), 1u);
  EXPECT_EQ(sample.num_bidirectional_ties(), 1u);
  EXPECT_EQ(sample.num_undirected_ties(), 1u);
}

TEST(TopDegreeSubnetworkTest, SelectsHighDegreeCore) {
  data::GeneratorConfig config;
  config.num_nodes = 400;
  config.ties_per_node = 4.0;
  config.seed = 31;
  const auto net = data::GenerateStatusNetwork(config);
  const auto core = TopDegreeSubnetwork(net, 0.1);
  EXPECT_LE(core.num_nodes(), static_cast<size_t>(0.1 * net.num_nodes()));
  EXPECT_GT(core.num_ties(), 0u);
  // The kept nodes are the high-degree nodes of the original network:
  // the minimum original degree among kept nodes must be at least the
  // median original degree.
  std::vector<double> degrees(net.num_nodes());
  for (NodeId u = 0; u < net.num_nodes(); ++u) degrees[u] = net.Deg(u);
  std::vector<double> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  // Map core node ids back by degree ranking: every kept node came from the
  // top `fraction`, so the *average* original degree of the top 10% nodes
  // must exceed twice the median in a preferential-attachment network.
  double top_mean = 0.0;
  const size_t k = std::max<size_t>(1, net.num_nodes() / 10);
  for (size_t i = 0; i < k; ++i) top_mean += sorted[sorted.size() - 1 - i];
  top_mean /= static_cast<double>(k);
  EXPECT_GT(top_mean, 2.0 * median);
}

TEST(HoldOutTiesTest, SplitsTies) {
  data::GeneratorConfig config;
  config.num_nodes = 300;
  config.ties_per_node = 4.0;
  config.seed = 37;
  const auto net = data::GenerateStatusNetwork(config);
  util::Rng rng(41);
  const auto holdout = HoldOutTies(net, 0.2, rng);
  EXPECT_EQ(holdout.removed_ties.size(),
            static_cast<size_t>(0.2 * net.num_ties()));
  EXPECT_EQ(holdout.network.num_ties() + holdout.removed_ties.size(),
            net.num_ties());
  EXPECT_EQ(holdout.network.num_nodes(), net.num_nodes());
  // Removed ties are absent from the reduced network and present in the
  // original.
  for (const Arc& removed : holdout.removed_ties) {
    EXPECT_FALSE(holdout.network.HasArc(removed.src, removed.dst));
    EXPECT_TRUE(net.HasArc(removed.src, removed.dst));
  }
}

TEST(HoldOutTiesTest, ZeroFractionRemovesNothing) {
  const auto net = PathNetwork();
  util::Rng rng(43);
  const auto holdout = HoldOutTies(net, 0.0, rng);
  EXPECT_TRUE(holdout.removed_ties.empty());
  EXPECT_EQ(holdout.network.num_ties(), net.num_ties());
}

}  // namespace
}  // namespace deepdirect::graph
