// Tests for the dense linear-algebra kernels and GraRep.

#include <gtest/gtest.h>

#include <cmath>

#include "core/applications.h"
#include "data/generators.h"
#include "core/grarep_model.h"
#include "embedding/grarep.h"
#include "graph/algorithms.h"
#include "ml/linalg.h"

namespace deepdirect::ml {
namespace {

TEST(MatMulTest, HandComputed) {
  DMatrix a(2, 3), b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  double av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.values.begin());
  std::copy(bv, bv + 6, b.values.begin());
  const auto c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);

  // Aᵀ·A must match MatMulTransposedA.
  const auto ata = MatMulTransposedA(a, a);
  EXPECT_DOUBLE_EQ(ata.At(0, 0), 17.0);  // 1 + 16
  EXPECT_DOUBLE_EQ(ata.At(0, 2), 27.0);  // 3 + 24
}

TEST(OrthonormalizeTest, ProducesOrthonormalColumns) {
  util::Rng rng(3);
  DMatrix m(20, 5);
  for (double& value : m.values) value = rng.NextGaussian();
  OrthonormalizeColumns(m);
  for (size_t a = 0; a < 5; ++a) {
    for (size_t b = a; b < 5; ++b) {
      double dot = 0.0;
      for (size_t i = 0; i < 20; ++i) dot += m.At(i, a) * m.At(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(SymmetricEigenTest, DiagonalMatrix) {
  DMatrix d(3, 3);
  d.At(0, 0) = 1.0;
  d.At(1, 1) = 5.0;
  d.At(2, 2) = 3.0;
  std::vector<double> eigenvalues;
  DMatrix eigenvectors;
  SymmetricEigen(d, &eigenvalues, &eigenvectors);
  EXPECT_NEAR(eigenvalues[0], 5.0, 1e-10);
  EXPECT_NEAR(eigenvalues[1], 3.0, 1e-10);
  EXPECT_NEAR(eigenvalues[2], 1.0, 1e-10);
}

TEST(SymmetricEigenTest, ReconstructsMatrix) {
  util::Rng rng(5);
  const size_t n = 6;
  DMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double value = rng.NextGaussian();
      m.At(i, j) = value;
      m.At(j, i) = value;
    }
  }
  std::vector<double> eigenvalues;
  DMatrix v;
  SymmetricEigen(m, &eigenvalues, &v);
  // A ≈ V Λ Vᵀ.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double reconstructed = 0.0;
      for (size_t k = 0; k < n; ++k) {
        reconstructed += v.At(i, k) * eigenvalues[k] * v.At(j, k);
      }
      EXPECT_NEAR(reconstructed, m.At(i, j), 1e-8);
    }
  }
}

TEST(TruncatedSvdTest, RecoversLowRankStructure) {
  // Build a rank-2 matrix M = u1 v1ᵀ·10 + u2 v2ᵀ·5 and check the factor
  // captures nearly all its energy.
  util::Rng rng(7);
  const size_t rows = 40, cols = 30;
  std::vector<double> u1(rows), v1(cols), u2(rows), v2(cols);
  for (auto* vec : {&u1, &u2}) {
    double norm = 0.0;
    for (double& value : *vec) {
      value = rng.NextGaussian();
      norm += value * value;
    }
    for (double& value : *vec) value /= std::sqrt(norm);
  }
  for (auto* vec : {&v1, &v2}) {
    double norm = 0.0;
    for (double& value : *vec) {
      value = rng.NextGaussian();
      norm += value * value;
    }
    for (double& value : *vec) value /= std::sqrt(norm);
  }
  DMatrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      m.At(i, j) = 10.0 * u1[i] * v1[j] + 5.0 * u2[i] * v2[j];
    }
  }
  const auto factor = TruncatedSvdFactor(m, 2, 6, 2, rng);
  // ||factor||_F² = σ1 + σ2 (since factor = U Σ^{1/2}).
  double energy = 0.0;
  for (double value : factor.values) energy += value * value;
  EXPECT_NEAR(energy, 15.0, 0.2);
}

TEST(GraRepTest, TrainsWithFiniteConcatenatedBlocks) {
  data::GeneratorConfig gen;
  gen.num_nodes = 120;
  gen.ties_per_node = 3.0;
  gen.seed = 9;
  const auto net = data::GenerateStatusNetwork(gen);
  embedding::GraRepConfig config;
  config.max_step = 2;
  config.dims_per_step = 8;
  const auto grarep = embedding::GraRepEmbedding::Train(net, config);
  EXPECT_EQ(grarep.dimensions(), 16u);
  for (graph::NodeId u = 0; u < net.num_nodes(); ++u) {
    for (float value : grarep.NodeVector(u)) {
      EXPECT_TRUE(std::isfinite(value));
    }
  }
}

TEST(GraRepTest, CommunityStructureSeparates) {
  data::GeneratorConfig gen;
  gen.num_nodes = 120;
  gen.ties_per_node = 4.0;
  gen.num_communities = 3;
  gen.cross_community_fraction = 0.05;
  gen.triangle_closure_prob = 0.0;
  gen.seed = 11;
  const auto net = data::GenerateStatusNetwork(gen);
  embedding::GraRepConfig config;
  config.max_step = 2;
  config.dims_per_step = 8;
  const auto grarep = embedding::GraRepEmbedding::Train(net, config);

  auto distance = [&](graph::NodeId a, graph::NodeId b) {
    const auto ra = grarep.NodeVector(a);
    const auto rb = grarep.NodeVector(b);
    double total = 0.0;
    for (size_t k = 0; k < ra.size(); ++k) {
      const double d = ra[k] - rb[k];
      total += d * d;
    }
    return total;
  };
  double within = 0.0, across = 0.0;
  int within_count = 0, across_count = 0;
  for (graph::NodeId u = 0; u < 45; ++u) {
    for (graph::NodeId v = u + 1; v < 45; ++v) {
      if (u % 3 == v % 3) {
        within += distance(u, v);
        ++within_count;
      } else {
        across += distance(u, v);
        ++across_count;
      }
    }
  }
  EXPECT_LT(within / within_count, across / across_count);
}


TEST(GraRepModelTest, BeatsChance) {
  data::GeneratorConfig gen;
  gen.num_nodes = 250;
  gen.ties_per_node = 4.0;
  gen.direction_noise = 0.05;
  gen.status_noise = 0.1;
  gen.seed = 13;
  const auto net = data::GenerateStatusNetwork(gen);
  util::Rng rng(15);
  const auto split = graph::HideDirections(net, 0.3, rng);

  core::GraRepModelConfig config;
  config.grarep.max_step = 2;
  config.grarep.dims_per_step = 8;
  const auto model = core::GraRepModel::Train(split.network, config);
  EXPECT_EQ(model->name(), "GraRep");
  EXPECT_GT(core::DirectionDiscoveryAccuracy(split, *model), 0.55);
}

}  // namespace
}  // namespace deepdirect::ml
