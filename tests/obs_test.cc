// Tests for the observability layer (src/obs/): metric primitives and their
// cross-thread merge, the registry, phase tracing, snapshot export — and two
// system-level guarantees: a tdl_cli-equivalent pipeline records telemetry
// for all four SgdDriver trainers, and enabling telemetry never perturbs the
// deterministic serial training path.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/applications.h"
#include "core/deepdirect.h"
#include "core/models.h"
#include "data/generators.h"
#include "embedding/random_walks.h"
#include "embedding/skipgram.h"
#include "graph/algorithms.h"
#include "graph/graph_io.h"
#include "json_lint.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "util/random.h"

namespace deepdirect {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Resets + enables the default registry for a test and restores the
// disabled default afterwards, so tests sharing one process stay isolated.
struct ScopedDefaultRegistry {
  ScopedDefaultRegistry() {
    obs::Registry::Default().Reset();
    obs::Registry::Default().set_enabled(true);
  }
  ~ScopedDefaultRegistry() {
    obs::Registry::Default().set_enabled(false);
    obs::Registry::Default().Reset();
  }
};

// A small synthetic network shared by the system-level tests.
graph::MixedSocialNetwork SmallNetwork(uint64_t seed) {
  data::GeneratorConfig gen;
  gen.num_nodes = 150;
  gen.ties_per_node = 4.0;
  gen.bidirectional_fraction = 0.2;
  gen.seed = seed;
  return data::GenerateStatusNetwork(gen);
}

#if DEEPDIRECT_OBS

// ------------------------------------------------------------- primitives

TEST(ObsCounterTest, AddsAndResets) {
  obs::Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(ObsCounterTest, ConcurrentAddsAllLand) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kAddsPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) counter.Add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kAddsPerThread);
}

TEST(ObsGaugeTest, LastValueWins) {
  obs::Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  gauge.Set(3.5);
  gauge.Set(-1.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), -1.25);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(ObsHistogramTest, StatsSummarizeObservations) {
  obs::Histogram histogram;
  for (double v : {1.0, 2.0, 4.0, 8.0}) histogram.Observe(v);
  const obs::HistogramStats stats = histogram.Stats();
  EXPECT_EQ(stats.count, 4u);
  EXPECT_DOUBLE_EQ(stats.sum, 15.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 8.0);
  EXPECT_DOUBLE_EQ(stats.mean, 3.75);
  // Quantiles are log2-bucket upper-bound estimates: ordered, and bounded
  // by the observed range up to one bucket of slack (a factor of two).
  EXPECT_GE(stats.p50, stats.min);
  EXPECT_LE(stats.p50, stats.p95);
  EXPECT_LE(stats.p95, stats.p99);
  EXPECT_LE(stats.p99, stats.max * 2.0);
}

TEST(ObsHistogramTest, EmptyZeroAndNegativeObservations) {
  obs::Histogram histogram;
  const obs::HistogramStats empty = histogram.Stats();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.min, 0.0);
  EXPECT_DOUBLE_EQ(empty.max, 0.0);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);

  // Values at or below the first bucket bound land in bucket zero instead
  // of faulting (log2 of a non-positive value is undefined).
  histogram.Observe(0.0);
  histogram.Observe(-3.0);
  const obs::HistogramStats stats = histogram.Stats();
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.min, -3.0);
  EXPECT_DOUBLE_EQ(stats.max, 0.0);
  EXPECT_TRUE(std::isfinite(stats.p50));
}

TEST(ObsHistogramTest, ConcurrentObservationsAllLand) {
  obs::Histogram histogram;
  constexpr int kThreads = 4;
  constexpr int kObservationsPerThread = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kObservationsPerThread; ++i) {
        histogram.Observe(2.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const obs::HistogramStats stats = histogram.Stats();
  EXPECT_EQ(stats.count,
            static_cast<uint64_t>(kThreads) * kObservationsPerThread);
  EXPECT_DOUBLE_EQ(stats.sum, 2.0 * kThreads * kObservationsPerThread);
  EXPECT_DOUBLE_EQ(stats.min, 2.0);
  EXPECT_DOUBLE_EQ(stats.max, 2.0);
}

// --------------------------------------------------------------- registry

TEST(ObsRegistryTest, GetReturnsStablePointers) {
  obs::Registry registry;
  obs::Counter* counter = registry.GetCounter("c");
  EXPECT_EQ(registry.GetCounter("c"), counter);
  EXPECT_NE(registry.GetCounter("other"), counter);
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));
}

TEST(ObsRegistryTest, SnapshotMergesAllKindsAndResetKeepsPointers) {
  obs::Registry registry;
  obs::Counter* counter = registry.GetCounter("events");
  counter->Add(7);
  registry.GetGauge("speed")->Set(1.5);
  registry.GetHistogram("latency")->Observe(0.25);
  registry.Append("loss", 0.9);
  registry.Append("loss", 0.8);

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_FALSE(snapshot.empty());
  EXPECT_EQ(snapshot.counters.at("events"), 7u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("speed"), 1.5);
  EXPECT_EQ(snapshot.histograms.at("latency").count, 1u);
  EXPECT_EQ(snapshot.series.at("loss"),
            (std::vector<double>{0.9, 0.8}));

  registry.Reset();
  counter->Add(1);  // the cached pointer must survive Reset
  const obs::MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.counters.at("events"), 1u);
  EXPECT_DOUBLE_EQ(after.gauges.at("speed"), 0.0);
  EXPECT_EQ(after.histograms.at("latency").count, 0u);
  EXPECT_TRUE(after.series.empty());
}

TEST(ObsRegistryTest, EnabledGateStartsOffAndToggles) {
  obs::Registry registry;
  EXPECT_FALSE(registry.enabled());
  registry.set_enabled(true);
  EXPECT_TRUE(registry.enabled());
  registry.set_enabled(false);
  EXPECT_FALSE(registry.enabled());
}

// ----------------------------------------------------------------- export

TEST(ObsSnapshotTest, JsonIsWellFormedAndCoversEveryKind) {
  obs::Registry registry;
  registry.GetCounter("events")->Add(3);
  registry.GetGauge("speed")->Set(2.5);
  registry.GetHistogram("latency")->Observe(1.0);
  registry.Append("loss", 0.5);

  const std::string json = registry.Snapshot().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("\"events\": 3"), std::string::npos);
  // Strict JSON: balanced braces and an even number of quotes.
  size_t open = 0, close = 0, quotes = 0;
  for (char c : json) {
    open += (c == '{');
    close += (c == '}');
    quotes += (c == '"');
  }
  EXPECT_EQ(open, close);
  EXPECT_EQ(quotes % 2, 0u);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(ObsSnapshotTest, NonFiniteValuesAreClampedInJson) {
  obs::Registry registry;
  registry.GetGauge("bad")->Set(std::numeric_limits<double>::infinity());
  registry.Append("worse", std::nan(""));
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(ObsSnapshotTest, CsvEmitsLongFormRows) {
  obs::Registry registry;
  registry.GetCounter("events")->Add(5);
  registry.GetHistogram("latency")->Observe(1.0);
  registry.Append("loss", 0.5);
  const std::string path = TempPath("obs_snapshot.csv");
  ASSERT_TRUE(registry.Snapshot().WriteCsv(path).ok());

  const std::string csv = ReadFile(path);
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,events,value,5"), std::string::npos);
  EXPECT_NE(csv.find("histogram,latency,count,1"), std::string::npos);
  EXPECT_NE(csv.find("series,loss,0,"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------- phase tracing

TEST(ObsTraceTest, PhaseScopeRecordsDurationAndCallCount) {
  ScopedDefaultRegistry guard;
  {
    obs::PhaseScope scope("obs_test.phase");
  }
  {
    obs::PhaseScope scope("obs_test.phase");
  }
  const obs::MetricsSnapshot snapshot = obs::Registry::Default().Snapshot();
  EXPECT_EQ(snapshot.counters.at("phase.obs_test.phase.calls"), 2u);
  const obs::HistogramStats stats =
      snapshot.histograms.at("phase.obs_test.phase.seconds");
  EXPECT_EQ(stats.count, 2u);
  EXPECT_GE(stats.sum, 0.0);
  EXPECT_TRUE(std::isfinite(stats.sum));
}

TEST(ObsTraceTest, DisabledRegistryRecordsNothing) {
  obs::Registry::Default().Reset();
  obs::Registry::Default().set_enabled(false);
  {
    obs::PhaseScope scope("obs_test.dark");
  }
  const obs::MetricsSnapshot snapshot = obs::Registry::Default().Snapshot();
  EXPECT_EQ(snapshot.counters.count("phase.obs_test.dark.calls"), 0u);
  EXPECT_EQ(snapshot.histograms.count("phase.obs_test.dark.seconds"), 0u);
  obs::Registry::Default().Reset();
}

// A registry gate that turns off between a PhaseScope's construction and
// teardown must suppress the teardown write entirely: the call counter
// (bumped at construction, while recording was still sanctioned) stays, but
// no duration lands in a registry the owner has switched off.
TEST(ObsTraceTest, PhaseScopeMidSpanDisableLeavesRegistryUntouched) {
  obs::Registry& registry = obs::Registry::Default();
  registry.Reset();
  registry.set_enabled(true);
  {
    obs::PhaseScope scope("obs_test.mid_disable");
    registry.set_enabled(false);
  }
  registry.set_enabled(true);
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("phase.obs_test.mid_disable.calls"), 1u);
  EXPECT_EQ(snapshot.histograms.at("phase.obs_test.mid_disable.seconds").count,
            0u);
  registry.set_enabled(false);
  registry.Reset();
}

// ---------------------------------------------------------------- timeline

TEST(ObsTimelineTest, SnapshotLineIsValidJsonCoveringEveryKind) {
  obs::Registry registry;
  registry.GetCounter("events")->Add(3);
  registry.GetGauge("speed")->Set(2.5);
  registry.Append("loss", 0.9);
  registry.Append("loss", 0.4);

  const std::string line =
      obs::TimelineWriter::SnapshotLine(1.5, registry.Snapshot());
  ASSERT_TRUE(testing::JsonLinter::Valid(line)) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one JSONL record
  EXPECT_NE(line.find("\"wall_seconds\": 1.5"), std::string::npos);
  EXPECT_NE(line.find("\"events\": 3"), std::string::npos);
  EXPECT_NE(line.find("\"speed\": 2.5"), std::string::npos);
  // Series are summarized as length + latest value, not dumped whole.
  EXPECT_NE(line.find("\"series_len\""), std::string::npos);
  EXPECT_NE(line.find("\"series_last\""), std::string::npos);
  EXPECT_NE(line.find("\"loss\": 2"), std::string::npos);
  EXPECT_NE(line.find("\"loss\": 0.4"), std::string::npos);
}

TEST(ObsTimelineTest, WriterAppendsParseableTicksWhileTraining) {
  ScopedDefaultRegistry guard;
  obs::Registry::Default().GetCounter("obs_test.timeline.events")->Add(7);

  const std::string path = TempPath("obs_timeline.jsonl");
  obs::TimelineWriter writer(path, 0.02);
  ASSERT_TRUE(writer.Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(90));
  writer.Stop();

  // Periodic ticks plus the guaranteed final tick on Stop().
  EXPECT_GE(writer.ticks(), 2u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  uint64_t lines = 0;
  double last_wall = -1.0;
  while (std::getline(in, line)) {
    ASSERT_TRUE(testing::JsonLinter::Valid(line)) << line;
    EXPECT_NE(line.find("\"wall_seconds\""), std::string::npos);
    EXPECT_NE(line.find("\"obs_test.timeline.events\": 7"),
              std::string::npos);
    const double wall =
        std::stod(line.substr(line.find("\"wall_seconds\": ") + 16));
    EXPECT_GT(wall, last_wall);  // wall clock strictly advances per tick
    last_wall = wall;
    ++lines;
  }
  EXPECT_EQ(lines, writer.ticks());
  std::remove(path.c_str());
}

TEST(ObsTimelineTest, ShortRunsStillGetOneFinalTickAndStopIsIdempotent) {
  ScopedDefaultRegistry guard;
  const std::string path = TempPath("obs_timeline_short.jsonl");
  obs::TimelineWriter writer(path, 60.0);  // interval far beyond the test
  ASSERT_TRUE(writer.Start().ok());
  writer.Stop();
  writer.Stop();
  EXPECT_EQ(writer.ticks(), 1u);

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(testing::JsonLinter::Valid(line)) << line;
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(ObsTimelineTest, StartFailsCleanlyOnUnwritablePath) {
  obs::TimelineWriter writer("/nonexistent-dir/timeline.jsonl", 0.1);
  const auto status = writer.Start();
  EXPECT_FALSE(status.ok());
  writer.Stop();  // must be safe after a failed Start
  EXPECT_EQ(writer.ticks(), 0u);
}

// -------------------------------------------------------------- end-to-end

// The tdl_cli-equivalent pipeline: save + reload a network, train the
// DeepDirect E/D-steps and the LINE model (LINE embedding + logistic
// regression) as `tdl_cli discover` would, train skip-gram directly (the
// fourth SgdDriver trainer has no CLI method), and check the snapshot has
// every telemetry surface the --metrics-out contract promises.
TEST(ObsEndToEndTest, PipelineSnapshotCoversAllFourTrainers) {
  ScopedDefaultRegistry guard;

  const auto generated = SmallNetwork(9);
  const std::string net_path = TempPath("obs_e2e_net.tsv");
  ASSERT_TRUE(graph::SaveEdgeList(generated, net_path).ok());
  auto loaded = graph::LoadEdgeList(net_path);
  ASSERT_TRUE(loaded.ok());
  const size_t num_nodes = loaded.value().num_nodes();
  util::Rng rng(11);
  const auto split = graph::HideDirections(loaded.value(), 0.5, rng);

  auto configs = core::MethodConfigs::FastDefaults();
  configs.deepdirect.dimensions = 16;
  configs.deepdirect.epochs = 1.0;
  configs.line.line.dimensions = 16;
  const auto deepdirect_model =
      core::TrainMethod(split.network, core::Method::kDeepDirect, configs);
  const auto line_model =
      core::TrainMethod(split.network, core::Method::kLine, configs);
  ASSERT_NE(deepdirect_model, nullptr);
  ASSERT_NE(line_model, nullptr);

  embedding::WalkConfig walk_config;
  walk_config.walks_per_node = 2;
  walk_config.walk_length = 10;
  const auto corpus = embedding::GenerateWalks(split.network, walk_config);
  embedding::SkipGramConfig skipgram_config;
  skipgram_config.dimensions = 16;
  skipgram_config.epochs = 1;
  embedding::TrainSkipGram(corpus, num_nodes, skipgram_config);

  const obs::MetricsSnapshot snapshot = obs::Registry::Default().Snapshot();

  // Per-run losses for all four SgdDriver trainers (plus the two logistic
  // regression heads, whose run_loss series is the per-epoch loss curve).
  for (const char* name :
       {"train.deepdirect.estep.run_loss", "train.deepdirect.dstep.run_loss",
        "train.line.run_loss", "train.skipgram.run_loss",
        "train.logreg.run_loss"}) {
    ASSERT_TRUE(snapshot.series.contains(name)) << name;
    ASSERT_FALSE(snapshot.series.at(name).empty()) << name;
    for (double value : snapshot.series.at(name)) {
      EXPECT_TRUE(std::isfinite(value)) << name;
    }
  }
  // Epoch-per-Run trainers report one run_loss entry per epoch.
  EXPECT_EQ(snapshot.series.at("train.logreg.run_loss").size(),
            configs.line.regression.epochs);
  EXPECT_EQ(snapshot.series.at("train.deepdirect.dstep.run_loss").size(),
            configs.deepdirect.d_step.epochs);

  // Phase timings for the training pipeline and graph loading.
  for (const char* name :
       {"phase.graph.load.seconds", "phase.deepdirect.train.seconds",
        "phase.deepdirect.preprocess.seconds",
        "phase.deepdirect.estep.seconds", "phase.deepdirect.dstep.seconds"}) {
    ASSERT_TRUE(snapshot.histograms.contains(name)) << name;
    const obs::HistogramStats& stats = snapshot.histograms.at(name);
    EXPECT_GE(stats.count, 1u) << name;
    EXPECT_TRUE(std::isfinite(stats.sum)) << name;
    EXPECT_GE(stats.sum, 0.0) << name;
  }

  // Step counters, throughput gauges, and sampler counters.
  EXPECT_GT(snapshot.counters.at("train.deepdirect.estep.steps"), 0u);
  EXPECT_GT(snapshot.counters.at("train.line.steps"), 0u);
  EXPECT_GT(snapshot.counters.at("train.skipgram.steps"), 0u);
  EXPECT_GT(snapshot.counters.at("graph.load.ties"), 0u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("graph.load.nodes"),
                   static_cast<double>(num_nodes));
  for (const char* name : {"train.deepdirect.estep.examples_per_sec",
                           "train.line.examples_per_sec",
                           "train.skipgram.examples_per_sec"}) {
    ASSERT_TRUE(snapshot.gauges.contains(name)) << name;
    EXPECT_TRUE(std::isfinite(snapshot.gauges.at(name))) << name;
    EXPECT_GT(snapshot.gauges.at(name), 0.0) << name;
  }
  EXPECT_GT(
      snapshot.counters.at("deepdirect.estep.sampler.labeled_steps") +
          snapshot.counters.at(
              "deepdirect.estep.sampler.degree_pattern_steps") +
          snapshot.counters.at("deepdirect.estep.sampler.triad_pattern_steps"),
      0u);

  // The JSON export round-trips: well-formed, carries the required keys,
  // and contains no non-finite literals.
  const std::string json_path = TempPath("obs_e2e_metrics.json");
  ASSERT_TRUE(snapshot.WriteJson(json_path).ok());
  const std::string json = ReadFile(json_path);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  size_t open = 0, close = 0;
  for (char c : json) {
    open += (c == '{');
    close += (c == '}');
  }
  EXPECT_EQ(open, close);
  for (const char* key :
       {"\"train.deepdirect.estep.run_loss\"", "\"train.line.run_loss\"",
        "\"train.skipgram.run_loss\"", "\"phase.deepdirect.estep.seconds\"",
        "\"train.deepdirect.estep.examples_per_sec\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  std::remove(json_path.c_str());
  std::remove(net_path.c_str());
}

#else  // !DEEPDIRECT_OBS — the compiled-out shells must stay inert.

TEST(ObsCompiledOutTest, ShellsAreInert) {
  EXPECT_FALSE(obs::Enabled());
  obs::Registry& registry = obs::Registry::Default();
  registry.set_enabled(true);  // must stay off: the layer is compiled out
  EXPECT_FALSE(registry.enabled());
  registry.GetCounter("events")->Add(5);
  EXPECT_EQ(registry.GetCounter("events")->Value(), 0u);
  EXPECT_TRUE(registry.Snapshot().empty());
  EXPECT_EQ(registry.Snapshot().ToJson(), "{}");
}

#endif  // DEEPDIRECT_OBS

// ------------------------------------------------- determinism regression

// Telemetry must be a pure observer: with num_threads = 1 the E-Step (and
// the D-Step head it feeds) must produce bit-identical parameters whether
// the registry is recording or not. Runs in both build modes (with the
// layer compiled out it degenerates to a plain reproducibility check).
TEST(ObsDeterminismTest, SerialTrainingIsBitIdenticalWithMetricsOnAndOff) {
  const auto net = SmallNetwork(13);
  core::DeepDirectConfig config;
  config.dimensions = 16;
  config.epochs = 2.0;
  config.seed = 7;
  config.num_threads = 1;
  config.d_step.num_threads = 1;

  obs::Registry& registry = obs::Registry::Default();
  registry.Reset();
  registry.set_enabled(false);
  const auto model_off = core::DeepDirectModel::Train(net, config);

  registry.set_enabled(true);
  const auto model_on = core::DeepDirectModel::Train(net, config);
  registry.set_enabled(false);
  registry.Reset();

  const auto& data_off = model_off->embeddings().data();
  const auto& data_on = model_on->embeddings().data();
  ASSERT_EQ(data_off.size(), data_on.size());
  for (size_t i = 0; i < data_off.size(); ++i) {
    ASSERT_EQ(data_off[i], data_on[i]) << "embedding element " << i;
  }
  const auto& weights_off = model_off->e_step_weights();
  const auto& weights_on = model_on->e_step_weights();
  ASSERT_EQ(weights_off.size(), weights_on.size());
  for (size_t i = 0; i < weights_off.size(); ++i) {
    ASSERT_EQ(weights_off[i], weights_on[i]) << "classifier weight " << i;
  }
  ASSERT_EQ(model_off->e_step_bias(), model_on->e_step_bias());
}

}  // namespace
}  // namespace deepdirect
