// Ablation benches for the design choices DESIGN.md calls out:
//   (1) tie-degree weighting of the classifier losses (Eq. 13 / Eq. 16),
//   (2) the degree-pattern threshold T (Eq. 16),
//   (3) deg_tie^{3/4} vs uniform negative sampling (Eq. 9),
//   (4) LINE edge operators beyond the paper's concatenation,
//   (5) the MLP D-Step extension (Sec. 8 future work).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/applications.h"
#include "core/deepdirect.h"
#include "core/line_model.h"
#include "core/models.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "ml/dataset.h"
#include "ml/mlp.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace {

using namespace deepdirect;

double MlpHeadAccuracy(const graph::HiddenDirectionSplit& split,
                       const core::DeepDirectModel& model,
                       size_t hidden_units) {
  const auto& index = model.index();
  const size_t dims = model.embeddings().cols();
  ml::Dataset data(dims);
  std::vector<double> features(dims);
  for (size_t e = 0; e < index.num_arcs(); ++e) {
    if (!index.IsLabeled(e)) continue;
    const auto row = model.embeddings().Row(e);
    for (size_t k = 0; k < dims; ++k) features[k] = row[k];
    data.Add(features, index.Label(e));
  }
  ml::MlpClassifier mlp(dims, hidden_units, 3);
  ml::MlpConfig config;
  config.epochs = 30;
  mlp.Train(data, config);

  size_t correct = 0;
  for (graph::ArcId id : split.hidden_true_arcs) {
    const auto& arc = split.network.arc(id);
    auto predict = [&](graph::NodeId x, graph::NodeId y) {
      const auto row = model.TieEmbedding(x, y);
      std::vector<double> f(row.size());
      for (size_t k = 0; k < row.size(); ++k) f[k] = row[k];
      return mlp.Predict(f);
    };
    correct += predict(arc.src, arc.dst) >= predict(arc.dst, arc.src);
  }
  return static_cast<double>(correct) / split.hidden_true_arcs.size();
}

}  // namespace

int main() {
  deepdirect::bench::BenchSession session("ablations");
  using namespace deepdirect;
  const double scale = bench::BenchScale();
  const std::vector<data::DatasetId> datasets =
      bench::BenchFast()
          ? std::vector<data::DatasetId>{data::DatasetId::kTwitter}
          : std::vector<data::DatasetId>{data::DatasetId::kTwitter,
                                         data::DatasetId::kSlashdot,
                                         data::DatasetId::kTencent};
  auto csv = bench::OpenResultCsv("ablations");
  csv.WriteRow({"dataset", "ablation", "variant", "accuracy"});

  for (data::DatasetId id : datasets) {
    const auto net = data::MakeDataset(id, scale);
    util::Rng rng(55);
    const auto split = graph::HideDirections(net, 0.2, rng);
    const core::DeepDirectConfig base =
        core::MethodConfigs::FastDefaults().deepdirect;

    std::printf("=== Ablations on %s (20%% directed) ===\n\n",
                data::DatasetName(id));
    util::TablePrinter table({"ablation", "variant", "accuracy"});
    auto record = [&](const std::string& ablation,
                      const std::string& variant, double accuracy) {
      table.AddRow({ablation, variant,
                    util::TablePrinter::FormatDouble(accuracy, 4)});
      csv.WriteRow({data::DatasetName(id), ablation, variant,
                    util::TablePrinter::FormatDouble(accuracy, 4)});
      session.Add("accuracy", "fraction", "higher", accuracy,
                  {{"dataset", data::DatasetName(id)},
                   {"ablation", ablation},
                   {"variant", variant}});
    };

    // (1) tie-degree weighting on/off.
    {
      auto config = base;
      const auto on = core::DeepDirectModel::Train(split.network, config);
      record("tie-degree weighting", "on (Eq. 13)",
             core::DirectionDiscoveryAccuracy(split, *on));
      config.weight_by_tie_degree = false;
      const auto off = core::DeepDirectModel::Train(split.network, config);
      record("tie-degree weighting", "off",
             core::DirectionDiscoveryAccuracy(split, *off));
    }

    // (2) degree-pattern threshold T.
    for (double threshold : {0.3, 0.5, 0.6, 0.75, 0.9}) {
      auto config = base;
      config.degree_pattern_threshold = threshold;
      const auto model = core::DeepDirectModel::Train(split.network, config);
      record("degree-pattern threshold T",
             util::TablePrinter::FormatDouble(threshold, 2),
             core::DirectionDiscoveryAccuracy(split, *model));
    }

    // (3) negative-sampling distribution.
    {
      auto config = base;
      const auto powered = core::DeepDirectModel::Train(split.network, config);
      record("negative sampling", "deg_tie^{3/4} (Eq. 9)",
             core::DirectionDiscoveryAccuracy(split, *powered));
      config.uniform_negative_sampling = true;
      const auto uniform = core::DeepDirectModel::Train(split.network, config);
      record("negative sampling", "uniform",
             core::DirectionDiscoveryAccuracy(split, *uniform));
    }

    // (4) LINE edge operators.
    for (auto op : {embedding::EdgeOperator::kConcatenate,
                    embedding::EdgeOperator::kAverage,
                    embedding::EdgeOperator::kHadamard,
                    embedding::EdgeOperator::kL1,
                    embedding::EdgeOperator::kL2}) {
      auto config = core::MethodConfigs::FastDefaults().line;
      config.edge_operator = op;
      const auto model = core::LineModel::Train(split.network, config);
      record("LINE edge operator", embedding::EdgeOperatorToString(op),
             core::DirectionDiscoveryAccuracy(split, *model));
    }

    // (5) D-Step head: linear LR (paper) vs MLP (future-work extension).
    {
      const auto model = core::DeepDirectModel::Train(split.network, base);
      record("D-Step head", "logistic regression (Eq. 26)",
             core::DirectionDiscoveryAccuracy(split, *model));
      record("D-Step head", "MLP (Sec. 8 extension)",
             MlpHeadAccuracy(split, *model, 32));
    }

    table.Print();
    std::printf("\n");
  }
  return session.Finish(0);
}
