// Streaming-update bench: on the Fig-3 status-network generator, compares
// a full retrain against warm-started incremental updates (base train +
// the tail ties streamed in as 3 batches) across a sweep of tail sizes,
// and gates the contract of tdl_cli update:
//
//   incremental_accuracy_ge_0p95x  "bool"/higher  every sweep point's
//                                                 direction-discovery
//                                                 accuracy is >= 0.95x the
//                                                 full retrain's
//   incremental_steps_le_0p2x      "bool"/higher  every sweep point's total
//                                                 incremental E-step budget
//                                                 is <= 0.2x the full
//                                                 retrain's step count
//
// Both models are scored against the SAME hidden-direction split (the
// merged update network is tie-for-tie the full training network, pinned
// by a tie-index hash check), so the accuracy ratio is a like-for-like
// differential, not two different splits. Timing rows (*_seconds) carry
// machine-dependent wall clock and are skipped by the cross-machine gate
// (scripts/bench_compare.py --skip-timing); the ratios and counters
// transfer.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/applications.h"
#include "core/deepdirect.h"
#include "core/incremental.h"
#include "core/models.h"
#include "core/tie_index.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "train/incremental.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace deepdirect;

constexpr size_t kNumBatches = 3;

struct TailSplit {
  graph::MixedSocialNetwork base;
  std::vector<train::TieBatch> batches;
};

// Splits off `num_tail` random ties as kNumBatches update batches; the
// rest is the pre-update base network.
TailSplit SplitTail(const graph::MixedSocialNetwork& g, size_t num_tail,
                    uint64_t seed) {
  std::vector<train::TieDelta> ties = core::ExtractTies(g);
  std::vector<size_t> order(ties.size());
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng(seed);
  rng.Shuffle(order);

  std::vector<uint8_t> in_tail(ties.size(), 0);
  for (size_t i = 0; i < num_tail; ++i) in_tail[order[i]] = 1;
  graph::GraphBuilder builder(g.num_nodes());
  for (size_t i = 0; i < ties.size(); ++i) {
    if (in_tail[i]) continue;
    const auto status = builder.AddTie(ties[i].u, ties[i].v, ties[i].type);
    if (!status.ok()) std::abort();
  }

  TailSplit out{std::move(builder).Build(), {}};
  out.batches.resize(kNumBatches);
  for (size_t i = 0; i < num_tail; ++i) {
    train::TieBatch& batch = out.batches[i % kNumBatches];
    train::TieDelta tie = ties[order[i]];
    tie.line = static_cast<uint32_t>(batch.ties.size() + 1);
    batch.ties.push_back(tie);
  }
  return out;
}

}  // namespace

int main() {
  bench::BenchSession session("incremental");
  std::printf("=== Incremental tie-batch updates vs full retrain ===\n\n");

  // Floor the scale so the tail batches stay a small fraction of the
  // network — the regime streaming updates exist for. Still seconds-fast.
  const double scale = std::max(bench::BenchScale(), 0.4);
  const auto net = data::MakeDataset(data::DatasetId::kTwitter, scale);
  util::Rng rng(77);
  const auto split = graph::HideDirections(net, 0.7, rng);

  core::DeepDirectConfig config =
      core::MethodConfigs::FastDefaults().deepdirect;
  config.num_threads = 1;  // deterministic serial runs
  config.d_step.num_threads = 1;

  core::IncrementalOptions options;
  options.epochs_per_batch = 1.0;

  util::Timer timer;
  const auto full = core::DeepDirectModel::Train(split.network, config);
  const double full_seconds = timer.ElapsedSeconds();
  const double acc_full = core::DirectionDiscoveryAccuracy(split, *full);
  const uint64_t full_steps = static_cast<uint64_t>(
      config.epochs *
      static_cast<double>(core::TieIndex(split.network).NumConnectedTiePairs()));
  const uint64_t full_hash = core::HashTieIndex(full->index());

  const size_t num_ties = split.network.num_ties();
  const double tail_fractions[] = {0.005, 0.01, 0.02};

  util::TablePrinter table({"tail", "ties", "affected", "upd_steps",
                            "steps_x", "acc_full", "acc_inc", "acc_x",
                            "seconds"});
  auto csv = bench::OpenResultCsv("incremental");
  csv.WriteRow({"tail_fraction", "tail_ties", "affected_arcs",
                "update_steps", "full_steps", "step_ratio", "acc_full",
                "acc_inc", "acc_ratio", "update_seconds"});

  double min_acc_ratio = 1e9;
  double max_step_ratio = 0.0;
  bool merged_matches = true;
  for (const double fraction : tail_fractions) {
    const size_t num_tail =
        std::max<size_t>(kNumBatches,
                         static_cast<size_t>(fraction * num_ties));
    TailSplit tail = SplitTail(split.network, num_tail, 99);
    if (tail.base.num_directed_ties() == 0) std::abort();

    const std::string ckpt_dir =
        bench::ResultDir() + "/incremental_ckpt_" +
        std::to_string(static_cast<int>(fraction * 1000));
    core::DeepDirectConfig base_config = config;
    train::CheckpointPolicy policy;
    policy.write_final = true;
    base_config.checkpoint = {ckpt_dir, "deepdirect.estep", policy, false};
    const auto base = core::DeepDirectModel::Train(tail.base, base_config);
    auto state = train::LoadEStepState(ckpt_dir);
    if (!state.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   state.status().ToString().c_str());
      return session.Finish(1);
    }

    timer.Reset();
    uint64_t update_steps = 0;
    size_t affected = 0;
    core::IncrementalUpdate last{std::move(tail.base), nullptr,
                                 std::move(state).value(), {}};
    for (const train::TieBatch& batch : tail.batches) {
      auto updated = core::DeepDirectModel::ApplyTieBatch(
          last.network, batch, last.state, config, options);
      if (!updated.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     updated.status().ToString().c_str());
        return session.Finish(1);
      }
      last = std::move(updated).value();
      update_steps += last.stats.estep_steps;
      affected += last.stats.affected_arcs;
    }
    const double update_seconds = timer.ElapsedSeconds();

    // The merged network must be tie-for-tie the full training network,
    // or the accuracy comparison below compares nothing.
    merged_matches = merged_matches &&
                     core::HashTieIndex(last.model->index()) == full_hash;
    const double acc_inc =
        core::DirectionDiscoveryAccuracy(split, *last.model);
    const double acc_ratio = acc_full > 0.0 ? acc_inc / acc_full : 0.0;
    const double step_ratio =
        static_cast<double>(update_steps) / static_cast<double>(full_steps);
    min_acc_ratio = std::min(min_acc_ratio, acc_ratio);
    max_step_ratio = std::max(max_step_ratio, step_ratio);

    table.AddRow({util::TablePrinter::FormatDouble(fraction, 3),
                  std::to_string(num_tail), std::to_string(affected),
                  std::to_string(update_steps),
                  util::TablePrinter::FormatDouble(step_ratio, 3),
                  util::TablePrinter::FormatDouble(acc_full, 4),
                  util::TablePrinter::FormatDouble(acc_inc, 4),
                  util::TablePrinter::FormatDouble(acc_ratio, 3),
                  util::TablePrinter::FormatDouble(update_seconds, 3)});
    csv.WriteRow({util::TablePrinter::FormatDouble(fraction, 3),
                  std::to_string(num_tail), std::to_string(affected),
                  std::to_string(update_steps), std::to_string(full_steps),
                  util::TablePrinter::FormatDouble(step_ratio, 4),
                  util::TablePrinter::FormatDouble(acc_full, 4),
                  util::TablePrinter::FormatDouble(acc_inc, 4),
                  util::TablePrinter::FormatDouble(acc_ratio, 4),
                  util::TablePrinter::FormatDouble(update_seconds, 3)});
  }
  table.Print();

  const std::map<std::string, std::string> labels = {
      {"batches", std::to_string(kNumBatches)},
      {"epochs_per_batch", "1"}};
  session.Add("full_train_seconds", "seconds", "lower", full_seconds,
              labels);
  session.Add("incremental_min_acc_ratio", "x", "higher", min_acc_ratio,
              labels);
  session.Add("incremental_max_step_ratio", "x", "lower", max_step_ratio,
              labels);
  session.Add("incremental_merged_matches_full", "bool", "higher",
              merged_matches ? 1.0 : 0.0, labels);
  session.Add("incremental_accuracy_ge_0p95x", "bool", "higher",
              min_acc_ratio >= 0.95 ? 1.0 : 0.0, labels);
  session.Add("incremental_steps_le_0p2x", "bool", "higher",
              max_step_ratio <= 0.2 ? 1.0 : 0.0, labels);

  std::printf(
      "\ngates: accuracy %.3fx full retrain (>=0.95 required), steps "
      "%.3fx (<=0.2 required), merged network %s\n",
      min_acc_ratio, max_step_ratio, merged_matches ? "ok" : "MISMATCH");
  const bool gates_ok = min_acc_ratio >= 0.95 && max_step_ratio <= 0.2 &&
                        merged_matches;
  return session.Finish(gates_ok ? 0 : 1);
}
