// Google-benchmark microbenchmarks for the hot primitives: alias sampling,
// connected-tie sampling, triad census, BFS, tie-index construction,
// E-Step iteration throughput (via a tiny training run), and line-graph
// construction (the size-blowup argument of Sec. 4).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/deepdirect.h"
#include "core/tie_index.h"
#include "data/datasets.h"
#include "embedding/line.h"
#include "graph/algorithms.h"
#include "graph/centrality.h"
#include "graph/line_graph.h"
#include "graph/triads.h"
#include "util/alias_table.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace deepdirect;

// Session owned by main(); BM bodies add structured measurements through
// it (null only if a BM were invoked outside main, which cannot happen).
bench::BenchSession* g_session = nullptr;

const graph::MixedSocialNetwork& BenchNetwork() {
  static const graph::MixedSocialNetwork* net = [] {
    return new graph::MixedSocialNetwork(
        data::MakeDataset(data::DatasetId::kSlashdot, 0.5));
  }();
  return *net;
}

void BM_AliasTableSample(benchmark::State& state) {
  const auto& net = BenchNetwork();
  std::vector<double> weights(net.num_arcs());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = net.TieDegree(static_cast<graph::ArcId>(i)) + 1.0;
  }
  const util::AliasTable table(weights);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_AliasTableSample);

void BM_AliasTableBuild(benchmark::State& state) {
  const auto& net = BenchNetwork();
  std::vector<double> weights(net.num_arcs());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = net.TieDegree(static_cast<graph::ArcId>(i)) + 1.0;
  }
  for (auto _ : state) {
    util::AliasTable table(weights);
    benchmark::DoNotOptimize(table.size());
  }
}
BENCHMARK(BM_AliasTableBuild);

void BM_SampleConnectedTie(benchmark::State& state) {
  const auto& net = BenchNetwork();
  const core::TieIndex index(net);
  util::Rng rng(3);
  size_t arc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.SampleConnectedTie(arc, rng));
    arc = (arc + 1) % index.num_arcs();
  }
}
BENCHMARK(BM_SampleConnectedTie);

void BM_TieIndexBuild(benchmark::State& state) {
  const auto& net = BenchNetwork();
  for (auto _ : state) {
    core::TieIndex index(net);
    benchmark::DoNotOptimize(index.num_arcs());
  }
}
BENCHMARK(BM_TieIndexBuild);

void BM_DirectedTriadCounts(benchmark::State& state) {
  const auto& net = BenchNetwork();
  graph::ArcId arc = 0;
  for (auto _ : state) {
    const auto& a = net.arc(arc);
    benchmark::DoNotOptimize(graph::DirectedTriadCounts(net, a.src, a.dst));
    arc = (arc + 1) % static_cast<graph::ArcId>(net.num_arcs());
  }
}
BENCHMARK(BM_DirectedTriadCounts);

void BM_BfsDistances(benchmark::State& state) {
  const auto& net = BenchNetwork();
  graph::NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::BfsDistances(net, source));
    source = (source + 1) % static_cast<graph::NodeId>(net.num_nodes());
  }
}
BENCHMARK(BM_BfsDistances);

void BM_SampledBetweenness(benchmark::State& state) {
  const auto& net = BenchNetwork();
  for (auto _ : state) {
    util::Rng rng(5);
    benchmark::DoNotOptimize(
        graph::BetweennessCentralitySampled(net, 16, rng));
  }
}
BENCHMARK(BM_SampledBetweenness);

void BM_LineGraphBuild(benchmark::State& state) {
  const auto& net = BenchNetwork();
  for (auto _ : state) {
    const auto line = graph::BuildLineGraph(net);
    benchmark::DoNotOptimize(line.edges.size());
  }
  state.counters["edges"] =
      static_cast<double>(graph::PredictLineGraphSize(net));
}
BENCHMARK(BM_LineGraphBuild);

void BM_DeepDirectEStepIterations(benchmark::State& state) {
  // Measures E-Step throughput: a fixed small iteration budget per run.
  const auto& net = BenchNetwork();
  core::DeepDirectConfig config;
  config.dimensions = 64;
  config.negative_samples = 5;
  for (auto _ : state) {
    // epochs chosen so one run is ~0.1 |C(G)| iterations.
    config.epochs = 0.1;
    auto model = core::DeepDirectModel::Train(net, config);
    benchmark::DoNotOptimize(model->embeddings().rows());
  }
  const core::TieIndex index(net);
  state.counters["iters_per_run"] =
      0.1 * static_cast<double>(index.NumConnectedTiePairs());
}
BENCHMARK(BM_DeepDirectEStepIterations)->Unit(benchmark::kMillisecond);

// Shared CSV for the worker-scaling rows (one row per worker count).
util::CsvWriter& ThreadsThroughputCsv() {
  static util::CsvWriter csv = [] {
    util::CsvWriter writer(bench::OpenResultCsv("micro_threads_throughput"));
    writer.WriteRow({"threads", "steps_per_sec"});
    return writer;
  }();
  return csv;
}

void BM_DeepDirectEStepThreads(benchmark::State& state) {
  // E-Step steps/sec against Hogwild worker count. Speedup is bounded by
  // the host's core count; the CSV records whatever this machine delivers.
  const auto& net = BenchNetwork();
  core::DeepDirectConfig config;
  config.dimensions = 64;
  config.negative_samples = 5;
  config.epochs = 0.1;
  config.num_threads = static_cast<size_t>(state.range(0));
  const core::TieIndex index(net);
  const double iters_per_run =
      config.epochs * static_cast<double>(index.NumConnectedTiePairs());

  util::Timer timer;
  for (auto _ : state) {
    auto model = core::DeepDirectModel::Train(net, config);
    benchmark::DoNotOptimize(model->embeddings().rows());
  }
  const double elapsed = timer.ElapsedSeconds();
  const double total_steps =
      iters_per_run * static_cast<double>(state.iterations());
  state.counters["steps_per_sec"] =
      benchmark::Counter(total_steps, benchmark::Counter::kIsRate);
  if (elapsed > 0.0) {
    ThreadsThroughputCsv().WriteRow(
        {std::to_string(state.range(0)),
         std::to_string(total_steps / elapsed)});
    if (g_session != nullptr) {
      g_session->Add("estep_steps_per_sec", "steps/sec", "higher",
                     total_steps / elapsed,
                     {{"threads", std::to_string(state.range(0))}});
    }
  }
}
BENCHMARK(BM_DeepDirectEStepThreads)
    ->Apply([](benchmark::internal::Benchmark* b) {
      // Fast mode trims the worker sweep; full mode measures the scaling
      // curve even past the host's core count.
      for (int threads : bench::BenchFast() ? std::vector<int>{1, 2}
                                            : std::vector<int>{1, 2, 4, 8}) {
        b->Arg(threads);
      }
      b->Iterations(1)->Unit(benchmark::kMillisecond);
    });

// Shared CSV for the preprocessing worker-scaling rows.
util::CsvWriter& PreprocessThreadsCsv() {
  static util::CsvWriter csv = [] {
    util::CsvWriter writer(
        bench::OpenResultCsv("preprocess_threads_throughput"));
    writer.WriteRow({"threads", "seconds", "speedup_vs_1"});
    return writer;
  }();
  return csv;
}

void BM_PreprocessThreads(benchmark::State& state) {
  // One full preprocessing sweep — graph build from the arc list, pattern
  // precompute, sampled closeness + betweenness — per iteration, against
  // the deterministic worker count. Output is bit-identical at any thread
  // count, so this measures pure scheduling/scaling overhead. Speedup is
  // bounded by the host's core count.
  const auto& net = BenchNetwork();
  const size_t threads = static_cast<size_t>(state.range(0));
  const core::TieIndex index(net);
  core::DeepDirectConfig config;
  config.num_threads = threads;
  constexpr size_t kPivots = 128;
  {
    // Warm the shared preprocessing pool so the one-time thread spawn is
    // not charged to the first timed sweep.
    util::Rng warm(1);
    graph::ClosenessCentralitySampled(net, 2, warm, threads);
  }

  double seconds = 0.0;
  for (auto _ : state) {
    // Tie ingestion (AddTie) is inherently serial input prep, not part of
    // the parallel pipeline under test — keep it off the clock.
    state.PauseTiming();
    graph::GraphBuilder builder(net.num_nodes());
    for (graph::ArcId id = 0; id < net.num_arcs(); ++id) {
      const auto& arc = net.arc(id);
      if (arc.type != graph::TieType::kDirected && arc.src > arc.dst) {
        continue;
      }
      benchmark::DoNotOptimize(builder.AddTie(arc.src, arc.dst, arc.type));
    }
    builder.SetNumThreads(threads);
    state.ResumeTiming();

    util::Timer timer;
    const auto rebuilt = std::move(builder).Build();
    benchmark::DoNotOptimize(rebuilt.num_arcs());

    const auto patterns = core::PrecomputePatterns(net, index, config);
    benchmark::DoNotOptimize(patterns.triad_pairs.size());

    util::Rng rng(7);
    benchmark::DoNotOptimize(
        graph::ClosenessCentralitySampled(net, kPivots, rng, threads));
    benchmark::DoNotOptimize(
        graph::BetweennessCentralitySampled(net, kPivots, rng, threads));
    seconds += timer.ElapsedSeconds();
  }
  const double elapsed = seconds / static_cast<double>(state.iterations());

  // Keyed on the serial run having gone first (Arg order below).
  static double serial_seconds = 0.0;
  if (threads == 1) serial_seconds = elapsed;
  const double speedup =
      (elapsed > 0.0 && serial_seconds > 0.0) ? serial_seconds / elapsed
                                              : 0.0;
  state.counters["speedup_vs_1"] = speedup;
  PreprocessThreadsCsv().WriteRow({std::to_string(state.range(0)),
                                   std::to_string(elapsed),
                                   std::to_string(speedup)});
  if (g_session != nullptr) {
    g_session->Add("preprocess_seconds", "seconds", "lower", elapsed,
                   {{"threads", std::to_string(state.range(0))}});
  }
}
BENCHMARK(BM_PreprocessThreads)
    ->Apply([](benchmark::internal::Benchmark* b) {
      for (int threads : bench::BenchFast() ? std::vector<int>{1, 2}
                                            : std::vector<int>{1, 2, 4, 8}) {
        b->Arg(threads);
      }
      b->Iterations(bench::BenchFast() ? 2 : 20)
          ->Unit(benchmark::kMillisecond);
    });

void BM_LineEmbeddingEpoch(benchmark::State& state) {
  const auto& net = BenchNetwork();
  embedding::LineConfig config;
  config.dimensions = 64;
  config.samples_per_arc = 1;
  for (auto _ : state) {
    auto line = embedding::LineEmbedding::Train(net, config);
    benchmark::DoNotOptimize(line.dimensions());
  }
}
BENCHMARK(BM_LineEmbeddingEpoch)->Unit(benchmark::kMillisecond);

// Shared CSV for the checkpoint-overhead rows (one per write cadence).
util::CsvWriter& CheckpointOverheadCsv() {
  static util::CsvWriter csv = [] {
    util::CsvWriter writer(bench::OpenResultCsv("checkpoint_overhead"));
    writer.WriteRow({"checkpoint_every_epochs", "seconds_per_run",
                     "bytes_per_checkpoint", "overhead_vs_off"});
    return writer;
  }();
  return csv;
}

void BM_CheckpointOverhead(benchmark::State& state) {
  // Wall-clock cost the checkpoint layer adds to a training run: LINE over
  // a fixed 4-epoch budget, checkpointing every Arg(0) epochs (0 = off,
  // the baseline row). The serialized state is the four embedding/context
  // matrices — the same shape every production trainer snapshots.
  const auto& net = BenchNetwork();
  embedding::LineConfig config;
  config.dimensions = 64;
  config.samples_per_arc = 5;  // 5 epochs of num_arcs steps
  const uint64_t every = static_cast<uint64_t>(state.range(0));
  const std::string dir = "/tmp/deepdirect_bench_ckpt";
  if (every > 0) {
    config.checkpoint.dir = dir;
    config.checkpoint.policy.every_n_epochs = every;
    config.checkpoint.policy.keep_last = 1;
  }

  util::Timer timer;
  for (auto _ : state) {
    std::filesystem::remove_all(dir);
    auto line = embedding::LineEmbedding::Train(net, config);
    benchmark::DoNotOptimize(line.dimensions());
  }
  const double seconds =
      timer.ElapsedSeconds() / static_cast<double>(state.iterations());

  uintmax_t checkpoint_bytes = 0;
  if (every > 0 && std::filesystem::exists(dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      checkpoint_bytes += entry.file_size();
    }
    std::filesystem::remove_all(dir);
  }
  state.counters["bytes_per_checkpoint"] =
      static_cast<double>(checkpoint_bytes);

  // The cadence-0 row runs first (benchmark args are ordered) and anchors
  // the overhead ratio for the others.
  static double baseline_seconds = 0.0;
  if (every == 0) baseline_seconds = seconds;
  const double overhead =
      baseline_seconds > 0.0 ? seconds / baseline_seconds - 1.0 : 0.0;
  state.counters["overhead_vs_off"] = overhead;
  CheckpointOverheadCsv().WriteRow(
      {std::to_string(every), std::to_string(seconds),
       std::to_string(checkpoint_bytes), std::to_string(overhead)});
  if (g_session != nullptr) {
    g_session->Add("checkpoint_run_seconds", "seconds", "lower", seconds,
                   {{"checkpoint_every_epochs", std::to_string(every)}});
    g_session->Add("checkpoint_bytes", "bytes", "none",
                   static_cast<double>(checkpoint_bytes),
                   {{"checkpoint_every_epochs", std::to_string(every)}});
  }
}
BENCHMARK(BM_CheckpointOverhead)
    ->Apply([](benchmark::internal::Benchmark* b) {
      // Cadence 0 (off) must stay first: it anchors the overhead ratio.
      for (int every : bench::BenchFast() ? std::vector<int>{0, 1}
                                          : std::vector<int>{0, 4, 2, 1}) {
        b->Arg(every);
      }
      b->Iterations(bench::BenchFast() ? 1 : 3)
          ->Unit(benchmark::kMillisecond);
    });

}  // namespace

// Expanded BENCHMARK_MAIN so the session brackets the run (DD_BENCH_*
// outputs + the BENCH_micro.json report).
int main(int argc, char** argv) {
  deepdirect::bench::BenchSession session("micro");
  g_session = &session;
  // Fast mode also caps google benchmark's auto-tuned repetition budget so
  // the convergence-timed BMs finish in smoke time; an explicit
  // --benchmark_min_time on the command line still wins.
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.05";
  bool has_min_time = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_min_time", 0) == 0) {
      has_min_time = true;
    }
  }
  if (deepdirect::bench::BenchFast() && !has_min_time) {
    args.push_back(min_time.data());
  }
  int args_count = static_cast<int>(args.size());
  ::benchmark::Initialize(&args_count, args.data());
  if (::benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return session.Finish(1);
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return session.Finish(0);
}
