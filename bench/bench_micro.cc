// Google-benchmark microbenchmarks for the hot primitives: alias sampling,
// connected-tie sampling, triad census, BFS, tie-index construction,
// E-Step iteration throughput (via a tiny training run), and line-graph
// construction (the size-blowup argument of Sec. 4).

#include <benchmark/benchmark.h>

#include "core/deepdirect.h"
#include "core/tie_index.h"
#include "data/datasets.h"
#include "embedding/line.h"
#include "graph/algorithms.h"
#include "graph/centrality.h"
#include "graph/line_graph.h"
#include "graph/triads.h"
#include "util/alias_table.h"
#include "util/random.h"

namespace {

using namespace deepdirect;

const graph::MixedSocialNetwork& BenchNetwork() {
  static const graph::MixedSocialNetwork* net = [] {
    return new graph::MixedSocialNetwork(
        data::MakeDataset(data::DatasetId::kSlashdot, 0.5));
  }();
  return *net;
}

void BM_AliasTableSample(benchmark::State& state) {
  const auto& net = BenchNetwork();
  std::vector<double> weights(net.num_arcs());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = net.TieDegree(static_cast<graph::ArcId>(i)) + 1.0;
  }
  const util::AliasTable table(weights);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_AliasTableSample);

void BM_AliasTableBuild(benchmark::State& state) {
  const auto& net = BenchNetwork();
  std::vector<double> weights(net.num_arcs());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = net.TieDegree(static_cast<graph::ArcId>(i)) + 1.0;
  }
  for (auto _ : state) {
    util::AliasTable table(weights);
    benchmark::DoNotOptimize(table.size());
  }
}
BENCHMARK(BM_AliasTableBuild);

void BM_SampleConnectedTie(benchmark::State& state) {
  const auto& net = BenchNetwork();
  const core::TieIndex index(net);
  util::Rng rng(3);
  size_t arc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.SampleConnectedTie(arc, rng));
    arc = (arc + 1) % index.num_arcs();
  }
}
BENCHMARK(BM_SampleConnectedTie);

void BM_TieIndexBuild(benchmark::State& state) {
  const auto& net = BenchNetwork();
  for (auto _ : state) {
    core::TieIndex index(net);
    benchmark::DoNotOptimize(index.num_arcs());
  }
}
BENCHMARK(BM_TieIndexBuild);

void BM_DirectedTriadCounts(benchmark::State& state) {
  const auto& net = BenchNetwork();
  graph::ArcId arc = 0;
  for (auto _ : state) {
    const auto& a = net.arc(arc);
    benchmark::DoNotOptimize(graph::DirectedTriadCounts(net, a.src, a.dst));
    arc = (arc + 1) % static_cast<graph::ArcId>(net.num_arcs());
  }
}
BENCHMARK(BM_DirectedTriadCounts);

void BM_BfsDistances(benchmark::State& state) {
  const auto& net = BenchNetwork();
  graph::NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::BfsDistances(net, source));
    source = (source + 1) % static_cast<graph::NodeId>(net.num_nodes());
  }
}
BENCHMARK(BM_BfsDistances);

void BM_SampledBetweenness(benchmark::State& state) {
  const auto& net = BenchNetwork();
  for (auto _ : state) {
    util::Rng rng(5);
    benchmark::DoNotOptimize(
        graph::BetweennessCentralitySampled(net, 16, rng));
  }
}
BENCHMARK(BM_SampledBetweenness);

void BM_LineGraphBuild(benchmark::State& state) {
  const auto& net = BenchNetwork();
  for (auto _ : state) {
    const auto line = graph::BuildLineGraph(net);
    benchmark::DoNotOptimize(line.edges.size());
  }
  state.counters["edges"] =
      static_cast<double>(graph::PredictLineGraphSize(net));
}
BENCHMARK(BM_LineGraphBuild);

void BM_DeepDirectEStepIterations(benchmark::State& state) {
  // Measures E-Step throughput: a fixed small iteration budget per run.
  const auto& net = BenchNetwork();
  core::DeepDirectConfig config;
  config.dimensions = 64;
  config.negative_samples = 5;
  for (auto _ : state) {
    // epochs chosen so one run is ~0.1 |C(G)| iterations.
    config.epochs = 0.1;
    auto model = core::DeepDirectModel::Train(net, config);
    benchmark::DoNotOptimize(model->embeddings().rows());
  }
  const core::TieIndex index(net);
  state.counters["iters_per_run"] =
      0.1 * static_cast<double>(index.NumConnectedTiePairs());
}
BENCHMARK(BM_DeepDirectEStepIterations)->Unit(benchmark::kMillisecond);

void BM_LineEmbeddingEpoch(benchmark::State& state) {
  const auto& net = BenchNetwork();
  embedding::LineConfig config;
  config.dimensions = 64;
  config.samples_per_arc = 1;
  for (auto _ : state) {
    auto line = embedding::LineEmbedding::Train(net, config);
    benchmark::DoNotOptimize(line.dimensions());
  }
}
BENCHMARK(BM_LineEmbeddingEpoch)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
