// Grid-search bench: reproduces the Sec. 6.1 protocol ("grid search with
// cross-validation to determine the optimal values" of α and β) on one
// dataset and reports the full validation-accuracy grid plus the selected
// cell's test accuracy.

#include <cstdio>

#include "bench_common.h"
#include "core/applications.h"
#include "core/grid_search.h"
#include "core/models.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "util/random.h"
#include "util/table_printer.h"

int main() {
  deepdirect::bench::BenchSession session("grid_search");
  using namespace deepdirect;
  std::printf("=== Grid search with cross-validation (Sec. 6.1) ===\n\n");

  const auto net =
      data::MakeDataset(data::DatasetId::kSlashdot, bench::BenchScale());
  // Work at 30% labels: hide the rest as the *test* fold first so the
  // search never sees it.
  util::Rng rng(55);
  const auto test_split = graph::HideDirections(net, 0.3, rng);

  core::GridSearchConfig config;
  config.base = core::MethodConfigs::FastDefaults().deepdirect;
  if (bench::BenchFast()) {
    config.alphas = {0.0, 5.0};
    config.betas = {0.0, 1.0};
  }
  const auto result =
      core::GridSearchDeepDirect(test_split.network, config);

  util::TablePrinter table({"alpha", "beta", "validation_accuracy"});
  auto csv = bench::OpenResultCsv("grid_search");
  csv.WriteRow({"alpha", "beta", "validation_accuracy"});
  for (const auto& cell : result.cells) {
    session.Add("validation_accuracy", "fraction", "higher",
                cell.validation_accuracy,
                {{"alpha", util::TablePrinter::FormatDouble(cell.alpha, 1)},
                 {"beta", util::TablePrinter::FormatDouble(cell.beta, 1)}});
    table.AddRow({util::TablePrinter::FormatDouble(cell.alpha, 1),
                  util::TablePrinter::FormatDouble(cell.beta, 1),
                  util::TablePrinter::FormatDouble(
                      cell.validation_accuracy, 4)});
    csv.WriteRow({util::TablePrinter::FormatDouble(cell.alpha, 1),
                  util::TablePrinter::FormatDouble(cell.beta, 1),
                  util::TablePrinter::FormatDouble(
                      cell.validation_accuracy, 4)});
  }
  table.Print();

  auto best_config = config.base;
  best_config.alpha = result.best.alpha;
  best_config.beta = result.best.beta;
  const auto model =
      core::DeepDirectModel::Train(test_split.network, best_config);
  const double test_accuracy =
      core::DirectionDiscoveryAccuracy(test_split, *model);
  session.Add("test_accuracy", "fraction", "higher", test_accuracy,
              {{"alpha", util::TablePrinter::FormatDouble(
                             result.best.alpha, 1)},
               {"beta", util::TablePrinter::FormatDouble(
                            result.best.beta, 1)}});
  std::printf(
      "\nselected alpha=%.1f beta=%.1f (validation %.4f); test accuracy on "
      "held-out directions: %.4f\n",
      result.best.alpha, result.best.beta,
      result.best.validation_accuracy, test_accuracy);
  return session.Finish(0);
}
