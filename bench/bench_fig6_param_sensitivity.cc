// Fig. 6 reproduction: parameter sensitivity of DeepDirect at 20% directed
// ties — (a) embedding dimension l, (b) negative samples λ. Claims: mild
// gains as l grows (with linear cost), λ = 5 a good operating point.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/applications.h"
#include "core/deepdirect.h"
#include "core/models.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  deepdirect::bench::BenchSession session("fig6_param_sensitivity");
  using namespace deepdirect;
  const double scale = bench::BenchScale();
  const std::vector<size_t> dims = bench::BenchFast()
                                       ? std::vector<size_t>{32, 64}
                                       : std::vector<size_t>{16, 32, 64, 128};
  const std::vector<size_t> lambdas =
      bench::BenchFast() ? std::vector<size_t>{1, 5}
                         : std::vector<size_t>{1, 3, 5, 10};

  auto csv = bench::OpenResultCsv("fig6_param_sensitivity");
  csv.WriteRow({"dataset", "parameter", "value", "accuracy", "seconds"});

  std::printf("=== Fig. 6(a): dimension l (20%% directed) ===\n\n");
  {
    std::vector<std::string> headers{"dataset"};
    for (size_t l : dims) headers.push_back("l=" + std::to_string(l));
    util::TablePrinter table(headers);
    for (data::DatasetId id : data::AllDatasets()) {
      const auto net = data::MakeDataset(id, scale);
      util::Rng rng(55);
      const auto split = graph::HideDirections(net, 0.2, rng);
      std::vector<double> row;
      for (size_t l : dims) {
        core::DeepDirectConfig config =
            core::MethodConfigs::FastDefaults().deepdirect;
        config.dimensions = l;
        util::Timer timer;
        const auto model = core::DeepDirectModel::Train(split.network, config);
        const double seconds = timer.ElapsedSeconds();
        const double accuracy =
            core::DirectionDiscoveryAccuracy(split, *model);
        row.push_back(accuracy);
        session.Add("accuracy", "fraction", "higher", accuracy,
                    {{"dataset", data::DatasetName(id)},
                     {"parameter", "l"},
                     {"value", std::to_string(l)}});
        session.Add("train_seconds", "seconds", "lower", seconds,
                    {{"dataset", data::DatasetName(id)},
                     {"parameter", "l"},
                     {"value", std::to_string(l)}});
        csv.WriteRow({data::DatasetName(id), "l", std::to_string(l),
                      util::TablePrinter::FormatDouble(accuracy, 4),
                      util::TablePrinter::FormatDouble(seconds, 2)});
      }
      table.AddNumericRow(data::DatasetName(id), row);
    }
    table.Print();
  }

  std::printf("\n=== Fig. 6(b): negative samples lambda (20%% directed) ===\n\n");
  {
    std::vector<std::string> headers{"dataset"};
    for (size_t lam : lambdas) {
      headers.push_back("lambda=" + std::to_string(lam));
    }
    util::TablePrinter table(headers);
    for (data::DatasetId id : data::AllDatasets()) {
      const auto net = data::MakeDataset(id, scale);
      util::Rng rng(55);
      const auto split = graph::HideDirections(net, 0.2, rng);
      std::vector<double> row;
      for (size_t lam : lambdas) {
        core::DeepDirectConfig config =
            core::MethodConfigs::FastDefaults().deepdirect;
        config.negative_samples = lam;
        util::Timer timer;
        const auto model = core::DeepDirectModel::Train(split.network, config);
        const double seconds = timer.ElapsedSeconds();
        const double accuracy =
            core::DirectionDiscoveryAccuracy(split, *model);
        row.push_back(accuracy);
        session.Add("accuracy", "fraction", "higher", accuracy,
                    {{"dataset", data::DatasetName(id)},
                     {"parameter", "lambda"},
                     {"value", std::to_string(lam)}});
        session.Add("train_seconds", "seconds", "lower", seconds,
                    {{"dataset", data::DatasetName(id)},
                     {"parameter", "lambda"},
                     {"value", std::to_string(lam)}});
        csv.WriteRow({data::DatasetName(id), "lambda", std::to_string(lam),
                      util::TablePrinter::FormatDouble(accuracy, 4),
                      util::TablePrinter::FormatDouble(seconds, 2)});
      }
      table.AddNumericRow(data::DatasetName(id), row);
    }
    table.Print();
  }
  return session.Finish(0);
}
