// Out-of-core sharding bench: trains DeepDirect on the same Tencent
// network three ways — fully in RAM, sharded with an ample budget (the
// mmap-indirection overhead in isolation), and sharded with a budget of
// HALF the parameter footprint (the LRU evicts all run long) — and gates
// the sharded path's contract:
//
//   shard_bit_identical      "bool"/higher  sharded nt=1 with ample budget
//                                           equals the in-RAM trainer
//                                           bit-for-bit (classifier
//                                           parameters and every d(u, v))
//   shard_budget_respected   "bool"/higher  under pressure, the resident
//                                           emb+conn high-water mark stayed
//                                           within the budget (the
//                                           machine-independent proxy for
//                                           "RSS under budget": the store's
//                                           own accounting of admitted
//                                           minus evicted bytes)
//   shard_evicts_under_pressure "bool"/higher the pressure run actually
//                                           churned the LRU (else the
//                                           budget gate proved nothing)
//   shard_throughput_ge_0p6x "bool"/higher  sharded training throughput at
//                                           4 shards (ample budget) is at
//                                           least 0.6x the in-RAM trainer's
//
// The pressure run measures correctness, not speed: serial global sampling
// against a working set over budget faults shards back in nearly every
// step, which is exactly the access pattern the shard-affine Hogwild plan
// exists to avoid (tests/sharded_store_test.cc pins that the thrashed
// result is still bit-identical). Timing rows (*_seconds) carry
// machine-dependent wall clock and are skipped by the cross-machine gate
// (scripts/bench_compare.py --skip-timing); the ratio and counters
// transfer.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "bench_common.h"
#include "core/deepdirect.h"
#include "core/models.h"
#include "core/sharded_trainer.h"
#include "core/tie_index.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "train/sharded_store.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace deepdirect;

constexpr size_t kNumShards = 4;

}  // namespace

int main() {
  bench::BenchSession session("shards");
  std::printf("=== Out-of-core sharded training vs in-RAM ===\n\n");

  // The smoke default (DD_BENCH_SCALE=0.1) would leave the store-creation
  // constant dominating the tiny E-step, so the throughput ratio gets a
  // scale floor: large enough that training dominates, still seconds-fast.
  const double scale = std::max(bench::BenchScale(), 0.5);
  const auto net = data::MakeDataset(data::DatasetId::kTencent, scale);
  util::Rng rng(55);
  const auto split = graph::HideDirections(net, 0.2, rng);

  core::DeepDirectConfig config =
      core::MethodConfigs::FastDefaults().deepdirect;
  config.num_threads = 1;  // the bit-identity contract is serial-only
  config.d_step.num_threads = 1;

  const core::TieIndex idx(split.network);
  const uint64_t param_bytes = 2ull * idx.num_arcs() *
                               config.dimensions * sizeof(float);
  const auto mb = [](uint64_t bytes) {
    return static_cast<double>(bytes) / (1 << 20);
  };

  util::Timer timer;
  const auto in_ram = core::DeepDirectModel::Train(split.network, config);
  const double in_ram_seconds = timer.ElapsedSeconds();

  // --- Sharded, ample budget: isolates the mmap-indirection overhead. ---
  core::DeepDirectConfig ample_config = config;
  ample_config.sharding.num_shards = kNumShards;
  ample_config.sharding.dir = bench::ResultDir() + "/shard_store_ample";
  ample_config.sharding.ram_budget_mb =
      static_cast<size_t>(param_bytes / (1024 * 1024)) + 1;
  timer.Reset();
  auto ample =
      core::ShardedDeepDirectModel::Train(split.network, ample_config);
  const double sharded_seconds = timer.ElapsedSeconds();
  if (!ample.ok()) {
    std::fprintf(stderr, "error: %s\n", ample.status().ToString().c_str());
    return session.Finish(1);
  }

  // Bit-identity: classifier parameters and every per-arc directionality.
  bool bit_identical =
      in_ram->e_step_weights() == ample.value()->e_step_weights() &&
      in_ram->e_step_bias() == ample.value()->e_step_bias();
  for (size_t e = 0; bit_identical && e < idx.num_arcs(); ++e) {
    const auto [u, v] = idx.ArcAt(e);
    bit_identical =
        in_ram->Directionality(u, v) == ample.value()->Directionality(u, v);
  }
  const double throughput_ratio =
      sharded_seconds > 0.0 ? in_ram_seconds / sharded_seconds : 0.0;

  // --- Sharded, half-footprint budget: the LRU must evict and the
  // resident high-water mark must still respect the bound. Short epochs:
  // this run measures accounting, not speed. ---
  core::DeepDirectConfig pressure_config = config;
  pressure_config.epochs = std::min(pressure_config.epochs, 0.5);
  pressure_config.sharding.num_shards = kNumShards;
  pressure_config.sharding.dir =
      bench::ResultDir() + "/shard_store_pressure";
  pressure_config.sharding.ram_budget_mb =
      std::max<uint64_t>(1, param_bytes / 2 / (1024 * 1024));
  timer.Reset();
  auto pressure =
      core::ShardedDeepDirectModel::Train(split.network, pressure_config);
  const double pressure_seconds = timer.ElapsedSeconds();
  if (!pressure.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 pressure.status().ToString().c_str());
    return session.Finish(1);
  }
  const auto stats = pressure.value()->store().GetStats();
  const bool budget_respected =
      stats.max_resident_bytes <= stats.budget_bytes;
  const bool evicted = stats.evictions > 0;

  const auto ample_stats = ample.value()->store().GetStats();
  util::TablePrinter table(
      {"path", "seconds", "budget_mb", "max_resident_mb", "evictions"});
  table.AddRow({"in-RAM", util::TablePrinter::FormatDouble(in_ram_seconds, 3),
                "-", util::TablePrinter::FormatDouble(mb(param_bytes), 2),
                "-"});
  table.AddRow(
      {"sharded(4)", util::TablePrinter::FormatDouble(sharded_seconds, 3),
       util::TablePrinter::FormatDouble(mb(ample_stats.budget_bytes), 0),
       util::TablePrinter::FormatDouble(mb(ample_stats.max_resident_bytes),
                                        2),
       std::to_string(ample_stats.evictions)});
  table.AddRow(
      {"pressure(4)",
       util::TablePrinter::FormatDouble(pressure_seconds, 3),
       util::TablePrinter::FormatDouble(mb(stats.budget_bytes), 0),
       util::TablePrinter::FormatDouble(mb(stats.max_resident_bytes), 2),
       std::to_string(stats.evictions)});
  table.Print();

  auto csv = bench::OpenResultCsv("shards");
  csv.WriteRow({"arcs", "param_mb", "in_ram_s", "sharded_s", "ratio",
                "pressure_evictions", "bit_identical", "budget_respected"});
  csv.WriteRow({std::to_string(idx.num_arcs()),
                util::TablePrinter::FormatDouble(mb(param_bytes), 2),
                util::TablePrinter::FormatDouble(in_ram_seconds, 3),
                util::TablePrinter::FormatDouble(sharded_seconds, 3),
                util::TablePrinter::FormatDouble(throughput_ratio, 3),
                std::to_string(stats.evictions),
                bit_identical ? "1" : "0", budget_respected ? "1" : "0"});

  const std::map<std::string, std::string> labels = {
      {"shards", std::to_string(kNumShards)}};
  session.Add("in_ram_train_seconds", "seconds", "lower", in_ram_seconds,
              labels);
  session.Add("sharded_train_seconds", "seconds", "lower", sharded_seconds,
              labels);
  session.Add("pressure_train_seconds", "seconds", "lower",
              pressure_seconds, labels);
  session.Add("shard_throughput_ratio", "x", "none", throughput_ratio,
              labels);
  session.Add("shard_pressure_evictions", "count", "none",
              static_cast<double>(stats.evictions), labels);
  session.Add("shard_bit_identical", "bool", "higher",
              bit_identical ? 1.0 : 0.0, labels);
  session.Add("shard_budget_respected", "bool", "higher",
              budget_respected ? 1.0 : 0.0, labels);
  session.Add("shard_evicts_under_pressure", "bool", "higher",
              evicted ? 1.0 : 0.0, labels);
  session.Add("shard_throughput_ge_0p6x", "bool", "higher",
              throughput_ratio >= 0.6 ? 1.0 : 0.0, labels);

  std::printf(
      "\ngates: bit-identical %s, budget %s (%.2f of %.2f MB resident, "
      "%llu evictions), throughput %.2fx in-RAM (>=0.6 required)\n",
      bit_identical ? "ok" : "FAIL", budget_respected ? "ok" : "FAIL",
      mb(stats.max_resident_bytes), mb(stats.budget_bytes),
      static_cast<unsigned long long>(stats.evictions), throughput_ratio);
  const bool gates_ok = bit_identical && budget_respected && evicted &&
                        throughput_ratio >= 0.6;
  return session.Finish(gates_ok ? 0 : 1);
}
