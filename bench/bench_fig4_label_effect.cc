// Fig. 4 reproduction: effectiveness of the labeled data in E-Step.
// β = 0 throughout; α sweeps {0, 0.1, 1, 5} across label fractions on every
// dataset. The paper's claim: α > 0 outperforms α = 0, with α = 5 usually
// best.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/applications.h"
#include "core/deepdirect.h"
#include "core/models.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "util/random.h"
#include "util/table_printer.h"

int main() {
  deepdirect::bench::BenchSession session("fig4_label_effect");
  using namespace deepdirect;
  const double scale = bench::BenchScale();
  const std::vector<double> alphas{0.0, 0.1, 1.0, 5.0};
  const std::vector<double> fractions =
      bench::BenchFast() ? std::vector<double>{0.1}
                         : std::vector<double>{0.05, 0.1, 0.2, 0.4};

  std::printf("=== Fig. 4: effectiveness of labeled data in E-Step ===\n");
  std::printf("(beta = 0; cells: accuracy)\n\n");
  auto csv = bench::OpenResultCsv("fig4_label_effect");
  csv.WriteRow({"dataset", "directed_fraction", "alpha", "accuracy"});

  for (data::DatasetId id : data::AllDatasets()) {
    const auto net = data::MakeDataset(id, scale);
    std::printf("--- %s ---\n", data::DatasetName(id));
    std::vector<std::string> headers{"directed%"};
    for (double alpha : alphas) {
      headers.push_back("alpha=" + util::TablePrinter::FormatDouble(alpha, 1));
    }
    util::TablePrinter table(headers);

    for (double fraction : fractions) {
      util::Rng rng(55);
      const auto split = graph::HideDirections(net, fraction, rng);
      std::vector<double> row;
      for (double alpha : alphas) {
        core::DeepDirectConfig config =
            core::MethodConfigs::FastDefaults().deepdirect;
        config.alpha = alpha;
        config.beta = 0.0;
        const auto model = core::DeepDirectModel::Train(split.network, config);
        const double accuracy =
            core::DirectionDiscoveryAccuracy(split, *model);
        row.push_back(accuracy);
        session.Add("accuracy", "fraction", "higher", accuracy,
                    {{"dataset", data::DatasetName(id)},
                     {"directed_fraction",
                      util::TablePrinter::FormatDouble(fraction, 2)},
                     {"alpha", util::TablePrinter::FormatDouble(alpha, 1)}});
        csv.WriteRow({data::DatasetName(id),
                      util::TablePrinter::FormatDouble(fraction, 2),
                      util::TablePrinter::FormatDouble(alpha, 1),
                      util::TablePrinter::FormatDouble(accuracy, 4)});
      }
      table.AddNumericRow(util::TablePrinter::FormatDouble(fraction, 2), row);
    }
    table.Print();
    std::printf("\n");
  }
  return session.Finish(0);
}
