// Fig. 7 reproduction: t-SNE visualization of tie embeddings on the
// top-degree core of (synthetic) Slashdot with 90% of directions hidden.
// DeepDirect vs LINE. Because CI cannot eyeball a scatter plot, the bench
// writes both 2D point clouds to CSV and reports quantitative separability
// (k-NN label agreement and nearest-centroid accuracy); the paper's claim
// maps to: DeepDirect's scores are clearly higher than LINE's.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/deepdirect.h"
#include "core/line_model.h"
#include "core/models.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "ml/separability.h"
#include "ml/tsne.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace {

using namespace deepdirect;

struct Scores {
  double knn;
  double centroid;
  double knn_highdim;
  double centroid_highdim;
};

Scores ProjectAndScore(const ml::Matrix& vectors,
                       const std::vector<int>& labels,
                       const std::string& csv_name) {
  ml::TsneConfig tsne;
  tsne.perplexity = 30.0;
  tsne.iterations = bench::BenchFast() ? 150 : 400;
  tsne.seed = 5;
  const auto points = ml::TsneEmbed2D(vectors, tsne);

  auto csv = bench::OpenResultCsv(csv_name);
  csv.WriteRow({"x", "y", "true_direction"});
  for (size_t i = 0; i < points.size(); ++i) {
    csv.WriteNumericRow(std::to_string(labels[i]),
                        {points[i][0], points[i][1]});
  }
  return {ml::KnnLabelAgreement(points, labels, 10),
          ml::NearestCentroidAccuracy(points, labels),
          ml::KnnLabelAgreementHighDim(vectors, labels, 10),
          ml::NearestCentroidAccuracyHighDim(vectors, labels)};
}

}  // namespace

int main() {
  deepdirect::bench::BenchSession session("fig7_visualization");
  using namespace deepdirect;
  std::printf("=== Fig. 7: visualization of embedding results ===\n\n");

  const auto slashdot =
      data::MakeDataset(data::DatasetId::kSlashdot, bench::BenchScale());
  const auto core_net = graph::TopDegreeSubnetwork(slashdot, 0.2);
  util::Rng rng(301);
  const auto split = graph::HideDirections(core_net, 0.1, rng);
  std::printf("top-degree core: %zu nodes, %zu ties, %zu hidden ties\n",
              split.network.num_nodes(), split.network.num_ties(),
              split.hidden_true_arcs.size());

  std::vector<graph::ArcId> sample = split.hidden_true_arcs;
  const size_t cap = bench::BenchFast() ? 200 : 600;
  if (sample.size() > cap) {
    rng.Shuffle(sample);
    sample.resize(cap);
  }

  // Labels: 1 if the canonical (smaller-endpoint) arc is the true
  // direction — the red/blue split of Fig. 7.
  std::vector<int> labels(sample.size());

  // --- DeepDirect tie embeddings of the hidden ties.
  core::DeepDirectConfig dd_config =
      core::MethodConfigs::FastDefaults().deepdirect;
  const auto deep = core::DeepDirectModel::Train(split.network, dd_config);
  ml::Matrix deep_vectors(sample.size(), dd_config.dimensions);
  for (size_t i = 0; i < sample.size(); ++i) {
    const auto& arc = split.network.arc(sample[i]);
    const graph::NodeId lo = std::min(arc.src, arc.dst);
    const graph::NodeId hi = std::max(arc.src, arc.dst);
    labels[i] = arc.src == lo ? 1 : 0;
    const auto row = deep->TieEmbedding(lo, hi);
    for (size_t k = 0; k < row.size(); ++k) deep_vectors.At(i, k) = row[k];
  }
  const Scores deep_scores =
      ProjectAndScore(deep_vectors, labels, "fig7_deepdirect_points");

  // --- LINE concatenated-endpoint tie vectors.
  core::LineModelConfig line_config = core::MethodConfigs::FastDefaults().line;
  const auto line = core::LineModel::Train(split.network, line_config);
  ml::Matrix line_vectors(sample.size(), line->tie_feature_dims());
  std::vector<double> features(line->tie_feature_dims());
  for (size_t i = 0; i < sample.size(); ++i) {
    const auto& arc = split.network.arc(sample[i]);
    const graph::NodeId lo = std::min(arc.src, arc.dst);
    const graph::NodeId hi = std::max(arc.src, arc.dst);
    line->TieFeatures(lo, hi, features);
    for (size_t k = 0; k < features.size(); ++k) {
      line_vectors.At(i, k) = static_cast<float>(features[k]);
    }
  }
  const Scores line_scores =
      ProjectAndScore(line_vectors, labels, "fig7_line_points");

  util::TablePrinter table({"embedding", "knn_2d", "centroid_2d",
                            "knn_highdim", "centroid_highdim"});
  table.AddRow(
      {"DeepDirect", util::TablePrinter::FormatDouble(deep_scores.knn, 4),
       util::TablePrinter::FormatDouble(deep_scores.centroid, 4),
       util::TablePrinter::FormatDouble(deep_scores.knn_highdim, 4),
       util::TablePrinter::FormatDouble(deep_scores.centroid_highdim, 4)});
  table.AddRow(
      {"LINE", util::TablePrinter::FormatDouble(line_scores.knn, 4),
       util::TablePrinter::FormatDouble(line_scores.centroid, 4),
       util::TablePrinter::FormatDouble(line_scores.knn_highdim, 4),
       util::TablePrinter::FormatDouble(line_scores.centroid_highdim, 4)});
  std::printf(
      "\nseparability by true direction (2D after t-SNE; high-dim before "
      "projection):\n");
  table.Print();
  const auto add_scores = [&session](const std::string& embedding,
                                     const Scores& scores) {
    session.Add("knn_2d", "fraction", "higher", scores.knn,
                {{"embedding", embedding}});
    session.Add("centroid_2d", "fraction", "higher", scores.centroid,
                {{"embedding", embedding}});
    session.Add("knn_highdim", "fraction", "higher", scores.knn_highdim,
                {{"embedding", embedding}});
    session.Add("centroid_highdim", "fraction", "higher",
                scores.centroid_highdim, {{"embedding", embedding}});
  };
  add_scores("DeepDirect", deep_scores);
  add_scores("LINE", line_scores);
  std::printf(
      "\npoint clouds written to bench_results/fig7_*_points.csv "
      "(columns: label,x,y)\n");
  return session.Finish(0);
}
