// Fig. 9 reproduction: scalability of DeepDirect — wall-clock training time
// against the number of social ties (Sec. 6.4). The paper BFS-samples
// sub-networks of Tencent at growing sizes; since Tencent is huge, its
// samples keep a roughly constant density. We mirror that by generating
// the Tencent configuration at growing scales (constant ties-per-node),
// and additionally report time per |C(G)| — the quantity the Sec. 4.6
// analysis predicts is constant (iterations = τ·|C(G)|).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/deepdirect.h"
#include "core/models.h"
#include "core/tie_index.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  deepdirect::bench::BenchSession session("fig9_scalability");
  using namespace deepdirect;
  std::printf("=== Fig. 9: scalability of DeepDirect ===\n\n");

  const std::vector<double> scales =
      bench::BenchFast() ? std::vector<double>{0.5, 1.0}
                         : std::vector<double>{0.5, 1.0, 1.5, 2.0, 2.5};

  auto csv = bench::OpenResultCsv("fig9_scalability");
  csv.WriteRow({"nodes", "ties", "connected_pairs", "seconds",
                "seconds_per_megapair"});
  util::TablePrinter table(
      {"nodes", "ties", "|C(G)|", "seconds", "s_per_Mpair"});

  core::DeepDirectConfig config =
      core::MethodConfigs::FastDefaults().deepdirect;
  config.num_threads = bench::BenchThreads();
  config.d_step.num_threads = config.num_threads;
  std::printf("SGD workers: %zu (DD_BENCH_THREADS)\n\n", config.num_threads);
  for (double scale : scales) {
    const auto net = data::MakeDataset(data::DatasetId::kTencent, scale);
    util::Rng rng(55);
    const auto split = graph::HideDirections(net, 0.2, rng);
    const core::TieIndex index(split.network);
    const double mega_pairs =
        static_cast<double>(index.NumConnectedTiePairs()) / 1e6;

    util::Timer timer;
    const auto model = core::DeepDirectModel::Train(split.network, config);
    const double seconds = timer.ElapsedSeconds();
    (void)model;
    session.Add("train_seconds", "seconds", "lower", seconds,
                {{"ties", std::to_string(net.num_ties())}});
    session.Add("seconds_per_megapair", "seconds", "lower",
                seconds / mega_pairs,
                {{"ties", std::to_string(net.num_ties())}});
    table.AddRow({std::to_string(net.num_nodes()),
                  std::to_string(net.num_ties()),
                  std::to_string(index.NumConnectedTiePairs()),
                  util::TablePrinter::FormatDouble(seconds, 2),
                  util::TablePrinter::FormatDouble(seconds / mega_pairs, 3)});
    csv.WriteRow({std::to_string(net.num_nodes()),
                  std::to_string(net.num_ties()),
                  std::to_string(index.NumConnectedTiePairs()),
                  util::TablePrinter::FormatDouble(seconds, 3),
                  util::TablePrinter::FormatDouble(seconds / mega_pairs, 4)});
  }
  table.Print();
  std::printf(
      "\nSec. 4.6 predicts runtime = O(τ·|C(G)|) = O(|E|) on constant-"
      "density networks:\nseconds-per-megapair should stay flat while "
      "nodes and ties grow.\n");
  return session.Finish(0);
}
