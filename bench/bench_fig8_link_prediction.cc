// Fig. 8 reproduction: AUC of Jaccard link prediction on the three
// bidirectional-heavy datasets (LiveJournal, Epinions, Slashdot), comparing
// the original binary adjacency matrix against the directionality adjacency
// matrices built from each method's learned directionality function.
// Claims: quantification improves AUC, and DeepDirect's matrix is best.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/applications.h"
#include "core/models.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "util/random.h"
#include "util/table_printer.h"

int main() {
  deepdirect::bench::BenchSession session("fig8_link_prediction");
  using namespace deepdirect;
  const double scale = bench::BenchScale();
  auto configs = core::MethodConfigs::FastDefaults();
  configs.SetNumThreads(bench::BenchThreads());
  const std::vector<data::DatasetId> datasets{
      data::DatasetId::kLiveJournal, data::DatasetId::kEpinions,
      data::DatasetId::kSlashdot};

  std::printf("=== Fig. 8: AUC of link prediction ===\n");
  std::printf("(adjacency variants; 80%% of ties kept as G')\n\n");
  auto csv = bench::OpenResultCsv("fig8_link_prediction");
  csv.WriteRow({"dataset", "adjacency", "auc", "candidates", "positives"});

  std::vector<std::string> headers{"adjacency"};
  for (data::DatasetId id : datasets) headers.push_back(data::DatasetName(id));
  util::TablePrinter table(headers);

  // Column-major evaluation: hold each dataset's split fixed across rows.
  std::vector<std::vector<double>> cells(
      1 + core::AllMethods().size(),
      std::vector<double>(datasets.size(), 0.0));

  for (size_t d = 0; d < datasets.size(); ++d) {
    const auto net = data::MakeDataset(datasets[d], scale);
    core::LinkPredictionConfig link_config;
    link_config.holdout_fraction = 0.2;
    link_config.seed = 97;
    util::Rng rng(link_config.seed);
    const auto holdout =
        graph::HoldOutTies(net, link_config.holdout_fraction, rng);

    const auto original =
        core::RunLinkPrediction(net, holdout, nullptr, link_config);
    cells[0][d] = original.auc;
    session.Add("auc", "fraction", "higher", original.auc,
                {{"dataset", data::DatasetName(datasets[d])},
                 {"adjacency", "Original"}});
    csv.WriteRow({data::DatasetName(datasets[d]), "Original",
                  util::TablePrinter::FormatDouble(original.auc, 4),
                  std::to_string(original.num_candidates),
                  std::to_string(original.num_positives)});

    size_t row = 1;
    for (core::Method method : core::AllMethods()) {
      const auto model = core::TrainMethod(holdout.network, method, configs);
      const auto result =
          core::RunLinkPrediction(net, holdout, model.get(), link_config);
      cells[row][d] = result.auc;
      session.Add("auc", "fraction", "higher", result.auc,
                  {{"dataset", data::DatasetName(datasets[d])},
                   {"adjacency", core::MethodName(method)}});
      csv.WriteRow({data::DatasetName(datasets[d]), core::MethodName(method),
                    util::TablePrinter::FormatDouble(result.auc, 4),
                    std::to_string(result.num_candidates),
                    std::to_string(result.num_positives)});
      ++row;
    }
  }

  table.AddNumericRow("Original", cells[0]);
  size_t row = 1;
  for (core::Method method : core::AllMethods()) {
    table.AddNumericRow(core::MethodName(method), cells[row]);
    ++row;
  }
  table.Print();
  return session.Finish(0);
}
