// Extension bench: the paper's five methods side by side with the extra
// baselines this library implements — node2vec, DeepWalk (random-walk node
// embeddings + edge operators) and LINE-on-the-line-graph (the indirect
// edge-embedding route Sec. 4 rejects) — plus the line-graph size blow-up
// and training-cost comparison that grounds the rejection empirically.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/applications.h"
#include "core/line_graph_model.h"
#include "core/models.h"
#include "core/node2vec_model.h"
#include "core/sae_model.h"
#include "core/spring_rank_model.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  deepdirect::bench::BenchSession session("extended_baselines");
  using namespace deepdirect;
  const double scale = bench::BenchScale();
  const std::vector<data::DatasetId> datasets =
      bench::BenchFast()
          ? std::vector<data::DatasetId>{data::DatasetId::kTwitter}
          : std::vector<data::DatasetId>{data::DatasetId::kTwitter,
                                         data::DatasetId::kSlashdot};
  auto csv = bench::OpenResultCsv("extended_baselines");
  csv.WriteRow({"dataset", "method", "accuracy", "train_seconds"});

  for (data::DatasetId id : datasets) {
    const auto net = data::MakeDataset(id, scale);
    util::Rng rng(55);
    const auto split = graph::HideDirections(net, 0.2, rng);
    std::printf("=== Extended baselines on %s (20%% directed) ===\n\n",
                data::DatasetName(id));
    util::TablePrinter table({"method", "accuracy", "train_seconds"});
    auto record = [&](const std::string& name, double accuracy,
                      double seconds) {
      table.AddRow({name, util::TablePrinter::FormatDouble(accuracy, 4),
                    util::TablePrinter::FormatDouble(seconds, 2)});
      csv.WriteRow({data::DatasetName(id), name,
                    util::TablePrinter::FormatDouble(accuracy, 4),
                    util::TablePrinter::FormatDouble(seconds, 2)});
      session.Add("accuracy", "fraction", "higher", accuracy,
                  {{"dataset", data::DatasetName(id)}, {"method", name}});
      session.Add("train_seconds", "seconds", "lower", seconds,
                  {{"dataset", data::DatasetName(id)}, {"method", name}});
    };

    const auto configs = core::MethodConfigs::FastDefaults();
    for (core::Method method : core::AllMethods()) {
      util::Timer timer;
      const auto model = core::TrainMethod(split.network, method, configs);
      const double seconds = timer.ElapsedSeconds();
      record(core::MethodName(method),
             core::DirectionDiscoveryAccuracy(split, *model), seconds);
    }

    // node2vec (p = 1, q = 0.5: exploratory walks) and DeepWalk.
    {
      core::Node2vecModelConfig config;
      config.node2vec.walks.walks_per_node = 8;
      config.node2vec.walks.walk_length = 30;
      config.node2vec.walks.inout_param = 0.5;
      config.node2vec.skipgram.dimensions = 32;
      config.node2vec.skipgram.epochs = 2;
      config.display_name = "node2vec";
      util::Timer timer;
      const auto model = core::Node2vecModel::Train(split.network, config);
      record("node2vec", core::DirectionDiscoveryAccuracy(split, *model),
             timer.ElapsedSeconds());
    }
    {
      core::Node2vecModelConfig config;
      config.node2vec = embedding::Node2vecConfig::DeepWalk();
      config.node2vec.walks.walks_per_node = 8;
      config.node2vec.walks.walk_length = 30;
      config.node2vec.skipgram.dimensions = 32;
      config.node2vec.skipgram.epochs = 2;
      config.display_name = "DeepWalk";
      util::Timer timer;
      const auto model = core::Node2vecModel::Train(split.network, config);
      record("DeepWalk", core::DirectionDiscoveryAccuracy(split, *model),
             timer.ElapsedSeconds());
    }

    // SpringRank: status inference from labeled ties (status-theory
    // baseline).
    {
      util::Timer timer;
      const auto model = core::SpringRankModel::Train(
          split.network, core::SpringRankModelConfig{});
      record("SpringRank", core::DirectionDiscoveryAccuracy(split, *model),
             timer.ElapsedSeconds());
    }

    // SAE: the autoencoder branch of deep graph embedding (paper ref [13]).
    {
      core::SaeModelConfig config;
      config.sae.autoencoder.encoder_dims = {128, 32};
      config.sae.autoencoder.epochs = 5;
      util::Timer timer;
      const auto model = core::SaeModel::Train(split.network, config);
      record("SAE", core::DirectionDiscoveryAccuracy(split, *model),
             timer.ElapsedSeconds());
    }

    // The rejected line-graph route, with its blow-up report.
    {
      core::LineGraphModelConfig config;
      config.embedding.dimensions = 64;
      config.embedding.samples_per_edge = 10;
      util::Timer timer;
      const auto model = core::LineGraphModel::Train(split.network, config);
      const double seconds = timer.ElapsedSeconds();
      record("LINE-linegraph",
             core::DirectionDiscoveryAccuracy(split, *model), seconds);
      std::printf(
          "line digraph blow-up: %zu original nodes -> %zu line nodes; "
          "%zu ties -> %llu line edges\n",
          split.network.num_nodes(), model->line_graph_nodes(),
          split.network.num_ties(),
          static_cast<unsigned long long>(model->line_graph_edges()));
    }

    table.Print();
    std::printf("\n");
  }
  return session.Finish(0);
}
