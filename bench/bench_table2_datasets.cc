// Table 2 reproduction: dataset statistics (nodes, ties), extended with the
// tie-type breakdown and clustering so the synthetic stand-ins can be
// compared to their namesakes.

#include <cstdio>

#include "bench_common.h"
#include "data/datasets.h"
#include "graph/statistics.h"
#include "graph/triads.h"
#include "util/random.h"
#include "util/table_printer.h"

int main() {
  deepdirect::bench::BenchSession session("table2_datasets");
  using namespace deepdirect;
  const double scale = bench::BenchScale();
  std::printf("=== Table 2: data sets (scale %.2f) ===\n", scale);

  util::TablePrinter table({"Data sets", "Nodes", "Ties", "Directed",
                            "Bidirectional", "Bidir%", "Clustering",
                            "Recipr", "Assort", "AvgPath"});
  auto csv = bench::OpenResultCsv("table2_datasets");
  csv.WriteRow({"dataset", "nodes", "ties", "directed", "bidirectional",
                "bidir_fraction", "clustering", "reciprocity",
                "assortativity", "avg_path_length"});

  for (data::DatasetId id : data::AllDatasets()) {
    const auto net = data::MakeDataset(id, scale);
    const double bidir_fraction =
        static_cast<double>(net.num_bidirectional_ties()) /
        static_cast<double>(net.num_ties());
    const double clustering = graph::GlobalClusteringCoefficient(net);
    const double reciprocity = graph::Reciprocity(net);
    const double assortativity = graph::DegreeAssortativity(net);
    util::Rng rng(5);
    const double path_length =
        graph::AveragePathLengthSampled(net, 64, rng);
    table.AddRow({data::DatasetName(id), std::to_string(net.num_nodes()),
                  std::to_string(net.num_ties()),
                  std::to_string(net.num_directed_ties()),
                  std::to_string(net.num_bidirectional_ties()),
                  util::TablePrinter::FormatDouble(bidir_fraction, 3),
                  util::TablePrinter::FormatDouble(clustering, 3),
                  util::TablePrinter::FormatDouble(reciprocity, 3),
                  util::TablePrinter::FormatDouble(assortativity, 3),
                  util::TablePrinter::FormatDouble(path_length, 2)});
    csv.WriteRow({data::DatasetName(id), std::to_string(net.num_nodes()),
                  std::to_string(net.num_ties()),
                  std::to_string(net.num_directed_ties()),
                  std::to_string(net.num_bidirectional_ties()),
                  util::TablePrinter::FormatDouble(bidir_fraction, 4),
                  util::TablePrinter::FormatDouble(clustering, 4),
                  util::TablePrinter::FormatDouble(reciprocity, 4),
                  util::TablePrinter::FormatDouble(assortativity, 4),
                  util::TablePrinter::FormatDouble(path_length, 3)});
    session.Add("clustering", "coefficient", "none", clustering,
                {{"dataset", data::DatasetName(id)}});
    session.Add("reciprocity", "fraction", "none", reciprocity,
                {{"dataset", data::DatasetName(id)}});
  }
  table.Print();
  std::printf(
      "\nPaper reference (Table 2): Twitter 65,044/526,296; LiveJournal "
      "80,000/1,894,724;\nEpinions 75,879/508,837; Slashdot 77,360/905,468; "
      "Tencent 75,000/705,864.\nSynthetic stand-ins preserve ties-per-node "
      "ratios and bidirectional shares at reduced scale.\n");
  return session.Finish(0);
}
