// Trace-overhead bench: the evidence behind the obs-layer contract that
// tracing is free when off and cheap when on.
//   (1) raw span cost — TraceSpan construction/destruction per span with
//       the buffer gate off (the always-paid path) and on;
//   (2) end-to-end — a small DeepDirect training run with tracing off vs
//       on, plus a bit-identity check: the traced nt=1 run must produce
//       exactly the same embeddings, because instrumentation never draws
//       from any Rng.
// The bench exits nonzero when bit-identity is violated, so a CI fast run
// doubles as a determinism gate.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/deepdirect.h"
#include "core/models.h"
#include "data/datasets.h"
#include "obs/trace.h"
#include "obs/trace_buffer.h"
#include "util/timer.h"

int main() {
  deepdirect::bench::BenchSession session("trace_overhead");
  using namespace deepdirect;
  std::printf("=== Trace overhead ===\n\n");

  obs::TraceBuffer& buffer = obs::TraceBuffer::Default();
  const bool was_enabled = buffer.enabled();

  // --- (1) raw span cost.
  const size_t spans = bench::BenchFast() ? 200'000 : 2'000'000;
  buffer.set_enabled(false);
  util::Timer timer;
  for (size_t i = 0; i < spans; ++i) {
    obs::TraceSpan span("bench.span");
  }
  const double off_ns = timer.ElapsedSeconds() / spans * 1e9;

  buffer.set_shard_capacity(spans + 16);
  buffer.set_enabled(true);
  timer.Reset();
  for (size_t i = 0; i < spans; ++i) {
    obs::TraceSpan span("bench.span");
  }
  const double on_ns = timer.ElapsedSeconds() / spans * 1e9;
  const uint64_t recorded = buffer.Events().size();
  buffer.set_enabled(false);
  buffer.Reset();
  buffer.set_shard_capacity(obs::TraceBuffer::kDefaultShardCapacity);

  std::printf("span cost: %.1f ns disabled, %.1f ns recording "
              "(%llu spans recorded)\n",
              off_ns, on_ns, static_cast<unsigned long long>(recorded));
  session.Add("span_disabled_ns", "nanoseconds", "lower", off_ns);
  session.Add("span_recording_ns", "nanoseconds", "lower", on_ns);

  // --- (2) end-to-end training, tracing off vs on, nt=1 both times.
  const auto net = data::MakeDataset(data::DatasetId::kTwitter,
                                     bench::BenchScale() *
                                         (bench::BenchFast() ? 0.25 : 1.0));
  core::DeepDirectConfig config =
      core::MethodConfigs::FastDefaults().deepdirect;
  config.num_threads = 1;
  config.d_step.num_threads = 1;

  timer.Reset();
  const auto plain = core::DeepDirectModel::Train(net, config);
  const double plain_seconds = timer.ElapsedSeconds();

  buffer.set_enabled(true);
  timer.Reset();
  const auto traced = core::DeepDirectModel::Train(net, config);
  const double traced_seconds = timer.ElapsedSeconds();
  buffer.set_enabled(false);
  const size_t trace_events = buffer.Events().size();
  buffer.Reset();

  bool identical = plain->embeddings().rows() == traced->embeddings().rows();
  for (size_t e = 0; identical && e < plain->embeddings().rows(); ++e) {
    const auto a = plain->embeddings().Row(e);
    const auto b = traced->embeddings().Row(e);
    for (size_t k = 0; k < a.size(); ++k) {
      if (a[k] != b[k]) {
        identical = false;
        break;
      }
    }
  }

  const double overhead =
      plain_seconds > 0.0 ? traced_seconds / plain_seconds - 1.0 : 0.0;
  std::printf("train: %.3fs untraced, %.3fs traced (%+.2f%%, %zu events); "
              "nt=1 output bit-identical: %s\n",
              plain_seconds, traced_seconds, overhead * 100.0, trace_events,
              identical ? "yes" : "NO");
  session.Add("train_seconds_untraced", "seconds", "lower", plain_seconds);
  session.Add("train_seconds_traced", "seconds", "lower", traced_seconds);
  session.Add("traced_run_bit_identical", "boolean", "higher",
              identical ? 1.0 : 0.0);

  buffer.set_enabled(was_enabled);
  return session.Finish(identical ? 0 : 1);
}
