// Shared helpers for the figure-reproduction benches.
//
// Every bench prints the rows/series its paper figure reports, mirrors
// them into CSV files under the result directory, and (via BenchSession)
// writes one structured BENCH_<name>.json report for perf tracking.
// Environment overrides:
//   DD_BENCH_SCALE    — multiplies dataset node counts (default 1.0)
//   DD_BENCH_FAST     — "1" shrinks sweeps for smoke runs
//   DD_BENCH_THREADS  — SGD workers per trainer (default 1; 0 = all cores)
//   DD_BENCH_OUTDIR   — result directory (default bench_results/); CSVs
//                       and BENCH_*.json land here
//   DD_BENCH_METRICS  — path to write a training-telemetry snapshot when
//                       the bench exits (.csv = CSV, else JSON)
//   DD_BENCH_TRACE    — path to write a Chrome trace_event timeline of the
//                       phase/epoch spans recorded during the bench

#ifndef DEEPDIRECT_BENCH_BENCH_COMMON_H_
#define DEEPDIRECT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>

#include "bench_report.h"
#include "obs/metrics.h"
#include "obs/trace_buffer.h"
#include "util/csv_writer.h"
#include "util/timer.h"

namespace deepdirect::bench {

/// Dataset scale multiplier from DD_BENCH_SCALE (default 1.0).
inline double BenchScale() {
  const char* env = std::getenv("DD_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

/// Whether DD_BENCH_FAST=1 smoke mode is requested.
inline bool BenchFast() {
  const char* env = std::getenv("DD_BENCH_FAST");
  return env != nullptr && std::string(env) == "1";
}

/// SGD worker count from DD_BENCH_THREADS (default 1 = the deterministic
/// serial path; 0 = all hardware threads).
inline size_t BenchThreads() {
  const char* env = std::getenv("DD_BENCH_THREADS");
  if (env == nullptr) return 1;
  return static_cast<size_t>(std::strtoull(env, nullptr, 10));
}

/// Result directory for CSVs and BENCH_*.json: DD_BENCH_OUTDIR override,
/// bench_results/ by default.
inline std::string ResultDir() {
  const char* env = std::getenv("DD_BENCH_OUTDIR");
  return (env != nullptr && *env != '\0') ? env : "bench_results";
}

/// Opens <ResultDir()>/<name>.csv (creating the directory, nested paths
/// included).
inline util::CsvWriter OpenResultCsv(const std::string& name) {
  const std::string dir = ResultDir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "warning: cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
  }
  return util::CsvWriter(dir + "/" + name + ".csv");
}

/// Per-bench session: declared first in main(), finished last.
///
///   int main() {
///     deepdirect::bench::BenchSession session("fig9_scalability");
///     ...
///     session.Add("train_seconds", "seconds", "lower", secs, {...});
///     return session.Finish(0);
///   }
///
/// The constructor switches on the obs registry / trace buffer when
/// DD_BENCH_METRICS / DD_BENCH_TRACE request output. Finish() appends the
/// bench's total wall time to the report, writes BENCH_<name>.json into
/// ResultDir(), then the requested metrics snapshot and Chrome trace.
/// It returns `rc` unchanged when every output was written — and 1 when
/// any write failed, so CI cannot mistake a run with lost telemetry for a
/// healthy one.
class BenchSession {
 public:
  explicit BenchSession(std::string name)
      : report_(std::move(name)),
        metrics_path_(std::getenv("DD_BENCH_METRICS")),
        trace_path_(std::getenv("DD_BENCH_TRACE")) {
    if (metrics_path_ != nullptr) obs::Registry::Default().set_enabled(true);
    if (trace_path_ != nullptr) obs::TraceBuffer::Default().set_enabled(true);
    timer_.Reset();
  }

  /// The structured report this bench accumulates into.
  BenchReport& report() { return report_; }

  /// Shorthand for report().Add(...).
  void Add(std::string name, std::string unit, std::string better,
           double value, std::map<std::string, std::string> labels = {}) {
    report_.Add(std::move(name), std::move(unit), std::move(better), value,
                std::move(labels));
  }

  /// Writes every requested output; see the class comment. Call exactly
  /// once, as the bench's `return session.Finish(0);`.
  int Finish(int rc) {
    Add("total_wall_seconds", "seconds", "lower", timer_.ElapsedSeconds());

    const std::string dir = ResultDir();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string report_path =
        dir + "/BENCH_" + report_.bench_name() + ".json";
    const auto report_status = report_.WriteJson(report_path);
    if (!report_status.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   report_status.ToString().c_str());
      rc = rc != 0 ? rc : 1;
    } else {
      std::fprintf(stderr, "wrote bench report to %s\n",
                   report_path.c_str());
    }

    if (metrics_path_ != nullptr) {
      const std::string path(metrics_path_);
      const auto snapshot = obs::Registry::Default().Snapshot();
      const bool csv = path.size() >= 4 &&
                       path.compare(path.size() - 4, 4, ".csv") == 0;
      const auto status =
          csv ? snapshot.WriteCsv(path) : snapshot.WriteJson(path);
      if (!status.ok()) {
        std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
        rc = rc != 0 ? rc : 1;
      } else {
        std::fprintf(stderr, "wrote metrics snapshot to %s\n", path.c_str());
      }
    }

    if (trace_path_ != nullptr) {
      const auto status =
          obs::TraceBuffer::Default().WriteChromeTrace(trace_path_);
      if (!status.ok()) {
        std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
        rc = rc != 0 ? rc : 1;
      } else {
        std::fprintf(stderr, "wrote trace timeline to %s\n", trace_path_);
      }
    }
    return rc;
  }

  BenchSession(const BenchSession&) = delete;
  BenchSession& operator=(const BenchSession&) = delete;

 private:
  BenchReport report_;
  const char* metrics_path_;
  const char* trace_path_;
  util::Timer timer_;
};

}  // namespace deepdirect::bench

#endif  // DEEPDIRECT_BENCH_BENCH_COMMON_H_
