// Shared helpers for the figure-reproduction benches.
//
// Every bench prints the rows/series its paper figure reports and mirrors
// them into CSV files under bench_results/. Environment overrides:
//   DD_BENCH_SCALE    — multiplies dataset node counts (default 1.0)
//   DD_BENCH_FAST     — "1" shrinks sweeps for smoke runs
//   DD_BENCH_THREADS  — SGD workers per trainer (default 1; 0 = all cores)
//   DD_BENCH_METRICS  — path to write a training-telemetry snapshot when
//                       the bench exits (.csv = CSV, else JSON)

#ifndef DEEPDIRECT_BENCH_BENCH_COMMON_H_
#define DEEPDIRECT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "util/csv_writer.h"

namespace deepdirect::bench {

/// Dataset scale multiplier from DD_BENCH_SCALE (default 1.0).
inline double BenchScale() {
  const char* env = std::getenv("DD_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

/// Whether DD_BENCH_FAST=1 smoke mode is requested.
inline bool BenchFast() {
  const char* env = std::getenv("DD_BENCH_FAST");
  return env != nullptr && std::string(env) == "1";
}

/// SGD worker count from DD_BENCH_THREADS (default 1 = the deterministic
/// serial path; 0 = all hardware threads).
inline size_t BenchThreads() {
  const char* env = std::getenv("DD_BENCH_THREADS");
  if (env == nullptr) return 1;
  return static_cast<size_t>(std::strtoull(env, nullptr, 10));
}

/// Scoped DD_BENCH_METRICS hook: declared first in a bench's main(), it
/// switches the obs registry on when the env var names a path and writes
/// the merged snapshot there when the bench finishes.
class BenchMetricsGuard {
 public:
  BenchMetricsGuard() : path_(std::getenv("DD_BENCH_METRICS")) {
    if (path_ != nullptr) obs::Registry::Default().set_enabled(true);
  }

  ~BenchMetricsGuard() {
    if (path_ == nullptr) return;
    const std::string path(path_);
    const auto snapshot = obs::Registry::Default().Snapshot();
    const bool csv = path.size() >= 4 &&
                     path.compare(path.size() - 4, 4, ".csv") == 0;
    const auto status =
        csv ? snapshot.WriteCsv(path) : snapshot.WriteJson(path);
    if (!status.ok()) {
      std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
    } else {
      std::fprintf(stderr, "wrote metrics snapshot to %s\n", path.c_str());
    }
  }

  BenchMetricsGuard(const BenchMetricsGuard&) = delete;
  BenchMetricsGuard& operator=(const BenchMetricsGuard&) = delete;

 private:
  const char* path_;
};

/// Opens bench_results/<name>.csv (creating the directory).
inline util::CsvWriter OpenResultCsv(const std::string& name) {
  const auto status = util::EnsureDirectory("bench_results");
  if (!status.ok()) {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
  return util::CsvWriter("bench_results/" + name + ".csv");
}

}  // namespace deepdirect::bench

#endif  // DEEPDIRECT_BENCH_BENCH_COMMON_H_
