// Fig. 5 reproduction: effectiveness of the directionality patterns in
// E-Step at low label rates (≤ 15% of ties remain directed). Six (α, β)
// groups as in the paper: {0, 5} × {0, 0.1, 1}. Claims: β > 0 helps with
// and without the label loss, most at the lowest label rates, and the best
// setting has both α > 0 and β > 0.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/applications.h"
#include "core/deepdirect.h"
#include "core/models.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "util/random.h"
#include "util/table_printer.h"

int main() {
  deepdirect::bench::BenchSession session("fig5_pattern_effect");
  using namespace deepdirect;
  const double scale = bench::BenchScale();
  const std::vector<std::pair<double, double>> groups{
      {0.0, 0.0}, {0.0, 0.1}, {0.0, 1.0},
      {5.0, 0.0}, {5.0, 0.1}, {5.0, 1.0}};
  const std::vector<double> fractions =
      bench::BenchFast() ? std::vector<double>{0.05}
                         : std::vector<double>{0.02, 0.05, 0.1, 0.15};

  std::printf("=== Fig. 5: effectiveness of directionality patterns ===\n");
  std::printf("(label fractions <= 15%%; cells: accuracy)\n\n");
  auto csv = bench::OpenResultCsv("fig5_pattern_effect");
  csv.WriteRow({"dataset", "directed_fraction", "alpha", "beta", "accuracy"});

  for (data::DatasetId id : data::AllDatasets()) {
    const auto net = data::MakeDataset(id, scale);
    std::printf("--- %s ---\n", data::DatasetName(id));
    std::vector<std::string> headers{"directed%"};
    for (const auto& [alpha, beta] : groups) {
      headers.push_back("a" + util::TablePrinter::FormatDouble(alpha, 0) +
                        ",b" + util::TablePrinter::FormatDouble(beta, 1));
    }
    util::TablePrinter table(headers);

    for (double fraction : fractions) {
      util::Rng rng(55);
      const auto split = graph::HideDirections(net, fraction, rng);
      std::vector<double> row;
      for (const auto& [alpha, beta] : groups) {
        core::DeepDirectConfig config =
            core::MethodConfigs::FastDefaults().deepdirect;
        config.alpha = alpha;
        config.beta = beta;
        const auto model = core::DeepDirectModel::Train(split.network, config);
        const double accuracy =
            core::DirectionDiscoveryAccuracy(split, *model);
        row.push_back(accuracy);
        session.Add("accuracy", "fraction", "higher", accuracy,
                    {{"dataset", data::DatasetName(id)},
                     {"directed_fraction",
                      util::TablePrinter::FormatDouble(fraction, 2)},
                     {"alpha", util::TablePrinter::FormatDouble(alpha, 1)},
                     {"beta", util::TablePrinter::FormatDouble(beta, 1)}});
        csv.WriteRow({data::DatasetName(id),
                      util::TablePrinter::FormatDouble(fraction, 2),
                      util::TablePrinter::FormatDouble(alpha, 1),
                      util::TablePrinter::FormatDouble(beta, 1),
                      util::TablePrinter::FormatDouble(accuracy, 4)});
      }
      table.AddNumericRow(util::TablePrinter::FormatDouble(fraction, 2), row);
    }
    table.Print();
    std::printf("\n");
  }
  return session.Finish(0);
}
