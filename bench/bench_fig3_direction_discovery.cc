// Fig. 3 reproduction: accuracy of direction discovery on the five data
// sets, for all five methods, across the fraction of ties that remain
// directed. The paper's qualitative claims: DeepDirect wins, the ReDirect
// variants form the second tier (their mutual order is dataset-dependent),
// LINE and HF trail.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/applications.h"
#include "core/models.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  deepdirect::bench::BenchSession session("fig3_direction_discovery");
  using namespace deepdirect;
  const double scale = bench::BenchScale();
  const std::vector<double> fractions =
      bench::BenchFast() ? std::vector<double>{0.1, 0.4}
                         : std::vector<double>{0.05, 0.1, 0.2, 0.4, 0.6};
  auto configs = core::MethodConfigs::FastDefaults();
  configs.SetNumThreads(bench::BenchThreads());
  const auto methods = core::AllMethods();

  std::printf("=== Fig. 3: direction discovery accuracy ===\n");
  std::printf("(rows: fraction of ties remaining directed)\n\n");
  auto csv = bench::OpenResultCsv("fig3_direction_discovery");
  csv.WriteRow({"dataset", "directed_fraction", "method", "accuracy"});

  util::Timer total_timer;
  for (data::DatasetId id : data::AllDatasets()) {
    const auto net = data::MakeDataset(id, scale);
    std::printf("--- %s (%zu nodes, %zu ties) ---\n", data::DatasetName(id),
                net.num_nodes(), net.num_ties());
    std::vector<std::string> headers{"directed%"};
    for (core::Method m : methods) headers.push_back(core::MethodName(m));
    util::TablePrinter table(headers);

    for (double fraction : fractions) {
      util::Rng rng(55);
      const auto split = graph::HideDirections(net, fraction, rng);
      std::vector<double> accuracies;
      for (core::Method method : methods) {
        const auto model = core::TrainMethod(split.network, method, configs);
        const double accuracy =
            core::DirectionDiscoveryAccuracy(split, *model);
        accuracies.push_back(accuracy);
        session.Add("accuracy", "fraction", "higher", accuracy,
                    {{"dataset", data::DatasetName(id)},
                     {"directed_fraction",
                      util::TablePrinter::FormatDouble(fraction, 2)},
                     {"method", core::MethodName(method)}});
        csv.WriteRow({data::DatasetName(id),
                      util::TablePrinter::FormatDouble(fraction, 2),
                      core::MethodName(method),
                      util::TablePrinter::FormatDouble(accuracy, 4)});
      }
      table.AddNumericRow(util::TablePrinter::FormatDouble(fraction, 2),
                          accuracies);
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("total wall time: %.1fs\n", total_timer.ElapsedSeconds());
  return session.Finish(0);
}
