#include "bench_report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

// Build facts baked in by bench/CMakeLists.txt; defaults keep the file
// compilable standalone (tests, tooling).
#ifndef DEEPDIRECT_BENCH_GIT_SHA
#define DEEPDIRECT_BENCH_GIT_SHA "unknown"
#endif
#ifndef DEEPDIRECT_BENCH_BUILD_TYPE
#define DEEPDIRECT_BENCH_BUILD_TYPE "unknown"
#endif
#ifndef DEEPDIRECT_BENCH_COMPILER
#define DEEPDIRECT_BENCH_COMPILER "unknown"
#endif

namespace deepdirect::bench {

namespace {

// Local JSON fragment helpers. Deliberately not shared with the obs
// layer's (obs/metrics.cc): those are compiled out under
// DEEPDIRECT_ENABLE_METRICS=OFF while bench reports must always work.
std::string JsonNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g",
                std::isfinite(value) ? value : 0.0);
  return buffer;
}

std::string JsonString(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

BenchEnvironment BenchEnvironment::Collect() {
  BenchEnvironment env;
  env.git_sha = DEEPDIRECT_BENCH_GIT_SHA;
  env.build_type = DEEPDIRECT_BENCH_BUILD_TYPE;
  env.compiler = DEEPDIRECT_BENCH_COMPILER;
  env.hardware_threads = std::thread::hardware_concurrency();
  if (const char* scale = std::getenv("DD_BENCH_SCALE")) {
    const double parsed = std::atof(scale);
    if (parsed > 0.0) env.bench_scale = parsed;
  }
  if (const char* fast = std::getenv("DD_BENCH_FAST")) {
    env.bench_fast = std::string(fast) == "1";
  }
  if (const char* threads = std::getenv("DD_BENCH_THREADS")) {
    env.bench_threads =
        static_cast<size_t>(std::strtoull(threads, nullptr, 10));
  }
  return env;
}

std::string BenchReport::ToJson() const {
  std::string out = "{\n";
  out += "  \"schema\": \"deepdirect-bench-report\",\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"bench\": " + JsonString(bench_) + ",\n";
  out += "  \"environment\": {\n";
  out += "    \"git_sha\": " + JsonString(env_.git_sha) + ",\n";
  out += "    \"build_type\": " + JsonString(env_.build_type) + ",\n";
  out += "    \"compiler\": " + JsonString(env_.compiler) + ",\n";
  out += "    \"hardware_threads\": " +
         std::to_string(env_.hardware_threads) + ",\n";
  out += "    \"bench_scale\": " + JsonNumber(env_.bench_scale) + ",\n";
  out += std::string("    \"bench_fast\": ") +
         (env_.bench_fast ? "true" : "false") + ",\n";
  out += "    \"bench_threads\": " + std::to_string(env_.bench_threads) +
         "\n  },\n";
  out += "  \"measurements\": [";
  bool first = true;
  for (const Measurement& m : measurements_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": " + JsonString(m.name) +
           ", \"unit\": " + JsonString(m.unit) +
           ", \"better\": " + JsonString(m.better) +
           ", \"value\": " + JsonNumber(m.value) + ", \"labels\": {";
    bool first_label = true;
    for (const auto& [key, value] : m.labels) {
      if (!first_label) out += ", ";
      first_label = false;
      out += JsonString(key) + ": " + JsonString(value);
    }
    out += "}}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

util::Status BenchReport::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    return util::Status::IOError("cannot open for writing: " + path);
  }
  out << ToJson();
  out.flush();
  if (!out.good()) return util::Status::IOError("write failed: " + path);
  return util::Status::OK();
}

}  // namespace deepdirect::bench
