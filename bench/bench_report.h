// Structured bench reporting: one machine-readable JSON snapshot per bench
// run, so perf can be tracked as a trajectory across commits instead of
// eyeballed from stdout tables.
//
// Each bench builds a BenchReport and writes BENCH_<name>.json:
//   {
//     "schema": "deepdirect-bench-report", "schema_version": 1,
//     "bench": "<name>",
//     "environment": {git_sha, build_type, compiler, hardware_threads,
//                     bench_scale, bench_fast, bench_threads},
//     "measurements": [
//       {"name": ..., "unit": ..., "better": "lower|higher|none",
//        "value": ..., "labels": {...}}, ...
//     ]
//   }
// The environment block pins down what produced the numbers (git sha and
// compiler are baked in at build time); `better` gives downstream tooling
// (scripts/bench_compare.py) the regression direction per metric, and
// `labels` distinguishes repeats of one metric (per dataset, per thread
// count, ...). Measurements appear in insertion order.

#ifndef DEEPDIRECT_BENCH_BENCH_REPORT_H_
#define DEEPDIRECT_BENCH_BENCH_REPORT_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace deepdirect::bench {

/// One metric sample inside a report.
struct Measurement {
  std::string name;
  std::string unit;    ///< "seconds", "examples_per_sec", "fraction", ...
  std::string better;  ///< regression direction: "lower", "higher", "none"
  double value = 0.0;
  /// Distinguishes repeats of one metric (dataset, thread count, ...).
  std::map<std::string, std::string> labels;
};

/// Build/host facts recorded alongside the measurements.
struct BenchEnvironment {
  std::string git_sha;     ///< short sha at configure time ("unknown" outside git)
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::string compiler;    ///< compiler id + version
  unsigned hardware_threads = 0;
  double bench_scale = 1.0;  ///< DD_BENCH_SCALE
  bool bench_fast = false;   ///< DD_BENCH_FAST
  size_t bench_threads = 1;  ///< DD_BENCH_THREADS

  /// Baked-in build facts + the DD_BENCH_* environment at call time.
  static BenchEnvironment Collect();
};

/// Accumulates measurements for one bench run; see the file comment.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name)
      : bench_(std::move(bench_name)), env_(BenchEnvironment::Collect()) {}

  /// Appends one measurement (kept in insertion order).
  void Add(Measurement measurement) {
    measurements_.push_back(std::move(measurement));
  }
  void Add(std::string name, std::string unit, std::string better,
           double value, std::map<std::string, std::string> labels = {}) {
    Add(Measurement{std::move(name), std::move(unit), std::move(better),
                    value, std::move(labels)});
  }

  const std::string& bench_name() const { return bench_; }
  const BenchEnvironment& environment() const { return env_; }
  const std::vector<Measurement>& measurements() const {
    return measurements_;
  }

  /// The full report as pretty-printed JSON.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  util::Status WriteJson(const std::string& path) const;

 private:
  std::string bench_;
  BenchEnvironment env_;
  std::vector<Measurement> measurements_;
};

}  // namespace deepdirect::bench

#endif  // DEEPDIRECT_BENCH_BENCH_REPORT_H_
