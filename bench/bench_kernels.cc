// Kernel-layer microbenchmarks: scalar vs SIMD dispatch on the E-step
// inner loop (BM_EStepKernel) and the fused negative-sampling kernel
// against its unfused composition (BM_FusedNegSampling).
//
// BENCH_kernels.json carries two kinds of rows:
//   * timing rows ("ns" unit) — machine-specific, skipped by the CI gate
//     (bench_compare.py --skip-timing), recorded for local tracking;
//   * machine-independent gates — the sigmoid LUT error bound, the
//     scalar-dispatch bit-identity check, and the ≥2× SIMD speedup flag
//     (emitted only on hosts whose dispatch resolves a real vector ISA).

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "kernels/kernels.h"
#include "ml/matrix.h"
#include "train/hogwild.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace deepdirect;
using train::SerialAccess;

bench::BenchSession* g_session = nullptr;

constexpr size_t kDims = 64;       // typical embedding width
constexpr size_t kRows = 1024;     // row pool, cycled deterministically
constexpr size_t kNegatives = 5;   // λ negatives per E-step sample

struct RowPool {
  std::vector<float> m;  // "embedding" rows
  std::vector<float> n;  // "context" rows
  RowPool() : m(kRows * kDims), n(kRows * kDims) {
    util::Rng rng(17);
    for (float& v : m) v = static_cast<float>(rng.NextDoubleIn(-0.5, 0.5));
    for (float& v : n) v = static_cast<float>(rng.NextDoubleIn(-0.5, 0.5));
  }
  std::span<float> MRow(size_t i) {
    return {m.data() + (i % kRows) * kDims, kDims};
  }
  std::span<float> NRow(size_t i) {
    return {n.data() + (i % kRows) * kDims, kDims};
  }
};

// One synthetic E-step embedding update: a positive fused negative-sampling
// step, λ negative ones, then the gradient apply with row decay — the
// inner loop of core/deepdirect.cc with sampling and bookkeeping stripped.
void EStepInnerStep(RowPool& pool, std::vector<double>& grad, size_t step,
                    double lr) {
  auto m_e = pool.MRow(step);
  std::fill(grad.begin(), grad.end(), 0.0);
  kernels::NegSamplingUpdate<SerialAccess>(grad, m_e, pool.NRow(step + 1),
                                           1.0, 1.0, -lr);
  for (size_t neg = 0; neg < kNegatives; ++neg) {
    kernels::NegSamplingUpdate<SerialAccess>(
        grad, m_e, pool.NRow(step * 7 + 13 * neg + 2), 0.0, 1.0, -lr);
  }
  kernels::ApplyGradDecay<SerialAccess>(m_e, grad, lr, 1e-4);
}

void BM_EStepKernel(benchmark::State& state) {
  const bool simd = state.range(0) != 0;
  kernels::SetMode(simd ? kernels::Mode::kSimd : kernels::Mode::kScalar);
  RowPool pool;
  std::vector<double> grad(kDims, 0.0);
  size_t step = 0;

  util::Timer timer;
  for (auto _ : state) {
    EStepInnerStep(pool, grad, step++, 0.025);
    benchmark::DoNotOptimize(pool.m.data());
  }
  const double ns_per_step = timer.ElapsedSeconds() * 1e9 /
                             static_cast<double>(state.iterations());
  kernels::SetMode(kernels::Mode::kAuto);

  state.counters["ns_per_step"] = ns_per_step;
  // Scalar runs first (Arg order below) and anchors the speedup.
  static double scalar_ns = 0.0;
  if (!simd) scalar_ns = ns_per_step;
  const double speedup =
      (simd && ns_per_step > 0.0 && scalar_ns > 0.0) ? scalar_ns / ns_per_step
                                                     : 0.0;
  if (simd) state.counters["speedup_vs_scalar"] = speedup;

  if (g_session != nullptr) {
    g_session->Add("estep_inner_ns_per_step", "ns", "lower", ns_per_step,
                   {{"dispatch", simd ? "simd" : "scalar"}});
    if (simd) {
      const bool real_isa =
          std::strcmp(kernels::SimdIsaName(), "scalar") != 0;
      g_session->Add("estep_simd_speedup", "x", "none", speedup);
      if (real_isa) {
        // The acceptance gate: ≥2× single-thread E-step inner-loop
        // throughput on any host with a vector ISA. Boolean so the CI
        // comparison is machine-independent.
        g_session->Add("simd_speedup_ge_2x", "bool", "higher",
                       speedup >= 2.0 ? 1.0 : 0.0);
      }
    }
  }
}
BENCHMARK(BM_EStepKernel)
    ->Apply([](benchmark::internal::Benchmark* b) {
      b->Arg(0)->Arg(1);  // scalar first: it anchors the speedup ratio
      b->Iterations(bench::BenchFast() ? 2000 : 20000);
    });

// The fused kernel against its unfused composition (separate dot, sigmoid,
// gradient accumulation, and axpy passes) in the same dispatch mode —
// isolates the win of fusing from the win of vectorizing.
void UnfusedNegSampling(std::vector<double>& grad, std::span<const float> src,
                        std::span<float> dst, double label, double lr) {
  const double score = kernels::DotRows<SerialAccess>(src, dst);
  const double g = 1.0 * (kernels::SigmoidLut(score) - label);
  for (size_t k = 0; k < src.size(); ++k) {
    grad[k] += g * static_cast<double>(dst[k]);
  }
  kernels::AxpyRows<SerialAccess>(dst, -lr * g, src);
}

void BM_FusedNegSampling(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  kernels::SetMode(kernels::Mode::kSimd);
  RowPool pool;
  std::vector<double> grad(kDims, 0.0);
  size_t step = 0;

  util::Timer timer;
  for (auto _ : state) {
    auto src = pool.MRow(step);
    auto dst = pool.NRow(step * 3 + 1);
    if (fused) {
      kernels::NegSamplingUpdate<SerialAccess>(grad, src, dst, 1.0, 1.0,
                                               -0.025);
    } else {
      UnfusedNegSampling(grad, src, dst, 1.0, 0.025);
    }
    benchmark::DoNotOptimize(pool.n.data());
    ++step;
  }
  const double ns_per_call = timer.ElapsedSeconds() * 1e9 /
                             static_cast<double>(state.iterations());
  kernels::SetMode(kernels::Mode::kAuto);

  state.counters["ns_per_call"] = ns_per_call;
  static double unfused_ns = 0.0;
  if (!fused) unfused_ns = ns_per_call;
  if (g_session != nullptr) {
    g_session->Add("neg_sampling_ns_per_call", "ns", "lower", ns_per_call,
                   {{"variant", fused ? "fused" : "composed"}});
    if (fused && ns_per_call > 0.0 && unfused_ns > 0.0) {
      g_session->Add("fused_vs_composed_speedup", "x", "none",
                     unfused_ns / ns_per_call);
    }
  }
}
BENCHMARK(BM_FusedNegSampling)
    ->Apply([](benchmark::internal::Benchmark* b) {
      b->Arg(0)->Arg(1);  // composed first: it anchors the ratio
      b->Iterations(bench::BenchFast() ? 5000 : 50000);
    });

// Machine-independent gates, computed once outside google-benchmark.
void AddCorrectnessGates(bench::BenchSession& session) {
  // Sigmoid LUT error bound over a fine sweep of the clamp range.
  double max_err = 0.0;
  for (double x = -7.0; x <= 7.0; x += 1e-4) {
    max_err = std::max(
        max_err, std::fabs(kernels::SigmoidLut(x) - kernels::Sigmoid(x)));
  }
  session.Add("sigmoid_lut_max_abs_error", "abs_error", "lower", max_err);

  // Scalar dispatch must reproduce the historical E-step arithmetic
  // bit-for-bit (the same contract tests/kernels_test.cc pins widely; the
  // bench re-checks it so the committed baseline records it as a gate).
  kernels::SetMode(kernels::Mode::kScalar);
  util::Rng rng(23);
  bool identical = true;
  for (size_t n : {8u, 13u, 64u}) {
    std::vector<float> src(n), dst(n), dst_ref;
    for (float& v : src) v = static_cast<float>(rng.NextDoubleIn(-1, 1));
    for (float& v : dst) v = static_cast<float>(rng.NextDoubleIn(-1, 1));
    dst_ref = dst;
    std::vector<double> grad(n, 0.0), grad_ref(n, 0.0);
    const double lr = 0.025;
    double score_ref = 0.0;
    for (size_t k = 0; k < n; ++k) {
      score_ref +=
          static_cast<double>(src[k]) * static_cast<double>(dst_ref[k]);
    }
    const double g = ml::Sigmoid(score_ref) - 1.0;
    for (size_t k = 0; k < n; ++k) {
      grad_ref[k] += g * static_cast<double>(dst_ref[k]);
    }
    const double alpha = -lr * g;
    for (size_t k = 0; k < n; ++k) {
      dst_ref[k] += static_cast<float>(alpha * static_cast<double>(src[k]));
    }
    const double score = kernels::NegSamplingUpdate<SerialAccess>(
        grad, src, dst, 1.0, 1.0, -lr);
    identical &= score == score_ref;
    for (size_t k = 0; k < n; ++k) {
      identical &= dst[k] == dst_ref[k] && grad[k] == grad_ref[k];
    }
  }
  kernels::SetMode(kernels::Mode::kAuto);
  session.Add("scalar_dispatch_bit_identical", "bool", "higher",
              identical ? 1.0 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  deepdirect::bench::BenchSession session("kernels");
  g_session = &session;
  std::fprintf(stderr, "kernel dispatch: isa=%s active=%s\n",
               deepdirect::kernels::SimdIsaName(),
               deepdirect::kernels::ActivePathName());
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return session.Finish(1);
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  AddCorrectnessGates(session);
  return session.Finish(0);
}
