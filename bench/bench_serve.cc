// Serving-layer bench: batch d(u, v) throughput off the mmap'd servable
// model versus the naive in-memory path, under a Zipf-skewed query stream
// (social-tie traffic concentrates on a celebrity head, which is exactly
// what the hot-tie cache exploits).
//
// Sweeps the Fig. 9 Tencent scales. At each scale it trains DeepDirect,
// exports the DDS1 servable file, and drives one Zipf workload through
// four paths: the naive per-query DeepDirectModel::Directionality, the
// scalar ServableModel::Query, batched QueryBatch through the hot-tie
// cache, and the batched path under concurrent reader threads.
//
// Timing rows (*_query_ns) carry machine-dependent latencies and are
// skipped by the cross-machine gate (scripts/bench_compare.py
// --skip-timing). The machine-independent gate rows:
//   batch_vs_naive_speedup   "x"/none      informational ratio per scale
//   batch_speedup_ge_5x      "bool"/higher batch ≥ 5× naive at the LARGEST
//                                          scale — the acceptance gate
//   zipf_cache_hit_rate      "fraction"/higher per scale
//   cache_hit_rate_ge_half   "bool"/higher hit rate ≥ 0.5 at the largest
//                                          scale
//   batch_scalar_parity      "bool"/higher batch == scalar == naive,
//                                          bit-exact, on the whole stream
//   serve_offline_parity     "bool"/higher servable == in-memory model on
//                                          every tie arc

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/deepdirect.h"
#include "core/models.h"
#include "core/tie_index.h"
#include "data/datasets.h"
#include "graph/algorithms.h"
#include "serve/servable_model.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace deepdirect;

/// Zipf(s=1) sampler over ranks [0, n): precomputes the CDF once, then
/// inverts a uniform draw by binary search. Rank r is queried with
/// probability ∝ 1/(r+1).
class ZipfSampler {
 public:
  explicit ZipfSampler(size_t n) : cdf_(n) {
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) {
      total += 1.0 / static_cast<double>(r + 1);
      cdf_[r] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  size_t Sample(util::Rng& rng) const {
    const double u = rng.NextDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

int main() {
  bench::BenchSession session("serve");
  std::printf("=== Serving layer: batch d(u,v) throughput ===\n\n");

  const std::vector<double> scales =
      bench::BenchFast() ? std::vector<double>{0.5, 1.0}
                         : std::vector<double>{0.5, 1.0, 1.5, 2.0, 2.5};
  const size_t reader_threads =
      std::min<size_t>(4, std::max<size_t>(std::thread::hardware_concurrency(), 1));

  auto csv = bench::OpenResultCsv("serve");
  csv.WriteRow({"scale", "arcs", "queries", "naive_ns", "scalar_ns",
                "batch_ns", "mt_batch_ns", "speedup", "hit_rate"});
  util::TablePrinter table({"scale", "arcs", "naive_ns", "scalar_ns",
                            "batch_ns", "mt_ns", "speedup", "hit_rate"});

  core::DeepDirectConfig config =
      core::MethodConfigs::FastDefaults().deepdirect;
  config.num_threads = bench::BenchThreads();
  config.d_step.num_threads = config.num_threads;

  bool all_parity = true;
  bool all_offline_parity = true;
  double largest_speedup = 0.0;
  double largest_hit_rate = 0.0;
  for (double scale : scales) {
    const auto net = data::MakeDataset(data::DatasetId::kTencent, scale);
    util::Rng rng(55);
    const auto split = graph::HideDirections(net, 0.2, rng);
    const auto model = core::DeepDirectModel::Train(split.network, config);
    const size_t num_arcs = model->index().num_arcs();

    const std::string model_path =
        bench::ResultDir() + "/serve_model.dds";
    auto exported = model->ExportServable(model_path);
    if (!exported.ok()) {
      std::fprintf(stderr, "error: %s\n", exported.ToString().c_str());
      return session.Finish(1);
    }
    serve::ServeOptions options;
    // Sized to half the arc set: the Zipf head fits with room while the
    // cold tail still churns through eviction.
    options.cache_capacity = std::max<size_t>(num_arcs / 2, 64);
    auto opened = serve::ServableModel::Open(model_path, options);
    if (!opened.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   opened.status().ToString().c_str());
      return session.Finish(1);
    }
    const serve::ServableModel& servable = opened.value();

    // Offline parity: the servable answers must equal the in-memory model
    // on every tie arc, bit for bit.
    for (size_t e = 0; e < num_arcs; ++e) {
      const auto [u, v] = model->index().ArcAt(e);
      const auto got = servable.Query(u, v);
      if (!got.ok() || got.value() != model->Directionality(u, v)) {
        all_offline_parity = false;
        break;
      }
    }

    // Zipf workload: hot ranks map to arcs through a mixing stride so the
    // popular head is scattered across the CSR instead of clustered.
    const size_t num_queries =
        std::clamp<size_t>(20 * num_arcs, 50'000, 400'000);
    const ZipfSampler zipf(num_arcs);
    util::Rng workload_rng(77);
    std::vector<serve::TiePair> workload;
    workload.reserve(num_queries);
    const size_t stride = num_arcs / 2 + 1;  // coprime-ish scatter
    for (size_t q = 0; q < num_queries; ++q) {
      const size_t arc = (zipf.Sample(workload_rng) * stride) % num_arcs;
      const auto [u, v] = model->index().ArcAt(arc);
      workload.push_back({u, v});
    }

    // Path 1: naive — one virtual Directionality call per query on the
    // in-memory model (feature copy + dot product each time).
    util::Timer timer;
    double naive_sink = 0.0;
    for (const serve::TiePair& tie : workload) {
      naive_sink += model->Directionality(tie.u, tie.v);
    }
    const double naive_ns =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(num_queries);

    // Path 2: scalar serving — Query() per tie, warm cache from the parity
    // sweep above plus its own inserts.
    timer.Reset();
    double scalar_sink = 0.0;
    for (const serve::TiePair& tie : workload) {
      scalar_sink += servable.Query(tie.u, tie.v).value();
    }
    const double scalar_ns =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(num_queries);

    // Path 3: batched serving — the production path the gate measures.
    std::vector<double> batch_out(workload.size(), 0.0);
    const auto before = servable.CacheStats();
    timer.Reset();
    if (!servable.QueryBatch(workload, batch_out).ok()) {
      return session.Finish(1);
    }
    const double batch_ns =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(num_queries);
    const auto after = servable.CacheStats();
    const double hit_rate =
        static_cast<double>(after.hits - before.hits) /
        static_cast<double>(num_queries);

    // Parity across all three paths, bit for bit, on the whole stream.
    double batch_sink = 0.0;
    for (double value : batch_out) batch_sink += value;
    size_t i = 0;
    for (const serve::TiePair& tie : workload) {
      const double expected = model->Directionality(tie.u, tie.v);
      if (batch_out[i] != expected ||
          servable.Query(tie.u, tie.v).value() != expected) {
        all_parity = false;
        break;
      }
      ++i;
    }

    // Path 4: concurrent batched readers over one shared model.
    timer.Reset();
    {
      std::vector<std::thread> readers;
      readers.reserve(reader_threads);
      const size_t chunk =
          (workload.size() + reader_threads - 1) / reader_threads;
      for (size_t t = 0; t < reader_threads; ++t) {
        readers.emplace_back([&, t] {
          const size_t begin = std::min(t * chunk, workload.size());
          const size_t end = std::min(begin + chunk, workload.size());
          std::span<const serve::TiePair> part(workload.data() + begin,
                                               end - begin);
          std::span<double> out(batch_out.data() + begin, end - begin);
          (void)servable.QueryBatch(part, out);
        });
      }
      for (std::thread& reader : readers) reader.join();
    }
    const double mt_ns =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(num_queries);

    const double speedup = naive_ns / batch_ns;
    largest_speedup = speedup;      // scales ascend; the last one sticks
    largest_hit_rate = hit_rate;
    const std::string scale_label = util::TablePrinter::FormatDouble(scale, 1);
    session.Add("naive_query_ns", "ns", "lower", naive_ns,
                {{"scale", scale_label}});
    session.Add("scalar_query_ns", "ns", "lower", scalar_ns,
                {{"scale", scale_label}});
    session.Add("batch_query_ns", "ns", "lower", batch_ns,
                {{"scale", scale_label}});
    session.Add("mt_batch_query_ns", "ns", "lower", mt_ns,
                {{"scale", scale_label}});
    session.Add("batch_vs_naive_speedup", "x", "none", speedup,
                {{"scale", scale_label}});
    session.Add("zipf_cache_hit_rate", "fraction", "higher", hit_rate,
                {{"scale", scale_label}});
    table.AddRow({scale_label, std::to_string(num_arcs),
                  util::TablePrinter::FormatDouble(naive_ns, 0),
                  util::TablePrinter::FormatDouble(scalar_ns, 0),
                  util::TablePrinter::FormatDouble(batch_ns, 0),
                  util::TablePrinter::FormatDouble(mt_ns, 0),
                  util::TablePrinter::FormatDouble(speedup, 2),
                  util::TablePrinter::FormatDouble(hit_rate, 3)});
    csv.WriteRow({scale_label, std::to_string(num_arcs),
                  std::to_string(num_queries),
                  util::TablePrinter::FormatDouble(naive_ns, 1),
                  util::TablePrinter::FormatDouble(scalar_ns, 1),
                  util::TablePrinter::FormatDouble(batch_ns, 1),
                  util::TablePrinter::FormatDouble(mt_ns, 1),
                  util::TablePrinter::FormatDouble(speedup, 3),
                  util::TablePrinter::FormatDouble(hit_rate, 4)});
    // The sinks keep the timed loops from being optimized away.
    if (naive_sink == -1.0 || scalar_sink == -1.0 || batch_sink == -1.0) {
      std::printf("impossible\n");
    }
  }
  table.Print();

  // Machine-independent gates, evaluated at the largest swept scale.
  session.Add("batch_speedup_ge_5x", "bool", "higher",
              largest_speedup >= 5.0 ? 1.0 : 0.0);
  session.Add("cache_hit_rate_ge_half", "bool", "higher",
              largest_hit_rate >= 0.5 ? 1.0 : 0.0);
  session.Add("batch_scalar_parity", "bool", "higher",
              all_parity ? 1.0 : 0.0);
  session.Add("serve_offline_parity", "bool", "higher",
              all_offline_parity ? 1.0 : 0.0);
  std::printf(
      "\ngates: speedup %.2fx (>=5 required), hit rate %.3f (>=0.5), "
      "parity %s/%s\n",
      largest_speedup, largest_hit_rate, all_parity ? "ok" : "FAIL",
      all_offline_parity ? "ok" : "FAIL");
  return session.Finish(0);
}
