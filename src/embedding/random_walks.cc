#include "embedding/random_walks.h"

#include <algorithm>

namespace deepdirect::embedding {

using graph::MixedSocialNetwork;
using graph::NodeId;

namespace {

// One p/q-biased step: given previous node `prev` and current node `cur`,
// samples the next node among cur's neighbors with node2vec weights
// (1/p for returning to prev, 1 for neighbors of prev, 1/q otherwise).
// Uses on-the-fly weight computation — O(deg) per step, fine at our scale.
NodeId BiasedStep(const MixedSocialNetwork& g, NodeId prev, NodeId cur,
                  double return_weight, double inout_weight,
                  util::Rng& rng, std::vector<double>& weight_scratch) {
  const auto neighbors = g.UndirectedNeighbors(cur);
  DD_CHECK(!neighbors.empty());
  const auto prev_neighbors = g.UndirectedNeighbors(prev);

  weight_scratch.clear();
  double total = 0.0;
  for (NodeId candidate : neighbors) {
    double w;
    if (candidate == prev) {
      w = return_weight;
    } else if (std::binary_search(prev_neighbors.begin(),
                                  prev_neighbors.end(), candidate)) {
      w = 1.0;  // distance 1 from prev
    } else {
      w = inout_weight;  // distance 2 from prev
    }
    weight_scratch.push_back(w);
    total += w;
  }
  double draw = rng.NextDouble() * total;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    draw -= weight_scratch[i];
    if (draw <= 0.0) return neighbors[i];
  }
  return neighbors.back();
}

}  // namespace

WalkCorpus GenerateWalks(const MixedSocialNetwork& g,
                         const WalkConfig& config) {
  DD_CHECK_GT(config.walk_length, 1u);
  DD_CHECK_GT(config.return_param, 0.0);
  DD_CHECK_GT(config.inout_param, 0.0);
  util::Rng rng(config.seed);
  const double return_weight = 1.0 / config.return_param;
  const double inout_weight = 1.0 / config.inout_param;
  const bool uniform =
      config.return_param == 1.0 && config.inout_param == 1.0;

  WalkCorpus corpus;
  corpus.walks.reserve(g.num_nodes() * config.walks_per_node);
  std::vector<double> weight_scratch;

  // Start nodes in shuffled order per round, as the original algorithms do.
  std::vector<NodeId> order;
  order.reserve(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.UndirectedDegree(u) > 0) order.push_back(u);
  }

  for (size_t round = 0; round < config.walks_per_node; ++round) {
    rng.Shuffle(order);
    for (NodeId start : order) {
      std::vector<NodeId> walk;
      walk.reserve(config.walk_length);
      walk.push_back(start);
      // First step is always uniform (no previous node yet).
      const auto first_neighbors = g.UndirectedNeighbors(start);
      walk.push_back(first_neighbors[rng.NextIndex(first_neighbors.size())]);
      while (walk.size() < config.walk_length) {
        const NodeId prev = walk[walk.size() - 2];
        const NodeId cur = walk.back();
        const auto neighbors = g.UndirectedNeighbors(cur);
        if (neighbors.empty()) break;
        if (uniform) {
          walk.push_back(neighbors[rng.NextIndex(neighbors.size())]);
        } else {
          walk.push_back(BiasedStep(g, prev, cur, return_weight,
                                    inout_weight, rng, weight_scratch));
        }
      }
      corpus.walks.push_back(std::move(walk));
    }
  }
  return corpus;
}

}  // namespace deepdirect::embedding
