// GraRep (Cao, Lu & Xu, CIKM 2015 — the paper's reference [32]): node
// embeddings from truncated SVD of log-shifted k-step transition
// probability matrices, one block per step, concatenated.

#ifndef DEEPDIRECT_EMBEDDING_GRAREP_H_
#define DEEPDIRECT_EMBEDDING_GRAREP_H_

#include <span>

#include "graph/mixed_graph.h"
#include "ml/linalg.h"
#include "ml/matrix.h"

namespace deepdirect::embedding {

/// GraRep parameters.
struct GraRepConfig {
  /// Maximum transition step K; the embedding concatenates K blocks.
  size_t max_step = 3;
  /// Dimensions per step block (total = max_step × dims_per_step).
  size_t dims_per_step = 16;
  /// SVD oversampling and power iterations.
  size_t oversample = 8;
  size_t power_iterations = 2;
  uint64_t seed = 79;
};

/// Trained GraRep node embeddings.
class GraRepEmbedding {
 public:
  /// Computes transition powers over the undirected view and factorizes.
  /// Dense O(K·n³) — fine at the library's dataset scale, not for huge
  /// graphs (GraRep's acknowledged limitation).
  static GraRepEmbedding Train(const graph::MixedSocialNetwork& g,
                               const GraRepConfig& config);

  size_t dimensions() const { return vectors_.cols(); }

  std::span<const float> NodeVector(graph::NodeId u) const {
    return vectors_.Row(u);
  }

  void NodeVectorAsDouble(graph::NodeId u, std::span<double> out) const;

 private:
  explicit GraRepEmbedding(ml::Matrix vectors)
      : vectors_(std::move(vectors)) {}

  ml::Matrix vectors_;
};

}  // namespace deepdirect::embedding

#endif  // DEEPDIRECT_EMBEDDING_GRAREP_H_
