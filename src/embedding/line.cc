#include "embedding/line.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels/kernels.h"
#include "train/sgd_driver.h"
#include "util/alias_table.h"

namespace deepdirect::embedding {

using graph::ArcId;
using graph::MixedSocialNetwork;
using graph::NodeId;

namespace {

// Noise distribution over nodes, P(u) ∝ deg(u)^{3/4} with the undirected
// degree (standard word2vec/LINE choice, +1 smoothing against isolated
// nodes).
util::AliasTable BuildNodeNoiseTable(const MixedSocialNetwork& g) {
  std::vector<double> weights(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    weights[u] = std::pow(static_cast<double>(g.UndirectedDegree(u)) + 1.0,
                          0.75);
  }
  return util::AliasTable(weights);
}

// One negative-sampling SGD step on (source row, target row) with the given
// positive/negative label, shared by both proximity orders. Accumulates the
// source-row gradient into `source_grad`; updates the target row in place.
// Parameter access goes through the driver's policy `A` so the same body
// serves the serial and Hogwild paths.
template <typename A>
void NegSamplingStep(std::span<float> source, std::span<float> target,
                     double label, double lr,
                     std::vector<double>& source_grad) {
  // Fused kernel: g = −lr·(σ(score) − label) ≡ (label − σ)·lr, target +=
  // g·source, source gradient accumulated in the same pass.
  kernels::NegSamplingUpdate<A>(source_grad, source, target, label,
                                /*grad_scale=*/-lr, /*update_scale=*/1.0);
}

}  // namespace

LineEmbedding LineEmbedding::Train(const MixedSocialNetwork& g,
                                   const LineConfig& config) {
  DD_CHECK_EQ(config.dimensions % 2, 0u);
  DD_CHECK_GT(g.num_arcs(), 0u);
  const size_t half = config.dimensions / 2;

  util::Rng rng(config.seed);
  ml::Matrix first(g.num_nodes(), half);
  ml::Matrix first_ctx(g.num_nodes(), half);   // first-order "other side"
  ml::Matrix second(g.num_nodes(), half);
  ml::Matrix second_ctx(g.num_nodes(), half);  // second-order contexts

  const float init = 0.5f / static_cast<float>(half);
  first.FillUniform(rng, -init, init);
  second.FillUniform(rng, -init, init);
  // Context matrices start at zero, as in the reference implementation.

  const util::AliasTable noise = BuildNodeNoiseTable(g);

  train::SgdOptions options;
  options.steps =
      static_cast<uint64_t>(config.samples_per_arc) * g.num_arcs();
  options.num_threads = config.num_threads;
  options.lr = config.Schedule();
  options.shard_seed = config.seed;
  // One "epoch" is num_arcs samples (one expected pass over the arcs).
  options.steps_per_epoch = g.num_arcs();
  options.metrics_prefix = config.metrics_prefix;

  train::CheckpointOptions ckpt_options = config.checkpoint;
  if (ckpt_options.trainer.empty()) ckpt_options.trainer = "line";
  train::Checkpointer checkpointer(
      ckpt_options,
      train::RunShape{options.steps, options.steps_per_epoch, config.seed,
                      options.lr},
      [&](train::CheckpointWriter& writer) {
        writer.AddVector("first", first.data());
        writer.AddVector("first_ctx", first_ctx.data());
        writer.AddVector("second", second.data());
        writer.AddVector("second_ctx", second_ctx.data());
      },
      [&](const train::CheckpointData& ckpt) -> util::Status {
        std::vector<float> m1, m2, m3, m4;
        DD_RETURN_NOT_OK(ckpt.ReadVector("first", &m1, first.data().size()));
        DD_RETURN_NOT_OK(
            ckpt.ReadVector("first_ctx", &m2, first_ctx.data().size()));
        DD_RETURN_NOT_OK(
            ckpt.ReadVector("second", &m3, second.data().size()));
        DD_RETURN_NOT_OK(
            ckpt.ReadVector("second_ctx", &m4, second_ctx.data().size()));
        first.data() = std::move(m1);
        first_ctx.data() = std::move(m2);
        second.data() = std::move(m3);
        second_ctx.data() = std::move(m4);
        return util::Status::OK();
      });
  options.start_epoch = checkpointer.Resume(rng);
  options.checkpointer = &checkpointer;

  train::SgdDriver driver(options);

  std::vector<std::vector<double>> grad_scratch(
      driver.num_workers(), std::vector<double>(half, 0.0));

  driver.Run(rng, [&](auto access, const train::SgdStep& ctx) -> double {
    using A = decltype(access);
    std::vector<double>& source_grad = grad_scratch[ctx.worker];
    util::Rng& r = ctx.rng;
    const double lr = ctx.lr;

    // Arcs are unit-weight: uniform arc sampling == LINE's edge sampling.
    // Orientation is randomized so both endpoints receive vertex-side
    // updates regardless of the mix of directed vs twin arcs (proximity in
    // LINE is direction-agnostic; see the paper's critique in Sec. 4 that
    // node embeddings cannot exploit directionality).
    const ArcId arc_id = static_cast<ArcId>(r.NextIndex(g.num_arcs()));
    NodeId u = g.arc(arc_id).src;
    NodeId v = g.arc(arc_id).dst;
    if (r.NextBool(0.5)) std::swap(u, v);

    // --- First order: symmetric affinity between endpoint vectors.
    std::fill(source_grad.begin(), source_grad.end(), 0.0);
    NegSamplingStep<A>(first.Row(u), first_ctx.Row(v), 1.0, lr, source_grad);
    for (size_t neg = 0; neg < config.negative_samples; ++neg) {
      const NodeId noise_node = static_cast<NodeId>(noise.Sample(r));
      if (noise_node == v || noise_node == u) continue;
      NegSamplingStep<A>(first.Row(u), first_ctx.Row(noise_node), 0.0, lr,
                         source_grad);
    }
    kernels::ApplyGrad<A>(first.Row(u), source_grad);

    // --- Second order: vertex u against context v.
    std::fill(source_grad.begin(), source_grad.end(), 0.0);
    NegSamplingStep<A>(second.Row(u), second_ctx.Row(v), 1.0, lr,
                       source_grad);
    for (size_t neg = 0; neg < config.negative_samples; ++neg) {
      const NodeId noise_node = static_cast<NodeId>(noise.Sample(r));
      if (noise_node == v) continue;
      NegSamplingStep<A>(second.Row(u), second_ctx.Row(noise_node), 0.0, lr,
                         source_grad);
    }
    kernels::ApplyGrad<A>(second.Row(u), source_grad);
    return 0.0;
  });

  return LineEmbedding(std::move(first), std::move(second));
}

void LineEmbedding::NodeVector(NodeId u, std::span<double> out) const {
  DD_CHECK_EQ(out.size(), dimensions());
  const auto f = first_.Row(u);
  const auto s = second_.Row(u);
  for (size_t k = 0; k < f.size(); ++k) out[k] = f[k];
  for (size_t k = 0; k < s.size(); ++k) out[f.size() + k] = s[k];
}

}  // namespace deepdirect::embedding
