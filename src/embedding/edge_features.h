// Node-pair → edge feature operators.
//
// The paper uses concatenation for LINE (Sec. 6.1); node2vec-style binary
// operators (average, Hadamard, L1, L2) are provided as extensions and
// exercised by an ablation bench. All operators consume two equal-length
// node vectors and emit a double feature vector.

#ifndef DEEPDIRECT_EMBEDDING_EDGE_FEATURES_H_
#define DEEPDIRECT_EMBEDDING_EDGE_FEATURES_H_

#include <span>
#include <string>
#include <vector>

namespace deepdirect::embedding {

/// Available binary operators for composing edge features from node vectors.
enum class EdgeOperator {
  kConcatenate = 0,  ///< [src ; dst] — dimension 2d (the paper's choice)
  kAverage = 1,      ///< (src + dst) / 2 — dimension d
  kHadamard = 2,     ///< src ⊙ dst — dimension d
  kL1 = 3,           ///< |src − dst| — dimension d
  kL2 = 4,           ///< (src − dst)² — dimension d
};

/// Short lowercase operator name for reports.
const char* EdgeOperatorToString(EdgeOperator op);

/// Output dimensionality for node vectors of length `node_dims`.
size_t EdgeFeatureDims(EdgeOperator op, size_t node_dims);

/// Applies the operator; `out` must have EdgeFeatureDims(...) entries.
void ComposeEdgeFeatures(EdgeOperator op, std::span<const double> src,
                         std::span<const double> dst, std::span<double> out);

}  // namespace deepdirect::embedding

#endif  // DEEPDIRECT_EMBEDDING_EDGE_FEATURES_H_
