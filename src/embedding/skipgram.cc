#include "embedding/skipgram.h"

#include <cmath>

#include "kernels/kernels.h"
#include "train/sgd_driver.h"
#include "util/alias_table.h"

namespace deepdirect::embedding {

using graph::NodeId;

namespace {

// Flat (walk, position) coordinates of one corpus token; the driver's
// global step maps onto these epoch-major, walk-major, position-major —
// exactly the historical nested-loop traversal order.
struct TokenRef {
  uint32_t walk;
  uint32_t position;
};

}  // namespace

ml::Matrix TrainSkipGram(const WalkCorpus& corpus, size_t num_nodes,
                         const SkipGramConfig& config) {
  DD_CHECK_GT(num_nodes, 0u);
  DD_CHECK_GT(config.dimensions, 0u);
  util::Rng rng(config.seed);

  const size_t dims = config.dimensions;
  ml::Matrix vectors(num_nodes, dims);
  ml::Matrix contexts(num_nodes, dims);
  const float init = 0.5f / static_cast<float>(dims);
  vectors.FillUniform(rng, -init, init);
  // Context matrix starts at zero (word2vec convention).

  // Unigram^{3/4} noise distribution from corpus frequencies.
  std::vector<double> frequency(num_nodes, 0.0);
  for (const auto& walk : corpus.walks) {
    for (NodeId node : walk) frequency[node] += 1.0;
  }
  for (double& f : frequency) f = std::pow(f + 1.0, 0.75);
  const util::AliasTable noise(frequency);

  std::vector<TokenRef> tokens;
  tokens.reserve(corpus.TotalTokens());
  for (size_t w = 0; w < corpus.walks.size(); ++w) {
    for (size_t p = 0; p < corpus.walks[w].size(); ++p) {
      tokens.push_back({static_cast<uint32_t>(w), static_cast<uint32_t>(p)});
    }
  }
  if (tokens.empty()) return vectors;

  const uint64_t tokens_per_epoch = tokens.size();
  train::SgdOptions options;
  options.steps = static_cast<uint64_t>(config.epochs) * tokens_per_epoch;
  options.num_threads = config.num_threads;
  options.lr = config.Schedule();
  options.shard_seed = config.seed;
  options.steps_per_epoch = tokens_per_epoch;
  options.metrics_prefix = config.metrics_prefix;

  train::CheckpointOptions ckpt_options = config.checkpoint;
  if (ckpt_options.trainer.empty()) ckpt_options.trainer = "skipgram";
  train::Checkpointer checkpointer(
      ckpt_options,
      train::RunShape{options.steps, tokens_per_epoch, config.seed,
                      options.lr},
      [&](train::CheckpointWriter& writer) {
        writer.AddVector("vectors", vectors.data());
        writer.AddVector("contexts", contexts.data());
      },
      [&](const train::CheckpointData& ckpt) -> util::Status {
        std::vector<float> saved_vectors;
        std::vector<float> saved_contexts;
        DD_RETURN_NOT_OK(ckpt.ReadVector("vectors", &saved_vectors,
                                         vectors.data().size()));
        DD_RETURN_NOT_OK(ckpt.ReadVector("contexts", &saved_contexts,
                                         contexts.data().size()));
        vectors.data() = std::move(saved_vectors);
        contexts.data() = std::move(saved_contexts);
        return util::Status::OK();
      });
  options.start_epoch = checkpointer.Resume(rng);
  options.checkpointer = &checkpointer;

  train::SgdDriver driver(options);

  std::vector<std::vector<double>> grad_scratch(
      driver.num_workers(), std::vector<double>(dims, 0.0));

  driver.Run(rng, [&](auto access, const train::SgdStep& ctx) -> double {
    using A = decltype(access);
    std::vector<double>& grad = grad_scratch[ctx.worker];
    util::Rng& r = ctx.rng;
    const double lr = ctx.lr;

    const TokenRef token = tokens[ctx.step % tokens_per_epoch];
    const auto& walk = corpus.walks[token.walk];
    const size_t position = token.position;

    const NodeId center = walk[position];
    auto center_row = vectors.Row(center);
    // Dynamic window as in word2vec: radius drawn per center.
    const size_t radius = 1 + r.NextIndex(config.window);
    const size_t begin = position >= radius ? position - radius : 0;
    const size_t end = std::min(walk.size(), position + radius + 1);
    for (size_t context_pos = begin; context_pos < end; ++context_pos) {
      if (context_pos == position) continue;
      const NodeId context = walk[context_pos];
      std::fill(grad.begin(), grad.end(), 0.0);

      // Fused kernel: g = −lr·(σ(score) − y), context += g·center, with
      // the center gradient accumulated into `grad` in the same pass.
      kernels::NegSamplingUpdate<A>(grad, center_row, contexts.Row(context),
                                    /*label=*/1.0, /*grad_scale=*/-lr,
                                    /*update_scale=*/1.0);
      for (size_t neg = 0; neg < config.negative_samples; ++neg) {
        const NodeId noise_node = static_cast<NodeId>(noise.Sample(r));
        if (noise_node == context) continue;
        kernels::NegSamplingUpdate<A>(grad, center_row,
                                      contexts.Row(noise_node),
                                      /*label=*/0.0, /*grad_scale=*/-lr,
                                      /*update_scale=*/1.0);
      }
      kernels::ApplyGrad<A>(center_row, grad);
    }
    return 0.0;
  });
  return vectors;
}

}  // namespace deepdirect::embedding
