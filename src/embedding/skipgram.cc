#include "embedding/skipgram.h"

#include <cmath>

#include "util/alias_table.h"

namespace deepdirect::embedding {

using graph::NodeId;

ml::Matrix TrainSkipGram(const WalkCorpus& corpus, size_t num_nodes,
                         const SkipGramConfig& config) {
  DD_CHECK_GT(num_nodes, 0u);
  DD_CHECK_GT(config.dimensions, 0u);
  util::Rng rng(config.seed);

  const size_t dims = config.dimensions;
  ml::Matrix vectors(num_nodes, dims);
  ml::Matrix contexts(num_nodes, dims);
  const float init = 0.5f / static_cast<float>(dims);
  vectors.FillUniform(rng, -init, init);
  // Context matrix starts at zero (word2vec convention).

  // Unigram^{3/4} noise distribution from corpus frequencies.
  std::vector<double> frequency(num_nodes, 0.0);
  for (const auto& walk : corpus.walks) {
    for (NodeId node : walk) frequency[node] += 1.0;
  }
  for (double& f : frequency) f = std::pow(f + 1.0, 0.75);
  const util::AliasTable noise(frequency);

  const uint64_t total_tokens =
      static_cast<uint64_t>(config.epochs) * corpus.TotalTokens();
  uint64_t processed = 0;
  std::vector<double> grad(dims);

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (const auto& walk : corpus.walks) {
      for (size_t position = 0; position < walk.size(); ++position) {
        const double progress = static_cast<double>(processed) /
                                static_cast<double>(total_tokens);
        const double lr =
            config.initial_learning_rate *
            std::max(config.min_lr_fraction, 1.0 - progress);
        ++processed;

        const NodeId center = walk[position];
        auto center_row = vectors.Row(center);
        // Dynamic window as in word2vec: radius drawn per center.
        const size_t radius = 1 + rng.NextIndex(config.window);
        const size_t begin = position >= radius ? position - radius : 0;
        const size_t end = std::min(walk.size(), position + radius + 1);
        for (size_t context_pos = begin; context_pos < end; ++context_pos) {
          if (context_pos == position) continue;
          const NodeId context = walk[context_pos];
          std::fill(grad.begin(), grad.end(), 0.0);

          {
            auto context_row = contexts.Row(context);
            const double score = ml::Dot(center_row, context_row);
            const double g = (1.0 - ml::Sigmoid(score)) * lr;
            for (size_t k = 0; k < dims; ++k) {
              grad[k] += g * static_cast<double>(context_row[k]);
              context_row[k] +=
                  static_cast<float>(g * static_cast<double>(center_row[k]));
            }
          }
          for (size_t neg = 0; neg < config.negative_samples; ++neg) {
            const NodeId noise_node = static_cast<NodeId>(noise.Sample(rng));
            if (noise_node == context) continue;
            auto noise_row = contexts.Row(noise_node);
            const double score = ml::Dot(center_row, noise_row);
            const double g = -ml::Sigmoid(score) * lr;
            for (size_t k = 0; k < dims; ++k) {
              grad[k] += g * static_cast<double>(noise_row[k]);
              noise_row[k] +=
                  static_cast<float>(g * static_cast<double>(center_row[k]));
            }
          }
          for (size_t k = 0; k < dims; ++k) {
            center_row[k] += static_cast<float>(grad[k]);
          }
        }
      }
    }
  }
  return vectors;
}

}  // namespace deepdirect::embedding
