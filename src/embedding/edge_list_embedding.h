// Generic LINE-style (second-order) embedding over an arbitrary directed
// edge list. This powers the line-graph route discussed and rejected in
// Sec. 4: running a node embedding over the *line digraph*, whose nodes
// are the original network's arcs, yields tie embeddings indirectly.

#ifndef DEEPDIRECT_EMBEDDING_EDGE_LIST_EMBEDDING_H_
#define DEEPDIRECT_EMBEDDING_EDGE_LIST_EMBEDDING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "ml/matrix.h"
#include "train/lr_schedule.h"
#include "util/random.h"

namespace deepdirect::embedding {

/// Training parameters (mirrors LineConfig's second-order half).
struct EdgeListEmbeddingConfig {
  size_t dimensions = 64;
  size_t negative_samples = 5;
  /// SGD steps = samples_per_edge × edges.size().
  size_t samples_per_edge = 20;
  double initial_learning_rate = 0.025;
  double min_lr_fraction = 1e-2;
  uint64_t seed = 57;

  /// The decay schedule these parameters describe.
  train::LrSchedule Schedule() const {
    return {initial_learning_rate, min_lr_fraction,
            train::LrSchedule::Decay::kClampedLinear};
  }
};

/// Trains vertex vectors over the directed edges (src, dst) with skip-gram
/// negative sampling (noise ∝ (in-degree + 1)^{3/4}). Returns a
/// num_nodes × dimensions matrix.
ml::Matrix TrainEdgeListEmbedding(
    size_t num_nodes, const std::vector<std::pair<uint32_t, uint32_t>>& edges,
    const EdgeListEmbeddingConfig& config);

}  // namespace deepdirect::embedding

#endif  // DEEPDIRECT_EMBEDDING_EDGE_LIST_EMBEDDING_H_
