#include "embedding/grarep.h"

#include <cmath>

namespace deepdirect::embedding {

using graph::MixedSocialNetwork;
using graph::NodeId;

GraRepEmbedding GraRepEmbedding::Train(const MixedSocialNetwork& g,
                                       const GraRepConfig& config) {
  const size_t n = g.num_nodes();
  DD_CHECK_GT(n, 0u);
  DD_CHECK_GT(config.max_step, 0u);
  util::Rng rng(config.seed);

  // Row-normalized transition matrix S over the undirected view (dangling
  // nodes keep an all-zero row).
  ml::DMatrix transition(n, n);
  for (NodeId u = 0; u < n; ++u) {
    const auto neighbors = g.UndirectedNeighbors(u);
    if (neighbors.empty()) continue;
    const double p = 1.0 / static_cast<double>(neighbors.size());
    for (NodeId v : neighbors) transition.At(u, v) = p;
  }

  ml::Matrix vectors(n, config.max_step * config.dims_per_step);
  ml::DMatrix power = transition;  // S^k for the current k
  for (size_t step = 0; step < config.max_step; ++step) {
    if (step > 0) power = ml::MatMul(power, transition);

    // Positive log matrix: X_ij = max(0, log(S^k_ij / q_j) − log λ) with
    // q_j the mean of column j and λ = 1 (standard GraRep shift).
    ml::DMatrix x(n, n);
    std::vector<double> column_mean(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) column_mean[j] += power.At(i, j);
    }
    for (double& q : column_mean) q /= static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        const double p = power.At(i, j);
        if (p <= 0.0 || column_mean[j] <= 0.0) continue;
        const double value = std::log(p / column_mean[j]);
        if (value > 0.0) x.At(i, j) = value;
      }
    }

    const ml::DMatrix factor = ml::TruncatedSvdFactor(
        x, config.dims_per_step, config.oversample,
        config.power_iterations, rng);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < config.dims_per_step; ++j) {
        vectors.At(i, step * config.dims_per_step + j) =
            static_cast<float>(factor.At(i, j));
      }
    }
  }
  return GraRepEmbedding(std::move(vectors));
}

void GraRepEmbedding::NodeVectorAsDouble(NodeId u,
                                         std::span<double> out) const {
  const auto row = vectors_.Row(u);
  DD_CHECK_EQ(out.size(), row.size());
  for (size_t k = 0; k < row.size(); ++k) out[k] = row[k];
}

}  // namespace deepdirect::embedding
