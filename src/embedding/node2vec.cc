#include "embedding/node2vec.h"

namespace deepdirect::embedding {

Node2vecEmbedding Node2vecEmbedding::Train(const graph::MixedSocialNetwork& g,
                                           const Node2vecConfig& config) {
  const WalkCorpus corpus = GenerateWalks(g, config.walks);
  ml::Matrix vectors = TrainSkipGram(corpus, g.num_nodes(), config.skipgram);
  return Node2vecEmbedding(std::move(vectors));
}

void Node2vecEmbedding::NodeVectorAsDouble(graph::NodeId u,
                                           std::span<double> out) const {
  const auto row = vectors_.Row(u);
  DD_CHECK_EQ(out.size(), row.size());
  for (size_t k = 0; k < row.size(); ++k) out[k] = row[k];
}

}  // namespace deepdirect::embedding
