#include "embedding/sae.h"

namespace deepdirect::embedding {

using graph::MixedSocialNetwork;
using graph::NodeId;

SaeEmbedding SaeEmbedding::Train(const MixedSocialNetwork& g,
                                 const SaeConfig& config) {
  const size_t n = g.num_nodes();
  DD_CHECK_GT(n, 0u);

  // Binary undirected adjacency rows.
  std::vector<std::vector<double>> rows(n, std::vector<double>(n, 0.0));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.UndirectedNeighbors(u)) rows[u][v] = 1.0;
  }

  ml::Autoencoder autoencoder(n, config.autoencoder);
  const double error = autoencoder.Train(rows, config.autoencoder);

  ml::Matrix vectors(n, autoencoder.code_dims());
  std::vector<double> code(autoencoder.code_dims());
  for (NodeId u = 0; u < n; ++u) {
    autoencoder.Encode(rows[u], code);
    auto row = vectors.Row(u);
    for (size_t k = 0; k < code.size(); ++k) {
      row[k] = static_cast<float>(code[k]);
    }
  }
  return SaeEmbedding(std::move(vectors), error);
}

void SaeEmbedding::NodeVectorAsDouble(NodeId u, std::span<double> out) const {
  const auto row = vectors_.Row(u);
  DD_CHECK_EQ(out.size(), row.size());
  for (size_t k = 0; k < row.size(); ++k) out[k] = row[k];
}

}  // namespace deepdirect::embedding
