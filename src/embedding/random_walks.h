// Random-walk corpus generation over the undirected view of a mixed social
// network: uniform walks (DeepWalk, Perozzi et al. 2014) and p/q-biased
// second-order walks (node2vec, Grover & Leskovec 2016).
//
// These power the additional node-embedding baselines beyond LINE (the
// paper cites both methods in Sec. 7 as the random-walk branch of
// skip-gram-style graph embedding).

#ifndef DEEPDIRECT_EMBEDDING_RANDOM_WALKS_H_
#define DEEPDIRECT_EMBEDDING_RANDOM_WALKS_H_

#include <vector>

#include "graph/mixed_graph.h"
#include "util/random.h"

namespace deepdirect::embedding {

/// Walk generation parameters. return_param = inout_param = 1 degenerates
/// to DeepWalk's uniform walks.
struct WalkConfig {
  size_t walks_per_node = 10;
  size_t walk_length = 40;
  /// node2vec p: likelihood control of immediately revisiting the previous
  /// node (weight 1/p).
  double return_param = 1.0;
  /// node2vec q: in-out control; distance-2 candidates get weight 1/q.
  double inout_param = 1.0;
  uint64_t seed = 51;
};

/// A corpus of node walks.
struct WalkCorpus {
  std::vector<std::vector<graph::NodeId>> walks;

  /// Total number of node occurrences across all walks.
  size_t TotalTokens() const {
    size_t total = 0;
    for (const auto& walk : walks) total += walk.size();
    return total;
  }
};

/// Generates `walks_per_node` walks from every non-isolated node. Walks
/// shorter than walk_length occur only at dead ends (never on the
/// undirected view of a connected network).
WalkCorpus GenerateWalks(const graph::MixedSocialNetwork& g,
                         const WalkConfig& config);

}  // namespace deepdirect::embedding

#endif  // DEEPDIRECT_EMBEDDING_RANDOM_WALKS_H_
