#include "embedding/edge_list_embedding.h"

#include <cmath>

#include "kernels/kernels.h"
#include "train/hogwild.h"
#include "util/alias_table.h"

namespace deepdirect::embedding {

ml::Matrix TrainEdgeListEmbedding(
    size_t num_nodes, const std::vector<std::pair<uint32_t, uint32_t>>& edges,
    const EdgeListEmbeddingConfig& config) {
  DD_CHECK_GT(num_nodes, 0u);
  util::Rng rng(config.seed);
  const size_t dims = config.dimensions;
  ml::Matrix vectors(num_nodes, dims);
  ml::Matrix contexts(num_nodes, dims);
  const float init = 0.5f / static_cast<float>(dims);
  vectors.FillUniform(rng, -init, init);

  if (edges.empty()) return vectors;

  std::vector<double> in_degree(num_nodes, 0.0);
  for (const auto& [src, dst] : edges) {
    DD_CHECK_LT(src, num_nodes);
    DD_CHECK_LT(dst, num_nodes);
    in_degree[dst] += 1.0;
  }
  for (double& d : in_degree) d = std::pow(d + 1.0, 0.75);
  const util::AliasTable noise(in_degree);

  const uint64_t total_steps =
      static_cast<uint64_t>(config.samples_per_edge) * edges.size();
  // Serial trainer: plain access policy, same fused kernel as skip-gram.
  using A = train::SerialAccess;
  std::vector<double> grad(dims);
  for (uint64_t step = 0; step < total_steps; ++step) {
    const double lr = config.Schedule().At(step, total_steps);
    const auto& [src, dst] = edges[rng.NextIndex(edges.size())];
    auto src_row = vectors.Row(src);
    std::fill(grad.begin(), grad.end(), 0.0);
    kernels::NegSamplingUpdate<A>(grad, src_row, contexts.Row(dst),
                                  /*label=*/1.0, /*grad_scale=*/-lr,
                                  /*update_scale=*/1.0);
    for (size_t neg = 0; neg < config.negative_samples; ++neg) {
      const uint32_t noise_node = static_cast<uint32_t>(noise.Sample(rng));
      if (noise_node == dst) continue;
      kernels::NegSamplingUpdate<A>(grad, src_row, contexts.Row(noise_node),
                                    /*label=*/0.0, /*grad_scale=*/-lr,
                                    /*update_scale=*/1.0);
    }
    kernels::ApplyGrad<A>(src_row, grad);
  }
  return vectors;
}

}  // namespace deepdirect::embedding
