// SAE: autoencoder-based node embedding (Tian et al., AAAI 2014 — the
// paper's reference [13], the first category of deep graph embedding in
// Sec. 7). Each node's undirected adjacency row is compressed by a dense
// autoencoder with SDNE-style non-zero over-weighting; the code layer is
// the node vector.

#ifndef DEEPDIRECT_EMBEDDING_SAE_H_
#define DEEPDIRECT_EMBEDDING_SAE_H_

#include <span>

#include "graph/mixed_graph.h"
#include "ml/autoencoder.h"
#include "ml/matrix.h"

namespace deepdirect::embedding {

/// SAE training parameters.
struct SaeConfig {
  ml::AutoencoderConfig autoencoder;

  SaeConfig() {
    // Default stack: input → 128 → 32.
    autoencoder.encoder_dims = {128, 32};
    autoencoder.epochs = 5;
  }
};

/// Trained SAE node embeddings.
class SaeEmbedding {
 public:
  /// Builds adjacency rows for `g` and trains the autoencoder.
  static SaeEmbedding Train(const graph::MixedSocialNetwork& g,
                            const SaeConfig& config);

  size_t dimensions() const { return vectors_.cols(); }

  std::span<const float> NodeVector(graph::NodeId u) const {
    return vectors_.Row(u);
  }

  /// Copies node u's vector into `out` as doubles.
  void NodeVectorAsDouble(graph::NodeId u, std::span<double> out) const;

  /// Final training reconstruction error (for tests / diagnostics).
  double reconstruction_error() const { return reconstruction_error_; }

 private:
  SaeEmbedding(ml::Matrix vectors, double error)
      : vectors_(std::move(vectors)), reconstruction_error_(error) {}

  ml::Matrix vectors_;
  double reconstruction_error_;
};

}  // namespace deepdirect::embedding

#endif  // DEEPDIRECT_EMBEDDING_SAE_H_
