// LINE: Large-scale Information Network Embedding (Tang et al., WWW 2015).
//
// The node-embedding baseline of the paper's experiments (Sec. 6.1). Learns
// per-node vectors preserving first-order proximity (directly connected
// nodes embed close) and second-order proximity (nodes with similar
// neighborhoods embed close, via separate context vectors), each trained by
// skip-gram-style negative sampling over arc draws. The final node vector
// concatenates the two halves, as the LINE paper prescribes.
//
// For the TDL task a tie (u, v) is represented by concatenating the vectors
// of u and v (Sec. 6.1: "the two vectors corresponding to the source node
// and the target node are concatenated as its feature vector").

#ifndef DEEPDIRECT_EMBEDDING_LINE_H_
#define DEEPDIRECT_EMBEDDING_LINE_H_

#include <span>
#include <string>

#include "graph/mixed_graph.h"
#include "ml/matrix.h"
#include "train/checkpoint.h"
#include "train/lr_schedule.h"
#include "util/random.h"

namespace deepdirect::embedding {

/// LINE training hyper-parameters.
struct LineConfig {
  /// Total node-vector dimensionality; split evenly between the first-order
  /// and second-order halves. Must be even.
  size_t dimensions = 64;
  /// Negative samples per positive arc draw.
  size_t negative_samples = 5;
  /// SGD steps per arc (per proximity order): total steps =
  /// samples_per_arc × num_arcs.
  size_t samples_per_arc = 40;
  double initial_learning_rate = 0.025;
  /// Learning rate decays linearly to this fraction of the initial rate.
  double min_lr_fraction = 1e-2;
  uint64_t seed = 7;
  /// SGD workers (0 = all hardware threads). 1 runs the deterministic
  /// serial path; > 1 runs Hogwild-style lock-free updates, which are fast
  /// but not bit-reproducible.
  size_t num_threads = 1;
  /// Telemetry prefix for the obs registry; empty disables recording.
  std::string metrics_prefix = "train.line";
  /// Crash-safe checkpoint/resume (off unless `checkpoint.dir` is set).
  /// One epoch is num_arcs steps; the default trainer tag is "line".
  train::CheckpointOptions checkpoint;

  /// The decay schedule these parameters describe.
  train::LrSchedule Schedule() const {
    return {initial_learning_rate, min_lr_fraction,
            train::LrSchedule::Decay::kClampedLinear};
  }
};

/// Trained LINE node embeddings.
class LineEmbedding {
 public:
  /// Trains LINE on the network's arcs (unit weights).
  static LineEmbedding Train(const graph::MixedSocialNetwork& g,
                             const LineConfig& config);

  /// Total dimensionality of a node vector.
  size_t dimensions() const { return first_.cols() + second_.cols(); }

  /// First-order half of node u's vector.
  std::span<const float> FirstOrder(graph::NodeId u) const {
    return first_.Row(u);
  }

  /// Second-order half of node u's vector.
  std::span<const float> SecondOrder(graph::NodeId u) const {
    return second_.Row(u);
  }

  /// Copies the concatenated node vector into `out` (size dimensions()).
  void NodeVector(graph::NodeId u, std::span<double> out) const;

 private:
  LineEmbedding(ml::Matrix first, ml::Matrix second)
      : first_(std::move(first)), second_(std::move(second)) {}

  ml::Matrix first_;
  ml::Matrix second_;
};

}  // namespace deepdirect::embedding

#endif  // DEEPDIRECT_EMBEDDING_LINE_H_
