#include "embedding/edge_features.h"

#include <cmath>

#include "util/check.h"

namespace deepdirect::embedding {

const char* EdgeOperatorToString(EdgeOperator op) {
  switch (op) {
    case EdgeOperator::kConcatenate:
      return "concatenate";
    case EdgeOperator::kAverage:
      return "average";
    case EdgeOperator::kHadamard:
      return "hadamard";
    case EdgeOperator::kL1:
      return "l1";
    case EdgeOperator::kL2:
      return "l2";
  }
  return "unknown";
}

size_t EdgeFeatureDims(EdgeOperator op, size_t node_dims) {
  return op == EdgeOperator::kConcatenate ? 2 * node_dims : node_dims;
}

void ComposeEdgeFeatures(EdgeOperator op, std::span<const double> src,
                         std::span<const double> dst, std::span<double> out) {
  DD_CHECK_EQ(src.size(), dst.size());
  DD_CHECK_EQ(out.size(), EdgeFeatureDims(op, src.size()));
  const size_t d = src.size();
  switch (op) {
    case EdgeOperator::kConcatenate:
      for (size_t k = 0; k < d; ++k) out[k] = src[k];
      for (size_t k = 0; k < d; ++k) out[d + k] = dst[k];
      break;
    case EdgeOperator::kAverage:
      for (size_t k = 0; k < d; ++k) out[k] = 0.5 * (src[k] + dst[k]);
      break;
    case EdgeOperator::kHadamard:
      for (size_t k = 0; k < d; ++k) out[k] = src[k] * dst[k];
      break;
    case EdgeOperator::kL1:
      for (size_t k = 0; k < d; ++k) out[k] = std::abs(src[k] - dst[k]);
      break;
    case EdgeOperator::kL2:
      for (size_t k = 0; k < d; ++k) {
        const double delta = src[k] - dst[k];
        out[k] = delta * delta;
      }
      break;
  }
}

}  // namespace deepdirect::embedding
