// node2vec / DeepWalk node embeddings: random-walk corpus + skip-gram.
// DeepWalk is the p = q = 1 special case.

#ifndef DEEPDIRECT_EMBEDDING_NODE2VEC_H_
#define DEEPDIRECT_EMBEDDING_NODE2VEC_H_

#include <span>

#include "embedding/random_walks.h"
#include "embedding/skipgram.h"
#include "graph/mixed_graph.h"
#include "ml/matrix.h"

namespace deepdirect::embedding {

/// Combined walk + skip-gram configuration.
struct Node2vecConfig {
  WalkConfig walks;
  SkipGramConfig skipgram;

  /// DeepWalk preset: uniform walks.
  static Node2vecConfig DeepWalk() {
    Node2vecConfig config;
    config.walks.return_param = 1.0;
    config.walks.inout_param = 1.0;
    return config;
  }
};

/// Trained node2vec embeddings.
class Node2vecEmbedding {
 public:
  /// Generates walks over `g` and trains skip-gram vectors.
  static Node2vecEmbedding Train(const graph::MixedSocialNetwork& g,
                                 const Node2vecConfig& config);

  size_t dimensions() const { return vectors_.cols(); }

  std::span<const float> NodeVector(graph::NodeId u) const {
    return vectors_.Row(u);
  }

  /// Copies node u's vector into `out` as doubles.
  void NodeVectorAsDouble(graph::NodeId u, std::span<double> out) const;

 private:
  explicit Node2vecEmbedding(ml::Matrix vectors)
      : vectors_(std::move(vectors)) {}

  ml::Matrix vectors_;
};

}  // namespace deepdirect::embedding

#endif  // DEEPDIRECT_EMBEDDING_NODE2VEC_H_
