// Skip-gram with negative sampling over a random-walk corpus (the word2vec
// core of DeepWalk and node2vec): co-occurring nodes within a window embed
// close; negatives drawn ∝ frequency^{3/4}.

#ifndef DEEPDIRECT_EMBEDDING_SKIPGRAM_H_
#define DEEPDIRECT_EMBEDDING_SKIPGRAM_H_

#include <string>

#include "embedding/random_walks.h"
#include "ml/matrix.h"
#include "train/checkpoint.h"
#include "train/lr_schedule.h"

namespace deepdirect::embedding {

/// Skip-gram training parameters.
struct SkipGramConfig {
  size_t dimensions = 64;
  size_t window = 5;
  size_t negative_samples = 5;
  /// Passes over the corpus.
  size_t epochs = 2;
  double initial_learning_rate = 0.025;
  double min_lr_fraction = 1e-2;
  uint64_t seed = 53;
  /// SGD workers (0 = all hardware threads). 1 runs the deterministic
  /// serial path; > 1 runs Hogwild-style lock-free updates, which are fast
  /// but not bit-reproducible.
  size_t num_threads = 1;
  /// Telemetry prefix for the obs registry; empty disables recording.
  std::string metrics_prefix = "train.skipgram";
  /// Crash-safe checkpoint/resume (off unless `checkpoint.dir` is set).
  /// The default trainer tag is "skipgram".
  train::CheckpointOptions checkpoint;

  /// The decay schedule these parameters describe.
  train::LrSchedule Schedule() const {
    return {initial_learning_rate, min_lr_fraction,
            train::LrSchedule::Decay::kClampedLinear};
  }
};

/// Trains node vectors from the corpus. Returns a num_nodes × dimensions
/// matrix (rows of isolated / never-visited nodes keep their random init).
ml::Matrix TrainSkipGram(const WalkCorpus& corpus, size_t num_nodes,
                         const SkipGramConfig& config);

}  // namespace deepdirect::embedding

#endif  // DEEPDIRECT_EMBEDDING_SKIPGRAM_H_
