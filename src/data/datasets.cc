#include "data/datasets.h"

#include <cmath>

#include "util/check.h"

namespace deepdirect::data {

std::vector<DatasetId> AllDatasets() {
  return {DatasetId::kTwitter, DatasetId::kLiveJournal, DatasetId::kEpinions,
          DatasetId::kSlashdot, DatasetId::kTencent};
}

const char* DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kTwitter:
      return "Twitter";
    case DatasetId::kLiveJournal:
      return "LiveJournal";
    case DatasetId::kEpinions:
      return "Epinions";
    case DatasetId::kSlashdot:
      return "Slashdot";
    case DatasetId::kTencent:
      return "Tencent";
  }
  return "Unknown";
}

GeneratorConfig DatasetConfig(DatasetId id, double scale) {
  DD_CHECK_GT(scale, 0.0);
  GeneratorConfig config;
  switch (id) {
    case DatasetId::kTwitter:
      // Paper: 65,044 nodes / 526,296 ties (~8.1 ties per node), mostly
      // directed follows.
      config.num_nodes = 1200;
      config.ties_per_node = 8.1;
      config.bidirectional_fraction = 0.20;
      config.triangle_closure_prob = 0.15;
      config.direction_noise = 0.12;
      config.status_noise = 0.28;
      config.num_communities = 24;
      config.cross_community_fraction = 0.15;
      config.seed = 1001;
      break;
    case DatasetId::kLiveJournal:
      // Paper: 80,000 nodes / 1,894,724 ties (~23.7 per node), majority
      // bidirectional friendships.
      config.num_nodes = 1000;
      config.ties_per_node = 11.0;
      config.bidirectional_fraction = 0.55;
      config.triangle_closure_prob = 0.25;
      config.direction_noise = 0.12;
      config.status_noise = 0.28;
      config.num_communities = 12;
      config.cross_community_fraction = 0.15;
      config.seed = 1002;
      break;
    case DatasetId::kEpinions:
      // Paper: 75,879 nodes / 508,837 ties (~6.7 per node), majority
      // bidirectional trust relations, noisier directionality.
      config.num_nodes = 1300;
      config.ties_per_node = 6.7;
      config.bidirectional_fraction = 0.55;
      config.triangle_closure_prob = 0.15;
      config.direction_noise = 0.14;
      config.status_noise = 0.28;
      config.num_communities = 26;
      config.cross_community_fraction = 0.15;
      config.seed = 1003;
      break;
    case DatasetId::kSlashdot:
      // Paper: 77,360 nodes / 905,468 ties (~11.7 per node), majority
      // bidirectional.
      config.num_nodes = 1200;
      config.ties_per_node = 9.0;
      config.bidirectional_fraction = 0.55;
      config.triangle_closure_prob = 0.15;
      config.direction_noise = 0.12;
      config.status_noise = 0.28;
      config.num_communities = 20;
      config.cross_community_fraction = 0.15;
      config.seed = 1004;
      break;
    case DatasetId::kTencent:
      // Paper: 75,000 nodes / 705,864 ties (~9.4 per node); the hardest
      // dataset in the paper's plots, so highest direction noise.
      config.num_nodes = 1300;
      config.ties_per_node = 9.4;
      config.bidirectional_fraction = 0.30;
      config.triangle_closure_prob = 0.20;
      config.direction_noise = 0.16;
      config.status_noise = 0.28;
      config.num_communities = 26;
      config.cross_community_fraction = 0.15;
      config.seed = 1005;
      break;
  }
  config.num_nodes = static_cast<size_t>(
      std::llround(static_cast<double>(config.num_nodes) * scale));
  DD_CHECK_GE(config.num_nodes, 3u);
  return config;
}

graph::MixedSocialNetwork MakeDataset(DatasetId id, double scale) {
  return GenerateStatusNetwork(DatasetConfig(id, scale));
}

}  // namespace deepdirect::data
