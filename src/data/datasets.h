// Named dataset configurations mirroring the five networks of Table 2.
//
// Each configuration reproduces the salient statistics of its namesake at a
// laptop-runnable scale (~1/40 of the paper's node counts by default): the
// ties-per-node ratio from Table 2, the bidirectional-tie share reported in
// Sec. 6.3 ("over 50% social ties in [LiveJournal, Epinions, Slashdot] are
// bidirectional"), and qualitative clustering/noise levels. A `scale`
// multiplier grows or shrinks node counts (used by the Fig. 9 scalability
// sweep).

#ifndef DEEPDIRECT_DATA_DATASETS_H_
#define DEEPDIRECT_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "data/generators.h"
#include "graph/mixed_graph.h"

namespace deepdirect::data {

/// Identifiers of the five paper datasets.
enum class DatasetId {
  kTwitter = 0,
  kLiveJournal = 1,
  kEpinions = 2,
  kSlashdot = 3,
  kTencent = 4,
};

/// All five datasets in Table 2 order.
std::vector<DatasetId> AllDatasets();

/// Human-readable dataset name ("Twitter", ...).
const char* DatasetName(DatasetId id);

/// Generator configuration for a dataset; `scale` multiplies the node count.
GeneratorConfig DatasetConfig(DatasetId id, double scale = 1.0);

/// Generates the synthetic stand-in network for a dataset.
graph::MixedSocialNetwork MakeDataset(DatasetId id, double scale = 1.0);

}  // namespace deepdirect::data

#endif  // DEEPDIRECT_DATA_DATASETS_H_
