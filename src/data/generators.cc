#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <unordered_set>

namespace deepdirect::data {

using graph::GraphBuilder;
using graph::MixedSocialNetwork;
using graph::NodeId;
using graph::TieType;

namespace {

// Packs an unordered node pair for occupancy checks.
uint64_t PairKey(NodeId u, NodeId v) {
  const NodeId lo = std::min(u, v);
  const NodeId hi = std::max(u, v);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

// Deterministic statuses: early arrivals rank higher, with Gaussian jitter.
std::vector<double> ComputeStatuses(size_t num_nodes, double status_noise,
                                    util::Rng& rng) {
  std::vector<double> status(num_nodes);
  for (size_t u = 0; u < num_nodes; ++u) {
    const double base =
        static_cast<double>(num_nodes - u) / static_cast<double>(num_nodes);
    status[u] = base + status_noise * rng.NextGaussian();
  }
  return status;
}

// Runs the status-model process, emitting each tie exactly once through
// `sink(src, dst, type)`. Templating over the sink is what makes the
// builder path and the streaming-to-disk path byte-identical processes:
// the sink does no RNG draws, so both consume the same stream and emit the
// same ties in the same order.
template <typename Sink>
void GenerateStatusNetworkImpl(const GeneratorConfig& config, Sink&& sink) {
  DD_CHECK_GE(config.num_nodes, 3u);
  DD_CHECK_GE(config.ties_per_node, 1.0);
  DD_CHECK_GE(config.bidirectional_fraction, 0.0);
  DD_CHECK_LE(config.bidirectional_fraction, 1.0);
  DD_CHECK_GE(config.triangle_closure_prob, 0.0);
  DD_CHECK_LE(config.triangle_closure_prob, 1.0);
  DD_CHECK_GE(config.direction_noise, 0.0);
  DD_CHECK_LE(config.direction_noise, 1.0);

  util::Rng rng(config.seed);
  // Statuses must be drawn first so GeneratorStatuses() reproduces them.
  const std::vector<double> status =
      ComputeStatuses(config.num_nodes, config.status_noise, rng);

  // Community assignment is round-robin, so within-community arrival order
  // matches global arrival order and statuses stay globally consistent.
  const size_t base_m = static_cast<size_t>(config.ties_per_node);
  const size_t max_communities =
      std::max<size_t>(1, config.num_nodes / (base_m + 2));
  const size_t num_communities =
      std::max<size_t>(1, std::min(config.num_communities, max_communities));
  auto community_of = [num_communities](NodeId u) {
    return static_cast<size_t>(u) % num_communities;
  };

  std::unordered_set<uint64_t> pair_used;
  // Endpoint multisets: every tie pushes both endpoints, so uniform draws
  // realize degree-proportional (preferential) attachment — globally and
  // per community.
  std::vector<NodeId> endpoint_pool;
  std::vector<std::vector<NodeId>> community_pool(num_communities);
  // Undirected adjacency maintained incrementally for triadic closure.
  std::vector<std::vector<NodeId>> neighbors(config.num_nodes);

  auto add_tie = [&](NodeId a, NodeId b) {
    // Tie type and direction per the status model.
    TieType type = rng.NextBool(config.bidirectional_fraction)
                       ? TieType::kBidirectional
                       : TieType::kDirected;
    NodeId src = a, dst = b;
    if (type == TieType::kDirected) {
      // Point from lower status to higher status, with noise.
      if (status[src] > status[dst]) std::swap(src, dst);
      if (rng.NextBool(config.direction_noise)) std::swap(src, dst);
    }
    sink(src, dst, type);
    pair_used.insert(PairKey(a, b));
    endpoint_pool.push_back(a);
    endpoint_pool.push_back(b);
    community_pool[community_of(a)].push_back(a);
    community_pool[community_of(b)].push_back(b);
    neighbors[a].push_back(b);
    neighbors[b].push_back(a);
  };

  // Seed cliques: one clique of m+1 nodes per community (round-robin ids,
  // so community c's seed members are c, c+K, c+2K, ...).
  const size_t m0 = std::min(config.num_nodes,
                             (base_m + 1) * num_communities);
  for (NodeId a = 0; a < m0; ++a) {
    for (NodeId b = a + 1; b < m0; ++b) {
      if (community_of(a) == community_of(b)) add_tie(a, b);
    }
  }
  // Connect the seed cliques in a ring so the network is connected even
  // with zero cross-community attachments.
  if (num_communities > 1) {
    for (size_t c = 0; c < num_communities; ++c) {
      const NodeId a = static_cast<NodeId>(c);
      const NodeId b = static_cast<NodeId>((c + 1) % num_communities);
      if (!pair_used.contains(PairKey(a, b))) add_tie(a, b);
    }
  }

  // Growth phase.
  for (NodeId t = static_cast<NodeId>(m0); t < config.num_nodes; ++t) {
    const double frac = config.ties_per_node - static_cast<double>(base_m);
    size_t m = base_m + (rng.NextBool(frac) ? 1 : 0);
    m = std::min<size_t>(m, t);  // cannot exceed the number of candidates

    std::vector<NodeId> chosen;
    chosen.reserve(m);
    size_t attempts = 0;
    const size_t max_attempts = 50 * (m + 1);
    while (chosen.size() < m && attempts < max_attempts) {
      ++attempts;
      NodeId candidate;
      if (!chosen.empty() && rng.NextBool(config.triangle_closure_prob)) {
        // Triadic closure: a neighbor of an already-chosen target, with a
        // status-up bias (directed closure).
        const NodeId anchor = chosen[rng.NextIndex(chosen.size())];
        const auto& anchor_neighbors = neighbors[anchor];
        candidate = anchor_neighbors[rng.NextIndex(anchor_neighbors.size())];
        const bool status_up = status[candidate] > status[anchor];
        const double accept = status_up ? config.directed_closure_bias
                                        : 1.0 - config.directed_closure_bias;
        if (!rng.NextBool(accept)) continue;
      } else if (num_communities > 1 &&
                 !rng.NextBool(config.cross_community_fraction) &&
                 !community_pool[community_of(t)].empty()) {
        const auto& pool = community_pool[community_of(t)];
        candidate = pool[rng.NextIndex(pool.size())];
      } else {
        candidate = endpoint_pool[rng.NextIndex(endpoint_pool.size())];
      }
      if (candidate == t) continue;
      if (pair_used.contains(PairKey(t, candidate))) continue;
      if (std::find(chosen.begin(), chosen.end(), candidate) != chosen.end()) {
        continue;
      }
      if (config.status_homophily_bandwidth > 0.0) {
        const double gap = std::abs(status[t] - status[candidate]);
        if (!rng.NextBool(
                std::exp(-gap / config.status_homophily_bandwidth))) {
          continue;
        }
      }
      chosen.push_back(candidate);
      add_tie(t, candidate);
    }
    // Fallback for pathological rejection: connect to the first free node.
    if (chosen.empty()) {
      for (NodeId candidate = 0; candidate < t; ++candidate) {
        if (!pair_used.contains(PairKey(t, candidate))) {
          add_tie(t, candidate);
          break;
        }
      }
    }
  }
}

}  // namespace

std::vector<double> GeneratorStatuses(const GeneratorConfig& config) {
  util::Rng rng(config.seed);
  return ComputeStatuses(config.num_nodes, config.status_noise, rng);
}

MixedSocialNetwork GenerateStatusNetwork(const GeneratorConfig& config) {
  GraphBuilder builder(config.num_nodes);
  GenerateStatusNetworkImpl(
      config, [&builder](NodeId src, NodeId dst, TieType type) {
        DD_CHECK(builder.AddTie(src, dst, type).ok());
      });
  return std::move(builder).Build();
}

util::Status WriteStatusNetworkEdgeList(const GeneratorConfig& config,
                                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    return util::Status::IOError("cannot open for writing: " + path);
  }
  out << "# nodes " << config.num_nodes << "\n";
  GenerateStatusNetworkImpl(
      config, [&out](NodeId src, NodeId dst, TieType type) {
        // Match WriteEdgeList's convention: non-directed ties are emitted
        // once from the smaller endpoint, so a streamed file is
        // line-for-line identical to SaveEdgeList of the built network.
        if (type == TieType::kBidirectional && src > dst) std::swap(src, dst);
        const char type_char = type == TieType::kBidirectional ? 'b' : 'd';
        out << src << ' ' << dst << ' ' << type_char << '\n';
      });
  out.flush();
  if (!out.good()) return util::Status::IOError("write failed: " + path);
  return util::Status::OK();
}

MixedSocialNetwork GenerateErdosRenyi(size_t num_nodes, double tie_probability,
                                      double bidirectional_fraction,
                                      uint64_t seed) {
  DD_CHECK_GE(tie_probability, 0.0);
  DD_CHECK_LE(tie_probability, 1.0);
  util::Rng rng(seed);
  GraphBuilder builder(num_nodes);
  for (NodeId a = 0; a < num_nodes; ++a) {
    for (NodeId b = a + 1; b < num_nodes; ++b) {
      if (!rng.NextBool(tie_probability)) continue;
      if (rng.NextBool(bidirectional_fraction)) {
        DD_CHECK(builder.AddTie(a, b, TieType::kBidirectional).ok());
      } else if (rng.NextBool(0.5)) {
        DD_CHECK(builder.AddTie(a, b, TieType::kDirected).ok());
      } else {
        DD_CHECK(builder.AddTie(b, a, TieType::kDirected).ok());
      }
    }
  }
  return std::move(builder).Build();
}

}  // namespace deepdirect::data
