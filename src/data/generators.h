// Synthetic social network generation.
//
// The paper evaluates on five crawled networks we cannot redistribute, so
// this module simulates them (see DESIGN.md, Substitutions). The core
// generator is a *status-model* preferential-attachment process with
// triadic closure:
//
//  * Each node u has a latent status: high for early arrivals (which also
//    accumulate degree through preferential attachment) plus Gaussian
//    jitter.
//  * New nodes attach to `ties_per_node` targets chosen by preferential
//    attachment, or — with probability `triangle_closure_prob` — by closing
//    a triangle through an existing target's neighbor (yields realistic
//    clustering).
//  * A new tie is bidirectional with probability `bidirectional_fraction`;
//    otherwise directed from the lower-status endpoint to the higher-status
//    endpoint, flipped with probability `direction_noise`.
//
// Because direction follows a (noisy) global status order, the generated
// networks exhibit exactly the two directionality regularities the paper's
// methods exploit: the Degree Consistency Pattern (low degree proposes to
// high degree) and the Triad Status Consistency Pattern (few directed
// loops). `direction_noise` controls how strong the patterns are.

#ifndef DEEPDIRECT_DATA_GENERATORS_H_
#define DEEPDIRECT_DATA_GENERATORS_H_

#include <string>
#include <vector>

#include "graph/mixed_graph.h"
#include "util/random.h"
#include "util/status.h"

namespace deepdirect::data {

/// Parameters of the status-model generator.
struct GeneratorConfig {
  size_t num_nodes = 1000;
  /// Mean number of ties each arriving node creates (may be fractional;
  /// realized per node as floor + Bernoulli(frac)).
  double ties_per_node = 5.0;
  /// Fraction of new ties that are bidirectional (the rest are directed).
  double bidirectional_fraction = 0.3;
  /// Probability that a tie is formed by triadic closure rather than pure
  /// preferential attachment.
  double triangle_closure_prob = 0.3;
  /// Probability a directed tie's direction contradicts the status order.
  double direction_noise = 0.1;
  /// Standard deviation of the Gaussian jitter added to node status.
  double status_noise = 0.15;
  /// Number of communities. Nodes join communities round-robin; ties form
  /// within the community except for a `cross_community_fraction` of
  /// attachments. Communities make the status signal only *locally*
  /// readable from topology (each community occupies its own region of any
  /// unsupervised embedding), which is what gives supervised embedding
  /// shaping its edge — mirroring the community structure of the real
  /// networks the paper evaluates on.
  size_t num_communities = 8;
  /// Fraction of preferential attachments drawn from the global pool
  /// instead of the joining node's community.
  double cross_community_fraction = 0.1;
  /// Status homophily strength: attachment candidates are accepted with
  /// probability exp(−|Δstatus| / homophily_bandwidth); 0 disables the
  /// filter. Homophily makes fine-grained status readable from *who* a node
  /// connects to (not just how many), the signal embedding methods smooth
  /// over the graph; real social networks exhibit exactly this assortative
  /// mixing by status.
  double status_homophily_bandwidth = 0.0;
  /// Directed triadic closure: when closing a triangle through an anchor's
  /// neighbor, a status-*increasing* hop (status(candidate) > status(anchor))
  /// is accepted with this probability and a status-decreasing hop with its
  /// complement. 0.5 makes closure direction-blind. Directed closure (per
  /// status theory: endorsement paths run up the status order) is what
  /// gives tie *directionality* predictive value for future links — the
  /// premise of the paper's Sec. 5.2/6.3 quantification application.
  double directed_closure_bias = 0.75;
  uint64_t seed = 42;
};

/// Generates a mixed social network containing directed and bidirectional
/// ties (no undirected ties — those are produced experimentally by
/// graph::HideDirections, matching the paper's datasets).
graph::MixedSocialNetwork GenerateStatusNetwork(const GeneratorConfig& config);

/// Streams the status-model network of `config` straight to an edge-list
/// file (graph/graph_io.h format, with a `# nodes` header) without ever
/// materializing a MixedSocialNetwork: the tie stream goes to disk as it
/// is generated, so only the generator's own bookkeeping occupies RAM.
/// This is how the 10M+-tie inputs for out-of-core training are produced.
/// For the same config the emitted tie *set* is identical to SaveEdgeList
/// of GenerateStatusNetwork's result (same shared generation process, a
/// sink that draws no randomness, and the same smaller-endpoint-first
/// canonicalization of non-directed ties); only the line order differs —
/// generation order here versus CSR order there — so the sorted files are
/// byte-identical and loading either yields the same network.
util::Status WriteStatusNetworkEdgeList(const GeneratorConfig& config,
                                        const std::string& path);

/// Latent statuses used by the generator for a given config (recomputed
/// deterministically from the seed). Exposed for tests that check the
/// direction/status agreement rate.
std::vector<double> GeneratorStatuses(const GeneratorConfig& config);

/// G(n, p) Erdős–Rényi graph; each present tie is bidirectional with
/// probability `bidirectional_fraction`, else directed with a fair-coin
/// direction. Used by property tests as a patternless control.
graph::MixedSocialNetwork GenerateErdosRenyi(size_t num_nodes,
                                             double tie_probability,
                                             double bidirectional_fraction,
                                             uint64_t seed);

}  // namespace deepdirect::data

#endif  // DEEPDIRECT_DATA_GENERATORS_H_
