#include "serve/server.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace deepdirect::serve {

namespace {

/// Strict non-negative base-10 parse that fits a NodeId.
std::optional<graph::NodeId> ParseNodeId(const std::string& token) {
  if (token.empty() || token.size() > 10) return std::nullopt;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (value > 0xffffffffULL) return std::nullopt;
  return static_cast<graph::NodeId>(value);
}

void WriteValues(const std::vector<double>& values, std::ostream& out) {
  char buffer[32];
  for (size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out << ' ';
    if (std::isnan(values[i])) {
      out << "NA";
    } else {
      std::snprintf(buffer, sizeof(buffer), "%.6f", values[i]);
      out << buffer;
    }
  }
  out << '\n';
}

}  // namespace

ServeLoopStats RunServeLoop(const ServableModel& model, std::istream& in,
                            std::ostream& out) {
  using Clock = std::chrono::steady_clock;
  obs::Histogram* query_seconds =
      obs::Registry::Default().GetHistogram("serve.query.seconds");

  ServeLoopStats stats;
  std::string line;
  std::vector<TiePair> ties;
  std::vector<double> values;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    std::string token;
    ties.clear();
    graph::NodeId pending = 0;
    bool have_pending = false;
    bool malformed = false;
    size_t token_count = 0;
    while (tokens >> token) {
      ++token_count;
      if (token_count == 1 && (token == "quit" || token == "stats")) break;
      const auto id = ParseNodeId(token);
      if (!id.has_value()) {
        malformed = true;
        break;
      }
      if (have_pending) {
        ties.push_back({pending, *id});
        have_pending = false;
      } else {
        pending = *id;
        have_pending = true;
      }
    }
    if (token_count == 0) continue;  // blank line
    ++stats.lines;

    if (token_count == 1 && token == "quit") break;
    if (token_count == 1 && token == "stats") {
      const TieCacheStats cache = model.CacheStats();
      out << "stats hits=" << cache.hits << " misses=" << cache.misses
          << " evictions=" << cache.evictions
          << " capacity=" << cache.capacity << '\n';
      out.flush();
      continue;
    }
    if (malformed) {
      ++stats.errors;
      out << "ERR parse: token '" << token
          << "' is not a node id (expected pairs of node ids, 'stats', or "
             "'quit')\n";
      out.flush();
      continue;
    }
    if (have_pending) {
      ++stats.errors;
      out << "ERR parse: odd token count (queries are u v pairs)\n";
      out.flush();
      continue;
    }

    values.assign(ties.size(), 0.0);
    const Clock::time_point start = Clock::now();
    // kNan cannot fail for span-matched inputs; unknown pairs become NA.
    model.QueryBatch(ties, values, MissingPolicy::kNan);
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (obs::Enabled() && !ties.empty()) {
      // One observation per request line, of the mean per-query latency,
      // keeps histogram cost independent of batch size.
      query_seconds->Observe(elapsed / static_cast<double>(ties.size()));
    }
    stats.queries += ties.size();
    WriteValues(values, out);
    out.flush();
  }
  return stats;
}

}  // namespace deepdirect::serve
