// Read-only serving runtime over an exported DDS1 model file.
//
// ServableModel::Open memory-maps the file, validates every byte of it
// (header, section table, payload CRCs, zero padding), and then answers
// d(u, v) queries directly off the mapping: the CSR tie index, embedding
// matrix, and D-Step head are read in place, zero-copy. The object is
// immutable after Open — concurrent readers share one instance with no
// synchronization beyond the optional hot-tie cache's internal shard
// locks.
//
// Numerical contract: Query and QueryBatch return bit-identical doubles to
// the training-side DeepDirectModel::Directionality for every tie — the
// score accumulation replicates ml::LogisticRegression exactly (bias
// first, then weights in index order, then ml::Sigmoid). The golden parity
// suite in tests/serve_test.cc pins this with exact EXPECT_EQ.
//
// Unknown-tie contract: a pair (u, v) with no closure arc in the training
// network is a typed condition, never UB — Query returns kNotFound, and
// QueryBatch either fails the batch (MissingPolicy::kError) or writes NaN
// for that slot (MissingPolicy::kNan).

#ifndef DEEPDIRECT_SERVE_SERVABLE_MODEL_H_
#define DEEPDIRECT_SERVE_SERVABLE_MODEL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "graph/types.h"
#include "obs/metrics.h"
#include "serve/mmap_file.h"
#include "serve/tie_cache.h"
#include "util/status.h"

namespace deepdirect::serve {

/// One directed query: does u point the tie toward v?
struct TiePair {
  graph::NodeId u = 0;
  graph::NodeId v = 0;
};

/// How QueryBatch treats pairs with no closure arc in the training
/// network.
enum class MissingPolicy {
  kError,  ///< fail the whole batch with kNotFound
  kNan,    ///< write quiet NaN for that slot and keep going
};

/// Open-time knobs.
struct ServeOptions {
  /// Hot-tie cache slots (0 disables the cache).
  size_t cache_capacity = 0;
  /// Cache set associativity (slots a key may land in).
  size_t cache_ways = 8;
};

/// An immutable, mmap-backed directionality model.
class ServableModel {
 public:
  /// Maps and validates a DDS1 file. An unreadable path yields kIOError;
  /// any structural defect — bad magic/version, size mismatch, truncation,
  /// CRC failure, out-of-order or misaligned sections, nonzero padding,
  /// inconsistent CSR arrays — yields kInvalidArgument naming the defect.
  static util::Result<ServableModel> Open(const std::string& path,
                                          const ServeOptions& options = {});

  ServableModel(ServableModel&&) = default;
  ServableModel& operator=(ServableModel&&) = default;
  ServableModel(const ServableModel&) = delete;
  ServableModel& operator=(const ServableModel&) = delete;

  /// d(u, v) for one tie; kNotFound if (u, v) is not a closure arc.
  util::Result<double> Query(graph::NodeId u, graph::NodeId v) const;

  /// Answers `ties` into `out` (the spans must be the same length).
  /// Under kError an unknown pair fails the batch before any further
  /// scoring; under kNan its slot becomes quiet NaN. Known pairs always
  /// receive the same value Query returns.
  util::Status QueryBatch(std::span<const TiePair> ties,
                          std::span<double> out,
                          MissingPolicy policy = MissingPolicy::kError) const;

  uint64_t num_nodes() const { return num_nodes_; }
  uint64_t num_arcs() const { return num_arcs_; }
  uint64_t dimensions() const { return dimensions_; }
  uint64_t arc_hash() const { return arc_hash_; }

  const ShardedTieCache& cache() const { return *cache_; }
  TieCacheStats CacheStats() const { return cache_->Stats(); }

 private:
  ServableModel() = default;

  /// Dense arc index of (u, v), or num_arcs_ when absent (the same
  /// convention as core::TieIndex::TryIndexOf).
  uint64_t FindArc(graph::NodeId u, graph::NodeId v) const;

  /// Sigmoid of the D-Step head on arc `arc` — bit-identical to
  /// ml::LogisticRegression::Predict on the promoted embedding row.
  double ScoreArc(uint64_t arc) const;

  MmapFile file_;
  uint64_t num_nodes_ = 0;
  uint64_t num_arcs_ = 0;
  uint64_t dimensions_ = 0;
  uint64_t arc_hash_ = 0;
  const uint64_t* offsets_ = nullptr;  ///< [num_nodes + 1] CSR row starts
  const uint32_t* adj_ = nullptr;      ///< [num_arcs] sorted destinations
  const float* embeddings_ = nullptr;  ///< [num_arcs × dimensions] row-major
  const double* weights_ = nullptr;    ///< [dimensions] D-Step w
  double bias_ = 0.0;                  ///< D-Step b

  // unique_ptr keeps ServableModel movable (the cache holds mutexes) and
  // the cache reference stable across moves.
  std::unique_ptr<ShardedTieCache> cache_;
  obs::Counter* obs_queries_ = nullptr;
  obs::Histogram* obs_batch_size_ = nullptr;
};

}  // namespace deepdirect::serve

#endif  // DEEPDIRECT_SERVE_SERVABLE_MODEL_H_
