#include "serve/servable_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/servable_format.h"
#include "ml/matrix.h"
#include "train/checkpoint.h"

namespace deepdirect::serve {

namespace fmt = core::servable;

namespace {

util::Status Defect(const std::string& what) {
  return util::Status::InvalidArgument("servable model: " + what);
}

/// Expected payload size per section, derived from the meta section.
uint64_t ExpectedSize(const char* name, const fmt::Meta& meta) {
  if (std::strcmp(name, fmt::kSectionMeta) == 0) return sizeof(fmt::Meta);
  if (std::strcmp(name, fmt::kSectionOffsets) == 0) {
    return (meta.num_nodes + 1) * sizeof(uint64_t);
  }
  if (std::strcmp(name, fmt::kSectionAdj) == 0) {
    return meta.num_arcs * sizeof(uint32_t);
  }
  if (std::strcmp(name, fmt::kSectionEmbeddings) == 0) {
    return meta.num_arcs * meta.dimensions * sizeof(float);
  }
  if (std::strcmp(name, fmt::kSectionDStepW) == 0) {
    return meta.dimensions * sizeof(double);
  }
  if (std::strcmp(name, fmt::kSectionDStepB) == 0) return sizeof(double);
  return 0;
}

}  // namespace

util::Result<ServableModel> ServableModel::Open(const std::string& path,
                                                const ServeOptions& options) {
  auto mapped = MmapFile::Open(path, MmapAdvice::kRandom);
  if (!mapped.ok()) return mapped.status();
  MmapFile file = std::move(mapped).value();
  const auto* base = static_cast<const unsigned char*>(file.data());
  const uint64_t file_size = file.size();

  // --- Header ----------------------------------------------------------
  if (file_size < sizeof(fmt::Header)) {
    return Defect("file too small for a DDS1 header (" +
                  std::to_string(file_size) + " bytes)");
  }
  fmt::Header header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, fmt::kMagic.data(), fmt::kMagic.size()) != 0) {
    return Defect("bad magic (not a DDS1 file)");
  }
  if (header.version != fmt::kVersion) {
    return Defect("unsupported version " + std::to_string(header.version));
  }
  if (header.reserved != 0) return Defect("nonzero reserved header field");
  if (header.file_size != file_size) {
    return Defect("file size mismatch: header says " +
                  std::to_string(header.file_size) + " bytes, file has " +
                  std::to_string(file_size));
  }
  if (header.section_count != fmt::kSectionCount) {
    return Defect("expected " + std::to_string(fmt::kSectionCount) +
                  " sections, found " + std::to_string(header.section_count));
  }
  const uint64_t table_end =
      sizeof(fmt::Header) + fmt::kSectionCount * sizeof(fmt::SectionEntry);
  if (file_size < table_end) {
    return Defect("file truncated inside the section table");
  }

  // --- Meta CRC over header (field zeroed) + table ----------------------
  std::vector<unsigned char> meta_bytes(base, base + table_end);
  std::memset(meta_bytes.data() + offsetof(fmt::Header, meta_crc), 0,
              sizeof(header.meta_crc));
  if (train::Crc32(meta_bytes.data(), meta_bytes.size()) != header.meta_crc) {
    return Defect("header/table CRC mismatch");
  }

  // --- Section table: names, order, canonical layout -------------------
  fmt::SectionEntry table[fmt::kSectionCount];
  std::memcpy(table, base + sizeof(fmt::Header), sizeof(table));
  fmt::Meta meta{};
  uint64_t cursor = table_end;
  for (uint64_t s = 0; s < fmt::kSectionCount; ++s) {
    const fmt::SectionEntry& entry = table[s];
    if (entry.name[fmt::kSectionNameSize - 1] != '\0') {
      return Defect("unterminated section name at index " + std::to_string(s));
    }
    if (std::strcmp(entry.name, fmt::kSectionOrder[s]) != 0) {
      return Defect("expected section '" + std::string(fmt::kSectionOrder[s]) +
                    "' at index " + std::to_string(s) + ", found '" +
                    entry.name + "'");
    }
    if (entry.reserved != 0) {
      return Defect("nonzero reserved field in section '" +
                    std::string(entry.name) + "'");
    }
    cursor = fmt::AlignUp(cursor);
    if (entry.offset != cursor) {
      return Defect("section '" + std::string(entry.name) +
                    "' is not at its canonical offset");
    }
    if (entry.size > file_size || entry.offset > file_size - entry.size) {
      return Defect("section '" + std::string(entry.name) +
                    "' extends past the end of the file");
    }
    if (s == 0) {
      if (entry.size != sizeof(fmt::Meta)) {
        return Defect("meta section has wrong size");
      }
      std::memcpy(&meta, base + entry.offset, sizeof(meta));
      if (meta.dimensions == 0) return Defect("zero embedding dimensions");
      // Guard the size arithmetic below against overflowing u64.
      const uint64_t limit = std::numeric_limits<uint64_t>::max();
      if (meta.num_nodes >= limit / sizeof(uint64_t) ||
          meta.num_arcs >= limit / sizeof(uint32_t) ||
          (meta.num_arcs != 0 &&
           meta.dimensions > limit / sizeof(float) / meta.num_arcs)) {
        return Defect("meta counts overflow");
      }
    }
    if (entry.size != ExpectedSize(entry.name, meta)) {
      return Defect("section '" + std::string(entry.name) +
                    "' has wrong size for the model in 'meta'");
    }
    if (train::Crc32(base + entry.offset, entry.size) != entry.crc) {
      return Defect("CRC mismatch in section '" + std::string(entry.name) +
                    "'");
    }
    cursor = entry.offset + entry.size;
  }
  if (cursor != file_size) {
    return Defect("trailing bytes after the last section");
  }

  // --- Alignment padding must be zero -----------------------------------
  // Together with the CRCs above this covers every byte of the file: any
  // single-byte corruption or truncation fails one of these checks.
  uint64_t gap_start = table_end;
  for (const fmt::SectionEntry& entry : table) {
    for (uint64_t b = gap_start; b < entry.offset; ++b) {
      if (base[b] != 0) {
        return Defect("nonzero padding byte at offset " + std::to_string(b));
      }
    }
    gap_start = entry.offset + entry.size;
  }

  // --- Assemble the model and sanity-check the CSR arrays ---------------
  ServableModel model;
  model.num_nodes_ = meta.num_nodes;
  model.num_arcs_ = meta.num_arcs;
  model.dimensions_ = meta.dimensions;
  model.arc_hash_ = meta.arc_hash;
  model.offsets_ = reinterpret_cast<const uint64_t*>(base + table[1].offset);
  model.adj_ = reinterpret_cast<const uint32_t*>(base + table[2].offset);
  model.embeddings_ = reinterpret_cast<const float*>(base + table[3].offset);
  model.weights_ = reinterpret_cast<const double*>(base + table[4].offset);
  std::memcpy(&model.bias_, base + table[5].offset, sizeof(model.bias_));

  if (model.offsets_[0] != 0 ||
      model.offsets_[model.num_nodes_] != model.num_arcs_) {
    return Defect("CSR offsets do not span the arc count");
  }
  for (uint64_t u = 0; u < model.num_nodes_; ++u) {
    if (model.offsets_[u] > model.offsets_[u + 1]) {
      return Defect("CSR offsets are not monotone at node " +
                    std::to_string(u));
    }
  }
  for (uint64_t e = 0; e < model.num_arcs_; ++e) {
    if (model.adj_[e] >= model.num_nodes_) {
      return Defect("adjacency destination out of range at arc " +
                    std::to_string(e));
    }
  }

  model.file_ = std::move(file);
  model.cache_ = std::make_unique<ShardedTieCache>(options.cache_capacity,
                                                   options.cache_ways);
  auto& registry = obs::Registry::Default();
  model.obs_queries_ = registry.GetCounter("serve.queries");
  model.obs_batch_size_ = registry.GetHistogram("serve.batch.size");
  return model;
}

uint64_t ServableModel::FindArc(graph::NodeId u, graph::NodeId v) const {
  if (u >= num_nodes_) return num_arcs_;
  const uint32_t* row_begin = adj_ + offsets_[u];
  const uint32_t* row_end = adj_ + offsets_[u + 1];
  const uint32_t* it = std::lower_bound(row_begin, row_end, v);
  if (it == row_end || *it != v) return num_arcs_;
  return offsets_[u] + static_cast<uint64_t>(it - row_begin);
}

double ServableModel::ScoreArc(uint64_t arc) const {
  const float* row = embeddings_ + arc * dimensions_;
  // Same accumulation order as ml::LogisticRegression::Score on the
  // double-promoted row — the values are bit-identical, which the golden
  // parity tests assert with exact equality.
  double score = bias_;
  for (uint64_t k = 0; k < dimensions_; ++k) {
    score += weights_[k] * static_cast<double>(row[k]);
  }
  return ml::Sigmoid(score);
}

util::Result<double> ServableModel::Query(graph::NodeId u,
                                          graph::NodeId v) const {
  if (obs::Enabled()) {
    obs_queries_->Add();
    obs_batch_size_->Observe(1.0);
  }
  const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
  double value = 0.0;
  if (cache_->Lookup(key, &value)) return value;
  const uint64_t arc = FindArc(u, v);
  if (arc == num_arcs_) {
    return util::Status::NotFound("no tie between " + std::to_string(u) +
                                  " and " + std::to_string(v) +
                                  " in the training network");
  }
  value = ScoreArc(arc);
  cache_->Insert(key, value);
  return value;
}

util::Status ServableModel::QueryBatch(std::span<const TiePair> ties,
                                       std::span<double> out,
                                       MissingPolicy policy) const {
  if (ties.size() != out.size()) {
    return util::Status::InvalidArgument(
        "QueryBatch spans disagree: " + std::to_string(ties.size()) +
        " ties vs " + std::to_string(out.size()) + " output slots");
  }
  if (obs::Enabled()) {
    obs_queries_->Add(ties.size());
    obs_batch_size_->Observe(static_cast<double>(ties.size()));
  }
  for (size_t i = 0; i < ties.size(); ++i) {
    const TiePair& tie = ties[i];
    const uint64_t key =
        (static_cast<uint64_t>(tie.u) << 32) | tie.v;
    if (cache_->Lookup(key, &out[i])) continue;
    const uint64_t arc = FindArc(tie.u, tie.v);
    if (arc == num_arcs_) {
      if (policy == MissingPolicy::kError) {
        return util::Status::NotFound(
            "no tie between " + std::to_string(tie.u) + " and " +
            std::to_string(tie.v) + " in the training network (batch item " +
            std::to_string(i) + ")");
      }
      out[i] = std::numeric_limits<double>::quiet_NaN();
      continue;
    }
    out[i] = ScoreArc(arc);
    cache_->Insert(key, out[i]);
  }
  return util::Status::OK();
}

}  // namespace deepdirect::serve
