// Line-oriented serving loop: the protocol behind `tdl_cli serve`.
//
// One request per line, whitespace-separated tokens:
//   u1 v1 [u2 v2 ...]   query d(u, v) for each pair; the response line
//                       carries one value per pair, "%.6f"-formatted (the
//                       same rendering the quantify CSV uses, so offline
//                       and served predictions diff byte-for-byte), or
//                       "NA" for a pair with no tie in the network
//   stats               one line of cache counters
//                       (hits= misses= evictions= capacity=)
//   quit                end the loop
// Anything else answers "ERR ..." and the loop continues — a malformed
// request never kills the server.
//
// Each request line is timed; per-query latency lands in the
// serve.query.seconds histogram (surfaced by tdl_cli --metrics-out)
// alongside the serve.queries counter and serve.batch.size histogram the
// model records.

#ifndef DEEPDIRECT_SERVE_SERVER_H_
#define DEEPDIRECT_SERVE_SERVER_H_

#include <cstdint>
#include <istream>
#include <ostream>

#include "serve/servable_model.h"

namespace deepdirect::serve {

/// What a serve loop processed, for callers that report a summary.
struct ServeLoopStats {
  uint64_t lines = 0;    ///< request lines handled (excluding blank lines)
  uint64_t queries = 0;  ///< tie pairs answered (including NA)
  uint64_t errors = 0;   ///< malformed request lines
};

/// Reads requests from `in` until EOF or "quit", answering on `out`.
ServeLoopStats RunServeLoop(const ServableModel& model, std::istream& in,
                            std::ostream& out);

}  // namespace deepdirect::serve

#endif  // DEEPDIRECT_SERVE_SERVER_H_
