// Lock-free hot-tie cache for directionality values.
//
// Query traffic over social ties is heavily skewed (a Zipf-like head of
// celebrity ties absorbs most lookups), so a small cache in front of the
// mmap'd model turns the common query into a handful of atomic loads — no
// CSR binary search, no dot product, no page faults on cold embedding
// rows. The design leans on one property of the values: they are PURE
// functions of the immutable model, so a cache race can only change *when*
// a value is recomputed, never *what* a query answers. That licenses a
// read path with no locks at all:
//
//   * arena storage, struct-of-arrays — the cache is four flat,
//     preallocated parallel arrays (keys, values, versions, reference
//     bits) grouped into power-of-two sets of `ways` consecutive entries.
//     A key probes exactly one set, and the probe scans only the key
//     array: at the default 8 ways that is one 64-byte line, so a lookup
//     touches the value and version of at most one way;
//   * seqlock entries — each way carries an atomic version counter (odd =
//     write in progress). Readers are wait-free: version, key re-check,
//     value, version re-check, and any interleaved write reads as a miss
//     (recomputing a pure value is always safe). Writers claim a way with
//     one CAS and skip the insert when they lose a race — inserts are an
//     optimization, never an obligation. Every access is an atomic
//     operation, so the scheme is data-race-free under the C++ memory
//     model (and TSan-clean, which the concurrent serving test pins);
//   * LRU eviction, second-chance flavor — a hit sets the way's
//     referenced bit (one relaxed store); a full set evicts via a per-set
//     clock hand that spares recently referenced ways, the classic
//     within-set approximation of least-recently-used. Fresh inserts
//     start unreferenced, so a scan of cold ties cannot flush the hot
//     head;
//   * counters — hits, misses, and evictions land in thread-striped cells
//     merged by Stats(); the same events bump the obs registry counters
//     serve.cache.{hits,misses,evictions} when telemetry is enabled, so
//     --metrics-out surfaces cache efficiency alongside the latency
//     histograms.
//
// Lookup is defined inline here: it sits on the serving fast path, where
// an out-of-line call per query would cost a measurable fraction of the
// cache's entire benefit.

#ifndef DEEPDIRECT_SERVE_TIE_CACHE_H_
#define DEEPDIRECT_SERVE_TIE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace deepdirect::serve {

/// Merged cache telemetry (see also serve.cache.* in the obs registry).
struct TieCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t capacity = 0;  ///< total ways across sets (0 = disabled)
};

/// Fixed-capacity, lock-free, set-associative cache from packed tie keys
/// to doubles. All methods are safe to call concurrently; the value must
/// be a pure function of the key (identical value for every insert of one
/// key), which ServableModel's directionality values are.
class ShardedTieCache {
 public:
  /// `capacity` total entries grouped into sets of `ways` (capacity
  /// rounds up to a whole power-of-two number of sets); capacity 0
  /// disables the cache entirely (Lookup always misses without counting,
  /// Insert is a no-op).
  explicit ShardedTieCache(size_t capacity, size_t ways = 8);

  bool enabled() const { return !keys_.empty(); }

  /// Fetches `key` into `*value` and marks the way recently used. Counts
  /// one hit or miss. Wait-free: a concurrent write to the way reads as a
  /// miss.
  bool Lookup(uint64_t key, double* value) const {
    if (!enabled()) return false;
    if (key != kEmptyKey) {
      const size_t base = SetBase(key);
      for (size_t w = base; w < base + ways_; ++w) {
        if (keys_[w].load(std::memory_order_relaxed) != key) continue;
        const uint32_t v1 = versions_[w].load(std::memory_order_acquire);
        if (v1 & 1u) continue;  // writer mid-update: recompute instead
        if (keys_[w].load(std::memory_order_relaxed) != key) continue;
        const double got = values_[w].load(std::memory_order_relaxed);
        // Seqlock re-check: the key/value loads above are ordered before
        // this version re-load; any interleaved write bumped the version.
        std::atomic_thread_fence(std::memory_order_acquire);
        if (versions_[w].load(std::memory_order_relaxed) != v1) continue;
        refs_[w].store(1, std::memory_order_relaxed);
        *value = got;
        Bump(Stripe().hits);
        if (obs::Enabled()) obs_hits_->Add();
        return true;
      }
    }
    Bump(Stripe().misses);
    if (obs::Enabled()) obs_misses_->Add();
    return false;
  }

  /// Inserts `key`, evicting a not-recently-used way when its set is
  /// full. Best-effort: a lost race with another writer skips the insert
  /// (the value can always be recomputed).
  void Insert(uint64_t key, double value) const;

  /// Merged counters across threads.
  TieCacheStats Stats() const;

 private:
  struct alignas(64) StatCell {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
  };

  /// No real tie packs to this key (it would need node ids of 2^32 - 1 on
  /// both ends, which FindArc rejects first); it marks never-written
  /// ways, and Lookup/Insert treat it as uncacheable.
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};
  static constexpr size_t kStatStripes = 8;

  /// SplitMix64 finalizer: spreads packed (u, v) keys — whose bits carry
  /// heavy node-id structure — uniformly across sets.
  static uint64_t MixKey(uint64_t key) {
    key += 0x9e3779b97f4a7c15ULL;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
    return key ^ (key >> 31);
  }

  /// Index of the first way of `key`'s set in the parallel arrays.
  size_t SetBase(uint64_t key) const {
    return (MixKey(key) & set_mask_) * ways_;
  }

  /// Telemetry bump without the lock prefix of fetch_add: stripes are
  /// assigned round-robin per thread, so the load+store pair is exact for
  /// up to kStatStripes concurrent threads and may drop the odd count
  /// beyond that — counters are telemetry, not invariants, and the plain
  /// store keeps the cache-hit path free of locked instructions.
  static void Bump(std::atomic<uint64_t>& cell) {
    cell.store(cell.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  }

  /// Per-thread stat cell, assigned round-robin so concurrent readers do
  /// not contend on one counter line. Inline: it sits on the hit path.
  StatCell& Stripe() const {
    static std::atomic<size_t> next_stripe{0};
    thread_local const size_t stripe =
        next_stripe.fetch_add(1, std::memory_order_relaxed) % kStatStripes;
    return stripes_[stripe];
  }

  // Parallel arrays, set-major: way w of set s lives at s * ways_ + w.
  // mutable: Lookup is logically const on the key→value mapping while
  // still updating recency bits and counters.
  mutable std::vector<std::atomic<uint64_t>> keys_;
  mutable std::vector<std::atomic<double>> values_;
  mutable std::vector<std::atomic<uint32_t>> versions_;
  mutable std::vector<std::atomic<uint8_t>> refs_;
  mutable std::vector<std::atomic<uint32_t>> hands_;  ///< per-set clock
  mutable StatCell stripes_[kStatStripes];
  size_t ways_ = 0;
  size_t set_mask_ = 0;  ///< num_sets - 1 (sets are a power of two)
  obs::Counter* obs_hits_ = nullptr;
  obs::Counter* obs_misses_ = nullptr;
  obs::Counter* obs_evictions_ = nullptr;
};

}  // namespace deepdirect::serve

#endif  // DEEPDIRECT_SERVE_TIE_CACHE_H_
