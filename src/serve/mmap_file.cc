#include "serve/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace deepdirect::serve {

util::Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return util::Status::IOError("cannot open " + path + ": " +
                                 std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return util::Status::IOError("cannot stat " + path + ": " + error);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MmapFile(nullptr, 0);
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The descriptor is only needed to establish the mapping.
  ::close(fd);
  if (data == MAP_FAILED) {
    return util::Status::IOError("cannot mmap " + path + ": " +
                                 std::strerror(errno));
  }
  return MmapFile(data, size);
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace deepdirect::serve
