#include "serve/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace deepdirect::serve {

namespace {

int AdviceFlag(MmapAdvice advice) {
  switch (advice) {
    case MmapAdvice::kRandom:
      return MADV_RANDOM;
    case MmapAdvice::kSequential:
      return MADV_SEQUENTIAL;
    case MmapAdvice::kNone:
      break;
  }
  return MADV_NORMAL;
}

// ENOMEM means the mapping (not the file) was refused — address space or
// overcommit pressure a caller may be able to relieve; everything else is
// an I/O-shaped failure.
util::Status MmapError(const std::string& path) {
  const int err = errno;
  const std::string detail =
      "cannot mmap " + path + ": " + std::strerror(err);
  if (err == ENOMEM) return util::Status::ResourceExhausted(detail);
  return util::Status::IOError(detail);
}

void ApplyAdvice(void* data, size_t size, MmapAdvice advice) {
  if (advice == MmapAdvice::kNone || size == 0) return;
  // Purely a hint; a failure (e.g. an exotic filesystem) changes nothing
  // about correctness, so it is deliberately ignored.
  ::madvise(data, size, AdviceFlag(advice));
}

}  // namespace

util::Result<MmapFile> MmapFile::Open(const std::string& path,
                                      MmapAdvice advice) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return util::Status::IOError("cannot open " + path + ": " +
                                 std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return util::Status::IOError("cannot stat " + path + ": " + error);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MmapFile(nullptr, 0);
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The descriptor is only needed to establish the mapping.
  ::close(fd);
  if (data == MAP_FAILED) return MmapError(path);
  ApplyAdvice(data, size, advice);
  return MmapFile(data, size);
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

util::Result<MmapRwFile> MmapRwFile::MapFd(int fd, const std::string& path,
                                           uint64_t size, MmapAdvice advice) {
  void* data = ::mmap(nullptr, static_cast<size_t>(size),
                      PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (data == MAP_FAILED) {
    const util::Status status = MmapError(path);
    ::close(fd);
    return status;
  }
  ApplyAdvice(data, static_cast<size_t>(size), advice);
  return MmapRwFile(data, static_cast<size_t>(size), fd);
}

util::Result<MmapRwFile> MmapRwFile::Create(const std::string& path,
                                            uint64_t size, MmapAdvice advice) {
  if (size == 0) {
    return util::Status::InvalidArgument("cannot map zero bytes: " + path);
  }
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return util::Status::IOError("cannot create " + path + ": " +
                                 std::strerror(errno));
  }
  // ftruncate leaves the file a sparse hole: zero-filled reads for free,
  // disk blocks allocated only where pages are actually written.
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return util::Status::IOError("cannot size " + path + ": " + error);
  }
  return MapFd(fd, path, size, advice);
}

util::Result<MmapRwFile> MmapRwFile::Open(const std::string& path,
                                          MmapAdvice advice) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) {
    return util::Status::IOError("cannot open " + path + ": " +
                                 std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return util::Status::IOError("cannot stat " + path + ": " + error);
  }
  if (st.st_size == 0) {
    ::close(fd);
    return util::Status::InvalidArgument("cannot map empty file: " + path);
  }
  return MapFd(fd, path, static_cast<uint64_t>(st.st_size), advice);
}

MmapRwFile::~MmapRwFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
  if (fd_ >= 0) ::close(fd_);
}

MmapRwFile& MmapRwFile::operator=(MmapRwFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    if (fd_ >= 0) ::close(fd_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

util::Status MmapRwFile::Sync() {
  if (data_ == nullptr) return util::Status::OK();
  if (::msync(data_, size_, MS_SYNC) != 0) {
    return util::Status::IOError(std::string("msync failed: ") +
                                 std::strerror(errno));
  }
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    return util::Status::IOError(std::string("fsync failed: ") +
                                 std::strerror(errno));
  }
  return util::Status::OK();
}

void MmapRwFile::DropResident(uint64_t offset, uint64_t length) {
  if (data_ == nullptr || length == 0 || offset >= size_) return;
  const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  const uint64_t end = std::min<uint64_t>(size_, offset + length);
  // Round inward: never touch a page shared with bytes outside the range.
  const uint64_t begin_page = (offset + page - 1) & ~(page - 1);
  const uint64_t end_page = end & ~(page - 1);
  if (begin_page >= end_page) return;
  ::madvise(static_cast<char*>(data_) + begin_page, end_page - begin_page,
            MADV_DONTNEED);
}

void MmapRwFile::Advise(uint64_t offset, uint64_t length, MmapAdvice advice) {
  if (data_ == nullptr || length == 0 || offset >= size_ ||
      advice == MmapAdvice::kNone) {
    return;
  }
  const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  const uint64_t end = std::min<uint64_t>(size_, offset + length);
  const uint64_t begin_page = (offset + page - 1) & ~(page - 1);
  const uint64_t end_page = end & ~(page - 1);
  if (begin_page >= end_page) return;
  ::madvise(static_cast<char*>(data_) + begin_page, end_page - begin_page,
            AdviceFlag(advice));
}

}  // namespace deepdirect::serve
