#include "serve/tie_cache.h"

#include <algorithm>

namespace deepdirect::serve {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ShardedTieCache::ShardedTieCache(size_t capacity, size_t ways) {
  auto& registry = obs::Registry::Default();
  obs_hits_ = registry.GetCounter("serve.cache.hits");
  obs_misses_ = registry.GetCounter("serve.cache.misses");
  obs_evictions_ = registry.GetCounter("serve.cache.evictions");
  if (capacity == 0) return;
  ways_ = std::clamp<size_t>(ways, 1, capacity);
  const size_t num_sets = RoundUpPow2((capacity + ways_ - 1) / ways_);
  set_mask_ = num_sets - 1;
  const size_t total = num_sets * ways_;
  keys_ = std::vector<std::atomic<uint64_t>>(total);
  values_ = std::vector<std::atomic<double>>(total);
  versions_ = std::vector<std::atomic<uint32_t>>(total);
  refs_ = std::vector<std::atomic<uint8_t>>(total);
  hands_ = std::vector<std::atomic<uint32_t>>(num_sets);
  for (auto& key : keys_) key.store(kEmptyKey, std::memory_order_relaxed);
}

void ShardedTieCache::Insert(uint64_t key, double value) const {
  if (!enabled() || key == kEmptyKey) return;
  const size_t base = SetBase(key);

  // Already resident (possibly racing with our own miss): nothing to do —
  // the resident value is identical by purity. Otherwise prefer the first
  // never-written way.
  size_t victim = base;
  bool found = false;
  for (size_t w = base; w < base + ways_; ++w) {
    const uint64_t resident = keys_[w].load(std::memory_order_relaxed);
    if (resident == key) return;
    if (resident == kEmptyKey && !found) {
      victim = w;
      found = true;
    }
  }

  // Full set: advance the clock hand, sparing recently referenced ways
  // (second-chance LRU within the set).
  const bool evicting = !found;
  if (!found) {
    std::atomic<uint32_t>& hand = hands_[base / ways_];
    for (size_t step = 0; step < 2 * ways_ && !found; ++step) {
      const size_t w =
          base + hand.fetch_add(1, std::memory_order_relaxed) % ways_;
      uint8_t referenced = 1;
      if (refs_[w].compare_exchange_strong(referenced, 0,
                                           std::memory_order_relaxed)) {
        continue;  // spared: clear the bit, move on
      }
      victim = w;
      found = true;
    }
    if (!found) victim = base;  // all ways stayed hot
  }

  // Claim the way's seqlock with one CAS; a lost race or a concurrent
  // writer means someone else is filling this set right now — skip.
  uint32_t version = versions_[victim].load(std::memory_order_relaxed);
  if (version & 1u) return;
  if (!versions_[victim].compare_exchange_strong(version, version + 1,
                                                 std::memory_order_acq_rel)) {
    return;
  }
  keys_[victim].store(key, std::memory_order_relaxed);
  values_[victim].store(value, std::memory_order_relaxed);
  // Fresh entries start unreferenced: they must earn a hit to survive the
  // clock, so a scan of cold keys cannot flush the hot head.
  refs_[victim].store(0, std::memory_order_relaxed);
  versions_[victim].store(version + 2, std::memory_order_release);
  if (evicting) {
    Bump(Stripe().evictions);
    if (obs::Enabled()) obs_evictions_->Add();
  }
}

TieCacheStats ShardedTieCache::Stats() const {
  TieCacheStats stats;
  stats.capacity = keys_.size();
  for (const StatCell& cell : stripes_) {
    stats.hits += cell.hits.load(std::memory_order_relaxed);
    stats.misses += cell.misses.load(std::memory_order_relaxed);
    stats.evictions += cell.evictions.load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace deepdirect::serve
