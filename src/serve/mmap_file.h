// Memory-mapped files: the zero-copy substrate of the serving layer and
// the out-of-core shard store.
//
//   * MmapFile    — read-only PROT_READ/MAP_PRIVATE mapping of a whole
//                   file; pages fault in on first touch and the kernel
//                   shares clean pages between processes mapping the same
//                   model file.
//   * MmapRwFile  — read-write PROT_READ|PROT_WRITE/MAP_SHARED mapping
//                   used by the sharded training store: stores land in the
//                   page cache (never lost before msync), Sync() makes
//                   them durable, and DropResident() releases a range's
//                   resident pages without losing data — the primitive
//                   behind the --shard-ram-mb budget.
//
// Both classes take an MmapAdvice so callers can tell the kernel the
// access pattern up front: serve handles issue MADV_RANDOM (point queries
// over the CSR index must not trigger readahead thrash), shard sweep
// handles issue MADV_SEQUENTIAL (CRC validation and export sweeps want
// aggressive readahead). mmap failing with ENOMEM returns a typed
// ResourceExhausted so callers can degrade (drop a cache, shrink a
// budget) instead of treating it like an unreadable file.

#ifndef DEEPDIRECT_SERVE_MMAP_FILE_H_
#define DEEPDIRECT_SERVE_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace deepdirect::serve {

/// Access-pattern hint forwarded to madvise() right after mapping.
enum class MmapAdvice {
  kNone = 0,    ///< kernel default readahead
  kRandom,      ///< MADV_RANDOM — point lookups (serve handles)
  kSequential,  ///< MADV_SEQUENTIAL — linear sweeps (shard validation)
};

/// An immutable byte view backed by mmap. Move-only; unmaps on
/// destruction. A default-constructed instance views zero bytes.
class MmapFile {
 public:
  /// Maps `path` read-only. Unreadable or unstat-able files yield IOError;
  /// mmap failing with ENOMEM yields ResourceExhausted; an empty file maps
  /// to a valid zero-length view.
  static util::Result<MmapFile> Open(const std::string& path,
                                     MmapAdvice advice = MmapAdvice::kNone);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const void* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view bytes() const {
    return {static_cast<const char*>(data_), size_};
  }

 private:
  MmapFile(void* data, size_t size) : data_(data), size_(size) {}

  void* data_ = nullptr;
  size_t size_ = 0;
};

/// A mutable byte range backed by a MAP_SHARED read-write mapping. Stores
/// go to the page cache and survive DropResident(); Sync() makes them
/// durable on disk. Move-only; unmaps (but does not sync) on destruction.
class MmapRwFile {
 public:
  /// Creates (or truncates) `path` at exactly `size` bytes and maps it
  /// read-write. The file starts as a sparse hole — every byte reads zero
  /// and pages are only allocated when written. `size` must be > 0.
  static util::Result<MmapRwFile> Create(const std::string& path,
                                         uint64_t size,
                                         MmapAdvice advice = MmapAdvice::kNone);

  /// Maps an existing file read-write at its current size (> 0 required).
  static util::Result<MmapRwFile> Open(const std::string& path,
                                       MmapAdvice advice = MmapAdvice::kNone);

  MmapRwFile() = default;
  ~MmapRwFile();
  MmapRwFile(MmapRwFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        fd_(std::exchange(other.fd_, -1)) {}
  MmapRwFile& operator=(MmapRwFile&& other) noexcept;
  MmapRwFile(const MmapRwFile&) = delete;
  MmapRwFile& operator=(const MmapRwFile&) = delete;

  void* data() { return data_; }
  const void* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

  /// msync(MS_SYNC) over the whole mapping, then fsync(fd): all stores so
  /// far are on disk when this returns OK.
  util::Status Sync();

  /// Tells the kernel to release the resident pages of [offset,
  /// offset+length) (madvise MADV_DONTNEED on a MAP_SHARED mapping drops
  /// the PTEs; data stays in the page cache / on disk and faults back in
  /// on the next touch). The range is rounded *inward* to page boundaries
  /// so bytes shared with a neighboring range are never affected; a range
  /// smaller than one page is a no-op.
  void DropResident(uint64_t offset, uint64_t length);

  /// Applies an access-pattern hint to [offset, offset+length), rounded
  /// inward to page boundaries.
  void Advise(uint64_t offset, uint64_t length, MmapAdvice advice);

 private:
  MmapRwFile(void* data, size_t size, int fd)
      : data_(data), size_(size), fd_(fd) {}

  /// Maps `fd` read-write shared at `size` bytes; owns (and on failure
  /// closes) the descriptor.
  static util::Result<MmapRwFile> MapFd(int fd, const std::string& path,
                                        uint64_t size, MmapAdvice advice);

  void* data_ = nullptr;
  size_t size_ = 0;
  int fd_ = -1;
};

}  // namespace deepdirect::serve

#endif  // DEEPDIRECT_SERVE_MMAP_FILE_H_
