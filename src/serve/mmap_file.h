// Read-only memory-mapped file, the zero-copy substrate of the serving
// layer. Open() maps the whole file PROT_READ/MAP_PRIVATE; the mapping
// lives as long as the object, pages fault in on first touch, and the
// kernel shares clean pages between processes mapping the same model file.

#ifndef DEEPDIRECT_SERVE_MMAP_FILE_H_
#define DEEPDIRECT_SERVE_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace deepdirect::serve {

/// An immutable byte view backed by mmap. Move-only; unmaps on
/// destruction. A default-constructed instance views zero bytes.
class MmapFile {
 public:
  /// Maps `path` read-only. Unreadable or unstat-able files yield IOError;
  /// an empty file maps to a valid zero-length view.
  static util::Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const void* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view bytes() const {
    return {static_cast<const char*>(data_), size_};
  }

 private:
  MmapFile(void* data, size_t size) : data_(data), size_(size) {}

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace deepdirect::serve

#endif  // DEEPDIRECT_SERVE_MMAP_FILE_H_
