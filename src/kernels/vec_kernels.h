// Generic SIMD kernel bodies, written once against a vector-wrapper type
// and instantiated per ISA (AVX2 / SSE2 / NEON). The wrapper `V` supplies:
//
//   V::kF32Lanes              float lanes per step (8 AVX2, 4 SSE2/NEON);
//                             double vectors hold kF32Lanes/2 lanes
//   V::F32, V::F64            register types
//   V::LoadF32/StoreF32       unaligned float vector load/store
//   V::LoadF64/StoreF64       unaligned double vector load/store
//   V::ZeroF64, V::Set1F64    constants
//   V::AddF32, V::SubF32      float lane arithmetic
//   V::AddF64, V::SubF64, V::MulF64   double lane arithmetic
//   V::MulAddF64(a, b, acc)   a·b + acc (FMA where the ISA has it)
//   V::WidenLo/WidenHi        lower/upper float half → double vector
//   V::NarrowF32(lo, hi)      two double vectors → one float vector
//   V::ReduceAddF64           horizontal sum of a double vector
//
// Every body widens float storage to double before multiplying — same
// precision contract as the scalar path — but accumulates lane-parallel
// and uses FMA, so results are tolerance-equal to scalar, not bit-equal.
// Tails shorter than a vector run the plain scalar recurrence.

#ifndef DEEPDIRECT_KERNELS_VEC_KERNELS_H_
#define DEEPDIRECT_KERNELS_VEC_KERNELS_H_

#include <cstddef>

#include "kernels/sigmoid.h"
#include "kernels/simd_ops.h"

namespace deepdirect::kernels::detail {

template <typename V>
struct VecKernels {
  static constexpr size_t kW = V::kF32Lanes;   // floats per step
  static constexpr size_t kH = kW / 2;         // doubles per vector

  static double DotF32(const float* a, const float* b, size_t n) {
    auto acc_lo = V::ZeroF64();
    auto acc_hi = V::ZeroF64();
    size_t i = 0;
    for (; i + kW <= n; i += kW) {
      const auto av = V::LoadF32(a + i);
      const auto bv = V::LoadF32(b + i);
      acc_lo = V::MulAddF64(V::WidenLo(av), V::WidenLo(bv), acc_lo);
      acc_hi = V::MulAddF64(V::WidenHi(av), V::WidenHi(bv), acc_hi);
    }
    double acc = V::ReduceAddF64(V::AddF64(acc_lo, acc_hi));
    for (; i < n; ++i) {
      acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    }
    return acc;
  }

  static double DotF64(double init, const double* w, const double* x,
                       size_t n) {
    auto accv = V::ZeroF64();
    size_t i = 0;
    for (; i + kH <= n; i += kH) {
      accv = V::MulAddF64(V::LoadF64(w + i), V::LoadF64(x + i), accv);
    }
    double acc = V::ReduceAddF64(accv);
    for (; i < n; ++i) acc += w[i] * x[i];
    return init + acc;
  }

  static double DotF64F32(double init, const double* w, const float* x,
                          size_t n) {
    auto acc_lo = V::ZeroF64();
    auto acc_hi = V::ZeroF64();
    size_t i = 0;
    for (; i + kW <= n; i += kW) {
      const auto xv = V::LoadF32(x + i);
      acc_lo = V::MulAddF64(V::LoadF64(w + i), V::WidenLo(xv), acc_lo);
      acc_hi = V::MulAddF64(V::LoadF64(w + i + kH), V::WidenHi(xv), acc_hi);
    }
    double acc = V::ReduceAddF64(V::AddF64(acc_lo, acc_hi));
    for (; i < n; ++i) acc += w[i] * static_cast<double>(x[i]);
    return init + acc;
  }

  static void DotPairF64F32(double init, const double* w, const float* x1,
                            const float* x2, size_t n, double* out1,
                            double* out2) {
    auto a1_lo = V::ZeroF64(), a1_hi = V::ZeroF64();
    auto a2_lo = V::ZeroF64(), a2_hi = V::ZeroF64();
    size_t i = 0;
    for (; i + kW <= n; i += kW) {
      const auto w_lo = V::LoadF64(w + i);
      const auto w_hi = V::LoadF64(w + i + kH);
      const auto x1v = V::LoadF32(x1 + i);
      const auto x2v = V::LoadF32(x2 + i);
      a1_lo = V::MulAddF64(w_lo, V::WidenLo(x1v), a1_lo);
      a1_hi = V::MulAddF64(w_hi, V::WidenHi(x1v), a1_hi);
      a2_lo = V::MulAddF64(w_lo, V::WidenLo(x2v), a2_lo);
      a2_hi = V::MulAddF64(w_hi, V::WidenHi(x2v), a2_hi);
    }
    double s1 = V::ReduceAddF64(V::AddF64(a1_lo, a1_hi));
    double s2 = V::ReduceAddF64(V::AddF64(a2_lo, a2_hi));
    for (; i < n; ++i) {
      s1 += w[i] * static_cast<double>(x1[i]);
      s2 += w[i] * static_cast<double>(x2[i]);
    }
    *out1 = init + s1;
    *out2 = init + s2;
  }

  static void AxpyF32(float* y, double alpha, const float* x, size_t n) {
    const auto av = V::Set1F64(alpha);
    size_t i = 0;
    for (; i + kW <= n; i += kW) {
      const auto xv = V::LoadF32(x + i);
      const auto prod = V::NarrowF32(V::MulF64(V::WidenLo(xv), av),
                                     V::MulF64(V::WidenHi(xv), av));
      V::StoreF32(y + i, V::AddF32(V::LoadF32(y + i), prod));
    }
    for (; i < n; ++i) {
      y[i] += static_cast<float>(alpha * static_cast<double>(x[i]));
    }
  }

  static double NegSamplingUpdate(double* grad, const float* src, float* dst,
                                  size_t n, double label, double grad_scale,
                                  double update_scale) {
    const double score = DotF32(src, dst, n);
    const double g = grad_scale * (SigmoidLut(score) - label);
    const double h = update_scale * g;
    const auto gv = V::Set1F64(g);
    const auto hv = V::Set1F64(h);
    size_t i = 0;
    for (; i + kW <= n; i += kW) {
      const auto dv = V::LoadF32(dst + i);
      const auto sv = V::LoadF32(src + i);
      V::StoreF64(grad + i,
                  V::MulAddF64(V::WidenLo(dv), gv, V::LoadF64(grad + i)));
      V::StoreF64(grad + i + kH,
                  V::MulAddF64(V::WidenHi(dv), gv, V::LoadF64(grad + i + kH)));
      const auto prod = V::NarrowF32(V::MulF64(V::WidenLo(sv), hv),
                                     V::MulF64(V::WidenHi(sv), hv));
      V::StoreF32(dst + i, V::AddF32(dv, prod));
    }
    for (; i < n; ++i) {
      const float dk = dst[i];
      grad[i] += g * static_cast<double>(dk);
      dst[i] = dk + static_cast<float>(h * static_cast<double>(src[i]));
    }
    return score;
  }

  static void ApplyGrad(float* row, const double* grad, size_t n) {
    size_t i = 0;
    for (; i + kW <= n; i += kW) {
      const auto gf =
          V::NarrowF32(V::LoadF64(grad + i), V::LoadF64(grad + i + kH));
      V::StoreF32(row + i, V::AddF32(V::LoadF32(row + i), gf));
    }
    for (; i < n; ++i) row[i] += static_cast<float>(grad[i]);
  }

  static void ApplyGradDecay(float* row, const double* grad, double lr,
                             double l2, size_t n) {
    const auto lrv = V::Set1F64(lr);
    const auto l2v = V::Set1F64(l2);
    size_t i = 0;
    for (; i + kW <= n; i += kW) {
      const auto rv = V::LoadF32(row + i);
      const auto t_lo =
          V::MulF64(V::MulAddF64(V::WidenLo(rv), l2v, V::LoadF64(grad + i)),
                    lrv);
      const auto t_hi = V::MulF64(
          V::MulAddF64(V::WidenHi(rv), l2v, V::LoadF64(grad + i + kH)), lrv);
      V::StoreF32(row + i, V::SubF32(rv, V::NarrowF32(t_lo, t_hi)));
    }
    for (; i < n; ++i) {
      const float rk = row[i];
      row[i] = rk - static_cast<float>(
                        lr * (grad[i] + l2 * static_cast<double>(rk)));
    }
  }

  static void ClassifierUpdate(double* grad, double* w, const float* x,
                               double g, double lr, double l2, size_t n) {
    const auto gv = V::Set1F64(g);
    const auto lrv = V::Set1F64(lr);
    const auto l2v = V::Set1F64(l2);
    size_t i = 0;
    for (; i + kW <= n; i += kW) {
      const auto xv = V::LoadF32(x + i);
      const auto w_lo = V::LoadF64(w + i);
      const auto w_hi = V::LoadF64(w + i + kH);
      V::StoreF64(grad + i, V::MulAddF64(w_lo, gv, V::LoadF64(grad + i)));
      V::StoreF64(grad + i + kH,
                  V::MulAddF64(w_hi, gv, V::LoadF64(grad + i + kH)));
      const auto t_lo =
          V::MulAddF64(V::WidenLo(xv), gv, V::MulF64(w_lo, l2v));
      const auto t_hi =
          V::MulAddF64(V::WidenHi(xv), gv, V::MulF64(w_hi, l2v));
      V::StoreF64(w + i, V::SubF64(w_lo, V::MulF64(t_lo, lrv)));
      V::StoreF64(w + i + kH, V::SubF64(w_hi, V::MulF64(t_hi, lrv)));
    }
    for (; i < n; ++i) {
      const double wk = w[i];
      grad[i] += g * wk;
      w[i] = wk - lr * (g * static_cast<double>(x[i]) + l2 * wk);
    }
  }

  static void LogRegUpdate(double* w, const double* x, double lr, double g,
                           double l2, size_t n) {
    const auto gv = V::Set1F64(g);
    const auto lrv = V::Set1F64(lr);
    const auto l2v = V::Set1F64(l2);
    size_t i = 0;
    for (; i + kH <= n; i += kH) {
      const auto wv = V::LoadF64(w + i);
      const auto t = V::MulAddF64(V::LoadF64(x + i), gv, V::MulF64(wv, l2v));
      V::StoreF64(w + i, V::SubF64(wv, V::MulF64(t, lrv)));
    }
    for (; i < n; ++i) {
      const double wk = w[i];
      w[i] = wk - lr * (g * x[i] + l2 * wk);
    }
  }

  static Ops Table(const char* isa) {
    return Ops{isa,
               &DotF32,
               &DotF64,
               &DotF64F32,
               &DotPairF64F32,
               &AxpyF32,
               &NegSamplingUpdate,
               &ApplyGrad,
               &ApplyGradDecay,
               &ClassifierUpdate,
               &LogRegUpdate};
  }
};

}  // namespace deepdirect::kernels::detail

#endif  // DEEPDIRECT_KERNELS_VEC_KERNELS_H_
