// Sigmoid primitives shared by every trainer.
//
// Both entry points clamp their argument to ±kSigmoidClamp (the classic
// word2vec ±6 bound): beyond it the logistic function is within 2.5e-3 of
// saturation and the gradient signal is noise, so the scalar and LUT paths
// agree exactly on how extreme scores (including ±inf) behave.
//
//   * Sigmoid       — exact: clamp, then the numerically safe two-branch
//                     exp formula. This is what ml::Sigmoid forwards to
//                     and what the scalar kernel dispatch uses.
//   * SigmoidLut    — table lookup with linear interpolation, used by the
//                     SIMD kernel dispatch. kSigmoidLutEntries intervals
//                     over [-6, 6]; with a float-valued table the absolute
//                     error against Sigmoid() is bounded by
//                     kSigmoidLutMaxError (interpolation h²/8·max|σ''| ≈
//                     4.2e-7 plus float storage rounding ≤ 6e-8), pinned
//                     by tests/kernels_test.cc.

#ifndef DEEPDIRECT_KERNELS_SIGMOID_H_
#define DEEPDIRECT_KERNELS_SIGMOID_H_

#include <cmath>
#include <cstddef>

namespace deepdirect::kernels {

/// Clamp bound for both sigmoid paths (and ml::LogSigmoid).
inline constexpr double kSigmoidClamp = 6.0;

/// Number of LUT intervals over [-kSigmoidClamp, kSigmoidClamp].
inline constexpr size_t kSigmoidLutEntries = 2048;

/// Documented absolute-error bound of SigmoidLut vs Sigmoid.
inline constexpr double kSigmoidLutMaxError = 1e-6;

/// Exact clamped logistic sigmoid (NaN propagates).
inline double Sigmoid(double x) {
  if (x > kSigmoidClamp) x = kSigmoidClamp;
  if (x < -kSigmoidClamp) x = -kSigmoidClamp;
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

/// Table-interpolated sigmoid; |SigmoidLut(x) − Sigmoid(x)| ≤
/// kSigmoidLutMaxError everywhere (NaN propagates).
double SigmoidLut(double x);

}  // namespace deepdirect::kernels

#endif  // DEEPDIRECT_KERNELS_SIGMOID_H_
