#include "kernels/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "kernels/simd_ops.h"

namespace deepdirect::kernels {

namespace {

bool ParseMode(std::string_view s, Mode* out) {
  if (s == "auto") {
    *out = Mode::kAuto;
  } else if (s == "scalar") {
    *out = Mode::kScalar;
  } else if (s == "simd") {
    *out = Mode::kSimd;
  } else {
    return false;
  }
  return true;
}

Mode EnvDefault() {
  const char* env = std::getenv("DD_KERNELS");
  Mode mode = Mode::kAuto;
  if (env != nullptr) ParseMode(env, &mode);  // unknown values fall to auto
  return mode;
}

std::atomic<Mode>& ModeVar() {
  static std::atomic<Mode> mode{EnvDefault()};
  return mode;
}

}  // namespace

namespace detail {

const Ops& ActiveOps() {
  static const Ops& ops = []() -> const Ops& {
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return Avx2Ops();
    }
    if (__builtin_cpu_supports("sse2")) return Sse2Ops();
    return ScalarOps();
#elif defined(__aarch64__)
    return NeonOps();
#else
    return ScalarOps();
#endif
  }();
  return ops;
}

}  // namespace detail

bool SetMode(std::string_view mode) {
  Mode parsed;
  if (!ParseMode(mode, &parsed)) return false;
  SetMode(parsed);
  return true;
}

void SetMode(Mode mode) {
  ModeVar().store(mode, std::memory_order_relaxed);
}

Mode CurrentMode() { return ModeVar().load(std::memory_order_relaxed); }

bool SimdEnabled() {
  switch (CurrentMode()) {
    case Mode::kScalar:
      return false;
    case Mode::kSimd:
      return true;
    case Mode::kAuto:
      // Auto only takes the ops table when it carries real vector code;
      // with just the portable fallback the exact scalar path wins.
      return std::strcmp(detail::ActiveOps().isa, "scalar") != 0;
  }
  return false;
}

const char* SimdIsaName() { return detail::ActiveOps().isa; }

const char* ActivePathName() {
  return SimdEnabled() ? SimdIsaName() : "scalar";
}

}  // namespace deepdirect::kernels
