// NEON ops table — baseline on aarch64, so no extra target flags. Uses
// vfmaq_f64 (fused) for MulAddF64, matching the FMA convention of the
// AVX2 table.

#if defined(__aarch64__)

#include <arm_neon.h>

#include "kernels/vec_kernels.h"

namespace deepdirect::kernels::detail {
namespace {

struct Neon {
  static constexpr size_t kF32Lanes = 4;
  using F32 = float32x4_t;
  using F64 = float64x2_t;

  static F32 LoadF32(const float* p) { return vld1q_f32(p); }
  static void StoreF32(float* p, F32 v) { vst1q_f32(p, v); }
  static F64 LoadF64(const double* p) { return vld1q_f64(p); }
  static void StoreF64(double* p, F64 v) { vst1q_f64(p, v); }
  static F64 ZeroF64() { return vdupq_n_f64(0.0); }
  static F64 Set1F64(double x) { return vdupq_n_f64(x); }
  static F32 AddF32(F32 a, F32 b) { return vaddq_f32(a, b); }
  static F32 SubF32(F32 a, F32 b) { return vsubq_f32(a, b); }
  static F64 AddF64(F64 a, F64 b) { return vaddq_f64(a, b); }
  static F64 SubF64(F64 a, F64 b) { return vsubq_f64(a, b); }
  static F64 MulF64(F64 a, F64 b) { return vmulq_f64(a, b); }
  static F64 MulAddF64(F64 a, F64 b, F64 acc) {
    return vfmaq_f64(acc, a, b);
  }
  static F64 WidenLo(F32 v) { return vcvt_f64_f32(vget_low_f32(v)); }
  static F64 WidenHi(F32 v) { return vcvt_f64_f32(vget_high_f32(v)); }
  static F32 NarrowF32(F64 lo, F64 hi) {
    return vcombine_f32(vcvt_f32_f64(lo), vcvt_f32_f64(hi));
  }
  static double ReduceAddF64(F64 v) { return vaddvq_f64(v); }
};

}  // namespace

const Ops& NeonOps() {
  static const Ops ops = VecKernels<Neon>::Table("neon");
  return ops;
}

}  // namespace deepdirect::kernels::detail

#endif  // aarch64
