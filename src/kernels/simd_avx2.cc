// AVX2+FMA ops table. This translation unit is compiled with
// -mavx2 -mfma (see CMakeLists.txt) and must only be entered after
// dispatch.cc has confirmed the CPU supports both — nothing here may be
// called from generic code paths directly.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "kernels/vec_kernels.h"

namespace deepdirect::kernels::detail {
namespace {

struct Avx2 {
  static constexpr size_t kF32Lanes = 8;
  using F32 = __m256;
  using F64 = __m256d;

  static F32 LoadF32(const float* p) { return _mm256_loadu_ps(p); }
  static void StoreF32(float* p, F32 v) { _mm256_storeu_ps(p, v); }
  static F64 LoadF64(const double* p) { return _mm256_loadu_pd(p); }
  static void StoreF64(double* p, F64 v) { _mm256_storeu_pd(p, v); }
  static F64 ZeroF64() { return _mm256_setzero_pd(); }
  static F64 Set1F64(double x) { return _mm256_set1_pd(x); }
  static F32 AddF32(F32 a, F32 b) { return _mm256_add_ps(a, b); }
  static F32 SubF32(F32 a, F32 b) { return _mm256_sub_ps(a, b); }
  static F64 AddF64(F64 a, F64 b) { return _mm256_add_pd(a, b); }
  static F64 SubF64(F64 a, F64 b) { return _mm256_sub_pd(a, b); }
  static F64 MulF64(F64 a, F64 b) { return _mm256_mul_pd(a, b); }
  static F64 MulAddF64(F64 a, F64 b, F64 acc) {
    return _mm256_fmadd_pd(a, b, acc);
  }
  static F64 WidenLo(F32 v) {
    return _mm256_cvtps_pd(_mm256_castps256_ps128(v));
  }
  static F64 WidenHi(F32 v) {
    return _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
  }
  static F32 NarrowF32(F64 lo, F64 hi) {
    return _mm256_insertf128_ps(
        _mm256_castps128_ps256(_mm256_cvtpd_ps(lo)), _mm256_cvtpd_ps(hi), 1);
  }
  static double ReduceAddF64(F64 v) {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d s = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
  }
};

}  // namespace

const Ops& Avx2Ops() {
  static const Ops ops = VecKernels<Avx2>::Table("avx2");
  return ops;
}

}  // namespace deepdirect::kernels::detail

#endif  // x86
