// Runtime kernel dispatch: every hot-loop primitive in kernels.h picks
// between the exact scalar path and the SIMD path through this switch.
//
// Resolution order:
//   1. `DD_KERNELS` environment variable (read once, on first use)
//   2. `SetMode()` — the `tdl_cli --kernels` flag and tests override the
//      environment at any time; the change applies to subsequent calls.
//   3. default `kAuto`: SIMD when the CPU supports a vector ISA the build
//      carries (AVX2 preferred, SSE2 fallback on x86-64, NEON on aarch64),
//      scalar otherwise.
//
// The scalar path is the compatibility contract: it reproduces the
// historical trainer arithmetic bit-for-bit (see kernels.h). The SIMD
// path reorders accumulation and routes sigmoid through the lookup table,
// so it is tolerance-equal, not bit-equal — tests pin the bound.

#ifndef DEEPDIRECT_KERNELS_DISPATCH_H_
#define DEEPDIRECT_KERNELS_DISPATCH_H_

#include <string_view>

namespace deepdirect::kernels {

/// Requested dispatch mode.
enum class Mode {
  kAuto,    ///< SIMD when the host supports it (default)
  kScalar,  ///< force the exact scalar path
  kSimd,    ///< force the SIMD path (scalar-shaped ops table on hosts
            ///< without a vector ISA — numerics still follow the SIMD
            ///< conventions, e.g. the sigmoid LUT)
};

/// Parses and installs a mode: "auto", "scalar", or "simd". Returns false
/// (and changes nothing) on any other string.
bool SetMode(std::string_view mode);

/// Installs a mode directly (tests; prefer SetMode for user input).
void SetMode(Mode mode);

/// The mode currently in force (env default until overridden).
Mode CurrentMode();

/// True when kernels should take the SIMD ops table: mode kSimd, or kAuto
/// on a host with a supported vector ISA.
bool SimdEnabled();

/// Name of the ops table SIMD dispatch resolves to on this host:
/// "avx2", "sse2", "neon", or "scalar" (portable fallback table).
const char* SimdIsaName();

/// Name of the path kernels actually take right now: SimdIsaName() when
/// SimdEnabled(), else "scalar".
const char* ActivePathName();

}  // namespace deepdirect::kernels

#endif  // DEEPDIRECT_KERNELS_DISPATCH_H_
