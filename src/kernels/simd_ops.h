// Internal SIMD ops table: raw-pointer implementations of every kernel,
// one table per vector ISA, selected once per process by dispatch.cc.
//
// Tables are produced by instantiating the generic bodies in
// vec_kernels.h with an ISA wrapper type (simd_avx2.cc, simd_sse2.cc,
// simd_neon.cc) or by the portable scalar-shaped fallback
// (simd_scalar.cc, used when the build carries no vector ISA for the
// host). Each ISA lives in its own translation unit so per-file target
// flags (-mavx2 -mfma) never leak vector instructions into code that runs
// before the CPU check.
//
// These functions take plain pointers — no access-policy tagging. On the
// Hogwild path that makes the parameter updates benign data races in the
// classic Hogwild sense rather than tagged relaxed atomics; kernels.h
// routes concurrent callers back to the policy-scalar path under
// ThreadSanitizer so sanitizer runs stay data-race-free (see kernels.h).

#ifndef DEEPDIRECT_KERNELS_SIMD_OPS_H_
#define DEEPDIRECT_KERNELS_SIMD_OPS_H_

#include <cstddef>

namespace deepdirect::kernels::detail {

/// One vector ISA's kernel implementations. Pointer arguments follow the
/// public API in kernels.h; sizes are element counts.
struct Ops {
  const char* isa;

  /// Σ a[i]·b[i], double accumulation over float rows.
  double (*dot_f32)(const float* a, const float* b, size_t n);
  /// init + Σ w[i]·x[i] over double spans.
  double (*dot_f64)(double init, const double* w, const double* x, size_t n);
  /// init + Σ w[i]·(double)x[i], double weights against a float row.
  double (*dot_f64f32)(double init, const double* w, const float* x,
                       size_t n);
  /// Two dot_f64f32 sharing the weight loads: out1/out2 both start at
  /// init.
  void (*dot_pair_f64f32)(double init, const double* w, const float* x1,
                          const float* x2, size_t n, double* out1,
                          double* out2);
  /// y[i] += (float)(alpha · x[i]).
  void (*axpy_f32)(float* y, double alpha, const float* x, size_t n);
  /// Fused negative-sampling update; returns the dot score. See
  /// kernels.h::NegSamplingUpdate for the exact recurrence.
  double (*neg_sampling_update)(double* grad, const float* src, float* dst,
                                size_t n, double label, double grad_scale,
                                double update_scale);
  /// row[i] += (float)grad[i].
  void (*apply_grad)(float* row, const double* grad, size_t n);
  /// row[i] -= (float)(lr · (grad[i] + l2 · row[i])).
  void (*apply_grad_decay)(float* row, const double* grad, double lr,
                           double l2, size_t n);
  /// Coupled E-step classifier update:
  ///   grad[i] += g · w[i];  w[i] -= lr · (g · x[i] + l2 · w[i]).
  void (*classifier_update)(double* grad, double* w, const float* x,
                            double g, double lr, double l2, size_t n);
  /// Logistic-regression weight update:
  ///   w[i] -= lr · (g · x[i] + l2 · w[i]).
  void (*logreg_update)(double* w, const double* x, double lr, double g,
                        double l2, size_t n);
};

/// Portable fallback table (plain loops, SIMD numeric conventions).
const Ops& ScalarOps();

#if defined(__x86_64__) || defined(__i386__)
const Ops& Avx2Ops();
const Ops& Sse2Ops();
#endif
#if defined(__aarch64__)
const Ops& NeonOps();
#endif

/// The best table for this host, resolved once (cpuid on x86).
const Ops& ActiveOps();

}  // namespace deepdirect::kernels::detail

#endif  // DEEPDIRECT_KERNELS_SIMD_OPS_H_
