// SSE2 ops table — the x86-64 baseline ISA, so this translation unit
// needs no extra target flags and is always safe to run. No FMA: MulAddF64
// is a separate multiply + add.

#if defined(__x86_64__) || defined(__i386__)

#include <emmintrin.h>

#include "kernels/vec_kernels.h"

namespace deepdirect::kernels::detail {
namespace {

struct Sse2 {
  static constexpr size_t kF32Lanes = 4;
  using F32 = __m128;
  using F64 = __m128d;

  static F32 LoadF32(const float* p) { return _mm_loadu_ps(p); }
  static void StoreF32(float* p, F32 v) { _mm_storeu_ps(p, v); }
  static F64 LoadF64(const double* p) { return _mm_loadu_pd(p); }
  static void StoreF64(double* p, F64 v) { _mm_storeu_pd(p, v); }
  static F64 ZeroF64() { return _mm_setzero_pd(); }
  static F64 Set1F64(double x) { return _mm_set1_pd(x); }
  static F32 AddF32(F32 a, F32 b) { return _mm_add_ps(a, b); }
  static F32 SubF32(F32 a, F32 b) { return _mm_sub_ps(a, b); }
  static F64 AddF64(F64 a, F64 b) { return _mm_add_pd(a, b); }
  static F64 SubF64(F64 a, F64 b) { return _mm_sub_pd(a, b); }
  static F64 MulF64(F64 a, F64 b) { return _mm_mul_pd(a, b); }
  static F64 MulAddF64(F64 a, F64 b, F64 acc) {
    return _mm_add_pd(_mm_mul_pd(a, b), acc);
  }
  static F64 WidenLo(F32 v) { return _mm_cvtps_pd(v); }
  static F64 WidenHi(F32 v) { return _mm_cvtps_pd(_mm_movehl_ps(v, v)); }
  static F32 NarrowF32(F64 lo, F64 hi) {
    return _mm_movelh_ps(_mm_cvtpd_ps(lo), _mm_cvtpd_ps(hi));
  }
  static double ReduceAddF64(F64 v) {
    return _mm_cvtsd_f64(_mm_add_sd(v, _mm_unpackhi_pd(v, v)));
  }
};

}  // namespace

const Ops& Sse2Ops() {
  static const Ops ops = VecKernels<Sse2>::Table("sse2");
  return ops;
}

}  // namespace deepdirect::kernels::detail

#endif  // x86
