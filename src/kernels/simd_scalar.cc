// Portable fallback ops table: plain loops that follow the SIMD numeric
// conventions (sigmoid via the LUT, same recurrences otherwise). Used when
// the build carries no vector ISA for the host, and by tests that need the
// SIMD-convention semantics without caring about the instruction set. The
// bit-exact compatibility path lives in kernels.h, not here.

#include "kernels/sigmoid.h"
#include "kernels/simd_ops.h"

namespace deepdirect::kernels::detail {
namespace {

double DotF32(const float* a, const float* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double DotF64(double init, const double* w, const double* x, size_t n) {
  double acc = init;
  for (size_t i = 0; i < n; ++i) acc += w[i] * x[i];
  return acc;
}

double DotF64F32(double init, const double* w, const float* x, size_t n) {
  double acc = init;
  for (size_t i = 0; i < n; ++i) acc += w[i] * static_cast<double>(x[i]);
  return acc;
}

void DotPairF64F32(double init, const double* w, const float* x1,
                   const float* x2, size_t n, double* out1, double* out2) {
  double s1 = init;
  double s2 = init;
  for (size_t i = 0; i < n; ++i) {
    const double wk = w[i];
    s1 += wk * static_cast<double>(x1[i]);
    s2 += wk * static_cast<double>(x2[i]);
  }
  *out1 = s1;
  *out2 = s2;
}

void AxpyF32(float* y, double alpha, const float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    y[i] += static_cast<float>(alpha * static_cast<double>(x[i]));
  }
}

double NegSamplingUpdate(double* grad, const float* src, float* dst,
                         size_t n, double label, double grad_scale,
                         double update_scale) {
  const double score = DotF32(src, dst, n);
  const double g = grad_scale * (SigmoidLut(score) - label);
  const double h = update_scale * g;
  for (size_t i = 0; i < n; ++i) {
    const float dk = dst[i];
    grad[i] += g * static_cast<double>(dk);
    dst[i] = dk + static_cast<float>(h * static_cast<double>(src[i]));
  }
  return score;
}

void ApplyGrad(float* row, const double* grad, size_t n) {
  for (size_t i = 0; i < n; ++i) row[i] += static_cast<float>(grad[i]);
}

void ApplyGradDecay(float* row, const double* grad, double lr, double l2,
                    size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const float rk = row[i];
    row[i] = rk - static_cast<float>(
                      lr * (grad[i] + l2 * static_cast<double>(rk)));
  }
}

void ClassifierUpdate(double* grad, double* w, const float* x, double g,
                      double lr, double l2, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double wk = w[i];
    grad[i] += g * wk;
    w[i] = wk - lr * (g * static_cast<double>(x[i]) + l2 * wk);
  }
}

void LogRegUpdate(double* w, const double* x, double lr, double g, double l2,
                  size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double wk = w[i];
    w[i] = wk - lr * (g * x[i] + l2 * wk);
  }
}

}  // namespace

const Ops& ScalarOps() {
  static const Ops ops{"scalar",          &DotF32,
                       &DotF64,           &DotF64F32,
                       &DotPairF64F32,    &AxpyF32,
                       &NegSamplingUpdate, &ApplyGrad,
                       &ApplyGradDecay,   &ClassifierUpdate,
                       &LogRegUpdate};
  return ops;
}

}  // namespace deepdirect::kernels::detail
