// Public kernel API: the hot-loop primitives shared by every SGD trainer
// (DeepDirect E-step, D-step logistic regression, skip-gram, LINE, and the
// edge-list embedding). Each primitive is templated on an access policy
// `A` (train::SerialAccess / train::HogwildAccess — any type with
// `kConcurrent`, `Load`, `Store`) and picks one of two paths per call:
//
//   * exact scalar — policy-tagged loads/stores, double accumulation in
//     argument order, sigmoid via kernels::Sigmoid. With A = SerialAccess
//     this reproduces the historical trainer arithmetic bit-for-bit; the
//     nt=1 resume goldens pin that contract.
//   * SIMD — the raw-pointer ops table from dispatch (AVX2/SSE2/NEON, or
//     the portable fallback). Lane-parallel double accumulation, FMA where
//     the ISA has it, sigmoid via the ±6 LUT: tolerance-equal to scalar
//     (tests/kernels_test.cc pins the bounds), never bit-equal.
//
// VectorizedPath<A>() gates the SIMD path. Vector loads cannot be tagged
// atomic, so under HogwildAccess the SIMD kernels race on parameter rows —
// benign in the Hogwild model, but a data race to ThreadSanitizer. TSan
// builds therefore route concurrent callers back to the policy-scalar
// path; serial callers vectorize everywhere.

#ifndef DEEPDIRECT_KERNELS_KERNELS_H_
#define DEEPDIRECT_KERNELS_KERNELS_H_

#include <cstddef>
#include <span>

#include "kernels/dispatch.h"
#include "kernels/sigmoid.h"
#include "kernels/simd_ops.h"

#if defined(__SANITIZE_THREAD__)
#define DEEPDIRECT_KERNELS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DEEPDIRECT_KERNELS_TSAN 1
#endif
#endif
#ifndef DEEPDIRECT_KERNELS_TSAN
#define DEEPDIRECT_KERNELS_TSAN 0
#endif

namespace deepdirect::kernels {

/// True when policy `A` may take the raw SIMD kernels: always for serial
/// access; for concurrent access only when the build is not under
/// ThreadSanitizer (raw vector loads/stores would be flagged races).
template <typename A>
constexpr bool VectorizedPath() {
  return !(DEEPDIRECT_KERNELS_TSAN && A::kConcurrent);
}

namespace detail {

/// One dispatch decision per call site: SIMD table when enabled and the
/// policy admits raw-pointer access.
template <typename A>
inline bool UseSimd() {
  return VectorizedPath<A>() && SimdEnabled();
}

}  // namespace detail

/// Σ a[i]·b[i] with double accumulation over float rows (the embedding
/// score kernel). Exact path matches ml::Dot term-for-term.
template <typename A>
inline double DotRows(std::span<const float> a, std::span<const float> b) {
  if (detail::UseSimd<A>()) {
    return detail::ActiveOps().dot_f32(a.data(), b.data(), a.size());
  }
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(A::Load(a[i])) *
           static_cast<double>(A::Load(b[i]));
  }
  return acc;
}

/// y[i] += float(alpha · x[i]) — the row-update kernel; mirrors ml::Axpy.
template <typename A>
inline void AxpyRows(std::span<float> y, double alpha,
                     std::span<const float> x) {
  if (detail::UseSimd<A>()) {
    detail::ActiveOps().axpy_f32(y.data(), alpha, x.data(), y.size());
    return;
  }
  for (size_t i = 0; i < y.size(); ++i) {
    A::Store(y[i], A::Load(y[i]) +
                       static_cast<float>(
                           alpha * static_cast<double>(A::Load(x[i]))));
  }
}

/// Fused negative-sampling step shared by every embedding trainer:
///
///   score   = Σ src[k]·dst[k]
///   g       = grad_scale · (σ(score) − label)
///   grad[k] += g · dst[k]
///   dst[k]  += float(update_scale · g · src[k])
///
/// in a single pass, returning `score` (callers feed it to LogSigmoid for
/// loss tracking). The (label, grad_scale, update_scale) triple expresses
/// each trainer's historical formula exactly in scalar dispatch:
///   E-step pos/neg     (1|0,  1,  −lr)   g = σ−y,        row −= lr·g·src
///   skip-gram pos/neg  (1|0, −lr,  1)    g = (y−σ)·lr,   row += g·src
///   LINE               (y,   −lr,  1)    same as skip-gram
/// (IEEE sign-flip and multiply-commute identities make the unified form
/// bit-identical to the per-trainer originals.)
template <typename A>
inline double NegSamplingUpdate(std::span<double> grad,
                                std::span<const float> src,
                                std::span<float> dst, double label,
                                double grad_scale, double update_scale) {
  if (detail::UseSimd<A>()) {
    return detail::ActiveOps().neg_sampling_update(
        grad.data(), src.data(), dst.data(), src.size(), label, grad_scale,
        update_scale);
  }
  double score = 0.0;
  for (size_t i = 0; i < src.size(); ++i) {
    score += static_cast<double>(A::Load(src[i])) *
             static_cast<double>(A::Load(dst[i]));
  }
  const double g = grad_scale * (Sigmoid(score) - label);
  const double h = update_scale * g;
  for (size_t i = 0; i < src.size(); ++i) {
    const float dk = A::Load(dst[i]);
    grad[i] += g * static_cast<double>(dk);
    A::Store(dst[i],
             dk + static_cast<float>(h * static_cast<double>(A::Load(src[i]))));
  }
  return score;
}

/// init + Σ w[i]·x[i] — double weights against a float row (E-step
/// classifier score; init is the bias so accumulation order matches the
/// historical `score = b; score += w·x` loop).
template <typename A>
inline double DotF64F32(double init, std::span<const double> w,
                        std::span<const float> x) {
  if (detail::UseSimd<A>()) {
    return detail::ActiveOps().dot_f64f32(init, w.data(), x.data(), w.size());
  }
  double acc = init;
  for (size_t i = 0; i < w.size(); ++i) {
    acc += A::Load(w[i]) * static_cast<double>(A::Load(x[i]));
  }
  return acc;
}

/// Two DotF64F32 against the same weights, sharing the weight loads (the
/// E-step triad pair score).
template <typename A>
inline void DotPairF64F32(double init, std::span<const double> w,
                          std::span<const float> x1,
                          std::span<const float> x2, double* out1,
                          double* out2) {
  if (detail::UseSimd<A>()) {
    detail::ActiveOps().dot_pair_f64f32(init, w.data(), x1.data(), x2.data(),
                                        w.size(), out1, out2);
    return;
  }
  double s1 = init;
  double s2 = init;
  for (size_t i = 0; i < w.size(); ++i) {
    const double wk = A::Load(w[i]);
    s1 += wk * static_cast<double>(A::Load(x1[i]));
    s2 += wk * static_cast<double>(A::Load(x2[i]));
  }
  *out1 = s1;
  *out2 = s2;
}

/// init + Σ w[i]·x[i] over double spans with policy loads on w only (the
/// D-step score: features are worker-private, weights are shared).
template <typename A>
inline double DotWeights(double init, std::span<const double> w,
                         std::span<const double> x) {
  if (detail::UseSimd<A>()) {
    return detail::ActiveOps().dot_f64(init, w.data(), x.data(), w.size());
  }
  double acc = init;
  for (size_t i = 0; i < w.size(); ++i) acc += A::Load(w[i]) * x[i];
  return acc;
}

/// row[i] += float(grad[i]) — apply an accumulated double gradient to a
/// float embedding row.
template <typename A>
inline void ApplyGrad(std::span<float> row, std::span<const double> grad) {
  if (detail::UseSimd<A>()) {
    detail::ActiveOps().apply_grad(row.data(), grad.data(), row.size());
    return;
  }
  for (size_t i = 0; i < row.size(); ++i) {
    A::Store(row[i], A::Load(row[i]) + static_cast<float>(grad[i]));
  }
}

/// row[i] −= float(lr · (grad[i] + l2 · row[i])) — gradient application
/// with L2 row decay (E-step line 15).
template <typename A>
inline void ApplyGradDecay(std::span<float> row, std::span<const double> grad,
                           double lr, double l2) {
  if (detail::UseSimd<A>()) {
    detail::ActiveOps().apply_grad_decay(row.data(), grad.data(), lr, l2,
                                         row.size());
    return;
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const float rk = A::Load(row[i]);
    A::Store(row[i],
             rk - static_cast<float>(
                      lr * (grad[i] + l2 * static_cast<double>(rk))));
  }
}

/// Coupled E-step classifier update (Eqs. 22–23):
///   grad[i] += g · w[i];   w[i] −= lr · (g · x[i] + l2 · w[i]).
template <typename A>
inline void ClassifierUpdate(std::span<double> grad, std::span<double> w,
                             std::span<const float> x, double g, double lr,
                             double l2) {
  if (detail::UseSimd<A>()) {
    detail::ActiveOps().classifier_update(grad.data(), w.data(), x.data(), g,
                                          lr, l2, w.size());
    return;
  }
  for (size_t i = 0; i < w.size(); ++i) {
    const double wk = A::Load(w[i]);
    grad[i] += g * wk;
    A::Store(w[i],
             wk - lr * (g * static_cast<double>(A::Load(x[i])) + l2 * wk));
  }
}

/// D-step weight update: w[i] −= lr · (g · x[i] + l2 · w[i]) with policy
/// access on w (features x are worker-private doubles).
template <typename A>
inline void LogRegUpdate(std::span<double> w, std::span<const double> x,
                         double lr, double g, double l2) {
  if (detail::UseSimd<A>()) {
    detail::ActiveOps().logreg_update(w.data(), x.data(), lr, g, l2,
                                      w.size());
    return;
  }
  for (size_t i = 0; i < w.size(); ++i) {
    const double wk = A::Load(w[i]);
    A::Store(w[i], wk - lr * (g * x[i] + l2 * wk));
  }
}

}  // namespace deepdirect::kernels

#endif  // DEEPDIRECT_KERNELS_KERNELS_H_
