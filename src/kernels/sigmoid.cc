#include "kernels/sigmoid.h"

#include <array>

namespace deepdirect::kernels {

namespace {

// One extra entry so interpolation at the right edge reads a real value.
struct Table {
  std::array<float, kSigmoidLutEntries + 1> values;
  Table() {
    for (size_t i = 0; i <= kSigmoidLutEntries; ++i) {
      const double x = -kSigmoidClamp + (2.0 * kSigmoidClamp) *
                                            static_cast<double>(i) /
                                            static_cast<double>(kSigmoidLutEntries);
      values[i] = static_cast<float>(Sigmoid(x));
    }
  }
};

const Table& Lut() {
  static const Table table;
  return table;
}

}  // namespace

double SigmoidLut(double x) {
  if (std::isnan(x)) return x;
  if (x > kSigmoidClamp) x = kSigmoidClamp;
  if (x < -kSigmoidClamp) x = -kSigmoidClamp;
  const double t = (x + kSigmoidClamp) *
                   (static_cast<double>(kSigmoidLutEntries) /
                    (2.0 * kSigmoidClamp));
  size_t i = static_cast<size_t>(t);
  if (i >= kSigmoidLutEntries) i = kSigmoidLutEntries - 1;
  const double frac = t - static_cast<double>(i);
  const auto& lut = Lut().values;
  const double lo = lut[i];
  return lo + frac * (static_cast<double>(lut[i + 1]) - lo);
}

}  // namespace deepdirect::kernels
