// Trace timelines: a thread-sharded span buffer with Chrome trace export.
//
// While the metrics registry (metrics.h) aggregates — histograms lose the
// *when* — the trace buffer keeps every completed span as an event
// {name, tid, t_start, t_end, nesting depth}, so wall-clock time can be
// laid out per thread and inspected in Perfetto / chrome://tracing via the
// Chrome trace_event JSON export.
//
// Recording is cold-path only: a span is appended once, at scope exit,
// under a per-shard mutex (threads map to shards round-robin, so Hogwild
// workers almost never contend). Span *identity* is cheap thread-local
// state: a stable small integer thread id and a nesting-depth counter.
//
// Gating mirrors the registry: the buffer starts disabled and every
// TraceSpan checks one relaxed atomic load; building with
// DEEPDIRECT_ENABLE_METRICS=OFF (DEEPDIRECT_OBS=0) replaces everything
// with inline no-op shells. Nothing here draws from any Rng — tracing can
// never perturb training.
//
// The buffer is bounded (shard_capacity events per shard); once a shard is
// full further spans are dropped and counted, so a runaway span source
// cannot exhaust memory on a long run.

#ifndef DEEPDIRECT_OBS_TRACE_BUFFER_H_
#define DEEPDIRECT_OBS_TRACE_BUFFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

#if DEEPDIRECT_OBS

#include <atomic>
#include <mutex>

namespace deepdirect::obs {

namespace internal {

/// Stable small per-thread id for trace events (assigned on first use;
/// distinct from the shard index, which wraps at kShards).
uint32_t TraceThreadId();

/// Nesting bookkeeping for TraceSpan: Enter returns the depth *before*
/// incrementing (0 = top-level span on this thread).
uint32_t EnterSpanDepth();
void ExitSpanDepth();

}  // namespace internal

/// One completed span.
struct TraceEvent {
  std::string name;
  uint32_t tid = 0;       ///< stable per-thread id (internal::TraceThreadId)
  uint64_t start_ns = 0;  ///< ns since the process trace epoch (steady clock)
  uint64_t end_ns = 0;
  uint32_t depth = 0;     ///< nesting depth at entry (0 = top level)
};

/// Process-wide bounded span store; see the file comment.
class TraceBuffer {
 public:
  /// Default per-shard capacity: kShards shards × 128Ki events ≈ 1M spans.
  static constexpr size_t kDefaultShardCapacity = 128 * 1024;

  /// The process-wide buffer every TraceSpan records into.
  static TraceBuffer& Default();

  TraceBuffer() = default;
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Runtime recording gate; starts disabled.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Appends one completed span to the calling thread's shard. Dropped
  /// (and counted) when the buffer is disabled or the shard is full.
  void Record(TraceEvent event);

  /// All recorded events merged across shards, sorted by start time.
  std::vector<TraceEvent> Events() const;

  /// Events dropped because a shard was full or recording was disabled
  /// mid-span.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Clears every shard and the drop counter (test isolation).
  void Reset();

  /// Caps each shard at `capacity` events (tests shrink this to exercise
  /// the drop path). Existing events beyond the new cap are kept.
  void set_shard_capacity(size_t capacity) { shard_capacity_ = capacity; }

  /// Serializes all events as Chrome trace_event JSON ("X" complete
  /// events, ts/dur in microseconds) loadable in Perfetto.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  util::Status WriteChromeTrace(const std::string& path) const;

  /// Nanoseconds since the process-wide trace epoch (steady clock; the
  /// epoch is anchored on first use).
  static uint64_t NowNs();

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
  };
  Shard shards_[internal::kShards];
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<size_t> shard_capacity_{kDefaultShardCapacity};
};

/// Whether the default buffer is currently recording (one relaxed load).
inline bool TraceEnabled() { return TraceBuffer::Default().enabled(); }

}  // namespace deepdirect::obs

#else  // !DEEPDIRECT_OBS — compiled-out no-op shells with the same API.

namespace deepdirect::obs {

struct TraceEvent {
  std::string name;
  uint32_t tid = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint32_t depth = 0;
};

class TraceBuffer {
 public:
  static constexpr size_t kDefaultShardCapacity = 128 * 1024;
  static TraceBuffer& Default();
  bool enabled() const { return false; }
  void set_enabled(bool) {}
  void Record(TraceEvent) {}
  std::vector<TraceEvent> Events() const { return {}; }
  uint64_t dropped() const { return 0; }
  void Reset() {}
  void set_shard_capacity(size_t) {}
  std::string ToChromeTraceJson() const {
    return "{\"traceEvents\": []}\n";
  }
  util::Status WriteChromeTrace(const std::string& path) const;
  static uint64_t NowNs() { return 0; }
};

inline constexpr bool TraceEnabled() { return false; }

}  // namespace deepdirect::obs

#endif  // DEEPDIRECT_OBS

#endif  // DEEPDIRECT_OBS_TRACE_BUFFER_H_
