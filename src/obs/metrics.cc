#include "obs/metrics.h"

#include <cstdio>
#include <fstream>

#include "util/csv_writer.h"

#if DEEPDIRECT_OBS

namespace deepdirect::obs {

namespace internal {

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

namespace {

double FiniteOrZero(double value) {
  return std::isfinite(value) ? value : 0.0;
}

}  // namespace

namespace internal {

// Doubles print round-trippable; JSON forbids inf/nan, so clamp.
std::string JsonNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", FiniteOrZero(value));
  return buffer;
}

// Metric names are ASCII identifiers; escape the JSON specials anyway so
// the writer never emits malformed output.
std::string JsonString(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace internal

namespace {
using internal::JsonNumber;
using internal::JsonString;
}  // namespace

double Histogram::BucketUpperBound(size_t index) {
  return kMinBucket * std::exp2(static_cast<double>(index));
}

HistogramStats Histogram::Stats() const {
  uint64_t buckets[kBuckets] = {};
  HistogramStats stats;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (const Shard& s : shards_) {
    stats.count += s.count.load(std::memory_order_relaxed);
    stats.sum += s.sum.load(std::memory_order_relaxed);
    min = std::min(min, s.min.load(std::memory_order_relaxed));
    max = std::max(max, s.max.load(std::memory_order_relaxed));
    for (size_t b = 0; b < kBuckets; ++b) {
      buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  if (stats.count == 0) return stats;
  stats.min = min;
  stats.max = max;
  stats.mean = stats.sum / static_cast<double>(stats.count);

  // Quantiles from bucket upper bounds, clamped into [min, max].
  const auto quantile = [&](double q) {
    const uint64_t target = static_cast<uint64_t>(
        q * static_cast<double>(stats.count - 1)) + 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += buckets[b];
      if (seen >= target) {
        return std::min(std::max(BucketUpperBound(b), stats.min), stats.max);
      }
    }
    return stats.max;
  };
  stats.p50 = quantile(0.50);
  stats.p95 = quantile(0.95);
  stats.p99 = quantile(0.99);
  return stats;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.min.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s.max.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += "    " + JsonString(name) + ": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    " + JsonString(name) + ": " + JsonNumber(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    " + JsonString(name) + ": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + JsonNumber(h.sum) +
           ", \"mean\": " + JsonNumber(h.mean) +
           ", \"min\": " + JsonNumber(h.min) +
           ", \"max\": " + JsonNumber(h.max) +
           ", \"p50\": " + JsonNumber(h.p50) +
           ", \"p95\": " + JsonNumber(h.p95) +
           ", \"p99\": " + JsonNumber(h.p99) + "}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"series\": {";
  first = true;
  for (const auto& [name, values] : series) {
    out += first ? "\n" : ",\n";
    out += "    " + JsonString(name) + ": [";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      out += JsonNumber(values[i]);
    }
    out += "]";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

util::Status MetricsSnapshot::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    return util::Status::IOError("cannot open for writing: " + path);
  }
  out << ToJson();
  out.flush();
  if (!out.good()) return util::Status::IOError("write failed: " + path);
  return util::Status::OK();
}

util::Status MetricsSnapshot::WriteCsv(const std::string& path) const {
  util::CsvWriter csv(path);
  if (!csv.ok()) {
    return util::Status::IOError("cannot open for writing: " + path);
  }
  csv.WriteRow({"kind", "name", "field", "value"});
  const auto number = [](double v) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", FiniteOrZero(v));
    return std::string(buffer);
  };
  for (const auto& [name, value] : counters) {
    csv.WriteRow({"counter", name, "value", std::to_string(value)});
  }
  for (const auto& [name, value] : gauges) {
    csv.WriteRow({"gauge", name, "value", number(value)});
  }
  for (const auto& [name, h] : histograms) {
    csv.WriteRow({"histogram", name, "count", std::to_string(h.count)});
    csv.WriteRow({"histogram", name, "sum", number(h.sum)});
    csv.WriteRow({"histogram", name, "mean", number(h.mean)});
    csv.WriteRow({"histogram", name, "min", number(h.min)});
    csv.WriteRow({"histogram", name, "max", number(h.max)});
    csv.WriteRow({"histogram", name, "p50", number(h.p50)});
    csv.WriteRow({"histogram", name, "p95", number(h.p95)});
    csv.WriteRow({"histogram", name, "p99", number(h.p99)});
  }
  for (const auto& [name, values] : series) {
    for (size_t i = 0; i < values.size(); ++i) {
      csv.WriteRow({"series", name, std::to_string(i), number(values[i])});
    }
  }
  csv.Close();
  return util::Status::OK();
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();  // never destroyed: metric
  return *registry;  // pointers cached by call sites must outlive exit paths
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void Registry::Append(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  series_[name].push_back(value);
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Stats();
  }
  snapshot.series = series_;
  return snapshot;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  series_.clear();
}

}  // namespace deepdirect::obs

#else  // !DEEPDIRECT_OBS

namespace deepdirect::obs {

util::Status MetricsSnapshot::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    return util::Status::IOError("cannot open for writing: " + path);
  }
  out << "{}\n";
  return util::Status::OK();
}

util::Status MetricsSnapshot::WriteCsv(const std::string& path) const {
  util::CsvWriter csv(path);
  if (!csv.ok()) {
    return util::Status::IOError("cannot open for writing: " + path);
  }
  csv.WriteRow({"kind", "name", "field", "value"});
  return util::Status::OK();
}

Registry& Registry::Default() {
  static Registry registry;
  return registry;
}

}  // namespace deepdirect::obs

#endif  // DEEPDIRECT_OBS
