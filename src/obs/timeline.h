// Time-series metric snapshots: loss/throughput-vs-wall-clock curves.
//
// The registry's exit dump (--metrics-out) answers "what happened overall";
// a TimelineWriter answers "when": a background thread appends one compact
// JSON line per tick to a JSONL file —
//   {"wall_seconds": W, "counters": {...}, "gauges": {...},
//    "series_len": {...}, "series_last": {...}}
// — so post-hoc tooling can plot any counter, gauge, or loss series
// against wall-clock time without the trainers cooperating.
//
// The writer is a pure reader of the default registry (Snapshot() under
// the registry mutex, relaxed metric loads): it draws from no Rng and
// never writes a metric, so training output is unaffected by sampling.
// One final tick is always appended on Stop(), so even runs shorter than
// the interval yield a curve point.
//
// With the obs layer compiled out (DEEPDIRECT_OBS=0) the writer is an
// inert shell: Start() succeeds, no thread is spawned, nothing is written.

#ifndef DEEPDIRECT_OBS_TIMELINE_H_
#define DEEPDIRECT_OBS_TIMELINE_H_

#include <string>

#include "obs/metrics.h"
#include "util/status.h"

#if DEEPDIRECT_OBS

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <thread>

#include "util/timer.h"

namespace deepdirect::obs {

/// Background JSONL snapshot appender; see the file comment.
class TimelineWriter {
 public:
  /// Configures a writer for `path` ticking every `interval_seconds`
  /// (clamped up to 1ms). Nothing runs until Start().
  TimelineWriter(std::string path, double interval_seconds);

  /// Stops and joins (appending the final tick) if still running.
  ~TimelineWriter();

  /// Opens the file (truncating) and spawns the sampling thread. Returns
  /// an error without spawning when the file cannot be opened.
  util::Status Start();

  /// Appends one final tick, stops the thread, and closes the file.
  /// Idempotent.
  void Stop();

  /// Ticks appended so far (including the final Stop() tick).
  uint64_t ticks() const;

  /// One snapshot line (no trailing newline). Exposed for tests and for
  /// callers that embed timeline lines elsewhere.
  static std::string SnapshotLine(double wall_seconds,
                                  const MetricsSnapshot& snapshot);

  TimelineWriter(const TimelineWriter&) = delete;
  TimelineWriter& operator=(const TimelineWriter&) = delete;

 private:
  void Run();
  void Tick();

  const std::string path_;
  const double interval_seconds_;
  std::ofstream out_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
  uint64_t ticks_ = 0;
  util::Timer timer_;
};

}  // namespace deepdirect::obs

#else  // !DEEPDIRECT_OBS — inert shell.

namespace deepdirect::obs {

class TimelineWriter {
 public:
  TimelineWriter(std::string, double) {}
  util::Status Start() { return util::Status::OK(); }
  void Stop() {}
  uint64_t ticks() const { return 0; }
  static std::string SnapshotLine(double, const MetricsSnapshot&) {
    return "{}";
  }
  TimelineWriter(const TimelineWriter&) = delete;
  TimelineWriter& operator=(const TimelineWriter&) = delete;
};

}  // namespace deepdirect::obs

#endif  // DEEPDIRECT_OBS

#endif  // DEEPDIRECT_OBS_TIMELINE_H_
