// RAII span tracing on top of the metrics registry and the trace buffer.
//
// Two scope types cover the tracing this repo does:
//   * TraceSpan  — marks one named span of work on the current thread and,
//     when the trace buffer is recording, appends a {name, tid, t_start,
//     t_end, depth} event at scope exit (trace_buffer.h). Timeline only;
//     no aggregate metrics.
//   * PhaseScope — a TraceSpan that *also* aggregates: on destruction it
//     records the span's wall time into the histogram
//     "phase.<name>.seconds" and bumps the counter "phase.<name>.calls" in
//     the default registry.
// Scopes are intended for coarse phases (graph loading, E-Step, epochs,
// checkpoint writes) — construction may do registry lookups under a mutex
// — never for per-step instrumentation.
//
// The two gates are independent: the registry gate (Registry::set_enabled)
// controls the aggregate metrics, the buffer gate
// (TraceBuffer::set_enabled) controls timeline events, and either can be
// on without the other. When both are disabled (runtime) or the layer is
// compiled out, constructing a scope does nothing measurable. A gate that
// turns off mid-span suppresses that span's teardown recording — a span
// must never write into a registry or buffer the owner has switched off.

#ifndef DEEPDIRECT_OBS_TRACE_H_
#define DEEPDIRECT_OBS_TRACE_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace_buffer.h"
#include "util/timer.h"

namespace deepdirect::obs {

#if DEEPDIRECT_OBS

/// RAII timeline span; records one TraceEvent into the default buffer at
/// scope exit when tracing is enabled.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name) {
    if (!TraceEnabled()) return;
    active_ = true;
    name_ = std::move(name);
    depth_ = internal::EnterSpanDepth();
    start_ns_ = TraceBuffer::NowNs();
  }

  ~TraceSpan() {
    if (!active_) return;
    internal::ExitSpanDepth();
    // Record() re-checks the gate: a span that outlives a set_enabled(false)
    // is dropped (and counted), never recorded late.
    TraceBuffer::Default().Record({std::move(name_),
                                   internal::TraceThreadId(), start_ns_,
                                   TraceBuffer::NowNs(), depth_});
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_ = false;
  std::string name_;
  uint32_t depth_ = 0;
  uint64_t start_ns_ = 0;
};

#else  // !DEEPDIRECT_OBS

class TraceSpan {
 public:
  explicit TraceSpan(const std::string&) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif  // DEEPDIRECT_OBS

/// RAII span that times `phase.<name>` into the default registry and
/// mirrors the span into the trace buffer.
class PhaseScope {
 public:
  explicit PhaseScope(const std::string& name) : span_(name) {
    if (!Enabled()) return;
    Registry& registry = Registry::Default();
    seconds_ = registry.GetHistogram("phase." + name + ".seconds");
    registry.GetCounter("phase." + name + ".calls")->Add(1);
    timer_.Reset();
  }

  ~PhaseScope() {
    // Re-check the gate: when recording was switched off between
    // construction and teardown the registry must stay untouched.
    if (seconds_ != nullptr && Enabled()) {
      seconds_->Observe(timer_.ElapsedSeconds());
    }
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  TraceSpan span_;
  Histogram* seconds_ = nullptr;
  util::Timer timer_;
};

}  // namespace deepdirect::obs

#endif  // DEEPDIRECT_OBS_TRACE_H_
