// RAII phase tracing on top of the metrics registry.
//
// A PhaseScope marks one named span of work (graph loading, E-Step,
// D-Step, ...). On destruction it records the span's wall time into the
// histogram "phase.<name>.seconds" and bumps the counter
// "phase.<name>.calls" in the default registry. Scopes are intended for
// coarse phases — construction does two registry lookups under a mutex —
// never for per-step instrumentation.
//
// When the registry is disabled (runtime) or the layer is compiled out,
// constructing a scope does nothing measurable.

#ifndef DEEPDIRECT_OBS_TRACE_H_
#define DEEPDIRECT_OBS_TRACE_H_

#include <string>

#include "obs/metrics.h"
#include "util/timer.h"

namespace deepdirect::obs {

/// RAII span that times `phase.<name>` into the default registry.
class PhaseScope {
 public:
  explicit PhaseScope(const std::string& name) {
    if (!Enabled()) return;
    Registry& registry = Registry::Default();
    seconds_ = registry.GetHistogram("phase." + name + ".seconds");
    registry.GetCounter("phase." + name + ".calls")->Add(1);
    timer_.Reset();
  }

  ~PhaseScope() {
    if (seconds_ != nullptr) seconds_->Observe(timer_.ElapsedSeconds());
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Histogram* seconds_ = nullptr;
  util::Timer timer_;
};

}  // namespace deepdirect::obs

#endif  // DEEPDIRECT_OBS_TRACE_H_
