// Training observability: a lightweight, thread-safe metrics registry.
//
// Three metric kinds cover the training telemetry this repo emits:
//   * Counter   — monotonically increasing event count (sampler collisions,
//                 loaded ties, extractor calls);
//   * Gauge     — last-value-wins scalar (examples/sec of the latest run);
//   * Histogram — value distribution with count/sum/min/max and log2
//                 buckets for quantile estimates (phase durations,
//                 per-worker step counts).
// Counters and histograms are sharded: each thread writes a relaxed-atomic
// cell chosen by a thread-local shard index, so Hogwild workers never
// contend on one cache line; shards are merged when a Snapshot is taken.
// The registry additionally stores *series* — append-only value lists
// (per-epoch losses) recorded under a mutex on cold paths only.
//
// Two gates keep the disabled cost negligible:
//   * compile time — building with DEEPDIRECT_OBS=0 (CMake option
//     DEEPDIRECT_ENABLE_METRICS=OFF) replaces every class below with an
//     inline no-op shell, so instrumented call sites compile away;
//   * run time    — the registry starts disabled; recording call sites gate
//     on obs::Enabled() (one relaxed atomic load), and surfaces that want
//     telemetry (tdl_cli --metrics-out, DD_BENCH_METRICS) switch it on.
// Instrumentation must never perturb training: nothing in this layer draws
// from any Rng, and loss/timing taps read values the trainers already
// compute.

#ifndef DEEPDIRECT_OBS_METRICS_H_
#define DEEPDIRECT_OBS_METRICS_H_

#ifndef DEEPDIRECT_OBS
#define DEEPDIRECT_OBS 1
#endif

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

#if DEEPDIRECT_OBS

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>

namespace deepdirect::obs {

namespace internal {

/// Shard count for counters and histograms (power of two). Eight shards
/// comfortably cover the worker counts this repo runs (hardware threads).
inline constexpr size_t kShards = 8;

/// Stable per-thread shard index in [0, kShards).
size_t ThreadShard();

/// JSON fragment helpers shared by the snapshot, trace, and timeline
/// writers: a quoted/escaped string and a finite (inf/nan-clamped) number.
std::string JsonString(const std::string& text);
std::string JsonNumber(double value);

/// Relaxed-atomic add on a double cell (portable CAS; atomic<double>::
/// fetch_add is not guaranteed lock-free everywhere).
inline void AtomicAddDouble(std::atomic<double>& cell, double delta) {
  double expected = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(expected, expected + delta,
                                     std::memory_order_relaxed)) {
  }
}

/// Relaxed-atomic min/max update on a double cell.
inline void AtomicMinDouble(std::atomic<double>& cell, double value) {
  double expected = cell.load(std::memory_order_relaxed);
  while (value < expected &&
         !cell.compare_exchange_weak(expected, value,
                                     std::memory_order_relaxed)) {
  }
}
inline void AtomicMaxDouble(std::atomic<double>& cell, double value) {
  double expected = cell.load(std::memory_order_relaxed);
  while (value > expected &&
         !cell.compare_exchange_weak(expected, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace internal

/// Monotonic event counter, sharded per thread.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Lock-free relaxed add on this thread's shard.
  void Add(uint64_t delta = 1) {
    shards_[internal::ThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Merged value across shards.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every shard (test isolation; not linearizable vs. writers).
  void Reset() {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell shards_[internal::kShards];
};

/// Last-value-wins scalar.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged histogram statistics exported in snapshots.
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;  ///< 0 when count == 0
  double mean = 0.0;
  double p50 = 0.0;  ///< bucket-upper-bound estimates
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Value-distribution tracker, sharded per thread. Buckets are log2-spaced
/// from kMinBucket, so one histogram serves microsecond phase timings and
/// million-step worker budgets alike.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;
  static constexpr double kMinBucket = 1e-9;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Lock-free relaxed record on this thread's shard.
  void Observe(double value) {
    Shard& s = shards_[internal::ThreadShard()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    internal::AtomicAddDouble(s.sum, value);
    internal::AtomicMinDouble(s.min, value);
    internal::AtomicMaxDouble(s.max, value);
    s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Merges all shards into summary statistics.
  HistogramStats Stats() const;

  /// Zeroes every shard (test isolation; not linearizable vs. writers).
  void Reset();

  /// Upper bound of bucket `index` (the quantile estimate resolution).
  static double BucketUpperBound(size_t index);

 private:
  static size_t BucketIndex(double value) {
    if (!(value > kMinBucket)) return 0;
    const int exponent = static_cast<int>(std::log2(value / kMinBucket));
    return std::min<size_t>(kBuckets - 1,
                            static_cast<size_t>(std::max(exponent, 0)) + 1);
  }

  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::atomic<uint64_t> buckets[kBuckets] = {};
  };
  Shard shards_[internal::kShards];
};

/// One merged, immutable view of a registry, exportable as JSON or CSV.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
  std::map<std::string, std::vector<double>> series;

  /// Whether no metric of any kind was recorded.
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           series.empty();
  }

  /// Serializes to a JSON object with "counters"/"gauges"/"histograms"/
  /// "series" sections. Non-finite values are clamped to 0 so the output is
  /// always strict JSON.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  util::Status WriteJson(const std::string& path) const;

  /// Writes long-form CSV rows (kind, name, field, value) to `path`.
  util::Status WriteCsv(const std::string& path) const;
};

/// Named metric registry. Get* registers on first use (under a mutex) and
/// returns a stable pointer the call site may cache; the metric operations
/// themselves are lock-free.
class Registry {
 public:
  /// The process-wide registry every built-in instrumentation point uses.
  static Registry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Appends one value to the named series (cold paths only: per epoch,
  /// per reporting window — never per SGD step).
  void Append(const std::string& name, double value);

  /// Runtime recording gate; starts disabled.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Merges every metric into one snapshot.
  MetricsSnapshot Snapshot() const;

  /// Zeroes all values and clears series. Cached metric pointers stay
  /// valid (metrics are reset in place, never deallocated).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::vector<double>> series_;
  std::atomic<bool> enabled_{false};
};

/// Whether the default registry is currently recording. Instrumentation
/// call sites gate on this (one relaxed load) before touching metrics.
inline bool Enabled() { return Registry::Default().enabled(); }

}  // namespace deepdirect::obs

#else  // !DEEPDIRECT_OBS — compiled-out no-op shells with the same API.

namespace deepdirect::obs {

struct HistogramStats {
  uint64_t count = 0;
  double sum = 0.0, min = 0.0, max = 0.0, mean = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

class Counter {
 public:
  void Add(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(double) {}
  double Value() const { return 0.0; }
  void Reset() {}
};

class Histogram {
 public:
  void Observe(double) {}
  HistogramStats Stats() const { return {}; }
  void Reset() {}
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
  std::map<std::string, std::vector<double>> series;
  bool empty() const { return true; }
  std::string ToJson() const { return "{}"; }
  util::Status WriteJson(const std::string& path) const;
  util::Status WriteCsv(const std::string& path) const;
};

class Registry {
 public:
  static Registry& Default();
  Counter* GetCounter(const std::string&) { return &counter_; }
  Gauge* GetGauge(const std::string&) { return &gauge_; }
  Histogram* GetHistogram(const std::string&) { return &histogram_; }
  void Append(const std::string&, double) {}
  bool enabled() const { return false; }
  void set_enabled(bool) {}
  MetricsSnapshot Snapshot() const { return {}; }
  void Reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

inline constexpr bool Enabled() { return false; }

}  // namespace deepdirect::obs

#endif  // DEEPDIRECT_OBS

#endif  // DEEPDIRECT_OBS_METRICS_H_
