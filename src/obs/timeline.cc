#include "obs/timeline.h"

#if DEEPDIRECT_OBS

#include <algorithm>
#include <chrono>

namespace deepdirect::obs {

TimelineWriter::TimelineWriter(std::string path, double interval_seconds)
    : path_(std::move(path)),
      interval_seconds_(std::max(interval_seconds, 1e-3)) {}

TimelineWriter::~TimelineWriter() { Stop(); }

util::Status TimelineWriter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return util::Status::OK();
  out_.open(path_, std::ios::trunc);
  if (!out_.good()) {
    return util::Status::IOError("cannot open for writing: " + path_);
  }
  timer_.Reset();
  stopping_ = false;
  running_ = true;
  thread_ = std::thread([this] { Run(); });
  return util::Status::OK();
}

void TimelineWriter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  Tick();  // final point: short runs still get at least one sample
  out_.close();
  running_ = false;
}

uint64_t TimelineWriter::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

void TimelineWriter::Run() {
  const auto interval = std::chrono::duration<double>(interval_seconds_);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) break;
    Tick();
  }
}

void TimelineWriter::Tick() {
  // Callers hold mu_. Snapshot() takes only the registry mutex, so there is
  // no lock-order cycle: nothing acquires mu_ while holding registry locks.
  out_ << SnapshotLine(timer_.ElapsedSeconds(),
                       Registry::Default().Snapshot())
       << '\n';
  out_.flush();
  ++ticks_;
}

std::string TimelineWriter::SnapshotLine(double wall_seconds,
                                         const MetricsSnapshot& snapshot) {
  using internal::JsonNumber;
  using internal::JsonString;
  std::string out =
      "{\"wall_seconds\": " + JsonNumber(wall_seconds) + ", \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ", ";
    first = false;
    out += JsonString(name) + ": " + std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ", ";
    first = false;
    out += JsonString(name) + ": " + JsonNumber(value);
  }
  // Series can grow unbounded; per tick only the length and latest value
  // are needed to reconstruct a curve from consecutive lines.
  out += "}, \"series_len\": {";
  first = true;
  for (const auto& [name, values] : snapshot.series) {
    if (!first) out += ", ";
    first = false;
    out += JsonString(name) + ": " + std::to_string(values.size());
  }
  out += "}, \"series_last\": {";
  first = true;
  for (const auto& [name, values] : snapshot.series) {
    if (values.empty()) continue;
    if (!first) out += ", ";
    first = false;
    out += JsonString(name) + ": " + JsonNumber(values.back());
  }
  out += "}}";
  return out;
}

}  // namespace deepdirect::obs

#endif  // DEEPDIRECT_OBS
