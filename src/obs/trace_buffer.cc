#include "obs/trace_buffer.h"

#include <algorithm>
#include <chrono>
#include <fstream>

#if DEEPDIRECT_OBS

namespace deepdirect::obs {

namespace internal {

uint32_t TraceThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {
thread_local uint32_t span_depth = 0;
}  // namespace

uint32_t EnterSpanDepth() { return span_depth++; }

void ExitSpanDepth() {
  if (span_depth > 0) --span_depth;
}

}  // namespace internal

uint64_t TraceBuffer::NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

TraceBuffer& TraceBuffer::Default() {
  static TraceBuffer* buffer = new TraceBuffer();  // never destroyed, like
  return *buffer;  // Registry::Default(): spans may finish during exit
}

void TraceBuffer::Record(TraceEvent event) {
  if (!enabled()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard& shard = shards_[internal::ThreadShard()];
  const size_t capacity = shard_capacity_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.events.size() >= capacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shard.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  std::vector<TraceEvent> merged;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    merged.insert(merged.end(), shard.events.begin(), shard.events.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return merged;
}

void TraceBuffer::Reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceBuffer::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  // "X" (complete) events with microsecond ts/dur — the minimal shape both
  // chrome://tracing and Perfetto accept without a metadata preamble.
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& event : events) {
    out += first ? "\n" : ",\n";
    first = false;
    const double ts_us = static_cast<double>(event.start_ns) / 1e3;
    const double dur_us =
        static_cast<double>(event.end_ns - event.start_ns) / 1e3;
    out += "  {\"name\": " + internal::JsonString(event.name) +
           ", \"cat\": \"deepdirect\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
           std::to_string(event.tid) +
           ", \"ts\": " + internal::JsonNumber(ts_us) +
           ", \"dur\": " + internal::JsonNumber(dur_us) +
           ", \"args\": {\"depth\": " + std::to_string(event.depth) + "}}";
  }
  out += first ? "]" : "\n]";
  out += ", \"otherData\": {\"dropped_events\": " +
         std::to_string(dropped()) + "}}\n";
  return out;
}

util::Status TraceBuffer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    return util::Status::IOError("cannot open for writing: " + path);
  }
  out << ToChromeTraceJson();
  out.flush();
  if (!out.good()) return util::Status::IOError("write failed: " + path);
  return util::Status::OK();
}

}  // namespace deepdirect::obs

#else  // !DEEPDIRECT_OBS

namespace deepdirect::obs {

TraceBuffer& TraceBuffer::Default() {
  static TraceBuffer buffer;
  return buffer;
}

util::Status TraceBuffer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    return util::Status::IOError("cannot open for writing: " + path);
  }
  out << ToChromeTraceJson();
  if (!out.good()) return util::Status::IOError("write failed: " + path);
  return util::Status::OK();
}

}  // namespace deepdirect::obs

#endif  // DEEPDIRECT_OBS
