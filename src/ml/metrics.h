// Evaluation metrics: accuracy for direction discovery (Sec. 6.2) and AUC
// for the link-prediction experiment (Sec. 6.3), plus generic binary
// classification helpers used in tests.

#ifndef DEEPDIRECT_ML_METRICS_H_
#define DEEPDIRECT_ML_METRICS_H_

#include <cstddef>
#include <vector>

namespace deepdirect::ml {

/// Fraction of predictions matching binary labels (threshold 0.5).
double Accuracy(const std::vector<double>& scores,
                const std::vector<int>& labels);

/// Area under the ROC curve via the rank statistic
/// AUC = (Σ ranks of positives − P(P+1)/2) / (P·N), with midrank handling
/// of tied scores. Returns 0.5 when either class is empty.
double AreaUnderRoc(const std::vector<double>& scores,
                    const std::vector<int>& labels);

/// Mean binary cross-entropy of probabilistic scores against labels.
double LogLoss(const std::vector<double>& scores,
               const std::vector<int>& labels);

/// 2x2 confusion counts at threshold 0.5.
struct Confusion {
  size_t true_positive = 0;
  size_t false_positive = 0;
  size_t true_negative = 0;
  size_t false_negative = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
};

Confusion ConfusionAtHalf(const std::vector<double>& scores,
                          const std::vector<int>& labels);

/// Brier score: mean squared error of probabilistic scores against binary
/// labels. 0 is perfect; 0.25 is an uninformative constant 0.5.
double BrierScore(const std::vector<double>& scores,
                  const std::vector<int>& labels);

/// Expected calibration error over `bins` equal-width probability bins:
/// Σ_b (|b|/n) · |mean confidence_b − empirical accuracy_b|. Measures how
/// trustworthy the directionality values are *as probabilities* (relevant
/// for the quantification application, Sec. 5.2).
double ExpectedCalibrationError(const std::vector<double>& scores,
                                const std::vector<int>& labels, size_t bins);

}  // namespace deepdirect::ml

#endif  // DEEPDIRECT_ML_METRICS_H_
