// Exact t-SNE (van der Maaten & Hinton 2008) for the embedding
// visualization experiment (Fig. 7). O(n²) time and memory — intended for
// the few-thousand-point subnetworks the paper visualizes.

#ifndef DEEPDIRECT_ML_TSNE_H_
#define DEEPDIRECT_ML_TSNE_H_

#include <array>
#include <vector>

#include "ml/matrix.h"
#include "util/random.h"

namespace deepdirect::ml {

/// t-SNE hyper-parameters.
struct TsneConfig {
  double perplexity = 30.0;
  size_t iterations = 500;
  double learning_rate = 200.0;
  /// Early-exaggeration factor applied to P for the first
  /// `exaggeration_iters` iterations.
  double exaggeration = 12.0;
  size_t exaggeration_iters = 100;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  size_t momentum_switch_iter = 250;
  uint64_t seed = 1;
};

/// Embeds the rows of `points` into 2D. Returns one (x, y) per input row.
std::vector<std::array<double, 2>> TsneEmbed2D(const Matrix& points,
                                               const TsneConfig& config);

/// Computes the symmetric joint probabilities P from pairwise squared
/// distances using per-point bandwidths found by binary search on
/// perplexity. Exposed for testing.
std::vector<double> TsneJointProbabilities(
    const std::vector<double>& squared_distances, size_t n, double perplexity);

}  // namespace deepdirect::ml

#endif  // DEEPDIRECT_ML_TSNE_H_
