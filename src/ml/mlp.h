// One-hidden-layer MLP binary classifier.
//
// Implements the paper's future-work extension (Sec. 8): "use a deep neural
// network in D-Step to learn a non-linear directionality function". The
// network is sigmoid(w2 · relu(W1 x + b1) + b2), trained with SGD on
// weighted cross-entropy + L2.

#ifndef DEEPDIRECT_ML_MLP_H_
#define DEEPDIRECT_ML_MLP_H_

#include <span>
#include <vector>

#include "ml/dataset.h"
#include "train/lr_schedule.h"
#include "util/random.h"

namespace deepdirect::ml {

/// Training hyper-parameters for MlpClassifier::Train.
struct MlpConfig {
  size_t hidden_units = 32;
  size_t epochs = 30;
  double learning_rate = 0.05;
  double min_lr_fraction = 0.1;
  double l2 = 1e-4;
  uint64_t seed = 1;

  /// The decay schedule these parameters describe.
  train::LrSchedule Schedule() const {
    return {learning_rate, min_lr_fraction,
            train::LrSchedule::Decay::kInterpolatedLinear};
  }
};

/// Binary classifier with one ReLU hidden layer.
class MlpClassifier {
 public:
  /// Creates a model with He-initialized first-layer weights.
  MlpClassifier(size_t num_features, size_t hidden_units, uint64_t seed);

  size_t num_features() const { return num_features_; }
  size_t hidden_units() const { return hidden_units_; }

  /// Probability of the positive class.
  double Predict(std::span<const double> features) const;

  /// SGD training; returns final average training cross-entropy.
  double Train(const Dataset& data, const MlpConfig& config);

 private:
  // Forward pass storing hidden pre-activations in `hidden` (resized).
  double Forward(std::span<const double> x, std::vector<double>& hidden) const;

  size_t num_features_;
  size_t hidden_units_;
  std::vector<double> w1_;  // hidden_units x num_features, row-major
  std::vector<double> b1_;  // hidden_units
  std::vector<double> w2_;  // hidden_units
  double b2_ = 0.0;
};

}  // namespace deepdirect::ml

#endif  // DEEPDIRECT_ML_MLP_H_
