// Quantitative separability scores for 2D embeddings.
//
// The paper's Fig. 7 argues visually that DeepDirect's tie embeddings
// separate the two direction classes while LINE's do not. A CI-runnable
// reproduction needs numbers, so we score the t-SNE output with (a) k-NN
// label agreement and (b) nearest-centroid accuracy: both near 1.0 for
// separable classes and near max(class prior, 0.5) for mixed ones.

#ifndef DEEPDIRECT_ML_SEPARABILITY_H_
#define DEEPDIRECT_ML_SEPARABILITY_H_

#include <array>
#include <cstddef>
#include <vector>

#include "ml/matrix.h"

namespace deepdirect::ml {

/// Fraction of points whose majority label among the k nearest neighbors
/// (excluding the point itself) matches their own label.
double KnnLabelAgreement(const std::vector<std::array<double, 2>>& points,
                         const std::vector<int>& labels, size_t k);

/// Accuracy of classifying each point by its nearer class centroid.
double NearestCentroidAccuracy(
    const std::vector<std::array<double, 2>>& points,
    const std::vector<int>& labels);

/// High-dimensional variants over matrix rows (used to score embeddings
/// *before* the 2D projection, which can only lose separability).
double KnnLabelAgreementHighDim(const Matrix& points,
                                const std::vector<int>& labels, size_t k);
double NearestCentroidAccuracyHighDim(const Matrix& points,
                                      const std::vector<int>& labels);

}  // namespace deepdirect::ml

#endif  // DEEPDIRECT_ML_SEPARABILITY_H_
