// Small dense linear-algebra kernels: matrix multiply, thin QR
// (modified Gram-Schmidt), a Jacobi eigensolver for small symmetric
// matrices, and randomized truncated SVD built from the three.
//
// Sized for the GraRep use case (dense n×n with n in the low thousands,
// target rank tens); not a general-purpose BLAS.

#ifndef DEEPDIRECT_ML_LINALG_H_
#define DEEPDIRECT_ML_LINALG_H_

#include <cstddef>
#include <vector>

#include "util/random.h"

namespace deepdirect::ml {

/// Row-major double matrix view helpers operate on flat vectors; `rows`
/// and `cols` describe the shape.
struct DMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<double> values;

  DMatrix() = default;
  DMatrix(size_t r, size_t c) : rows(r), cols(c), values(r * c, 0.0) {}

  double& At(size_t i, size_t j) { return values[i * cols + j]; }
  double At(size_t i, size_t j) const { return values[i * cols + j]; }
};

/// C = A · B.
DMatrix MatMul(const DMatrix& a, const DMatrix& b);

/// C = Aᵀ · B.
DMatrix MatMulTransposedA(const DMatrix& a, const DMatrix& b);

/// In-place thin QR by modified Gram-Schmidt: orthonormalizes the columns
/// of `m` (rows × cols, rows ≥ cols). Near-dependent columns are replaced
/// with zeros.
void OrthonormalizeColumns(DMatrix& m);

/// Jacobi eigendecomposition of a small symmetric matrix. Returns
/// eigenvalues (descending) and the matching eigenvectors as the columns
/// of `eigenvectors`.
void SymmetricEigen(const DMatrix& symmetric, std::vector<double>* eigenvalues,
                    DMatrix* eigenvectors, size_t max_sweeps = 50);

/// Randomized truncated SVD (Halko-Martinsson-Tropp): returns U_k·Σ_k^{1/2}
/// — the factor embedding GraRep uses — for the top `rank` singular
/// directions of `m`, using `oversample` extra probe columns and
/// `power_iterations` subspace-power refinements.
DMatrix TruncatedSvdFactor(const DMatrix& m, size_t rank, size_t oversample,
                           size_t power_iterations, util::Rng& rng);

}  // namespace deepdirect::ml

#endif  // DEEPDIRECT_ML_LINALG_H_
