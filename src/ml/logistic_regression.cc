#include "ml/logistic_regression.h"

#include <cmath>
#include <numeric>

#include "ml/matrix.h"

namespace deepdirect::ml {

double LogisticRegression::Score(std::span<const double> features) const {
  DD_CHECK_EQ(features.size(), weights_.size());
  double score = bias_;
  for (size_t j = 0; j < weights_.size(); ++j) {
    score += weights_[j] * features[j];
  }
  return score;
}

double LogisticRegression::Predict(std::span<const double> features) const {
  return Sigmoid(Score(features));
}

double LogisticRegression::Train(const Dataset& data,
                                 const LogisticRegressionConfig& config) {
  DD_CHECK_EQ(data.num_features(), weights_.size());
  if (data.size() == 0) return 0.0;

  util::Rng rng(config.seed);
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  const size_t total_steps = config.epochs * data.size();
  size_t step = 0;
  double last_epoch_loss = 0.0;

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.shuffle) rng.Shuffle(order);
    double epoch_loss = 0.0;
    double weight_total = 0.0;
    for (size_t i : order) {
      const double progress =
          static_cast<double>(step) / static_cast<double>(total_steps);
      const double lr =
          config.learning_rate *
          (1.0 - (1.0 - config.min_lr_fraction) * progress);
      ++step;

      const auto x = data.Row(i);
      const double y = data.Label(i);
      const double sample_weight = data.Weight(i);
      const double p = Predict(x);
      // Gradient of weighted cross-entropy wrt score is weight * (p - y).
      const double gradient = sample_weight * (p - y);

      for (size_t j = 0; j < weights_.size(); ++j) {
        weights_[j] -= lr * (gradient * x[j] + config.l2 * weights_[j]);
      }
      bias_ -= lr * gradient;

      const double eps = 1e-12;
      epoch_loss -= sample_weight * (y * std::log(p + eps) +
                                     (1.0 - y) * std::log(1.0 - p + eps));
      weight_total += sample_weight;
    }
    double l2_term = 0.0;
    for (double w : weights_) l2_term += w * w;
    last_epoch_loss =
        (weight_total > 0 ? epoch_loss / weight_total : 0.0) +
        0.5 * config.l2 * l2_term;
  }
  return last_epoch_loss;
}

}  // namespace deepdirect::ml
