#include "ml/logistic_regression.h"

#include <cmath>
#include <numeric>

#include "ml/matrix.h"
#include "train/sgd_driver.h"

namespace deepdirect::ml {

double LogisticRegression::Score(std::span<const double> features) const {
  DD_CHECK_EQ(features.size(), weights_.size());
  double score = bias_;
  for (size_t j = 0; j < weights_.size(); ++j) {
    score += weights_[j] * features[j];
  }
  return score;
}

double LogisticRegression::Predict(std::span<const double> features) const {
  return Sigmoid(Score(features));
}

double LogisticRegression::Train(const Dataset& data,
                                 const LogisticRegressionConfig& config) {
  DD_CHECK_EQ(data.num_features(), weights_.size());
  if (data.size() == 0) return 0.0;

  util::Rng rng(config.seed);
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  const uint64_t n = data.size();
  const uint64_t total_steps = config.epochs * n;
  double last_epoch_loss = 0.0;

  // Every sample is visited exactly once per epoch, so the normalizer is
  // epoch-invariant.
  double weight_total = 0.0;
  for (size_t i = 0; i < n; ++i) weight_total += data.Weight(i);

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.shuffle) rng.Shuffle(order);

    train::SgdOptions options;
    options.steps = n;
    options.step_offset = epoch * n;
    options.total_steps = total_steps;
    options.num_threads = config.num_threads;
    options.lr = config.Schedule();
    options.shard_seed = config.seed;  // body draws no randomness; unused
    options.metrics_prefix = config.metrics_prefix;
    train::SgdDriver driver(options);

    const double epoch_loss = driver.Run(
        rng, [&](auto access, const train::SgdStep& ctx) -> double {
          using A = decltype(access);
          const size_t i = order[ctx.step - epoch * n];
          const auto x = data.Row(i);
          const double y = data.Label(i);
          const double sample_weight = data.Weight(i);

          double score = A::Load(bias_);
          for (size_t j = 0; j < weights_.size(); ++j) {
            score += A::Load(weights_[j]) * x[j];
          }
          const double p = Sigmoid(score);
          // Gradient of weighted cross-entropy wrt score is
          // weight * (p - y).
          const double gradient = sample_weight * (p - y);

          for (size_t j = 0; j < weights_.size(); ++j) {
            const double w = A::Load(weights_[j]);
            A::Store(weights_[j],
                     w - ctx.lr * (gradient * x[j] + config.l2 * w));
          }
          A::Store(bias_, A::Load(bias_) - ctx.lr * gradient);

          const double eps = 1e-12;
          return -sample_weight * (y * std::log(p + eps) +
                                   (1.0 - y) * std::log(1.0 - p + eps));
        });

    double l2_term = 0.0;
    for (double w : weights_) l2_term += w * w;
    last_epoch_loss =
        (weight_total > 0 ? epoch_loss / weight_total : 0.0) +
        0.5 * config.l2 * l2_term;
  }
  return last_epoch_loss;
}

}  // namespace deepdirect::ml
