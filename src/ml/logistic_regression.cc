#include "ml/logistic_regression.h"

#include <cmath>
#include <numeric>
#include <utility>

#include "kernels/kernels.h"
#include "ml/matrix.h"
#include "train/sgd_driver.h"

namespace deepdirect::ml {

double LogisticRegression::Score(std::span<const double> features) const {
  DD_CHECK_EQ(features.size(), weights_.size());
  double score = bias_;
  for (size_t j = 0; j < weights_.size(); ++j) {
    score += weights_[j] * features[j];
  }
  return score;
}

double LogisticRegression::Predict(std::span<const double> features) const {
  return Sigmoid(Score(features));
}

double LogisticRegression::Train(const Dataset& data,
                                 const LogisticRegressionConfig& config) {
  DD_CHECK_EQ(data.num_features(), weights_.size());
  if (data.size() == 0) return 0.0;

  util::Rng rng(config.seed);
  std::vector<uint64_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  const uint64_t n = data.size();
  const uint64_t total_steps = config.epochs * n;
  double last_epoch_loss = 0.0;

  // Every sample is visited exactly once per epoch, so the normalizer is
  // epoch-invariant.
  double weight_total = 0.0;
  for (size_t i = 0; i < n; ++i) weight_total += data.Weight(i);

  train::SgdOptions options;
  options.steps = total_steps;
  options.total_steps = total_steps;
  options.steps_per_epoch = n;
  options.num_threads = config.num_threads;
  options.lr = config.Schedule();
  options.shard_seed = config.seed;  // body draws no randomness; unused
  options.metrics_prefix = config.metrics_prefix;
  options.epoch_start = [&](uint64_t) {
    if (config.shuffle) rng.Shuffle(order);
  };
  options.epoch_end = [&](const train::EpochEnd& boundary) {
    double l2_term = 0.0;
    for (double w : weights_) l2_term += w * w;
    last_epoch_loss =
        (weight_total > 0 ? boundary.loss / weight_total : 0.0) +
        0.5 * config.l2 * l2_term;
  };

  // The shuffled visit order is cumulative state (each epoch permutes the
  // previous epoch's order), so it is part of the snapshot alongside the
  // parameters.
  train::CheckpointOptions ckpt_options = config.checkpoint;
  if (ckpt_options.trainer.empty()) ckpt_options.trainer = "logreg";
  train::Checkpointer checkpointer(
      ckpt_options,
      train::RunShape{total_steps, n, config.seed, options.lr},
      [&](train::CheckpointWriter& writer) {
        writer.AddVector("weights", weights_);
        writer.AddPod("bias", bias_);
        writer.AddVector("order", order);
        writer.AddPod("last_epoch_loss", last_epoch_loss);
      },
      [&](const train::CheckpointData& ckpt) -> util::Status {
        std::vector<double> weights;
        DD_RETURN_NOT_OK(
            ckpt.ReadVector("weights", &weights, weights_.size()));
        double bias = 0.0;
        DD_RETURN_NOT_OK(ckpt.ReadPod("bias", &bias));
        std::vector<uint64_t> saved_order;
        DD_RETURN_NOT_OK(ckpt.ReadVector("order", &saved_order, n));
        double saved_loss = 0.0;
        DD_RETURN_NOT_OK(ckpt.ReadPod("last_epoch_loss", &saved_loss));
        weights_ = std::move(weights);
        bias_ = bias;
        order = std::move(saved_order);
        last_epoch_loss = saved_loss;
        return util::Status::OK();
      });
  options.start_epoch = checkpointer.Resume(rng);
  options.checkpointer = &checkpointer;

  train::SgdDriver driver(options);
  driver.Run(rng, [&](auto access, const train::SgdStep& ctx) -> double {
    using A = decltype(access);
    const size_t i = order[ctx.step % n];
    const auto x = data.Row(i);
    const double y = data.Label(i);
    const double sample_weight = data.Weight(i);

    const double score = kernels::DotWeights<A>(A::Load(bias_), weights_, x);
    const double p = Sigmoid(score);
    // Gradient of weighted cross-entropy wrt score is weight * (p - y).
    const double gradient = sample_weight * (p - y);

    kernels::LogRegUpdate<A>(weights_, x, ctx.lr, gradient, config.l2);
    A::Store(bias_, A::Load(bias_) - ctx.lr * gradient);

    const double eps = 1e-12;
    return -sample_weight *
           (y * std::log(p + eps) + (1.0 - y) * std::log(1.0 - p + eps));
  });
  return last_epoch_loss;
}

}  // namespace deepdirect::ml
