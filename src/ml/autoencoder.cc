#include "ml/autoencoder.h"

#include <cmath>
#include <numeric>

#include "ml/matrix.h"
#include "util/check.h"

namespace deepdirect::ml {

DenseLayer::DenseLayer(size_t in_dims, size_t out_dims, util::Rng& rng)
    : in_dims_(in_dims),
      out_dims_(out_dims),
      weights_(in_dims * out_dims),
      bias_(out_dims, 0.0) {
  DD_CHECK_GT(in_dims, 0u);
  DD_CHECK_GT(out_dims, 0u);
  const double scale =
      std::sqrt(6.0 / static_cast<double>(in_dims + out_dims));
  for (double& w : weights_) w = rng.NextDoubleIn(-scale, scale);
}

void DenseLayer::Forward(std::span<const double> in,
                         std::span<double> out) const {
  DD_CHECK_EQ(in.size(), in_dims_);
  DD_CHECK_EQ(out.size(), out_dims_);
  for (size_t o = 0; o < out_dims_; ++o) {
    const double* row = weights_.data() + o * in_dims_;
    double z = bias_[o];
    for (size_t i = 0; i < in_dims_; ++i) z += row[i] * in[i];
    out[o] = Sigmoid(z);
  }
}

void DenseLayer::Backward(std::span<const double> in,
                          std::span<const double> out,
                          std::span<const double> delta_out,
                          std::span<double> delta_in, double lr, double l2) {
  DD_CHECK_EQ(in.size(), in_dims_);
  DD_CHECK_EQ(out.size(), out_dims_);
  DD_CHECK_EQ(delta_out.size(), out_dims_);
  if (!delta_in.empty()) {
    DD_CHECK_EQ(delta_in.size(), in_dims_);
    std::fill(delta_in.begin(), delta_in.end(), 0.0);
  }
  for (size_t o = 0; o < out_dims_; ++o) {
    // dLoss/dz through the sigmoid.
    const double dz = delta_out[o] * out[o] * (1.0 - out[o]);
    if (dz == 0.0 && l2 == 0.0) continue;
    double* row = weights_.data() + o * in_dims_;
    for (size_t i = 0; i < in_dims_; ++i) {
      if (!delta_in.empty()) delta_in[i] += dz * row[i];
      row[i] -= lr * (dz * in[i] + l2 * row[i]);
    }
    bias_[o] -= lr * dz;
  }
}

Autoencoder::Autoencoder(size_t input_dims, const AutoencoderConfig& config)
    : input_dims_(input_dims) {
  DD_CHECK_GT(input_dims, 0u);
  DD_CHECK(!config.encoder_dims.empty());
  util::Rng rng(config.seed);

  std::vector<size_t> dims;
  dims.push_back(input_dims);
  for (size_t d : config.encoder_dims) dims.push_back(d);
  encoder_layers_ = config.encoder_dims.size();
  code_dims_ = config.encoder_dims.back();

  // Encoder.
  for (size_t layer = 0; layer < encoder_layers_; ++layer) {
    layers_.emplace_back(dims[layer], dims[layer + 1], rng);
  }
  // Mirrored decoder.
  for (size_t layer = encoder_layers_; layer > 0; --layer) {
    layers_.emplace_back(dims[layer], dims[layer - 1], rng);
  }
}

void Autoencoder::ForwardAll(
    std::span<const double> input,
    std::vector<std::vector<double>>& activations) const {
  DD_CHECK_EQ(input.size(), input_dims_);
  activations.resize(layers_.size() + 1);
  activations[0].assign(input.begin(), input.end());
  for (size_t layer = 0; layer < layers_.size(); ++layer) {
    activations[layer + 1].resize(layers_[layer].out_dims());
    layers_[layer].Forward(activations[layer], activations[layer + 1]);
  }
}

void Autoencoder::Encode(std::span<const double> input,
                         std::span<double> code) const {
  DD_CHECK_EQ(code.size(), code_dims_);
  std::vector<double> current(input.begin(), input.end());
  std::vector<double> next;
  for (size_t layer = 0; layer < encoder_layers_; ++layer) {
    next.resize(layers_[layer].out_dims());
    layers_[layer].Forward(current, next);
    current.swap(next);
  }
  std::copy(current.begin(), current.end(), code.begin());
}

void Autoencoder::Reconstruct(std::span<const double> input,
                              std::span<double> output) const {
  DD_CHECK_EQ(output.size(), input_dims_);
  std::vector<std::vector<double>> activations;
  ForwardAll(input, activations);
  std::copy(activations.back().begin(), activations.back().end(),
            output.begin());
}

double Autoencoder::Train(const std::vector<std::vector<double>>& rows,
                          const AutoencoderConfig& config) {
  if (rows.empty()) return 0.0;
  for (const auto& row : rows) DD_CHECK_EQ(row.size(), input_dims_);

  util::Rng rng(config.seed ^ 0x5bd1e995u);
  std::vector<size_t> order(rows.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<std::vector<double>> activations;
  std::vector<std::vector<double>> deltas(layers_.size() + 1);
  const uint64_t total_steps =
      static_cast<uint64_t>(config.epochs) * rows.size();
  uint64_t step = 0;
  double last_epoch_error = 0.0;

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_error = 0.0;
    for (size_t index : order) {
      const double lr = config.Schedule().At(step, total_steps);
      ++step;

      const auto& x = rows[index];
      ForwardAll(x, activations);

      // Output delta: β-weighted squared reconstruction error.
      auto& out_delta = deltas[layers_.size()];
      out_delta.resize(input_dims_);
      const auto& reconstruction = activations.back();
      double error = 0.0;
      for (size_t i = 0; i < input_dims_; ++i) {
        const double weight =
            x[i] != 0.0 ? config.nonzero_weight : 1.0;
        const double diff = reconstruction[i] - x[i];
        out_delta[i] = 2.0 * weight * diff;
        error += weight * diff * diff;
      }
      epoch_error += error / static_cast<double>(input_dims_);

      // Backprop through all layers.
      for (size_t layer = layers_.size(); layer > 0; --layer) {
        auto& delta_in = deltas[layer - 1];
        delta_in.resize(layers_[layer - 1].in_dims());
        layers_[layer - 1].Backward(
            activations[layer - 1], activations[layer], deltas[layer],
            layer > 1 ? std::span<double>(delta_in) : std::span<double>(),
            lr, config.l2);
      }
    }
    last_epoch_error = epoch_error / static_cast<double>(rows.size());
  }
  return last_epoch_error;
}

}  // namespace deepdirect::ml
