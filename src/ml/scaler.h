// Per-feature standardization (zero mean, unit variance). The hand-crafted
// features mix scales wildly (raw degrees vs. 1/distance-sum closeness), so
// the HF model standardizes before logistic regression.

#ifndef DEEPDIRECT_ML_SCALER_H_
#define DEEPDIRECT_ML_SCALER_H_

#include <span>
#include <vector>

#include "ml/dataset.h"

namespace deepdirect::ml {

/// Fits column means and standard deviations on a dataset and applies
/// (x - mean) / std per column. Columns with zero variance pass through
/// centered only.
class StandardScaler {
 public:
  /// Computes column statistics from `data`.
  void Fit(const Dataset& data);

  /// Standardizes `data` in place using the fitted statistics.
  void Transform(Dataset& data) const;

  /// Standardizes a single feature row in place.
  void TransformRow(std::span<double> row) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace deepdirect::ml

#endif  // DEEPDIRECT_ML_SCALER_H_
