// Flat row-major dataset of double features with binary (possibly soft)
// labels and per-example weights — the training currency of the logistic
// regression and MLP heads.

#ifndef DEEPDIRECT_ML_DATASET_H_
#define DEEPDIRECT_ML_DATASET_H_

#include <span>
#include <vector>

#include "util/check.h"

namespace deepdirect::ml {

/// A dense supervised dataset. Labels are in [0, 1] (soft labels allowed,
/// e.g. the pattern pseudo-labels of Sec. 4.4); weights default to 1.
class Dataset {
 public:
  /// Creates an empty dataset with `num_features` columns.
  explicit Dataset(size_t num_features) : num_features_(num_features) {}

  size_t num_features() const { return num_features_; }
  size_t size() const { return labels_.size(); }

  /// Appends one example. `features` must have num_features() entries.
  void Add(std::span<const double> features, double label,
           double weight = 1.0) {
    DD_CHECK_EQ(features.size(), num_features_);
    DD_CHECK_GE(label, 0.0);
    DD_CHECK_LE(label, 1.0);
    values_.insert(values_.end(), features.begin(), features.end());
    labels_.push_back(label);
    weights_.push_back(weight);
  }

  /// Feature row of example `i`.
  std::span<const double> Row(size_t i) const {
    DD_CHECK_LT(i, size());
    return {values_.data() + i * num_features_, num_features_};
  }

  /// Mutable feature row (used by the scaler).
  std::span<double> MutableRow(size_t i) {
    DD_CHECK_LT(i, size());
    return {values_.data() + i * num_features_, num_features_};
  }

  double Label(size_t i) const {
    DD_CHECK_LT(i, size());
    return labels_[i];
  }
  double Weight(size_t i) const {
    DD_CHECK_LT(i, size());
    return weights_[i];
  }

 private:
  size_t num_features_;
  std::vector<double> values_;
  std::vector<double> labels_;
  std::vector<double> weights_;
};

}  // namespace deepdirect::ml

#endif  // DEEPDIRECT_ML_DATASET_H_
