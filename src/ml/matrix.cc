#include "ml/matrix.h"

#include <cmath>

#include "kernels/sigmoid.h"

namespace deepdirect::ml {

void Matrix::FillUniform(util::Rng& rng, float lo, float hi) {
  for (float& v : data_) {
    v = static_cast<float>(rng.NextDoubleIn(lo, hi));
  }
}

void Matrix::FillZero() {
  std::fill(data_.begin(), data_.end(), 0.0f);
}

double Dot(std::span<const float> a, std::span<const float> b) {
  DD_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

void Axpy(double alpha, std::span<const float> x, std::span<float> y) {
  DD_CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] += static_cast<float>(alpha * static_cast<double>(x[i]));
  }
}

double Norm2(std::span<const float> a) {
  double acc = 0.0;
  for (float v : a) acc += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(acc);
}

double Sigmoid(double x) { return kernels::Sigmoid(x); }

double LogSigmoid(double x) {
  // Clamp to the same ±kSigmoidClamp range as Sigmoid so the loss and its
  // gradient saturate at the same point (extreme and infinite scores give
  // finite, consistent values).
  if (x > kernels::kSigmoidClamp) x = kernels::kSigmoidClamp;
  if (x < -kernels::kSigmoidClamp) x = -kernels::kSigmoidClamp;
  // log(1/(1+e^-x)) = -log1p(e^-x) for x >= 0; x - log1p(e^x) otherwise.
  if (x >= 0.0) return -std::log1p(std::exp(-x));
  return x - std::log1p(std::exp(x));
}

}  // namespace deepdirect::ml
