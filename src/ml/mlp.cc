#include "ml/mlp.h"

#include <cmath>
#include <numeric>

#include "ml/matrix.h"

namespace deepdirect::ml {

MlpClassifier::MlpClassifier(size_t num_features, size_t hidden_units,
                             uint64_t seed)
    : num_features_(num_features),
      hidden_units_(hidden_units),
      w1_(hidden_units * num_features, 0.0),
      b1_(hidden_units, 0.0),
      w2_(hidden_units, 0.0) {
  DD_CHECK_GT(num_features, 0u);
  DD_CHECK_GT(hidden_units, 0u);
  util::Rng rng(seed);
  const double he_scale = std::sqrt(2.0 / static_cast<double>(num_features));
  for (double& w : w1_) w = rng.NextGaussian() * he_scale;
  const double out_scale = std::sqrt(1.0 / static_cast<double>(hidden_units));
  for (double& w : w2_) w = rng.NextGaussian() * out_scale;
}

double MlpClassifier::Forward(std::span<const double> x,
                              std::vector<double>& hidden) const {
  DD_CHECK_EQ(x.size(), num_features_);
  hidden.resize(hidden_units_);
  double score = b2_;
  for (size_t h = 0; h < hidden_units_; ++h) {
    double z = b1_[h];
    const double* row = w1_.data() + h * num_features_;
    for (size_t j = 0; j < num_features_; ++j) z += row[j] * x[j];
    hidden[h] = z;
    if (z > 0.0) score += w2_[h] * z;  // ReLU
  }
  return score;
}

double MlpClassifier::Predict(std::span<const double> features) const {
  std::vector<double> hidden;
  return Sigmoid(Forward(features, hidden));
}

double MlpClassifier::Train(const Dataset& data, const MlpConfig& config) {
  DD_CHECK_EQ(data.num_features(), num_features_);
  if (data.size() == 0) return 0.0;

  util::Rng rng(config.seed);
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  const size_t total_steps = config.epochs * data.size();
  size_t step = 0;
  double last_epoch_loss = 0.0;
  std::vector<double> hidden;

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    double weight_total = 0.0;
    for (size_t i : order) {
      const double lr = config.Schedule().At(step, total_steps);
      ++step;

      const auto x = data.Row(i);
      const double y = data.Label(i);
      const double sample_weight = data.Weight(i);
      const double score = Forward(x, hidden);
      const double p = Sigmoid(score);
      const double delta_out = sample_weight * (p - y);

      // Backprop. Output layer first (uses pre-update hidden activations).
      for (size_t h = 0; h < hidden_units_; ++h) {
        const double activation = hidden[h] > 0.0 ? hidden[h] : 0.0;
        const double grad_w2 = delta_out * activation + config.l2 * w2_[h];
        const double delta_hidden =
            hidden[h] > 0.0 ? delta_out * w2_[h] : 0.0;
        w2_[h] -= lr * grad_w2;
        if (delta_hidden != 0.0) {
          double* row = w1_.data() + h * num_features_;
          for (size_t j = 0; j < num_features_; ++j) {
            row[j] -= lr * (delta_hidden * x[j] + config.l2 * row[j]);
          }
          b1_[h] -= lr * delta_hidden;
        }
      }
      b2_ -= lr * delta_out;

      const double eps = 1e-12;
      epoch_loss -= sample_weight * (y * std::log(p + eps) +
                                     (1.0 - y) * std::log(1.0 - p + eps));
      weight_total += sample_weight;
    }
    last_epoch_loss = weight_total > 0 ? epoch_loss / weight_total : 0.0;
  }
  return last_epoch_loss;
}

}  // namespace deepdirect::ml
