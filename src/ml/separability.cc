#include "ml/separability.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace deepdirect::ml {

namespace {

double SquaredDistance(const std::array<double, 2>& a,
                       const std::array<double, 2>& b) {
  const double dx = a[0] - b[0];
  const double dy = a[1] - b[1];
  return dx * dx + dy * dy;
}

}  // namespace

double KnnLabelAgreement(const std::vector<std::array<double, 2>>& points,
                         const std::vector<int>& labels, size_t k) {
  DD_CHECK_EQ(points.size(), labels.size());
  const size_t n = points.size();
  if (n <= 1) return 0.0;
  const size_t effective_k = std::min(k, n - 1);

  size_t agree = 0;
  std::vector<std::pair<double, size_t>> dist(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      dist[j] = {SquaredDistance(points[i], points[j]), j};
    }
    dist[i].first = std::numeric_limits<double>::infinity();
    std::nth_element(dist.begin(), dist.begin() + effective_k - 1,
                     dist.end());
    size_t votes_for_one = 0;
    for (size_t t = 0; t < effective_k; ++t) {
      if (labels[dist[t].second] == 1) ++votes_for_one;
    }
    const int majority = votes_for_one * 2 >= effective_k ? 1 : 0;
    if (majority == labels[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(n);
}

double NearestCentroidAccuracy(
    const std::vector<std::array<double, 2>>& points,
    const std::vector<int>& labels) {
  DD_CHECK_EQ(points.size(), labels.size());
  const size_t n = points.size();
  if (n == 0) return 0.0;

  std::array<double, 2> centroid0{0.0, 0.0}, centroid1{0.0, 0.0};
  size_t count0 = 0, count1 = 0;
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] == 1) {
      centroid1[0] += points[i][0];
      centroid1[1] += points[i][1];
      ++count1;
    } else {
      centroid0[0] += points[i][0];
      centroid0[1] += points[i][1];
      ++count0;
    }
  }
  if (count0 == 0 || count1 == 0) return 1.0;  // single class: trivially separable
  centroid0[0] /= count0;
  centroid0[1] /= count0;
  centroid1[0] /= count1;
  centroid1[1] /= count1;

  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    const int predicted = SquaredDistance(points[i], centroid1) <
                                  SquaredDistance(points[i], centroid0)
                              ? 1
                              : 0;
    if (predicted == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

namespace {

double RowSquaredDistance(std::span<const float> a,
                          std::span<const float> b) {
  double total = 0.0;
  for (size_t k = 0; k < a.size(); ++k) {
    const double delta =
        static_cast<double>(a[k]) - static_cast<double>(b[k]);
    total += delta * delta;
  }
  return total;
}

}  // namespace

double KnnLabelAgreementHighDim(const Matrix& points,
                                const std::vector<int>& labels, size_t k) {
  DD_CHECK_EQ(points.rows(), labels.size());
  const size_t n = points.rows();
  if (n <= 1) return 0.0;
  const size_t effective_k = std::min(k, n - 1);

  size_t agree = 0;
  std::vector<std::pair<double, size_t>> dist(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      dist[j] = {RowSquaredDistance(points.Row(i), points.Row(j)), j};
    }
    dist[i].first = std::numeric_limits<double>::infinity();
    std::nth_element(dist.begin(), dist.begin() + effective_k - 1,
                     dist.end());
    size_t votes_for_one = 0;
    for (size_t t = 0; t < effective_k; ++t) {
      if (labels[dist[t].second] == 1) ++votes_for_one;
    }
    const int majority = votes_for_one * 2 >= effective_k ? 1 : 0;
    if (majority == labels[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(n);
}

double NearestCentroidAccuracyHighDim(const Matrix& points,
                                      const std::vector<int>& labels) {
  DD_CHECK_EQ(points.rows(), labels.size());
  const size_t n = points.rows();
  if (n == 0) return 0.0;
  const size_t d = points.cols();
  std::vector<double> centroid0(d, 0.0), centroid1(d, 0.0);
  size_t count0 = 0, count1 = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto row = points.Row(i);
    auto& centroid = labels[i] == 1 ? centroid1 : centroid0;
    for (size_t k = 0; k < d; ++k) centroid[k] += row[k];
    (labels[i] == 1 ? count1 : count0) += 1;
  }
  if (count0 == 0 || count1 == 0) return 1.0;
  for (size_t k = 0; k < d; ++k) {
    centroid0[k] /= static_cast<double>(count0);
    centroid1[k] /= static_cast<double>(count1);
  }
  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto row = points.Row(i);
    double d0 = 0.0, d1 = 0.0;
    for (size_t k = 0; k < d; ++k) {
      const double delta0 = row[k] - centroid0[k];
      const double delta1 = row[k] - centroid1[k];
      d0 += delta0 * delta0;
      d1 += delta1 * delta1;
    }
    const int predicted = d1 < d0 ? 1 : 0;
    if (predicted == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace deepdirect::ml
