// Row-major dense float matrix used for embedding tables (M and N in the
// paper) and other per-item feature storage. Float precision halves memory
// against double, which matters when |E| × l reaches tens of millions of
// entries; model parameters elsewhere stay double.

#ifndef DEEPDIRECT_ML_MATRIX_H_
#define DEEPDIRECT_ML_MATRIX_H_

#include <span>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace deepdirect::ml {

/// Row-major dense matrix of floats.
class Matrix {
 public:
  /// Creates a rows × cols matrix of zeros.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Mutable view of row `i`.
  std::span<float> Row(size_t i) {
    DD_CHECK_LT(i, rows_);
    return {data_.data() + i * cols_, cols_};
  }

  /// Const view of row `i`.
  std::span<const float> Row(size_t i) const {
    DD_CHECK_LT(i, rows_);
    return {data_.data() + i * cols_, cols_};
  }

  float& At(size_t i, size_t j) {
    DD_CHECK_LT(i, rows_);
    DD_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }
  float At(size_t i, size_t j) const {
    DD_CHECK_LT(i, rows_);
    DD_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }

  /// Raw storage, row-major.
  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  /// Fills entries i.i.d. uniform in [lo, hi). The conventional skip-gram
  /// init is [-0.5/l, 0.5/l).
  void FillUniform(util::Rng& rng, float lo, float hi);

  /// Fills entries with zeros.
  void FillZero();

 private:
  size_t rows_, cols_;
  std::vector<float> data_;
};

/// Dot product of equal-length spans.
double Dot(std::span<const float> a, std::span<const float> b);

/// y += alpha * x for equal-length spans.
void Axpy(double alpha, std::span<const float> x, std::span<float> y);

/// Euclidean (L2) norm.
double Norm2(std::span<const float> a);

/// Numerically safe logistic sigmoid, clamped to ±kernels::kSigmoidClamp
/// (word2vec-style ±6) so extreme and infinite arguments saturate to
/// σ(±6) instead of drifting toward 0/1 — consistent with the SIMD
/// sigmoid lookup table's domain. NaN propagates.
double Sigmoid(double x);

/// log(sigmoid(x)) computed stably, clamped to the same ±6 range as
/// Sigmoid (extreme arguments give the finite value at the clamp bound).
double LogSigmoid(double x);

}  // namespace deepdirect::ml

#endif  // DEEPDIRECT_ML_MATRIX_H_
