#include "ml/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace deepdirect::ml {

DMatrix MatMul(const DMatrix& a, const DMatrix& b) {
  DD_CHECK_EQ(a.cols, b.rows);
  DMatrix c(a.rows, b.cols);
  for (size_t i = 0; i < a.rows; ++i) {
    for (size_t k = 0; k < a.cols; ++k) {
      const double aik = a.At(i, k);
      if (aik == 0.0) continue;
      const double* b_row = b.values.data() + k * b.cols;
      double* c_row = c.values.data() + i * c.cols;
      for (size_t j = 0; j < b.cols; ++j) c_row[j] += aik * b_row[j];
    }
  }
  return c;
}

DMatrix MatMulTransposedA(const DMatrix& a, const DMatrix& b) {
  DD_CHECK_EQ(a.rows, b.rows);
  DMatrix c(a.cols, b.cols);
  for (size_t k = 0; k < a.rows; ++k) {
    const double* a_row = a.values.data() + k * a.cols;
    const double* b_row = b.values.data() + k * b.cols;
    for (size_t i = 0; i < a.cols; ++i) {
      const double aki = a_row[i];
      if (aki == 0.0) continue;
      double* c_row = c.values.data() + i * c.cols;
      for (size_t j = 0; j < b.cols; ++j) c_row[j] += aki * b_row[j];
    }
  }
  return c;
}

void OrthonormalizeColumns(DMatrix& m) {
  for (size_t col = 0; col < m.cols; ++col) {
    // Subtract projections onto all previous columns (modified GS).
    for (size_t prev = 0; prev < col; ++prev) {
      double dot = 0.0;
      for (size_t i = 0; i < m.rows; ++i) {
        dot += m.At(i, col) * m.At(i, prev);
      }
      for (size_t i = 0; i < m.rows; ++i) {
        m.At(i, col) -= dot * m.At(i, prev);
      }
    }
    double norm_sq = 0.0;
    for (size_t i = 0; i < m.rows; ++i) {
      norm_sq += m.At(i, col) * m.At(i, col);
    }
    const double norm = std::sqrt(norm_sq);
    if (norm < 1e-12) {
      for (size_t i = 0; i < m.rows; ++i) m.At(i, col) = 0.0;
      continue;
    }
    for (size_t i = 0; i < m.rows; ++i) m.At(i, col) /= norm;
  }
}

void SymmetricEigen(const DMatrix& symmetric,
                    std::vector<double>* eigenvalues, DMatrix* eigenvectors,
                    size_t max_sweeps) {
  DD_CHECK_EQ(symmetric.rows, symmetric.cols);
  const size_t n = symmetric.rows;
  DMatrix a = symmetric;           // working copy, diagonalized in place
  DMatrix v(n, n);                 // accumulated rotations
  for (size_t i = 0; i < n; ++i) v.At(i, i) = 1.0;

  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off_diagonal = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        off_diagonal += a.At(p, q) * a.At(p, q);
      }
    }
    if (off_diagonal < 1e-20) break;

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a.At(p, q);
        if (std::abs(apq) < 1e-15) continue;
        const double app = a.At(p, p);
        const double aqq = a.At(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/cols p and q of A.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a.At(k, p);
          const double akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a.At(p, k);
          const double aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        // Accumulate rotation into V.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v.At(k, p);
          const double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort descending by eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&a](size_t x, size_t y) {
    return a.At(x, x) > a.At(y, y);
  });
  eigenvalues->resize(n);
  *eigenvectors = DMatrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    (*eigenvalues)[j] = a.At(order[j], order[j]);
    for (size_t i = 0; i < n; ++i) {
      eigenvectors->At(i, j) = v.At(i, order[j]);
    }
  }
}

DMatrix TruncatedSvdFactor(const DMatrix& m, size_t rank, size_t oversample,
                           size_t power_iterations, util::Rng& rng) {
  DD_CHECK_GT(rank, 0u);
  const size_t probes = std::min(m.cols, rank + oversample);
  DD_CHECK_GE(probes, rank);

  // Range finder: Q = orth((M Mᵀ)^p · M · Ω).
  DMatrix omega(m.cols, probes);
  for (double& value : omega.values) value = rng.NextGaussian();
  DMatrix y = MatMul(m, omega);  // rows × probes
  OrthonormalizeColumns(y);
  for (size_t iter = 0; iter < power_iterations; ++iter) {
    DMatrix z = MatMulTransposedA(m, y);  // cols × probes
    OrthonormalizeColumns(z);
    y = MatMul(m, z);
    OrthonormalizeColumns(y);
  }

  // B = Qᵀ M (probes × cols); eigen of B Bᵀ gives the singular structure.
  DMatrix b = MatMulTransposedA(y, m);
  DMatrix bbt(probes, probes);
  for (size_t i = 0; i < probes; ++i) {
    for (size_t j = i; j < probes; ++j) {
      double dot = 0.0;
      for (size_t k = 0; k < b.cols; ++k) dot += b.At(i, k) * b.At(j, k);
      bbt.At(i, j) = dot;
      bbt.At(j, i) = dot;
    }
  }
  std::vector<double> eigenvalues;
  DMatrix eigenvectors;
  SymmetricEigen(bbt, &eigenvalues, &eigenvectors);

  // U_k = Q · W_k; factor = U_k · Σ_k^{1/2}, σ_j = sqrt(λ_j).
  DMatrix factor(m.rows, rank);
  for (size_t j = 0; j < rank; ++j) {
    const double sigma = std::sqrt(std::max(eigenvalues[j], 0.0));
    const double scale = std::sqrt(sigma);
    for (size_t i = 0; i < m.rows; ++i) {
      double u = 0.0;
      for (size_t k = 0; k < probes; ++k) {
        u += y.At(i, k) * eigenvectors.At(k, j);
      }
      factor.At(i, j) = u * scale;
    }
  }
  return factor;
}

}  // namespace deepdirect::ml
