// Binary logistic regression trained with SGD and L2 regularization.
//
// Used twice by the paper: as the directionality-function head of both HF
// (Eq. 5) and DeepDirect's D-Step (Eq. 26, trained "with the L2
// regularization"), warm-startable from the E-Step classifier parameters.

#ifndef DEEPDIRECT_ML_LOGISTIC_REGRESSION_H_
#define DEEPDIRECT_ML_LOGISTIC_REGRESSION_H_

#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "train/checkpoint.h"
#include "train/lr_schedule.h"
#include "util/random.h"

namespace deepdirect::ml {

/// Training hyper-parameters for LogisticRegression::Train.
struct LogisticRegressionConfig {
  size_t epochs = 30;
  double learning_rate = 0.1;
  /// Linear learning-rate decay to `learning_rate * min_lr_fraction`.
  double min_lr_fraction = 0.1;
  /// L2 penalty coefficient on the weights (not the bias).
  double l2 = 1e-4;
  uint64_t seed = 1;
  /// Shuffle example order each epoch.
  bool shuffle = true;
  /// SGD workers (0 = all hardware threads). 1 runs the deterministic
  /// serial path; > 1 runs Hogwild-style lock-free updates, which are fast
  /// but not bit-reproducible.
  size_t num_threads = 1;
  /// Telemetry prefix for the obs registry (one ".run_loss" entry per
  /// epoch); empty disables recording. Hosts that embed this trainer set a
  /// distinguishing prefix (e.g. DeepDirect's D-Step).
  std::string metrics_prefix = "train.logreg";
  /// Crash-safe checkpoint/resume (off unless `checkpoint.dir` is set).
  /// The default trainer tag is "logreg"; hosts that embed this trainer
  /// set a distinguishing tag.
  train::CheckpointOptions checkpoint;

  /// The decay schedule these parameters describe.
  train::LrSchedule Schedule() const {
    return {learning_rate, min_lr_fraction,
            train::LrSchedule::Decay::kInterpolatedLinear};
  }
};

/// Binary logistic regression d(x) = sigmoid(w·x + b).
class LogisticRegression {
 public:
  /// Creates an untrained model with zero weights over `num_features`.
  explicit LogisticRegression(size_t num_features)
      : weights_(num_features, 0.0), bias_(0.0) {}

  /// Creates a model with the given initial parameters (warm start).
  LogisticRegression(std::vector<double> weights, double bias)
      : weights_(std::move(weights)), bias_(bias) {}

  size_t num_features() const { return weights_.size(); }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

  /// Probability of the positive class for one example.
  double Predict(std::span<const double> features) const;

  /// Raw linear score w·x + b.
  double Score(std::span<const double> features) const;

  /// Trains by weighted SGD on cross-entropy + L2. Existing parameters are
  /// the starting point (zero for a fresh model). Returns the final average
  /// training loss (cross-entropy + L2 term), useful for convergence tests.
  double Train(const Dataset& data, const LogisticRegressionConfig& config);

 private:
  std::vector<double> weights_;
  double bias_;
};

}  // namespace deepdirect::ml

#endif  // DEEPDIRECT_ML_LOGISTIC_REGRESSION_H_
