// A small dense autoencoder with SDNE-style reconstruction weighting
// (Wang, Cui & Zhu, KDD 2016): reconstruct each input vector with
// non-zero entries over-weighted by a factor β (so the model cannot win by
// predicting all-zeros on sparse inputs), optionally with a first-order
// "Laplacian" pull that draws the codes of related inputs together.
//
// Implemented from scratch: sigmoid dense layers with manual
// backpropagation and SGD. Sized for the adjacency-row inputs of the
// graph-embedding use case (thousands of dims, hundreds of thousands of
// parameters) — not a general deep-learning framework.

#ifndef DEEPDIRECT_ML_AUTOENCODER_H_
#define DEEPDIRECT_ML_AUTOENCODER_H_

#include <span>
#include <vector>

#include "train/lr_schedule.h"
#include "util/random.h"

namespace deepdirect::ml {

/// One fully-connected layer with sigmoid activation.
class DenseLayer {
 public:
  /// Xavier-initialized layer of shape in_dims → out_dims.
  DenseLayer(size_t in_dims, size_t out_dims, util::Rng& rng);

  size_t in_dims() const { return in_dims_; }
  size_t out_dims() const { return out_dims_; }

  /// Forward pass: out = sigmoid(W·in + b). `out` must have out_dims().
  void Forward(std::span<const double> in, std::span<double> out) const;

  /// Backward pass for one example. `delta_out` holds dLoss/d(activation);
  /// computes dLoss/d(input) into `delta_in` (may be empty to skip) and
  /// applies the SGD update with rate `lr` and weight decay `l2`.
  /// `in` and `out` must be the forward values for this example.
  void Backward(std::span<const double> in, std::span<const double> out,
                std::span<const double> delta_out,
                std::span<double> delta_in, double lr, double l2);

 private:
  size_t in_dims_, out_dims_;
  std::vector<double> weights_;  // out_dims × in_dims, row-major
  std::vector<double> bias_;     // out_dims
};

/// Autoencoder training parameters.
struct AutoencoderConfig {
  /// Hidden layer widths of the encoder, ending in the code width; the
  /// decoder mirrors them. E.g. {256, 64} encodes input → 256 → 64.
  std::vector<size_t> encoder_dims{256, 64};
  size_t epochs = 5;
  double learning_rate = 0.05;
  double min_lr_fraction = 0.1;
  double l2 = 1e-5;
  /// Over-weighting of non-zero input entries in the reconstruction loss
  /// (SDNE's β; 1 disables).
  double nonzero_weight = 10.0;
  uint64_t seed = 63;

  /// The decay schedule these parameters describe.
  train::LrSchedule Schedule() const {
    return {learning_rate, min_lr_fraction,
            train::LrSchedule::Decay::kInterpolatedLinear};
  }
};

/// Dense autoencoder with tied architecture (not tied weights).
class Autoencoder {
 public:
  /// Builds encoder input_dims → dims[0] → … → dims.back() and the
  /// mirrored decoder.
  Autoencoder(size_t input_dims, const AutoencoderConfig& config);

  size_t input_dims() const { return input_dims_; }
  size_t code_dims() const { return code_dims_; }

  /// Encodes one input vector into `code` (code_dims()).
  void Encode(std::span<const double> input, std::span<double> code) const;

  /// Full forward pass; returns the reconstruction into `output`.
  void Reconstruct(std::span<const double> input,
                   std::span<double> output) const;

  /// Trains on the given row-major dataset (rows of length input_dims()).
  /// Returns the final epoch's mean weighted reconstruction error.
  double Train(const std::vector<std::vector<double>>& rows,
               const AutoencoderConfig& config);

 private:
  // Runs all layers, storing every activation in `activations` (layer
  // count + 1 entries, [0] = input copy).
  void ForwardAll(std::span<const double> input,
                  std::vector<std::vector<double>>& activations) const;

  size_t input_dims_;
  size_t code_dims_;
  size_t encoder_layers_;
  std::vector<DenseLayer> layers_;  // encoder then decoder
};

}  // namespace deepdirect::ml

#endif  // DEEPDIRECT_ML_AUTOENCODER_H_
