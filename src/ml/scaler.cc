#include "ml/scaler.h"

#include <cmath>

#include "util/check.h"

namespace deepdirect::ml {

void StandardScaler::Fit(const Dataset& data) {
  const size_t d = data.num_features();
  const size_t n = data.size();
  means_.assign(d, 0.0);
  stds_.assign(d, 1.0);
  if (n == 0) return;

  for (size_t i = 0; i < n; ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < d; ++j) means_[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) means_[j] /= static_cast<double>(n);

  std::vector<double> var(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < d; ++j) {
      const double delta = row[j] - means_[j];
      var[j] += delta * delta;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(n));
    stds_[j] = sd > 1e-12 ? sd : 1.0;
  }
}

void StandardScaler::Transform(Dataset& data) const {
  DD_CHECK_EQ(data.num_features(), means_.size());
  for (size_t i = 0; i < data.size(); ++i) {
    TransformRow(data.MutableRow(i));
  }
}

void StandardScaler::TransformRow(std::span<double> row) const {
  DD_CHECK_EQ(row.size(), means_.size());
  for (size_t j = 0; j < row.size(); ++j) {
    row[j] = (row[j] - means_[j]) / stds_[j];
  }
}

}  // namespace deepdirect::ml
