#include "ml/tsne.h"

#include <algorithm>
#include <cmath>

namespace deepdirect::ml {

namespace {

// Pairwise squared Euclidean distances of matrix rows, row-major n×n.
std::vector<double> PairwiseSquaredDistances(const Matrix& points) {
  const size_t n = points.rows();
  std::vector<double> d2(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const auto ri = points.Row(i);
    for (size_t j = i + 1; j < n; ++j) {
      const auto rj = points.Row(j);
      double acc = 0.0;
      for (size_t k = 0; k < ri.size(); ++k) {
        const double delta =
            static_cast<double>(ri[k]) - static_cast<double>(rj[k]);
        acc += delta * delta;
      }
      d2[i * n + j] = acc;
      d2[j * n + i] = acc;
    }
  }
  return d2;
}

}  // namespace

std::vector<double> TsneJointProbabilities(
    const std::vector<double>& squared_distances, size_t n,
    double perplexity) {
  DD_CHECK_EQ(squared_distances.size(), n * n);
  DD_CHECK_GT(perplexity, 0.0);
  const double target_entropy = std::log(perplexity);

  std::vector<double> conditional(n * n, 0.0);
  std::vector<double> row(n);
  for (size_t i = 0; i < n; ++i) {
    // Binary search the precision beta = 1/(2 sigma^2).
    double beta = 1.0, beta_lo = 0.0, beta_hi = 1e18;
    for (int iter = 0; iter < 64; ++iter) {
      double sum = 0.0;
      double weighted = 0.0;
      for (size_t j = 0; j < n; ++j) {
        if (j == i) {
          row[j] = 0.0;
          continue;
        }
        const double p = std::exp(-beta * squared_distances[i * n + j]);
        row[j] = p;
        sum += p;
        weighted += p * squared_distances[i * n + j];
      }
      if (sum <= 1e-300) {
        // All mass collapsed; lower beta.
        beta_hi = beta;
        beta = (beta_lo + beta) / 2.0;
        continue;
      }
      // Shannon entropy of the conditional distribution.
      const double entropy = std::log(sum) + beta * weighted / sum;
      const double diff = entropy - target_entropy;
      if (std::abs(diff) < 1e-5) break;
      if (diff > 0) {  // entropy too high -> sharpen
        beta_lo = beta;
        beta = beta_hi >= 1e18 ? beta * 2.0 : (beta + beta_hi) / 2.0;
      } else {
        beta_hi = beta;
        beta = (beta_lo + beta) / 2.0;
      }
    }
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) sum += row[j];
    if (sum <= 1e-300) sum = 1.0;
    for (size_t j = 0; j < n; ++j) conditional[i * n + j] = row[j] / sum;
  }

  // Symmetrize: p_ij = (p_{j|i} + p_{i|j}) / (2n), floored for stability.
  std::vector<double> joint(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      joint[i * n + j] = std::max(
          (conditional[i * n + j] + conditional[j * n + i]) / (2.0 * n),
          1e-12);
    }
  }
  return joint;
}

std::vector<std::array<double, 2>> TsneEmbed2D(const Matrix& points,
                                               const TsneConfig& config) {
  const size_t n = points.rows();
  std::vector<std::array<double, 2>> y(n, {0.0, 0.0});
  if (n == 0) return y;
  if (n == 1) return y;

  // Effective perplexity must satisfy 3*perp < n for a sane neighborhood.
  const double perplexity =
      std::min(config.perplexity, std::max(2.0, (n - 1) / 3.0));

  const auto d2 = PairwiseSquaredDistances(points);
  auto p = TsneJointProbabilities(d2, n, perplexity);

  util::Rng rng(config.seed);
  for (auto& yi : y) {
    yi[0] = rng.NextGaussian() * 1e-4;
    yi[1] = rng.NextGaussian() * 1e-4;
  }

  std::vector<std::array<double, 2>> velocity(n, {0.0, 0.0});
  std::vector<std::array<double, 2>> gradient(n, {0.0, 0.0});
  std::vector<double> q(n * n, 0.0);

  for (size_t iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < config.exaggeration_iters ? config.exaggeration : 1.0;
    const double momentum = iter < config.momentum_switch_iter
                                ? config.initial_momentum
                                : config.final_momentum;

    // Student-t affinities q_ij (unnormalized in `q`, sum in `q_sum`).
    double q_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const double dx = y[i][0] - y[j][0];
        const double dy = y[i][1] - y[j][1];
        const double w = 1.0 / (1.0 + dx * dx + dy * dy);
        q[i * n + j] = w;
        q[j * n + i] = w;
        q_sum += 2.0 * w;
      }
    }
    if (q_sum <= 1e-300) q_sum = 1e-300;

    for (auto& grad : gradient) grad = {0.0, 0.0};
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double w = q[i * n + j];
        const double coeff =
            4.0 * (exaggeration * p[i * n + j] - w / q_sum) * w;
        gradient[i][0] += coeff * (y[i][0] - y[j][0]);
        gradient[i][1] += coeff * (y[i][1] - y[j][1]);
      }
    }

    for (size_t i = 0; i < n; ++i) {
      velocity[i][0] =
          momentum * velocity[i][0] - config.learning_rate * gradient[i][0];
      velocity[i][1] =
          momentum * velocity[i][1] - config.learning_rate * gradient[i][1];
      y[i][0] += velocity[i][0];
      y[i][1] += velocity[i][1];
    }

    // Re-center to keep the layout bounded.
    double cx = 0.0, cy = 0.0;
    for (const auto& yi : y) {
      cx += yi[0];
      cy += yi[1];
    }
    cx /= static_cast<double>(n);
    cy /= static_cast<double>(n);
    for (auto& yi : y) {
      yi[0] -= cx;
      yi[1] -= cy;
    }
  }
  return y;
}

}  // namespace deepdirect::ml
