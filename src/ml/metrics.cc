#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace deepdirect::ml {

double Accuracy(const std::vector<double>& scores,
                const std::vector<int>& labels) {
  DD_CHECK_EQ(scores.size(), labels.size());
  if (scores.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const int predicted = scores[i] >= 0.5 ? 1 : 0;
    if (predicted == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

double AreaUnderRoc(const std::vector<double>& scores,
                    const std::vector<int>& labels) {
  DD_CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  size_t positives = 0;
  for (int y : labels) {
    DD_CHECK(y == 0 || y == 1);
    positives += static_cast<size_t>(y);
  }
  const size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] < scores[b];
  });

  // Midranks over tied scores.
  double positive_rank_sum = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * static_cast<double>(i + 1 + j);  // 1-based
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] == 1) positive_rank_sum += midrank;
    }
    i = j;
  }
  const double p = static_cast<double>(positives);
  const double auc =
      (positive_rank_sum - p * (p + 1.0) / 2.0) /
      (p * static_cast<double>(negatives));
  return auc;
}

double LogLoss(const std::vector<double>& scores,
               const std::vector<int>& labels) {
  DD_CHECK_EQ(scores.size(), labels.size());
  if (scores.empty()) return 0.0;
  const double eps = 1e-12;
  double total = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const double p = std::clamp(scores[i], eps, 1.0 - eps);
    total -= labels[i] == 1 ? std::log(p) : std::log(1.0 - p);
  }
  return total / static_cast<double>(scores.size());
}

double Confusion::Precision() const {
  const size_t denom = true_positive + false_positive;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positive) /
                          static_cast<double>(denom);
}

double Confusion::Recall() const {
  const size_t denom = true_positive + false_negative;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positive) /
                          static_cast<double>(denom);
}

double Confusion::F1() const {
  const double p = Precision();
  const double r = Recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double BrierScore(const std::vector<double>& scores,
                  const std::vector<int>& labels) {
  DD_CHECK_EQ(scores.size(), labels.size());
  if (scores.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const double delta = scores[i] - static_cast<double>(labels[i]);
    total += delta * delta;
  }
  return total / static_cast<double>(scores.size());
}

double ExpectedCalibrationError(const std::vector<double>& scores,
                                const std::vector<int>& labels,
                                size_t bins) {
  DD_CHECK_EQ(scores.size(), labels.size());
  DD_CHECK_GT(bins, 0u);
  if (scores.empty()) return 0.0;
  std::vector<double> confidence_sum(bins, 0.0);
  std::vector<double> accuracy_sum(bins, 0.0);
  std::vector<size_t> counts(bins, 0);
  for (size_t i = 0; i < scores.size(); ++i) {
    const double p = std::clamp(scores[i], 0.0, 1.0);
    size_t bin = static_cast<size_t>(p * static_cast<double>(bins));
    if (bin == bins) bin = bins - 1;  // p == 1.0
    confidence_sum[bin] += p;
    accuracy_sum[bin] += labels[i];
    ++counts[bin];
  }
  double ece = 0.0;
  const double n = static_cast<double>(scores.size());
  for (size_t b = 0; b < bins; ++b) {
    if (counts[b] == 0) continue;
    const double c = static_cast<double>(counts[b]);
    ece += (c / n) *
           std::abs(confidence_sum[b] / c - accuracy_sum[b] / c);
  }
  return ece;
}

Confusion ConfusionAtHalf(const std::vector<double>& scores,
                          const std::vector<int>& labels) {
  DD_CHECK_EQ(scores.size(), labels.size());
  Confusion c;
  for (size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] >= 0.5;
    const bool actual = labels[i] == 1;
    if (predicted && actual) ++c.true_positive;
    if (predicted && !actual) ++c.false_positive;
    if (!predicted && !actual) ++c.true_negative;
    if (!predicted && actual) ++c.false_negative;
  }
  return c;
}

}  // namespace deepdirect::ml
