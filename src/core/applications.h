// The two applications of the directionality function (Sec. 5) and their
// evaluation protocols (Secs. 6.2–6.3):
//
//  * Direction discovery on undirected ties: predict u → v iff
//    d(u, v) ≥ d(v, u) (Eq. 28); accuracy measured on ties whose true
//    direction was hidden.
//
//  * Direction quantification on bidirectional ties: replace the 1-entries
//    of bidirectional ties in the adjacency matrix with d values, producing
//    the *directionality adjacency matrix*, then evaluate Jaccard-style
//    link prediction (Eq. 29) by AUC over 2-hop candidate pairs.

#ifndef DEEPDIRECT_CORE_APPLICATIONS_H_
#define DEEPDIRECT_CORE_APPLICATIONS_H_

#include <optional>
#include <vector>

#include "core/directionality.h"
#include "graph/algorithms.h"
#include "graph/mixed_graph.h"
#include "util/random.h"

namespace deepdirect::core {

/// Predicted direction of one undirected tie.
struct DirectionPrediction {
  graph::NodeId source;  ///< predicted proposer
  graph::NodeId target;  ///< predicted responder
  double confidence;     ///< max(d(u,v), d(v,u))
};

/// Applies Eq. 28 to every undirected tie of `g` (each tie reported once,
/// from its canonical smaller-endpoint arc).
std::vector<DirectionPrediction> DiscoverDirections(
    const graph::MixedSocialNetwork& g, const DirectionalityModel& model);

/// Fraction of hidden ties whose direction the model predicts correctly
/// (the Fig. 3 metric). `split` must come from graph::HideDirections on the
/// network `model` was trained on.
double DirectionDiscoveryAccuracy(const graph::HiddenDirectionSplit& split,
                                  const DirectionalityModel& model);

/// Sparse weighted adjacency used for Jaccard link prediction. Cell values:
/// directed tie u->v contributes A[u][v] = 1; a bidirectional tie
/// contributes A[u][v] = d(u, v) and A[v][u] = d(v, u) when a model is
/// given (the directionality adjacency matrix of Sec. 5.2), or 1/1 without
/// a model (the original adjacency matrix); an undirected tie contributes
/// d(u,v)/d(v,u) with a model, or 0.5/0.5 without.
class WeightedAdjacency {
 public:
  /// Builds from `g`, quantifying bidirectional/undirected ties with
  /// `model` when provided.
  WeightedAdjacency(const graph::MixedSocialNetwork& g,
                    const DirectionalityModel* model);

  size_t num_nodes() const { return out_offsets_.size() - 1; }

  /// Row sum Σ_k A[u][k].
  double OutSum(graph::NodeId u) const { return out_sums_[u]; }

  /// Column sum Σ_k A[k][v].
  double InSum(graph::NodeId v) const { return in_sums_[v]; }

  /// Σ_k A[u][k] · A[k][v] — the numerator of Eq. 29.
  double PathWeight(graph::NodeId u, graph::NodeId v) const;

  /// Σ_k A[u][k] · A[k][v] · mid(k) for a caller-supplied middle-node
  /// weighting (powers the Adamic-Adar / resource-allocation variants).
  template <typename MidFn>
  double WeightedPathSum(graph::NodeId u, graph::NodeId v,
                         MidFn&& mid) const {
    DD_CHECK_LT(u, num_nodes());
    DD_CHECK_LT(v, num_nodes());
    size_t i = out_offsets_[u];
    const size_t i_end = out_offsets_[u + 1];
    size_t j = in_offsets_[v];
    const size_t j_end = in_offsets_[v + 1];
    double total = 0.0;
    while (i < i_end && j < j_end) {
      const graph::NodeId a = out_entries_[i].node;
      const graph::NodeId b = in_entries_[j].node;
      if (a < b) {
        ++i;
      } else if (b < a) {
        ++j;
      } else {
        total += out_entries_[i].weight * in_entries_[j].weight * mid(a);
        ++i;
        ++j;
      }
    }
    return total;
  }

  /// The Jaccard-style score f(u → v) of Eq. 29.
  double JaccardScore(graph::NodeId u, graph::NodeId v) const;

  /// Total weighted throughput of node k (OutSum + InSum), the "strength"
  /// used by the Adamic-Adar and resource-allocation variants.
  double Strength(graph::NodeId k) const { return OutSum(k) + InSum(k); }

 private:
  struct Entry {
    graph::NodeId node;
    double weight;
  };
  // CSR of outgoing weighted entries sorted by destination, plus incoming.
  std::vector<size_t> out_offsets_;
  std::vector<Entry> out_entries_;
  std::vector<size_t> in_offsets_;
  std::vector<Entry> in_entries_;
  std::vector<double> out_sums_;
  std::vector<double> in_sums_;
};

/// Scoring functions for candidate pairs (Eq. 29 is kJaccard; the rest are
/// classic weighted neighborhood predictors, all of which consume the
/// directionality adjacency matrix identically).
enum class LinkScoreType {
  kJaccard = 0,             ///< Eq. 29
  kCommonNeighbors = 1,     ///< Σ_k A[u][k]·A[k][v]
  kAdamicAdar = 2,          ///< middle nodes down-weighted by 1/log(1+strength)
  kResourceAllocation = 3,  ///< middle nodes down-weighted by 1/strength
};

/// Short lowercase name of a score type.
const char* LinkScoreTypeToString(LinkScoreType type);

/// Computes the chosen score for the ordered pair (u, v).
double LinkScore(const WeightedAdjacency& adjacency, LinkScoreType type,
                 graph::NodeId u, graph::NodeId v);

/// Configuration of the link-prediction experiment (Sec. 6.3).
struct LinkPredictionConfig {
  /// Fraction of ties removed to form the training network G'.
  double holdout_fraction = 0.2;
  /// Cap on evaluated candidate pairs (uniformly subsampled beyond this).
  size_t max_candidates = 200000;
  /// Scoring function over the (quantified) adjacency matrix.
  LinkScoreType score = LinkScoreType::kJaccard;
  /// Ordered protocol (default): candidates are *ordered* 2-hop pairs
  /// scored by the directional Eq. 29, and the task is predicting new
  /// *directed* ties with their orientation — a removed directed tie is
  /// positive in its true orientation, its reverse is excluded, and
  /// removed bidirectional ties are excluded entirely (no orientation
  /// target). This is the reading under which quantifying directions can
  /// matter at all: Eq. 29 itself is directional. With `ordered = false`,
  /// unordered pairs are scored by the better orientation and every
  /// removed tie is a positive (direction-agnostic baseline protocol).
  bool ordered = true;
  uint64_t seed = 97;
};

/// Result of one link-prediction run.
struct LinkPredictionResult {
  double auc = 0.0;
  size_t num_candidates = 0;
  size_t num_positives = 0;
};

/// Runs the Sec. 6.3 protocol: removes holdout ties from `g` to get G',
/// scores ordered 2-hop pairs of G' with the (model-quantified or original)
/// adjacency, and labels a pair positive iff it is a removed tie of `g`.
/// `model` must be trained on G' (or pass nullptr for the original binary
/// adjacency baseline). The same holdout (derived from config.seed) is used
/// for identical configs, so methods are comparable.
LinkPredictionResult RunLinkPrediction(const graph::MixedSocialNetwork& g,
                                       const graph::TieHoldout& holdout,
                                       const DirectionalityModel* model,
                                       const LinkPredictionConfig& config);

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_APPLICATIONS_H_
