// On-disk layout of the servable DeepDirect model ("DDS1").
//
// The training-side container (train/checkpoint.h, magic "DDM2") streams
// length-prefixed sections back to back, which is ideal for atomic
// checkpoint writes but hostile to memory-mapping: payload offsets are
// unaligned and only discoverable by walking the whole file. The serving
// layer instead uses this layout, designed to be consumed zero-copy
// through one mmap:
//
//   Header (32 bytes)            magic "DDS1", version, section count,
//                                total file size, meta CRC
//   SectionEntry × section_count fixed 40-byte table rows: NUL-padded
//                                name, absolute payload offset, payload
//                                size, payload CRC32
//   payloads                     each 64-byte aligned, in table order;
//                                gaps between payloads are zero bytes
//
// Every byte of the file is accounted for: the header and table are
// covered by `meta_crc` (computed with the field itself zeroed), every
// payload by its table row's CRC32, and alignment padding must read as
// zeros. A reader that validates all three rejects any truncation or
// single-byte corruption with a structured error — the contract
// tests/serve_test.cc sweeps exhaustively.
//
// 64-byte payload alignment means a page-aligned mmap base makes every
// section pointer naturally aligned for its element type (f32 embedding
// rows, f64 weights, u64 CSR offsets), so the serving runtime reads the
// mapping in place — no deserialization pass, no copies, file pages are
// faulted in on first touch and shared between processes serving the same
// model.
//
// Section inventory (all required, no others permitted):
//   meta         servable::Meta — node/arc counts, embedding width, and
//                the FNV-1a arc hash of the training tie index
//   offsets      u64[num_nodes + 1] — CSR row starts into `adj`
//   adj          u32[num_arcs] — sorted closure-arc destinations; the arc
//                (u, v) has index offsets[u] + rank of v in u's row, the
//                same dense indexing core/tie_index.h defines
//   embeddings   f32[num_arcs × dimensions] — row-major matrix M
//   dstep_w      f64[dimensions] — D-Step weights w (Eq. 26)
//   dstep_b      f64 — D-Step bias b
//
// Writer: DeepDirectModel::ExportServable (core/model_io.cc).
// Reader: serve::ServableModel::Open (serve/servable_model.cc).

#ifndef DEEPDIRECT_CORE_SERVABLE_FORMAT_H_
#define DEEPDIRECT_CORE_SERVABLE_FORMAT_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace deepdirect::core::servable {

inline constexpr std::array<char, 4> kMagic{'D', 'D', 'S', '1'};
inline constexpr uint32_t kVersion = 1;

/// Payload alignment. 64 covers every element type the format carries and
/// matches the cache-line size the rest of the repo assumes.
inline constexpr uint64_t kAlignment = 64;

/// Fixed-width section names (NUL-padded).
inline constexpr size_t kSectionNameSize = 16;

/// File header. `meta_crc` is the CRC32 (train::Crc32) over the header
/// bytes with this field zeroed, followed by the full section table.
struct Header {
  char magic[4];
  uint32_t version;
  uint64_t section_count;
  uint64_t file_size;  ///< must equal the on-disk size exactly
  uint32_t meta_crc;
  uint32_t reserved;   ///< must be zero
};
static_assert(sizeof(Header) == 32);

/// One section-table row. `offset` is absolute from the file start and
/// kAlignment-aligned; `crc` is the CRC32 of the payload bytes.
struct SectionEntry {
  char name[kSectionNameSize];  ///< NUL-padded, NUL-terminated
  uint64_t offset;
  uint64_t size;
  uint32_t crc;
  uint32_t reserved;  ///< must be zero
};
static_assert(sizeof(SectionEntry) == 40);

/// Payload of the "meta" section.
struct Meta {
  uint64_t num_nodes;
  uint64_t num_arcs;
  uint64_t dimensions;
  /// FNV-1a over the closure arc endpoints (the same hash DDM2 stores):
  /// identifies the training network the CSR index was derived from.
  uint64_t arc_hash;
};
static_assert(sizeof(Meta) == 32);

inline constexpr char kSectionMeta[] = "meta";
inline constexpr char kSectionOffsets[] = "offsets";
inline constexpr char kSectionAdj[] = "adj";
inline constexpr char kSectionEmbeddings[] = "embeddings";
inline constexpr char kSectionDStepW[] = "dstep_w";
inline constexpr char kSectionDStepB[] = "dstep_b";

/// The required section order (also the payload order in the file).
inline constexpr const char* kSectionOrder[] = {
    kSectionMeta,       kSectionOffsets, kSectionAdj,
    kSectionEmbeddings, kSectionDStepW,  kSectionDStepB,
};
inline constexpr uint64_t kSectionCount =
    sizeof(kSectionOrder) / sizeof(kSectionOrder[0]);

/// Rounds `n` up to the next kAlignment boundary.
inline constexpr uint64_t AlignUp(uint64_t n) {
  return (n + kAlignment - 1) & ~(kAlignment - 1);
}

}  // namespace deepdirect::core::servable

#endif  // DEEPDIRECT_CORE_SERVABLE_FORMAT_H_
