// TieIndex: dense indexing of the symmetric closure of a mixed network's
// ties.
//
// DeepDirect's preprocessing (Algorithm 1, lines 2–5) adds the reverse arc
// (v, u) of every directed tie (u, v) to E, so after preprocessing *every*
// tie contributes two arcs. The resulting arc set is exactly
// { (u, v) : v ∈ UndirectedNeighbors(u) }, which this class indexes densely:
// arc (u, v) gets index und_offsets[u] + rank of v among u's neighbors.
// The embedding matrix M and connection matrix N are rowed by this index.

#ifndef DEEPDIRECT_CORE_TIE_INDEX_H_
#define DEEPDIRECT_CORE_TIE_INDEX_H_

#include <span>
#include <utility>
#include <vector>

#include "graph/mixed_graph.h"

namespace deepdirect::core {

/// Label category of a closure arc.
enum class ArcClass : uint8_t {
  kLabeledPositive = 0,  ///< (u,v) with directed tie u->v (label 1)
  kLabeledNegative = 1,  ///< reverse of a directed tie (label 0)
  kBidirectional = 2,    ///< arc of a bidirectional tie (no label)
  kUndirected = 3,       ///< arc of an undirected tie (pseudo-labels apply)
};

/// Immutable symmetric-closure index over a network's ties. Does not retain
/// a reference to the source network.
class TieIndex {
 public:
  explicit TieIndex(const graph::MixedSocialNetwork& g);

  /// Number of closure arcs (= 2 × number of ties).
  size_t num_arcs() const { return src_.size(); }

  size_t num_nodes() const { return offsets_.size() - 1; }

  /// Index of arc (u, v). Checked: the tie must exist.
  size_t IndexOf(graph::NodeId u, graph::NodeId v) const;

  /// Index of arc (u, v), or num_arcs() if the pair has no tie.
  size_t TryIndexOf(graph::NodeId u, graph::NodeId v) const;

  /// Endpoints of arc `idx` as (src, dst).
  std::pair<graph::NodeId, graph::NodeId> ArcAt(size_t idx) const {
    DD_CHECK_LT(idx, src_.size());
    return {src_[idx], dst_[idx]};
  }

  /// Index of the reverse arc (dst, src). O(log degree).
  size_t ReverseOf(size_t idx) const {
    const auto [u, v] = ArcAt(idx);
    return IndexOf(v, u);
  }

  /// Tie degree |c(e)| over the closure: every tie of dst except the return
  /// arc, i.e. UndirectedDegree(dst) − 1.
  uint32_t TieDegree(size_t idx) const {
    DD_CHECK_LT(idx, src_.size());
    return Degree(dst_[idx]) - 1;
  }

  /// Distinct neighbors of node u (sorted).
  std::span<const graph::NodeId> Neighbors(graph::NodeId u) const {
    DD_CHECK_LT(u, num_nodes());
    const size_t begin = offsets_[u];
    const size_t end = offsets_[u + 1];
    if (begin == end) return {};
    return {adj_.data() + begin, end - begin};
  }

  /// Number of distinct neighbors of u.
  uint32_t Degree(graph::NodeId u) const {
    DD_CHECK_LT(u, num_nodes());
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Label class of arc `idx`.
  ArcClass Class(size_t idx) const {
    DD_CHECK_LT(idx, classes_.size());
    return classes_[idx];
  }

  /// Whether arc `idx` carries a supervised label.
  bool IsLabeled(size_t idx) const {
    const ArcClass c = Class(idx);
    return c == ArcClass::kLabeledPositive || c == ArcClass::kLabeledNegative;
  }

  /// Supervised label (1.0 or 0.0). Checked: arc must be labeled.
  double Label(size_t idx) const {
    DD_CHECK(IsLabeled(idx));
    return Class(idx) == ArcClass::kLabeledPositive ? 1.0 : 0.0;
  }

  /// Total connected-tie pairs over the closure, |C(G)| = Σ_e |c(e)|.
  uint64_t NumConnectedTiePairs() const { return num_connected_pairs_; }

  /// Samples a connected tie e' of arc `idx` uniformly; returns num_arcs()
  /// when c(e) is empty (leaf destination).
  template <typename RngT>
  size_t SampleConnectedTie(size_t idx, RngT& rng) const {
    const graph::NodeId u = src_[idx];
    const graph::NodeId v = dst_[idx];
    const uint32_t deg = Degree(v);
    if (deg <= 1) return num_arcs();
    // Pick a neighbor of v other than u: draw from deg-1 slots, skipping
    // u's rank.
    const size_t base = offsets_[v];
    const size_t rank_of_u = RankOf(v, u);
    size_t pick = rng.NextIndex(deg - 1);
    if (pick >= rank_of_u) ++pick;
    return base + pick;
  }

  /// Raw flat views for serialization (shard store construction). The
  /// adjacency span doubles as the arc → dst map: arc e's destination is
  /// Adjacency()[e] by construction of the dense index.
  std::span<const size_t> Offsets() const { return offsets_; }
  std::span<const graph::NodeId> Adjacency() const { return adj_; }
  std::span<const graph::NodeId> Sources() const { return src_; }
  std::span<const ArcClass> RawClasses() const { return classes_; }

 private:
  // Rank of neighbor w within u's sorted neighbor list.
  size_t RankOf(graph::NodeId u, graph::NodeId w) const;

  std::vector<size_t> offsets_;          // per node, into adj_
  std::vector<graph::NodeId> adj_;       // sorted neighbors (= dst_ grouped)
  std::vector<graph::NodeId> src_;       // arc -> src
  std::vector<graph::NodeId> dst_;       // arc -> dst
  std::vector<ArcClass> classes_;        // arc -> label class
  uint64_t num_connected_pairs_ = 0;
};

/// FNV-1a over the closure arc endpoints: a cheap fingerprint that detects
/// "same size, different network" mismatches when binding a serialized
/// artifact (model file, shard store) back to a training network.
inline uint64_t HashTieIndex(const TieIndex& index) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t e = 0; e < index.num_arcs(); ++e) {
    const auto [u, v] = index.ArcAt(e);
    for (uint32_t word : {static_cast<uint32_t>(u),
                          static_cast<uint32_t>(v)}) {
      hash ^= word;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_TIE_INDEX_H_
