// Binary serialization of trained DeepDirect models.
//
// Layout (little-endian, as written by the host):
//   magic   "DDM1"                      (4 bytes)
//   u64     num_arcs                    (must match the network's closure)
//   u64     arc_hash                    (FNV-1a over the closure arc list)
//   u64     dimensions
//   f32[num_arcs * dimensions]          embedding matrix M, row-major
//   f64[dimensions] + f64               D-Step weights w and bias b
//   f64[dimensions] + f64               E-Step weights w' and bias b'

#include <cstring>
#include <fstream>

#include "core/deepdirect.h"

namespace deepdirect::core {

namespace {

constexpr char kMagic[4] = {'D', 'D', 'M', '1'};

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

// FNV-1a over the closure arc endpoints: detects "same size, different
// network" mismatches at load time.
uint64_t HashIndex(const TieIndex& index) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t e = 0; e < index.num_arcs(); ++e) {
    const auto [u, v] = index.ArcAt(e);
    for (uint32_t word : {static_cast<uint32_t>(u),
                          static_cast<uint32_t>(v)}) {
      hash ^= word;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

}  // namespace

util::Status DeepDirectModel::Save(const std::string& path) const {
  if (mlp_head_.has_value()) {
    return util::Status::FailedPrecondition(
        "models with an MLP D-Step head are not serializable");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    return util::Status::IOError("cannot open for writing: " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  WritePod<uint64_t>(out, embeddings_.rows());
  WritePod<uint64_t>(out, HashIndex(index_));
  WritePod<uint64_t>(out, embeddings_.cols());
  out.write(reinterpret_cast<const char*>(embeddings_.data().data()),
            static_cast<std::streamsize>(embeddings_.data().size() *
                                         sizeof(float)));
  for (double w : d_step_.weights()) WritePod(out, w);
  WritePod(out, d_step_.bias());
  for (double w : e_step_weights_) WritePod(out, w);
  WritePod(out, e_step_bias_);
  out.flush();
  if (!out.good()) return util::Status::IOError("write failed: " + path);
  return util::Status::OK();
}

util::Result<std::unique_ptr<DeepDirectModel>> DeepDirectModel::Load(
    const std::string& path, const graph::MixedSocialNetwork& g) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return util::Status::IOError("cannot open for reading: " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument("not a DeepDirect model file: " +
                                         path);
  }
  uint64_t num_arcs = 0, arc_hash = 0, dimensions = 0;
  if (!ReadPod(in, &num_arcs) || !ReadPod(in, &arc_hash) ||
      !ReadPod(in, &dimensions)) {
    return util::Status::InvalidArgument("truncated model header: " + path);
  }

  TieIndex index(g);
  if (index.num_arcs() != num_arcs || HashIndex(index) != arc_hash) {
    return util::Status::InvalidArgument(
        "network mismatch: the model was trained on a different network "
        "(closure arcs: " + std::to_string(num_arcs) + " vs " +
        std::to_string(index.num_arcs()) + ")");
  }

  std::unique_ptr<DeepDirectModel> model(
      new DeepDirectModel(std::move(index), dimensions));
  auto& data = model->embeddings_.data();
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!in.good()) {
    return util::Status::InvalidArgument("truncated embedding matrix: " +
                                         path);
  }
  std::vector<double> d_weights(dimensions);
  double d_bias = 0.0;
  for (double& w : d_weights) {
    if (!ReadPod(in, &w)) {
      return util::Status::InvalidArgument("truncated D-Step head: " + path);
    }
  }
  if (!ReadPod(in, &d_bias)) {
    return util::Status::InvalidArgument("truncated D-Step head: " + path);
  }
  model->d_step_ = ml::LogisticRegression(std::move(d_weights), d_bias);

  model->e_step_weights_.resize(dimensions);
  for (double& w : model->e_step_weights_) {
    if (!ReadPod(in, &w)) {
      return util::Status::InvalidArgument("truncated E-Step head: " + path);
    }
  }
  if (!ReadPod(in, &model->e_step_bias_)) {
    return util::Status::InvalidArgument("truncated E-Step head: " + path);
  }
  return model;
}

}  // namespace deepdirect::core
