// Binary serialization of trained DeepDirect models — two artifacts:
//
// 1. Save/Load: the training-side round trip, built on the
//    train/checkpoint.h container: magic "DDM2", CRC32-protected sections,
//    atomic temp+fsync+rename writes. A crash mid-save leaves the previous
//    file (or none) — never a truncated hybrid — and any truncation or bit
//    flip of a saved file is rejected by Load with a section-anchored error
//    instead of being half-accepted.
//
//    Sections:
//      meta        u64 num_arcs, u64 arc_hash (FNV-1a over the closure arc
//                  list), u64 dimensions
//      embeddings  f32[num_arcs * dimensions], row-major matrix M
//      d_step_w    f64[dimensions]          D-Step weights w
//      d_step_b    f64                      D-Step bias b
//      e_step_w    f64[dimensions]          E-Step weights w'
//      e_step_b    f64                      E-Step bias b'
//
// 2. ExportServable: the serving-side artifact ("DDS1",
//    core/servable_format.h) — a self-contained, mmap-friendly container
//    holding the directionality function alone (CSR tie index, matrix M,
//    D-Step head), with every payload 64-byte aligned so
//    serve::ServableModel::Open can answer d(u, v) zero-copy off the
//    mapping without the training network or any deserialization pass.
//    Written with the same atomic temp+fsync+rename primitive.

#include <array>
#include <cstring>
#include <utility>
#include <vector>

#include "core/deepdirect.h"
#include "core/servable_format.h"

namespace deepdirect::core {

namespace {

constexpr std::array<char, 4> kModelMagic{'D', 'D', 'M', '2'};

struct ModelMeta {
  uint64_t num_arcs = 0;
  uint64_t arc_hash = 0;
  uint64_t dimensions = 0;
};

}  // namespace

util::Status DeepDirectModel::Save(const std::string& path) const {
  if (mlp_head_.has_value()) {
    return util::Status::FailedPrecondition(
        "models with an MLP D-Step head are not serializable");
  }
  train::CheckpointWriter writer(kModelMagic);
  ModelMeta meta;
  meta.num_arcs = embeddings_.rows();
  meta.arc_hash = HashTieIndex(index_);
  meta.dimensions = embeddings_.cols();
  writer.AddPod("meta", meta);
  writer.AddVector("embeddings", embeddings_.data());
  writer.AddVector("d_step_w", d_step_.weights());
  writer.AddPod("d_step_b", d_step_.bias());
  writer.AddVector("e_step_w", e_step_weights_);
  writer.AddPod("e_step_b", e_step_bias_);
  return writer.WriteAtomic(path);
}

util::Status DeepDirectModel::ExportServable(const std::string& path) const {
  if (mlp_head_.has_value()) {
    return util::Status::FailedPrecondition(
        "models with an MLP D-Step head are not servable");
  }
  namespace fmt = servable;

  // Flatten the tie index into the CSR arrays the format stores. The
  // public Neighbors()/Degree() views reproduce the index's own adjacency
  // arena exactly (sorted destinations grouped by source).
  const size_t num_nodes = index_.num_nodes();
  const size_t num_arcs = index_.num_arcs();
  std::vector<uint64_t> offsets(num_nodes + 1, 0);
  std::vector<uint32_t> adj;
  adj.reserve(num_arcs);
  for (graph::NodeId u = 0; u < num_nodes; ++u) {
    offsets[u + 1] = offsets[u] + index_.Degree(u);
    for (graph::NodeId v : index_.Neighbors(u)) adj.push_back(v);
  }

  fmt::Meta meta{};
  meta.num_nodes = num_nodes;
  meta.num_arcs = num_arcs;
  meta.dimensions = embeddings_.cols();
  meta.arc_hash = HashTieIndex(index_);
  const std::vector<double>& weights = d_step_.weights();
  const double bias = d_step_.bias();

  struct Payload {
    const char* name;
    const void* data;
    uint64_t size;
  };
  const Payload payloads[fmt::kSectionCount] = {
      {fmt::kSectionMeta, &meta, sizeof(meta)},
      {fmt::kSectionOffsets, offsets.data(), offsets.size() * sizeof(uint64_t)},
      {fmt::kSectionAdj, adj.data(), adj.size() * sizeof(uint32_t)},
      {fmt::kSectionEmbeddings, embeddings_.data().data(),
       embeddings_.data().size() * sizeof(float)},
      {fmt::kSectionDStepW, weights.data(), weights.size() * sizeof(double)},
      {fmt::kSectionDStepB, &bias, sizeof(bias)},
  };

  // Lay out: header, table, then each payload at the next aligned offset.
  fmt::SectionEntry table[fmt::kSectionCount] = {};
  uint64_t cursor =
      sizeof(fmt::Header) + fmt::kSectionCount * sizeof(fmt::SectionEntry);
  for (size_t s = 0; s < fmt::kSectionCount; ++s) {
    cursor = fmt::AlignUp(cursor);
    std::strncpy(table[s].name, payloads[s].name,
                 fmt::kSectionNameSize - 1);
    table[s].offset = cursor;
    table[s].size = payloads[s].size;
    table[s].crc = train::Crc32(payloads[s].data, payloads[s].size);
    cursor += payloads[s].size;
  }

  fmt::Header header{};
  std::memcpy(header.magic, fmt::kMagic.data(), fmt::kMagic.size());
  header.version = fmt::kVersion;
  header.section_count = fmt::kSectionCount;
  header.file_size = cursor;

  // Assemble the image zero-filled, so alignment gaps are zero bytes (the
  // reader verifies this — every byte of the file is then covered by a
  // check), then patch in the meta CRC over header + table.
  std::string bytes(cursor, '\0');
  std::memcpy(bytes.data(), &header, sizeof(header));
  std::memcpy(bytes.data() + sizeof(header), table, sizeof(table));
  for (size_t s = 0; s < fmt::kSectionCount; ++s) {
    std::memcpy(bytes.data() + table[s].offset, payloads[s].data,
                payloads[s].size);
  }
  const uint32_t meta_crc = train::Crc32(
      bytes.data(), sizeof(fmt::Header) + sizeof(table));
  std::memcpy(bytes.data() + offsetof(fmt::Header, meta_crc), &meta_crc,
              sizeof(meta_crc));
  return train::AtomicWriteFile(path, bytes);
}

util::Result<std::unique_ptr<DeepDirectModel>> DeepDirectModel::Load(
    const std::string& path, const graph::MixedSocialNetwork& g) {
  auto read = train::CheckpointData::Read(path, kModelMagic);
  if (!read.ok()) return read.status();
  const train::CheckpointData& file = read.value();

  ModelMeta meta;
  DD_RETURN_NOT_OK(file.ReadPod("meta", &meta));

  TieIndex index(g);
  if (index.num_arcs() != meta.num_arcs || HashTieIndex(index) != meta.arc_hash) {
    return util::Status::InvalidArgument(
        "network mismatch: the model was trained on a different network "
        "(closure arcs: " + std::to_string(meta.num_arcs) + " vs " +
        std::to_string(index.num_arcs()) + ")");
  }

  std::unique_ptr<DeepDirectModel> model(
      new DeepDirectModel(std::move(index), meta.dimensions));
  DD_RETURN_NOT_OK(file.ReadVector("embeddings", &model->embeddings_.data(),
                                   meta.num_arcs * meta.dimensions));
  std::vector<double> d_weights;
  double d_bias = 0.0;
  DD_RETURN_NOT_OK(file.ReadVector("d_step_w", &d_weights, meta.dimensions));
  DD_RETURN_NOT_OK(file.ReadPod("d_step_b", &d_bias));
  model->d_step_ = ml::LogisticRegression(std::move(d_weights), d_bias);
  DD_RETURN_NOT_OK(file.ReadVector("e_step_w", &model->e_step_weights_,
                                   meta.dimensions));
  DD_RETURN_NOT_OK(file.ReadPod("e_step_b", &model->e_step_bias_));
  return model;
}

}  // namespace deepdirect::core
