// Binary serialization of trained DeepDirect models.
//
// Built on the train/checkpoint.h container: magic "DDM2", CRC32-protected
// sections, atomic temp+fsync+rename writes. A crash mid-save leaves the
// previous file (or none) — never a truncated hybrid — and any truncation
// or bit flip of a saved file is rejected by Load with a section-anchored
// error instead of being half-accepted.
//
// Sections:
//   meta        u64 num_arcs, u64 arc_hash (FNV-1a over the closure arc
//               list), u64 dimensions
//   embeddings  f32[num_arcs * dimensions], row-major matrix M
//   d_step_w    f64[dimensions]          D-Step weights w
//   d_step_b    f64                      D-Step bias b
//   e_step_w    f64[dimensions]          E-Step weights w'
//   e_step_b    f64                      E-Step bias b'

#include <array>
#include <cstring>
#include <utility>

#include "core/deepdirect.h"

namespace deepdirect::core {

namespace {

constexpr std::array<char, 4> kModelMagic{'D', 'D', 'M', '2'};

struct ModelMeta {
  uint64_t num_arcs = 0;
  uint64_t arc_hash = 0;
  uint64_t dimensions = 0;
};

// FNV-1a over the closure arc endpoints: detects "same size, different
// network" mismatches at load time.
uint64_t HashIndex(const TieIndex& index) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t e = 0; e < index.num_arcs(); ++e) {
    const auto [u, v] = index.ArcAt(e);
    for (uint32_t word : {static_cast<uint32_t>(u),
                          static_cast<uint32_t>(v)}) {
      hash ^= word;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

}  // namespace

util::Status DeepDirectModel::Save(const std::string& path) const {
  if (mlp_head_.has_value()) {
    return util::Status::FailedPrecondition(
        "models with an MLP D-Step head are not serializable");
  }
  train::CheckpointWriter writer(kModelMagic);
  ModelMeta meta;
  meta.num_arcs = embeddings_.rows();
  meta.arc_hash = HashIndex(index_);
  meta.dimensions = embeddings_.cols();
  writer.AddPod("meta", meta);
  writer.AddVector("embeddings", embeddings_.data());
  writer.AddVector("d_step_w", d_step_.weights());
  writer.AddPod("d_step_b", d_step_.bias());
  writer.AddVector("e_step_w", e_step_weights_);
  writer.AddPod("e_step_b", e_step_bias_);
  return writer.WriteAtomic(path);
}

util::Result<std::unique_ptr<DeepDirectModel>> DeepDirectModel::Load(
    const std::string& path, const graph::MixedSocialNetwork& g) {
  auto read = train::CheckpointData::Read(path, kModelMagic);
  if (!read.ok()) return read.status();
  const train::CheckpointData& file = read.value();

  ModelMeta meta;
  DD_RETURN_NOT_OK(file.ReadPod("meta", &meta));

  TieIndex index(g);
  if (index.num_arcs() != meta.num_arcs || HashIndex(index) != meta.arc_hash) {
    return util::Status::InvalidArgument(
        "network mismatch: the model was trained on a different network "
        "(closure arcs: " + std::to_string(meta.num_arcs) + " vs " +
        std::to_string(index.num_arcs()) + ")");
  }

  std::unique_ptr<DeepDirectModel> model(
      new DeepDirectModel(std::move(index), meta.dimensions));
  DD_RETURN_NOT_OK(file.ReadVector("embeddings", &model->embeddings_.data(),
                                   meta.num_arcs * meta.dimensions));
  std::vector<double> d_weights;
  double d_bias = 0.0;
  DD_RETURN_NOT_OK(file.ReadVector("d_step_w", &d_weights, meta.dimensions));
  DD_RETURN_NOT_OK(file.ReadPod("d_step_b", &d_bias));
  model->d_step_ = ml::LogisticRegression(std::move(d_weights), d_bias);
  DD_RETURN_NOT_OK(file.ReadVector("e_step_w", &model->e_step_weights_,
                                   meta.dimensions));
  DD_RETURN_NOT_OK(file.ReadPod("e_step_b", &model->e_step_bias_));
  return model;
}

}  // namespace deepdirect::core
