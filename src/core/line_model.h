// LINE-based directionality model: the node-embedding baseline of Sec. 6.1.
//
// Trains LINE node embeddings on the mixed network, represents each tie
// (u, v) by an edge-operator composition of the endpoint vectors
// (concatenation by default, matching the paper), and fits a logistic
// regression on the labeled directed ties.

#ifndef DEEPDIRECT_CORE_LINE_MODEL_H_
#define DEEPDIRECT_CORE_LINE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/directionality.h"
#include "embedding/edge_features.h"
#include "embedding/line.h"
#include "graph/mixed_graph.h"
#include "ml/logistic_regression.h"

namespace deepdirect::core {

/// LINE-model hyper-parameters. The paper sets LINE's node dimension to 64
/// (half of DeepDirect's l = 128) so the concatenated tie vector matches.
struct LineModelConfig {
  embedding::LineConfig line;
  embedding::EdgeOperator edge_operator =
      embedding::EdgeOperator::kConcatenate;
  ml::LogisticRegressionConfig regression = {
      .epochs = 20, .learning_rate = 0.05, .min_lr_fraction = 0.1,
      .l2 = 1e-4, .seed = 27, .shuffle = true};
};

/// Trained LINE + logistic-regression directionality model.
class LineModel : public DirectionalityModel {
 public:
  static std::unique_ptr<LineModel> Train(const graph::MixedSocialNetwork& g,
                                          const LineModelConfig& config);

  double Directionality(graph::NodeId u, graph::NodeId v) const override;
  std::string name() const override { return "LINE"; }

  /// Underlying node embeddings (for the Fig. 7 visualization bench).
  const embedding::LineEmbedding& node_embeddings() const { return line_; }

  /// Composes the tie feature vector for (u, v) into `out`.
  void TieFeatures(graph::NodeId u, graph::NodeId v,
                   std::span<double> out) const;

  /// Dimensionality of a tie feature vector.
  size_t tie_feature_dims() const {
    return embedding::EdgeFeatureDims(edge_operator_, line_.dimensions());
  }

 private:
  LineModel(embedding::LineEmbedding line, embedding::EdgeOperator op,
            size_t feature_dims)
      : line_(std::move(line)),
        edge_operator_(op),
        regression_(feature_dims) {}

  embedding::LineEmbedding line_;
  embedding::EdgeOperator edge_operator_;
  ml::LogisticRegression regression_;
};

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_LINE_MODEL_H_
