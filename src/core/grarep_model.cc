#include "core/grarep_model.h"

#include "ml/dataset.h"

namespace deepdirect::core {

using graph::MixedSocialNetwork;
using graph::NodeId;

std::unique_ptr<GraRepModel> GraRepModel::Train(
    const MixedSocialNetwork& g, const GraRepModelConfig& config) {
  DD_CHECK_GT(g.num_directed_ties(), 0u);
  embedding::GraRepEmbedding node_embedding =
      embedding::GraRepEmbedding::Train(g, config.grarep);
  const size_t feature_dims = embedding::EdgeFeatureDims(
      config.edge_operator, node_embedding.dimensions());
  std::unique_ptr<GraRepModel> model(new GraRepModel(
      std::move(node_embedding), config.edge_operator, feature_dims));

  const size_t node_dims = model->embedding_.dimensions();
  ml::Dataset data(feature_dims);
  std::vector<double> src(node_dims), dst(node_dims), features(feature_dims);
  auto add_instance = [&](NodeId u, NodeId v, double label) {
    model->embedding_.NodeVectorAsDouble(u, src);
    model->embedding_.NodeVectorAsDouble(v, dst);
    embedding::ComposeEdgeFeatures(config.edge_operator, src, dst, features);
    data.Add(features, label);
  };
  for (graph::ArcId id : g.directed_arcs()) {
    const graph::Arc& arc = g.arc(id);
    add_instance(arc.src, arc.dst, 1.0);
    add_instance(arc.dst, arc.src, 0.0);
  }
  model->regression_.Train(data, config.regression);
  return model;
}

double GraRepModel::Directionality(NodeId u, NodeId v) const {
  const size_t node_dims = embedding_.dimensions();
  std::vector<double> src(node_dims), dst(node_dims);
  std::vector<double> features(
      embedding::EdgeFeatureDims(edge_operator_, node_dims));
  embedding_.NodeVectorAsDouble(u, src);
  embedding_.NodeVectorAsDouble(v, dst);
  embedding::ComposeEdgeFeatures(edge_operator_, src, dst, features);
  return regression_.Predict(features);
}

}  // namespace deepdirect::core
