// GraRep directionality model: matrix-factorization node embeddings
// (paper ref [32]) + edge operator + logistic regression.

#ifndef DEEPDIRECT_CORE_GRAREP_MODEL_H_
#define DEEPDIRECT_CORE_GRAREP_MODEL_H_

#include <memory>
#include <string>

#include "core/directionality.h"
#include "embedding/edge_features.h"
#include "embedding/grarep.h"
#include "graph/mixed_graph.h"
#include "ml/logistic_regression.h"

namespace deepdirect::core {

/// GraRep-model hyper-parameters.
struct GraRepModelConfig {
  embedding::GraRepConfig grarep;
  embedding::EdgeOperator edge_operator =
      embedding::EdgeOperator::kConcatenate;
  ml::LogisticRegressionConfig regression = {
      .epochs = 20, .learning_rate = 0.05, .min_lr_fraction = 0.1,
      .l2 = 1e-4, .seed = 83, .shuffle = true};
};

/// Trained GraRep + logistic-regression directionality model.
class GraRepModel : public DirectionalityModel {
 public:
  static std::unique_ptr<GraRepModel> Train(
      const graph::MixedSocialNetwork& g, const GraRepModelConfig& config);

  double Directionality(graph::NodeId u, graph::NodeId v) const override;
  std::string name() const override { return "GraRep"; }

 private:
  GraRepModel(embedding::GraRepEmbedding embedding,
              embedding::EdgeOperator op, size_t feature_dims)
      : embedding_(std::move(embedding)),
        edge_operator_(op),
        regression_(feature_dims) {}

  embedding::GraRepEmbedding embedding_;
  embedding::EdgeOperator edge_operator_;
  ml::LogisticRegression regression_;
};

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_GRAREP_MODEL_H_
