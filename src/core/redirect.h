// ReDirect-N/sm and ReDirect-T/sm: the semi-supervised baselines of
// Sec. 6.1, re-implemented from the descriptions in this paper (the full
// ReDirect framework is in reference [10], which specifies four
// directionality patterns; this paper's experiments describe the two
// variants at the level implemented here — see DESIGN.md, Substitutions).
//
//  * ReDirect-N/sm (node-centroid): every node i carries two latent vectors
//    h_i and h'_i; the directionality value of a tie (i, j) is
//    σ(h_i · h'_j). The vectors are learned by SGD on (a) cross-entropy
//    against the labels of directed arcs and (b) pattern pseudo-labels on
//    unlabeled arcs (degree consistency, plus triad status consistency via
//    the model's own current predictions), which propagates label
//    information through shared node factors.
//
//  * ReDirect-T/sm (tie-centroid): every closure arc carries a scalar
//    directionality value x_e. Labeled arcs are clamped to their labels;
//    unlabeled arcs start from the degree-pattern prior and are iteratively
//    updated toward the pattern consensus of their neighboring ties (triad
//    status over common neighbors) until convergence.

#ifndef DEEPDIRECT_CORE_REDIRECT_H_
#define DEEPDIRECT_CORE_REDIRECT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/directionality.h"
#include "core/tie_index.h"
#include "graph/mixed_graph.h"
#include "ml/matrix.h"
#include "train/lr_schedule.h"

namespace deepdirect::core {

/// ReDirect-N/sm hyper-parameters (paper: Z = 40).
struct RedirectNConfig {
  size_t dimensions = 40;  ///< Z, latent width per node vector
  size_t epochs = 60;      ///< SGD passes over the closure arcs
  double learning_rate = 0.05;
  double min_lr_fraction = 0.05;
  double l2 = 1e-4;
  /// Weight of pattern pseudo-label terms relative to supervised terms.
  double pattern_weight = 0.5;
  uint64_t seed = 31;

  /// The decay schedule these parameters describe.
  train::LrSchedule Schedule() const {
    return {learning_rate, min_lr_fraction,
            train::LrSchedule::Decay::kInterpolatedLinear};
  }
};

/// Node-centroid semi-supervised ReDirect.
class RedirectNModel : public DirectionalityModel {
 public:
  static std::unique_ptr<RedirectNModel> Train(
      const graph::MixedSocialNetwork& g, const RedirectNConfig& config);

  double Directionality(graph::NodeId u, graph::NodeId v) const override;
  std::string name() const override { return "ReDirect-N/sm"; }

 private:
  RedirectNModel(size_t num_nodes, size_t dimensions)
      : h_(num_nodes, dimensions), h_prime_(num_nodes, dimensions) {}

  ml::Matrix h_;        // proposer factors
  ml::Matrix h_prime_;  // responder factors
};

/// ReDirect-T/sm hyper-parameters.
struct RedirectTConfig {
  size_t max_iterations = 40;
  /// Convergence threshold on the max per-arc change.
  double tolerance = 1e-4;
  /// Damping of each update toward the pattern consensus.
  double damping = 0.7;
  /// Cap on common neighbors consulted per arc per round.
  size_t max_common_neighbors = 10;
  uint64_t seed = 33;
};

/// Tie-centroid semi-supervised ReDirect.
class RedirectTModel : public DirectionalityModel {
 public:
  static std::unique_ptr<RedirectTModel> Train(
      const graph::MixedSocialNetwork& g, const RedirectTConfig& config);

  double Directionality(graph::NodeId u, graph::NodeId v) const override;
  std::string name() const override { return "ReDirect-T/sm"; }

  /// Number of propagation rounds actually run (exposed for tests).
  size_t iterations_run() const { return iterations_run_; }

 private:
  explicit RedirectTModel(TieIndex index)
      : index_(std::move(index)), values_(index_.num_arcs(), 0.5) {}

  TieIndex index_;
  std::vector<double> values_;  // directionality value per closure arc
  size_t iterations_run_ = 0;
};

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_REDIRECT_H_
