// Cross-validated grid search for DeepDirect's loss weights.
//
// Sec. 6.1: "As for the hyper parameters α and β ... we use the grid
// search with cross-validation to determine the optimal values." This
// module implements that protocol: a fraction of the network's directed
// ties is held out as a validation fold (their directions hidden, exactly
// the Sec. 6.2 evaluation transform), DeepDirect is trained per (α, β)
// cell on the remainder, and the cell with the best validation
// direction-discovery accuracy wins. Multiple folds average the score.

#ifndef DEEPDIRECT_CORE_GRID_SEARCH_H_
#define DEEPDIRECT_CORE_GRID_SEARCH_H_

#include <vector>

#include "core/deepdirect.h"
#include "graph/mixed_graph.h"

namespace deepdirect::core {

/// Grid and protocol parameters.
struct GridSearchConfig {
  /// Candidate values for α (weight of L_label).
  std::vector<double> alphas{0.0, 0.1, 1.0, 5.0};
  /// Candidate values for β (weight of L_pattern).
  std::vector<double> betas{0.0, 0.1, 1.0};
  /// Fraction of directed ties hidden as the validation fold.
  double validation_fraction = 0.2;
  /// Number of independent folds averaged per cell.
  size_t folds = 1;
  uint64_t seed = 71;
  /// Everything except alpha/beta for the trained models.
  DeepDirectConfig base;
};

/// One evaluated grid cell.
struct GridCell {
  double alpha = 0.0;
  double beta = 0.0;
  double validation_accuracy = 0.0;
};

/// Full grid-search outcome.
struct GridSearchResult {
  GridCell best;
  std::vector<GridCell> cells;  ///< row-major over (alphas × betas)
};

/// Runs the search on `g` (must contain directed ties). Deterministic for
/// a fixed config.
GridSearchResult GridSearchDeepDirect(const graph::MixedSocialNetwork& g,
                                      const GridSearchConfig& config);

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_GRID_SEARCH_H_
