// SpringRank directionality baseline: infer per-node status from the
// labeled directed ties (graph/spring_rank.h) and predict
// d(u, v) = σ(κ·(s_v − s_u)) — the purest realization of the status-theory
// view the paper's patterns derive from. A strong, nearly parameter-free
// reference point for every learned model.

#ifndef DEEPDIRECT_CORE_SPRING_RANK_MODEL_H_
#define DEEPDIRECT_CORE_SPRING_RANK_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/directionality.h"
#include "graph/mixed_graph.h"
#include "graph/spring_rank.h"
#include "ml/logistic_regression.h"

namespace deepdirect::core {

/// SpringRank-model parameters.
struct SpringRankModelConfig {
  graph::SpringRankConfig spring_rank;
  /// The score-gap scale κ is fit by a 1-D logistic regression on the
  /// labeled ties with these settings.
  ml::LogisticRegressionConfig calibration = {
      .epochs = 30, .learning_rate = 0.1, .min_lr_fraction = 0.1,
      .l2 = 0.0, .seed = 73, .shuffle = true};
};

/// Status-comparison directionality model.
class SpringRankModel : public DirectionalityModel {
 public:
  static std::unique_ptr<SpringRankModel> Train(
      const graph::MixedSocialNetwork& g,
      const SpringRankModelConfig& config);

  double Directionality(graph::NodeId u, graph::NodeId v) const override;
  std::string name() const override { return "SpringRank"; }

  /// The inferred per-node status scores.
  const std::vector<double>& scores() const { return scores_; }

 private:
  SpringRankModel(std::vector<double> scores)
      : scores_(std::move(scores)), calibration_(1) {}

  std::vector<double> scores_;
  ml::LogisticRegression calibration_;  // d = σ(w·(s_v − s_u) + b)
};

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_SPRING_RANK_MODEL_H_
