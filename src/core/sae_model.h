// SAE directionality model: autoencoder node embeddings + edge operator +
// logistic regression. The autoencoder branch of the related-work
// comparison (paper reference [13]).

#ifndef DEEPDIRECT_CORE_SAE_MODEL_H_
#define DEEPDIRECT_CORE_SAE_MODEL_H_

#include <memory>
#include <string>

#include "core/directionality.h"
#include "embedding/edge_features.h"
#include "embedding/sae.h"
#include "graph/mixed_graph.h"
#include "ml/logistic_regression.h"

namespace deepdirect::core {

/// SAE-model hyper-parameters.
struct SaeModelConfig {
  embedding::SaeConfig sae;
  embedding::EdgeOperator edge_operator =
      embedding::EdgeOperator::kConcatenate;
  ml::LogisticRegressionConfig regression = {
      .epochs = 20, .learning_rate = 0.05, .min_lr_fraction = 0.1,
      .l2 = 1e-4, .seed = 69, .shuffle = true};
};

/// Trained SAE + logistic-regression directionality model.
class SaeModel : public DirectionalityModel {
 public:
  static std::unique_ptr<SaeModel> Train(const graph::MixedSocialNetwork& g,
                                         const SaeModelConfig& config);

  double Directionality(graph::NodeId u, graph::NodeId v) const override;
  std::string name() const override { return "SAE"; }

 private:
  SaeModel(embedding::SaeEmbedding embedding, embedding::EdgeOperator op,
           size_t feature_dims)
      : embedding_(std::move(embedding)),
        edge_operator_(op),
        regression_(feature_dims) {}

  embedding::SaeEmbedding embedding_;
  embedding::EdgeOperator edge_operator_;
  ml::LogisticRegression regression_;
};

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_SAE_MODEL_H_
