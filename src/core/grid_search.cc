#include "core/grid_search.h"

#include "core/applications.h"
#include "graph/algorithms.h"
#include "util/random.h"

namespace deepdirect::core {

GridSearchResult GridSearchDeepDirect(const graph::MixedSocialNetwork& g,
                                      const GridSearchConfig& config) {
  DD_CHECK_GT(g.num_directed_ties(), 0u);
  DD_CHECK(!config.alphas.empty());
  DD_CHECK(!config.betas.empty());
  DD_CHECK_GT(config.folds, 0u);
  DD_CHECK_GT(config.validation_fraction, 0.0);
  DD_CHECK_LT(config.validation_fraction, 1.0);

  // Pre-draw the folds so every cell sees identical splits.
  std::vector<graph::HiddenDirectionSplit> folds;
  folds.reserve(config.folds);
  for (size_t fold = 0; fold < config.folds; ++fold) {
    util::Rng rng(config.seed + fold * 7919);
    folds.push_back(
        graph::HideDirections(g, 1.0 - config.validation_fraction, rng));
  }

  GridSearchResult result;
  result.best.validation_accuracy = -1.0;
  for (double alpha : config.alphas) {
    for (double beta : config.betas) {
      DeepDirectConfig cell_config = config.base;
      cell_config.alpha = alpha;
      cell_config.beta = beta;
      double total = 0.0;
      for (const auto& fold : folds) {
        const auto model =
            DeepDirectModel::Train(fold.network, cell_config);
        total += DirectionDiscoveryAccuracy(fold, *model);
      }
      GridCell cell{alpha, beta, total / static_cast<double>(folds.size())};
      if (cell.validation_accuracy > result.best.validation_accuracy) {
        result.best = cell;
      }
      result.cells.push_back(cell);
    }
  }
  return result;
}

}  // namespace deepdirect::core
