// Uniform construction of every directionality-learning method evaluated in
// Sec. 6, so experiments iterate over methods generically.

#ifndef DEEPDIRECT_CORE_MODELS_H_
#define DEEPDIRECT_CORE_MODELS_H_

#include <memory>
#include <vector>

#include "core/deepdirect.h"
#include "core/directionality.h"
#include "core/hf_model.h"
#include "core/line_model.h"
#include "core/redirect.h"
#include "graph/mixed_graph.h"

namespace deepdirect::core {

/// The five methods of the paper's comparison (Sec. 6.1).
enum class Method {
  kLine = 0,
  kHf = 1,
  kDeepDirect = 2,
  kRedirectNsm = 3,
  kRedirectTsm = 4,
};

/// All methods in the paper's listing order.
std::vector<Method> AllMethods();

/// Display name matching the paper's plots.
const char* MethodName(Method method);

/// Bundle of per-method configurations with paper defaults.
struct MethodConfigs {
  LineModelConfig line;
  HfConfig hf;
  DeepDirectConfig deepdirect;
  RedirectNConfig redirect_n;
  RedirectTConfig redirect_t;

  /// Paper parameterization (Sec. 6.1): DeepDirect l = 128, λ = 5, τ = 10;
  /// LINE l = 64 (so the concatenated tie vector is 128); ReDirect-N Z = 40.
  static MethodConfigs PaperDefaults();

  /// Scaled-down settings for fast experiment sweeps on the synthetic
  /// datasets (l = 64, τ = 5, LINE 32-dim halves); preserves every ordering
  /// the paper reports while keeping a full Fig. 3 sweep in CI time.
  static MethodConfigs FastDefaults();

  /// Sets the SGD worker count of every trainer that runs on the
  /// train::SgdDriver engine (0 = all hardware threads; 1 = deterministic)
  /// and of the deterministic preprocessing stages (DeepDirect pattern
  /// precompute via deepdirect.num_threads, HF centrality sweeps).
  void SetNumThreads(size_t n) {
    deepdirect.num_threads = n;
    deepdirect.d_step.num_threads = n;
    line.line.num_threads = n;
    line.regression.num_threads = n;
    hf.features.num_threads = n;
    hf.regression.num_threads = n;
  }

  /// Enables crash-safe checkpointing for every SgdDriver trainer: all
  /// five write into `dir` under distinguishing trainer tags
  /// (deepdirect.estep, deepdirect.dstep, line.embed, line.regression,
  /// hf.regression), so one directory serves a whole pipeline run. With
  /// `resume` set, each trainer restores its newest valid checkpoint
  /// before training.
  void SetCheckpointing(const std::string& dir,
                        const train::CheckpointPolicy& policy, bool resume) {
    auto apply = [&](train::CheckpointOptions& options,
                     const std::string& trainer) {
      options.dir = dir;
      options.trainer = trainer;
      options.policy = policy;
      options.resume = resume;
    };
    apply(deepdirect.checkpoint, "deepdirect.estep");
    apply(deepdirect.d_step.checkpoint, "deepdirect.dstep");
    apply(line.line.checkpoint, "line.embed");
    apply(line.regression.checkpoint, "line.regression");
    apply(hf.regression.checkpoint, "hf.regression");
  }
};

/// Trains `method` on `g` with the matching config from `configs`.
std::unique_ptr<DirectionalityModel> TrainMethod(
    const graph::MixedSocialNetwork& g, Method method,
    const MethodConfigs& configs);

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_MODELS_H_
