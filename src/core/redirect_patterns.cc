#include "core/redirect_patterns.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace deepdirect::core {

using graph::MixedSocialNetwork;
using graph::NodeId;

double NeighborhoodJaccard(const MixedSocialNetwork& g, NodeId a, NodeId b) {
  const auto na = g.UndirectedNeighbors(a);
  const auto nb = g.UndirectedNeighbors(b);
  if (na.empty() && nb.empty()) return 0.0;
  size_t intersection = 0;
  auto it_a = na.begin();
  auto it_b = nb.begin();
  while (it_a != na.end() && it_b != nb.end()) {
    if (*it_a < *it_b) {
      ++it_a;
    } else if (*it_b < *it_a) {
      ++it_b;
    } else {
      ++intersection;
      ++it_a;
      ++it_b;
    }
  }
  const size_t uni = na.size() + nb.size() - intersection;
  return uni == 0 ? 0.0
                  : static_cast<double>(intersection) /
                        static_cast<double>(uni);
}

namespace {

// Precomputed per-arc data for the four estimators.
struct ArcPatterns {
  double degree_prior = 0.5;
  // Triad: arc-index pairs (uw, vw) over sampled common neighbors.
  std::vector<std::pair<uint32_t, uint32_t>> triads;
  // Similarity: (arc index of (u', v), Jaccard(u, u')) — values of similar
  // proposers toward the same responder.
  std::vector<std::pair<uint32_t, double>> similar;
};

}  // namespace

std::unique_ptr<RedirectFullModel> RedirectFullModel::Train(
    const MixedSocialNetwork& g, const RedirectFullConfig& config) {
  if (config.use_labels) DD_CHECK_GT(g.num_directed_ties(), 0u);
  TieIndex index(g);
  std::unique_ptr<RedirectFullModel> model(
      new RedirectFullModel(std::move(index), config.use_labels));
  const TieIndex& idx = model->index_;
  std::vector<double>& x = model->values_;
  const size_t num_arcs = idx.num_arcs();

  util::Rng rng(config.seed);

  std::vector<uint8_t> is_free(num_arcs, 0);
  std::vector<ArcPatterns> patterns(num_arcs);
  for (size_t e = 0; e < num_arcs; ++e) {
    const auto [u, v] = idx.ArcAt(e);
    if (config.use_labels && idx.IsLabeled(e)) {
      x[e] = idx.Label(e);
      continue;
    }
    // Bidirectional arcs propagate freely like undirected ones (their
    // converged value quantifies the dominant direction, Sec. 5.2).
    is_free[e] = 1;
    ArcPatterns& p = patterns[e];
    const double deg_u = g.Deg(u), deg_v = g.Deg(v);
    p.degree_prior =
        deg_u + deg_v > 0.0 ? deg_v / (deg_u + deg_v) : 0.5;
    x[e] = p.degree_prior;

    std::vector<NodeId> common = g.CommonNeighbors(u, v);
    if (common.size() > config.max_common_neighbors) {
      rng.Shuffle(common);
      common.resize(config.max_common_neighbors);
    }
    p.triads.reserve(common.size());
    for (NodeId w : common) {
      p.triads.emplace_back(static_cast<uint32_t>(idx.IndexOf(u, w)),
                            static_cast<uint32_t>(idx.IndexOf(v, w)));
    }

    // Similarity: other proposers u' of v, weighted by Jaccard(u, u').
    std::vector<NodeId> other(g.UndirectedNeighbors(v).begin(),
                              g.UndirectedNeighbors(v).end());
    if (other.size() > config.max_similar_ties + 1) {
      rng.Shuffle(other);
      other.resize(config.max_similar_ties + 1);
    }
    for (NodeId u_prime : other) {
      if (u_prime == u) continue;
      const double sim = NeighborhoodJaccard(g, u, u_prime);
      if (sim <= 0.0) continue;
      p.similar.emplace_back(static_cast<uint32_t>(idx.IndexOf(u_prime, v)),
                             sim);
    }
  }

  // Collaborative pattern: node proposer propensities from current values.
  std::vector<double> propensity(g.num_nodes(), 0.5);
  auto refresh_propensities = [&]() {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const auto neighbors = idx.Neighbors(u);
      if (neighbors.empty()) continue;
      double total = 0.0;
      for (NodeId v : neighbors) total += x[idx.IndexOf(u, v)];
      propensity[u] = total / static_cast<double>(neighbors.size());
    }
  };

  const double weight_total =
      config.degree_weight + config.triad_weight +
      config.similarity_weight + config.collaborative_weight;
  DD_CHECK_GT(weight_total, 0.0);

  std::vector<double> next(x);
  size_t round = 0;
  for (; round < config.max_iterations; ++round) {
    refresh_propensities();
    for (size_t e = 0; e < num_arcs; ++e) {
      if (!is_free[e]) continue;
      const auto [u, v] = idx.ArcAt(e);
      const ArcPatterns& p = patterns[e];

      double estimate = config.degree_weight * p.degree_prior;
      double active_weight = config.degree_weight;

      if (!p.triads.empty() && config.triad_weight > 0.0) {
        double triad = 0.0;
        double triad_count = 0.0;
        for (const auto& [uw, vw] : p.triads) {
          const double denom = x[uw] + x[vw];
          if (denom > 1e-12) {
            triad += x[uw] / denom;
            triad_count += 1.0;
          }
        }
        if (triad_count > 0.0) {
          estimate += config.triad_weight * triad / triad_count;
          active_weight += config.triad_weight;
        }
      }

      if (!p.similar.empty() && config.similarity_weight > 0.0) {
        double weighted = 0.0, sim_total = 0.0;
        for (const auto& [arc, sim] : p.similar) {
          weighted += sim * x[arc];
          sim_total += sim;
        }
        if (sim_total > 0.0) {
          estimate += config.similarity_weight * weighted / sim_total;
          active_weight += config.similarity_weight;
        }
      }

      if (config.collaborative_weight > 0.0) {
        const double denom = propensity[u] + propensity[v];
        const double collaborative =
            denom > 1e-12 ? propensity[u] / denom : 0.5;
        estimate += config.collaborative_weight * collaborative;
        active_weight += config.collaborative_weight;
      }

      estimate /= active_weight;
      next[e] = (1.0 - config.damping) * x[e] + config.damping * estimate;
    }

    // Pair constraint.
    for (size_t e = 0; e < num_arcs; ++e) {
      if (!is_free[e]) continue;
      const size_t r = idx.ReverseOf(e);
      if (e < r && is_free[r]) {
        const double total = next[e] + next[r];
        if (total > 1e-12) {
          next[e] /= total;
          next[r] /= total;
        } else {
          next[e] = next[r] = 0.5;
        }
      } else if (!is_free[r]) {
        next[e] = 1.0 - x[r];
      }
    }

    double max_change = 0.0;
    for (size_t e = 0; e < num_arcs; ++e) {
      if (is_free[e]) {
        max_change = std::max(max_change, std::abs(next[e] - x[e]));
      }
    }
    std::swap(x, next);
    if (max_change < config.tolerance) {
      ++round;
      break;
    }
  }
  model->iterations_run_ = round;
  return model;
}

double RedirectFullModel::Directionality(NodeId u, NodeId v) const {
  return values_[index_.IndexOf(u, v)];
}

}  // namespace deepdirect::core
