#include "core/hf_model.h"

#include "ml/dataset.h"

namespace deepdirect::core {

using graph::MixedSocialNetwork;
using graph::NodeId;

std::unique_ptr<HfModel> HfModel::Train(const MixedSocialNetwork& g,
                                        const HfConfig& config) {
  // unique_ptr via `new`: the constructor is private.
  std::unique_ptr<HfModel> model(new HfModel(g, config));

  ml::Dataset data(kNumHandcraftedFeatures);
  std::vector<double> features(kNumHandcraftedFeatures);
  for (graph::ArcId id : g.directed_arcs()) {
    const graph::Arc& a = g.arc(id);
    model->extractor_.Extract(a.src, a.dst, features);
    data.Add(features, 1.0);
    model->extractor_.Extract(a.dst, a.src, features);
    data.Add(features, 0.0);
  }

  model->scaler_.Fit(data);
  model->scaler_.Transform(data);
  model->regression_.Train(data, config.regression);
  return model;
}

double HfModel::Directionality(NodeId u, NodeId v) const {
  std::vector<double> features = extractor_.Extract(u, v);
  scaler_.TransformRow(features);
  return regression_.Predict(features);
}

}  // namespace deepdirect::core
