// DirectionalityModel: the common interface of every TDL solver.
//
// A trained model realizes the directionality function d : E → [0, 1] of
// Definition 2 for the network it was trained on: Directionality(u, v) is
// the modeled probability that the tie between u and v points u → v.

#ifndef DEEPDIRECT_CORE_DIRECTIONALITY_H_
#define DEEPDIRECT_CORE_DIRECTIONALITY_H_

#include <string>

#include "graph/types.h"

namespace deepdirect::core {

/// Abstract directionality function over a fixed training network.
class DirectionalityModel {
 public:
  virtual ~DirectionalityModel() = default;

  /// d(u, v): modeled probability the tie between u and v points u → v.
  /// Both nodes must be endpoints of a tie in the training network.
  virtual double Directionality(graph::NodeId u, graph::NodeId v) const = 0;

  /// Short method name for reports ("DeepDirect", "HF", "LINE", ...).
  virtual std::string name() const = 0;
};

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_DIRECTIONALITY_H_
