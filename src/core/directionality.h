// DirectionalityModel: the common interface of every TDL solver.
//
// A trained model realizes the directionality function d : E → [0, 1] of
// Definition 2 for the network it was trained on: Directionality(u, v) is
// the modeled probability that the tie between u and v points u → v.

#ifndef DEEPDIRECT_CORE_DIRECTIONALITY_H_
#define DEEPDIRECT_CORE_DIRECTIONALITY_H_

#include <string>

#include "graph/types.h"
#include "util/status.h"

namespace deepdirect::core {

/// Abstract directionality function over a fixed training network.
class DirectionalityModel {
 public:
  virtual ~DirectionalityModel() = default;

  /// d(u, v): modeled probability the tie between u and v points u → v.
  /// Both nodes must be endpoints of a tie in the training network.
  virtual double Directionality(graph::NodeId u, graph::NodeId v) const = 0;

  /// The fallible form of the unknown-tie contract: d(u, v) when the model
  /// can evaluate the pair, a structured NotFound when the pair hosts no
  /// training tie. The base default forwards to Directionality() — correct
  /// for models whose d is defined on arbitrary pairs; models whose d
  /// exists only on training ties (DeepDirect's per-arc embedding rows)
  /// override this to report NotFound instead of tripping the
  /// Directionality() precondition check. Serving layers query through
  /// this entry point exclusively.
  virtual util::Result<double> TryDirectionality(graph::NodeId u,
                                                 graph::NodeId v) const {
    return Directionality(u, v);
  }

  /// Short method name for reports ("DeepDirect", "HF", "LINE", ...).
  virtual std::string name() const = 0;
};

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_DIRECTIONALITY_H_
