// The line-graph route to edge embeddings — the second indirect approach
// Sec. 4 discusses and rejects: convert the (closure) network to its line
// digraph, run a node-based embedding on it, and treat each line-graph
// node's vector as the tie embedding. Implemented so the paper's cost
// argument (|V_line| = |E|, |E_line| = Σ d_in·d_out blow-up) and quality
// comparison can be made empirically (see bench_ablations /
// bench_line_graph rows).

#ifndef DEEPDIRECT_CORE_LINE_GRAPH_MODEL_H_
#define DEEPDIRECT_CORE_LINE_GRAPH_MODEL_H_

#include <memory>
#include <string>

#include "core/directionality.h"
#include "core/tie_index.h"
#include "embedding/edge_list_embedding.h"
#include "graph/mixed_graph.h"
#include "ml/logistic_regression.h"

namespace deepdirect::core {

/// Line-graph-model hyper-parameters.
struct LineGraphModelConfig {
  embedding::EdgeListEmbeddingConfig embedding;
  ml::LogisticRegressionConfig regression = {
      .epochs = 20, .learning_rate = 0.05, .min_lr_fraction = 0.1,
      .l2 = 1e-4, .seed = 61, .shuffle = true};
};

/// Tie embeddings via LINE-on-the-line-graph + logistic regression.
class LineGraphModel : public DirectionalityModel {
 public:
  static std::unique_ptr<LineGraphModel> Train(
      const graph::MixedSocialNetwork& g, const LineGraphModelConfig& config);

  double Directionality(graph::NodeId u, graph::NodeId v) const override;
  std::string name() const override { return "LINE-linegraph"; }

  /// Size of the materialized line digraph (the blow-up the paper warns
  /// about).
  size_t line_graph_nodes() const { return index_.num_arcs(); }
  uint64_t line_graph_edges() const { return index_.NumConnectedTiePairs(); }

 private:
  LineGraphModel(TieIndex index, ml::Matrix vectors)
      : index_(std::move(index)),
        vectors_(std::move(vectors)),
        regression_(vectors_.cols()) {}

  TieIndex index_;
  ml::Matrix vectors_;  // one row per closure arc
  ml::LogisticRegression regression_;
};

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_LINE_GRAPH_MODEL_H_
