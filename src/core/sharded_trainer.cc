#include "core/sharded_trainer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <utility>

#include "core/estep_body.h"
#include "ml/dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "train/sgd_driver.h"
#include "util/alias_table.h"
#include "util/random.h"

namespace deepdirect::core {

using graph::MixedSocialNetwork;
using graph::NodeId;

namespace {

// Storage environment adapting the mmap-backed ShardedStore to the shared
// E-step body — the out-of-core twin of InRamEnv in deepdirect.cc. Row
// spans point into MAP_SHARED mappings; the arithmetic against them is
// identical to the heap case by construction.
struct StoreEnv {
  train::ShardedStore& store;
  const util::AliasTable& source_table;
  const util::AliasTable& noise_table;
  // Shard-affine source sampling (Hogwild only): per-shard P_c restricted
  // to the shard's arcs, plus a mass flag — a shard whose every tie has an
  // empty c(e) must fall back to the global table or the resample loop in
  // the step body would spin forever inside the shard.
  const std::vector<util::AliasTable>& shard_tables;
  const std::vector<uint8_t>& shard_has_mass;

  size_t num_arcs() const { return store.num_arcs(); }
  std::span<float> MRow(size_t e) { return store.EmbRow(e); }
  std::span<float> NRow(size_t e) { return store.ConnRow(e); }
  size_t SampleSource(const train::SgdStep& ctx, util::Rng& r) const {
    const size_t s = ctx.shard;
    if (s == train::kNoShard || shard_tables.empty() ||
        shard_has_mass[s] == 0) {
      return source_table.Sample(r);
    }
    return static_cast<size_t>(store.ShardArcBegin(s)) +
           shard_tables[s].Sample(r);
  }
  size_t SampleNoise(util::Rng& r) const { return noise_table.Sample(r); }
  size_t SampleConnectedTie(size_t e, util::Rng& r) const {
    return store.SampleConnectedTie(e, r);
  }
  ArcClass ClassOf(size_t e) const {
    return static_cast<ArcClass>(store.ClassByte(e));
  }
  bool IsLabeled(size_t e) const {
    const ArcClass c = ClassOf(e);
    return c == ArcClass::kLabeledPositive || c == ArcClass::kLabeledNegative;
  }
  double Label(size_t e) const {
    return ClassOf(e) == ArcClass::kLabeledPositive ? 1.0 : 0.0;
  }
  uint32_t TieDegreeOf(size_t e) const { return store.TieDegree(e); }
  train::ShardedStore::PatternView Pattern(size_t e) const {
    return store.Pattern(e);
  }
  void NoteStep() { store.NoteStep(); }
};

}  // namespace

util::Result<std::unique_ptr<ShardedDeepDirectModel>>
ShardedDeepDirectModel::Train(const MixedSocialNetwork& g,
                              const DeepDirectConfig& config) {
  DD_CHECK_GT(g.num_directed_ties(), 0u);
  DD_CHECK_GT(config.dimensions, 0u);
  DD_CHECK_GE(config.epochs, 0.0);
  if (config.sharding.num_shards == 0 || config.sharding.dir.empty()) {
    return util::Status::InvalidArgument(
        "sharded training requires sharding.num_shards > 0 and a store "
        "directory");
  }
  if (!config.checkpoint.dir.empty()) {
    return util::Status::InvalidArgument(
        "checkpointing is not supported out-of-core (the shard store is "
        "the durable E-step state)");
  }
  if (config.d_step_head == DStepHead::kMlp) {
    return util::Status::InvalidArgument(
        "the MLP D-step head is not supported out-of-core");
  }

  obs::PhaseScope train_phase("deepdirect.sharded.train");
  std::optional<obs::PhaseScope> phase;
  phase.emplace("deepdirect.sharded.preprocess");
  const TieIndex idx(g);
  const size_t num_arcs = idx.num_arcs();
  const size_t l = config.dimensions;

  util::Rng rng(config.seed);

  const PatternPrecompute patterns = PrecomputePatterns(g, idx, config);

  // --- Spill everything the E-step reads into the store -------------------
  phase.emplace("deepdirect.sharded.create_store");
  static_assert(sizeof(NodeId) == sizeof(uint32_t));
  static_assert(sizeof(ArcClass) == sizeof(uint8_t));
  static_assert(sizeof(std::pair<uint32_t, uint32_t>) ==
                    sizeof(graph::shard::TriadPair),
                "TriadPair must be layout-compatible with the arena pairs");
  train::ShardedStoreInit init;
  init.offsets = idx.Offsets();
  init.adjacency = {reinterpret_cast<const uint32_t*>(idx.Adjacency().data()),
                    idx.Adjacency().size()};
  init.sources = {reinterpret_cast<const uint32_t*>(idx.Sources().data()),
                  idx.Sources().size()};
  init.classes = {reinterpret_cast<const uint8_t*>(idx.RawClasses().data()),
                  idx.RawClasses().size()};
  init.num_connected_pairs = idx.NumConnectedTiePairs();
  init.arc_hash = HashTieIndex(idx);
  init.dimensions = l;
  init.slot = patterns.slot;
  init.degree_pseudo_label = patterns.degree_pseudo_label;
  init.degree_active = patterns.degree_active;
  init.triad_offsets = patterns.triad_offsets;
  init.triad_pairs = {reinterpret_cast<const graph::shard::TriadPair*>(
                          patterns.triad_pairs.data()),
                      patterns.triad_pairs.size()};

  train::ShardedStoreOptions store_options;
  store_options.dir = config.sharding.dir;
  store_options.num_shards =
      std::min(config.sharding.num_shards, std::max<size_t>(1, num_arcs));
  store_options.ram_budget_mb = config.sharding.ram_budget_mb;

  // The embedding fill consumes `rng` in the ml::Matrix::FillUniform draw
  // order — the same draws at the same point in the stream as the in-RAM
  // trainer, the first leg of the bit-identity contract.
  const float init_bound = 0.5f / static_cast<float>(l);
  auto store_result = train::ShardedStore::Create(store_options, init, rng,
                                                  -init_bound, init_bound);
  if (!store_result.ok()) return store_result.status();
  std::unique_ptr<train::ShardedStore> store =
      std::move(store_result).value();

  // --- E-Step -------------------------------------------------------------
  phase.emplace("deepdirect.sharded.estep");
  std::vector<double> w_prime(l, 0.0);
  double b_prime = 0.0;

  // Sampling distributions over closure arcs, built exactly as the in-RAM
  // trainer builds them (same weights, same fallback).
  std::vector<double> pc_weights(num_arcs);
  std::vector<double> pn_weights(num_arcs);
  for (size_t e = 0; e < num_arcs; ++e) {
    const double deg = idx.TieDegree(e);
    pc_weights[e] = deg;
    pn_weights[e] = config.uniform_negative_sampling
                        ? 1.0
                        : std::pow(deg + 1.0, 0.75);
  }
  double pc_total = 0.0;
  for (double w : pc_weights) pc_total += w;
  if (pc_total <= 0.0) std::fill(pc_weights.begin(), pc_weights.end(), 1.0);
  const util::AliasTable source_table(pc_weights);
  const util::AliasTable noise_table(pn_weights);

  // Shard-affine sampling for Hogwild: per-shard P_c over the shard's arc
  // range, with the shard's total P_c mass as its step-apportionment
  // weight. The serial path never consults any of this (global sampling →
  // nt=1 output is independent of the shard count).
  const size_t num_shards = store->num_shards();
  std::vector<util::AliasTable> shard_tables;
  std::vector<uint8_t> shard_has_mass;
  train::ShardPlan plan;
  if (config.num_threads != 1 && num_shards > 1) {
    plan.num_shards = num_shards;
    plan.shard_weights.resize(num_shards, 0.0);
    shard_has_mass.resize(num_shards, 0);
    shard_tables.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t begin = static_cast<size_t>(store->ShardArcBegin(s));
      const size_t end = static_cast<size_t>(store->ShardArcEnd(s));
      std::vector<double> slice(pc_weights.begin() + begin,
                                pc_weights.begin() + end);
      double mass = 0.0;
      for (double w : slice) mass += w;
      plan.shard_weights[s] = mass;
      shard_has_mass[s] = mass > 0.0 ? 1 : 0;
      if (mass <= 0.0) std::fill(slice.begin(), slice.end(), 1.0);
      shard_tables.emplace_back(slice);
    }
  }

  const uint64_t iterations = static_cast<uint64_t>(
      config.epochs * static_cast<double>(idx.NumConnectedTiePairs()));
  const bool track_loss =
      static_cast<bool>(config.progress) || obs::Enabled();

  train::SgdOptions options;
  options.steps = iterations;
  options.num_threads = config.num_threads;
  options.lr = config.Schedule();
  options.shard_seed = config.seed;
  options.steps_per_epoch = idx.NumConnectedTiePairs();
  options.progress = config.progress;
  options.report_every = config.report_every;
  options.metrics_prefix = "train.deepdirect.sharded.estep";
  options.shard_plan = std::move(plan);

  train::SgdDriver driver(options);

  std::vector<std::vector<double>> grad_scratch(
      driver.num_workers(), std::vector<double>(l, 0.0));
  std::vector<internal::EStepTally> tallies(driver.num_workers());

  StoreEnv env{*store, source_table, noise_table, shard_tables,
               shard_has_mass};
  driver.Run(rng, [&](auto access, const train::SgdStep& ctx) -> double {
    using A = decltype(access);
    return internal::EStepStep<A>(env, ctx, config, iterations, track_loss,
                                  grad_scratch[ctx.worker], w_prime, b_prime,
                                  tallies[ctx.worker]);
  });

  internal::FlushTallies(tallies);

  // Seal the store: stamps CRCs and the sealed flag so the trained
  // parameters validate byte-for-byte and the directory can be reopened.
  DD_RETURN_NOT_OK(store->Seal());

  std::unique_ptr<ShardedDeepDirectModel> model(
      new ShardedDeepDirectModel(std::move(store)));
  model->e_step_weights_ = w_prime;
  model->e_step_bias_ = b_prime;

  // --- D-Step: same warm-started logistic regression as in-RAM, reading
  // labeled rows back out of the store (faulting shards in under the
  // budget — the dataset itself is only |labeled|×l doubles).
  phase.emplace("deepdirect.sharded.dstep");
  ml::Dataset data(l);
  std::vector<double> features(l);
  for (size_t e = 0; e < num_arcs; ++e) {
    if (!idx.IsLabeled(e)) continue;
    const auto row = model->store_->EmbRow(e);
    for (size_t k = 0; k < l; ++k) features[k] = row[k];
    data.Add(features, idx.Label(e));
  }
  model->d_step_ = ml::LogisticRegression(w_prime, b_prime);
  model->d_step_.Train(data, config.d_step);

  return model;
}

double ShardedDeepDirectModel::Directionality(NodeId u, NodeId v) const {
  const size_t e = store_->TryIndexOf(u, v);
  DD_CHECK_LT(e, store_->num_arcs());
  const auto row = store_->EmbRow(e);
  std::vector<double> features(row.size());
  for (size_t k = 0; k < row.size(); ++k) features[k] = row[k];
  return d_step_.Predict(features);
}

util::Result<double> ShardedDeepDirectModel::TryDirectionality(
    NodeId u, NodeId v) const {
  if (u >= store_->num_nodes() ||
      store_->TryIndexOf(u, v) == store_->num_arcs()) {
    return util::Status::NotFound(
        "no tie between " + std::to_string(u) + " and " + std::to_string(v) +
        " in the training network");
  }
  return Directionality(u, v);
}

}  // namespace deepdirect::core
