#include "core/line_graph_model.h"

#include "ml/dataset.h"

namespace deepdirect::core {

using graph::MixedSocialNetwork;
using graph::NodeId;

std::unique_ptr<LineGraphModel> LineGraphModel::Train(
    const MixedSocialNetwork& g, const LineGraphModelConfig& config) {
  DD_CHECK_GT(g.num_directed_ties(), 0u);
  TieIndex index(g);

  // Materialize the line digraph over the closure arcs (this is the memory
  // blow-up of the approach: |C(G)| edges).
  std::vector<std::pair<uint32_t, uint32_t>> line_edges;
  line_edges.reserve(index.NumConnectedTiePairs());
  for (size_t e = 0; e < index.num_arcs(); ++e) {
    const auto [u, v] = index.ArcAt(e);
    for (NodeId w : index.Neighbors(v)) {
      if (w == u) continue;
      line_edges.emplace_back(static_cast<uint32_t>(e),
                              static_cast<uint32_t>(index.IndexOf(v, w)));
    }
  }
  DD_CHECK_EQ(line_edges.size(), index.NumConnectedTiePairs());

  ml::Matrix vectors = embedding::TrainEdgeListEmbedding(
      index.num_arcs(), line_edges, config.embedding);

  std::unique_ptr<LineGraphModel> model(
      new LineGraphModel(std::move(index), std::move(vectors)));
  const TieIndex& idx = model->index_;

  ml::Dataset data(model->vectors_.cols());
  std::vector<double> features(model->vectors_.cols());
  for (size_t e = 0; e < idx.num_arcs(); ++e) {
    if (!idx.IsLabeled(e)) continue;
    const auto row = model->vectors_.Row(e);
    for (size_t k = 0; k < row.size(); ++k) features[k] = row[k];
    data.Add(features, idx.Label(e));
  }
  model->regression_.Train(data, config.regression);
  return model;
}

double LineGraphModel::Directionality(NodeId u, NodeId v) const {
  const auto row = vectors_.Row(index_.IndexOf(u, v));
  std::vector<double> features(row.size());
  for (size_t k = 0; k < row.size(); ++k) features[k] = row[k];
  return regression_.Predict(features);
}

}  // namespace deepdirect::core
