#include "core/redirect.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/random.h"

namespace deepdirect::core {

using graph::MixedSocialNetwork;
using graph::NodeId;

namespace {

// Pattern-consistent degree pseudo-label (see the Eq. 14 note in
// deepdirect.h): probability the tie (u, v) points toward the
// higher-degree endpoint v.
double DegreePseudoLabel(const MixedSocialNetwork& g, NodeId u, NodeId v) {
  const double deg_u = g.Deg(u);
  const double deg_v = g.Deg(v);
  const double denom = deg_u + deg_v;
  return denom > 0.0 ? deg_v / denom : 0.5;
}

}  // namespace

// --------------------------------------------------------------------------
// ReDirect-N/sm
// --------------------------------------------------------------------------

std::unique_ptr<RedirectNModel> RedirectNModel::Train(
    const MixedSocialNetwork& g, const RedirectNConfig& config) {
  DD_CHECK_GT(g.num_directed_ties(), 0u);
  std::unique_ptr<RedirectNModel> model(
      new RedirectNModel(g.num_nodes(), config.dimensions));

  util::Rng rng(config.seed);
  const float init = 0.5f / static_cast<float>(config.dimensions);
  model->h_.FillUniform(rng, -init, init);
  model->h_prime_.FillUniform(rng, -init, init);

  TieIndex index(g);
  const size_t num_arcs = index.num_arcs();

  // Static pseudo-labels for unlabeled arcs (degree pattern); bidirectional
  // arcs are skipped entirely (no direction to learn).
  std::vector<double> target(num_arcs, -1.0);
  std::vector<double> weight(num_arcs, 0.0);
  for (size_t e = 0; e < num_arcs; ++e) {
    const auto [u, v] = index.ArcAt(e);
    if (index.IsLabeled(e)) {
      target[e] = index.Label(e);
      weight[e] = 1.0;
    } else {
      // Undirected and bidirectional arcs are both unlabeled; the degree
      // pattern supplies their pseudo-target (for bidirectional arcs this
      // estimates the dominant direction — the quantification use case).
      target[e] = DegreePseudoLabel(g, u, v);
      weight[e] = config.pattern_weight;
    }
  }

  std::vector<size_t> order(num_arcs);
  std::iota(order.begin(), order.end(), 0);

  const size_t l = config.dimensions;
  const uint64_t total_steps =
      static_cast<uint64_t>(config.epochs) * num_arcs;
  uint64_t step = 0;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t e : order) {
      const double lr = config.Schedule().At(step, total_steps);
      ++step;
      if (weight[e] == 0.0) continue;

      const auto [u, v] = index.ArcAt(e);
      auto hu = model->h_.Row(u);
      auto hv = model->h_prime_.Row(v);
      const double prediction = ml::Sigmoid(ml::Dot(hu, hv));
      const double gradient = weight[e] * (prediction - target[e]);
      for (size_t k = 0; k < l; ++k) {
        const double hu_k = hu[k];
        const double hv_k = hv[k];
        hu[k] -= static_cast<float>(lr * (gradient * hv_k + config.l2 * hu_k));
        hv[k] -= static_cast<float>(lr * (gradient * hu_k + config.l2 * hv_k));
      }
    }
  }
  return model;
}

double RedirectNModel::Directionality(NodeId u, NodeId v) const {
  return ml::Sigmoid(ml::Dot(h_.Row(u), h_prime_.Row(v)));
}

// --------------------------------------------------------------------------
// ReDirect-T/sm
// --------------------------------------------------------------------------

std::unique_ptr<RedirectTModel> RedirectTModel::Train(
    const MixedSocialNetwork& g, const RedirectTConfig& config) {
  DD_CHECK_GT(g.num_directed_ties(), 0u);
  TieIndex index(g);
  std::unique_ptr<RedirectTModel> model(new RedirectTModel(std::move(index)));
  const TieIndex& idx = model->index_;
  std::vector<double>& x = model->values_;
  const size_t num_arcs = idx.num_arcs();

  util::Rng rng(config.seed);

  // Precompute the (capped) common-neighbor arc pairs per unlabeled arc.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> triads(num_arcs);
  std::vector<double> degree_prior(num_arcs, 0.5);
  std::vector<uint8_t> is_free(num_arcs, 0);
  for (size_t e = 0; e < num_arcs; ++e) {
    const auto [u, v] = idx.ArcAt(e);
    if (idx.IsLabeled(e)) {
      x[e] = idx.Label(e);
      continue;
    }
    // Undirected and bidirectional arcs both propagate freely — for
    // bidirectional ties the converged value quantifies the dominant
    // direction (Sec. 5.2).
    is_free[e] = 1;
    degree_prior[e] = DegreePseudoLabel(g, u, v);
    x[e] = degree_prior[e];
    std::vector<NodeId> common = g.CommonNeighbors(u, v);
    if (common.size() > config.max_common_neighbors) {
      rng.Shuffle(common);
      common.resize(config.max_common_neighbors);
    }
    triads[e].reserve(common.size());
    for (NodeId w : common) {
      triads[e].emplace_back(static_cast<uint32_t>(idx.IndexOf(u, w)),
                             static_cast<uint32_t>(idx.IndexOf(v, w)));
    }
  }

  std::vector<double> next(x);
  size_t round = 0;
  for (; round < config.max_iterations; ++round) {
    for (size_t e = 0; e < num_arcs; ++e) {
      if (!is_free[e]) continue;
      // Pattern consensus: degree prior plus triad-status estimate from the
      // current values of the neighboring ties.
      double estimate = degree_prior[e];
      double estimate_count = 1.0;
      for (const auto& [uw, vw] : triads[e]) {
        const double denom = x[uw] + x[vw];
        if (denom > 1e-12) {
          estimate += x[uw] / denom;
          estimate_count += 1.0;
        }
      }
      estimate /= estimate_count;
      next[e] = (1.0 - config.damping) * x[e] + config.damping * estimate;
    }
    // Enforce the pair constraint x_uv + x_vu = 1 on free arcs.
    for (size_t e = 0; e < num_arcs; ++e) {
      if (!is_free[e]) continue;
      const size_t r = idx.ReverseOf(e);
      if (e < r && is_free[r]) {
        const double total = next[e] + next[r];
        if (total > 1e-12) {
          next[e] /= total;
          next[r] /= total;
        } else {
          next[e] = next[r] = 0.5;
        }
      } else if (!is_free[r]) {
        next[e] = 1.0 - x[r];
      }
    }
    // Convergence is judged on the final (normalized) values.
    double max_change = 0.0;
    for (size_t e = 0; e < num_arcs; ++e) {
      if (is_free[e]) {
        max_change = std::max(max_change, std::abs(next[e] - x[e]));
      }
    }
    std::swap(x, next);
    if (max_change < config.tolerance) {
      ++round;
      break;
    }
  }
  model->iterations_run_ = round;
  return model;
}

double RedirectTModel::Directionality(NodeId u, NodeId v) const {
  return values_[index_.IndexOf(u, v)];
}

}  // namespace deepdirect::core
