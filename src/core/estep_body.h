// The E-step SGD step body (Algorithm 1, lines 12–15), shared between the
// in-RAM trainer (core/deepdirect.cc) and the out-of-core sharded trainer
// (core/sharded_trainer.cc).
//
// The body is templated over a storage environment `Env` so the identical
// float arithmetic runs against heap matrices or mmap-backed shard rows.
// Bit-identity between the two trainers at num_threads = 1 rests on this
// file being the single definition of the step: same kernel calls in the
// same order, same RNG draw sequence (SampleSource → SampleConnectedTie →
// per-negative SampleNoise), same classifier/warmup arithmetic.
//
// Env contract (duck-typed; see InRamEnv / StoreEnv at the call sites):
//   size_t num_arcs()
//   std::span<float> MRow(size_t e), NRow(size_t e)
//   size_t SampleSource(const train::SgdStep&, util::Rng&)  — P_c draw;
//       shard-affine envs may consult SgdStep::shard
//   size_t SampleNoise(util::Rng&)                          — P_n draw
//   size_t SampleConnectedTie(size_t e, util::Rng&)         — num_arcs()
//       when c(e) is empty
//   ArcClass ClassOf(e); bool IsLabeled(e); double Label(e)
//   uint32_t TieDegreeOf(e)
//   Pattern(e) → any type with fields {bool degree_active;
//       double pseudo_label; <range of .first/.second pairs> triads}
//   void NoteStep()  — per-step bookkeeping hook (LRU clock); must not
//       draw from any Rng or touch any float state

#ifndef DEEPDIRECT_CORE_ESTEP_BODY_H_
#define DEEPDIRECT_CORE_ESTEP_BODY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/tie_index.h"
#include "kernels/kernels.h"
#include "ml/matrix.h"
#include "obs/metrics.h"
#include "train/sgd_driver.h"
#include "util/random.h"

namespace deepdirect::core::internal {

// Bound on negative-sample redraws after a collision with the positive
// context. The noise distribution covers every closure arc, so a redraw
// almost surely escapes in one draw; the bound only guards degenerate
// networks where the positive context carries nearly all the noise mass.
inline constexpr size_t kMaxNegativeRedraws = 32;

// Per-worker E-Step sampler tallies, accumulated with plain increments in
// the step body (each worker owns one padded slot) and flushed into obs
// counters once after the run — the hot loop never touches shared metrics.
struct alignas(64) EStepTally {
  uint64_t resamples = 0;       ///< leaf-destination pair redraws
  uint64_t neg_collisions = 0;  ///< negative draw hit the positive context
  uint64_t negatives = 0;       ///< negatives actually trained on
  uint64_t labeled = 0;         ///< steps whose source arc is labeled
  uint64_t degree_pattern = 0;  ///< steps with the degree pattern active
  uint64_t triad_pattern = 0;   ///< steps with a non-empty triad set
};

inline void FlushTallies(const std::vector<EStepTally>& tallies) {
  if (!obs::Enabled()) return;
  EStepTally total;
  for (const EStepTally& t : tallies) {
    total.resamples += t.resamples;
    total.neg_collisions += t.neg_collisions;
    total.negatives += t.negatives;
    total.labeled += t.labeled;
    total.degree_pattern += t.degree_pattern;
    total.triad_pattern += t.triad_pattern;
  }
  obs::Registry& registry = obs::Registry::Default();
  registry.GetCounter("deepdirect.estep.sampler.resamples")
      ->Add(total.resamples);
  registry.GetCounter("deepdirect.estep.sampler.negative_collisions")
      ->Add(total.neg_collisions);
  registry.GetCounter("deepdirect.estep.sampler.negatives_trained")
      ->Add(total.negatives);
  registry.GetCounter("deepdirect.estep.sampler.labeled_steps")
      ->Add(total.labeled);
  registry.GetCounter("deepdirect.estep.sampler.degree_pattern_steps")
      ->Add(total.degree_pattern);
  registry.GetCounter("deepdirect.estep.sampler.triad_pattern_steps")
      ->Add(total.triad_pattern);
}

/// One E-step SGD step; returns the step's loss contribution (0.0 when
/// untracked). `A` is the parameter access policy (SerialAccess or
/// HogwildAccess), `config` any DeepDirect-shaped config with the E-step
/// hyperparameters.
template <typename A, typename Env, typename Config>
double EStepStep(Env& env, const train::SgdStep& ctx, const Config& config,
                 uint64_t total_iterations, bool track_loss,
                 std::vector<double>& grad_m, std::vector<double>& w_prime,
                 double& b_prime, EStepTally& tally) {
  util::Rng& r = ctx.rng;
  const double lr = ctx.lr;
  const double progress =
      static_cast<double>(ctx.step) / static_cast<double>(total_iterations);
  const size_t num_arcs = env.num_arcs();

  env.NoteStep();

  // Line 13: sample a connected tie pair (e, e'). A tie with a leaf
  // destination has no pair; resample instead of silently skipping the
  // step (P_c ∝ deg_tie never draws such a tie, so the loop only spins
  // under the uniform fallback — which requires |C(G)| > 0 to be reached
  // at all).
  size_t e = env.SampleSource(ctx, r);
  size_t e_prime = env.SampleConnectedTie(e, r);
  while (e_prime >= num_arcs) {
    ++tally.resamples;
    e = env.SampleSource(ctx, r);
    e_prime = env.SampleConnectedTie(e, r);
  }

  auto m_e = env.MRow(e);
  std::fill(grad_m.begin(), grad_m.end(), 0.0);

  double step_loss = 0.0;

  // --- L_topo: positive pair + λ negatives (Eqs. 23–25). The fused
  // kernel computes the score, accumulates the m_e gradient, and applies
  // the context update in one pass: g = σ(score) − y, row −= lr·g·m_e.
  {
    auto n_pos = env.NRow(e_prime);
    const double score = kernels::NegSamplingUpdate<A>(
        grad_m, m_e, n_pos, /*label=*/1.0, /*grad_scale=*/1.0,
        /*update_scale=*/-lr);
    if (track_loss) step_loss -= ml::LogSigmoid(score);
  }
  for (size_t neg = 0; neg < config.negative_samples; ++neg) {
    // A draw colliding with the positive context is redrawn (bounded),
    // not skipped: skipping would train those steps on fewer than λ
    // negatives and bias L_topo toward the positive term.
    size_t f = env.SampleNoise(r);
    size_t redraws = 0;
    while (f == e_prime && redraws < kMaxNegativeRedraws) {
      ++tally.neg_collisions;
      ++redraws;
      f = env.SampleNoise(r);
    }
    if (f == e_prime) continue;  // degenerate noise mass; give up
    ++tally.negatives;
    auto n_neg = env.NRow(f);
    const double score = kernels::NegSamplingUpdate<A>(
        grad_m, m_e, n_neg, /*label=*/0.0, /*grad_scale=*/1.0,
        /*update_scale=*/-lr);
    if (track_loss) step_loss -= ml::LogSigmoid(-score);
  }

  // --- Classifier losses: ∂L'/∂b' per Eq. 21, ramped in over the warmup
  // window so the topology loss shapes the embedding first.
  const double warmup_scale =
      config.classifier_warmup_fraction <= 0.0
          ? 1.0
          : std::min(1.0, progress / config.classifier_warmup_fraction);
  double g_b = 0.0;
  const ArcClass arc_class = env.ClassOf(e);
  const bool needs_prediction =
      warmup_scale > 0.0 &&
      (env.IsLabeled(e) || arc_class == ArcClass::kUndirected);
  if (needs_prediction) {
    const double score = kernels::DotF64F32<A>(A::Load(b_prime), w_prime, m_e);
    const double prediction = ml::Sigmoid(score);

    // Ablation hook: dividing by deg_tie(e) cancels the tie-degree
    // weighting that P_c sampling otherwise realizes (Eq. 19). The
    // warmup ramp multiplies in here as well.
    const double degree_scale =
        warmup_scale * (config.weight_by_tie_degree
                            ? 1.0
                            : 1.0 / std::max<double>(1.0, env.TieDegreeOf(e)));

    if (env.IsLabeled(e)) {
      ++tally.labeled;
      g_b += config.alpha * degree_scale * (prediction - env.Label(e));
    } else {
      const auto pattern = env.Pattern(e);
      if (pattern.degree_active) {
        ++tally.degree_pattern;
        g_b += config.beta * degree_scale *
               (prediction - pattern.pseudo_label);
      }
      if (!pattern.triads.empty()) {
        ++tally.triad_pattern;
        // y^t from current predictions over t(u, v) (Eq. 15).
        double y_t = 0.0;
        for (const auto& pair : pattern.triads) {
          // Both pair scores in one kernel call sharing the w' loads.
          double score_uw = 0.0;
          double score_vw = 0.0;
          kernels::DotPairF64F32<A>(A::Load(b_prime), w_prime,
                                    env.MRow(pair.first),
                                    env.MRow(pair.second), &score_uw,
                                    &score_vw);
          const double y_uw = ml::Sigmoid(score_uw);
          const double y_vw = ml::Sigmoid(score_vw);
          y_t += y_uw / std::max(y_uw + y_vw, 1e-12);
        }
        y_t /= static_cast<double>(pattern.triads.size());
        g_b += config.beta * degree_scale * (prediction - y_t);
      }
    }

    if (g_b != 0.0) {
      // Eq. 23 (classifier part) and Eq. 22, plus L2 decay on w'.
      kernels::ClassifierUpdate<A>(grad_m, w_prime, m_e, g_b, lr,
                                   config.classifier_l2);
      A::Store(b_prime, A::Load(b_prime) - lr * g_b);
    }
  }

  // Line 15: apply the accumulated embedding gradient (with row decay).
  kernels::ApplyGradDecay<A>(m_e, grad_m, lr, config.embedding_l2);

  return step_loss;
}

}  // namespace deepdirect::core::internal

#endif  // DEEPDIRECT_CORE_ESTEP_BODY_H_
