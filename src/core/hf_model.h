// HF: the hand-crafted-feature directionality model (Sec. 3).
//
// Training data per directed tie (u, v) ∈ E_d: one instance with features
// x_uv and label 1, one with x_vu and label 0 (Sec. 3.2). Features are
// standardized, then a logistic regression d(e) = σ(w·x_e + b) is fit.

#ifndef DEEPDIRECT_CORE_HF_MODEL_H_
#define DEEPDIRECT_CORE_HF_MODEL_H_

#include <memory>
#include <string>

#include "core/directionality.h"
#include "core/handcrafted_features.h"
#include "ml/logistic_regression.h"
#include "ml/scaler.h"

namespace deepdirect::core {

/// HF training hyper-parameters.
struct HfConfig {
  HandcraftedFeatureConfig features;
  ml::LogisticRegressionConfig regression;
};

/// The trained HF directionality model.
class HfModel : public DirectionalityModel {
 public:
  /// Trains HF on the labeled (directed) ties of `g`. The model keeps a
  /// reference to `g`, which must outlive it.
  static std::unique_ptr<HfModel> Train(const graph::MixedSocialNetwork& g,
                                        const HfConfig& config);

  double Directionality(graph::NodeId u, graph::NodeId v) const override;
  std::string name() const override { return "HF"; }

  /// The fitted logistic regression (exposed for tests).
  const ml::LogisticRegression& regression() const { return regression_; }

 private:
  HfModel(const graph::MixedSocialNetwork& g, const HfConfig& config)
      : extractor_(g, config.features),
        regression_(kNumHandcraftedFeatures) {}

  HandcraftedFeatureExtractor extractor_;
  ml::StandardScaler scaler_;
  ml::LogisticRegression regression_;
};

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_HF_MODEL_H_
