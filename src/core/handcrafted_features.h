// Hand-crafted feature extraction for social ties (Sec. 3.1).
//
// For a tie (u, v) the feature vector x_uv concatenates:
//   [0..3]   degree features   deg_out(u), deg_out(v), deg_in(u), deg_in(v)
//   [4..7]   centrality features cc(u), cc(v), bc(u), bc(v)
//   [8..23]  directed triad counts ee_1(u,v) … ee_16(u,v)
// The direction of (u, v) itself is never consulted (it may be unknown);
// x_uv != x_vu because the per-endpoint features swap and the triad types
// transpose.

#ifndef DEEPDIRECT_CORE_HANDCRAFTED_FEATURES_H_
#define DEEPDIRECT_CORE_HANDCRAFTED_FEATURES_H_

#include <vector>

#include "graph/mixed_graph.h"
#include "obs/metrics.h"

namespace deepdirect::core {

/// Total hand-crafted feature dimensionality (4 + 4 + 16).
inline constexpr size_t kNumHandcraftedFeatures = 24;

/// Configuration of the feature extractor.
struct HandcraftedFeatureConfig {
  /// Use exact centralities (O(V·E)) instead of pivot-sampled estimates.
  bool exact_centrality = false;
  /// Number of BFS pivots for sampled centralities.
  size_t centrality_pivots = 64;
  uint64_t seed = 11;
  /// Workers for the centrality precompute (0 = all hardware threads).
  /// Per-source BFS sweeps shard into fixed blocks, so the precomputed
  /// features are bit-identical for every thread count.
  size_t num_threads = 1;
};

/// Precomputes node-level statistics once, then serves per-tie feature
/// vectors in O(common neighbors · log degree).
class HandcraftedFeatureExtractor {
 public:
  /// Precomputes degrees and centralities for `g`. The extractor keeps a
  /// reference to `g`, which must outlive it.
  HandcraftedFeatureExtractor(const graph::MixedSocialNetwork& g,
                              const HandcraftedFeatureConfig& config);

  /// Fills `out` (kNumHandcraftedFeatures entries) with x_uv.
  void Extract(graph::NodeId u, graph::NodeId v, std::span<double> out) const;

  /// Convenience allocation variant.
  std::vector<double> Extract(graph::NodeId u, graph::NodeId v) const;

  /// Precomputed closeness centrality per node.
  const std::vector<double>& closeness() const { return closeness_; }

  /// Precomputed betweenness centrality per node.
  const std::vector<double>& betweenness() const { return betweenness_; }

 private:
  const graph::MixedSocialNetwork& graph_;
  obs::Counter* extract_calls_;  ///< cached registry handle (stable)
  std::vector<double> deg_out_;
  std::vector<double> deg_in_;
  std::vector<double> closeness_;
  std::vector<double> betweenness_;
};

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_HANDCRAFTED_FEATURES_H_
