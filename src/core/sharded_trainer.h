// ShardedDeepDirectModel: DeepDirect trained out-of-core.
//
// Identical algorithm to DeepDirectModel::Train — the same preprocessing,
// the same E-step body (core/estep_body.h), the same warm-started D-step —
// but the |E|×l embedding matrix M and connection matrix N never live on
// the heap. They live in a train::ShardedStore (mmap-backed DDSH shard
// files, graph/shard_format.h), and a fixed resident budget
// (`config.sharding.ram_budget_mb`) bounds how many parameter pages stay
// mapped in at once, so graphs whose matrices dwarf RAM still train.
//
// Determinism contract:
//   * num_threads == 1 is bit-identical to the in-RAM trainer for ANY
//     shard count: the store fills embeddings in the exact
//     ml::Matrix::FillUniform draw order, the serial driver path samples
//     globally (shard affinity off), and the shared step body runs the
//     same arithmetic against spans that merely point at mmap instead of
//     heap. Goldens in tests/sharded_store_test.cc pin this.
//   * num_threads > 1 runs shard-affine Hogwild (SgdOptions::ShardPlan):
//     shard s pins to worker s % N and steps sample sources from their
//     shard, keeping each worker's resident pages hot. Like all Hogwild
//     runs, not bit-reproducible.
//
// The trained model serves d(u, v) straight off the (sealed) store — no
// full-matrix materialization at any point. Checkpoint/resume is not
// supported out-of-core yet (the store itself is the durable E-step
// state); `config.checkpoint.dir` must be empty.

#ifndef DEEPDIRECT_CORE_SHARDED_TRAINER_H_
#define DEEPDIRECT_CORE_SHARDED_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/deepdirect.h"
#include "core/directionality.h"
#include "train/sharded_store.h"

namespace deepdirect::core {

/// A DeepDirect model whose embedding rows live in a ShardedStore. See the
/// file comment; drop-in DirectionalityModel, so DiscoverDirections and
/// DirectionDiscoveryAccuracy work unchanged.
class ShardedDeepDirectModel : public DirectionalityModel {
 public:
  /// Trains out-of-core per `config.sharding` (num_shards > 0 and a store
  /// directory are required; checkpointing and the MLP D-step head are
  /// not supported). Returns the model serving from the sealed store.
  static util::Result<std::unique_ptr<ShardedDeepDirectModel>> Train(
      const graph::MixedSocialNetwork& g, const DeepDirectConfig& config);

  /// d(u, v) = σ(w·m_uv + b), read straight from the store (faulting the
  /// row's shard in under the budget if needed). The pair must host a tie
  /// of the training network.
  double Directionality(graph::NodeId u, graph::NodeId v) const override;

  /// d(u, v) when the pair hosts a training tie; NotFound otherwise.
  util::Result<double> TryDirectionality(graph::NodeId u,
                                         graph::NodeId v) const override;
  std::string name() const override { return "DeepDirect"; }

  /// The backing store (residency stats, geometry, raw rows).
  const train::ShardedStore& store() const { return *store_; }
  train::ShardedStore& store() { return *store_; }

  /// E-Step classifier parameters (w', b'), exposed for tests.
  const std::vector<double>& e_step_weights() const {
    return e_step_weights_;
  }
  double e_step_bias() const { return e_step_bias_; }

  /// The D-Step logistic regression (Eq. 26).
  const ml::LogisticRegression& d_step_regression() const { return d_step_; }

 private:
  explicit ShardedDeepDirectModel(std::unique_ptr<train::ShardedStore> store)
      : store_(std::move(store)), d_step_(store_->dimensions()) {}

  std::unique_ptr<train::ShardedStore> store_;
  std::vector<double> e_step_weights_;
  double e_step_bias_ = 0.0;
  ml::LogisticRegression d_step_;
};

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_SHARDED_TRAINER_H_
