#include "core/applications.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "ml/metrics.h"

namespace deepdirect::core {

using graph::Arc;
using graph::ArcId;
using graph::MixedSocialNetwork;
using graph::NodeId;
using graph::TieType;

std::vector<DirectionPrediction> DiscoverDirections(
    const MixedSocialNetwork& g, const DirectionalityModel& model) {
  std::vector<DirectionPrediction> predictions;
  predictions.reserve(g.num_undirected_ties());
  for (ArcId id : g.undirected_arcs()) {
    const Arc& a = g.arc(id);
    if (a.src > a.dst) continue;  // evaluate each tie once
    const double forward = model.Directionality(a.src, a.dst);
    const double backward = model.Directionality(a.dst, a.src);
    if (forward >= backward) {
      predictions.push_back({a.src, a.dst, forward});
    } else {
      predictions.push_back({a.dst, a.src, backward});
    }
  }
  return predictions;
}

double DirectionDiscoveryAccuracy(const graph::HiddenDirectionSplit& split,
                                  const DirectionalityModel& model) {
  const MixedSocialNetwork& g = split.network;
  double correct = 0.0;
  size_t total = 0;
  for (ArcId true_arc : split.hidden_true_arcs) {
    const Arc& a = g.arc(true_arc);
    const double forward = model.Directionality(a.src, a.dst);
    const double backward = model.Directionality(a.dst, a.src);
    // Eq. 28 predicts src -> dst iff d(src,dst) >= d(dst,src). The stored
    // arc is the true direction, so strict inequality is correct; exact
    // ties earn half credit — Eq. 28's ">=" would otherwise award a model
    // with d(u,v) ≡ d(v,u) (e.g. a symmetric edge operator) a perfect
    // score purely because the evaluator queries the true orientation
    // first.
    if (forward > backward) {
      correct += 1.0;
    } else if (forward == backward) {
      correct += 0.5;
    }
    ++total;
  }
  return total == 0 ? 0.0 : correct / static_cast<double>(total);
}

WeightedAdjacency::WeightedAdjacency(const MixedSocialNetwork& g,
                                     const DirectionalityModel* model) {
  const size_t n = g.num_nodes();
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  out_sums_.assign(n, 0.0);
  in_sums_.assign(n, 0.0);

  // One weighted entry per arc of g (arcs already cover both directions of
  // bidirectional/undirected ties).
  auto arc_weight = [&](const Arc& a) -> double {
    switch (a.type) {
      case TieType::kDirected:
        return 1.0;
      case TieType::kBidirectional:
      case TieType::kUndirected:
        return model != nullptr ? model->Directionality(a.src, a.dst)
                                : (a.type == TieType::kBidirectional ? 1.0
                                                                     : 0.5);
    }
    return 0.0;
  };

  for (ArcId id = 0; id < g.num_arcs(); ++id) {
    const Arc& a = g.arc(id);
    ++out_offsets_[a.src + 1];
    ++in_offsets_[a.dst + 1];
  }
  for (size_t i = 1; i <= n; ++i) {
    out_offsets_[i] += out_offsets_[i - 1];
    in_offsets_[i] += in_offsets_[i - 1];
  }
  out_entries_.resize(g.num_arcs());
  in_entries_.resize(g.num_arcs());
  std::vector<size_t> out_cursor(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<size_t> in_cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (ArcId id = 0; id < g.num_arcs(); ++id) {
    const Arc& a = g.arc(id);
    const double w = arc_weight(a);
    out_entries_[out_cursor[a.src]++] = {a.dst, w};
    in_entries_[in_cursor[a.dst]++] = {a.src, w};
    out_sums_[a.src] += w;
    in_sums_[a.dst] += w;
  }
  // Arcs are globally sorted by (src, dst), so each out row is sorted by
  // destination already; sort in rows by source for the merge in
  // PathWeight.
  for (NodeId v = 0; v < n; ++v) {
    std::sort(in_entries_.begin() + in_offsets_[v],
              in_entries_.begin() + in_offsets_[v + 1],
              [](const Entry& x, const Entry& y) { return x.node < y.node; });
  }
}

double WeightedAdjacency::PathWeight(NodeId u, NodeId v) const {
  DD_CHECK_LT(u, num_nodes());
  DD_CHECK_LT(v, num_nodes());
  // Merge u's out row (sorted by node) with v's in row (sorted by node).
  size_t i = out_offsets_[u];
  const size_t i_end = out_offsets_[u + 1];
  size_t j = in_offsets_[v];
  const size_t j_end = in_offsets_[v + 1];
  double total = 0.0;
  while (i < i_end && j < j_end) {
    const NodeId a = out_entries_[i].node;
    const NodeId b = in_entries_[j].node;
    if (a < b) {
      ++i;
    } else if (b < a) {
      ++j;
    } else {
      total += out_entries_[i].weight * in_entries_[j].weight;
      ++i;
      ++j;
    }
  }
  return total;
}

double WeightedAdjacency::JaccardScore(NodeId u, NodeId v) const {
  const double denom = OutSum(u) + InSum(v);
  if (denom <= 0.0) return 0.0;
  return PathWeight(u, v) / denom;
}

const char* LinkScoreTypeToString(LinkScoreType type) {
  switch (type) {
    case LinkScoreType::kJaccard:
      return "jaccard";
    case LinkScoreType::kCommonNeighbors:
      return "common-neighbors";
    case LinkScoreType::kAdamicAdar:
      return "adamic-adar";
    case LinkScoreType::kResourceAllocation:
      return "resource-allocation";
  }
  return "unknown";
}

double LinkScore(const WeightedAdjacency& adjacency, LinkScoreType type,
                 NodeId u, NodeId v) {
  switch (type) {
    case LinkScoreType::kJaccard:
      return adjacency.JaccardScore(u, v);
    case LinkScoreType::kCommonNeighbors:
      return adjacency.PathWeight(u, v);
    case LinkScoreType::kAdamicAdar:
      return adjacency.WeightedPathSum(u, v, [&adjacency](NodeId k) {
        return 1.0 / std::log(2.0 + adjacency.Strength(k));
      });
    case LinkScoreType::kResourceAllocation:
      return adjacency.WeightedPathSum(u, v, [&adjacency](NodeId k) {
        return 1.0 / (1.0 + adjacency.Strength(k));
      });
  }
  return 0.0;
}

LinkPredictionResult RunLinkPrediction(const MixedSocialNetwork& g,
                                       const graph::TieHoldout& holdout,
                                       const DirectionalityModel* model,
                                       const LinkPredictionConfig& config) {
  const MixedSocialNetwork& reduced = holdout.network;
  WeightedAdjacency adjacency(reduced, model);

  // Removed ties keyed two ways: the unordered pair, and the oriented pair
  // for the ordered protocol.
  auto pair_key = [](NodeId a, NodeId b) {
    const NodeId lo = std::min(a, b);
    const NodeId hi = std::max(a, b);
    return (static_cast<uint64_t>(lo) << 32) | hi;
  };
  auto ordered_key = [](NodeId a, NodeId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  std::unordered_set<uint64_t> positive_pairs;       // unordered
  std::unordered_set<uint64_t> positive_oriented;    // oriented positives
  std::unordered_set<uint64_t> excluded_oriented;    // reverse of directed
  positive_pairs.reserve(holdout.removed_ties.size() * 2);
  for (const Arc& removed : holdout.removed_ties) {
    positive_pairs.insert(pair_key(removed.src, removed.dst));
    if (removed.type == TieType::kDirected) {
      // Ordered protocol: the true orientation is the positive; the
      // reverse is excluded (the pair does connect, just not that way).
      positive_oriented.insert(ordered_key(removed.src, removed.dst));
      excluded_oriented.insert(ordered_key(removed.dst, removed.src));
    } else {
      // Removed bidirectional/undirected ties carry no orientation target;
      // both orientations are excluded from the ordered candidate set.
      excluded_oriented.insert(ordered_key(removed.src, removed.dst));
      excluded_oriented.insert(ordered_key(removed.dst, removed.src));
    }
  }

  // Candidate pairs: nodes at undirected distance exactly 2 in the reduced
  // network (2-hop neighbors, not directly connected).
  std::vector<double> scores;
  std::vector<int> labels;
  size_t num_positive_labels = 0;
  util::Rng rng(config.seed ^ 0x9e3779b97f4a7c15ULL);

  std::unordered_set<uint64_t> seen_pairs;
  for (NodeId u = 0; u < reduced.num_nodes(); ++u) {
    for (NodeId w : reduced.UndirectedNeighbors(u)) {
      for (NodeId v : reduced.UndirectedNeighbors(w)) {
        if (v == u) continue;
        if (u > v) continue;  // visit each unordered pair once
        if (reduced.HasArc(u, v) || reduced.HasArc(v, u)) continue;
        if (!seen_pairs.insert(pair_key(u, v)).second) continue;
        if (config.ordered) {
          // Both orientations, each a separate candidate (unless excluded
          // as the reverse of a removed directed tie).
          for (const auto [a, b] :
               {std::pair<NodeId, NodeId>{u, v}, {v, u}}) {
            if (excluded_oriented.contains(ordered_key(a, b))) continue;
            const int label =
                positive_oriented.contains(ordered_key(a, b)) ? 1 : 0;
            scores.push_back(LinkScore(adjacency, config.score, a, b));
            labels.push_back(label);
            num_positive_labels += static_cast<size_t>(label);
          }
        } else {
          const int label = positive_pairs.contains(pair_key(u, v)) ? 1 : 0;
          // Unordered: score by the better orientation.
          const double score =
              std::max(LinkScore(adjacency, config.score, u, v),
                       LinkScore(adjacency, config.score, v, u));
          scores.push_back(score);
          labels.push_back(label);
          num_positive_labels += static_cast<size_t>(label);
        }
      }
    }
  }

  // Subsample negatives if the candidate set exceeds the cap (positives are
  // always kept so AUC stays estimable).
  if (scores.size() > config.max_candidates) {
    std::vector<double> kept_scores;
    std::vector<int> kept_labels;
    const double keep_prob =
        static_cast<double>(config.max_candidates) /
        static_cast<double>(scores.size());
    for (size_t i = 0; i < scores.size(); ++i) {
      if (labels[i] == 1 || rng.NextBool(keep_prob)) {
        kept_scores.push_back(scores[i]);
        kept_labels.push_back(labels[i]);
      }
    }
    scores.swap(kept_scores);
    labels.swap(kept_labels);
  }

  LinkPredictionResult result;
  result.auc = ml::AreaUnderRoc(scores, labels);
  result.num_candidates = scores.size();
  result.num_positives = num_positive_labels;
  return result;
}

}  // namespace deepdirect::core
