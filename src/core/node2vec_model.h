// node2vec / DeepWalk directionality model: an additional node-embedding
// baseline beyond the paper's LINE (both methods are cited in Sec. 7 as
// the random-walk branch). Tie features come from an edge operator over
// the endpoint vectors, classified by logistic regression on labeled ties.

#ifndef DEEPDIRECT_CORE_NODE2VEC_MODEL_H_
#define DEEPDIRECT_CORE_NODE2VEC_MODEL_H_

#include <memory>
#include <string>

#include "core/directionality.h"
#include "embedding/edge_features.h"
#include "embedding/node2vec.h"
#include "graph/mixed_graph.h"
#include "ml/logistic_regression.h"

namespace deepdirect::core {

/// node2vec-model hyper-parameters.
struct Node2vecModelConfig {
  embedding::Node2vecConfig node2vec;
  embedding::EdgeOperator edge_operator =
      embedding::EdgeOperator::kConcatenate;
  ml::LogisticRegressionConfig regression = {
      .epochs = 20, .learning_rate = 0.05, .min_lr_fraction = 0.1,
      .l2 = 1e-4, .seed = 59, .shuffle = true};
  /// Report name: "node2vec" or "DeepWalk" (for the p=q=1 preset).
  std::string display_name = "node2vec";
};

/// Trained node2vec + logistic-regression directionality model.
class Node2vecModel : public DirectionalityModel {
 public:
  static std::unique_ptr<Node2vecModel> Train(
      const graph::MixedSocialNetwork& g, const Node2vecModelConfig& config);

  double Directionality(graph::NodeId u, graph::NodeId v) const override;
  std::string name() const override { return display_name_; }

  size_t tie_feature_dims() const {
    return embedding::EdgeFeatureDims(edge_operator_,
                                      embedding_.dimensions());
  }

 private:
  Node2vecModel(embedding::Node2vecEmbedding embedding,
                embedding::EdgeOperator op, size_t feature_dims,
                std::string display_name)
      : embedding_(std::move(embedding)),
        edge_operator_(op),
        regression_(feature_dims),
        display_name_(std::move(display_name)) {}

  embedding::Node2vecEmbedding embedding_;
  embedding::EdgeOperator edge_operator_;
  ml::LogisticRegression regression_;
  std::string display_name_;
};

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_NODE2VEC_MODEL_H_
