#include "core/tie_index.h"

#include <algorithm>

namespace deepdirect::core {

using graph::ArcId;
using graph::kInvalidArc;
using graph::MixedSocialNetwork;
using graph::NodeId;
using graph::TieType;

TieIndex::TieIndex(const MixedSocialNetwork& g) {
  const size_t n = g.num_nodes();
  offsets_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u + 1] = offsets_[u] + g.UndirectedDegree(u);
  }
  const size_t num_arcs = offsets_[n];
  adj_.reserve(num_arcs);
  src_.resize(num_arcs);
  dst_.resize(num_arcs);
  classes_.resize(num_arcs);

  size_t idx = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.UndirectedNeighbors(u)) {
      adj_.push_back(v);
      src_[idx] = u;
      dst_[idx] = v;
      // Classify arc (u, v) against the original tie.
      const ArcId forward = g.FindArc(u, v);
      if (forward != kInvalidArc) {
        switch (g.arc(forward).type) {
          case TieType::kDirected:
            classes_[idx] = ArcClass::kLabeledPositive;
            break;
          case TieType::kBidirectional:
            classes_[idx] = ArcClass::kBidirectional;
            break;
          case TieType::kUndirected:
            classes_[idx] = ArcClass::kUndirected;
            break;
        }
      } else {
        // Only reverse arcs of directed ties lack a forward original arc.
        classes_[idx] = ArcClass::kLabeledNegative;
      }
      ++idx;
    }
  }
  DD_CHECK_EQ(idx, num_arcs);

  uint64_t pairs = 0;
  for (size_t a = 0; a < num_arcs; ++a) pairs += TieDegree(a);
  num_connected_pairs_ = pairs;
}

size_t TieIndex::RankOf(NodeId u, NodeId w) const {
  const auto neighbors = Neighbors(u);
  const auto it = std::lower_bound(neighbors.begin(), neighbors.end(), w);
  DD_CHECK_MSG(it != neighbors.end() && *it == w,
               "node " << w << " is not a neighbor of " << u);
  return static_cast<size_t>(it - neighbors.begin());
}

size_t TieIndex::TryIndexOf(NodeId u, NodeId v) const {
  DD_CHECK_LT(u, num_nodes());
  const auto neighbors = Neighbors(u);
  const auto it = std::lower_bound(neighbors.begin(), neighbors.end(), v);
  if (it == neighbors.end() || *it != v) return num_arcs();
  return offsets_[u] + static_cast<size_t>(it - neighbors.begin());
}

size_t TieIndex::IndexOf(NodeId u, NodeId v) const {
  const size_t idx = TryIndexOf(u, v);
  DD_CHECK_MSG(idx < num_arcs(), "no tie between " << u << " and " << v);
  return idx;
}

}  // namespace deepdirect::core
