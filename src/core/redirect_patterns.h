// The four directionality patterns of the ReDirect framework (reference
// [10] of the paper; Sec. 1 lists them: Degree Consistency, Triad Status
// Consistency, Similarity Consistency, Collaborative Consistency).
//
// Each pattern is an estimator that, given the current directionality
// values x over the closure arcs, proposes a value for one arc. The
// original framework combines all four with *equal weights* — exactly the
// weakness the paper criticizes ("it is difficult to guarantee ... the
// four existing patterns are equally important"). RedirectFullModel below
// realizes that design so the criticism can be tested empirically; the
// two-pattern ReDirect-T/sm of the paper's experiments lives in
// core/redirect.h.
//
// The paper does not reprint the formal definitions of patterns 3 and 4;
// the estimators here are reconstructions from their names and one-line
// descriptions (see DESIGN.md §4b): Similarity Consistency averages the
// values of ties with structurally similar proposers (Jaccard-weighted);
// Collaborative Consistency compares the endpoints' global proposer
// propensities.

#ifndef DEEPDIRECT_CORE_REDIRECT_PATTERNS_H_
#define DEEPDIRECT_CORE_REDIRECT_PATTERNS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/directionality.h"
#include "core/tie_index.h"
#include "graph/mixed_graph.h"

namespace deepdirect::core {

/// Per-pattern mixing weights for the full framework. The original
/// ReDirect uses all-equal weights.
struct RedirectFullConfig {
  double degree_weight = 1.0;
  double triad_weight = 1.0;
  double similarity_weight = 1.0;
  double collaborative_weight = 1.0;
  /// Damping of each propagation update.
  double damping = 0.7;
  size_t max_iterations = 60;
  double tolerance = 1e-3;
  /// Cap on common neighbors per arc for the triad estimator.
  size_t max_common_neighbors = 10;
  /// Cap on similar ties consulted per arc for the similarity estimator.
  size_t max_similar_ties = 10;
  /// Use the labels of directed ties (semi-supervised, clamped). When
  /// false the model solves the unsupervised TDI problem of [10].
  bool use_labels = true;
  uint64_t seed = 67;
};

/// Tie-centroid propagation over all four ReDirect patterns.
class RedirectFullModel : public DirectionalityModel {
 public:
  static std::unique_ptr<RedirectFullModel> Train(
      const graph::MixedSocialNetwork& g, const RedirectFullConfig& config);

  double Directionality(graph::NodeId u, graph::NodeId v) const override;
  std::string name() const override {
    return use_labels_ ? "ReDirect-full/sm" : "ReDirect-full";
  }

  size_t iterations_run() const { return iterations_run_; }

 private:
  RedirectFullModel(TieIndex index, bool use_labels)
      : index_(std::move(index)),
        values_(index_.num_arcs(), 0.5),
        use_labels_(use_labels) {}

  TieIndex index_;
  std::vector<double> values_;
  bool use_labels_;
  size_t iterations_run_ = 0;
};

/// Jaccard similarity of the undirected neighborhoods of two nodes
/// (|N(a) ∩ N(b)| / |N(a) ∪ N(b)|); helper for the similarity pattern,
/// exposed for tests.
double NeighborhoodJaccard(const graph::MixedSocialNetwork& g,
                           graph::NodeId a, graph::NodeId b);

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_REDIRECT_PATTERNS_H_
