#include "core/handcrafted_features.h"

#include "graph/centrality.h"
#include "graph/triads.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"

namespace deepdirect::core {

using graph::MixedSocialNetwork;
using graph::NodeId;

HandcraftedFeatureExtractor::HandcraftedFeatureExtractor(
    const MixedSocialNetwork& g, const HandcraftedFeatureConfig& config)
    : graph_(g),
      extract_calls_(obs::Registry::Default().GetCounter(
          "hf.features.extract_calls")) {
  // The centrality precomputation dominates HF training time; trace it.
  obs::PhaseScope phase("hf.precompute");
  const size_t n = g.num_nodes();
  deg_out_.resize(n);
  deg_in_.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    deg_out_[u] = g.DegOut(u);
    deg_in_[u] = g.DegIn(u);
  }
  if (config.exact_centrality) {
    closeness_ = graph::ClosenessCentralityExact(g, config.num_threads);
    betweenness_ = graph::BetweennessCentralityExact(g, config.num_threads);
  } else {
    util::Rng rng(config.seed);
    closeness_ = graph::ClosenessCentralitySampled(
        g, config.centrality_pivots, rng, config.num_threads);
    betweenness_ = graph::BetweennessCentralitySampled(
        g, config.centrality_pivots, rng, config.num_threads);
  }
}

void HandcraftedFeatureExtractor::Extract(NodeId u, NodeId v,
                                          std::span<double> out) const {
  DD_CHECK_EQ(out.size(), kNumHandcraftedFeatures);
  if (obs::Enabled()) extract_calls_->Add(1);
  out[0] = deg_out_[u];
  out[1] = deg_out_[v];
  out[2] = deg_in_[u];
  out[3] = deg_in_[v];
  out[4] = closeness_[u];
  out[5] = closeness_[v];
  out[6] = betweenness_[u];
  out[7] = betweenness_[v];
  const auto triads = graph::DirectedTriadCounts(graph_, u, v);
  for (size_t i = 0; i < graph::kNumTriadTypes; ++i) {
    out[8 + i] = static_cast<double>(triads[i]);
  }
}

std::vector<double> HandcraftedFeatureExtractor::Extract(NodeId u,
                                                         NodeId v) const {
  std::vector<double> out(kNumHandcraftedFeatures);
  Extract(u, v, out);
  return out;
}

}  // namespace deepdirect::core
