// Streaming tie-batch updates: the core half of incremental training.
//
// A trained DeepDirect model plus its checkpointed E-step state can absorb
// a batch of newly-arrived ties without a full retrain:
//
//   1. Splice — the batch is validated against the base network (a tie
//      duplicating an existing edge is a line-numbered InvalidArgument;
//      endpoints beyond the node count extend the merged network) and the
//      merged network is rebuilt through GraphBuilder, so it is
//      bit-identical to one built from the full tie set.
//   2. Remap + warm-start — every old closure arc keeps its M/N rows
//      (arc indices shift when ties are added; rows are remapped through
//      the new TieIndex), new arcs get deterministic per-arc initial rows.
//   3. Affected-edge closure rule — the E-step retrains only arcs in
//      A = new arcs ∪ arcs with an endpoint touched by the batch. The
//      pattern data of arc (u, v) depends on deg(u), deg(v) and
//      N(u) ∩ N(v), all of which change only when u or v gains a tie, so
//      PrecomputePatterns runs scoped to A (its arc-mask overload).
//   4. Step quota — the per-batch E-step budget is
//      ceil(epochs_per_batch · Σ_{e∈A} |c(e)|): the same epochs-times-
//      pair-mass rule as full training, applied to the affected mass only
//      (the ShardPlan largest-remainder discipline scaled to one "shard").
//      Sources are sampled ∝ deg_tie over A; negatives and connected-tie
//      contexts stay global, so updates still propagate outward.
//   5. D-step — retrained over all labeled arcs, warm-started from the
//      updated (w', b'), exactly like a full run.
//
// Applying an empty batch is bit-identical to resuming the completed run
// from its final checkpoint: the remap is the identity, the quota is zero,
// and the D-step sees the same features and the same warm start.

#ifndef DEEPDIRECT_CORE_INCREMENTAL_H_
#define DEEPDIRECT_CORE_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/deepdirect.h"
#include "train/incremental.h"

namespace deepdirect::core {

/// Knobs of one ApplyTieBatch call.
struct IncrementalOptions {
  /// E-step passes over the affected connected-pair mass: the per-batch
  /// step quota is ceil(epochs_per_batch · Σ_{e∈A} |c(e)|). The full-
  /// retrain analogue is DeepDirectConfig::epochs over the global mass.
  double epochs_per_batch = 2.0;
};

/// What one batch cost and touched.
struct TieBatchStats {
  size_t new_ties = 0;
  size_t new_nodes = 0;
  size_t new_arcs = 0;       ///< closure arcs added (2 per tie)
  size_t affected_arcs = 0;  ///< |A|, the retrained source set
  uint64_t affected_pair_mass = 0;  ///< Σ_{e∈A} |c(e)| on the merged closure
  uint64_t estep_steps = 0;         ///< the executed quota
};

/// Result of one ApplyTieBatch call. `state` chains into the next batch
/// (and into SaveEStepState for durability); `network` is the merged graph
/// the model indexes.
struct IncrementalUpdate {
  graph::MixedSocialNetwork network;
  std::unique_ptr<DeepDirectModel> model;
  train::EStepState state;
  TieBatchStats stats;
};

/// Enumerates g's ties once each as batch-shaped deltas (line = 1-based
/// tie ordinal in CSR order). The building block for replaying a network
/// as base + tail batches in tests, benches, and the CI smoke.
std::vector<train::TieDelta> ExtractTies(const graph::MixedSocialNetwork& g);

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_INCREMENTAL_H_
