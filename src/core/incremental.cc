#include "core/incremental.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "core/estep_body.h"
#include "kernels/kernels.h"
#include "ml/dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "train/parallel.h"
#include "train/sgd_driver.h"
#include "util/alias_table.h"
#include "util/random.h"

namespace deepdirect::core {

using graph::MixedSocialNetwork;
using graph::NodeId;

namespace {

// Salt separating new-row initialization streams from the pattern
// precompute's per-arc streams (both key on (seed, arc index)).
constexpr uint64_t kNewRowSalt = 0x9e3779b97f4a7c15ULL;

// Storage environment for the incremental E-step: the merged in-RAM state,
// with sources sampled from the affected arc set A only. Pattern() is only
// ever consulted for sampled sources, which is what makes the arc-masked
// pattern arena safe (see PrecomputePatterns).
struct AffectedEnv {
  const TieIndex& idx;
  const PatternPrecompute& patterns;
  ml::Matrix& m;
  ml::Matrix& n;
  const std::vector<uint32_t>& affected;   // A, ascending arc ids
  const util::AliasTable& affected_table;  // P_c ∝ deg_tie over A
  const util::AliasTable& noise_table;     // P_n over ALL arcs

  struct PatternView {
    bool degree_active;
    double pseudo_label;
    std::span<const std::pair<uint32_t, uint32_t>> triads;
  };

  size_t num_arcs() const { return idx.num_arcs(); }
  std::span<float> MRow(size_t e) { return m.Row(e); }
  std::span<float> NRow(size_t e) { return n.Row(e); }
  size_t SampleSource(const train::SgdStep&, util::Rng& r) const {
    return affected[affected_table.Sample(r)];
  }
  size_t SampleNoise(util::Rng& r) const { return noise_table.Sample(r); }
  size_t SampleConnectedTie(size_t e, util::Rng& r) const {
    return idx.SampleConnectedTie(e, r);
  }
  ArcClass ClassOf(size_t e) const { return idx.Class(e); }
  bool IsLabeled(size_t e) const { return idx.IsLabeled(e); }
  double Label(size_t e) const { return idx.Label(e); }
  uint32_t TieDegreeOf(size_t e) const { return idx.TieDegree(e); }
  PatternView Pattern(size_t e) const {
    const uint32_t s = patterns.slot[e];
    const uint32_t t_begin = patterns.triad_offsets[s];
    const uint32_t t_end = patterns.triad_offsets[s + 1];
    return {patterns.degree_active[s] != 0, patterns.degree_pseudo_label[s],
            std::span(patterns.triad_pairs).subspan(t_begin, t_end - t_begin)};
  }
  void NoteStep() {}
};

util::Status BatchLineError(const train::TieDelta& tie,
                            const std::string& what) {
  return util::Status::InvalidArgument(
      "batch line " + std::to_string(tie.line) + ": tie " +
      std::to_string(tie.u) + " " + std::to_string(tie.v) + " " + what);
}

}  // namespace

std::vector<train::TieDelta> ExtractTies(const MixedSocialNetwork& g) {
  std::vector<train::TieDelta> ties;
  ties.reserve(g.num_ties());
  for (graph::ArcId id = 0; id < g.num_arcs(); ++id) {
    const graph::Arc& a = g.arc(id);
    // Each tie once: directed arcs are unique; twins from the smaller
    // endpoint (the WriteEdgeList convention).
    if (a.type != graph::TieType::kDirected && a.src > a.dst) continue;
    ties.push_back({a.src, a.dst, a.type,
                    static_cast<uint32_t>(ties.size() + 1)});
  }
  return ties;
}

util::Result<IncrementalUpdate> DeepDirectModel::ApplyTieBatch(
    const MixedSocialNetwork& g, const train::TieBatch& batch,
    const train::EStepState& state, const DeepDirectConfig& config,
    const IncrementalOptions& options) {
  obs::PhaseScope update_phase("update.apply");
  const size_t l = config.dimensions;

  // --- Validate the warm-start state against the base network. ---------
  if (l == 0 || state.dimensions != l) {
    return util::Status::InvalidArgument(
        "E-step state has " + std::to_string(state.dimensions) +
        " dimensions, the config asks for " + std::to_string(l));
  }
  if (options.epochs_per_batch < 0.0) {
    return util::Status::InvalidArgument(
        "epochs_per_batch must be non-negative");
  }
  if (g.num_directed_ties() == 0) {
    return util::Status::InvalidArgument(
        "the base network has no directed ties");
  }
  if (state.m.size() != state.num_arcs * l ||
      state.n.size() != state.m.size() ||
      state.w_prime.size() != l) {
    return util::Status::InvalidArgument(
        "inconsistent E-step state (m " + std::to_string(state.m.size()) +
        ", n " + std::to_string(state.n.size()) + ", w_prime " +
        std::to_string(state.w_prime.size()) + " for " +
        std::to_string(state.num_arcs) + " arcs x " + std::to_string(l) +
        " dims)");
  }
  const TieIndex old_idx(g);
  if (state.num_arcs != old_idx.num_arcs()) {
    return util::Status::InvalidArgument(
        "E-step state covers " + std::to_string(state.num_arcs) +
        " closure arcs but the base network has " +
        std::to_string(old_idx.num_arcs()) +
        " (wrong checkpoint for this network?)");
  }
  if (state.tie_hash != 0 && state.tie_hash != HashTieIndex(old_idx)) {
    return util::Status::InvalidArgument(
        "E-step state was trained on a different network (tie-index hash "
        "mismatch at equal arc count)");
  }

  // --- Validate the batch and splice the merged network. ---------------
  std::optional<obs::PhaseScope> phase;
  phase.emplace("update.splice");
  size_t num_nodes = std::max(g.num_nodes(), batch.declared_nodes);
  for (const train::TieDelta& tie : batch.ties) {
    if (tie.u == tie.v) return BatchLineError(tie, "is a self-loop");
    num_nodes = std::max({num_nodes, static_cast<size_t>(tie.u) + 1,
                          static_cast<size_t>(tie.v) + 1});
    if (tie.u < g.num_nodes() && tie.v < g.num_nodes() &&
        (g.HasArc(tie.u, tie.v) || g.HasArc(tie.v, tie.u))) {
      return BatchLineError(tie, "already exists in the network");
    }
  }

  graph::GraphBuilder builder(num_nodes);
  builder.SetNumThreads(config.num_threads);
  for (const train::TieDelta& tie : ExtractTies(g)) {
    const util::Status status = builder.AddTie(tie.u, tie.v, tie.type);
    DD_CHECK_MSG(status.ok(), "re-adding a base tie failed: "
                                  << status.ToString());
  }
  for (const train::TieDelta& tie : batch.ties) {
    // Parse-level validation already rejected in-batch duplicates; this
    // guards programmatically-built batches with the same line anchoring.
    const util::Status status = builder.AddTie(tie.u, tie.v, tie.type);
    if (!status.ok()) {
      return BatchLineError(tie, "rejected: " + status.ToString());
    }
  }
  MixedSocialNetwork merged = std::move(builder).Build();
  TieIndex merged_index(merged);
  const size_t num_arcs = merged_index.num_arcs();
  std::unique_ptr<DeepDirectModel> model(
      new DeepDirectModel(std::move(merged_index), l));
  const TieIndex& idx = model->index_;

  // --- Warm-start: remap surviving rows, init new ones. -----------------
  // Adding ties shifts dense arc indices, so every old row is routed
  // through the new index; an old arc always survives (ties are only
  // added), so IndexOf is total here.
  ml::Matrix& m = model->embeddings_;
  ml::Matrix n(num_arcs, l);
  std::vector<uint8_t> is_new(num_arcs, 1);
  for (size_t e_old = 0; e_old < old_idx.num_arcs(); ++e_old) {
    const auto [u, v] = old_idx.ArcAt(e_old);
    const size_t e_new = idx.IndexOf(u, v);
    is_new[e_new] = 0;
    std::copy_n(state.m.begin() + e_old * l, l, m.Row(e_new).begin());
    std::copy_n(state.n.begin() + e_old * l, l, n.Row(e_new).begin());
  }
  const float init = 0.5f / static_cast<float>(l);
  for (size_t e = 0; e < num_arcs; ++e) {
    if (!is_new[e]) continue;
    // Same ±0.5/l init as a fresh run, drawn from a per-arc counter RNG
    // so the rows are independent of batch order and thread count.
    util::Rng row_rng(train::PerItemSeed(config.seed ^ kNewRowSalt, e));
    for (float& value : m.Row(e)) {
      value = static_cast<float>(row_rng.NextDoubleIn(-init, init));
    }
    // New N rows start at zero (already zeroed by the Matrix ctor).
  }

  // --- Affected set A: new arcs ∪ arcs with a touched endpoint. ---------
  std::vector<uint8_t> touched(num_nodes, 0);
  for (const train::TieDelta& tie : batch.ties) {
    touched[tie.u] = 1;
    touched[tie.v] = 1;
  }
  std::vector<uint32_t> affected;
  std::vector<uint8_t> affected_mask(num_arcs, 0);
  for (size_t e = 0; e < num_arcs; ++e) {
    const auto [u, v] = idx.ArcAt(e);
    if (touched[u] || touched[v]) {
      affected_mask[e] = 1;
      affected.push_back(static_cast<uint32_t>(e));
    }
  }

  TieBatchStats stats;
  stats.new_ties = batch.ties.size();
  stats.new_nodes = num_nodes - g.num_nodes();
  stats.new_arcs = num_arcs - old_idx.num_arcs();
  stats.affected_arcs = affected.size();
  for (const uint32_t e : affected) {
    stats.affected_pair_mass += idx.TieDegree(e);
  }

  // --- Incremental E-step over A under the per-batch quota. -------------
  std::vector<double> w_prime = state.w_prime;
  double b_prime = state.b_prime;
  const uint64_t quota = static_cast<uint64_t>(
      std::ceil(options.epochs_per_batch *
                static_cast<double>(stats.affected_pair_mass)));
  if (quota > 0 && stats.affected_pair_mass > 0) {
    phase.emplace("update.patterns");
    const PatternPrecompute patterns =
        PrecomputePatterns(merged, idx, config, affected_mask);

    phase.emplace("update.estep");
    std::vector<double> pc_weights(affected.size());
    for (size_t s = 0; s < affected.size(); ++s) {
      pc_weights[s] = idx.TieDegree(affected[s]);
    }
    std::vector<double> pn_weights(num_arcs);
    for (size_t e = 0; e < num_arcs; ++e) {
      pn_weights[e] =
          config.uniform_negative_sampling
              ? 1.0
              : std::pow(static_cast<double>(idx.TieDegree(e)) + 1.0, 0.75);
    }
    const util::AliasTable affected_table(pc_weights);
    const util::AliasTable noise_table(pn_weights);

    // The embedding is already shaped by the base run, so the classifier
    // losses apply at full strength from the first step — warming them up
    // again would waste most of a small quota on the topology term alone.
    DeepDirectConfig step_config = config;
    step_config.classifier_warmup_fraction = 0.0;

    const bool track_loss =
        static_cast<bool>(config.progress) || obs::Enabled();
    // Chained batches must not replay one RNG stream; keying on the state
    // generation keeps each update deterministic yet distinct.
    const uint64_t stream_seed =
        train::PerItemSeed(config.seed, state.epochs_done);

    train::SgdOptions sgd;
    sgd.steps = quota;
    sgd.num_threads = config.num_threads;
    sgd.lr = config.Schedule();
    sgd.shard_seed = stream_seed;
    sgd.progress = config.progress;
    sgd.report_every = config.report_every;
    sgd.metrics_prefix = "update.estep";
    train::SgdDriver driver(sgd);

    std::vector<std::vector<double>> grad_scratch(
        driver.num_workers(), std::vector<double>(l, 0.0));
    std::vector<internal::EStepTally> tallies(driver.num_workers());
    AffectedEnv env{idx,      patterns,       m, n, affected,
                    affected_table, noise_table};
    util::Rng rng(stream_seed);
    driver.Run(rng, [&](auto access, const train::SgdStep& ctx) -> double {
      using A = decltype(access);
      return internal::EStepStep<A>(env, ctx, step_config, quota, track_loss,
                                    grad_scratch[ctx.worker], w_prime,
                                    b_prime, tallies[ctx.worker]);
    });
    internal::FlushTallies(tallies);
    stats.estep_steps = quota;
  }
  model->e_step_weights_ = w_prime;
  model->e_step_bias_ = b_prime;

  // --- D-step: full retrain over labeled arcs, warm-started like a full
  // run. The incremental path is self-contained: it neither writes nor
  // resumes D-step checkpoints.
  phase.emplace("update.dstep");
  ml::Dataset data(l);
  std::vector<double> features(l);
  for (size_t e = 0; e < num_arcs; ++e) {
    if (!idx.IsLabeled(e)) continue;
    const auto row = m.Row(e);
    for (size_t k = 0; k < l; ++k) features[k] = row[k];
    data.Add(features, idx.Label(e));
  }
  ml::LogisticRegressionConfig d_config = config.d_step;
  d_config.checkpoint = {};
  model->d_step_ = ml::LogisticRegression(w_prime, b_prime);
  model->d_step_.Train(data, d_config);
  if (config.d_step_head == DStepHead::kMlp) {
    model->mlp_head_.emplace(l, config.d_step_mlp.hidden_units,
                             config.d_step_mlp.seed);
    model->mlp_head_->Train(data, config.d_step_mlp);
  }

  if (obs::Enabled()) {
    obs::Registry& registry = obs::Registry::Default();
    registry.GetCounter("update.batches")->Add(1);
    registry.GetCounter("update.new_ties")->Add(stats.new_ties);
    registry.GetCounter("update.new_nodes")->Add(stats.new_nodes);
    registry.GetCounter("update.new_arcs")->Add(stats.new_arcs);
    registry.GetCounter("update.affected_arcs")->Add(stats.affected_arcs);
    registry.GetCounter("update.estep_steps")->Add(stats.estep_steps);
  }

  train::EStepState next;
  next.dimensions = l;
  next.num_arcs = num_arcs;
  next.m = m.data();  // copy: the model keeps its embedding
  next.n = std::move(n.data());
  next.w_prime = std::move(w_prime);  // the model copied its own above
  next.b_prime = b_prime;
  next.tie_hash = HashTieIndex(idx);
  next.epochs_done = state.epochs_done + 1;
  return IncrementalUpdate{std::move(merged), std::move(model),
                           std::move(next), stats};
}

}  // namespace deepdirect::core
