// DeepDirect: edge-based network embedding for tie direction learning
// (Sec. 4 of the paper).
//
// E-Step: every closure arc e (see TieIndex) receives an embedding row m_e
// in the matrix M and a connection row n_e in N, optimized by SGD over
// sampled connected tie pairs against the joint loss
//     L = L_topo + α·L_label + β·L_pattern        (Eq. 18)
// with
//   * L_topo    — skip-gram with negative sampling over connected tie pairs
//                 (Eq. 10), positives sampled ∝ deg_tie (P_c) and negatives
//                 ∝ deg_tie^{3/4} (P_n);
//   * L_label   — cross-entropy of a jointly-trained logistic regression
//                 (w', b') on labeled arcs, tie-degree weighted (Eq. 13,
//                 realized by the P_c sampling, Eq. 19);
//   * L_pattern — cross-entropy on undirected arcs against pseudo-labels
//                 from the Degree Consistency Pattern (gated by threshold T)
//                 and the Triad Status Consistency Pattern (Eq. 16).
// Updates follow Eqs. 21–25 exactly.
//
// D-Step: a fresh L2-regularized logistic regression over the embedding
// rows of labeled arcs, warm-started from (w', b') (Sec. 4.5.2), yields the
// directionality function d(e) = σ(w·m_e + b) (Eq. 26).
//
// NOTE on Eq. 14: the paper prints y^d_{uv} = deg(u)/(deg(u)+deg(v)), which
// contradicts both the Degree Consistency Pattern ("ties link from lower
// degree to higher degree") and the status logic of Eq. 15. We implement
// the pattern-consistent form y^d_{uv} = deg(v)/(deg(u)+deg(v)) and record
// the deviation in DESIGN.md.

#ifndef DEEPDIRECT_CORE_DEEPDIRECT_H_
#define DEEPDIRECT_CORE_DEEPDIRECT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <functional>
#include <optional>

#include "core/directionality.h"
#include "core/tie_index.h"
#include "graph/mixed_graph.h"
#include "ml/logistic_regression.h"
#include "ml/matrix.h"
#include "ml/mlp.h"
#include "train/checkpoint.h"
#include "train/lr_schedule.h"
#include "train/progress_reporter.h"

namespace deepdirect::train {
struct TieBatch;    // train/incremental.h
struct EStepState;  // train/incremental.h
}  // namespace deepdirect::train

namespace deepdirect::core {

struct IncrementalOptions;  // core/incremental.h
struct IncrementalUpdate;   // core/incremental.h

/// Out-of-core training (core/sharded_trainer.h). When num_shards > 0,
/// ShardedDeepDirectModel::Train spills the embedding matrix M, the
/// connection matrix N and the pattern arena to a mmap-backed ShardedStore
/// under `dir`, keeping at most `ram_budget_mb` of parameter pages
/// resident. Ignored by the in-RAM DeepDirectModel::Train.
struct ShardingConfig {
  size_t num_shards = 0;       ///< 0 = in-RAM training only
  std::string dir;             ///< store directory (required when sharded)
  size_t ram_budget_mb = 256;  ///< resident budget for M+N pages
};

/// Functional form of the D-Step directionality head.
enum class DStepHead {
  kLogisticRegression = 0,  ///< Eq. 26, the paper's choice
  kMlp = 1,                 ///< one-hidden-layer MLP (Sec. 8 future work)
};

/// Hyper-parameters of DeepDirect (paper defaults: l = 128, λ = 5, τ = 10;
/// α and β grid-searched — 5 and 1 are the paper's strong settings).
struct DeepDirectConfig {
  size_t dimensions = 128;       ///< l, embedding width
  size_t negative_samples = 5;   ///< λ
  double alpha = 5.0;            ///< weight of L_label
  double beta = 1.0;             ///< weight of L_pattern
  double degree_pattern_threshold = 0.3;   ///< T in Eq. 16
  size_t max_common_neighbors = 10;        ///< γ, size cap of t(u, v)
  double epochs = 10.0;          ///< τ: SGD iterations = τ·|C(G)|
  double initial_learning_rate = 0.05;
  double min_lr_fraction = 0.01;  ///< linear decay floor
  /// L2 decay on the E-Step classifier (w', b'), applied on classifier
  /// steps. Keeps w' from dominating the embedding geometry when α is
  /// large (the loss-explosion risk Sec. 6.2.2 warns about).
  double classifier_l2 = 1e-3;
  /// L2 decay on embedding rows (applied to the updated row each step).
  double embedding_l2 = 1e-4;
  /// Fraction of E-Step iterations over which the classifier losses
  /// (α and β terms) ramp linearly from 0 to full strength. Letting the
  /// topology loss shape the embedding first prevents the joint classifier
  /// from co-adapting labeled-arc rows before their contexts exist — the
  /// failure mode behind the "carefully increased α" caveat of Sec. 6.2.2.
  double classifier_warmup_fraction = 0.5;
  /// Ablation: when false, the classifier losses are de-weighted by
  /// 1/deg_tie(e), cancelling the implicit Eq. 13/16 weighting.
  bool weight_by_tie_degree = true;
  /// Ablation: sample negatives uniformly instead of ∝ deg_tie^{3/4}.
  bool uniform_negative_sampling = false;
  uint64_t seed = 21;
  /// Worker count (0 = all hardware threads) for both pipeline stages:
  ///  * preprocessing (pattern pseudo-labels + triad-pair arena) shards
  ///    undirected arcs into fixed blocks with per-arc counter-based RNG,
  ///    so its output is bit-identical for every thread count;
  ///  * the E-Step SGD, where 1 runs the deterministic serial path and
  ///    > 1 runs Hogwild-style lock-free updates, which are fast but not
  ///    bit-reproducible.
  size_t num_threads = 1;
  /// D-Step logistic regression settings.
  ml::LogisticRegressionConfig d_step = {
      .epochs = 20, .learning_rate = 0.05, .min_lr_fraction = 0.1,
      .l2 = 1e-4, .seed = 23, .shuffle = true,
      .metrics_prefix = "train.deepdirect.dstep",
      .checkpoint = {.trainer = "deepdirect.dstep"}};
  /// Which D-Step head realizes the directionality function. The logistic
  /// regression is always trained (it provides the warm-started Eq. 26
  /// head); selecting kMlp additionally trains a nonlinear head and routes
  /// Directionality() through it — the paper's Sec. 8 extension.
  DStepHead d_step_head = DStepHead::kLogisticRegression;
  /// MLP head settings (used when d_step_head == kMlp).
  ml::MlpConfig d_step_mlp = {.hidden_units = 32, .epochs = 30,
                              .learning_rate = 0.05, .min_lr_fraction = 0.1,
                              .l2 = 1e-4, .seed = 29};
  /// Optional E-Step progress callback, invoked every `report_every` SGD
  /// steps with (step, total_steps, mean L' over the window). Useful for
  /// long trainings; leave empty for silence.
  train::ProgressCallback progress = nullptr;
  uint64_t report_every = 1000000;
  /// Crash-safe E-Step checkpoint/resume (off unless `checkpoint.dir` is
  /// set); one epoch is |C(G)| iterations. The default trainer tag is
  /// "deepdirect.estep". The D-Step carries its own options in
  /// `d_step.checkpoint`. When a simulated preemption stops the E-Step,
  /// Train() returns the partial model without running the D-Step.
  train::CheckpointOptions checkpoint;
  /// Out-of-core sharding; only ShardedDeepDirectModel::Train reads it.
  ShardingConfig sharding;

  /// The E-Step decay schedule these parameters describe.
  train::LrSchedule Schedule() const {
    return {initial_learning_rate, min_lr_fraction,
            train::LrSchedule::Decay::kClampedLinear};
  }
};

/// Flat precomputed pattern data over the closure arcs (Algorithm 1,
/// lines 6–9): per-undirected-arc degree pseudo-labels plus one CSR arena
/// of triad arc-index pairs — a handful of flat arrays instead of a
/// heap-allocated pair vector per arc.
struct PatternPrecompute {
  /// Arc index → slot in the per-pattern-arc arrays below; UINT32_MAX for
  /// arcs that are not undirected.
  std::vector<uint32_t> slot;
  std::vector<double> degree_pseudo_label;  ///< y^d (Eq. 14) per slot
  std::vector<uint8_t> degree_active;       ///< y^d > T per slot
  /// CSR offsets into `triad_pairs`, size num_pattern_arcs() + 1.
  std::vector<uint32_t> triad_offsets;
  /// Arc-index pairs (index(u,w), index(v,w)) for w ∈ t(u, v), flat.
  std::vector<std::pair<uint32_t, uint32_t>> triad_pairs;

  /// Number of undirected (pattern-carrying) arcs.
  size_t num_pattern_arcs() const { return degree_pseudo_label.size(); }
};

/// Runs the pattern preprocessing stage alone, sharded over
/// `config.num_threads` workers (0 = all cores). Undirected arcs split into
/// fixed blocks and the γ-subsampling of t(u, v) draws from a counter-based
/// per-arc RNG seeded by (config.seed, arc index), so the result is
/// bit-identical for every thread count. Exposed for tests and benchmarks;
/// Train() runs it internally.
///
/// `arc_mask` (one byte per closure arc; empty = all arcs) scopes the
/// expensive per-arc work — degree pseudo-labels, common-neighbor scans,
/// triad subsampling — to the flagged arcs. Slots are still assigned to
/// every undirected arc so the slot map stays position-compatible with the
/// unmasked arena, but unflagged slots carry zeroed labels and empty triad
/// sets: the caller must guarantee Pattern() is only consulted for flagged
/// arcs (incremental updates sample sources exclusively from the affected
/// set, which is exactly the mask).
PatternPrecompute PrecomputePatterns(const graph::MixedSocialNetwork& g,
                                     const TieIndex& idx,
                                     const DeepDirectConfig& config,
                                     std::span<const uint8_t> arc_mask = {});

/// A trained DeepDirect model: embedding matrix + directionality head.
class DeepDirectModel : public DirectionalityModel {
 public:
  /// Runs preprocessing, E-Step and D-Step on `g` (Algorithm 1). The model
  /// is self-contained; `g` may be destroyed afterwards. Requires at least
  /// one directed tie (the TDL problem needs labeled data).
  static std::unique_ptr<DeepDirectModel> Train(
      const graph::MixedSocialNetwork& g, const DeepDirectConfig& config);

  /// Streaming update (core/incremental.h): splices a batch of new ties
  /// into `g`, warm-starts M/N and the joint classifier from `state` (the
  /// last checkpoint of a full training run or a previous update), runs
  /// the E-step only over new and pattern-affected arcs under a per-batch
  /// step quota, retrains the D-step, and returns the merged network, the
  /// updated model, and the chained warm-start state. Purely functional:
  /// on any error — a tie duplicating an existing edge (line-numbered), a
  /// state/network mismatch — nothing is mutated and no file is written.
  static util::Result<IncrementalUpdate> ApplyTieBatch(
      const graph::MixedSocialNetwork& g, const train::TieBatch& batch,
      const train::EStepState& state, const DeepDirectConfig& config,
      const IncrementalOptions& options);

  /// d(u, v) = σ(w·m_uv + b). The pair must host a tie of the training
  /// network.
  double Directionality(graph::NodeId u, graph::NodeId v) const override;

  /// d(u, v) when the pair hosts a training tie; a structured NotFound
  /// otherwise. Directionality() treats an unknown pair as a checked
  /// programmer error (it has no way to report one); callers that take
  /// pairs from outside the training network — the serving layer above
  /// all — use this form and branch on the status.
  util::Result<double> TryDirectionality(
      graph::NodeId u, graph::NodeId v) const override;
  std::string name() const override { return "DeepDirect"; }

  /// The embedding matrix M (rows indexed by the TieIndex).
  const ml::Matrix& embeddings() const { return embeddings_; }

  /// The closure-arc index the embedding rows follow.
  const TieIndex& index() const { return index_; }

  /// Embedding row of the tie arc (u, v).
  std::span<const float> TieEmbedding(graph::NodeId u,
                                      graph::NodeId v) const {
    return embeddings_.Row(index_.IndexOf(u, v));
  }

  /// The D-Step logistic regression (Eq. 26).
  const ml::LogisticRegression& d_step_regression() const {
    return d_step_;
  }

  /// E-Step classifier parameters (w', b'), exposed for tests.
  const std::vector<double>& e_step_weights() const {
    return e_step_weights_;
  }
  double e_step_bias() const { return e_step_bias_; }

  /// Serializes the trained model (embedding matrix + heads) to `path` in
  /// a self-describing binary format. The MLP head, when present, is not
  /// serialized (FailedPrecondition). The tie index is not written: a model
  /// is only meaningful with its training network, which Load() takes.
  util::Status Save(const std::string& path) const;

  /// Restores a model saved by Save(). `g` must be the training network
  /// (validated by arc count); the tie index is rebuilt from it.
  static util::Result<std::unique_ptr<DeepDirectModel>> Load(
      const std::string& path, const graph::MixedSocialNetwork& g);

  /// Writes the self-contained serving artifact ("DDS1",
  /// core/servable_format.h): the CSR tie index, the embedding matrix M,
  /// and the D-Step head, with 64-byte-aligned payloads so
  /// serve::ServableModel::Open answers d(u, v) zero-copy off one mmap —
  /// no training network needed at query time. Atomic like Save(); the
  /// MLP head, when present, is not servable (FailedPrecondition).
  util::Status ExportServable(const std::string& path) const;

 private:
  DeepDirectModel(TieIndex index, size_t dimensions)
      : index_(std::move(index)),
        embeddings_(index_.num_arcs(), dimensions),
        d_step_(dimensions) {}

  TieIndex index_;
  ml::Matrix embeddings_;
  std::vector<double> e_step_weights_;
  double e_step_bias_ = 0.0;
  ml::LogisticRegression d_step_;
  std::optional<ml::MlpClassifier> mlp_head_;
};

}  // namespace deepdirect::core

#endif  // DEEPDIRECT_CORE_DEEPDIRECT_H_
