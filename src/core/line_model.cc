#include "core/line_model.h"

#include "ml/dataset.h"

namespace deepdirect::core {

using graph::MixedSocialNetwork;
using graph::NodeId;

std::unique_ptr<LineModel> LineModel::Train(const MixedSocialNetwork& g,
                                            const LineModelConfig& config) {
  DD_CHECK_GT(g.num_directed_ties(), 0u);
  embedding::LineEmbedding line =
      embedding::LineEmbedding::Train(g, config.line);
  const size_t feature_dims =
      embedding::EdgeFeatureDims(config.edge_operator, line.dimensions());
  std::unique_ptr<LineModel> model(
      new LineModel(std::move(line), config.edge_operator, feature_dims));

  ml::Dataset data(feature_dims);
  std::vector<double> features(feature_dims);
  for (graph::ArcId id : g.directed_arcs()) {
    const graph::Arc& a = g.arc(id);
    model->TieFeatures(a.src, a.dst, features);
    data.Add(features, 1.0);
    model->TieFeatures(a.dst, a.src, features);
    data.Add(features, 0.0);
  }
  model->regression_.Train(data, config.regression);
  return model;
}

void LineModel::TieFeatures(NodeId u, NodeId v, std::span<double> out) const {
  const size_t d = line_.dimensions();
  std::vector<double> src(d), dst(d);
  line_.NodeVector(u, src);
  line_.NodeVector(v, dst);
  embedding::ComposeEdgeFeatures(edge_operator_, src, dst, out);
}

double LineModel::Directionality(NodeId u, NodeId v) const {
  std::vector<double> features(tie_feature_dims());
  TieFeatures(u, v, features);
  return regression_.Predict(features);
}

}  // namespace deepdirect::core
