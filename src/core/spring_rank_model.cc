#include "core/spring_rank_model.h"

#include "ml/dataset.h"

namespace deepdirect::core {

using graph::MixedSocialNetwork;
using graph::NodeId;

std::unique_ptr<SpringRankModel> SpringRankModel::Train(
    const MixedSocialNetwork& g, const SpringRankModelConfig& config) {
  DD_CHECK_GT(g.num_directed_ties(), 0u);
  std::unique_ptr<SpringRankModel> model(
      new SpringRankModel(graph::SpringRank(g, config.spring_rank)));

  // Calibrate the gap scale on the labeled ties (both orientations).
  ml::Dataset data(1);
  for (graph::ArcId id : g.directed_arcs()) {
    const graph::Arc& arc = g.arc(id);
    const double gap = model->scores_[arc.dst] - model->scores_[arc.src];
    data.Add(std::vector<double>{gap}, 1.0);
    data.Add(std::vector<double>{-gap}, 0.0);
  }
  model->calibration_.Train(data, config.calibration);
  return model;
}

double SpringRankModel::Directionality(NodeId u, NodeId v) const {
  const double gap = scores_[v] - scores_[u];
  return calibration_.Predict(std::vector<double>{gap});
}

}  // namespace deepdirect::core
