#include "core/models.h"

namespace deepdirect::core {

std::vector<Method> AllMethods() {
  return {Method::kLine, Method::kHf, Method::kDeepDirect,
          Method::kRedirectNsm, Method::kRedirectTsm};
}

const char* MethodName(Method method) {
  switch (method) {
    case Method::kLine:
      return "LINE";
    case Method::kHf:
      return "HF";
    case Method::kDeepDirect:
      return "DeepDirect";
    case Method::kRedirectNsm:
      return "ReDirect-N/sm";
    case Method::kRedirectTsm:
      return "ReDirect-T/sm";
  }
  return "Unknown";
}

MethodConfigs MethodConfigs::PaperDefaults() {
  MethodConfigs configs;
  configs.deepdirect.dimensions = 128;
  configs.deepdirect.negative_samples = 5;
  configs.deepdirect.epochs = 10.0;
  // The paper gives LINE half of DeepDirect's dimension so the concatenated
  // tie vector matches DeepDirect's l (Sec. 6.1).
  configs.line.line.dimensions = 64;  // 32 per proximity order
  configs.redirect_n.dimensions = 40;
  return configs;
}

MethodConfigs MethodConfigs::FastDefaults() {
  MethodConfigs configs;
  configs.deepdirect.dimensions = 64;
  configs.deepdirect.negative_samples = 5;
  configs.deepdirect.epochs = 5.0;
  configs.line.line.dimensions = 32;  // half of DeepDirect's l, as in paper
  configs.line.line.samples_per_arc = 30;
  configs.redirect_n.dimensions = 24;
  configs.redirect_n.epochs = 40;
  return configs;
}

std::unique_ptr<DirectionalityModel> TrainMethod(
    const graph::MixedSocialNetwork& g, Method method,
    const MethodConfigs& configs) {
  switch (method) {
    case Method::kLine:
      return LineModel::Train(g, configs.line);
    case Method::kHf:
      return HfModel::Train(g, configs.hf);
    case Method::kDeepDirect:
      return DeepDirectModel::Train(g, configs.deepdirect);
    case Method::kRedirectNsm:
      return RedirectNModel::Train(g, configs.redirect_n);
    case Method::kRedirectTsm:
      return RedirectTModel::Train(g, configs.redirect_t);
  }
  DD_CHECK_MSG(false, "unknown method");
  return nullptr;
}

}  // namespace deepdirect::core
