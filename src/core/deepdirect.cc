#include "core/deepdirect.h"

#include <algorithm>
#include <cmath>

#include "core/estep_body.h"
#include "kernels/kernels.h"
#include "ml/dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "train/parallel.h"
#include "train/sgd_driver.h"
#include "util/alias_table.h"
#include "util/random.h"

namespace deepdirect::core {

using graph::MixedSocialNetwork;
using graph::NodeId;

namespace {

// Fixed shard size for the pattern precompute: undirected arcs split into
// blocks of this many slots, independent of the worker count.
constexpr size_t kPatternBlock = 256;

// Storage environment adapting the heap-resident training state (TieIndex,
// pattern arena, ml::Matrix M and N, alias tables) to the shared E-step
// body in core/estep_body.h. The sharded trainer provides the mmap-backed
// twin; both must present identical arithmetic to the body.
struct InRamEnv {
  const TieIndex& idx;
  const PatternPrecompute& patterns;
  ml::Matrix& m;
  ml::Matrix& n;
  const util::AliasTable& source_table;
  const util::AliasTable& noise_table;

  struct PatternView {
    bool degree_active;
    double pseudo_label;
    std::span<const std::pair<uint32_t, uint32_t>> triads;
  };

  size_t num_arcs() const { return idx.num_arcs(); }
  std::span<float> MRow(size_t e) { return m.Row(e); }
  std::span<float> NRow(size_t e) { return n.Row(e); }
  size_t SampleSource(const train::SgdStep&, util::Rng& r) const {
    return source_table.Sample(r);
  }
  size_t SampleNoise(util::Rng& r) const { return noise_table.Sample(r); }
  size_t SampleConnectedTie(size_t e, util::Rng& r) const {
    return idx.SampleConnectedTie(e, r);
  }
  ArcClass ClassOf(size_t e) const { return idx.Class(e); }
  bool IsLabeled(size_t e) const { return idx.IsLabeled(e); }
  double Label(size_t e) const { return idx.Label(e); }
  uint32_t TieDegreeOf(size_t e) const { return idx.TieDegree(e); }
  PatternView Pattern(size_t e) const {
    const uint32_t s = patterns.slot[e];
    const uint32_t t_begin = patterns.triad_offsets[s];
    const uint32_t t_end = patterns.triad_offsets[s + 1];
    return {patterns.degree_active[s] != 0, patterns.degree_pseudo_label[s],
            std::span(patterns.triad_pairs).subspan(t_begin, t_end - t_begin)};
  }
  void NoteStep() {}  // no residency budget to account against
};

}  // namespace

PatternPrecompute PrecomputePatterns(const MixedSocialNetwork& g,
                                     const TieIndex& idx,
                                     const DeepDirectConfig& config,
                                     std::span<const uint8_t> arc_mask) {
  obs::PhaseScope phase("deepdirect.preprocess.patterns");
  const size_t num_arcs = idx.num_arcs();
  DD_CHECK(arc_mask.empty() || arc_mask.size() == num_arcs);

  PatternPrecompute out;
  out.slot.assign(num_arcs, UINT32_MAX);
  // Slot assignment follows ascending arc index — a fixed order no
  // scheduling can perturb.
  std::vector<uint32_t> pattern_arcs;
  for (size_t e = 0; e < num_arcs; ++e) {
    if (idx.Class(e) != ArcClass::kUndirected) continue;
    out.slot[e] = static_cast<uint32_t>(pattern_arcs.size());
    pattern_arcs.push_back(static_cast<uint32_t>(e));
  }
  const size_t slots = pattern_arcs.size();
  out.degree_pseudo_label.resize(slots);
  out.degree_active.assign(slots, 0);
  out.triad_offsets.assign(slots + 1, 0);

  // Pass 1 over fixed slot blocks: per-slot label fields write disjoint
  // array entries; triad pairs collect into one buffer per block (a few
  // dozen allocations total instead of one vector per arc). The γ-cap
  // subsample draws from a per-arc counter-based RNG — no shared stream,
  // so the sampled t(u, v) is identical for every thread count.
  const size_t blocks = train::NumBlocks(slots, kPatternBlock);
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> block_pairs(blocks);
  train::ParallelBlocks(
      slots, kPatternBlock, config.num_threads,
      [&](size_t b, size_t begin, size_t end) {
        std::vector<NodeId> common;  // reused across the block's arcs
        auto& pairs = block_pairs[b];
        for (size_t s = begin; s < end; ++s) {
          const size_t e = pattern_arcs[s];
          // Masked-out slots keep zeroed labels and an empty triad set;
          // the mask contract (see the header) is that Pattern() is never
          // consulted for them.
          if (!arc_mask.empty() && arc_mask[e] == 0) continue;
          const auto [u, v] = idx.ArcAt(e);
          // Pattern-consistent Eq. 14 (see header note): ties point toward
          // the higher-degree endpoint, so y^d_{uv} grows with deg(v).
          const double deg_u = g.Deg(u);
          const double deg_v = g.Deg(v);
          const double denom = deg_u + deg_v;
          const double y_d = denom > 0.0 ? deg_v / denom : 0.5;
          out.degree_pseudo_label[s] = y_d;
          out.degree_active[s] =
              y_d > config.degree_pattern_threshold ? 1 : 0;

          // t(u, v): up to γ random common neighbors.
          g.CommonNeighbors(u, v, common);
          if (common.size() > config.max_common_neighbors) {
            util::Rng arc_rng(train::PerItemSeed(config.seed, e));
            arc_rng.Shuffle(common);
            common.resize(config.max_common_neighbors);
          }
          out.triad_offsets[s + 1] = static_cast<uint32_t>(common.size());
          for (NodeId w : common) {
            pairs.emplace_back(static_cast<uint32_t>(idx.IndexOf(u, w)),
                               static_cast<uint32_t>(idx.IndexOf(v, w)));
          }
        }
      });

  // Serial prefix sum turns per-slot counts into CSR offsets.
  for (size_t s = 0; s < slots; ++s) {
    out.triad_offsets[s + 1] += out.triad_offsets[s];
  }

  // Pass 2: scatter each block's buffer into its disjoint arena range
  // (block b starts at the offset of its first slot).
  out.triad_pairs.resize(out.triad_offsets[slots]);
  train::ParallelBlocks(
      slots, kPatternBlock, config.num_threads,
      [&](size_t b, size_t begin, size_t /*end*/) {
        std::copy(block_pairs[b].begin(), block_pairs[b].end(),
                  out.triad_pairs.begin() + out.triad_offsets[begin]);
      });

  if (obs::Enabled()) {
    obs::Registry& registry = obs::Registry::Default();
    registry.GetCounter("deepdirect.preprocess.pattern_arcs")->Add(slots);
    registry.GetCounter("deepdirect.preprocess.triad_pairs")
        ->Add(out.triad_pairs.size());
  }
  return out;
}

std::unique_ptr<DeepDirectModel> DeepDirectModel::Train(
    const MixedSocialNetwork& g, const DeepDirectConfig& config) {
  DD_CHECK_GT(g.num_directed_ties(), 0u);
  DD_CHECK_GT(config.dimensions, 0u);
  DD_CHECK_GE(config.epochs, 0.0);

  obs::PhaseScope train_phase("deepdirect.train");
  // Sub-phase scope: emplace() closes the previous span and opens the next.
  std::optional<obs::PhaseScope> phase;
  phase.emplace("deepdirect.preprocess");
  TieIndex index(g);
  const size_t num_arcs = index.num_arcs();
  const size_t l = config.dimensions;
  std::unique_ptr<DeepDirectModel> model(
      new DeepDirectModel(std::move(index), l));
  const TieIndex& idx = model->index_;

  util::Rng rng(config.seed);

  // --- Preprocessing -------------------------------------------------------
  // Pattern data for undirected arcs (lines 6–9 of Algorithm 1): flat CSR
  // arena, sharded over config.num_threads workers, bit-identical for every
  // thread count (per-arc counter-based RNG instead of a shared stream).
  const PatternPrecompute patterns = PrecomputePatterns(g, idx, config);

  // --- E-Step --------------------------------------------------------------
  phase.emplace("deepdirect.estep");
  ml::Matrix& m = model->embeddings_;
  ml::Matrix n(num_arcs, l);  // connection matrix N
  const float init = 0.5f / static_cast<float>(l);
  m.FillUniform(rng, -init, init);
  // N starts at zero (skip-gram output-layer convention).

  std::vector<double> w_prime(l, 0.0);
  double b_prime = 0.0;

  // Sampling distributions over closure arcs.
  std::vector<double> pc_weights(num_arcs);
  std::vector<double> pn_weights(num_arcs);
  for (size_t e = 0; e < num_arcs; ++e) {
    const double deg = idx.TieDegree(e);
    pc_weights[e] = deg;  // P_c ∝ deg_tie
    pn_weights[e] = config.uniform_negative_sampling
                        ? 1.0
                        : std::pow(deg + 1.0, 0.75);  // P_n ∝ deg_tie^{3/4}
  }
  // Degenerate but legal: a network where every destination is a leaf has
  // no connected tie pairs; fall back to uniform source sampling.
  double pc_total = 0.0;
  for (double w : pc_weights) pc_total += w;
  if (pc_total <= 0.0) std::fill(pc_weights.begin(), pc_weights.end(), 1.0);
  const util::AliasTable source_table(pc_weights);
  const util::AliasTable noise_table(pn_weights);

  const uint64_t iterations = static_cast<uint64_t>(
      config.epochs * static_cast<double>(idx.NumConnectedTiePairs()));

  // Loss tracking costs a LogSigmoid per sample; pay it when the caller
  // listens (progress callback) or telemetry is being recorded. The loss
  // value never feeds back into updates, so tracking cannot perturb them.
  const bool track_loss =
      static_cast<bool>(config.progress) || obs::Enabled();

  train::SgdOptions options;
  options.steps = iterations;
  options.num_threads = config.num_threads;
  options.lr = config.Schedule();
  options.shard_seed = config.seed;
  // One epoch is |C(G)| iterations (τ epochs total; the last may be
  // partial when τ is fractional).
  options.steps_per_epoch = idx.NumConnectedTiePairs();
  options.progress = config.progress;
  options.report_every = config.report_every;
  options.metrics_prefix = "train.deepdirect.estep";

  train::CheckpointOptions ckpt_options = config.checkpoint;
  if (ckpt_options.trainer.empty()) ckpt_options.trainer = "deepdirect.estep";
  train::Checkpointer checkpointer(
      ckpt_options,
      train::RunShape{iterations, options.steps_per_epoch, config.seed,
                      options.lr},
      [&](train::CheckpointWriter& writer) {
        writer.AddVector("m", m.data());
        writer.AddVector("n", n.data());
        writer.AddVector("w_prime", w_prime);
        writer.AddPod("b_prime", b_prime);
        // Binds the snapshot to the training network's closure arcs so a
        // warm-start consumer (train/incremental.h) rejects "same arc
        // count, different network" instead of remapping rows silently.
        writer.AddPod("tie_hash", HashTieIndex(idx));
      },
      [&](const train::CheckpointData& ckpt) -> util::Status {
        std::vector<float> saved_m, saved_n;
        DD_RETURN_NOT_OK(ckpt.ReadVector("m", &saved_m, m.data().size()));
        DD_RETURN_NOT_OK(ckpt.ReadVector("n", &saved_n, n.data().size()));
        std::vector<double> saved_w;
        DD_RETURN_NOT_OK(ckpt.ReadVector("w_prime", &saved_w, l));
        double saved_b = 0.0;
        DD_RETURN_NOT_OK(ckpt.ReadPod("b_prime", &saved_b));
        m.data() = std::move(saved_m);
        n.data() = std::move(saved_n);
        w_prime = std::move(saved_w);
        b_prime = saved_b;
        return util::Status::OK();
      });
  options.start_epoch = checkpointer.Resume(rng);
  options.checkpointer = &checkpointer;

  train::SgdDriver driver(options);

  std::vector<std::vector<double>> grad_scratch(
      driver.num_workers(), std::vector<double>(l, 0.0));
  std::vector<internal::EStepTally> tallies(driver.num_workers());

  // The step body itself lives in core/estep_body.h, shared with the
  // out-of-core sharded trainer so both run literally the same arithmetic.
  InRamEnv env{idx, patterns, m, n, source_table, noise_table};
  driver.Run(rng, [&](auto access, const train::SgdStep& ctx) -> double {
    using A = decltype(access);
    return internal::EStepStep<A>(env, ctx, config, iterations, track_loss,
                                  grad_scratch[ctx.worker], w_prime, b_prime,
                                  tallies[ctx.worker]);
  });

  internal::FlushTallies(tallies);
  model->e_step_weights_ = w_prime;
  model->e_step_bias_ = b_prime;

  // A simulated preemption stopped the E-Step mid-run: a killed process
  // would never have reached the D-Step, so return the partial model here
  // — running (and checkpointing) the D-Step on a half-trained embedding
  // would poison a later resume.
  if (checkpointer.stopped()) return model;

  // --- D-Step (Sec. 4.5.2): warm-started L2 logistic regression on the
  // embedding rows of labeled arcs.
  phase.emplace("deepdirect.dstep");
  ml::Dataset data(l);
  std::vector<double> features(l);
  for (size_t e = 0; e < num_arcs; ++e) {
    if (!idx.IsLabeled(e)) continue;
    const auto row = m.Row(e);
    for (size_t k = 0; k < l; ++k) features[k] = row[k];
    data.Add(features, idx.Label(e));
  }
  model->d_step_ = ml::LogisticRegression(w_prime, b_prime);
  model->d_step_.Train(data, config.d_step);

  if (config.d_step_head == DStepHead::kMlp) {
    // Nonlinear head (Sec. 8 future work) on the same labeled rows.
    model->mlp_head_.emplace(l, config.d_step_mlp.hidden_units,
                             config.d_step_mlp.seed);
    model->mlp_head_->Train(data, config.d_step_mlp);
  }

  return model;
}

double DeepDirectModel::Directionality(NodeId u, NodeId v) const {
  const auto row = embeddings_.Row(index_.IndexOf(u, v));
  std::vector<double> features(row.size());
  for (size_t k = 0; k < row.size(); ++k) features[k] = row[k];
  if (mlp_head_.has_value()) return mlp_head_->Predict(features);
  return d_step_.Predict(features);
}

util::Result<double> DeepDirectModel::TryDirectionality(NodeId u,
                                                        NodeId v) const {
  if (u >= index_.num_nodes() ||
      index_.TryIndexOf(u, v) == index_.num_arcs()) {
    return util::Status::NotFound(
        "no tie between " + std::to_string(u) + " and " + std::to_string(v) +
        " in the training network");
  }
  return Directionality(u, v);
}

}  // namespace deepdirect::core
